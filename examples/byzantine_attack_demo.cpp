// Attack demo: why signatures matter.
//
// Runs the two-faced split-timing attack (a Byzantine node reports different
// pulse timings to different halves of the cluster) against
//   1. Lynch–Welch at f = ⌈n/3⌉ — beyond its resilience: skew degrades and
//      scales with the attack,
//   2. CPS at the same fault count — the crusader echo turns the equivocation
//      into ⊥ and the skew stays flat,
// and the certificate-acceleration attack against Srikanth–Toueg, showing
// its Θ(d) skew — the gap CPS closes.
//
// Each attacked world is one declarative ScenarioSpec executed by the sweep
// runner; the demo just varies the attack magnitude axis and prints tables.

#include <algorithm>
#include <iostream>

#include "runner/runner.hpp"
#include "util/table.hpp"

using namespace crusader;

namespace {

runner::ScenarioSpec base_spec() {
  runner::ScenarioSpec spec;
  spec.n = 6;
  spec.d = 1.0;
  spec.u = 0.05;
  spec.u_tilde = 0.05;
  spec.vartheta = 1.01;
  spec.clocks = sim::ClockKind::kSpread;
  spec.rounds = 35;
  spec.warmup = 15;
  return spec;
}

runner::RunnerOptions demo_options() {
  runner::RunnerOptions options;
  options.base_seed = 7;
  return options;
}

double lynch_welch_attacked(double split_shift) {
  auto spec = base_spec();
  spec.protocol = baselines::ProtocolKind::kLynchWelch;
  spec.f = sim::ModelParams::max_faults_plain(spec.n);  // protocol f = 1
  spec.f_actual = 2;  // ⌈n/3⌉ faults: beyond LW's guarantee
  spec.strategy = core::ByzStrategy::kSplit;
  spec.split_shift = split_shift;
  spec.delay = sim::DelayKind::kSplit;
  return runner::run_scenario(spec, demo_options()).steady_skew;
}

double cps_attacked(double split_shift) {
  auto spec = base_spec();
  spec.protocol = baselines::ProtocolKind::kCps;
  spec.f = sim::ModelParams::max_faults_signed(spec.n);  // tolerates 2
  spec.f_actual = 2;
  spec.strategy = core::ByzStrategy::kSplit;
  spec.split_shift = split_shift;
  spec.delay = sim::DelayKind::kSplit;
  return runner::run_scenario(spec, demo_options()).steady_skew;
}

double srikanth_toueg_attacked() {
  auto spec = base_spec();
  spec.protocol = baselines::ProtocolKind::kSrikanthToueg;
  spec.f = sim::ModelParams::max_faults_signed(spec.n);
  spec.f_actual = 2;
  spec.st_accelerator = true;  // certificate acceleration against node n-1
  spec.delay = sim::DelayKind::kRandom;
  spec.rounds = 22;
  spec.warmup = 5;
  return runner::run_scenario(spec, demo_options()).steady_skew;
}

}  // namespace

int main() {
  std::cout << "Two-faced timing attack, n = 6, f_actual = 2 = ceil(n/3)\n"
            << "(steady-state skew, rounds 15+)\n\n";

  util::Table table("Lynch-Welch (no signatures) vs CPS (signatures)");
  table.set_header(
      {"attack magnitude", "LW skew (f beyond n/3)", "CPS skew", "LW/CPS"});
  for (double shift : {0.0, 0.05, 0.1, 0.15, 0.2}) {
    const double lw = lynch_welch_attacked(shift);
    const double cps = cps_attacked(shift);
    table.add_row({util::Table::num(shift, 2), util::Table::num(lw, 4),
                   util::Table::num(cps, 4),
                   util::Table::num(lw / std::max(cps, 1e-9), 2)});
  }
  table.print(std::cout);

  std::cout << "\nThe LW skew grows with the attack (no way to detect the\n"
               "equivocated timing); CPS stays flat: the forwarded signature\n"
               "(Figure 2's echo) exposes the lie and turns it into bot.\n\n";

  const double st = srikanth_toueg_attacked();
  util::Table st_table("Srikanth-Toueg under certificate acceleration");
  st_table.set_header({"protocol", "skew", "scale"});
  st_table.add_row({"Srikanth-Toueg", util::Table::num(st, 4),
                    "Theta(d), d = 1.0"});
  st_table.add_row({"CPS (same faults)", util::Table::num(cps_attacked(0.1), 4),
                    "Theta(u + (vt-1)d) = Theta(0.06)"});
  st_table.print(std::cout);
  std::cout << "\nST tolerates f < n/2 but pays skew ~ d; CPS gets the same\n"
               "resilience at skew ~ u + (vartheta-1)d (the paper's result).\n";
  return 0;
}
