// Attack demo: why signatures matter.
//
// Runs the two-faced split-timing attack (a Byzantine node reports different
// pulse timings to different halves of the cluster) against
//   1. Lynch–Welch at f = ⌈n/3⌉ — beyond its resilience: skew degrades and
//      scales with the attack,
//   2. CPS at the same fault count — the crusader echo turns the equivocation
//      into ⊥ and the skew stays flat,
// and the certificate-acceleration attack against Srikanth–Toueg, showing
// its Θ(d) skew — the gap CPS closes.

#include <algorithm>
#include <iostream>
#include <memory>

#include "baselines/factories.hpp"
#include "baselines/lynch_welch.hpp"
#include "core/adversaries.hpp"
#include "sim/world.hpp"
#include "util/table.hpp"

using namespace crusader;

namespace {

sim::ModelParams demo_model() {
  sim::ModelParams model;
  model.n = 6;
  model.f = sim::ModelParams::max_faults_signed(6);  // allow 2 faulty
  model.d = 1.0;
  model.u = 0.05;
  model.u_tilde = 0.05;
  model.vartheta = 1.01;
  return model;
}

double lynch_welch_attacked(double split_shift) {
  const auto model = demo_model();
  const auto setup =
      baselines::make_setup(baselines::ProtocolKind::kLynchWelch, model);
  baselines::LwConfig config;
  config.params = setup.lw;
  config.f = sim::ModelParams::max_faults_plain(model.n);  // protocol f = 1
  sim::HonestFactory honest = [config](NodeId) {
    return std::make_unique<baselines::LynchWelchNode>(config);
  };
  auto byzantine = core::make_byzantine_factory(core::ByzStrategy::kSplit,
                                                honest, 7, 0.0, split_shift);
  sim::WorldConfig wc;
  wc.model = model;
  wc.seed = 7;
  wc.initial_offset = setup.initial_offset;
  wc.horizon = 40.0 * setup.round_length;
  wc.clock_kind = sim::ClockKind::kSpread;
  wc.delay_kind = sim::DelayKind::kSplit;
  wc.faulty = {0, 1};  // 2 = ⌈n/3⌉ faults: beyond LW's guarantee
  sim::World world(wc, honest, byzantine);
  return world.run().trace.max_skew(15);
}

double cps_attacked(double split_shift) {
  const auto model = demo_model();
  const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
  auto honest = baselines::make_protocol_factory(setup);
  auto byzantine = core::make_byzantine_factory(core::ByzStrategy::kSplit,
                                                honest, 7, 0.0, split_shift);
  sim::WorldConfig wc;
  wc.model = model;
  wc.seed = 7;
  wc.initial_offset = setup.initial_offset;
  wc.horizon = 40.0 * setup.round_length;
  wc.clock_kind = sim::ClockKind::kSpread;
  wc.delay_kind = sim::DelayKind::kSplit;
  wc.faulty = {0, 1};
  sim::World world(wc, honest, byzantine);
  return world.run().trace.max_skew(15);
}

double srikanth_toueg_attacked() {
  const auto model = demo_model();
  const auto setup =
      baselines::make_setup(baselines::ProtocolKind::kSrikanthToueg, model);
  auto honest = baselines::make_protocol_factory(setup);
  auto byzantine = core::make_st_accelerator_factory(model.n - 1);
  sim::WorldConfig wc;
  wc.model = model;
  wc.seed = 7;
  wc.initial_offset = setup.initial_offset;
  wc.horizon = 25.0 * setup.round_length;
  wc.clock_kind = sim::ClockKind::kSpread;
  wc.delay_kind = sim::DelayKind::kRandom;
  wc.faulty = {0, 1};
  sim::World world(wc, honest, byzantine);
  return world.run().trace.max_skew(5);
}

}  // namespace

int main() {
  std::cout << "Two-faced timing attack, n = 6, f_actual = 2 = ceil(n/3)\n"
            << "(steady-state skew, rounds 15+)\n\n";

  util::Table table("Lynch-Welch (no signatures) vs CPS (signatures)");
  table.set_header(
      {"attack magnitude", "LW skew (f beyond n/3)", "CPS skew", "LW/CPS"});
  for (double shift : {0.0, 0.05, 0.1, 0.15, 0.2}) {
    const double lw = lynch_welch_attacked(shift);
    const double cps = cps_attacked(shift);
    table.add_row({util::Table::num(shift, 2), util::Table::num(lw, 4),
                   util::Table::num(cps, 4),
                   util::Table::num(lw / std::max(cps, 1e-9), 2)});
  }
  table.print(std::cout);

  std::cout << "\nThe LW skew grows with the attack (no way to detect the\n"
               "equivocated timing); CPS stays flat: the forwarded signature\n"
               "(Figure 2's echo) exposes the lie and turns it into bot.\n\n";

  const double st = srikanth_toueg_attacked();
  util::Table st_table("Srikanth-Toueg under certificate acceleration");
  st_table.set_header({"protocol", "skew", "scale"});
  st_table.add_row({"Srikanth-Toueg", util::Table::num(st, 4),
                    "Theta(d), d = 1.0"});
  st_table.add_row({"CPS (same faults)", util::Table::num(cps_attacked(0.1), 4),
                    "Theta(u + (vt-1)d) = Theta(0.06)"});
  st_table.print(std::cout);
  std::cout << "\nST tolerates f < n/2 but pays skew ~ d; CPS gets the same\n"
               "resilience at skew ~ u + (vartheta-1)d (the paper's result).\n";
  return 0;
}
