// Quickstart: synchronize a 7-node cluster with 3 Byzantine nodes using
// Crusader Pulse Synchronization, and report the achieved skew against the
// Theorem-17 bound.
//
//   $ ./quickstart
//
// Walks through the full public API: model parameters, the constant solver,
// the world harness, Byzantine strategies, and trace analysis.

#include <iostream>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "core/params.hpp"
#include "sim/world.hpp"
#include "util/table.hpp"

int main() {
  using namespace crusader;

  // 1. The model (paper, Section 2): 7 nodes, up to ⌈7/2⌉−1 = 3 Byzantine,
  //    message delays in [d−u, d] = [0.95, 1.0], clock rates in [1, 1.01].
  sim::ModelParams model;
  model.n = 7;
  model.f = sim::ModelParams::max_faults_signed(model.n);
  model.d = 1.0;      // say, 1 ms
  model.u = 0.05;     // 50 µs of delay uncertainty
  model.u_tilde = model.u;
  model.vartheta = 1.01;

  // 2. Solve the Theorem-17 constants: skew bound S, round length T, ...
  const core::CpsParams params = core::derive_cps_params(model);
  if (!params.feasible) {
    std::cerr << "vartheta too large for CPS (Corollary 4)\n";
    return 1;
  }
  std::cout << "Derived constants: S = " << params.S << ", T = " << params.T
            << ", delta = " << params.delta << ", P in [" << params.p_min
            << ", " << params.p_max << "]\n\n";

  // 3. Assemble the world: adversarial clocks (half slow, half fast),
  //    adversarial delays, 3 colluding Byzantine nodes that pull estimates.
  const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
  auto honest = baselines::make_protocol_factory(setup);
  auto byzantine =
      core::make_byzantine_factory(core::ByzStrategy::kSplit, honest,
                                   /*seed=*/42, 0.0, /*split_shift=*/0.1);

  sim::WorldConfig config;
  config.model = model;
  config.seed = 42;
  config.initial_offset = params.S;  // H_v(0) ∈ [0, S] (Figure 3)
  config.horizon = 30.0 * params.p_max;
  config.clock_kind = sim::ClockKind::kSpread;
  config.delay_kind = sim::DelayKind::kRandom;
  config.faulty = {0, 1, 2};

  sim::World world(config, honest, byzantine);
  const sim::RunResult result = world.run();

  // 4. Analyze the pulse trace.
  util::Table table("CPS on 7 nodes, 3 Byzantine (split-timing attack)");
  table.set_header({"metric", "measured", "bound"});
  table.add_row({"rounds completed",
                 std::to_string(result.trace.complete_rounds()), "-"});
  table.add_row({"worst skew", util::Table::num(result.trace.max_skew(), 4),
                 util::Table::num(params.S, 4)});
  table.add_row({"steady skew (r>=5)",
                 util::Table::num(result.trace.max_skew(5), 4),
                 util::Table::num(params.S, 4)});
  table.add_row({"min period", util::Table::num(result.trace.min_period(), 4),
                 ">= " + util::Table::num(params.p_min, 4)});
  table.add_row({"max period", util::Table::num(result.trace.max_period(), 4),
                 "<= " + util::Table::num(params.p_max, 4)});
  table.add_row({"messages", std::to_string(result.messages), "-"});
  table.add_row({"model violations", std::to_string(result.violations.size()),
                 "0"});
  table.print(std::cout);

  const bool ok = result.trace.max_skew() <= params.S + 1e-9 &&
                  result.trace.live(20) && result.violations.empty();
  std::cout << "\n" << (ok ? "OK: Theorem 17 held." : "FAIL") << "\n";
  return ok ? 0 : 1;
}
