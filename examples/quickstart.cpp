// Quickstart: synchronize a 7-node cluster with 3 Byzantine nodes using
// Crusader Pulse Synchronization, and report the achieved skew against the
// Theorem-17 bound.
//
//   $ ./quickstart
//
// This is a thin wrapper over the sweep runner: one declarative ScenarioSpec
// describes the whole world (model, adversary, schedule), and run_scenario
// executes it and computes the trace metrics. For a whole grid of these, see
// sweep_cli; for the underlying World API, see tests/test_world.cpp.

#include <iostream>

#include "core/params.hpp"
#include "runner/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace crusader;

  // The model (paper, Section 2): 7 nodes, up to ⌈7/2⌉−1 = 3 Byzantine,
  // message delays in [d−u, d] = [0.95, 1.0], clock rates in [1, 1.01], and
  // 3 colluding Byzantine nodes running the two-faced split-timing attack.
  runner::ScenarioSpec spec;
  spec.protocol = baselines::ProtocolKind::kCps;
  spec.n = 7;
  spec.f = sim::ModelParams::max_faults_signed(spec.n);
  spec.f_actual = spec.f;
  spec.d = 1.0;       // say, 1 ms
  spec.u = 0.05;      // 50 µs of delay uncertainty
  spec.u_tilde = spec.u;
  spec.vartheta = 1.01;
  spec.strategy = core::ByzStrategy::kSplit;
  spec.split_shift = 0.1;
  spec.rounds = 25;
  spec.warmup = 5;

  // Peek at the Theorem-17 constants the runner solves for under the hood.
  const core::CpsParams params = core::derive_cps_params(spec.model());
  if (!params.feasible) {
    std::cerr << "vartheta too large for CPS (Corollary 4)\n";
    return 1;
  }
  std::cout << "Derived constants: S = " << params.S << ", T = " << params.T
            << ", delta = " << params.delta << ", P in [" << params.p_min
            << ", " << params.p_max << "]\n\n";

  runner::RunnerOptions options;
  options.base_seed = 42;
  const runner::ScenarioResult result = runner::run_scenario(spec, options);
  if (!result.error.empty()) {
    std::cerr << "run failed: " << result.error << "\n";
    return 1;
  }

  util::Table table(spec.name());
  table.set_header({"metric", "measured", "bound"});
  table.add_row({"rounds completed", std::to_string(result.rounds_completed),
                 "-"});
  table.add_row({"worst skew", util::Table::num(result.max_skew, 4),
                 util::Table::num(result.predicted_skew, 4)});
  table.add_row({"steady skew (r>=5)", util::Table::num(result.steady_skew, 4),
                 util::Table::num(result.predicted_skew, 4)});
  table.add_row({"min period", util::Table::num(result.min_period, 4),
                 ">= " + util::Table::num(params.p_min, 4)});
  table.add_row({"max period", util::Table::num(result.max_period, 4),
                 "<= " + util::Table::num(params.p_max, 4)});
  table.add_row({"messages", std::to_string(result.messages), "-"});
  table.add_row({"model violations", std::to_string(result.violations), "0"});
  table.print(std::cout);

  const bool ok = result.within_bound && result.live && result.violations == 0;
  std::cout << "\n" << (ok ? "OK: Theorem 17 held." : "FAIL") << "\n";
  return ok ? 0 : 1;
}
