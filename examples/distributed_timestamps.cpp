// Distributed timestamping with logical clocks (paper introduction: clocks
// "coordinate actions in terms of real time").
//
// Nodes derive logical clocks from their CPS pulses by interpolation. Events
// occurring at different nodes are stamped with logical readings; because
// the logical skew is bounded, stamps order events correctly whenever they
// are separated by more than the skew bound — a happens-before guarantee
// with a quantified real-time resolution.

#include <algorithm>
#include <iostream>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "core/logical_clock.hpp"
#include "sim/world.hpp"
#include "util/table.hpp"

using namespace crusader;

int main() {
  sim::ModelParams model;
  model.n = 5;
  model.f = 2;
  model.d = 1.0;
  model.u = 0.02;
  model.u_tilde = 0.02;
  model.vartheta = 1.005;

  const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
  auto honest = baselines::make_protocol_factory(setup);
  auto byzantine =
      core::make_byzantine_factory(core::ByzStrategy::kPullEarly, honest, 3);

  sim::WorldConfig config;
  config.model = model;
  config.seed = 3;
  config.initial_offset = setup.cps.S;
  config.horizon = 40.0 * setup.cps.p_max;
  config.clock_kind = sim::ClockKind::kRandomWalk;
  config.delay_kind = sim::DelayKind::kRandom;
  config.faulty = {0, 1};

  sim::World world(config, honest, byzantine);
  const auto result = world.run();

  // Logical clocks: one tick = 1000 logical units per pulse interval.
  const double tick = 1000.0;
  core::LogicalClockView clock2(result.trace, 2, tick);
  core::LogicalClockView clock3(result.trace, 3, tick);
  core::LogicalClockView clock4(result.trace, 4, tick);

  // Stamp a burst of events spread across nodes and real time.
  util::Table table("events stamped with per-node logical clocks");
  table.set_header({"real time", "L_2(t)", "L_3(t)", "L_4(t)", "max diff"});
  const double begin = std::max({clock2.domain_begin(), clock3.domain_begin(),
                                 clock4.domain_begin()});
  const double end = std::min({clock2.domain_end(), clock3.domain_end(),
                               clock4.domain_end()});
  for (int i = 0; i <= 6; ++i) {
    const double t = begin + (end - begin) * i / 6.0;
    const double a = clock2.at(t);
    const double b = clock3.at(t);
    const double c = clock4.at(t);
    const double diff =
        std::max({a, b, c}) - std::min({a, b, c});
    table.add_row({util::Table::num(t, 2), util::Table::num(a, 1),
                   util::Table::num(b, 1), util::Table::num(c, 1),
                   util::Table::num(diff, 1)});
  }
  table.print(std::cout);

  const double measured = core::max_logical_skew(result.trace, tick, 400);
  const double bound = tick * (setup.cps.S / setup.cps.p_min +
                               (setup.cps.p_max - setup.cps.p_min) /
                                   setup.cps.p_min);
  // Resolution in real time: two events further apart than this many time
  // units are always ordered correctly by their logical stamps.
  const double resolution = measured / (tick / setup.cps.p_min);

  std::cout << "\nmax logical skew: " << measured << " (bound " << bound
            << ")\n";
  std::cout << "ordering resolution: events > " << resolution
            << " time units apart are correctly ordered (d = " << model.d
            << ")\n";
  const bool ok = measured <= bound + 1e-6;
  std::cout << (ok ? "OK" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
