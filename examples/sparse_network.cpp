// Sparse-network example (paper Appendix A): synchronize 12 nodes arranged
// as a ring of three 4-cliques — a realistic "three data centers, redundant
// interconnects" layout — with two crashed nodes, over signed relay paths.

#include <iostream>
#include <memory>

#include "core/cps.hpp"
#include "core/params.hpp"
#include "relay/flood_world.hpp"
#include "relay/topology.hpp"
#include "util/table.hpp"

using namespace crusader;

int main() {
  // Three "data centers" of 4 nodes each; consecutive centers joined by two
  // node-disjoint links. This survives any 2 crashed nodes.
  const auto topo = relay::Topology::ring_of_cliques(3, 4, 2);

  relay::RelayConfig config;
  config.topology = topo;
  config.hop_model.n = topo.n();
  config.hop_model.f = 2;
  config.hop_model.d = 1.0;    // per-hop delay bound (e.g. 1 ms)
  config.hop_model.u = 0.02;   // per-hop uncertainty (20 µs)
  config.hop_model.u_tilde = 0.02;
  config.hop_model.vartheta = 1.002;
  config.faulty = {0, 4};      // one node down in each of two centers
  config.seed = 2026;

  std::cout << "topology: 3 cliques x 4 nodes, 2 bridges each, "
            << topo.edge_count() << " edges\n";
  std::cout << "(f+1)-connected for f=2: "
            << (topo.survives_faults(2) ? "yes" : "no") << "\n";

  const auto effective = relay::effective_model(config);
  const auto params = core::derive_cps_params(effective);
  if (!params.feasible) {
    std::cerr << "infeasible effective parameters\n";
    return 1;
  }
  std::cout << "worst-case relay distance D_f = "
            << topo.worst_case_distance(2) << " hops\n"
            << "effective model: d_eff = " << effective.d
            << ", u_eff = " << effective.u << "\n"
            << "CPS constants:   S = " << params.S << ", T = " << params.T
            << "\n\n";

  config.initial_offset = params.S;
  config.horizon = params.S + 14.0 * params.p_max;

  core::CpsConfig cps;
  cps.params = params;
  relay::RelayWorld world(config, [cps](NodeId) {
    return std::make_unique<core::CpsNode>(cps);
  });
  const auto result = world.run();

  util::Table table("CPS over the sparse overlay (2 crashed nodes)");
  table.set_header({"metric", "value", "bound"});
  table.add_row({"rounds", std::to_string(result.trace.complete_rounds()),
                 "-"});
  table.add_row({"worst skew", util::Table::num(result.trace.max_skew(), 4),
                 util::Table::num(params.S, 4)});
  table.add_row({"steady skew (r>=4)",
                 util::Table::num(result.trace.max_skew(4), 4), "-"});
  table.add_row({"min period", util::Table::num(result.trace.min_period(), 3),
                 ">= " + util::Table::num(params.p_min, 3)});
  table.add_row({"physical msgs", std::to_string(result.physical_messages),
                 "-"});
  table.add_row({"floods", std::to_string(result.floods), "-"});
  table.print(std::cout);

  const bool ok = result.trace.live(10) &&
                  result.trace.max_skew() <= params.S + 1e-9;
  std::cout << "\n" << (ok ? "OK: sparse translation held Theorem 17." : "FAIL")
            << "\n";
  return ok ? 0 : 1;
}
