// Synchronizer application (paper introduction): simulate lock-step rounds
// on an asynchronous bounded-delay network by driving them from CPS pulses.
//
// The demo application is a distributed maximum-consensus: every node starts
// with a private value and repeatedly exchanges maxima. With exact round
// semantics the honest maximum propagates in one round; stragglers or lost
// round boundaries would show up as `late messages` > 0.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "core/cps.hpp"
#include "core/synchronizer.hpp"
#include "sim/world.hpp"
#include "util/table.hpp"

using namespace crusader;

int main() {
  sim::ModelParams model;
  model.n = 5;
  model.f = sim::ModelParams::max_faults_signed(model.n);
  model.d = 1.0;
  model.u = 0.05;
  model.u_tilde = 0.05;
  model.vartheta = 1.01;

  const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
  core::CpsConfig cps_config;
  cps_config.params = setup.cps;

  // Per-node application state, kept outside the world so we can report it.
  std::vector<double> values = {3.0, 14.0, 1.0, 9.0, 2.0};
  std::vector<std::map<Round, double>> history(model.n);
  std::vector<core::SynchronizerStats> stats(model.n);
  std::vector<core::SynchronizerNode*> nodes(model.n, nullptr);

  sim::HonestFactory honest = [&](NodeId v) {
    core::RoundFn fn = [&, v](Round round,
                              const std::vector<core::AppMessage>& inbox) {
      for (const auto& m : inbox) values[v] = std::max(values[v], m.value);
      history[v][round] = values[v];
      // Broadcast our current maximum this round.
      return std::vector<core::AppMessage>{
          core::AppMessage{kInvalidNode, values[v]}};
    };
    auto node = std::make_unique<core::SynchronizerNode>(
        std::make_unique<core::CpsNode>(cps_config), fn);
    nodes[v] = node.get();
    return node;
  };

  // Two Byzantine nodes running the random-noise strategy underneath.
  auto byzantine =
      core::make_byzantine_factory(core::ByzStrategy::kRandom, honest, 11);

  sim::WorldConfig config;
  config.model = model;
  config.seed = 11;
  config.initial_offset = setup.cps.S;
  config.horizon = 12.0 * setup.cps.p_max;
  config.clock_kind = sim::ClockKind::kSpread;
  config.delay_kind = sim::DelayKind::kRandom;
  config.faulty = {0, 1};

  sim::World world(config, honest, byzantine);
  const auto result = world.run();
  for (NodeId v = 0; v < model.n; ++v)
    if (nodes[v] != nullptr) stats[v] = nodes[v]->stats();

  util::Table table("max-consensus over CPS-driven synchronous rounds");
  table.set_header({"node", "initial", "round 2", "round 4", "rounds",
                    "late msgs"});
  for (NodeId v = 2; v < model.n; ++v) {  // honest nodes
    auto at = [&](Round r) {
      const auto it = history[v].find(r);
      return it == history[v].end() ? std::string("-")
                                    : util::Table::num(it->second, 1);
    };
    table.add_row({std::to_string(v),
                   util::Table::num(v == 2 ? 1.0 : (v == 3 ? 9.0 : 2.0), 1),
                   at(2), at(4), std::to_string(stats[v].rounds_started),
                   std::to_string(stats[v].late_messages)});
  }
  table.print(std::cout);

  // All honest nodes must have converged to the honest maximum (14 lives at
  // faulty node 1 — excluded; the honest max among nodes 2..4 is 9).
  bool converged = true;
  for (NodeId v = 2; v < model.n; ++v) {
    const auto it = history[v].rbegin();
    converged = converged && it != history[v].rend() && it->second >= 9.0;
  }
  std::uint64_t late = 0;
  for (NodeId v = 2; v < model.n; ++v) late += stats[v].late_messages;

  std::cout << "\nround guarantee: every round-r message arrived before the\n"
               "receiver's pulse r+1 (late messages = "
            << late << ")\n";
  std::cout << (converged && late == 0 ? "OK" : "FAIL") << "\n";
  return converged && late == 0 ? 0 : 1;
}
