// crusader_cli — command-line driver for one-off experiments.
//
//   crusader_cli [--protocol cps|lw|st] [--n N] [--faulty F] [--u U] [--d D]
//                [--theta T] [--strategy crash|echo-rush|split|pull-early|
//                 pull-late|replay|random] [--rounds R] [--seed S]
//                [--clocks nominal|spread|walk] [--delays max|min|random|split]
//                [--topology complete|ring|chordal|cliques]
//                [--lower-bound] [--u-tilde U] [--csv]
//
// Examples:
//   crusader_cli --n 9 --faulty 4 --strategy split
//   crusader_cli --protocol st --n 7 --faulty 3
//   crusader_cli --lower-bound --u-tilde 0.3
//   crusader_cli --topology cliques --n 12 --faulty 2

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "baselines/factories.hpp"
#include "sim/trace_io.hpp"
#include "core/adversaries.hpp"
#include "core/cps.hpp"
#include "lowerbound/theorem5.hpp"
#include "relay/flood_world.hpp"
#include "relay/topology.hpp"
#include "util/table.hpp"

using namespace crusader;

namespace {

struct Options {
  baselines::ProtocolKind protocol = baselines::ProtocolKind::kCps;
  std::uint32_t n = 7;
  std::uint32_t faulty = 0xffffffffu;  // default: max for the protocol
  double u = 0.05;
  double d = 1.0;
  double theta = 1.01;
  double u_tilde = -1.0;  // default: = u
  core::ByzStrategy strategy = core::ByzStrategy::kSplit;
  std::size_t rounds = 25;
  std::uint64_t seed = 1;
  sim::ClockKind clocks = sim::ClockKind::kSpread;
  sim::DelayKind delays = sim::DelayKind::kRandom;
  std::string topology = "complete";
  bool lower_bound = false;
  bool csv = false;
  std::string pulses_csv;  // --pulses-csv FILE: raw pulse trace export
  std::string rounds_csv;  // --rounds-csv FILE: per-round skew export
};

void export_traces(const Options& opt, const sim::PulseTrace& trace) {
  if (!opt.pulses_csv.empty()) {
    std::ofstream out(opt.pulses_csv);
    sim::write_pulses_csv(trace, out);
    std::cerr << "wrote " << opt.pulses_csv << "\n";
  }
  if (!opt.rounds_csv.empty()) {
    std::ofstream out(opt.rounds_csv);
    sim::write_rounds_csv(trace, out);
    std::cerr << "wrote " << opt.rounds_csv << "\n";
  }
}

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::cerr << "error: " << error << "\n";
  std::cerr <<
      "usage: crusader_cli [--protocol cps|lw|st] [--n N] [--faulty F]\n"
      "  [--u U] [--d D] [--theta T] [--u-tilde U] [--rounds R] [--seed S]\n"
      "  [--strategy crash|echo-rush|split|pull-early|pull-late|replay|random]\n"
      "  [--clocks nominal|spread|walk] [--delays max|min|random|split]\n"
      "  [--topology complete|ring|chordal|cliques] [--lower-bound] [--csv]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--protocol") {
      const std::string v = need(i);
      if (v == "cps") opt.protocol = baselines::ProtocolKind::kCps;
      else if (v == "lw") opt.protocol = baselines::ProtocolKind::kLynchWelch;
      else if (v == "st") opt.protocol = baselines::ProtocolKind::kSrikanthToueg;
      else usage("unknown protocol");
    } else if (arg == "--n") {
      opt.n = static_cast<std::uint32_t>(std::stoul(need(i)));
    } else if (arg == "--faulty") {
      opt.faulty = static_cast<std::uint32_t>(std::stoul(need(i)));
    } else if (arg == "--u") {
      opt.u = std::stod(need(i));
    } else if (arg == "--d") {
      opt.d = std::stod(need(i));
    } else if (arg == "--theta") {
      opt.theta = std::stod(need(i));
    } else if (arg == "--u-tilde") {
      opt.u_tilde = std::stod(need(i));
    } else if (arg == "--rounds") {
      opt.rounds = std::stoul(need(i));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need(i));
    } else if (arg == "--strategy") {
      const std::map<std::string, core::ByzStrategy> names = {
          {"crash", core::ByzStrategy::kCrash},
          {"echo-rush", core::ByzStrategy::kEchoRush},
          {"split", core::ByzStrategy::kSplit},
          {"pull-early", core::ByzStrategy::kPullEarly},
          {"pull-late", core::ByzStrategy::kPullLate},
          {"replay", core::ByzStrategy::kReplay},
          {"random", core::ByzStrategy::kRandom}};
      const auto it = names.find(need(i));
      if (it == names.end()) usage("unknown strategy");
      opt.strategy = it->second;
    } else if (arg == "--clocks") {
      const std::string v = need(i);
      if (v == "nominal") opt.clocks = sim::ClockKind::kNominal;
      else if (v == "spread") opt.clocks = sim::ClockKind::kSpread;
      else if (v == "walk") opt.clocks = sim::ClockKind::kRandomWalk;
      else usage("unknown clock kind");
    } else if (arg == "--delays") {
      const std::string v = need(i);
      if (v == "max") opt.delays = sim::DelayKind::kMax;
      else if (v == "min") opt.delays = sim::DelayKind::kMin;
      else if (v == "random") opt.delays = sim::DelayKind::kRandom;
      else if (v == "split") opt.delays = sim::DelayKind::kSplit;
      else usage("unknown delay kind");
    } else if (arg == "--topology") {
      opt.topology = need(i);
    } else if (arg == "--lower-bound") {
      opt.lower_bound = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--pulses-csv") {
      opt.pulses_csv = need(i);
    } else if (arg == "--rounds-csv") {
      opt.rounds_csv = need(i);
    } else if (arg == "--help" || arg == "-h") {
      usage(nullptr);
    } else {
      usage("unknown flag");
    }
  }
  return opt;
}

void emit(const util::Table& table, bool csv) {
  if (csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
}

int run_lower_bound(const Options& opt) {
  sim::ModelParams model;
  model.n = 3;
  model.f = 1;
  model.d = opt.d;
  model.u = opt.u;
  model.u_tilde = opt.u_tilde > 0 ? opt.u_tilde : opt.u;
  model.vartheta = opt.theta > 1.0 ? opt.theta : 1.05;

  const auto report =
      lowerbound::run_theorem5(opt.protocol, model, opt.rounds);
  if (!report.feasible) {
    std::cerr << "crusader_cli: " << baselines::to_string(opt.protocol)
              << " constants are unsolvable for this model; the construction "
                 "did not run\n";
    return 1;
  }
  util::Table table("Theorem 5 lower bound");
  table.set_header({"metric", "value"});
  table.add_row({"protocol", baselines::to_string(opt.protocol)});
  table.add_row({"u_tilde", util::Table::num(model.u_tilde, 4)});
  table.add_row({"bound 2*u_tilde/3", util::Table::num(report.bound, 4)});
  table.add_row({"realized skew", util::Table::num(report.max_skew, 4)});
  table.add_row({"telescoped sum", util::Table::num(report.telescoped_sum, 4)});
  table.add_row({"rounds measured", std::to_string(report.rounds)});
  table.add_row({"bound holds", util::Table::boolean(report.bound_holds)});
  emit(table, opt.csv);
  return report.bound_holds ? 0 : 1;
}

int run_sparse(const Options& opt, const sim::ModelParams& hop_model,
               std::uint32_t f_actual) {
  relay::RelayConfig config;
  if (opt.topology == "ring") {
    config.topology = relay::Topology::ring(opt.n);
  } else if (opt.topology == "chordal") {
    config.topology = relay::Topology::chordal_ring(opt.n, 3);
  } else if (opt.topology == "cliques") {
    if (opt.n % 4 != 0 || opt.n < 8) usage("cliques needs n divisible by 4, >= 8");
    config.topology = relay::Topology::ring_of_cliques(opt.n / 4, 4, 2);
  } else {
    usage("unknown topology");
  }
  config.hop_model = hop_model;
  // The fault budget a sparse topology can carry is set by its connectivity,
  // not by ⌈n/2⌉−1; tolerate exactly the requested faults.
  config.hop_model.f = std::max(f_actual, 1u);
  config.seed = opt.seed;
  config.faulty = sim::default_faulty_set(f_actual);

  const auto eff = relay::effective_model(config);
  const auto params = core::derive_cps_params(eff);
  if (!params.feasible) {
    std::cerr << "infeasible effective parameters\n";
    return 1;
  }
  config.initial_offset = params.S;
  config.horizon = params.S + (opt.rounds + 2) * params.p_max;

  core::CpsConfig cps;
  cps.params = params;
  relay::RelayWorld world(config, [cps](NodeId) {
    return std::make_unique<core::CpsNode>(cps);
  });
  const auto result = world.run();

  util::Table table("CPS over sparse topology '" + opt.topology + "'");
  table.set_header({"metric", "value", "bound"});
  table.add_row({"worst hops D_f", std::to_string(result.worst_hops), "-"});
  table.add_row({"d_eff / u_eff",
                 util::Table::num(eff.d, 3) + " / " + util::Table::num(eff.u, 3),
                 "-"});
  table.add_row({"rounds", std::to_string(result.trace.complete_rounds()), "-"});
  table.add_row({"worst skew", util::Table::num(result.trace.max_skew(), 4),
                 util::Table::num(params.S, 4)});
  table.add_row({"physical messages", std::to_string(result.physical_messages),
                 "-"});
  emit(table, opt.csv);
  export_traces(opt, result.trace);
  return result.trace.max_skew() <= params.S + 1e-9 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  if (opt.lower_bound) return run_lower_bound(opt);

  sim::ModelParams model;
  model.n = opt.n;
  model.f = opt.protocol == baselines::ProtocolKind::kLynchWelch
                ? sim::ModelParams::max_faults_plain(opt.n)
                : sim::ModelParams::max_faults_signed(opt.n);
  model.d = opt.d;
  model.u = opt.u;
  model.u_tilde = opt.u_tilde > 0 ? opt.u_tilde : opt.u;
  model.vartheta = opt.theta;
  const std::uint32_t f_actual =
      opt.faulty == 0xffffffffu ? model.f : opt.faulty;
  if (f_actual > model.f) usage("--faulty exceeds the protocol's resilience");

  if (opt.topology != "complete") return run_sparse(opt, model, f_actual);

  const auto setup = baselines::make_setup(opt.protocol, model);
  if (!setup.feasible) {
    std::cerr << "infeasible parameters (vartheta too large?)\n";
    return 1;
  }

  auto honest = baselines::make_protocol_factory(setup);
  sim::ByzantineFactory byz;
  if (f_actual > 0)
    byz = core::make_byzantine_factory(opt.strategy, honest, opt.seed, 0.1,
                                       0.1);

  sim::WorldConfig config;
  config.model = model;
  config.seed = opt.seed;
  config.initial_offset = setup.initial_offset;
  config.horizon = setup.initial_offset +
                   static_cast<double>(opt.rounds + 2) * setup.round_length;
  config.clock_kind = opt.clocks;
  config.delay_kind = opt.delays;
  config.faulty = sim::default_faulty_set(f_actual);

  sim::World world(config, honest, byz);
  const auto result = world.run();

  util::Table table(std::string(baselines::to_string(opt.protocol)) +
                    ", n=" + std::to_string(opt.n) +
                    ", f_actual=" + std::to_string(f_actual) + " (" +
                    core::to_string(opt.strategy) + ")");
  table.set_header({"metric", "value", "bound"});
  table.add_row({"rounds", std::to_string(result.trace.complete_rounds()), "-"});
  table.add_row({"worst skew", util::Table::num(result.trace.max_skew(), 4),
                 util::Table::num(setup.predicted_skew, 4)});
  table.add_row({"steady skew",
                 result.trace.complete_rounds() > opt.rounds / 3
                     ? util::Table::num(result.trace.max_skew(opt.rounds / 3), 4)
                     : "-",
                 "-"});
  table.add_row({"min period", util::Table::num(result.trace.min_period(), 4),
                 "-"});
  table.add_row({"max period", util::Table::num(result.trace.max_period(), 4),
                 "-"});
  table.add_row({"messages", std::to_string(result.messages), "-"});
  table.add_row({"violations", std::to_string(result.violations.size()), "0"});
  emit(table, opt.csv);
  export_traces(opt, result.trace);

  return result.trace.live(opt.rounds) ? 0 : 1;
}
