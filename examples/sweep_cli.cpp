// sweep_cli — run a declarative scenario sweep from one invocation.
//
//   $ ./sweep_cli                                # default 36-scenario sweep
//   $ ./sweep_cli --protocols=cps,st --n=4,5 --faults=0 --rounds=6
//                 --threads=2 --format=table     # CI smoke sweep (one line)
//   $ ./sweep_cli --world relay --topology hypercube --format=csv
//   $ ./sweep_cli --world theorem5 --u-tilde 0.2
//
// Flags take `--key=value` or `--key value`. Axes (comma-separated lists
// expand to the cross product):
//   --world=complete,relay,theorem5  simulation worlds (complete graph /
//                                    Appendix-A sparse relay / Theorem-5
//                                    lower-bound construction)
//   --protocols=cps,lw,st      protocol kinds
//   --n=4,7,9                  cluster sizes (relay: topology size;
//                              theorem5 pins n=3)
//   --faults=0,max             faulty-node counts ("max" = the protocol's
//                              optimal resilience at that n, capped by the
//                              topology's connectivity for relay worlds)
//   --vartheta=1.01            clock drift bounds
//   --u=0.05                   delay uncertainties (per-hop u_hop for relay)
//   --u-tilde=0.1,0.2          faulty-link uncertainties ũ (default: ũ = u);
//                              the Theorem-5 construction's ũ
//   --topology=ring,hypercube  relay topology families (complete|ring|
//                              chordal-ring|ring-of-cliques|hypercube|random)
//   --relay-fault=crash,reorder  faulty-relay behaviors for relay worlds
//                              (crash|max-delay|reorder|selective-drop);
//                              only multiplies faulty relay grid points
//   --delays=random,split      delay policies (max|min|random|split)
//   --clocks=spread,random-walk  clock assignments (nominal|spread|random-walk)
//   --byz=crash,split          Byzantine strategies (only for faults > 0);
//                              also accepts st-accel
// Scalars:
//   --d=1.0 --rounds=20 --warmup=5 --seed=1 --threads=1 --slack=1.0
//   --gate=RATIO   fail (exit 1) when any feasible completed scenario has
//                  max_skew/bound > RATIO — or, for theorem5 scenarios,
//                  fails to realize its lower bound
// Output:
//   --format=csv|json|table (default table)   --out=FILE (default stdout)
//
// Exit status is non-zero if any scenario errored, any feasible fault-free
// CPS scenario exceeded its Theorem-17 skew bound, or the --gate tripped.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "runner/export.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "util/table.hpp"

using namespace crusader;

namespace {

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int fail(const std::string& msg) {
  std::cerr << "sweep_cli: " << msg << "\n";
  return 2;
}

void print_table(std::ostream& os, const runner::SweepReport& report) {
  util::Table table("scenario sweep (" +
                    std::to_string(report.results.size()) + " scenarios)");
  table.set_header({"scenario", "feasible", "live", "steady skew", "bound",
                    "ratio", "ok", "messages", "violations", "error"});
  for (const auto& r : report.results) {
    table.add_row({r.spec.name(), util::Table::boolean(r.feasible),
                   util::Table::boolean(r.live),
                   r.rounds_completed ? util::Table::num(r.steady_skew, 4) : "-",
                   r.feasible ? util::Table::num(r.predicted_skew, 4) : "-",
                   r.rounds_completed ? util::Table::num(r.skew_ratio, 3) : "-",
                   util::Table::boolean(r.within_bound),
                   std::to_string(r.messages), std::to_string(r.violations),
                   r.error.empty() ? "-" : r.error});
  }
  table.print(os);

  util::Table summary("per-protocol summary (feasible, error-free scenarios)");
  summary.set_header({"protocol", "scenarios", "infeasible", "errors",
                      "bound violations", "steady skew mean", "steady skew max",
                      "messages mean"});
  for (const auto& s : report.by_protocol()) {
    summary.add_row(
        {baselines::to_string(s.protocol), std::to_string(s.scenarios),
         std::to_string(s.infeasible), std::to_string(s.errors),
         std::to_string(s.bound_violations),
         s.steady_skew.count() ? util::Table::num(s.steady_skew.mean(), 4) : "-",
         s.steady_skew.count() ? util::Table::num(s.steady_skew.max(), 4) : "-",
         s.messages.count() ? util::Table::num(s.messages.mean(), 1) : "-"});
  }
  os << '\n';
  summary.print(os);
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepGrid grid;
  // Default sweep: the paper's headline comparison across n, f, and delay
  // policies — 3 protocols × 3 n × {fault-free, max resilience} × 2 delay
  // policies = 36 scenarios.
  grid.protocols = {baselines::ProtocolKind::kCps,
                    baselines::ProtocolKind::kLynchWelch,
                    baselines::ProtocolKind::kSrikanthToueg};
  grid.ns = {4, 7, 9};
  grid.fault_loads = {0, runner::SweepGrid::kMaxResilience};
  grid.delays = {sim::DelayKind::kRandom, sim::DelayKind::kSplit};
  grid.strategies = {core::ByzStrategy::kCrash};

  runner::RunnerOptions options;
  std::string format = "table";
  std::string out_path;
  bool st_accel = false;
  bool n_given = false;
  std::optional<double> gate;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      return fail("expected --key=value or --key value, got '" + arg + "'");
    const auto eq = arg.find('=');
    std::string key;
    std::string value;
    if (eq != std::string::npos) {
      key = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      key = arg.substr(2);
      if (i + 1 >= argc)
        return fail("missing value for --" + key);
      value = argv[++i];
    }
    try {
      if (key == "world") {
        grid.worlds.clear();
        for (const auto& s : split(value)) {
          const auto w = runner::parse_world(s);
          if (!w) return fail("unknown world '" + s + "'");
          grid.worlds.push_back(*w);
        }
      } else if (key == "protocols") {
        grid.protocols.clear();
        for (const auto& s : split(value)) {
          const auto p = runner::parse_protocol(s);
          if (!p) return fail("unknown protocol '" + s + "'");
          grid.protocols.push_back(*p);
        }
      } else if (key == "n") {
        n_given = true;
        grid.ns.clear();
        for (const auto& s : split(value))
          grid.ns.push_back(static_cast<std::uint32_t>(std::stoul(s)));
      } else if (key == "faults") {
        grid.fault_loads.clear();
        for (const auto& s : split(value)) {
          if (s == "max") {
            grid.fault_loads.push_back(runner::SweepGrid::kMaxResilience);
            continue;
          }
          const long count = std::stol(s);
          if (count < 0)
            return fail("--faults takes counts >= 0 or 'max', got '" + s + "'");
          grid.fault_loads.push_back(count);
        }
      } else if (key == "vartheta") {
        grid.varthetas.clear();
        for (const auto& s : split(value)) grid.varthetas.push_back(std::stod(s));
      } else if (key == "u") {
        grid.us.clear();
        for (const auto& s : split(value)) grid.us.push_back(std::stod(s));
      } else if (key == "u-tilde" || key == "u_tilde") {
        grid.u_tildes.clear();
        for (const auto& s : split(value)) grid.u_tildes.push_back(std::stod(s));
      } else if (key == "topology") {
        grid.topologies.clear();
        for (const auto& s : split(value)) {
          const auto t = runner::parse_topology(s);
          if (!t) return fail("unknown topology '" + s + "'");
          grid.topologies.push_back(*t);
        }
      } else if (key == "relay-fault" || key == "relay_fault") {
        grid.relay_faults.clear();
        for (const auto& s : split(value)) {
          const auto rf = runner::parse_relay_fault(s);
          if (!rf) return fail("unknown relay fault '" + s + "'");
          grid.relay_faults.push_back(*rf);
        }
        // An empty list would silently drop every faulty relay grid point
        // (expand() pushes nothing for them) and let a --gate pass
        // vacuously; fail loudly instead.
        if (grid.relay_faults.empty())
          return fail("--relay-fault needs at least one value");
      } else if (key == "delays") {
        grid.delays.clear();
        for (const auto& s : split(value)) {
          const auto dk = runner::parse_delay_kind(s);
          if (!dk) return fail("unknown delay policy '" + s + "'");
          grid.delays.push_back(*dk);
        }
      } else if (key == "clocks") {
        grid.clock_kinds.clear();
        for (const auto& s : split(value)) {
          const auto ck = runner::parse_clock_kind(s);
          if (!ck) return fail("unknown clock kind '" + s + "'");
          grid.clock_kinds.push_back(*ck);
        }
      } else if (key == "byz") {
        grid.strategies.clear();
        st_accel = false;
        for (const auto& s : split(value)) {
          if (s == "st-accel") {
            st_accel = true;
            continue;
          }
          const auto b = runner::parse_byz_strategy(s);
          if (!b) return fail("unknown byz strategy '" + s + "'");
          grid.strategies.push_back(*b);
        }
        if (grid.strategies.empty())
          grid.strategies = {core::ByzStrategy::kCrash};
      } else if (key == "d") {
        grid.d = std::stod(value);
      } else if (key == "rounds") {
        grid.rounds = std::stoul(value);
      } else if (key == "warmup") {
        grid.warmup = std::stoul(value);
      } else if (key == "slack") {
        grid.slack = std::stod(value);
      } else if (key == "seed") {
        options.base_seed = std::stoull(value);
      } else if (key == "threads") {
        options.threads = static_cast<unsigned>(std::stoul(value));
      } else if (key == "gate") {
        gate = std::stod(value);
      } else if (key == "format") {
        if (value != "csv" && value != "json" && value != "table")
          return fail("unknown format '" + value + "'");
        format = value;
      } else if (key == "out") {
        out_path = value;
      } else {
        return fail("unknown option '--" + key + "'");
      }
    } catch (const std::exception&) {
      return fail("bad value for --" + key + ": '" + value + "'");
    }
  }

  // The flat-world default n axis {4,7,9} makes poor sparse topologies (a
  // hypercube needs a power of two). When every requested world is
  // relay/theorem5 and no --n was given, default to one topology-friendly
  // size instead.
  bool any_complete = false;
  for (const auto w : grid.worlds)
    if (w == runner::WorldKind::kComplete) any_complete = true;
  if (!n_given && !any_complete) grid.ns = {8};

  auto specs = grid.expand();
  if (st_accel) {
    // Add ST certificate-acceleration variants for every faulty ST point.
    std::vector<runner::ScenarioSpec> extra;
    for (const auto& spec : specs) {
      if (spec.protocol == baselines::ProtocolKind::kSrikanthToueg &&
          spec.world == runner::WorldKind::kComplete && spec.f_actual > 0) {
        auto attack = spec;
        attack.st_accelerator = true;
        extra.push_back(attack);
      }
    }
    specs.insert(specs.end(), extra.begin(), extra.end());
  }
  if (specs.empty()) return fail("empty grid");

  const auto report = runner::run_sweep(specs, options);

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) return fail("cannot open '" + out_path + "'");
  }
  std::ostream& os = out_path.empty() ? std::cout : file;
  if (format == "csv")
    runner::write_csv(os, report);
  else if (format == "json")
    runner::write_json(os, report);
  else
    print_table(os, report);

  // Gates: no errors; fault-free CPS always within the Theorem-17 bound; and
  // the optional --gate ratio over every world's realized-vs-bound ratio.
  int status = 0;
  for (const auto& r : report.results) {
    if (!r.error.empty()) status = 1;
    if (r.spec.protocol == baselines::ProtocolKind::kCps && r.feasible &&
        r.spec.world != runner::WorldKind::kTheorem5 && r.spec.f_actual == 0 &&
        r.rounds_completed > 0 && !r.within_bound)
      status = 1;
  }
  if (gate) {
    const std::size_t tripped = runner::count_gate_violations(report, *gate);
    if (tripped > 0) {
      std::cerr << "sweep_cli: --gate=" << *gate << " tripped by " << tripped
                << " scenario(s)\n";
      status = 1;
    }
  }
  if (status != 0)
    std::cerr << "sweep_cli: FAILED (errors, bound violations, or gate)\n";
  return status;
}
