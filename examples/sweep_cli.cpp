// sweep_cli — run a declarative scenario sweep from one invocation.
//
//   $ ./sweep_cli                                # default 36-scenario sweep
//   $ ./sweep_cli --protocols=cps,st --n=4,5 --faults=0 --rounds=6
//                 --threads=2 --format=table     # CI smoke sweep (one line)
//   $ ./sweep_cli --world relay --topology hypercube --format=csv
//   $ ./sweep_cli --world theorem5 --u-tilde 0.2
//   $ ./sweep_cli --format=csv --out=camp.csv --resume=camp.manifest
//                 --budget-ms=2000 --history=ratios.txt --gate-trend=5
//
// Flags take `--key=value` or `--key value`. Axes (comma-separated lists
// expand to the cross product):
//   --world=complete,relay,theorem5  simulation worlds (complete graph /
//                                    Appendix-A sparse relay / Theorem-5
//                                    lower-bound construction)
//   --protocols=cps,lw,st,probe,gradient,jump-max  protocol kinds (probe =
//                              the flood-probe transport conformance check;
//                              gradient/jump-max = the one-hop KLLO-style
//                              pair — bounded-rate vs jump-to-max clock
//                              adjustment over current neighbors only;
//                              theorem5 skips all three)
//   --n=4,7,9                  cluster sizes (relay: topology size;
//                              theorem5 pins n=3)
//   --faults=0,max             faulty-node counts ("max" = the protocol's
//                              optimal resilience at that n, capped by the
//                              topology's connectivity for relay worlds)
//   --vartheta=1.01            clock drift bounds
//   --u=0.05                   delay uncertainties (per-hop u_hop for relay)
//   --u-tilde=0.1,0.2          faulty-link uncertainties ũ (default: ũ = u);
//                              the Theorem-5 construction's ũ
//   --topology=ring,hypercube  relay topology families (complete|ring|
//                              chordal-ring|ring-of-cliques|hypercube|random)
//   --relay-fault=crash,reorder  faulty-relay behaviors for relay worlds
//                              (crash|max-delay|reorder|selective-drop|
//                              greedy-skew|search); only multiplies faulty
//                              relay grid points. greedy-skew/search are
//                              adaptive (traffic-observing) and additionally
//                              multiply the churn axes
//   --delays=random,split      delay policies (max|min|random|split), plus
//                              custom spellings: custom:fixed:<fraction>,
//                              custom:alternate, custom:target:<node>
//                              (--delay is accepted as an alias)
//   --clocks=spread,random-walk  clock assignments (nominal|spread|random-walk)
//   --crypto=real,abstract     signature-cost models (real = SHA-256-backed
//                              hashing, abstract = registry unforgeability
//                              without hashing bytes — the large-n mode;
//                              theorem5 collapses the axis)
//   --byz=crash,split          Byzantine strategies (only for faults > 0);
//                              also accepts st-accel
//   --churn-rate=0,0.05        per-epoch edge-rewire rates (fraction of the
//                              live edge set rewired each round; relay-only,
//                              fault-free cells — a rate of 0 is the static
//                              network and collapses with the other dynamic
//                              axes into the classic cell)
//   --join-batch=0,2           nodes leaving/rejoining per epoch (relay-only;
//                              node n-1 anchors the beacon and never leaves)
//   --reconnect=random,repair  reconnect policies for churned edges
//                              (random|preferential|ring-repair)
//   --kllo-stab=1,4            KLLO stabilization-time multipliers: the
//                              per-edge-age envelope declares an edge
//                              settled after ceil(mult·(1+log2 n)) rounds
//                              (relay-only; multiplies churned cells only —
//                              static cells pin the multiplier to 1)
//   --search-budget=8,32       candidate schedules per search-fault cell
//                              (multiplies relay-fault=search cells only;
//                              candidate 0 replays the greedy policy, so
//                              search weakly dominates greedy-skew)
// Scalars:
//   --d=1.0 --rounds=20 --warmup=5 --seed=1 --threads=1 --slack=1.0
//   --gate=RATIO   fail (exit 1) when any scenario errored/timed out or any
//                  feasible completed scenario has max_skew/bound > RATIO —
//                  or, for theorem5 scenarios, fails to realize its lower
//                  bound
//   --gate-local=RATIO  fail (exit 1) when any scenario's local (gradient)
//                  skew ratio local_skew/bound exceeds RATIO; the natural
//                  gate for dynamic (churned) cells, where the global gate
//                  is dominated by partition-transient rounds
//   --gate-kllo=RATIO  fail (exit 1) when any relay scenario's kllo_ratio —
//                  worst per-edge skew over the per-edge-AGE envelope
//                  (runner/kllo.hpp) — exceeds RATIO. 1.0 gates on the
//                  envelope itself: fresh edges get the settling allowance,
//                  settled edges must sit inside the O(log n) band, which is
//                  exactly where jump-to-max fails and gradient passes
//   --budget-ms=N  per-scenario wall-clock budget: a cell that exhausts it
//                  is aborted and exported with timed_out=1 instead of
//                  hanging the sweep
// Campaigns (streamed, resumable CSV):
//   --resume=FILE  checkpoint manifest path; requires --format=csv --out.
//                  Results stream to the CSV as they complete (memory stays
//                  O(threads) however large the grid) and completed spec
//                  digests checkpoint to FILE every --checkpoint-every=N
//                  rows (default 32). Re-running the same command after a
//                  kill resumes: already-recorded rows are skipped and the
//                  final CSV is byte-identical to an uninterrupted run.
// skew_ratio history:
//   --history=FILE    append one summary line per run (max/mean skew_ratio
//                     per world, tagged with a digest of the grid + seed)
//                     to FILE
//   --gate-trend=PCT  fail (exit 1) when any world's max skew_ratio
//                     regressed more than PCT percent over the baseline, or
//                     when any cell errored/timed out. The baseline is the
//                     last --history entry for the SAME grid + seed that
//                     completed cleanly (entries from other grids and
//                     errored/timed-out runs are never a baseline; with no
//                     comparable entry the trend check passes). A regressed
//                     run is NOT appended, so the baseline stays.
// Output:
//   --format=csv|json|table (default table)   --out=FILE (default stdout)
//
// Exit status is non-zero if any scenario errored or timed out, any feasible
// fault-free CPS scenario exceeded its Theorem-17 skew bound, or the --gate
// or --gate-trend tripped. Malformed flag values exit 2 naming the flag.

#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "runner/campaign.hpp"
#include "runner/export.hpp"
#include "runner/history.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "util/table.hpp"

using namespace crusader;

namespace {

std::vector<std::string> split(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int fail(const std::string& msg) {
  std::cerr << "sweep_cli: " << msg << "\n";
  return 2;
}

/// Strict numeric flag parsing: exits 2 naming the flag on anything
/// std::from_chars does not consume completely — "abc", "1.5x", "-3" for
/// unsigned flags, inf/nan, overflow. (Bare std::stod/std::stoul accept
/// partial parses and wrap negatives, which is how "--gate=1.0x" used to
/// gate at 1.0 silently.)
struct FlagError {
  std::string message;
};

double need_double(const std::string& key, const std::string& value) {
  const auto parsed = runner::parse_double_strict(value);
  if (!parsed)
    throw FlagError{"bad numeric value for --" + key + ": '" + value + "'"};
  return *parsed;
}

std::uint64_t need_u64(const std::string& key, const std::string& value) {
  const auto parsed = runner::parse_u64_strict(value);
  if (!parsed)
    throw FlagError{"bad numeric value for --" + key + ": '" + value + "'"};
  return *parsed;
}

void print_table(std::ostream& os, const runner::SweepReport& report) {
  util::Table table("scenario sweep (" +
                    std::to_string(report.results.size()) + " scenarios)");
  table.set_header({"scenario", "feasible", "live", "steady skew", "bound",
                    "ratio", "ok", "messages", "violations", "error"});
  for (const auto& r : report.results) {
    table.add_row({r.spec.name(), util::Table::boolean(r.feasible),
                   util::Table::boolean(r.live),
                   r.rounds_completed ? util::Table::num(r.steady_skew, 4) : "-",
                   r.feasible ? util::Table::num(r.predicted_skew, 4) : "-",
                   r.rounds_completed ? util::Table::num(r.skew_ratio, 3) : "-",
                   util::Table::boolean(r.within_bound),
                   std::to_string(r.messages), std::to_string(r.violations),
                   r.timed_out ? "TIMED OUT"
                               : (r.error.empty() ? "-" : r.error)});
  }
  table.print(os);

  util::Table summary("per-protocol summary (feasible, error-free scenarios)");
  summary.set_header({"protocol", "scenarios", "infeasible", "errors",
                      "timed out", "bound violations", "steady skew mean",
                      "steady skew max", "messages mean"});
  for (const auto& s : report.by_protocol()) {
    summary.add_row(
        {baselines::to_string(s.protocol), std::to_string(s.scenarios),
         std::to_string(s.infeasible), std::to_string(s.errors),
         std::to_string(s.timed_out), std::to_string(s.bound_violations),
         s.steady_skew.count() ? util::Table::num(s.steady_skew.mean(), 4) : "-",
         s.steady_skew.count() ? util::Table::num(s.steady_skew.max(), 4) : "-",
         s.messages.count() ? util::Table::num(s.messages.mean(), 1) : "-"});
  }
  os << '\n';
  summary.print(os);
}

}  // namespace

int main(int argc, char** argv) {
  runner::SweepGrid grid;
  // Default sweep: the paper's headline comparison across n, f, and delay
  // policies — 3 protocols × 3 n × {fault-free, max resilience} × 2 delay
  // policies = 36 scenarios.
  grid.protocols = {baselines::ProtocolKind::kCps,
                    baselines::ProtocolKind::kLynchWelch,
                    baselines::ProtocolKind::kSrikanthToueg};
  grid.ns = {4, 7, 9};
  grid.fault_loads = {0, runner::SweepGrid::kMaxResilience};
  grid.delays = {sim::DelayKind::kRandom, sim::DelayKind::kSplit};
  grid.strategies = {core::ByzStrategy::kCrash};

  runner::RunnerOptions options;
  std::string format = "table";
  std::string out_path;
  std::string resume_path;
  std::string history_path;
  std::size_t checkpoint_every = 32;
  bool st_accel = false;
  bool n_given = false;
  std::optional<double> gate;
  std::optional<double> gate_local;
  std::optional<double> gate_kllo;
  std::optional<double> gate_trend;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      return fail("expected --key=value or --key value, got '" + arg + "'");
    const auto eq = arg.find('=');
    std::string key;
    std::string value;
    if (eq != std::string::npos) {
      key = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    } else {
      key = arg.substr(2);
      if (i + 1 >= argc)
        return fail("missing value for --" + key);
      value = argv[++i];
    }
    try {
      if (key == "world") {
        grid.worlds.clear();
        for (const auto& s : split(value)) {
          const auto w = runner::parse_world(s);
          if (!w) return fail("unknown world '" + s + "'");
          grid.worlds.push_back(*w);
        }
      } else if (key == "protocols") {
        grid.protocols.clear();
        for (const auto& s : split(value)) {
          const auto p = runner::parse_protocol(s);
          if (!p) return fail("unknown protocol '" + s + "'");
          grid.protocols.push_back(*p);
        }
      } else if (key == "n") {
        n_given = true;
        grid.ns.clear();
        for (const auto& s : split(value)) {
          const auto n = need_u64(key, s);
          if (n == 0 || n > UINT32_MAX)
            return fail("--n takes cluster sizes >= 1, got '" + s + "'");
          grid.ns.push_back(static_cast<std::uint32_t>(n));
        }
      } else if (key == "faults") {
        grid.fault_loads.clear();
        for (const auto& s : split(value)) {
          if (s == "max") {
            grid.fault_loads.push_back(runner::SweepGrid::kMaxResilience);
            continue;
          }
          const auto count = need_u64(key, s);
          if (count > UINT32_MAX)
            return fail("--faults takes counts >= 0 or 'max', got '" + s + "'");
          grid.fault_loads.push_back(static_cast<std::int64_t>(count));
        }
      } else if (key == "vartheta") {
        grid.varthetas.clear();
        for (const auto& s : split(value))
          grid.varthetas.push_back(need_double(key, s));
      } else if (key == "u") {
        grid.us.clear();
        for (const auto& s : split(value)) grid.us.push_back(need_double(key, s));
      } else if (key == "u-tilde" || key == "u_tilde") {
        grid.u_tildes.clear();
        for (const auto& s : split(value))
          grid.u_tildes.push_back(need_double(key, s));
      } else if (key == "topology") {
        grid.topologies.clear();
        for (const auto& s : split(value)) {
          const auto t = runner::parse_topology(s);
          if (!t) return fail("unknown topology '" + s + "'");
          grid.topologies.push_back(*t);
        }
      } else if (key == "relay-fault" || key == "relay_fault") {
        grid.relay_faults.clear();
        for (const auto& s : split(value)) {
          const auto rf = runner::parse_relay_fault(s);
          if (!rf) return fail("unknown relay fault '" + s + "'");
          grid.relay_faults.push_back(*rf);
        }
        // An empty list would silently drop every faulty relay grid point
        // (expand() pushes nothing for them) and let a --gate pass
        // vacuously; fail loudly instead.
        if (grid.relay_faults.empty())
          return fail("--relay-fault needs at least one value");
      } else if (key == "delays" || key == "delay") {
        grid.delays.clear();
        grid.custom_delays.clear();
        for (const auto& s : split(value)) {
          if (s.rfind("custom:", 0) == 0) {
            const auto custom = runner::parse_custom_delay(s);
            if (!custom)
              return fail("bad custom delay '" + s +
                          "' (want custom:fixed:<fraction in [0,1]>, "
                          "custom:alternate, or custom:target:<node>)");
            grid.custom_delays.push_back(*custom);
            continue;
          }
          const auto dk = runner::parse_delay_kind(s);
          if (!dk) return fail("unknown delay policy '" + s + "'");
          grid.delays.push_back(*dk);
        }
        if (grid.delays.empty() && grid.custom_delays.empty())
          return fail("--delays needs at least one value");
      } else if (key == "clocks") {
        grid.clock_kinds.clear();
        for (const auto& s : split(value)) {
          const auto ck = runner::parse_clock_kind(s);
          if (!ck) return fail("unknown clock kind '" + s + "'");
          grid.clock_kinds.push_back(*ck);
        }
      } else if (key == "crypto") {
        grid.cryptos.clear();
        for (const auto& s : split(value)) {
          const auto c = runner::parse_crypto_mode(s);
          if (!c) return fail("unknown crypto mode '" + s + "'");
          grid.cryptos.push_back(*c);
        }
        if (grid.cryptos.empty())
          return fail("--crypto needs at least one value");
      } else if (key == "byz") {
        grid.strategies.clear();
        st_accel = false;
        for (const auto& s : split(value)) {
          if (s == "st-accel") {
            st_accel = true;
            continue;
          }
          const auto b = runner::parse_byz_strategy(s);
          if (!b) return fail("unknown byz strategy '" + s + "'");
          grid.strategies.push_back(*b);
        }
        if (grid.strategies.empty())
          grid.strategies = {core::ByzStrategy::kCrash};
      } else if (key == "churn-rate" || key == "churn_rate") {
        grid.churn_rates.clear();
        for (const auto& s : split(value)) {
          const double rate = need_double(key, s);
          if (rate < 0.0 || rate > 1.0)
            return fail("--churn-rate takes rates in [0,1], got '" + s + "'");
          grid.churn_rates.push_back(rate);
        }
        if (grid.churn_rates.empty())
          return fail("--churn-rate needs at least one value");
      } else if (key == "join-batch" || key == "join_batch") {
        grid.join_batches.clear();
        for (const auto& s : split(value)) {
          const auto batch = need_u64(key, s);
          if (batch > UINT32_MAX)
            return fail("--join-batch takes counts >= 0, got '" + s + "'");
          grid.join_batches.push_back(static_cast<std::uint32_t>(batch));
        }
        if (grid.join_batches.empty())
          return fail("--join-batch needs at least one value");
      } else if (key == "kllo-stab" || key == "kllo_stab") {
        grid.kllo_stabs.clear();
        for (const auto& s : split(value)) {
          const double stab = need_double(key, s);
          if (stab <= 0.0)
            return fail("--kllo-stab takes multipliers > 0, got '" + s + "'");
          grid.kllo_stabs.push_back(stab);
        }
        if (grid.kllo_stabs.empty())
          return fail("--kllo-stab needs at least one value");
      } else if (key == "search-budget" || key == "search_budget") {
        grid.search_budgets.clear();
        for (const auto& s : split(value)) {
          const auto budget = need_u64(key, s);
          if (budget == 0 || budget > UINT32_MAX)
            return fail("--search-budget takes counts >= 1, got '" + s + "'");
          grid.search_budgets.push_back(static_cast<std::uint32_t>(budget));
        }
        if (grid.search_budgets.empty())
          return fail("--search-budget needs at least one value");
      } else if (key == "reconnect") {
        grid.reconnects.clear();
        for (const auto& s : split(value)) {
          const auto policy = runner::parse_reconnect(s);
          if (!policy) return fail("unknown reconnect policy '" + s + "'");
          grid.reconnects.push_back(*policy);
        }
        if (grid.reconnects.empty())
          return fail("--reconnect needs at least one value");
      } else if (key == "d") {
        grid.d = need_double(key, value);
      } else if (key == "rounds") {
        grid.rounds = static_cast<std::size_t>(need_u64(key, value));
      } else if (key == "warmup") {
        grid.warmup = static_cast<std::size_t>(need_u64(key, value));
      } else if (key == "slack") {
        grid.slack = need_double(key, value);
      } else if (key == "seed") {
        options.base_seed = need_u64(key, value);
      } else if (key == "threads") {
        const auto threads = need_u64(key, value);
        if (threads > 1024)
          return fail("--threads takes a count <= 1024, got '" + value + "'");
        options.threads = static_cast<unsigned>(threads);
      } else if (key == "gate") {
        gate = need_double(key, value);
      } else if (key == "gate-local" || key == "gate_local") {
        gate_local = need_double(key, value);
      } else if (key == "gate-kllo" || key == "gate_kllo") {
        gate_kllo = need_double(key, value);
      } else if (key == "gate-trend" || key == "gate_trend") {
        const double pct = need_double(key, value);
        if (pct < 0.0)
          return fail("--gate-trend takes a percentage >= 0, got '" + value +
                      "'");
        gate_trend = pct;
      } else if (key == "budget-ms" || key == "budget_ms") {
        const double budget = need_double(key, value);
        if (budget < 0.0)
          return fail("--budget-ms takes milliseconds >= 0, got '" + value +
                      "'");
        options.budget_ms = budget;
      } else if (key == "resume") {
        resume_path = value;
      } else if (key == "checkpoint-every" || key == "checkpoint_every") {
        const auto every = need_u64(key, value);
        if (every == 0)
          return fail("--checkpoint-every takes a row count >= 1");
        checkpoint_every = static_cast<std::size_t>(every);
      } else if (key == "history") {
        history_path = value;
      } else if (key == "format") {
        if (value != "csv" && value != "json" && value != "table")
          return fail("unknown format '" + value + "'");
        format = value;
      } else if (key == "out") {
        out_path = value;
      } else {
        return fail("unknown option '--" + key + "'");
      }
    } catch (const FlagError& e) {
      return fail(e.message);
    } catch (const std::exception&) {
      return fail("bad value for --" + key + ": '" + value + "'");
    }
  }

  if (!resume_path.empty() && (format != "csv" || out_path.empty()))
    return fail("--resume requires --format=csv and --out=FILE");
  if (gate_trend && history_path.empty())
    return fail("--gate-trend requires --history=FILE");

  // The flat-world default n axis {4,7,9} makes poor sparse topologies (a
  // hypercube needs a power of two). When every requested world is
  // relay/theorem5 and no --n was given, default to one topology-friendly
  // size instead.
  bool any_complete = false;
  for (const auto w : grid.worlds)
    if (w == runner::WorldKind::kComplete) any_complete = true;
  if (!n_given && !any_complete) grid.ns = {8};

  auto specs = grid.expand();
  if (st_accel) {
    // Add ST certificate-acceleration variants for every faulty ST point.
    std::vector<runner::ScenarioSpec> extra;
    for (const auto& spec : specs) {
      if (spec.protocol == baselines::ProtocolKind::kSrikanthToueg &&
          spec.world == runner::WorldKind::kComplete && spec.f_actual > 0) {
        auto attack = spec;
        attack.st_accelerator = true;
        extra.push_back(attack);
      }
    }
    specs.insert(specs.end(), extra.begin(), extra.end());
  }
  if (specs.empty()) return fail("empty grid");

  // Streaming accumulators: the gate, the history line, and the fault-free
  // CPS auto-gate are all computed row by row, so the campaign path never
  // retains a report.
  runner::SweepSummary summary;
  summary.gate_ratio = gate;
  summary.local_gate_ratio = gate_local;
  summary.kllo_gate_ratio = gate_kllo;
  bool cps_bound_violated = false;
  auto note = [&](const runner::ScenarioResult& r) {
    summary.add(r);
    // Dynamic cells are excluded from the CPS auto-gate: the Theorem-17
    // bound is derived for a fixed topology, and a churned cell answers to
    // liveness plus the local (gradient) gate instead.
    if (r.spec.protocol == baselines::ProtocolKind::kCps && r.feasible &&
        r.spec.world != runner::WorldKind::kTheorem5 && r.spec.f_actual == 0 &&
        !r.spec.dynamic() && r.rounds_completed > 0 && !r.within_bound)
      cps_bound_violated = true;
  };

  if (!resume_path.empty()) {
    // Campaign mode: ordered CSV append + checkpoint manifest + resume.
    std::optional<runner::CsvCampaign> campaign;
    try {
      campaign.emplace(
          runner::CsvCampaign::Options{out_path, resume_path, checkpoint_every,
                                       options.base_seed},
          specs, note);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
    const std::size_t done = campaign->resume_index();
    const std::vector<runner::ScenarioSpec> todo(specs.begin() + done,
                                                 specs.end());
    try {
      runner::run_sweep_streamed(todo, options,
                                 [&](const runner::ScenarioResult& r) {
                                   campaign->append(r);
                                   note(r);
                                 });
      campaign->finish();
    } catch (const std::exception& e) {
      return fail(e.what());
    }
    std::cerr << "sweep_cli: campaign " << out_path << ": " << done
              << " row(s) resumed, " << todo.size() << " run\n";
  } else if (format == "csv") {
    // Plain CSV streams too — a 10k-cell grid to stdout/file needs no
    // report either.
    std::ofstream file;
    if (!out_path.empty()) {
      file.open(out_path);
      if (!file) return fail("cannot open '" + out_path + "'");
    }
    std::ostream& os = out_path.empty() ? std::cout : file;
    os << runner::csv_header() << '\n';
    runner::run_sweep_streamed(specs, options,
                               [&](const runner::ScenarioResult& r) {
                                 runner::write_csv_row(os, r);
                                 note(r);
                               });
    if (!os) return fail("cannot write '" + out_path + "'");
  } else {
    // table/json render the whole report; accumulate it.
    const auto report = runner::run_sweep(specs, options);
    for (const auto& r : report.results) note(r);

    std::ofstream file;
    if (!out_path.empty()) {
      file.open(out_path);
      if (!file) return fail("cannot open '" + out_path + "'");
    }
    std::ostream& os = out_path.empty() ? std::cout : file;
    if (format == "json")
      runner::write_json(os, report);
    else
      print_table(os, report);
  }

  // Gates: no errors or budget timeouts; fault-free CPS always within the
  // Theorem-17 bound; the optional --gate ratio over every world's
  // realized-vs-bound ratio; and the optional --gate-trend regression check
  // against the recorded history baseline.
  int status = 0;
  if (summary.errors > 0 || summary.timed_out > 0) status = 1;
  if (cps_bound_violated) status = 1;
  if (gate && summary.gate_violations > 0) {
    std::cerr << "sweep_cli: --gate=" << *gate << " tripped by "
              << summary.gate_violations << " scenario(s)\n";
    status = 1;
  }
  if (gate_local && summary.local_gate_violations > 0) {
    std::cerr << "sweep_cli: --gate-local=" << *gate_local << " tripped by "
              << summary.local_gate_violations << " scenario(s)\n";
    status = 1;
  }
  if (gate_kllo && summary.kllo_gate_violations > 0) {
    std::cerr << "sweep_cli: --gate-kllo=" << *gate_kllo << " tripped by "
              << summary.kllo_gate_violations << " scenario(s)\n";
    status = 1;
  }

  if (!history_path.empty()) {
    // The grid digest keys trend comparability: a baseline from a
    // different grid (or seed) is not a baseline for this run.
    const auto grid_key = runner::grid_digest(specs, options.base_seed);
    const auto entry =
        runner::make_history_entry(summary, options.base_seed, grid_key);
    try {
      bool append = true;
      if (gate_trend) {
        std::optional<runner::HistoryEntry> baseline;
        std::ifstream history(history_path);
        if (history) baseline = runner::load_baseline(history, grid_key);
        const auto failures =
            runner::check_trend(baseline, entry, *gate_trend);
        if (!failures.empty()) {
          for (const auto& failure : failures)
            std::cerr << "sweep_cli: --gate-trend=" << *gate_trend
                      << " failed: " << failure << "\n";
          // Keep the last good run as the baseline: a regressed run must
          // not ratchet the bar down for the next one.
          append = false;
          status = 1;
        }
      }
      if (append) runner::append_history(history_path, entry);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
  }

  if (status != 0)
    std::cerr
        << "sweep_cli: FAILED (errors, timeouts, bound violations, or gate)\n";
  return status;
}
