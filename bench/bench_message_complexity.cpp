// E9 — message and signature complexity per pulse round vs n.
//
// CPS pays Θ(n³) messages per pulse (n TCB instances × n echoers × n
// recipients) for its optimal-resilience consistency; LW and ST pay Θ(n²).
// The table reports measured per-round counts and the log-log growth
// exponent.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace crusader {
namespace {

struct Complexity {
  double messages_per_round = 0.0;
  double signatures_per_round = 0.0;
  double verifies_per_round = 0.0;
};

Complexity measure(baselines::ProtocolKind kind, std::uint32_t n,
                   std::size_t rounds) {
  const auto model =
      bench::bench_model(n, sim::ModelParams::max_faults_signed(n));
  const auto result = bench::run_protocol(kind, model, 0,
                                          core::ByzStrategy::kCrash, 1, rounds);
  const auto done = static_cast<double>(result.trace.complete_rounds());
  Complexity out;
  out.messages_per_round = static_cast<double>(result.messages) / done;
  out.signatures_per_round =
      static_cast<double>(result.signatures_carried) / done;
  out.verifies_per_round = static_cast<double>(result.verify_ops) / done;
  return out;
}

}  // namespace

int run_bench() {
  const std::vector<std::uint32_t> ns = {4, 6, 9, 13, 19, 27};
  const std::size_t rounds = 8;

  util::Table table("E9: per-round message/signature complexity vs n");
  table.set_header({"protocol", "n", "msgs/round", "sigs/round",
                    "verifies/round"});

  std::map<baselines::ProtocolKind, std::vector<double>> log_msgs;
  std::vector<double> log_ns;
  for (std::uint32_t n : ns) log_ns.push_back(std::log(static_cast<double>(n)));

  for (auto kind :
       {baselines::ProtocolKind::kCps, baselines::ProtocolKind::kLynchWelch,
        baselines::ProtocolKind::kSrikanthToueg}) {
    for (std::uint32_t n : ns) {
      const Complexity c = measure(kind, n, rounds);
      log_msgs[kind].push_back(std::log(c.messages_per_round));
      table.add_row({baselines::to_string(kind), std::to_string(n),
                     util::Table::num(c.messages_per_round, 1),
                     util::Table::num(c.signatures_per_round, 1),
                     util::Table::num(c.verifies_per_round, 1)});
    }
  }
  bench::print(table);

  util::Table exponents("E9b: growth exponents (log-log slope of msgs/round)");
  exponents.set_header({"protocol", "exponent", "expected"});
  for (auto& [kind, logs] : log_msgs) {
    const auto fit = util::fit_linear(log_ns, logs);
    const char* expected =
        kind == baselines::ProtocolKind::kCps ? "3 (n^3)" : "2 (n^2)";
    exponents.add_row({std::string(baselines::to_string(kind)),
                       util::Table::num(fit.slope, 2), std::string(expected)});
  }
  bench::print(exponents);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
