// E6 — Theorem 17 period bounds: measured P_min / P_max vs the analytic
// (T − (ϑ+1)S)/ϑ and T + 3S, across adversaries and clock assignments.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "bench_common.hpp"

namespace crusader {

int run_bench() {
  util::Table table("E6: CPS pulse periods vs Theorem-17 bounds");
  table.set_header({"n", "strategy", "clocks", "P_min meas", "P_min bound",
                    "P_max meas", "P_max bound", "within"});

  const std::size_t rounds = 20;
  for (std::uint32_t n : {3u, 5u, 9u}) {
    const std::uint32_t f = sim::ModelParams::max_faults_signed(n);
    const auto model = bench::bench_model(n, f);
    const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);

    for (core::ByzStrategy strategy :
         {core::ByzStrategy::kCrash, core::ByzStrategy::kSplit,
          core::ByzStrategy::kPullLate}) {
      for (auto clocks :
           {sim::ClockKind::kSpread, sim::ClockKind::kRandomWalk}) {
        double p_min = 1e300;
        double p_max = 0.0;
        for (std::uint64_t seed : {1ull, 2ull}) {
          const auto result = bench::run_protocol(
              baselines::ProtocolKind::kCps, model, f, strategy, seed, rounds,
              clocks, sim::DelayKind::kRandom,
              0.2 * setup.cps.accept_window, 0.1);
          p_min = std::min(p_min, result.trace.min_period());
          p_max = std::max(p_max, result.trace.max_period());
        }
        const bool ok = p_min >= setup.cps.p_min - 1e-9 &&
                        p_max <= setup.cps.p_max + 1e-9;
        table.add_row(
            {std::to_string(n), core::to_string(strategy),
             clocks == sim::ClockKind::kSpread ? "spread" : "walk",
             util::Table::num(p_min, 4), util::Table::num(setup.cps.p_min, 4),
             util::Table::num(p_max, 4), util::Table::num(setup.cps.p_max, 4),
             util::Table::boolean(ok)});
      }
    }
  }
  bench::print(table);

  // Period composition: T dominates, the correction |Δ| ≤ S + δ modulates.
  util::Table anatomy("E6b: period anatomy (n = 5, crash faults)");
  anatomy.set_header({"quantity", "value"});
  const auto model = bench::bench_model(5, 2);
  const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
  anatomy.add_row({"T (round length)", util::Table::num(setup.cps.T, 4)});
  anatomy.add_row({"S (skew bound)", util::Table::num(setup.cps.S, 4)});
  anatomy.add_row({"delta (est. error)", util::Table::num(setup.cps.delta, 4)});
  anatomy.add_row({"P_min bound", util::Table::num(setup.cps.p_min, 4)});
  anatomy.add_row({"P_max bound", util::Table::num(setup.cps.p_max, 4)});
  anatomy.add_row(
      {"P_max-P_min", util::Table::num(setup.cps.p_max - setup.cps.p_min, 4)});
  bench::print(anatomy);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
