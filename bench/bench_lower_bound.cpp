// E5 — Theorem 5: the executable three-execution adversary.
//
// For n = 3 and ũ ∈ [u, d], realize executions Ex⁰, Ex¹, Ex² and report the
// worst per-execution skew vs the bound 2ũ/3, for each protocol. The upper
// bound S (valid when ũ = u) brackets the realized skew from above.

#include "bench_common.hpp"
#include "lowerbound/theorem5.hpp"

namespace crusader {

int run_bench() {
  util::Table table("E5: Theorem-5 realized skew vs the 2*u_tilde/3 bound");
  table.set_header({"protocol", "u_tilde", "bound 2ut/3", "realized skew",
                    "telescoped sum", "rounds", "bound holds"});

  for (auto protocol :
       {baselines::ProtocolKind::kCps, baselines::ProtocolKind::kLynchWelch,
        baselines::ProtocolKind::kSrikanthToueg}) {
    for (double u_tilde : {0.05, 0.1, 0.2, 0.4, 0.8}) {
      sim::ModelParams model;
      model.n = 3;
      model.f = 1;
      model.d = 1.0;
      model.u = 0.05;
      model.u_tilde = u_tilde;
      model.vartheta = 1.05;

      const auto report = lowerbound::run_theorem5(protocol, model, 40);
      table.add_row({baselines::to_string(protocol),
                     util::Table::num(u_tilde, 2),
                     util::Table::num(report.bound, 4),
                     util::Table::num(report.max_skew, 4),
                     util::Table::num(report.telescoped_sum, 4),
                     std::to_string(report.rounds),
                     util::Table::boolean(report.bound_holds)});
    }
  }
  bench::print(table);

  // Consistency with the upper bound at ũ = u.
  util::Table bracket("E5b: lower bound vs upper bound at u_tilde = u");
  bracket.set_header(
      {"u = u_tilde", "2u/3 (lower)", "realized", "S (upper)", "bracketed"});
  for (double u : {0.02, 0.05, 0.1}) {
    sim::ModelParams model;
    model.n = 3;
    model.f = 1;
    model.d = 1.0;
    model.u = u;
    model.u_tilde = u;
    model.vartheta = 1.04;
    const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
    if (!setup.feasible) continue;
    const auto report =
        lowerbound::run_theorem5(baselines::ProtocolKind::kCps, model, 40);
    const bool ok = report.bound_holds && report.max_skew <= setup.cps.S + 1e-9;
    bracket.add_row({util::Table::num(u, 3),
                     util::Table::num(report.bound, 4),
                     util::Table::num(report.max_skew, 4),
                     util::Table::num(setup.cps.S, 4),
                     util::Table::boolean(ok)});
  }
  bench::print(bracket);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
