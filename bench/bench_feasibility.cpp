// E8 — Corollary 4 and the Θ(u + (ϑ−1)d) shape of S.
//
// Table 1: ϑ sweep — S(ϑ), T(ϑ) blow up approaching the feasibility
//          threshold ϑ_max (our analogue of the paper's ϑ ≤ 1.11).
// Table 2: ϑ_max as a function of u (Corollary 4 is about constants, not u —
//          the threshold must be nearly flat).
// Table 3: linear fits confirming S ∝ u (fixed ϑ) and S ∝ d (fixed u≈0, ϑ),
//          i.e. S ∈ Θ(u + (ϑ−1)d).

#include "bench_common.hpp"

#include <vector>
#include "core/params.hpp"
#include "util/stats.hpp"

namespace crusader {

int run_bench() {
  // ---- Table 1: vartheta sweep ----------------------------------------------
  util::Table t1("E8a: S and T vs vartheta (d = 1, u = 0.01)");
  t1.set_header({"vartheta", "feasible", "S", "T", "S/(u+(vt-1)d)"});
  const double d = 1.0;
  const double u = 0.01;
  for (double vt : {1.001, 1.01, 1.02, 1.04, 1.06, 1.07, 1.075, 1.08, 1.09,
                    1.12}) {
    const auto params = core::derive_cps_params(bench::bench_model(5, 2, u, vt));
    if (params.feasible) {
      t1.add_row({util::Table::num(vt, 4), "yes", util::Table::num(params.S, 4),
                  util::Table::num(params.T, 4),
                  util::Table::num(params.S / (u + (vt - 1.0) * d), 2)});
    } else {
      t1.add_row({util::Table::num(vt, 4), "NO", "-", "-", "-"});
    }
  }
  bench::print(t1);

  // ---- Table 2: feasibility threshold ---------------------------------------
  util::Table t2("E8b: feasibility threshold vartheta_max (Corollary 4)");
  t2.set_header({"u/d", "vartheta_max"});
  for (double uu : {0.001, 0.01, 0.05, 0.1, 0.3}) {
    t2.add_row({util::Table::num(uu, 3),
                util::Table::num(core::ParamSolver::max_vartheta(1.0, uu), 5)});
  }
  bench::print(t2);

  // ---- Table 3: linearity fits ----------------------------------------------
  util::Table t3("E8c: S is linear in u and in (vartheta-1)d");
  t3.set_header({"sweep", "slope", "intercept", "r^2"});
  {
    std::vector<double> xs, ys;
    for (double uu = 0.005; uu <= 0.2; uu += 0.005) {
      xs.push_back(uu);
      ys.push_back(core::derive_cps_params(
                       bench::bench_model(5, 2, uu, 1.002)).S);
    }
    const auto fit = util::fit_linear(xs, ys);
    t3.add_row({"u in [0.005,0.2], vt=1.002", util::Table::num(fit.slope, 3),
                util::Table::num(fit.intercept, 4),
                util::Table::num(fit.r2, 6)});
  }
  {
    std::vector<double> xs, ys;
    for (double dd = 0.5; dd <= 8.0; dd += 0.5) {
      xs.push_back(dd);
      ys.push_back(core::derive_cps_params(
                       bench::bench_model(5, 2, 1e-5, 1.002, dd)).S);
    }
    const auto fit = util::fit_linear(xs, ys);
    t3.add_row({"d in [0.5,8], u~0, vt=1.002", util::Table::num(fit.slope, 4),
                util::Table::num(fit.intercept, 5),
                util::Table::num(fit.r2, 6)});
  }
  bench::print(t3);

  // ---- Table 4: measured skew tracks the analytic shape ---------------------
  util::Table t4("E8d: measured steady skew scales with u (CPS, n=5, f=2)");
  t4.set_header({"u", "S bound", "measured steady skew"});
  std::vector<double> us, measured;
  for (double uu : {0.01, 0.02, 0.04, 0.08}) {
    const auto model = bench::bench_model(5, 2, uu, 1.002);
    const double skew = bench::worst_steady_skew(
        baselines::ProtocolKind::kCps, model, 2, core::ByzStrategy::kPullEarly,
        20, 8, {1, 2});
    us.push_back(uu);
    measured.push_back(skew);
    t4.add_row({util::Table::num(uu, 3),
                util::Table::num(core::derive_cps_params(model).S, 4),
                util::Table::num(skew, 4)});
  }
  const auto fit = util::fit_linear(us, measured);
  t4.add_row({"linear fit r^2", "", util::Table::num(fit.r2, 4)});
  bench::print(t4);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
