// E1 — Figure 1 / Theorem 9 / Corollary 2.
//
// Table 1: honest-value range after each APA iteration (must at least halve
//          per iteration) at resilience f = ⌈n/2⌉−1, per adversary.
// Table 2: iterations needed to reach ε vs the Corollary-2 prediction
//          ⌈log₂(ℓ/ε)⌉ (2 rounds per iteration).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sync/approx_agreement.hpp"
#include "sync/sync_adversary.hpp"

namespace crusader {
namespace {

using sync::Outbox;

std::vector<bool> faulty_mask(std::uint32_t n, std::uint32_t f) {
  std::vector<bool> mask(n, false);
  for (std::uint32_t i = 0; i < f; ++i) mask[n - 1 - i] = true;
  return mask;
}

std::vector<NodeId> faulty_ids(const std::vector<bool>& mask) {
  std::vector<NodeId> ids;
  for (NodeId v = 0; v < mask.size(); ++v)
    if (mask[v]) ids.push_back(v);
  return ids;
}

std::unique_ptr<sync::RushingAdversary> make_adversary(int which,
                                                       std::vector<NodeId> ids,
                                                       std::uint32_t n,
                                                       crypto::Pki& pki) {
  switch (which) {
    case 0: return std::make_unique<sync::SilentSyncAdversary>(ids, n, pki);
    case 1:
      return std::make_unique<sync::EquivocatorSyncAdversary>(ids, n, pki);
    case 2:
      return std::make_unique<sync::ExtremePullSyncAdversary>(ids, n, pki,
                                                              100.0);
    case 3: return std::make_unique<sync::PartialSyncAdversary>(ids, n, pki);
    default:
      return std::make_unique<sync::RandomSyncAdversary>(ids, n, pki, 99);
  }
}

const char* adversary_name(int which) {
  switch (which) {
    case 0: return "silent";
    case 1: return "equivocate";
    case 2: return "extreme-pull";
    case 3: return "partial";
    default: return "random";
  }
}

double honest_range_at(const sync::ApaRunResult& result,
                       const std::vector<bool>& mask, std::uint32_t iter) {
  double lo = 1e300, hi = -1e300;
  for (NodeId v = 0; v < mask.size(); ++v) {
    if (mask[v]) continue;
    lo = std::min(lo, result.trajectories[v][iter]);
    hi = std::max(hi, result.trajectories[v][iter]);
  }
  return hi - lo;
}

}  // namespace

int run_bench() {
  // ---- Table 1: per-iteration range contraction -----------------------------
  util::Table t1(
      "E1a: APA honest range per iteration (f = ceil(n/2)-1, ell = 8)");
  t1.set_header({"n", "f", "adversary", "iter1", "iter2", "iter3", "iter4",
                 "halving ok"});

  const std::uint32_t iterations = 4;
  for (std::uint32_t n : {5u, 9u, 15u, 25u}) {
    const std::uint32_t f = sim::ModelParams::max_faults_signed(n);
    for (int adv = 0; adv < 5; ++adv) {
      crypto::Pki pki(n, crypto::Pki::Kind::kSymbolic, 7);
      const auto mask = faulty_mask(n, f);
      util::Rng rng(17 + n);
      std::vector<double> inputs(n, 0.0);
      for (NodeId v = 0; v < n; ++v)
        if (!mask[v]) inputs[v] = rng.uniform(0.0, 8.0);
      double ell = 0.0;
      {
        double lo = 1e300, hi = -1e300;
        for (NodeId v = 0; v < n; ++v) {
          if (mask[v]) continue;
          lo = std::min(lo, inputs[v]);
          hi = std::max(hi, inputs[v]);
        }
        ell = hi - lo;
      }

      auto adversary = make_adversary(adv, faulty_ids(mask), n, pki);
      const auto result =
          sync::run_apa(n, f, mask, inputs, iterations, adversary.get(), pki);

      std::vector<std::string> row = {std::to_string(n), std::to_string(f),
                                      adversary_name(adv)};
      bool ok = true;
      double allowed = ell;
      for (std::uint32_t i = 0; i < iterations; ++i) {
        const double range = honest_range_at(result, mask, i);
        allowed /= 2.0;
        ok = ok && range <= allowed + 1e-9;
        row.push_back(util::Table::num(range, 4));
      }
      row.push_back(util::Table::boolean(ok));
      t1.add_row(row);
    }
  }
  bench::print(t1);

  // ---- Table 2: rounds to reach epsilon (Corollary 2) -----------------------
  util::Table t2("E1b: iterations to reach eps vs Corollary 2 bound");
  t2.set_header({"n", "f", "ell", "eps", "predicted iters", "measured iters",
                 "within bound"});
  for (std::uint32_t n : {7u, 13u, 21u}) {
    const std::uint32_t f = sim::ModelParams::max_faults_signed(n);
    for (double eps : {0.5, 0.05, 0.005}) {
      const double ell = 8.0;
      const auto predicted =
          static_cast<std::uint32_t>(std::ceil(std::log2(ell / eps)));

      crypto::Pki pki(n, crypto::Pki::Kind::kSymbolic, 11);
      const auto mask = faulty_mask(n, f);
      std::vector<double> inputs(n, 0.0);
      std::uint32_t idx = 0;
      for (NodeId v = 0; v < n; ++v)
        if (!mask[v]) inputs[v] = ell * (idx++ % 2 == 0 ? 0.0 : 1.0);

      // Partial delivery is the hardest case for convergence speed: it
      // creates per-node asymmetric ⊥ patterns (Lemmas 7/8), so the range
      // actually halves instead of collapsing at once.
      sync::PartialSyncAdversary adversary(faulty_ids(mask), n, pki);
      const auto result =
          sync::run_apa(n, f, mask, inputs, predicted + 3, &adversary, pki);

      std::uint32_t measured = predicted + 3;
      for (std::uint32_t i = 0; i < predicted + 3; ++i) {
        if (honest_range_at(result, mask, i) <= eps) {
          measured = i + 1;
          break;
        }
      }
      t2.add_row({std::to_string(n), std::to_string(f),
                  util::Table::num(ell, 1), util::Table::num(eps, 3),
                  std::to_string(predicted), std::to_string(measured),
                  util::Table::boolean(measured <= predicted)});
    }
  }
  bench::print(t2);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
