// E11 — Appendix A: CPS over sparse (f+1)-connected networks via signed
// relay flooding with destination-side path balancing.
//
// Table 1: effective parameters and measured skew per topology — the skew
//          budget scales with the worst-case relay distance D_f, matching
//          the paper's "replace d and ũ by the end-to-end path bounds".
// Table 2: ring-size sweep — S_eff and measured skew grow linearly in D_f,
//          the [4]-style path-length dependence.

#include "bench_common.hpp"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>
#include "core/cps.hpp"
#include "relay/flood_world.hpp"
#include "relay/topology.hpp"

namespace crusader {
namespace {

struct SparseOutcome {
  relay::RelayRunResult result;
  core::CpsParams params;
};

SparseOutcome run_sparse(const relay::Topology& topo, std::uint32_t f,
                         std::vector<NodeId> faulty, std::size_t rounds) {
  relay::RelayConfig config;
  config.topology = topo;
  config.hop_model.n = topo.n();
  config.hop_model.f = f;
  config.hop_model.d = 1.0;
  config.hop_model.u = 0.02;
  config.hop_model.u_tilde = 0.02;
  config.hop_model.vartheta = 1.002;
  config.faulty = std::move(faulty);
  config.seed = 7;

  SparseOutcome out;
  const auto eff = relay::effective_model(config);
  out.params = core::derive_cps_params(eff);
  config.initial_offset = out.params.S;
  config.horizon = out.params.S + (rounds + 2) * out.params.p_max;

  core::CpsConfig cps;
  cps.params = out.params;
  relay::RelayWorld world(config, [cps](NodeId) {
    return std::make_unique<core::CpsNode>(cps);
  });
  out.result = world.run();
  return out;
}

}  // namespace

int run_bench() {
  util::Table table("E11: CPS over sparse topologies (d_hop=1, u_hop=0.02)");
  table.set_header({"topology", "n", "f", "crashed", "D_f", "d_eff", "u_eff",
                    "S_eff", "skew", "ok", "phys msgs/flood"});

  struct Case {
    const char* name;
    relay::Topology topo;
    std::uint32_t f;
    std::vector<NodeId> faulty;
  };
  std::vector<Case> cases;
  cases.push_back({"complete", relay::Topology::complete(7), 3, {0, 1}});
  cases.push_back({"ring", relay::Topology::ring(6), 1, {2}});
  cases.push_back({"chordal ring", relay::Topology::chordal_ring(10, 3), 2,
                   {0, 5}});
  cases.push_back({"ring of cliques", relay::Topology::ring_of_cliques(3, 4, 2),
                   2, {0, 4}});

  for (auto& c : cases) {
    const std::size_t rounds = 8;
    const auto out = run_sparse(c.topo, c.f, c.faulty, rounds);
    const bool ok = out.result.trace.live(rounds) &&
                    out.result.trace.max_skew() <= out.params.S + 1e-9;
    table.add_row(
        {c.name, std::to_string(c.topo.n()), std::to_string(c.f),
         std::to_string(c.faulty.size()),
         std::to_string(out.result.worst_hops),
         util::Table::num(out.result.effective.d, 2),
         util::Table::num(out.result.effective.u, 3),
         util::Table::num(out.params.S, 4),
         util::Table::num(out.result.trace.max_skew(), 4),
         util::Table::boolean(ok),
         util::Table::num(static_cast<double>(out.result.physical_messages) /
                              static_cast<double>(out.result.floods),
                          1)});
  }
  bench::print(table);

  util::Table sweep("E11b: skew budget vs relay distance (rings, f = 1)");
  sweep.set_header({"ring n", "D_1", "S_eff", "measured skew"});
  for (std::uint32_t n : {4u, 6u, 8u, 10u}) {
    const auto out = run_sparse(relay::Topology::ring(n), 1, {}, 6);
    sweep.add_row({std::to_string(n), std::to_string(out.result.worst_hops),
                   util::Table::num(out.params.S, 4),
                   util::Table::num(out.result.trace.max_skew(), 4)});
  }
  bench::print(sweep);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
