// E2 — Figure 2 / Lemmas 10–13: Timed Crusader Broadcast accuracy.
//
// Table 1 (Lemma 12, validity): for honest dealers, the estimate error
//   Δ_{v,y} − (p_y − p_v) lies in [0, δ), across delay policies and clocks.
// Table 2 (Lemma 13, consistency): for a Byzantine dealer (split-timing),
//   any two honest non-⊥ estimates of the same dealer satisfy
//   |Δ_{v,x} − Δ_{w,x} − (p_w − p_v)| < δ.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"

namespace crusader {
namespace {

struct EstimateRun {
  std::vector<core::CpsNode*> nodes;
  sim::RunResult result;
  core::CpsParams params;
};

EstimateRun run_with_estimates(const sim::ModelParams& model,
                               std::uint32_t f_actual,
                               core::ByzStrategy strategy,
                               sim::ClockKind clocks, sim::DelayKind delays,
                               std::uint64_t seed, std::size_t rounds,
                               double split_shift,
                               std::unique_ptr<sim::World>& world_out) {
  const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
  EstimateRun out;
  out.params = setup.cps;
  out.nodes.resize(model.n, nullptr);

  core::CpsConfig config;
  config.params = setup.cps;
  config.record_estimates = true;
  sim::HonestFactory honest = [&out, config](NodeId v) {
    auto node = std::make_unique<core::CpsNode>(config);
    out.nodes[v] = node.get();
    return node;
  };

  auto wc = bench::world_config(model, setup, rounds, seed);
  wc.clock_kind = clocks;
  wc.delay_kind = delays;
  wc.faulty = sim::default_faulty_set(f_actual);
  sim::ByzantineFactory byz;
  if (f_actual > 0)
    byz = core::make_byzantine_factory(strategy, honest, seed, 0.0, split_shift);
  world_out = std::make_unique<sim::World>(wc, honest, byz);
  out.result = world_out->run();
  return out;
}

const char* delay_name(sim::DelayKind kind) {
  switch (kind) {
    case sim::DelayKind::kMax: return "max";
    case sim::DelayKind::kMin: return "min";
    case sim::DelayKind::kRandom: return "random";
    case sim::DelayKind::kSplit: return "split";
  }
  return "?";
}

}  // namespace

int run_bench() {
  const std::uint32_t n = 5;
  const std::uint32_t f = 2;

  // ---- Table 1: validity (honest dealers) -----------------------------------
  util::Table t1("E2a: TCB estimate error for honest dealers (Lemma 12)");
  t1.set_header({"delays", "clocks", "samples", "min err", "max err",
                 "delta bound", "in [0,delta)"});

  for (auto delays : {sim::DelayKind::kMax, sim::DelayKind::kMin,
                      sim::DelayKind::kRandom, sim::DelayKind::kSplit}) {
    for (auto clocks : {sim::ClockKind::kSpread, sim::ClockKind::kRandomWalk}) {
      const auto model = bench::bench_model(n, f);
      std::unique_ptr<sim::World> world;
      const auto run =
          run_with_estimates(model, 0, core::ByzStrategy::kCrash, clocks,
                             delays, 5, 20, 0.0, world);

      double lo = 1e300, hi = -1e300;
      std::size_t samples = 0;
      for (NodeId v = 0; v < n; ++v) {
        const auto* node = run.nodes[v];
        if (node == nullptr) continue;
        for (const auto& rec : node->estimates()) {
          if (rec.bot) continue;
          const std::size_t r = rec.round - 1;
          if (r >= run.result.trace.complete_rounds()) continue;
          const double truth = run.result.trace.pulse_time(rec.dealer, r) -
                               run.result.trace.pulse_time(v, r);
          const double err = rec.delta - truth;
          lo = std::min(lo, err);
          hi = std::max(hi, err);
          ++samples;
        }
      }
      const bool ok = lo >= -1e-6 && hi < run.params.delta;
      t1.add_row({delay_name(delays),
                  clocks == sim::ClockKind::kSpread ? "spread" : "walk",
                  std::to_string(samples), util::Table::num(lo, 5),
                  util::Table::num(hi, 5),
                  util::Table::num(run.params.delta, 5),
                  util::Table::boolean(ok)});
    }
  }
  bench::print(t1);

  // ---- Table 2: consistency (Byzantine split-timing dealer) -----------------
  util::Table t2(
      "E2b: cross-node estimate consistency for Byzantine dealers (Lemma 13)");
  t2.set_header({"split shift", "pairs", "bots", "max inconsistency",
                 "delta bound", "holds"});

  for (double shift : {0.0, 0.05, 0.1, 0.2}) {
    const auto model = bench::bench_model(n, f);
    std::unique_ptr<sim::World> world;
    const auto run = run_with_estimates(model, f, core::ByzStrategy::kSplit,
                                        sim::ClockKind::kSpread,
                                        sim::DelayKind::kRandom, 9, 20, shift,
                                        world);

    // Collect per (round, dealer) the estimates of each honest node.
    std::map<std::pair<Round, NodeId>, std::map<NodeId, double>> grid;
    std::size_t bots = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto* node = run.nodes[v];
      if (node == nullptr) continue;
      for (const auto& rec : node->estimates()) {
        if (rec.dealer >= f) continue;  // only Byzantine dealers here
        if (rec.bot) {
          ++bots;
          continue;
        }
        grid[{rec.round, rec.dealer}][v] = rec.delta;
      }
    }

    double worst = 0.0;
    std::size_t pairs = 0;
    for (const auto& [key, per_node] : grid) {
      const std::size_t r = key.first - 1;
      if (r >= run.result.trace.complete_rounds()) continue;
      for (auto it_v = per_node.begin(); it_v != per_node.end(); ++it_v) {
        for (auto it_w = std::next(it_v); it_w != per_node.end(); ++it_w) {
          const double p_v = run.result.trace.pulse_time(it_v->first, r);
          const double p_w = run.result.trace.pulse_time(it_w->first, r);
          const double inconsistency =
              std::abs(it_v->second - it_w->second - (p_w - p_v));
          worst = std::max(worst, inconsistency);
          ++pairs;
        }
      }
    }
    t2.add_row({util::Table::num(shift, 2), std::to_string(pairs),
                std::to_string(bots), util::Table::num(worst, 5),
                util::Table::num(run.params.delta, 5),
                util::Table::boolean(worst < run.params.delta)});
  }
  bench::print(t2);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
