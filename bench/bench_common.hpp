#pragma once
// Shared plumbing for the experiment benches (E1–E10, see DESIGN.md and
// EXPERIMENTS.md). Every bench prints one or more paper-style tables to
// stdout via util::Table.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "core/cps.hpp"
#include "sim/world.hpp"
#include "util/table.hpp"

namespace crusader::bench {

/// Canonical bench model: d = 1 time unit.
inline sim::ModelParams bench_model(std::uint32_t n, std::uint32_t f,
                                    double u = 0.05, double vartheta = 1.01,
                                    double d = 1.0) {
  sim::ModelParams m;
  m.n = n;
  m.f = f;
  m.d = d;
  m.u = u;
  m.u_tilde = u;
  m.vartheta = vartheta;
  return m;
}

inline sim::WorldConfig world_config(const sim::ModelParams& model,
                                     const baselines::ProtocolSetup& setup,
                                     std::size_t rounds, std::uint64_t seed) {
  sim::WorldConfig config;
  config.model = model;
  config.seed = seed;
  config.initial_offset = setup.initial_offset;
  config.horizon = setup.initial_offset +
                   static_cast<double>(rounds + 2) * setup.round_length;
  config.clock_kind = sim::ClockKind::kSpread;
  config.delay_kind = sim::DelayKind::kRandom;
  return config;
}

/// Runs `kind` with `f_actual` Byzantine nodes of `strategy`.
inline sim::RunResult run_protocol(
    baselines::ProtocolKind kind, const sim::ModelParams& model,
    std::uint32_t f_actual, core::ByzStrategy strategy, std::uint64_t seed,
    std::size_t rounds, sim::ClockKind clocks = sim::ClockKind::kSpread,
    sim::DelayKind delays = sim::DelayKind::kRandom, double late_shift = 0.0,
    double split_shift = 0.0) {
  const auto setup = baselines::make_setup(kind, model);
  auto honest = baselines::make_protocol_factory(setup);

  sim::WorldConfig config = world_config(model, setup, rounds, seed);
  config.clock_kind = clocks;
  config.delay_kind = delays;
  config.faulty = sim::default_faulty_set(f_actual);

  sim::ByzantineFactory byz;
  if (f_actual > 0) {
    byz = core::make_byzantine_factory(strategy, honest, seed, late_shift,
                                       split_shift);
  }
  sim::World world(config, honest, byz);
  return world.run();
}

/// Worst steady-state skew across seeds (skipping `warmup` rounds).
inline double worst_steady_skew(baselines::ProtocolKind kind,
                                const sim::ModelParams& model,
                                std::uint32_t f_actual,
                                core::ByzStrategy strategy, std::size_t rounds,
                                std::size_t warmup,
                                const std::vector<std::uint64_t>& seeds,
                                double split_shift = 0.0) {
  double worst = 0.0;
  for (std::uint64_t seed : seeds) {
    const auto result = run_protocol(kind, model, f_actual, strategy, seed,
                                     rounds, sim::ClockKind::kSpread,
                                     sim::DelayKind::kRandom, 0.0, split_shift);
    worst = std::max(worst, result.trace.max_skew(warmup));
  }
  return worst;
}

inline void print(const util::Table& table) {
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace crusader::bench
