// E4 — the headline comparison (paper, Section 1):
//
//   protocol         resilience     skew
//   Lynch–Welch [25] ⌈n/3⌉−1        Θ(u + (ϑ−1)d)
//   Srikanth–Toueg   ⌈n/2⌉−1        Θ(d)     (realized by the accelerator)
//   CPS (this paper) ⌈n/2⌉−1        Θ(u + (ϑ−1)d)
//
// Across a (u, ϑ) grid at fixed d = 1, CPS should track u + (ϑ−1)d while
// ST stays pinned at d-scale — the smaller u and ϑ−1, the bigger CPS's win.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "bench_common.hpp"

namespace crusader {
namespace {

/// ST under its worst-case certificate-acceleration attack.
double st_attacked_skew(const sim::ModelParams& model, std::size_t rounds,
                        std::uint64_t seed) {
  const auto setup =
      baselines::make_setup(baselines::ProtocolKind::kSrikanthToueg, model);
  auto honest = baselines::make_protocol_factory(setup);
  auto byz = core::make_st_accelerator_factory(model.n - 1);
  auto config = bench::world_config(model, setup, rounds, seed);
  config.faulty = sim::default_faulty_set(model.f);
  sim::World world(config, honest, byz);
  const auto result = world.run();
  return result.trace.max_skew(rounds / 4);
}

}  // namespace

int run_bench() {
  util::Table table(
      "E4: steady-state skew, CPS vs Srikanth-Toueg vs Lynch-Welch (d = 1)");
  table.set_header({"u", "vartheta", "u+(vt-1)d", "CPS skew", "CPS S bound",
                    "ST skew (attacked)", "LW skew", "ST/CPS"});

  const std::size_t rounds = 20;
  const std::uint32_t n = 7;
  const std::uint32_t f_signed = sim::ModelParams::max_faults_signed(n);
  const std::uint32_t f_plain = sim::ModelParams::max_faults_plain(n);

  for (double u : {0.002, 0.01, 0.05}) {
    for (double vartheta : {1.0005, 1.005, 1.02}) {
      const auto model = bench::bench_model(n, f_signed, u, vartheta);
      const auto cps_setup =
          baselines::make_setup(baselines::ProtocolKind::kCps, model);
      if (!cps_setup.feasible) continue;

      // CPS at full resilience under the colluding pull attack.
      const double cps_skew =
          bench::worst_steady_skew(baselines::ProtocolKind::kCps, model,
                                   f_signed, core::ByzStrategy::kPullEarly,
                                   rounds, rounds / 4, {1, 2});

      // ST at full resilience under the accelerator (its true worst case).
      const double st_skew = st_attacked_skew(model, rounds, 1);

      // LW within its resilience (f = ⌈n/3⌉−1, crash faults).
      auto lw_model = model;
      lw_model.f = f_plain;
      const double lw_skew = bench::worst_steady_skew(
          baselines::ProtocolKind::kLynchWelch, lw_model, f_plain,
          core::ByzStrategy::kCrash, rounds, rounds / 4, {1, 2});

      table.add_row(
          {util::Table::num(u, 4), util::Table::num(vartheta, 4),
           util::Table::num(u + (vartheta - 1.0) * model.d, 4),
           util::Table::num(cps_skew, 4), util::Table::num(cps_setup.cps.S, 4),
           util::Table::num(st_skew, 4), util::Table::num(lw_skew, 4),
           util::Table::num(st_skew / std::max(cps_skew, 1e-9), 1)});
    }
  }
  bench::print(table);

  util::Table summary("E4b: who wins where (expected shape)");
  summary.set_header({"claim", "expected", "observed"});
  {
    // Crossover check at the smallest u: CPS beats ST by a large factor.
    const auto model = bench::bench_model(n, f_signed, 0.002, 1.0005);
    const double cps = bench::worst_steady_skew(
        baselines::ProtocolKind::kCps, model, f_signed,
        core::ByzStrategy::kPullEarly, rounds, rounds / 4, {1});
    const double st = st_attacked_skew(model, rounds, 1);
    summary.add_row({"CPS skew << d when u << d", "ratio > 10x",
                     util::Table::num(st / std::max(cps, 1e-9), 1) + "x"});
    summary.add_row(
        {"CPS resilience", "ceil(n/2)-1 = " + std::to_string(f_signed),
         "holds (see E3)"});
    summary.add_row(
        {"LW resilience", "ceil(n/3)-1 = " + std::to_string(f_plain),
         "degrades beyond (see E7)"});
  }
  bench::print(summary);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
