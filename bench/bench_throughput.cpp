// E10 — substrate micro-benchmarks (google-benchmark): event queue, hardware
// clocks, crypto, and end-to-end CPS simulation throughput.

#include <benchmark/benchmark.h>
#include <cstddef>
#include <cstdint>
#include <string>

#include "bench_common.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "sim/engine.hpp"
#include "sim/hardware_clock.hpp"

namespace crusader {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < 1000; ++i)
      queue.schedule(static_cast<double>((i * 7919) % 1000), [] {});
    while (!queue.empty()) queue.pop_and_run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_HardwareClockEval(benchmark::State& state) {
  util::Rng rng(1);
  const auto clock = sim::HardwareClock::random_walk(rng, 1.05, 0.1, 1.0, 1000.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.37;
    if (t > 900.0) t = 0.0;
    benchmark::DoNotOptimize(clock.local(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HardwareClockEval);

void BM_HardwareClockInverse(benchmark::State& state) {
  util::Rng rng(1);
  const auto clock = sim::HardwareClock::random_walk(rng, 1.05, 0.1, 1.0, 1000.0);
  double h = 1.0;
  for (auto _ : state) {
    h += 0.37;
    if (h > 900.0) h = 1.0;
    benchmark::DoNotOptimize(clock.real(h));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HardwareClockInverse);

void BM_Sha256(benchmark::State& state) {
  const std::string msg(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(msg));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024);

void BM_HmacSign(benchmark::State& state) {
  crypto::Pki pki(8, crypto::Pki::Kind::kHmac, 1);
  Round round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pki.sign(0, crypto::make_pulse_payload(++round)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HmacSign);

void BM_SymbolicSign(benchmark::State& state) {
  crypto::Pki pki(8, crypto::Pki::Kind::kSymbolic, 1);
  Round round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pki.sign(0, crypto::make_pulse_payload(++round)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SymbolicSign);

/// End-to-end: one full CPS world (n nodes, 10 pulse rounds). Items = engine
/// events processed, so the counter reports simulator events/second.
void BM_CpsWorld(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto model =
      bench::bench_model(n, sim::ModelParams::max_faults_signed(n));
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto result =
        bench::run_protocol(baselines::ProtocolKind::kCps, model, 0,
                            core::ByzStrategy::kCrash, ++seed, 10);
    events += result.events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_CpsWorld)->Arg(5)->Arg(9)->Arg(15)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace crusader

BENCHMARK_MAIN();
