// E12 — ablations: what each design ingredient of CPS buys.
//
//   1. Echo guard (the "crusader" in Crusader Broadcast): without the
//      Figure-2 third-party rejection, a two-faced Byzantine dealer feeds
//      inconsistent estimates to different halves of the cluster and the
//      skew degrades — exactly the Lynch–Welch failure mode CPS exists to
//      prevent at f ≥ n/3.
//   2. f−b discard rule (Figure 1): the naive always-f discard ignores the
//      fault information carried by ⊥ outputs and over-discards honest
//      values; under ⊥-heavy attacks the estimate quality drops.
//   3. Dealer send offset ϑS (Figure 2): without it, fast receivers get the
//      dealer's signature before their own pulse — outside the acceptance
//      window — and honest broadcasts are lost (validity, Lemma 10).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/cps.hpp"

namespace crusader {
namespace {

struct AblationOutcome {
  double steady_skew = 0.0;
  double worst_skew = 0.0;
  std::uint64_t bots = 0;
  bool live = false;
};

AblationOutcome run_variant(const sim::ModelParams& model,
                            const core::CpsConfig& cps, std::uint32_t f_actual,
                            core::ByzStrategy strategy, double split_shift,
                            std::size_t rounds, std::uint64_t seed) {
  std::vector<core::CpsNode*> nodes(model.n, nullptr);
  sim::HonestFactory honest = [&nodes, cps](NodeId v) {
    auto node = std::make_unique<core::CpsNode>(cps);
    nodes[v] = node.get();
    return node;
  };
  sim::ByzantineFactory byz;
  if (f_actual > 0) {
    byz = core::make_byzantine_factory(strategy, honest, seed, 0.0,
                                       split_shift);
  }

  const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
  auto config = bench::world_config(model, setup, rounds, seed);
  config.faulty = sim::default_faulty_set(f_actual);
  config.delay_kind = sim::DelayKind::kSplit;
  sim::World world(config, honest, byz);
  const auto result = world.run();

  AblationOutcome out;
  out.live = result.trace.live(rounds);
  out.worst_skew = result.trace.max_skew();
  out.steady_skew = result.trace.complete_rounds() > rounds / 3
                        ? result.trace.max_skew(rounds / 3)
                        : result.trace.max_skew();
  for (auto* node : nodes)
    if (node != nullptr) out.bots += node->stats().bot_estimates;
  return out;
}

}  // namespace

int run_bench() {
  const std::uint32_t n = 6;
  const std::uint32_t f = sim::ModelParams::max_faults_signed(n);
  const auto model = bench::bench_model(n, f);
  const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
  const std::size_t rounds = 30;
  const double split_shift = 0.15;

  core::CpsConfig standard;
  standard.params = setup.cps;

  // ---- Ablation 1: echo guard ------------------------------------------------
  util::Table t1(
      "E12a: echo-guard ablation (two-faced dealer, f = ceil(n/2)-1)");
  t1.set_header({"variant", "steady skew", "bot estimates", "live"});
  {
    const auto full = run_variant(model, standard, f, core::ByzStrategy::kSplit,
                                  split_shift, rounds, 3);
    core::CpsConfig no_guard = standard;
    no_guard.ablate_echo_guard = true;
    const auto ablated = run_variant(model, no_guard, f,
                                     core::ByzStrategy::kSplit, split_shift,
                                     rounds, 3);
    t1.add_row({"CPS (full)", util::Table::num(full.steady_skew, 4),
                std::to_string(full.bots), util::Table::boolean(full.live)});
    t1.add_row({"CPS w/o echo guard", util::Table::num(ablated.steady_skew, 4),
                std::to_string(ablated.bots),
                util::Table::boolean(ablated.live)});
    t1.add_row({"degradation", util::Table::num(
                                   ablated.steady_skew /
                                       std::max(full.steady_skew, 1e-9), 2) +
                                   "x",
                "-", "-"});
  }
  bench::print(t1);

  // ---- Ablation 2: discard rule ---------------------------------------------
  util::Table t2("E12b: discard-rule ablation (crash faults force bots)");
  t2.set_header({"variant", "steady skew", "worst skew", "live"});
  {
    const auto full = run_variant(model, standard, f, core::ByzStrategy::kCrash,
                                  0.0, rounds, 5);
    core::CpsConfig naive = standard;
    naive.ablate_discard_rule = true;
    const auto ablated = run_variant(model, naive, f,
                                     core::ByzStrategy::kCrash, 0.0, rounds, 5);
    t2.add_row({"f-b discard (Fig. 1)", util::Table::num(full.steady_skew, 4),
                util::Table::num(full.worst_skew, 4),
                util::Table::boolean(full.live)});
    t2.add_row({"naive always-f discard",
                util::Table::num(ablated.steady_skew, 4),
                util::Table::num(ablated.worst_skew, 4),
                util::Table::boolean(ablated.live)});
  }
  bench::print(t2);

  // ---- Ablation 3: dealer send offset ----------------------------------------
  // The ϑS offset matters exactly when the skew bound exceeds the minimum
  // delay (S > d−u): a node pulsing S late would otherwise receive honest
  // signatures *before* its own pulse, outside the window (Lemma 10's
  // t_y ≥ p_y + S step). Use a high-uncertainty model where S ≈ 1.5 > d−u.
  util::Table t3(
      "E12c: dealer-offset ablation (u = 0.3: S > d-u, worst-case offsets)");
  t3.set_header({"variant", "worst skew", "bot estimates", "live"});
  {
    const auto loose_model = bench::bench_model(n, f, /*u=*/0.3);
    const auto loose_setup =
        baselines::make_setup(baselines::ProtocolKind::kCps, loose_model);
    core::CpsConfig loose;
    loose.params = loose_setup.cps;
    const auto full = run_variant(loose_model, loose, 0,
                                  core::ByzStrategy::kCrash, 0.0, rounds, 7);
    core::CpsConfig no_offset = loose;
    no_offset.params.dealer_offset = 0.0;  // violate Figure 2
    const auto ablated = run_variant(loose_model, no_offset, 0,
                                     core::ByzStrategy::kCrash, 0.0, rounds, 7);
    t3.add_row({"send at L + vtS", util::Table::num(full.worst_skew, 4),
                std::to_string(full.bots), util::Table::boolean(full.live)});
    t3.add_row({"send at L", util::Table::num(ablated.worst_skew, 4),
                std::to_string(ablated.bots),
                util::Table::boolean(ablated.live)});
  }
  bench::print(t3);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
