// E11 — the sweep runner as an experiment harness: the paper's headline
// comparison (CPS vs Lynch–Welch vs Srikanth–Toueg) across n × faults ×
// delay policies in one declarative grid, plus a thread-scaling measurement
// of the runner itself.
//
// E12 — the flood-overlay hot path under Byzantine relay adversaries: every
// RelayFaultKind over the four sparse topology families at max fault load,
// with per-cell wall clock so the perf trajectory of the relay world is
// tracked alongside its bound conformance.
//
// E13 — the per-sweep relay analysis memo cache: large-n sparse families ×
// the full relay-fault axis, timing the topology analysis (connectivity +
// worst-case distance BFS walk) uncached per cell vs. memoized, plus the
// end-to-end run_sweep wall clock with the cache on and off.
//
// E14 — engine fast-path throughput: one broadcast-heavy complete-world CPS
// cell measured as events/sec through three configurations (per-receiver
// reference with real crypto; batched delivery; batched + abstract crypto),
// then one 2^20-node hypercube flood-probe cell under a wall budget. With
// --json the E14 numbers are written as a BENCH_*.json artifact; with
// --history/--gate-trend the dimensionless cost ratio (fast seconds /
// reference seconds) rides the runner's skew-ratio history machinery so CI
// can fail when the speedup regresses.
//
// E15 — dynamic-network overhead: one flood-probe hypercube cell replayed
// at increasing churn rates (seeded topology schedules), reporting
// events/sec alongside the realized local (gradient) vs global skew — the
// cost and the correctness story of churn in one table.
//
// E16 — adaptive vs oblivious relay adversaries: the witness hypercube cell
// (ST at n=32, max fault load, worst-case delays) replayed under every
// oblivious fault kind, the traffic-observing greedy-skew policy, and the
// budgeted random search — the realized skew_ratio gap quantifies what
// observation buys the adversary while every row stays inside the
// Theorem-17 bound at (d_eff, u_eff).

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "relay/adversary.hpp"
#include "relay/flood_world.hpp"
#include "relay/topology.hpp"
#include "runner/history.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"

namespace crusader {
namespace {

double seconds_to_run(const std::vector<runner::ScenarioSpec>& specs,
                      unsigned threads) {
  runner::RunnerOptions options;
  options.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const auto report = runner::run_sweep(specs, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  (void)report;
  return std::chrono::duration<double>(elapsed).count();
}

/// One timed scenario run: (result, wall seconds).
struct TimedRun {
  runner::ScenarioResult result;
  double seconds = 0.0;
  [[nodiscard]] double events_per_sec() const {
    return static_cast<double>(result.events) / std::max(seconds, 1e-9);
  }
};

TimedRun timed_scenario(const runner::ScenarioSpec& spec,
                        const runner::RunnerOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = runner::run_scenario(spec, options);
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

/// E14's machine-readable summary (the BENCH_*.json artifact).
struct E14Summary {
  double reference_events_per_sec = 0.0;
  double batched_events_per_sec = 0.0;
  double fast_events_per_sec = 0.0;  ///< batched + abstract crypto
  double speedup = 0.0;              ///< fast vs reference
  double cost_ratio = 1.0;           ///< fast seconds / reference seconds
  double large_n_seconds = 0.0;
  double large_n_events_per_sec = 0.0;
  std::uint64_t large_n_nodes = 0;
  bool large_n_timed_out = false;
  std::uint64_t grid = 0;  ///< digest tying history entries to this config
};

/// One E15 measurement: the probe cell at one churn rate.
struct E15Row {
  const char* protocol = "";
  double churn_rate = 0.0;
  double events_per_sec = 0.0;
  double max_skew = 0.0;
  double local_skew = 0.0;
};

/// One E16 measurement: the witness cell under one relay fault kind.
struct E16Row {
  const char* fault = "";
  bool adaptive = false;
  double skew_ratio = 0.0;
  bool within_bound = false;
  std::uint32_t attack_iters = 0;
  std::uint64_t attack_best_seed = 0;
  double seconds = 0.0;
};

void write_json(const std::string& path, const E14Summary& s,
                const std::vector<E15Row>& churn,
                const std::vector<E16Row>& adaptive) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench_sweep: cannot write " << path << "\n";
    return;
  }
  out.precision(17);
  out << "{\n"
      << "  \"e14\": {\n"
      << "    \"reference_events_per_sec\": " << s.reference_events_per_sec
      << ",\n"
      << "    \"batched_events_per_sec\": " << s.batched_events_per_sec
      << ",\n"
      << "    \"fast_events_per_sec\": " << s.fast_events_per_sec << ",\n"
      << "    \"speedup\": " << s.speedup << ",\n"
      << "    \"cost_ratio\": " << s.cost_ratio << ",\n"
      << "    \"large_n_nodes\": " << s.large_n_nodes << ",\n"
      << "    \"large_n_seconds\": " << s.large_n_seconds << ",\n"
      << "    \"large_n_events_per_sec\": " << s.large_n_events_per_sec
      << ",\n"
      << "    \"large_n_timed_out\": "
      << (s.large_n_timed_out ? "true" : "false") << ",\n"
      << "    \"grid\": " << s.grid << "\n"
      << "  },\n"
      << "  \"e15\": [\n";
  for (std::size_t i = 0; i < churn.size(); ++i) {
    const auto& row = churn[i];
    out << "    {\"protocol\": \"" << row.protocol << "\""
        << ", \"churn_rate\": " << row.churn_rate
        << ", \"events_per_sec\": " << row.events_per_sec
        << ", \"max_skew\": " << row.max_skew
        << ", \"local_skew\": " << row.local_skew << "}"
        << (i + 1 < churn.size() ? ",\n" : "\n");
  }
  out << "  ],\n"
      << "  \"e16\": [\n";
  for (std::size_t i = 0; i < adaptive.size(); ++i) {
    const auto& row = adaptive[i];
    out << "    {\"fault\": \"" << row.fault << "\""
        << ", \"adaptive\": " << (row.adaptive ? "true" : "false")
        << ", \"skew_ratio\": " << row.skew_ratio
        << ", \"within_bound\": " << (row.within_bound ? "true" : "false")
        << ", \"attack_iters\": " << row.attack_iters
        << ", \"attack_best_seed\": " << row.attack_best_seed
        << ", \"seconds\": " << row.seconds << "}"
        << (i + 1 < adaptive.size() ? ",\n" : "\n");
  }
  out << "  ]\n"
      << "}\n";
}

}  // namespace

int run_bench(const std::optional<std::string>& json_path,
              const std::optional<std::string>& history_path,
              std::optional<double> gate_trend, bool skip_large) {
  runner::SweepGrid grid;
  grid.protocols = {baselines::ProtocolKind::kCps,
                    baselines::ProtocolKind::kLynchWelch,
                    baselines::ProtocolKind::kSrikanthToueg};
  grid.ns = {4, 7, 9};
  grid.fault_loads = {0, runner::SweepGrid::kMaxResilience};
  grid.delays = {sim::DelayKind::kRandom, sim::DelayKind::kSplit};
  grid.strategies = {core::ByzStrategy::kCrash, core::ByzStrategy::kSplit};
  grid.rounds = 16;
  grid.warmup = 4;
  const auto specs = grid.expand();

  const auto report = runner::run_sweep(specs, {});

  util::Table table("E11: sweep summary — " + std::to_string(specs.size()) +
                    " scenarios (n in {4,7,9}, fault-free and max "
                    "resilience, random/split delays)");
  table.set_header({"protocol", "scenarios", "infeasible", "errors",
                    "bound violations", "steady skew mean", "steady skew max",
                    "messages mean"});
  for (const auto& s : report.by_protocol()) {
    table.add_row(
        {baselines::to_string(s.protocol), std::to_string(s.scenarios),
         std::to_string(s.infeasible), std::to_string(s.errors),
         std::to_string(s.bound_violations),
         s.steady_skew.count() ? util::Table::num(s.steady_skew.mean(), 4) : "-",
         s.steady_skew.count() ? util::Table::num(s.steady_skew.max(), 4) : "-",
         s.messages.count() ? util::Table::num(s.messages.mean(), 1) : "-"});
  }
  bench::print(table);

  // Thread scaling of the runner itself (same grid, same seeds, identical
  // results — only wall clock changes).
  util::Table scaling("E11b: runner thread scaling (same grid)");
  scaling.set_header({"threads", "seconds", "speedup"});
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  double base = 0.0;
  for (unsigned threads : {1u, 2u, hw}) {
    const double secs = seconds_to_run(specs, threads);
    if (threads == 1) base = secs;
    scaling.add_row({std::to_string(threads), util::Table::num(secs, 3),
                     util::Table::num(base / std::max(secs, 1e-9), 2) + "x"});
    if (threads == hw) break;  // avoid duplicate row when hw <= 2
  }
  bench::print(scaling);

  // E12: the relay world's flood overlay under Byzantine relay adversaries.
  runner::SweepGrid relay_grid;
  relay_grid.worlds = {runner::WorldKind::kRelay};
  relay_grid.protocols = {baselines::ProtocolKind::kCps};
  relay_grid.ns = {8};
  relay_grid.fault_loads = {runner::SweepGrid::kMaxResilience};
  relay_grid.topologies = {
      runner::TopologyKind::kRing, runner::TopologyKind::kChordalRing,
      runner::TopologyKind::kRingOfCliques, runner::TopologyKind::kHypercube};
  relay_grid.relay_faults = {
      relay::RelayFaultKind::kCrash, relay::RelayFaultKind::kMaxDelay,
      relay::RelayFaultKind::kReorder, relay::RelayFaultKind::kSelectiveDrop};
  relay_grid.us = {0.01};
  relay_grid.varthetas = {1.001};
  relay_grid.rounds = 16;
  relay_grid.warmup = 4;
  const auto relay_specs = relay_grid.expand();

  util::Table relay_table(
      "E12: Byzantine relay adversaries — flood overlay hot path (" +
      std::to_string(relay_specs.size()) +
      " cells: fault kind x topology at max fault load, n=8)");
  relay_table.set_header({"scenario", "steady skew", "bound", "ratio", "ok",
                         "physical msgs", "seconds"});
  for (const auto& spec : relay_specs) {
    const auto start = std::chrono::steady_clock::now();
    const auto r = runner::run_scenario(spec, {});
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    relay_table.add_row(
        {spec.name(),
         r.rounds_completed ? util::Table::num(r.steady_skew, 4) : "-",
         r.feasible ? util::Table::num(r.predicted_skew, 4) : "-",
         r.rounds_completed ? util::Table::num(r.skew_ratio, 3) : "-",
         r.rounds_completed ? (r.within_bound ? "yes" : "no") : "-",
         std::to_string(r.messages), util::Table::num(secs, 3)});
  }
  bench::print(relay_table);

  // E13: the relay analysis memo cache. Cells sharing (topology family, n,
  // f, faulty set) reuse one BFS walk; the relay-fault axis (4 kinds per
  // family) is exactly such sharing, so the expected setup cut is ~4× per
  // family. Measured two ways: the analysis alone (uncached per cell vs.
  // memoized), and the end-to-end sweep.
  runner::SweepGrid cache_grid;
  cache_grid.worlds = {runner::WorldKind::kRelay};
  cache_grid.protocols = {baselines::ProtocolKind::kCps};
  cache_grid.ns = {32};
  cache_grid.fault_loads = {runner::SweepGrid::kMaxResilience};
  cache_grid.topologies = {runner::TopologyKind::kChordalRing,
                           runner::TopologyKind::kRingOfCliques};
  cache_grid.relay_faults = {
      relay::RelayFaultKind::kCrash, relay::RelayFaultKind::kMaxDelay,
      relay::RelayFaultKind::kReorder, relay::RelayFaultKind::kSelectiveDrop};
  cache_grid.us = {0.001};
  cache_grid.varthetas = {1.0001};
  cache_grid.rounds = 2;
  cache_grid.warmup = 0;
  const auto cache_specs = cache_grid.expand();

  // Analysis-only comparison over the expanded cells (n = 32 at f = 3 is
  // past the exhaustive subset budget, so each analysis is the sampled BFS
  // walk — the expensive regime the cache exists for).
  auto cell_config = [](const runner::ScenarioSpec& spec) {
    relay::RelayConfig config;
    config.topology =
        spec.topology == runner::TopologyKind::kChordalRing
            ? relay::Topology::chordal_ring(spec.n, 2)
            : relay::Topology::ring_of_cliques(spec.n / 4, 4, 2);
    config.hop_model = bench::bench_model(spec.n, spec.f, spec.u,
                                          spec.vartheta, spec.d);
    config.faulty = sim::default_faulty_set(spec.f_actual);
    config.fault_kind = spec.relay_fault;
    return config;
  };
  const auto uncached_start = std::chrono::steady_clock::now();
  for (const auto& spec : cache_specs)
    (void)relay::compute_effective(cell_config(spec));
  const double uncached_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    uncached_start)
          .count();
  relay::EffectiveCache analysis_cache;
  const auto cached_start = std::chrono::steady_clock::now();
  for (const auto& spec : cache_specs) {
    // Key shape mirrors the runner's: family, n, f, faulty set (seed only
    // matters for the random family, absent from this grid).
    const std::uint64_t key =
        (static_cast<std::uint64_t>(spec.topology) << 32) ^
        (spec.n << 16) ^ (spec.f << 8) ^ spec.f_actual;
    (void)analysis_cache.get(key, cell_config(spec));
  }
  const double cached_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cached_start)
          .count();

  // End-to-end: same grid through run_sweep with the cache off and on.
  runner::RunnerOptions no_cache;
  no_cache.relay_cache = false;
  const auto off_start = std::chrono::steady_clock::now();
  (void)runner::run_sweep(cache_specs, no_cache);
  const double sweep_off = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - off_start)
                               .count();
  const auto on_start = std::chrono::steady_clock::now();
  (void)runner::run_sweep(cache_specs, {});
  const double sweep_on = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - on_start)
                              .count();

  util::Table cache_table(
      "E13: relay compute_effective memo cache (" +
      std::to_string(cache_specs.size()) +
      " cells: 2 sparse families x 4 relay faults, n=32 at max fault load)");
  cache_table.set_header(
      {"path", "seconds", "speedup", "analyses", "cache hits"});
  cache_table.add_row({"analysis uncached", util::Table::num(uncached_secs, 3),
                       "1x", std::to_string(cache_specs.size()), "-"});
  cache_table.add_row(
      {"analysis memoized", util::Table::num(cached_secs, 3),
       util::Table::num(uncached_secs / std::max(cached_secs, 1e-9), 2) + "x",
       std::to_string(analysis_cache.misses()),
       std::to_string(analysis_cache.hits())});
  cache_table.add_row({"run_sweep cache off", util::Table::num(sweep_off, 3),
                       "1x", std::to_string(cache_specs.size()), "-"});
  cache_table.add_row(
      {"run_sweep cache on", util::Table::num(sweep_on, 3),
       util::Table::num(sweep_off / std::max(sweep_on, 1e-9), 2) + "x", "-",
       "-"});
  bench::print(cache_table);

  // E14: engine fast-path throughput. Broadcast-heavy complete-world cell:
  // CPS at n=192, fault-free, split delays — every broadcast coalesces into
  // two aggregate events on the fast path versus 191 per-receiver events on
  // the reference path, and abstract crypto swaps SHA-256 for the registry
  // hash. Same seeds, byte-identical results; only wall clock may differ.
  runner::SweepGrid fp_grid;
  fp_grid.protocols = {baselines::ProtocolKind::kCps};
  fp_grid.ns = {192};
  fp_grid.fault_loads = {0};
  fp_grid.delays = {sim::DelayKind::kSplit};
  fp_grid.us = {0.01};
  fp_grid.varthetas = {1.001};
  fp_grid.rounds = 8;
  fp_grid.warmup = 2;
  const auto fp_specs = fp_grid.expand();
  auto fp_spec = fp_specs.at(0);

  runner::RunnerOptions reference_options;
  reference_options.fast_path = false;
  const auto reference = timed_scenario(fp_spec, reference_options);
  const auto batched = timed_scenario(fp_spec, {});
  auto abstract_spec = fp_spec;
  abstract_spec.crypto = runner::CryptoMode::kAbstract;
  const auto fast = timed_scenario(abstract_spec, {});

  E14Summary summary;
  summary.reference_events_per_sec = reference.events_per_sec();
  summary.batched_events_per_sec = batched.events_per_sec();
  summary.fast_events_per_sec = fast.events_per_sec();
  summary.speedup = fast.events_per_sec() /
                    std::max(reference.events_per_sec(), 1e-9);
  summary.cost_ratio = fast.seconds / std::max(reference.seconds, 1e-9);
  summary.grid = runner::grid_digest(fp_specs, 1);

  util::Table fp_table(
      "E14: engine fast path — broadcast-heavy complete cell (CPS n=192, "
      "fault-free, split delays; identical results, wall clock only)");
  fp_table.set_header(
      {"configuration", "events", "seconds", "events/sec", "speedup"});
  auto fp_row = [&](const char* label, const TimedRun& run) {
    fp_table.add_row({label, std::to_string(run.result.events),
                      util::Table::num(run.seconds, 3),
                      util::Table::num(run.events_per_sec(), 0),
                      util::Table::num(run.events_per_sec() /
                                           std::max(reference.events_per_sec(),
                                                    1e-9),
                                       2) +
                          "x"});
  };
  fp_row("per-receiver reference, real crypto", reference);
  fp_row("batched delivery, real crypto", batched);
  fp_row("batched delivery, abstract crypto", fast);
  bench::print(fp_table);

  // E15: the dynamic-network world's price tag. The same flood-probe
  // hypercube cell at rising churn rates — churn 0 is the static engine
  // path (schedule machinery bypassed entirely), so the throughput delta is
  // the full cost of epoch deltas, flood re-forwarding, and retained-flood
  // bookkeeping. local vs global skew shows what the gradient metric buys:
  // the global max is dominated by transients a local (per-edge) lens
  // filters out.
  std::vector<E15Row> churn_rows;
  {
    runner::SweepGrid churn_grid;
    churn_grid.worlds = {runner::WorldKind::kRelay};
    churn_grid.protocols = {baselines::ProtocolKind::kFloodProbe};
    churn_grid.topologies = {runner::TopologyKind::kHypercube};
    churn_grid.cryptos = {runner::CryptoMode::kAbstract};
    churn_grid.ns = {1024};
    churn_grid.fault_loads = {0};
    churn_grid.delays = {sim::DelayKind::kSplit};
    churn_grid.rounds = 8;
    churn_grid.warmup = 2;
    churn_grid.churn_rates = {0.0, 0.02, 0.1};
    auto churn_specs = churn_grid.expand();

    // One gradient-protocol row at the heaviest churn rate: neighbor-cast
    // (no re-flooding) against the probe's full flood on the same churned
    // cell — the throughput headroom the bounded-rate protocol buys.
    churn_grid.protocols = {baselines::ProtocolKind::kGradient};
    churn_grid.churn_rates = {0.1};
    for (auto& spec : churn_grid.expand()) churn_specs.push_back(spec);

    util::Table churn_table(
        "E15: churned flood (hypercube 2^10, abstract crypto, 8 rounds; "
        "churn = fraction of edges rewired per round)");
    churn_table.set_header({"protocol", "churn", "live", "events", "seconds",
                            "events/sec", "max skew", "local skew"});
    for (const auto& spec : churn_specs) {
      const auto run = timed_scenario(spec, {});
      churn_rows.push_back({baselines::to_string(spec.protocol),
                            spec.churn_rate, run.events_per_sec(),
                            run.result.max_skew, run.result.local_skew});
      churn_table.add_row(
          {baselines::to_string(spec.protocol),
           util::Table::num(spec.churn_rate, 2),
           run.result.live ? "yes" : "NO",
           std::to_string(run.result.events),
           util::Table::num(run.seconds, 3),
           util::Table::num(run.events_per_sec(), 0),
           util::Table::num(run.result.max_skew, 4),
           util::Table::num(run.result.local_skew, 4)});
    }
    bench::print(churn_table);
  }

  // E16: what does observing the traffic buy the adversary? The witness
  // cell (ST over the 2^5 hypercube at max fault load, worst-case
  // deterministic delays) under every oblivious fault kind, then the
  // traffic-observing greedy-skew policy and the budgeted random search
  // (budget 8). Same topology, faulty set, and seed per row — only the
  // adversary's information changes, so the skew_ratio column is a direct
  // measurement of the adaptive gap. Every row must stay inside the
  // Theorem-17 bound at (d_eff, u_eff): adaptivity sharpens the attack, it
  // never escapes the model.
  std::vector<E16Row> adaptive_rows;
  {
    auto witness_spec = [](relay::RelayFaultKind fault) {
      runner::ScenarioSpec spec;
      spec.world = runner::WorldKind::kRelay;
      spec.topology = runner::TopologyKind::kHypercube;
      spec.protocol = baselines::ProtocolKind::kSrikanthToueg;
      spec.n = 32;
      spec.f = runner::max_topology_faults(runner::TopologyKind::kHypercube,
                                           32);
      spec.f_actual = spec.f;
      spec.u = 0.05;
      spec.u_tilde = 0.05;
      spec.vartheta = 1.01;
      spec.delay = sim::DelayKind::kMax;
      spec.relay_fault = fault;
      spec.rounds = 10;
      spec.warmup = 3;
      return spec;
    };
    const relay::RelayFaultKind kinds[] = {
        relay::RelayFaultKind::kCrash, relay::RelayFaultKind::kMaxDelay,
        relay::RelayFaultKind::kReorder, relay::RelayFaultKind::kSelectiveDrop,
        relay::RelayFaultKind::kGreedySkew, relay::RelayFaultKind::kSearch};

    util::Table adaptive_table(
        "E16: adaptive vs oblivious relay adversaries (ST, hypercube 2^5 at "
        "max fault load, worst-case delays; search budget 8)");
    adaptive_table.set_header({"fault kind", "adaptive", "ratio", "ok",
                               "attack iters", "best seed", "seconds"});
    for (const auto kind : kinds) {
      auto spec = witness_spec(kind);
      if (kind == relay::RelayFaultKind::kSearch) spec.search_budget = 8;
      const auto run = timed_scenario(spec, {});
      adaptive_rows.push_back({relay::to_string(kind),
                               relay::adaptive(kind), run.result.skew_ratio,
                               run.result.within_bound,
                               run.result.attack_iters,
                               run.result.attack_best_seed, run.seconds});
      adaptive_table.add_row(
          {relay::to_string(kind), relay::adaptive(kind) ? "yes" : "no",
           util::Table::num(run.result.skew_ratio, 4),
           run.result.within_bound ? "yes" : "NO",
           std::to_string(run.result.attack_iters),
           std::to_string(run.result.attack_best_seed),
           util::Table::num(run.seconds, 3)});
    }
    bench::print(adaptive_table);
  }

  // E14b: one 2^20-node hypercube flood-probe cell (sparse world at the
  // million-node mark) under a hard wall budget — the cell must finish, not
  // just start.
  if (!skip_large) {
    runner::SweepGrid large_grid;
    large_grid.worlds = {runner::WorldKind::kRelay};
    large_grid.protocols = {baselines::ProtocolKind::kFloodProbe};
    large_grid.topologies = {runner::TopologyKind::kHypercube};
    large_grid.cryptos = {runner::CryptoMode::kAbstract};
    large_grid.ns = {1u << 20};
    large_grid.fault_loads = {0};
    large_grid.delays = {sim::DelayKind::kSplit};
    large_grid.rounds = 2;
    large_grid.warmup = 0;
    runner::RunnerOptions large_options;
    large_options.budget_ms = 300000.0;
    const auto large = timed_scenario(large_grid.expand().at(0),
                                      large_options);
    summary.large_n_nodes = 1u << 20;
    summary.large_n_seconds = large.seconds;
    summary.large_n_events_per_sec = large.events_per_sec();
    summary.large_n_timed_out = large.result.timed_out;

    util::Table large_table(
        "E14b: million-node flood (hypercube 2^20, probe, abstract crypto, "
        "2 rounds, 300 s budget)");
    large_table.set_header(
        {"nodes", "events", "seconds", "events/sec", "within budget"});
    large_table.add_row({std::to_string(1u << 20),
                         std::to_string(large.result.events),
                         util::Table::num(large.seconds, 1),
                         util::Table::num(large.events_per_sec(), 0),
                         large.result.timed_out ? "NO" : "yes"});
    bench::print(large_table);
    if (large.result.timed_out) return 1;
  }

  if (json_path) write_json(*json_path, summary, churn_rows, adaptive_rows);

  // Trend gate on the dimensionless cost ratio (fast/reference wall clock):
  // machine speed cancels out, so a rising ratio means the fast path itself
  // regressed. Rides the sweep history machinery — same file format, same
  // baseline/comparability rules (keyed by the E14 grid digest).
  if (history_path) {
    runner::HistoryEntry entry;
    entry.seed = 1;
    entry.grid = summary.grid;
    entry.cells = 3;
    entry.worlds.push_back({runner::WorldKind::kComplete, summary.cost_ratio,
                            summary.cost_ratio, 1});
    if (gate_trend) {
      std::ifstream in(*history_path);
      const auto baseline = runner::load_baseline(in, entry.grid);
      const auto failures = runner::check_trend(baseline, entry, *gate_trend);
      if (!failures.empty()) {
        for (const auto& f : failures)
          std::cerr << "bench_sweep: trend gate: " << f << "\n";
        return 1;  // baseline preserved: the regressed run is not appended
      }
    }
    runner::append_history(*history_path, entry);
  }
  return 0;
}

}  // namespace crusader

int main(int argc, char** argv) {
  std::optional<std::string> json_path;
  std::optional<std::string> history_path;
  std::optional<double> gate_trend;
  bool skip_large = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--json=", 0) == 0) {
      json_path = value("--json=");
    } else if (arg.rfind("--history=", 0) == 0) {
      history_path = value("--history=");
    } else if (arg.rfind("--gate-trend=", 0) == 0) {
      const auto pct =
          crusader::runner::parse_double_strict(value("--gate-trend="));
      if (!pct || *pct < 0.0) {
        std::cerr << "bench_sweep: --gate-trend takes a percentage >= 0\n";
        return 2;
      }
      gate_trend = *pct;
    } else if (arg == "--skip-large") {
      skip_large = true;
    } else {
      std::cerr << "bench_sweep: unknown flag " << arg
                << " (flags: --json=PATH --history=PATH --gate-trend=PCT "
                   "--skip-large)\n";
      return 2;
    }
  }
  return crusader::run_bench(json_path, history_path, gate_trend, skip_large);
}
