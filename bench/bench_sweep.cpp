// E11 — the sweep runner as an experiment harness: the paper's headline
// comparison (CPS vs Lynch–Welch vs Srikanth–Toueg) across n × faults ×
// delay policies in one declarative grid, plus a thread-scaling measurement
// of the runner itself.
//
// E12 — the flood-overlay hot path under Byzantine relay adversaries: every
// RelayFaultKind over the four sparse topology families at max fault load,
// with per-cell wall clock so the perf trajectory of the relay world is
// tracked alongside its bound conformance.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "relay/adversary.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"

namespace crusader {
namespace {

double seconds_to_run(const std::vector<runner::ScenarioSpec>& specs,
                      unsigned threads) {
  runner::RunnerOptions options;
  options.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const auto report = runner::run_sweep(specs, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  (void)report;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

int run_bench() {
  runner::SweepGrid grid;
  grid.protocols = {baselines::ProtocolKind::kCps,
                    baselines::ProtocolKind::kLynchWelch,
                    baselines::ProtocolKind::kSrikanthToueg};
  grid.ns = {4, 7, 9};
  grid.fault_loads = {0, runner::SweepGrid::kMaxResilience};
  grid.delays = {sim::DelayKind::kRandom, sim::DelayKind::kSplit};
  grid.strategies = {core::ByzStrategy::kCrash, core::ByzStrategy::kSplit};
  grid.rounds = 16;
  grid.warmup = 4;
  const auto specs = grid.expand();

  const auto report = runner::run_sweep(specs, {});

  util::Table table("E11: sweep summary — " + std::to_string(specs.size()) +
                    " scenarios (n in {4,7,9}, fault-free and max "
                    "resilience, random/split delays)");
  table.set_header({"protocol", "scenarios", "infeasible", "errors",
                    "bound violations", "steady skew mean", "steady skew max",
                    "messages mean"});
  for (const auto& s : report.by_protocol()) {
    table.add_row(
        {baselines::to_string(s.protocol), std::to_string(s.scenarios),
         std::to_string(s.infeasible), std::to_string(s.errors),
         std::to_string(s.bound_violations),
         s.steady_skew.count() ? util::Table::num(s.steady_skew.mean(), 4) : "-",
         s.steady_skew.count() ? util::Table::num(s.steady_skew.max(), 4) : "-",
         s.messages.count() ? util::Table::num(s.messages.mean(), 1) : "-"});
  }
  bench::print(table);

  // Thread scaling of the runner itself (same grid, same seeds, identical
  // results — only wall clock changes).
  util::Table scaling("E11b: runner thread scaling (same grid)");
  scaling.set_header({"threads", "seconds", "speedup"});
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  double base = 0.0;
  for (unsigned threads : {1u, 2u, hw}) {
    const double secs = seconds_to_run(specs, threads);
    if (threads == 1) base = secs;
    scaling.add_row({std::to_string(threads), util::Table::num(secs, 3),
                     util::Table::num(base / std::max(secs, 1e-9), 2) + "x"});
    if (threads == hw) break;  // avoid duplicate row when hw <= 2
  }
  bench::print(scaling);

  // E12: the relay world's flood overlay under Byzantine relay adversaries.
  runner::SweepGrid relay_grid;
  relay_grid.worlds = {runner::WorldKind::kRelay};
  relay_grid.protocols = {baselines::ProtocolKind::kCps};
  relay_grid.ns = {8};
  relay_grid.fault_loads = {runner::SweepGrid::kMaxResilience};
  relay_grid.topologies = {
      runner::TopologyKind::kRing, runner::TopologyKind::kChordalRing,
      runner::TopologyKind::kRingOfCliques, runner::TopologyKind::kHypercube};
  relay_grid.relay_faults = {
      relay::RelayFaultKind::kCrash, relay::RelayFaultKind::kMaxDelay,
      relay::RelayFaultKind::kReorder, relay::RelayFaultKind::kSelectiveDrop};
  relay_grid.us = {0.01};
  relay_grid.varthetas = {1.001};
  relay_grid.rounds = 16;
  relay_grid.warmup = 4;
  const auto relay_specs = relay_grid.expand();

  util::Table relay_table(
      "E12: Byzantine relay adversaries — flood overlay hot path (" +
      std::to_string(relay_specs.size()) +
      " cells: fault kind x topology at max fault load, n=8)");
  relay_table.set_header({"scenario", "steady skew", "bound", "ratio", "ok",
                         "physical msgs", "seconds"});
  for (const auto& spec : relay_specs) {
    const auto start = std::chrono::steady_clock::now();
    const auto r = runner::run_scenario(spec, {});
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    relay_table.add_row(
        {spec.name(),
         r.rounds_completed ? util::Table::num(r.steady_skew, 4) : "-",
         r.feasible ? util::Table::num(r.predicted_skew, 4) : "-",
         r.rounds_completed ? util::Table::num(r.skew_ratio, 3) : "-",
         r.rounds_completed ? (r.within_bound ? "yes" : "no") : "-",
         std::to_string(r.messages), util::Table::num(secs, 3)});
  }
  bench::print(relay_table);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
