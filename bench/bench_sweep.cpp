// E11 — the sweep runner as an experiment harness: the paper's headline
// comparison (CPS vs Lynch–Welch vs Srikanth–Toueg) across n × faults ×
// delay policies in one declarative grid, plus a thread-scaling measurement
// of the runner itself.
//
// E12 — the flood-overlay hot path under Byzantine relay adversaries: every
// RelayFaultKind over the four sparse topology families at max fault load,
// with per-cell wall clock so the perf trajectory of the relay world is
// tracked alongside its bound conformance.
//
// E13 — the per-sweep relay analysis memo cache: large-n sparse families ×
// the full relay-fault axis, timing the topology analysis (connectivity +
// worst-case distance BFS walk) uncached per cell vs. memoized, plus the
// end-to-end run_sweep wall clock with the cache on and off.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "relay/adversary.hpp"
#include "relay/flood_world.hpp"
#include "relay/topology.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"

namespace crusader {
namespace {

double seconds_to_run(const std::vector<runner::ScenarioSpec>& specs,
                      unsigned threads) {
  runner::RunnerOptions options;
  options.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const auto report = runner::run_sweep(specs, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  (void)report;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

int run_bench() {
  runner::SweepGrid grid;
  grid.protocols = {baselines::ProtocolKind::kCps,
                    baselines::ProtocolKind::kLynchWelch,
                    baselines::ProtocolKind::kSrikanthToueg};
  grid.ns = {4, 7, 9};
  grid.fault_loads = {0, runner::SweepGrid::kMaxResilience};
  grid.delays = {sim::DelayKind::kRandom, sim::DelayKind::kSplit};
  grid.strategies = {core::ByzStrategy::kCrash, core::ByzStrategy::kSplit};
  grid.rounds = 16;
  grid.warmup = 4;
  const auto specs = grid.expand();

  const auto report = runner::run_sweep(specs, {});

  util::Table table("E11: sweep summary — " + std::to_string(specs.size()) +
                    " scenarios (n in {4,7,9}, fault-free and max "
                    "resilience, random/split delays)");
  table.set_header({"protocol", "scenarios", "infeasible", "errors",
                    "bound violations", "steady skew mean", "steady skew max",
                    "messages mean"});
  for (const auto& s : report.by_protocol()) {
    table.add_row(
        {baselines::to_string(s.protocol), std::to_string(s.scenarios),
         std::to_string(s.infeasible), std::to_string(s.errors),
         std::to_string(s.bound_violations),
         s.steady_skew.count() ? util::Table::num(s.steady_skew.mean(), 4) : "-",
         s.steady_skew.count() ? util::Table::num(s.steady_skew.max(), 4) : "-",
         s.messages.count() ? util::Table::num(s.messages.mean(), 1) : "-"});
  }
  bench::print(table);

  // Thread scaling of the runner itself (same grid, same seeds, identical
  // results — only wall clock changes).
  util::Table scaling("E11b: runner thread scaling (same grid)");
  scaling.set_header({"threads", "seconds", "speedup"});
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  double base = 0.0;
  for (unsigned threads : {1u, 2u, hw}) {
    const double secs = seconds_to_run(specs, threads);
    if (threads == 1) base = secs;
    scaling.add_row({std::to_string(threads), util::Table::num(secs, 3),
                     util::Table::num(base / std::max(secs, 1e-9), 2) + "x"});
    if (threads == hw) break;  // avoid duplicate row when hw <= 2
  }
  bench::print(scaling);

  // E12: the relay world's flood overlay under Byzantine relay adversaries.
  runner::SweepGrid relay_grid;
  relay_grid.worlds = {runner::WorldKind::kRelay};
  relay_grid.protocols = {baselines::ProtocolKind::kCps};
  relay_grid.ns = {8};
  relay_grid.fault_loads = {runner::SweepGrid::kMaxResilience};
  relay_grid.topologies = {
      runner::TopologyKind::kRing, runner::TopologyKind::kChordalRing,
      runner::TopologyKind::kRingOfCliques, runner::TopologyKind::kHypercube};
  relay_grid.relay_faults = {
      relay::RelayFaultKind::kCrash, relay::RelayFaultKind::kMaxDelay,
      relay::RelayFaultKind::kReorder, relay::RelayFaultKind::kSelectiveDrop};
  relay_grid.us = {0.01};
  relay_grid.varthetas = {1.001};
  relay_grid.rounds = 16;
  relay_grid.warmup = 4;
  const auto relay_specs = relay_grid.expand();

  util::Table relay_table(
      "E12: Byzantine relay adversaries — flood overlay hot path (" +
      std::to_string(relay_specs.size()) +
      " cells: fault kind x topology at max fault load, n=8)");
  relay_table.set_header({"scenario", "steady skew", "bound", "ratio", "ok",
                         "physical msgs", "seconds"});
  for (const auto& spec : relay_specs) {
    const auto start = std::chrono::steady_clock::now();
    const auto r = runner::run_scenario(spec, {});
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    relay_table.add_row(
        {spec.name(),
         r.rounds_completed ? util::Table::num(r.steady_skew, 4) : "-",
         r.feasible ? util::Table::num(r.predicted_skew, 4) : "-",
         r.rounds_completed ? util::Table::num(r.skew_ratio, 3) : "-",
         r.rounds_completed ? (r.within_bound ? "yes" : "no") : "-",
         std::to_string(r.messages), util::Table::num(secs, 3)});
  }
  bench::print(relay_table);

  // E13: the relay analysis memo cache. Cells sharing (topology family, n,
  // f, faulty set) reuse one BFS walk; the relay-fault axis (4 kinds per
  // family) is exactly such sharing, so the expected setup cut is ~4× per
  // family. Measured two ways: the analysis alone (uncached per cell vs.
  // memoized), and the end-to-end sweep.
  runner::SweepGrid cache_grid;
  cache_grid.worlds = {runner::WorldKind::kRelay};
  cache_grid.protocols = {baselines::ProtocolKind::kCps};
  cache_grid.ns = {32};
  cache_grid.fault_loads = {runner::SweepGrid::kMaxResilience};
  cache_grid.topologies = {runner::TopologyKind::kChordalRing,
                           runner::TopologyKind::kRingOfCliques};
  cache_grid.relay_faults = {
      relay::RelayFaultKind::kCrash, relay::RelayFaultKind::kMaxDelay,
      relay::RelayFaultKind::kReorder, relay::RelayFaultKind::kSelectiveDrop};
  cache_grid.us = {0.001};
  cache_grid.varthetas = {1.0001};
  cache_grid.rounds = 2;
  cache_grid.warmup = 0;
  const auto cache_specs = cache_grid.expand();

  // Analysis-only comparison over the expanded cells (n = 32 at f = 3 is
  // past the exhaustive subset budget, so each analysis is the sampled BFS
  // walk — the expensive regime the cache exists for).
  auto cell_config = [](const runner::ScenarioSpec& spec) {
    relay::RelayConfig config;
    config.topology =
        spec.topology == runner::TopologyKind::kChordalRing
            ? relay::Topology::chordal_ring(spec.n, 2)
            : relay::Topology::ring_of_cliques(spec.n / 4, 4, 2);
    config.hop_model = bench::bench_model(spec.n, spec.f, spec.u,
                                          spec.vartheta, spec.d);
    config.faulty = sim::default_faulty_set(spec.f_actual);
    config.fault_kind = spec.relay_fault;
    return config;
  };
  const auto uncached_start = std::chrono::steady_clock::now();
  for (const auto& spec : cache_specs)
    (void)relay::compute_effective(cell_config(spec));
  const double uncached_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    uncached_start)
          .count();
  relay::EffectiveCache analysis_cache;
  const auto cached_start = std::chrono::steady_clock::now();
  for (const auto& spec : cache_specs) {
    // Key shape mirrors the runner's: family, n, f, faulty set (seed only
    // matters for the random family, absent from this grid).
    const std::uint64_t key =
        (static_cast<std::uint64_t>(spec.topology) << 32) ^
        (spec.n << 16) ^ (spec.f << 8) ^ spec.f_actual;
    (void)analysis_cache.get(key, cell_config(spec));
  }
  const double cached_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    cached_start)
          .count();

  // End-to-end: same grid through run_sweep with the cache off and on.
  runner::RunnerOptions no_cache;
  no_cache.relay_cache = false;
  const auto off_start = std::chrono::steady_clock::now();
  (void)runner::run_sweep(cache_specs, no_cache);
  const double sweep_off = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - off_start)
                               .count();
  const auto on_start = std::chrono::steady_clock::now();
  (void)runner::run_sweep(cache_specs, {});
  const double sweep_on = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - on_start)
                              .count();

  util::Table cache_table(
      "E13: relay compute_effective memo cache (" +
      std::to_string(cache_specs.size()) +
      " cells: 2 sparse families x 4 relay faults, n=32 at max fault load)");
  cache_table.set_header(
      {"path", "seconds", "speedup", "analyses", "cache hits"});
  cache_table.add_row({"analysis uncached", util::Table::num(uncached_secs, 3),
                       "1x", std::to_string(cache_specs.size()), "-"});
  cache_table.add_row(
      {"analysis memoized", util::Table::num(cached_secs, 3),
       util::Table::num(uncached_secs / std::max(cached_secs, 1e-9), 2) + "x",
       std::to_string(analysis_cache.misses()),
       std::to_string(analysis_cache.hits())});
  cache_table.add_row({"run_sweep cache off", util::Table::num(sweep_off, 3),
                       "1x", std::to_string(cache_specs.size()), "-"});
  cache_table.add_row(
      {"run_sweep cache on", util::Table::num(sweep_on, 3),
       util::Table::num(sweep_off / std::max(sweep_on, 1e-9), 2) + "x", "-",
       "-"});
  bench::print(cache_table);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
