// E3 — Figure 3 / Theorem 17: CPS worst-case skew vs the analytic bound S,
// at full resilience f = ⌈n/2⌉−1 under every Byzantine strategy.
//
// The table reports, per (n, strategy): worst skew over seeds × clock
// assignments, the analytic S, their ratio, liveness and ⊥ activity.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"

namespace crusader {

int run_bench() {
  util::Table table(
      "E3: CPS worst-case skew vs Theorem-17 bound S (f = ceil(n/2)-1)");
  table.set_header({"n", "f", "strategy", "worst skew", "steady (r>=5)",
                    "S bound", "skew/S", "live", "rounds"});

  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  const std::size_t rounds = 20;

  for (std::uint32_t n : {3u, 5u, 7u, 9u}) {
    const std::uint32_t f = sim::ModelParams::max_faults_signed(n);
    const auto model = bench::bench_model(n, f);
    const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);

    for (core::ByzStrategy strategy : core::all_byz_strategies()) {
      double worst = 0.0;
      double steady = 0.0;
      bool live = true;
      std::size_t min_rounds = 1u << 30;
      for (std::uint64_t seed : seeds) {
        for (auto clocks :
             {sim::ClockKind::kSpread, sim::ClockKind::kRandomWalk}) {
          const auto result = bench::run_protocol(
              baselines::ProtocolKind::kCps, model, f, strategy, seed, rounds,
              clocks, sim::DelayKind::kRandom,
              /*late_shift=*/0.3 * setup.cps.accept_window,
              /*split_shift=*/0.2);
          worst = std::max(worst, result.trace.max_skew());
          steady = std::max(steady, result.trace.max_skew(5));
          live = live && result.trace.live(rounds);
          min_rounds = std::min(min_rounds, result.trace.complete_rounds());
        }
      }
      table.add_row({std::to_string(n), std::to_string(f),
                     core::to_string(strategy), util::Table::num(worst, 4),
                     util::Table::num(steady, 4),
                     util::Table::num(setup.cps.S, 4),
                     util::Table::num(worst / setup.cps.S, 3),
                     util::Table::boolean(live), std::to_string(min_rounds)});
    }
  }
  bench::print(table);

  // Steady-state view: after the initial offsets contract, the skew lives at
  // the δ-scale, well below S.
  util::Table steady("E3b: CPS steady-state skew (rounds 10+) vs S and delta");
  steady.set_header({"n", "strategy", "steady skew", "delta", "S"});
  for (std::uint32_t n : {5u, 9u}) {
    const std::uint32_t f = sim::ModelParams::max_faults_signed(n);
    const auto model = bench::bench_model(n, f);
    const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
    for (core::ByzStrategy strategy :
         {core::ByzStrategy::kCrash, core::ByzStrategy::kSplit,
          core::ByzStrategy::kPullEarly, core::ByzStrategy::kRandom}) {
      const double skew =
          bench::worst_steady_skew(baselines::ProtocolKind::kCps, model, f,
                                   strategy, 30, 10, {1, 2, 3}, 0.2);
      steady.add_row({std::to_string(n), core::to_string(strategy),
                      util::Table::num(skew, 4),
                      util::Table::num(setup.cps.delta, 4),
                      util::Table::num(setup.cps.S, 4)});
    }
  }
  bench::print(steady);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
