// E7 — the resilience crossover (paper, Section 1): with signatures, CPS
// sustains its skew bound all the way to f = ⌈n/2⌉−1; without them,
// Lynch–Welch holds only below ⌈n/3⌉ and degrades beyond, under the
// two-faced split-timing attack nothing unsigned can detect.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "baselines/lynch_welch.hpp"
#include "bench_common.hpp"

namespace crusader {
namespace {

/// LW with a fixed protocol discard count (⌈n/3⌉−1) facing f_actual faults.
double lw_skew_at(std::uint32_t n, std::uint32_t f_actual, double split_shift,
                  std::uint64_t seed, std::size_t rounds) {
  auto model = bench::bench_model(n, sim::ModelParams::max_faults_signed(n));
  const auto setup =
      baselines::make_setup(baselines::ProtocolKind::kLynchWelch, model);

  baselines::LwConfig config;
  config.params = setup.lw;
  config.f = sim::ModelParams::max_faults_plain(n);
  sim::HonestFactory honest = [config](NodeId) {
    return std::make_unique<baselines::LynchWelchNode>(config);
  };
  sim::ByzantineFactory byz;
  if (f_actual > 0) {
    byz = core::make_byzantine_factory(core::ByzStrategy::kSplit, honest, seed,
                                       0.0, split_shift);
  }
  auto wc = bench::world_config(model, setup, rounds, seed);
  wc.faulty = sim::default_faulty_set(f_actual);
  wc.delay_kind = sim::DelayKind::kSplit;
  sim::World world(wc, honest, byz);
  return world.run().trace.max_skew(rounds / 3);
}

}  // namespace

int run_bench() {
  const std::uint32_t n = 12;
  const std::uint32_t f_signed = sim::ModelParams::max_faults_signed(n);  // 5
  const std::uint32_t f_plain = sim::ModelParams::max_faults_plain(n);    // 3
  const std::size_t rounds = 30;
  const double split_shift = 0.15;

  const auto model = bench::bench_model(n, f_signed);
  const auto cps_setup = baselines::make_setup(baselines::ProtocolKind::kCps, model);
  const auto lw_setup =
      baselines::make_setup(baselines::ProtocolKind::kLynchWelch, model);

  util::Table table(
      "E7: steady-state skew vs fault count (n = 12, split-timing attack)");
  table.set_header({"f actual", "CPS skew", "CPS ok (<= S)", "LW skew",
                    "LW regime", "LW/CPS"});

  for (std::uint32_t f_actual = 0; f_actual <= f_signed; ++f_actual) {
    const double cps_skew = bench::worst_steady_skew(
        baselines::ProtocolKind::kCps, model, f_actual,
        core::ByzStrategy::kSplit, rounds, rounds / 3, {1, 2}, split_shift);

    double lw_skew = 0.0;
    for (std::uint64_t seed : {1ull, 2ull})
      lw_skew = std::max(lw_skew, lw_skew_at(n, f_actual, split_shift, seed,
                                             rounds));

    const char* regime = f_actual <= f_plain ? "within f<n/3" : "BEYOND n/3";
    table.add_row({std::to_string(f_actual), util::Table::num(cps_skew, 4),
                   util::Table::boolean(cps_skew <= cps_setup.cps.S + 1e-9),
                   util::Table::num(lw_skew, 4), regime,
                   util::Table::num(lw_skew / std::max(cps_skew, 1e-9), 2)});
  }
  bench::print(table);

  util::Table bounds("E7b: analytic context");
  bounds.set_header({"quantity", "value"});
  bounds.add_row({"CPS resilience ceil(n/2)-1", std::to_string(f_signed)});
  bounds.add_row({"LW resilience ceil(n/3)-1", std::to_string(f_plain)});
  bounds.add_row({"CPS S bound", util::Table::num(cps_setup.cps.S, 4)});
  bounds.add_row({"LW S bound (f<n/3 only)", util::Table::num(lw_setup.lw.S, 4)});
  bounds.add_row({"attack split shift", util::Table::num(split_shift, 3)});
  bench::print(bounds);
  return 0;
}

}  // namespace crusader

int main() { return crusader::run_bench(); }
