#include "baselines/flood_probe.hpp"

#include "crypto/signature.hpp"

namespace crusader::baselines {

NodeId FloodProbeNode::beacon_of(const sim::Env& env) noexcept {
  return env.model().n - 1;
}

void FloodProbeNode::on_start(sim::Env& env) {
  if (env.id() != beacon_of(env)) return;  // receivers are purely reactive
  base_local_ = env.local_now();
  const double period = 2.0 * env.model().d;
  env.schedule_at_local(base_local_ + period, encode_tag(kTagSend, 1));
}

void FloodProbeNode::on_timer(sim::Env& env, std::uint64_t tag) {
  const Round round = tag >> 3;
  if ((tag & 7u) == kTagPulse) {
    env.pulse();
    return;
  }
  if (done(round)) return;
  sim::Message m;
  m.kind = sim::MsgKind::kRaw;
  m.round = round;
  m.sig = env.sign(crypto::make_pulse_payload(round));
  env.broadcast(m);
  // The beacon's own pulse lands d local-time units after the send —
  // bracketing the receivers' delivery window (see header bound).
  env.schedule_at_local(env.local_now() + env.model().d,
                        encode_tag(kTagPulse, round));
  if (!done(round + 1)) {
    const double period = 2.0 * env.model().d;
    env.schedule_at_local(base_local_ + static_cast<double>(round + 1) * period,
                          encode_tag(kTagSend, round + 1));
  }
}

void FloodProbeNode::on_message(sim::Env& env, const sim::Message& m) {
  if (env.id() == beacon_of(env)) return;  // the beacon ignores traffic
  // First verified in-order beacon message per round; rounds are T = 2·d
  // apart while delays spread at most u < d, so honest copies can never
  // arrive round-inverted — anything out of order is forged or replayed.
  if (m.round != next_ || done(m.round)) return;
  if (m.sig.signer != beacon_of(env)) return;
  if (!env.verify(m.sig, crypto::make_pulse_payload(m.round))) return;
  ++next_;
  env.pulse();
}

}  // namespace crusader::baselines
