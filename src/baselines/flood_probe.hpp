#pragma once
// Flood probe: a deliberately minimal broadcast-heavy pulse source used to
// exercise the engine and the relay overlay at large n.
//
// One distinguished beacon (node n − 1 — outside the default faulty set,
// which crashes the FIRST f ids) broadcasts a signed round message every
// T = 2·d of its local time and pulses d local-time units after each send;
// every other node pulses on the first verified in-order beacon message.
// Receivers therefore pulse within the delay spread u of each other, and
// the beacon lands within [d/ϑ, d] after the send, so the skew is bounded by
//     max(u, d·(1 − 1/ϑ)).
// In relay worlds the protocol runs against the effective model, where
// u_eff ≥ d_eff·(1 − 1/ϑ) always holds — the bound collapses to u_eff, i.e.
// a probe sweep cell gated at --gate=1.0 is a direct conformance check of
// the Theorem 17 premise (every pair behaves like a d_eff/u_eff link).
//
// There is no convergence logic: the probe measures the transport, not the
// algorithm. That is exactly what makes it the large-n smoke/bench protocol
// — a cell's cost is one flood per round, nothing superlinear on top.

#include <cstdint>

#include "sim/node.hpp"

namespace crusader::baselines {

struct ProbeConfig {
  Round max_rounds = 0;  ///< pulses per node; 0 = run to the horizon
};

class FloodProbeNode final : public sim::PulseNode {
 public:
  explicit FloodProbeNode(const ProbeConfig& config) : config_(config) {}

  void on_start(sim::Env& env) override;
  void on_message(sim::Env& env, const sim::Message& m) override;
  void on_timer(sim::Env& env, std::uint64_t tag) override;

 private:
  enum TagKind : std::uint64_t { kTagSend = 1, kTagPulse = 2 };
  [[nodiscard]] static std::uint64_t encode_tag(TagKind kind,
                                                Round round) noexcept {
    return static_cast<std::uint64_t>(kind) | (round << 3);
  }

  [[nodiscard]] static NodeId beacon_of(const sim::Env& env) noexcept;
  [[nodiscard]] bool done(Round round) const noexcept {
    return config_.max_rounds > 0 && round > config_.max_rounds;
  }

  ProbeConfig config_;
  double base_local_ = 0.0;  ///< beacon: local time at start
  Round next_ = 1;           ///< next round to send (beacon) / accept (other)
};

}  // namespace crusader::baselines
