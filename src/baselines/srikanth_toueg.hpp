#pragma once
// Authenticated Srikanth–Toueg-style pulse synchronization [28], [21], [2] —
// the signature-based baseline the paper compares against: optimal
// resilience f = ⌈n/2⌉ − 1, but skew Θ(d).
//
// Per round r:
//   * when the local ready-timer for round r fires (and the node has not
//     pulsed r yet), sign and broadcast ⟨ready r⟩_v;
//   * upon holding f+1 valid ⟨ready r⟩ signatures from distinct signers,
//     pulse r, relay the certificate to everyone, and schedule the round
//     r+1 ready-timer T_st local-time units later.
//
// The f+1 threshold guarantees at least one honest signer backs every pulse
// (faulty nodes can accelerate rounds, never fake them); the certificate
// relay bounds the skew by one message delay: skew ≤ d.

#include <cstdint>
#include <map>
#include <vector>

#include "core/params.hpp"
#include "sim/node.hpp"

namespace crusader::baselines {

struct StConfig {
  core::StParams params;
  /// Certificate threshold minus one; defaults to ⌈n/2⌉ − 1 when 0xffffffff.
  std::uint32_t f = 0xffffffffu;
  Round max_rounds = 0;
};

struct StNodeStats {
  Round rounds_completed = 0;
  std::uint64_t invalid_signatures = 0;
  std::uint64_t certificates_relayed = 0;
};

class SrikanthTouegNode final : public sim::PulseNode {
 public:
  explicit SrikanthTouegNode(const StConfig& config);

  void on_start(sim::Env& env) override;
  void on_message(sim::Env& env, const sim::Message& m) override;
  void on_timer(sim::Env& env, std::uint64_t tag) override;

  [[nodiscard]] const StNodeStats& stats() const noexcept { return stats_; }

 private:
  enum TagKind : std::uint64_t { kTagReady = 1 };
  [[nodiscard]] static std::uint64_t encode_tag(TagKind kind,
                                                Round round) noexcept {
    return static_cast<std::uint64_t>(kind) | (round << 3);
  }

  void absorb(sim::Env& env, Round round, const crypto::Signature& sig);
  void maybe_pulse(sim::Env& env);

  StConfig config_;
  std::uint32_t f_ = 0;
  Round next_pulse_ = 1;  // the round we will pulse next
  bool ready_sent_ = false;
  /// Valid ready signatures per round, keyed by signer (dedup).
  std::map<Round, std::map<NodeId, crypto::Signature>> ready_;
  StNodeStats stats_;
};

}  // namespace crusader::baselines
