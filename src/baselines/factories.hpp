#pragma once
// Shared protocol factories: build honest-node factories for any of the three
// pulse-synchronization protocols from model parameters. Used by tests,
// benches, and the lower-bound runner.

#include <string>

#include "core/params.hpp"
#include "sim/world.hpp"

namespace crusader::baselines {

/// kFloodProbe is the transport-measuring probe (baselines/flood_probe.hpp):
/// one signed beacon broadcast per round, receivers pulse on delivery. Its
/// predicted skew max(u, d·(1 − 1/ϑ)) holds for any admissible delivery, so
/// probe cells conformance-check the world/overlay rather than an algorithm.
///
/// kGradient / kJumpMax are the KLLO envelope gate's subjects
/// (sync/gradient.hpp): peer-to-peer, beacon-free protocols that exchange
/// signed round messages with their current neighbors. kGradient closes
/// clock gaps at a bounded per-round rate with midpoint delay compensation
/// (conforming); kJumpMax is the naive uncompensated jump-to-max whose
/// steady per-edge lag ~d sits above the stabilized envelope (violating).
enum class ProtocolKind {
  kCps,
  kLynchWelch,
  kSrikanthToueg,
  kFloodProbe,
  kGradient,
  kJumpMax,
};

[[nodiscard]] const char* to_string(ProtocolKind kind);

/// True for protocols that are neighbor-scoped: in relay worlds their
/// broadcasts must reach exactly the sender's current neighbors (one hop, no
/// flood) instead of the path-balanced flood overlay, because per-edge
/// locality is the property under test.
[[nodiscard]] bool neighbor_cast(ProtocolKind kind) noexcept;

/// Derived parameter bundle for whichever protocol is selected.
struct ProtocolSetup {
  ProtocolKind kind = ProtocolKind::kCps;
  core::CpsParams cps;  // valid when kind == kCps
  core::LwParams lw;    // valid when kind == kLynchWelch
  core::StParams st;    // valid when kind == kSrikanthToueg
  /// Skew the theory predicts for this protocol (S, S_lw, or d).
  double predicted_skew = 0.0;
  /// Bound on initial hardware-clock offsets the protocol assumes.
  double initial_offset = 0.0;
  /// Real-time length of one pulse round (for horizon sizing).
  double round_length = 0.0;
  bool feasible = false;
};

[[nodiscard]] ProtocolSetup make_setup(ProtocolKind kind,
                                       const sim::ModelParams& model,
                                       double slack = 1.0);

/// Honest factory for the protocol; `max_rounds` caps pulses (0 = horizon).
[[nodiscard]] sim::HonestFactory make_protocol_factory(
    const ProtocolSetup& setup, Round max_rounds = 0);

}  // namespace crusader::baselines
