#include "baselines/factories.hpp"

#include <algorithm>
#include <memory>

#include "baselines/flood_probe.hpp"
#include "baselines/lynch_welch.hpp"
#include "baselines/srikanth_toueg.hpp"
#include "core/cps.hpp"
#include "sync/gradient.hpp"
#include "util/check.hpp"

namespace crusader::baselines {

const char* to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kCps: return "CPS";
    case ProtocolKind::kLynchWelch: return "Lynch-Welch";
    case ProtocolKind::kSrikanthToueg: return "Srikanth-Toueg";
    case ProtocolKind::kFloodProbe: return "probe";
    case ProtocolKind::kGradient: return "gradient";
    case ProtocolKind::kJumpMax: return "jump-max";
  }
  return "?";
}

bool neighbor_cast(ProtocolKind kind) noexcept {
  return kind == ProtocolKind::kGradient || kind == ProtocolKind::kJumpMax;
}

ProtocolSetup make_setup(ProtocolKind kind, const sim::ModelParams& model,
                         double slack) {
  ProtocolSetup setup;
  setup.kind = kind;
  switch (kind) {
    case ProtocolKind::kCps:
      setup.cps = core::derive_cps_params(model, slack);
      setup.feasible = setup.cps.feasible;
      setup.predicted_skew = setup.cps.S;
      setup.initial_offset = setup.cps.S;
      setup.round_length = setup.cps.p_max;
      break;
    case ProtocolKind::kLynchWelch:
      setup.lw = core::derive_lw_params(model, slack);
      setup.feasible = setup.lw.feasible;
      setup.predicted_skew = setup.lw.S;
      setup.initial_offset = setup.lw.S;
      setup.round_length = setup.lw.T + 3.0 * setup.lw.S;
      break;
    case ProtocolKind::kSrikanthToueg:
      setup.st = core::derive_st_params(model);
      setup.feasible = true;
      setup.predicted_skew = setup.st.skew;
      // ST needs no initial synchrony, but worlds still spread offsets a bit
      // to exercise it; d is a natural scale.
      setup.initial_offset = model.d;
      setup.round_length = setup.st.T + 2.0 * model.d;
      break;
    case ProtocolKind::kFloodProbe:
      // No derived constants: the probe is feasible for every admissible
      // model, pulses bracket one delivery window (see flood_probe.hpp), and
      // nodes start aligned so receivers need no initial synchrony at all.
      setup.feasible = true;
      setup.predicted_skew =
          std::max(model.u, model.d * (1.0 - 1.0 / model.vartheta));
      setup.initial_offset = 0.0;
      setup.round_length = 2.0 * model.d;
      break;
    case ProtocolKind::kGradient:
    case ProtocolKind::kJumpMax:
      // Always feasible: both variants only ever pull clocks forward toward
      // neighbors, never assume initial synchrony, and pulse every T = 2·d.
      // The honest prediction is the global envelope n·σ with σ the
      // per-round uncertainty scale — the fresh-edge allowance of the KLLO
      // gate; the per-edge verdict is the envelope gate's business.
      setup.feasible = true;
      setup.round_length = 2.0 * model.d;
      setup.predicted_skew =
          static_cast<double>(model.n) *
          (model.u + (model.vartheta - 1.0) * setup.round_length);
      setup.initial_offset = 0.0;
      break;
  }
  return setup;
}

sim::HonestFactory make_protocol_factory(const ProtocolSetup& setup,
                                         Round max_rounds) {
  CS_CHECK_MSG(setup.feasible, "protocol setup infeasible for this model");
  switch (setup.kind) {
    case ProtocolKind::kCps: {
      core::CpsConfig config;
      config.params = setup.cps;
      config.max_rounds = max_rounds;
      return [config](NodeId) { return std::make_unique<core::CpsNode>(config); };
    }
    case ProtocolKind::kLynchWelch: {
      LwConfig config;
      config.params = setup.lw;
      config.max_rounds = max_rounds;
      return [config](NodeId) {
        return std::make_unique<LynchWelchNode>(config);
      };
    }
    case ProtocolKind::kSrikanthToueg: {
      StConfig config;
      config.params = setup.st;
      config.max_rounds = max_rounds;
      return [config](NodeId) {
        return std::make_unique<SrikanthTouegNode>(config);
      };
    }
    case ProtocolKind::kFloodProbe: {
      ProbeConfig config;
      config.max_rounds = max_rounds;
      return [config](NodeId) {
        return std::make_unique<FloodProbeNode>(config);
      };
    }
    case ProtocolKind::kGradient:
    case ProtocolKind::kJumpMax: {
      sync::GradientConfig config;
      config.max_rounds = max_rounds;
      config.bounded = setup.kind == ProtocolKind::kGradient;
      return [config](NodeId) {
        return std::make_unique<sync::GradientNode>(config);
      };
    }
  }
  CS_CHECK_MSG(false, "unknown protocol kind");
  return nullptr;
}

}  // namespace crusader::baselines
