#include "baselines/srikanth_toueg.hpp"

#include <cstdint>

#include "util/check.hpp"

namespace crusader::baselines {

SrikanthTouegNode::SrikanthTouegNode(const StConfig& config)
    : config_(config) {
  CS_CHECK(config_.params.T > 0.0);
}

void SrikanthTouegNode::on_start(sim::Env& env) {
  const auto& model = env.model();
  f_ = config_.f == 0xffffffffu ? sim::ModelParams::max_faults_signed(model.n)
                                : config_.f;
  env.schedule_at_local(config_.params.first_at, encode_tag(kTagReady, 1));
}

void SrikanthTouegNode::on_timer(sim::Env& env, std::uint64_t tag) {
  const auto kind = static_cast<TagKind>(tag & 0x7u);
  const Round tag_round = tag >> 3;
  if (kind != kTagReady) return;
  if (tag_round != next_pulse_ || ready_sent_) return;

  ready_sent_ = true;
  sim::Message m;
  m.kind = sim::MsgKind::kStReady;
  m.round = next_pulse_;
  m.dealer = env.id();
  m.sig = env.sign(crypto::make_ready_payload(next_pulse_));
  env.broadcast(m);
  // Our own signature also counts toward our certificate.
  absorb(env, next_pulse_, m.sig);
}

void SrikanthTouegNode::on_message(sim::Env& env, const sim::Message& m) {
  if (m.kind == sim::MsgKind::kStReady) {
    absorb(env, m.round, m.sig);
  } else if (m.kind == sim::MsgKind::kStCert) {
    for (const auto& sig : m.sigs) absorb(env, m.round, sig);
  }
}

void SrikanthTouegNode::absorb(sim::Env& env, Round round,
                               const crypto::Signature& sig) {
  if (round < next_pulse_) return;  // stale
  if (!env.verify(sig, crypto::make_ready_payload(round))) {
    ++stats_.invalid_signatures;
    return;
  }
  ready_[round][sig.signer] = sig;
  maybe_pulse(env);
}

void SrikanthTouegNode::maybe_pulse(sim::Env& env) {
  // Rounds can only be pulsed in order; a certificate for a later round may
  // already be buffered, so loop.
  while (true) {
    if (config_.max_rounds != 0 && next_pulse_ > config_.max_rounds) return;
    const auto it = ready_.find(next_pulse_);
    if (it == ready_.end() || it->second.size() < f_ + 1) return;

    env.pulse();
    ++stats_.rounds_completed;

    // Relay the certificate so everyone pulses within one message delay.
    sim::Message cert;
    cert.kind = sim::MsgKind::kStCert;
    cert.round = next_pulse_;
    for (const auto& [signer, sig] : it->second) cert.sigs.push_back(sig);
    env.broadcast(cert);
    ++stats_.certificates_relayed;

    ready_.erase(ready_.begin(), ready_.upper_bound(next_pulse_));
    ++next_pulse_;
    ready_sent_ = false;
    env.schedule_at_local(env.local_now() + config_.params.T,
                          encode_tag(kTagReady, next_pulse_));
  }
}

}  // namespace crusader::baselines
