#include "baselines/lynch_welch.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"
#include "sync/approx_agreement.hpp"
#include "util/check.hpp"

namespace crusader::baselines {

LynchWelchNode::LynchWelchNode(const LwConfig& config) : config_(config) {
  CS_CHECK_MSG(config_.params.feasible,
               "Lynch-Welch configured with infeasible parameters");
}

void LynchWelchNode::on_start(sim::Env& env) {
  const auto& model = env.model();
  f_ = config_.f == 0xffffffffu ? sim::ModelParams::max_faults_plain(model.n)
                                : config_.f;
  accepts_.resize(model.n);
  env.schedule_at_local(config_.params.S, encode_tag(kTagPulse, 1));
}

void LynchWelchNode::do_pulse(sim::Env& env) {
  ++round_;
  pulse_local_ = env.local_now();
  env.pulse();

  if (config_.max_rounds != 0 && round_ >= config_.max_rounds) return;

  collecting_ = true;
  std::fill(accepts_.begin(), accepts_.end(), std::nullopt);

  env.schedule_at_local(pulse_local_ + config_.params.dealer_offset,
                        encode_tag(kTagSend, round_));
  env.schedule_at_local(
      pulse_local_ + config_.params.accept_window + 2.0 * sim::kBoundarySlack,
      encode_tag(kTagWindowClose, round_));
}

void LynchWelchNode::on_message(sim::Env& env, const sim::Message& m) {
  if (m.kind != sim::MsgKind::kLwPulse) return;
  if (!collecting_ || m.round != round_) {
    ++stats_.stale_messages;
    return;
  }
  const NodeId from = m.sender;
  if (from >= accepts_.size() || from == env.id()) return;
  if (accepts_[from].has_value()) return;  // first message per sender counts

  const double h = env.local_now();
  // Window (L, L + W), widened by the boundary slack (see sim/time.hpp).
  if (h <= pulse_local_ - sim::kTimeEps ||
      h >= pulse_local_ + config_.params.accept_window + sim::kBoundarySlack)
    return;
  accepts_[from] = h;
}

void LynchWelchNode::on_timer(sim::Env& env, std::uint64_t tag) {
  const auto kind = static_cast<TagKind>(tag & 0x7u);
  const Round tag_round = tag >> 3;

  switch (kind) {
    case kTagPulse:
      CS_CHECK_MSG(tag_round == round_ + 1, "pulse timers fire in order");
      do_pulse(env);
      break;
    case kTagSend:
      if (tag_round == round_ && collecting_) {
        sim::Message m;
        m.kind = sim::MsgKind::kLwPulse;
        m.round = round_;
        m.dealer = env.id();
        env.broadcast(m);
      }
      break;
    case kTagWindowClose:
      if (tag_round == round_ && collecting_) finish_round(env);
      break;
  }
}

void LynchWelchNode::finish_round(sim::Env& env) {
  const auto& model = env.model();
  std::vector<double> values;
  values.reserve(model.n);
  values.push_back(0.0);  // own offset
  for (NodeId y = 0; y < model.n; ++y) {
    if (y == env.id()) continue;
    if (accepts_[y].has_value()) {
      values.push_back(*accepts_[y] - pulse_local_ - model.d + model.u -
                       config_.params.S);
    } else {
      ++stats_.missing_estimates;
    }
  }

  // Classic fault-tolerant midpoint: drop the f lowest and f highest of the
  // received estimates (no ⊥ information without signatures, so the discard
  // count is always f), then take the midpoint. Requires n > 3f.
  std::sort(values.begin(), values.end());
  CS_CHECK_MSG(values.size() > 2 * static_cast<std::size_t>(f_),
               "fewer than 2f+1 estimates; n > 3f violated?");
  const double lo = values[f_];
  const double hi = values[values.size() - 1 - f_];
  const double delta = (lo + hi) / 2.0;

  ++stats_.rounds_completed;
  collecting_ = false;

  const double target = pulse_local_ + delta + config_.params.T;
  if (sim::lt_eps(target, env.local_now())) ++stats_.negative_waits;
  env.schedule_at_local(std::max(target, env.local_now()),
                        encode_tag(kTagPulse, round_ + 1));
}

}  // namespace crusader::baselines
