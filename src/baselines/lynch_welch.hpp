#pragma once
// Lynch–Welch fault-tolerant clock synchronization [25] — the classic
// signature-free baseline the paper builds on ("the algorithm can be viewed
// as simulating iterations of synchronous approximate agreement", Section 3).
//
// Structure is identical to CPS minus the crusader machinery: each node
// broadcasts a plain (unsigned) pulse message at local time L + ϑS, accepts
// the first message per sender inside the window (L, L + W), computes
// Δ_{v,y} = h − L − d + u − S, discards the f lowest and f highest of the n
// estimates (self contributes 0), and pulses again at L + midpoint + T.
//
// Resilience: f < n/3 (the fault-tolerant-midpoint argument requires
// n > 3f). Skew: Θ(u + (ϑ−1)d) — same order as CPS, strictly worse
// resilience. Against Byzantine timing attacks at f ≥ n/3 the averaging step
// can be steered and skew degrades — exactly the E7 crossover experiment.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "sim/node.hpp"

namespace crusader::baselines {

struct LwConfig {
  core::LwParams params;
  /// Discard count f; defaults to ⌈n/3⌉ − 1 when 0xffffffff.
  std::uint32_t f = 0xffffffffu;
  Round max_rounds = 0;
};

struct LwNodeStats {
  Round rounds_completed = 0;
  std::uint64_t missing_estimates = 0;
  std::uint64_t stale_messages = 0;
  std::uint64_t negative_waits = 0;
};

class LynchWelchNode final : public sim::PulseNode {
 public:
  explicit LynchWelchNode(const LwConfig& config);

  void on_start(sim::Env& env) override;
  void on_message(sim::Env& env, const sim::Message& m) override;
  void on_timer(sim::Env& env, std::uint64_t tag) override;

  [[nodiscard]] const LwNodeStats& stats() const noexcept { return stats_; }

 private:
  enum TagKind : std::uint64_t {
    kTagPulse = 1,
    kTagSend = 2,
    kTagWindowClose = 3,
  };
  [[nodiscard]] static std::uint64_t encode_tag(TagKind kind,
                                                Round round) noexcept {
    return static_cast<std::uint64_t>(kind) | (round << 3);
  }

  void do_pulse(sim::Env& env);
  void finish_round(sim::Env& env);

  LwConfig config_;
  std::uint32_t f_ = 0;
  Round round_ = 0;
  double pulse_local_ = 0.0;
  bool collecting_ = false;
  /// Per sender: accept time h of the first round-r message, if any.
  std::vector<std::optional<double>> accepts_;
  LwNodeStats stats_;
};

}  // namespace crusader::baselines
