#include "core/params.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace crusader::core {

ParamSolver::ParamSolver(sim::ModelParams model) : model_(model) {
  model_.validate();
}

double ParamSolver::delta_valid(double S) const noexcept {
  const double vt = model_.vartheta;
  return model_.u + (vt - 1.0) * model_.d + (vt * vt + vt - 2.0) * S;
}

double ParamSolver::delta_cons(double S) const noexcept {
  const double vt = model_.vartheta;
  return (vt - 1.0) * (vt * model_.d + (vt * vt + vt) * S) +
         (1.0 - 1.0 / vt) * model_.d + 2.0 * model_.u / vt;
}

double ParamSolver::delta(double S) const noexcept {
  return std::max(delta_valid(S), delta_cons(S));
}

double ParamSolver::min_T(double S) const noexcept {
  const double vt = model_.vartheta;
  return (vt * vt + vt + 1.0) * S + (vt + 1.0) * model_.d - 2.0 * model_.u;
}

CpsParams ParamSolver::solve(double slack) const {
  CS_CHECK_MSG(slack >= 1.0, "slack must be >= 1");
  const double vt = model_.vartheta;
  const double d = model_.d;
  const double u = model_.u;

  // δ_i(S) = a_i + b_i·S for the two error bounds.
  const double a_valid = u + (vt - 1.0) * d;
  const double b_valid = vt * vt + vt - 2.0;
  const double a_cons =
      (vt - 1.0) * vt * d + (1.0 - 1.0 / vt) * d + 2.0 * u / vt;
  const double b_cons = (vt - 1.0) * (vt * vt + vt);

  // T(S) = tS·S + tc (Corollary 15, at the minimum).
  const double tS = vt * vt + vt + 1.0;
  const double tc = (vt + 1.0) * d - 2.0 * u;

  // Lemma 16 closes iff S·(2−ϑ) ≥ 2(2ϑ−1)(a_i + b_i S) + 2(ϑ−1)(tS·S + tc)
  // for BOTH error bounds, i.e. S ≥ β_i / den_i with den_i > 0.
  CpsParams out;
  double s_req = 0.0;
  for (const auto& [a, b] : {std::pair{a_valid, b_valid},
                             std::pair{a_cons, b_cons}}) {
    const double den =
        (2.0 - vt) - 2.0 * (2.0 * vt - 1.0) * b - 2.0 * (vt - 1.0) * tS;
    const double beta = 2.0 * (2.0 * vt - 1.0) * a + 2.0 * (vt - 1.0) * tc;
    if (den <= 0.0) {
      out.feasible = false;
      return out;
    }
    s_req = std::max(s_req, beta / den);
  }

  out.feasible = true;
  out.S = s_req * slack;
  out.T = min_T(out.S);
  out.delta = delta(out.S);
  out.p_min = (out.T - (vt + 1.0) * out.S) / vt;
  out.p_max = out.T + 3.0 * out.S;
  out.accept_window = vt * (d + (vt + 1.0) * out.S);
  out.echo_guard = d - 2.0 * u;
  out.dealer_offset = vt * out.S;

  CS_CHECK_MSG(out.p_min > 0.0, "derived P_min must be positive");
  return out;
}

double ParamSolver::max_vartheta(double d, double u) {
  double lo = 1.0 + 1e-9;  // feasible
  double hi = 2.0;         // infeasible (the (2−ϑ) factor alone kills it)
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    sim::ModelParams m;
    m.n = 3;
    m.f = 1;
    m.d = d;
    m.u = u;
    m.u_tilde = u;
    m.vartheta = mid;
    const bool ok = ParamSolver(m).solve().feasible;
    (ok ? lo : hi) = mid;
  }
  return lo;
}

CpsParams derive_cps_params(const sim::ModelParams& model, double slack) {
  return ParamSolver(model).solve(slack);
}

LwParams derive_lw_params(const sim::ModelParams& model, double slack) {
  CS_CHECK_MSG(slack >= 1.0, "slack must be >= 1");
  const double vt = model.vartheta;
  const double d = model.d;
  const double u = model.u;

  const double a = u + (vt - 1.0) * d;     // δ_valid intercept
  const double b = vt * vt + vt - 2.0;      // δ_valid slope
  const double tS = vt * vt + vt + 1.0;
  const double tc = (vt + 1.0) * d - 2.0 * u;

  LwParams out;
  const double den =
      (2.0 - vt) - 2.0 * (2.0 * vt - 1.0) * b - 2.0 * (vt - 1.0) * tS;
  if (den <= 0.0) {
    out.feasible = false;
    return out;
  }
  const double beta = 2.0 * (2.0 * vt - 1.0) * a + 2.0 * (vt - 1.0) * tc;
  out.feasible = true;
  out.S = (beta / den) * slack;
  out.T = tS * out.S + tc;
  out.delta = a + b * out.S;
  out.accept_window = vt * (d + (vt + 1.0) * out.S);
  out.dealer_offset = vt * out.S;
  return out;
}

StParams derive_st_params(const sim::ModelParams& model) {
  StParams out;
  // After one node's ready timer fires, a pulse certificate reaches everyone
  // within 2d; spacing rounds 4·ϑ·d apart keeps rounds cleanly separated even
  // under maximal drift and Byzantine acceleration by one full propagation.
  out.T = 4.0 * model.vartheta * model.d;
  out.skew = model.d;
  out.first_at = out.T;
  return out;
}

}  // namespace crusader::core
