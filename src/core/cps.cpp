#include "core/cps.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"
#include "sync/approx_agreement.hpp"
#include "util/check.hpp"

namespace crusader::core {

CpsNode::CpsNode(const CpsConfig& config) : config_(config) {
  CS_CHECK_MSG(config_.params.feasible,
               "CPS configured with infeasible parameters (vartheta too large "
               "for Lemma 16 to close)");
}

void CpsNode::on_start(sim::Env& env) {
  const auto& model = env.model();
  f_ = config_.f == 0xffffffffu ? sim::ModelParams::max_faults_signed(model.n)
                                : config_.f;
  instances_.resize(model.n);
  // Figure 3: wait until local time S, then generate the first pulse.
  env.schedule_at_local(config_.params.S, encode_tag(kTagPulse, 1));
}

void CpsNode::do_pulse(sim::Env& env) {
  ++round_;
  pulse_local_ = env.local_now();
  env.pulse();

  if (config_.max_rounds != 0 && round_ >= config_.max_rounds) return;

  collecting_ = true;
  const auto& model = env.model();
  const TcbInstance::Config tcb_config{pulse_local_,
                                       config_.params.accept_window,
                                       config_.params.echo_guard,
                                       !config_.ablate_echo_guard};
  for (NodeId dealer = 0; dealer < model.n; ++dealer) {
    if (dealer == env.id()) {
      instances_[dealer].reset();
    } else {
      instances_[dealer].emplace(dealer, tcb_config);
    }
  }

  env.schedule_at_local(pulse_local_ + config_.params.dealer_offset,
                        encode_tag(kTagDealerSend, round_));
  // The close timer fires strictly after the widened acceptance boundary so
  // that a message arriving exactly at L + W is still accepted (FIFO event
  // order would otherwise time the instance out first).
  env.schedule_at_local(
      pulse_local_ + config_.params.accept_window + 2.0 * sim::kBoundarySlack,
      encode_tag(kTagWindowClose, round_));
}

void CpsNode::do_dealer_send(sim::Env& env) {
  sim::Message m;
  m.kind = sim::MsgKind::kTcbSig;
  m.round = round_;
  m.dealer = env.id();
  m.sig = env.sign(crypto::make_pulse_payload(round_));
  env.broadcast(m);
}

TcbInstance& CpsNode::instance(NodeId dealer) {
  CS_CHECK(dealer < instances_.size() && instances_[dealer].has_value());
  return *instances_[dealer];
}

void CpsNode::on_message(sim::Env& env, const sim::Message& m) {
  if (m.kind != sim::MsgKind::kTcbSig) return;
  handle_tcb_message(env, m);
}

void CpsNode::handle_tcb_message(sim::Env& env, const sim::Message& m) {
  if (!collecting_ || m.round != round_) {
    ++stats_.stale_messages;
    return;
  }
  // Copies of our own signature and out-of-range dealers are irrelevant:
  // our own TCB instance as dealer terminated at send time.
  if (m.dealer == env.id() || m.dealer >= instances_.size()) return;
  if (m.sig.signer != m.dealer ||
      !env.verify(m.sig, crypto::make_pulse_payload(m.round))) {
    ++stats_.invalid_signatures;
    return;
  }

  TcbInstance& inst = instance(m.dealer);
  if (inst.done()) {
    maybe_finish_round(env);
    return;
  }

  const double h = env.local_now();
  if (m.sender == m.dealer) {
    if (inst.on_direct(h)) {
      // Figure 2: forward ⟨r⟩_y to all nodes at the acceptance time — even
      // when the instance is already doomed to ⊥ by an earlier echo.
      env.broadcast(m);
      if (!inst.done()) {
        env.schedule_at_local(inst.guard_deadline(),
                              encode_tag(kTagGuard, round_, m.dealer));
      }
    }
  } else {
    inst.on_third_party(h);
  }
  maybe_finish_round(env);
}

void CpsNode::on_timer(sim::Env& env, std::uint64_t tag) {
  const auto kind = static_cast<TagKind>(tag & 0x7u);
  const Round tag_round = (tag >> 3) & 0x1fffffffffULL;
  const NodeId tag_dealer = static_cast<NodeId>(tag >> 40);

  switch (kind) {
    case kTagPulse:
      CS_CHECK_MSG(tag_round == round_ + 1, "pulse timers fire in order");
      do_pulse(env);
      break;
    case kTagDealerSend:
      if (tag_round == round_ && collecting_) do_dealer_send(env);
      break;
    case kTagWindowClose:
      if (tag_round == round_ && collecting_) {
        const auto n = static_cast<NodeId>(instances_.size());
        for (NodeId dealer = 0; dealer < n; ++dealer) {
          if (instances_[dealer].has_value())
            instances_[dealer]->on_window_close();
        }
        maybe_finish_round(env);
      }
      break;
    case kTagGuard:
      if (tag_round == round_ && collecting_ &&
          instances_[tag_dealer].has_value()) {
        instances_[tag_dealer]->on_guard_elapsed();
        maybe_finish_round(env);
      }
      break;
  }
}

void CpsNode::maybe_finish_round(sim::Env& env) {
  if (!collecting_) return;
  for (const auto& inst : instances_) {
    if (inst.has_value() && !inst->done()) return;
  }

  // All TCB instances terminated: compute Δ per Figure 3.
  const auto& model = env.model();
  std::vector<double> values;
  values.reserve(model.n);
  values.push_back(0.0);  // Δ_{v,v} = 0 by definition
  std::uint32_t bots = 0;
  for (const auto& inst : instances_) {
    if (!inst.has_value()) continue;
    const std::optional<double> h = inst->output();
    if (h.has_value()) {
      const double estimate =
          *h - pulse_local_ - model.d + model.u - config_.params.S;
      values.push_back(estimate);
      ++stats_.accepted;
      if (config_.record_estimates) {
        estimates_.push_back(
            EstimateRecord{round_, inst->dealer(), false, estimate});
      }
    } else {
      ++bots;
      ++stats_.bot_estimates;
      if (config_.record_estimates) {
        estimates_.push_back(EstimateRecord{round_, inst->dealer(), true, 0.0});
      }
    }
  }

  double delta = 0.0;
  if (config_.ablate_discard_rule) {
    // Naive always-f discard (clamped): ignores what ⊥ reveals about which
    // dealers are faulty. Kept only for the E12 ablation.
    std::sort(values.begin(), values.end());
    const auto discard = std::min<std::size_t>(f_, (values.size() - 1) / 2);
    delta = (values[discard] + values[values.size() - 1 - discard]) / 2.0;
  } else {
    delta = sync::ApaNode::select_midpoint(values, f_, bots);
  }
  deltas_.push_back(delta);
  stats_.max_abs_delta = std::max(stats_.max_abs_delta, std::abs(delta));
  ++stats_.rounds_completed;
  collecting_ = false;

  const double target = pulse_local_ + delta + config_.params.T;
  if (sim::lt_eps(target, env.local_now())) ++stats_.negative_waits;
  env.schedule_at_local(std::max(target, env.local_now()),
                        encode_tag(kTagPulse, round_ + 1));
}

}  // namespace crusader::core
