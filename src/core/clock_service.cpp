#include "core/clock_service.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/check.hpp"

namespace crusader::core {

/// Pass-through Env that observes pulse() and keeps a handle on the current
/// env so read() can consult the hardware clock.
class ClockService::Proxy final : public sim::Env {
 public:
  explicit Proxy(ClockService* owner) : owner_(owner) {}

  void bind(sim::Env* env) { env_ = env; }
  [[nodiscard]] sim::Env* bound() const { return env_; }

  [[nodiscard]] NodeId id() const override { return env_->id(); }
  [[nodiscard]] const sim::ModelParams& model() const override {
    return env_->model();
  }
  [[nodiscard]] double local_now() const override { return env_->local_now(); }
  void send(NodeId to, sim::Message m) override { env_->send(to, std::move(m)); }
  void broadcast(const sim::Message& m) override { env_->broadcast(m); }
  sim::TimerId schedule_at_local(double t, std::uint64_t tag) override {
    return env_->schedule_at_local(t, tag);
  }
  void cancel_timer(sim::TimerId id) override { env_->cancel_timer(id); }

  void pulse() override {
    env_->pulse();
    ++owner_->pulses_;
    owner_->last_pulse_local_ = env_->local_now();
  }

  [[nodiscard]] crypto::Signature sign(
      const crypto::SignedPayload& p) override {
    return env_->sign(p);
  }
  [[nodiscard]] bool verify(const crypto::Signature& s,
                            const crypto::SignedPayload& p) const override {
    return env_->verify(s, p);
  }

 private:
  ClockService* owner_;
  sim::Env* env_ = nullptr;
};

ClockService::ClockService(std::unique_ptr<sim::PulseNode> inner, double tick,
                           double nominal_period)
    : proxy_(std::make_unique<Proxy>(this)),
      inner_(std::move(inner)),
      tick_(tick),
      nominal_period_(nominal_period) {
  CS_CHECK(inner_ != nullptr);
  CS_CHECK(tick_ > 0.0 && nominal_period_ > 0.0);
}

ClockService::~ClockService() = default;

void ClockService::on_start(sim::Env& env) {
  proxy_->bind(&env);
  inner_->on_start(*proxy_);
}

void ClockService::on_message(sim::Env& env, const sim::Message& m) {
  proxy_->bind(&env);
  inner_->on_message(*proxy_, m);
}

void ClockService::on_timer(sim::Env& env, std::uint64_t tag) {
  proxy_->bind(&env);
  inner_->on_timer(*proxy_, tag);
}

double ClockService::read() const {
  if (pulses_ == 0) return 0.0;
  CS_CHECK_MSG(proxy_->bound() != nullptr, "read() before on_start");
  const double h = proxy_->bound()->local_now();
  const double frac =
      std::min(1.0, (h - last_pulse_local_) / nominal_period_);
  return tick_ * (static_cast<double>(pulses_ - 1) + std::max(0.0, frac));
}

}  // namespace crusader::core
