#pragma once
// Crusader Pulse Synchronization — Figure 3 of the paper, the primary
// contribution: pulse synchronization with skew Θ(u + (ϑ−1)d) at resilience
// f = ⌈n/2⌉ − 1, assuming unforgeable signatures and minimum delay d−u on
// all links (d−ũ with ũ=u on faulty links; Theorem 5 shows why that is
// necessary).
//
// Per pulse round r (all times local):
//   1. pulse at L = H_v(p_v^r);
//   2. run TCB_r with every node as dealer (own signature sent at L + ϑS);
//   3. for each accepted output h: Δ_{v,y} = h − L − d + u − S; ⊥ otherwise;
//      Δ_{v,v} = 0;
//   4. apply the Figure-1 selection rule (discard f−b per side, midpoint);
//   5. pulse round r+1 at local time L + Δ + T.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.hpp"
#include "core/tcb.hpp"
#include "sim/node.hpp"

namespace crusader::core {

struct CpsConfig {
  CpsParams params;
  /// Protocol resilience constant f used by the discard rule. Defaults to
  /// ⌈n/2⌉ − 1 when 0xffffffff.
  std::uint32_t f = 0xffffffffu;
  /// Stop pulsing after this many rounds (0 = run to the horizon).
  Round max_rounds = 0;
  /// Record every raw offset estimate Δ_{v,y} (diagnostics; E2 bench).
  bool record_estimates = false;

  // --- Ablation switches (E12 bench; never set in production use) ---------
  /// Disable the Figure-2 echo rejection: timed broadcast without the
  /// "crusader" part. Equivocating dealers then yield inconsistent
  /// estimates instead of ⊥.
  bool ablate_echo_guard = false;
  /// Replace the Figure-1 f−b discard with a naive always-f discard
  /// (clamped to keep one value). Ignores the information carried by ⊥.
  bool ablate_discard_rule = false;
};

/// One recorded raw estimate (only when CpsConfig::record_estimates).
struct EstimateRecord {
  Round round = 0;        ///< 1-based pulse round
  NodeId dealer = kInvalidNode;
  bool bot = false;       ///< TCB output was ⊥
  double delta = 0.0;     ///< Δ_{v,dealer}, meaningful when !bot
};

struct CpsNodeStats {
  Round rounds_completed = 0;      ///< rounds whose Δ was computed
  std::uint64_t bot_estimates = 0; ///< ⊥ outputs across all TCB instances
  std::uint64_t accepted = 0;      ///< non-⊥ TCB outputs
  std::uint64_t stale_messages = 0;
  std::uint64_t invalid_signatures = 0;
  std::uint64_t negative_waits = 0;  ///< should stay 0 while ∥p∥ ≤ S holds
  double max_abs_delta = 0.0;        ///< largest |Δ| correction applied
};

class CpsNode : public sim::PulseNode {
 public:
  explicit CpsNode(const CpsConfig& config);

  void on_start(sim::Env& env) override;
  void on_message(sim::Env& env, const sim::Message& m) override;
  void on_timer(sim::Env& env, std::uint64_t tag) override;

  [[nodiscard]] const CpsNodeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Round current_round() const noexcept { return round_; }

  /// Per-round Δ corrections (diagnostics for tests/benches).
  [[nodiscard]] const std::vector<double>& deltas() const noexcept {
    return deltas_;
  }

  /// Raw per-dealer estimates (populated when config.record_estimates).
  [[nodiscard]] const std::vector<EstimateRecord>& estimates() const noexcept {
    return estimates_;
  }

 private:
  // Timer tag encoding: kind | round << 3 | dealer << 40.
  enum TagKind : std::uint64_t {
    kTagPulse = 1,
    kTagDealerSend = 2,
    kTagWindowClose = 3,
    kTagGuard = 4,
  };
  [[nodiscard]] static std::uint64_t encode_tag(TagKind kind, Round round,
                                                NodeId dealer = 0) noexcept {
    return static_cast<std::uint64_t>(kind) | (round << 3) |
           (static_cast<std::uint64_t>(dealer) << 40);
  }

  void do_pulse(sim::Env& env);
  void do_dealer_send(sim::Env& env);
  void handle_tcb_message(sim::Env& env, const sim::Message& m);
  void maybe_finish_round(sim::Env& env);

  [[nodiscard]] TcbInstance& instance(NodeId dealer);

  CpsConfig config_;
  std::uint32_t f_ = 0;
  Round round_ = 0;          // current pulse round (1-based)
  double pulse_local_ = 0.0; // L = H_v(p_v^r)
  bool collecting_ = false;
  // One slot per dealer; the self slot stays empty (Δ_{v,v} = 0).
  std::vector<std::optional<TcbInstance>> instances_;
  CpsNodeStats stats_;
  std::vector<double> deltas_;
  std::vector<EstimateRecord> estimates_;
};

}  // namespace crusader::core
