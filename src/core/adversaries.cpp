#include "core/adversaries.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace crusader::core {

namespace {

std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

}  // namespace

// --- EchoRushByzantine --------------------------------------------------------

void EchoRushByzantine::on_message(sim::AdversaryEnv& env,
                                   const sim::Message& m) {
  if (m.kind != sim::MsgKind::kTcbSig) return;
  if (!echoed_.insert(m.sig.key()).second) return;  // once per signature
  const double min_delay = env.model().d - env.model().u_tilde;
  for (NodeId to = 0; to < env.model().n; ++to) {
    if (to == env.id()) continue;
    env.send_with_delay(to, m, min_delay);
  }
}

// --- DeviantWrapper -----------------------------------------------------------

/// Proxy Env: forwards everything to the AdversaryEnv except own-dealer
/// broadcasts, which it holds back and re-sends with the configured
/// deviation. Wrapper-owned timers use bit 63 of the tag space.
class DeviantWrapper::Proxy final : public sim::Env {
 public:
  explicit Proxy(Deviation deviation) : deviation_(deviation) {}

  void bind(sim::AdversaryEnv* env) { env_ = env; }

  [[nodiscard]] NodeId id() const override { return env_->id(); }
  [[nodiscard]] const sim::ModelParams& model() const override {
    return env_->model();
  }
  [[nodiscard]] double local_now() const override { return env_->local_now(); }

  void send(NodeId to, sim::Message m) override {
    env_->send(to, std::move(m));
  }

  void broadcast(const sim::Message& m) override {
    const bool own_dealer_msg =
        m.kind == sim::MsgKind::kTcbSig || m.kind == sim::MsgKind::kLwPulse ||
        m.kind == sim::MsgKind::kStReady;
    if (own_dealer_msg && m.dealer == env_->id()) {
      if (deviation_.send_shift > 0.0) {
        defer(m, Phase::kFull, deviation_.send_shift);
      } else {
        deviant_send(m);
      }
      return;
    }
    env_->broadcast(m);
  }

  sim::TimerId schedule_at_local(double local_time, std::uint64_t tag) override {
    CS_CHECK_MSG((tag & kWrapperTagBit) == 0,
                 "inner node may not use the wrapper tag bit");
    return env_->schedule_at_local(local_time, tag);
  }

  void cancel_timer(sim::TimerId id) override { env_->cancel_timer(id); }
  void pulse() override { env_->pulse(); }

  [[nodiscard]] crypto::Signature sign(
      const crypto::SignedPayload& payload) override {
    return env_->sign(payload);
  }

  [[nodiscard]] bool verify(const crypto::Signature& sig,
                            const crypto::SignedPayload& payload) const override {
    return env_->verify(sig, payload);
  }

  /// Handles a wrapper timer; returns false if the tag belongs to the inner
  /// node.
  bool maybe_handle_timer(std::uint64_t tag) {
    if ((tag & kWrapperTagBit) == 0) return false;
    const std::size_t index = tag & ~kWrapperTagBit;
    CS_CHECK(index < pending_.size());
    const Pending& entry = pending_[index];
    if (entry.phase == Phase::kFull) {
      deviant_send(entry.m);
    } else {
      send_half(entry.m, /*upper=*/true, /*min_delay=*/false);
    }
    return true;
  }

  static constexpr std::uint64_t kWrapperTagBit = 1ULL << 63;

 private:
  enum class Phase { kFull, kHighHalf };
  struct Pending {
    sim::Message m;
    Phase phase;
  };

  void defer(const sim::Message& m, Phase phase, double shift) {
    pending_.push_back(Pending{m, phase});
    env_->schedule_at_local(env_->local_now() + shift,
                            kWrapperTagBit | (pending_.size() - 1));
  }

  void send_half(const sim::Message& m, bool upper, bool min_delay) {
    const auto& model = env_->model();
    const double delay =
        min_delay ? model.d - model.u_tilde : model.d;
    for (NodeId to = 0; to < model.n; ++to) {
      if (to == env_->id()) continue;
      const bool is_upper = to >= model.n / 2;
      if (is_upper != upper) continue;
      env_->send_with_delay(to, m, delay);
    }
  }

  void deviant_send(const sim::Message& m) {
    const auto& model = env_->model();
    const double lo = model.d - model.u_tilde;
    const double hi = model.d;
    switch (deviation_.mode) {
      case Deviation::DelayMode::kMinAll:
        for (NodeId to = 0; to < model.n; ++to)
          if (to != env_->id()) env_->send_with_delay(to, m, lo);
        break;
      case Deviation::DelayMode::kMaxAll:
        for (NodeId to = 0; to < model.n; ++to)
          if (to != env_->id()) env_->send_with_delay(to, m, hi);
        break;
      case Deviation::DelayMode::kSplit:
        send_half(m, /*upper=*/false, /*min_delay=*/true);
        if (deviation_.split_shift > 0.0) {
          defer(m, Phase::kHighHalf, deviation_.split_shift);
        } else {
          send_half(m, /*upper=*/true, /*min_delay=*/false);
        }
        break;
    }
  }

  Deviation deviation_;
  sim::AdversaryEnv* env_ = nullptr;
  std::vector<Pending> pending_;
};

DeviantWrapper::DeviantWrapper(std::unique_ptr<sim::PulseNode> inner,
                               Deviation deviation)
    : proxy_(std::make_unique<Proxy>(deviation)), inner_(std::move(inner)) {
  CS_CHECK(inner_ != nullptr);
}

DeviantWrapper::~DeviantWrapper() = default;

void DeviantWrapper::on_start(sim::AdversaryEnv& env) {
  proxy_->bind(&env);
  inner_->on_start(*proxy_);
}

void DeviantWrapper::on_message(sim::AdversaryEnv& env, const sim::Message& m) {
  proxy_->bind(&env);
  inner_->on_message(*proxy_, m);
}

void DeviantWrapper::on_timer(sim::AdversaryEnv& env, std::uint64_t tag) {
  proxy_->bind(&env);
  if (proxy_->maybe_handle_timer(tag)) return;
  inner_->on_timer(*proxy_, tag);
}

// --- ReplayByzantine ----------------------------------------------------------

void ReplayByzantine::on_message(sim::AdversaryEnv& env, const sim::Message& m) {
  if (m.kind != sim::MsgKind::kTcbSig) return;
  if (m.round > max_round_seen_) {
    max_round_seen_ = m.round;
    // A fresh round began: replay everything stashed from older rounds.
    for (const auto& old : stash_) {
      const double delay =
          rng_.uniform(env.model().d - env.model().u_tilde, env.model().d);
      for (NodeId to = 0; to < env.model().n; ++to) {
        if (to != env.id()) env.send_with_delay(to, old, delay);
      }
    }
    stash_.clear();
  }
  if (stash_.size() < 64) stash_.push_back(m);
}

// --- RandomByzantine ----------------------------------------------------------

void RandomByzantine::on_message(sim::AdversaryEnv& env, const sim::Message& m) {
  if (m.kind != sim::MsgKind::kTcbSig) return;
  const auto& model = env.model();
  const double lo = model.d - model.u_tilde;
  const double hi = model.d;

  // Replay the observed message to a random node, sometimes.
  if (rng_.chance(0.3)) {
    const NodeId to = static_cast<NodeId>(rng_.below(model.n));
    if (to != env.id())
      env.send_with_delay(to, m, rng_.uniform(lo, hi));
  }

  // Once per observed round: sign our own pulse payload and send it to a
  // random subset at random delays (a flaky dealer).
  if (signed_rounds_.insert(m.round).second) {
    sim::Message own;
    own.kind = sim::MsgKind::kTcbSig;
    own.round = m.round;
    own.dealer = env.id();
    own.sig = env.sign(crypto::make_pulse_payload(m.round));
    for (NodeId to = 0; to < model.n; ++to) {
      if (to == env.id() || !rng_.chance(0.7)) continue;
      env.send_with_delay(to, own, rng_.uniform(lo, hi));
    }
  }
}

// --- ObservationLog / GreedySkewByzantine ---------------------------------------

ObservationLog::ObservationLog(std::uint32_t n)
    : late_sum_(n, 0.0), late_count_(n, 0) {}

void ObservationLog::record(NodeId dealer, Round round, double now) {
  if (dealer >= late_sum_.size()) return;  // kInvalidNode / foreign traffic
  ++count_;
  digest_ = util::mix64(digest_ ^ (static_cast<std::uint64_t>(dealer) << 40) ^
                        static_cast<std::uint64_t>(round));
  digest_ = util::mix64(digest_ ^ double_bits(now));
  // Lateness is measured against the FIRST copy of the round the observer
  // saw, so the estimator needs no clock model — only arrival order.
  const auto it = round_first_.try_emplace(round, now).first;
  const double lateness = now - it->second;
  late_sum_[dealer] += lateness;
  ++late_count_[dealer];
  late_total_ += lateness;
  ++late_total_count_;
}

bool ObservationLog::lagging(NodeId v) const {
  if (v >= late_count_.size() || late_count_[v] == 0) return true;
  if (late_total_count_ == 0) return true;
  const double mean = late_total_ / static_cast<double>(late_total_count_);
  return late_sum_[v] / static_cast<double>(late_count_[v]) >= mean;
}

void GreedySkewByzantine::on_start(sim::AdversaryEnv& env) {
  log_ = std::make_unique<ObservationLog>(env.model().n);
}

void GreedySkewByzantine::on_message(sim::AdversaryEnv& env,
                                     const sim::Message& m) {
  const bool pulse_like = m.kind == sim::MsgKind::kTcbSig ||
                          m.kind == sim::MsgKind::kLwPulse ||
                          m.kind == sim::MsgKind::kStReady;
  if (!pulse_like) return;
  CS_CHECK(log_ != nullptr);
  log_->record(m.dealer, m.round, env.real_now());

  // Once per observed round: broadcast our own pulse-like message of the
  // same kind, two-faced — earliest legal appearance to the nodes the log
  // says lead, latest to the ones it says lag.
  if (!sent_.insert(m.round).second) return;
  const auto& model = env.model();
  const double lo = model.d - model.u_tilde;
  const double hi = model.d;
  sim::Message own;
  own.kind = m.kind;
  own.round = m.round;
  own.dealer = env.id();
  if (m.kind == sim::MsgKind::kTcbSig)
    own.sig = env.sign(crypto::make_pulse_payload(m.round));
  else if (m.kind == sim::MsgKind::kStReady)
    own.sig = env.sign(crypto::make_ready_payload(m.round));
  for (NodeId to = 0; to < model.n; ++to) {
    if (to == env.id()) continue;
    env.send_with_delay(to, own, log_->lagging(to) ? hi : lo);
  }
}

// --- StAcceleratorByzantine -----------------------------------------------------

void StAcceleratorByzantine::on_message(sim::AdversaryEnv& env,
                                        const sim::Message& m) {
  if (m.kind != sim::MsgKind::kStReady && m.kind != sim::MsgKind::kStCert)
    return;
  if (target_ == env.id() || target_ >= env.model().n) return;
  const double min_delay = env.model().d - env.model().u_tilde;
  // Pre-supply our ready signature for this round and the next one, so the
  // target's certificate completes the moment its own timer fires.
  for (Round round : {m.round, m.round + 1}) {
    if (!sent_.insert(round).second) continue;
    sim::Message ready;
    ready.kind = sim::MsgKind::kStReady;
    ready.round = round;
    ready.dealer = env.id();
    ready.sig = env.sign(crypto::make_ready_payload(round));
    env.send_with_delay(target_, ready, min_delay);
  }
}

sim::ByzantineFactory make_st_accelerator_factory(NodeId target) {
  return [target](NodeId) {
    return std::make_unique<StAcceleratorByzantine>(target);
  };
}

// --- Strategy registry ----------------------------------------------------------

const char* to_string(ByzStrategy strategy) {
  switch (strategy) {
    case ByzStrategy::kCrash: return "crash";
    case ByzStrategy::kEchoRush: return "echo-rush";
    case ByzStrategy::kSplit: return "split";
    case ByzStrategy::kPullEarly: return "pull-early";
    case ByzStrategy::kPullLate: return "pull-late";
    case ByzStrategy::kReplay: return "replay";
    case ByzStrategy::kRandom: return "random";
    case ByzStrategy::kGreedySkew: return "greedy-skew";
  }
  return "?";
}

const std::vector<ByzStrategy>& all_byz_strategies() {
  static const std::vector<ByzStrategy> kAll = {
      ByzStrategy::kCrash,     ByzStrategy::kEchoRush, ByzStrategy::kSplit,
      ByzStrategy::kPullEarly, ByzStrategy::kPullLate, ByzStrategy::kReplay,
      ByzStrategy::kRandom,    ByzStrategy::kGreedySkew,
  };
  return kAll;
}

sim::ByzantineFactory make_byzantine_factory(ByzStrategy strategy,
                                             sim::HonestFactory inner_factory,
                                             std::uint64_t seed,
                                             double late_shift,
                                             double split_shift) {
  switch (strategy) {
    case ByzStrategy::kCrash:
      return [](NodeId) { return std::make_unique<CrashByzantine>(); };
    case ByzStrategy::kEchoRush:
      return [](NodeId) { return std::make_unique<EchoRushByzantine>(); };
    case ByzStrategy::kSplit:
      return [inner_factory,
              split_shift](NodeId v) -> std::unique_ptr<sim::ByzantineNode> {
        Deviation dev;
        dev.mode = Deviation::DelayMode::kSplit;
        dev.split_shift = split_shift;
        return std::make_unique<DeviantWrapper>(inner_factory(v), dev);
      };
    case ByzStrategy::kPullEarly:
      return [inner_factory](NodeId v) -> std::unique_ptr<sim::ByzantineNode> {
        Deviation dev;
        dev.mode = Deviation::DelayMode::kMinAll;
        return std::make_unique<DeviantWrapper>(inner_factory(v), dev);
      };
    case ByzStrategy::kPullLate:
      return [inner_factory,
              late_shift](NodeId v) -> std::unique_ptr<sim::ByzantineNode> {
        Deviation dev;
        dev.mode = Deviation::DelayMode::kMaxAll;
        dev.send_shift = late_shift;
        return std::make_unique<DeviantWrapper>(inner_factory(v), dev);
      };
    case ByzStrategy::kReplay:
      return [seed](NodeId v) {
        return std::make_unique<ReplayByzantine>(seed ^ (0x9e37ULL * v));
      };
    case ByzStrategy::kRandom:
      return [seed](NodeId v) {
        return std::make_unique<RandomByzantine>(seed ^ (0x85ebULL * v));
      };
    case ByzStrategy::kGreedySkew:
      return [](NodeId) { return std::make_unique<GreedySkewByzantine>(); };
  }
  CS_CHECK_MSG(false, "unknown strategy");
  return nullptr;
}

}  // namespace crusader::core
