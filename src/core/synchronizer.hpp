#pragma once
// Round synchronizer on top of pulse synchronization — the first application
// scenario in the paper's introduction: logical clocks / pulses of bounded
// skew readily implement a synchronizer [3], simulating lock-step rounds on
// the asynchronous-with-bounded-delay network.
//
// Correctness relies on P_min ≥ d + S (which the Theorem-17 constants imply
// whenever d ≥ 2u): a message sent at the sender's pulse r arrives before
// every receiver's pulse r+1, so delivering the buffered round-r messages at
// pulse r+1 yields exact synchronous-round semantics.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/node.hpp"

namespace crusader::core {

/// One application-level message within a simulated round.
struct AppMessage {
  NodeId peer = kInvalidNode;  ///< recipient on send, sender on receive
  double value = 0.0;
};

/// Application callback: given the simulated round number (1-based) and the
/// messages received for the previous round, return the messages to send in
/// this round.
using RoundFn = std::function<std::vector<AppMessage>(
    Round round, const std::vector<AppMessage>& inbox)>;

struct SynchronizerStats {
  Round rounds_started = 0;
  std::uint64_t app_messages_received = 0;
  /// Round-r messages that arrived at or after the receiver's pulse r+1 —
  /// the synchronizer guarantee is violated if this is ever nonzero.
  std::uint64_t late_messages = 0;
};

/// Wraps any pulse protocol node; each pulse starts a simulated round.
class SynchronizerNode final : public sim::PulseNode {
 public:
  SynchronizerNode(std::unique_ptr<sim::PulseNode> pulse_protocol, RoundFn fn);
  ~SynchronizerNode() override;

  void on_start(sim::Env& env) override;
  void on_message(sim::Env& env, const sim::Message& m) override;
  void on_timer(sim::Env& env, std::uint64_t tag) override;

  [[nodiscard]] const SynchronizerStats& stats() const noexcept {
    return stats_;
  }

 private:
  class Proxy;
  SynchronizerStats stats_;  // must precede proxy_ (Proxy stores a pointer)
  std::unique_ptr<Proxy> proxy_;
  std::unique_ptr<sim::PulseNode> inner_;
};

}  // namespace crusader::core
