#include "core/synchronizer.hpp"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::core {

/// Proxy Env: passes everything through, but observes pulse() to drive the
/// round structure. Application traffic rides on MsgKind::kRaw with the
/// round number in `round`.
class SynchronizerNode::Proxy final : public sim::Env {
 public:
  Proxy(RoundFn fn, SynchronizerStats* stats)
      : fn_(std::move(fn)), stats_(stats) {}

  void bind(sim::Env* env) { env_ = env; }

  [[nodiscard]] NodeId id() const override { return env_->id(); }
  [[nodiscard]] const sim::ModelParams& model() const override {
    return env_->model();
  }
  [[nodiscard]] double local_now() const override { return env_->local_now(); }
  void send(NodeId to, sim::Message m) override { env_->send(to, std::move(m)); }
  void broadcast(const sim::Message& m) override { env_->broadcast(m); }
  sim::TimerId schedule_at_local(double local_time, std::uint64_t tag) override {
    return env_->schedule_at_local(local_time, tag);
  }
  void cancel_timer(sim::TimerId id) override { env_->cancel_timer(id); }

  [[nodiscard]] crypto::Signature sign(
      const crypto::SignedPayload& payload) override {
    return env_->sign(payload);
  }
  [[nodiscard]] bool verify(const crypto::Signature& sig,
                            const crypto::SignedPayload& payload) const override {
    return env_->verify(sig, payload);
  }

  void pulse() override {
    env_->pulse();
    ++round_;
    ++stats_->rounds_started;

    // Deliver the previous round's inbox to the application and send its
    // round-`round_` messages.
    std::vector<AppMessage> inbox = std::move(prev_inbox_);
    prev_inbox_.clear();
    std::swap(prev_inbox_, cur_inbox_);

    const std::vector<AppMessage> outbox = fn_(round_, inbox);
    for (const AppMessage& app : outbox) {
      sim::Message m;
      m.kind = sim::MsgKind::kRaw;
      m.round = round_;
      m.value = app.value;
      if (app.peer == kInvalidNode) {
        env_->broadcast(m);
      } else {
        env_->send(app.peer, m);
      }
    }
  }

  /// Returns true when the message was application traffic (consumed here).
  bool maybe_consume(const sim::Message& m) {
    if (m.kind != sim::MsgKind::kRaw) return false;
    ++stats_->app_messages_received;
    if (m.round == round_) {
      // Round-r message received during our round r: delivered to the app at
      // the next pulse. This is the guaranteed case.
      cur_inbox_.push_back(AppMessage{m.sender, m.value});
    } else if (m.round + 1 == round_) {
      // Arrived after our pulse r+1: the synchronizer guarantee failed.
      ++stats_->late_messages;
    } else {
      ++stats_->late_messages;
    }
    return true;
  }

 private:
  RoundFn fn_;
  SynchronizerStats* stats_;
  sim::Env* env_ = nullptr;
  Round round_ = 0;
  std::vector<AppMessage> cur_inbox_;   // round == round_
  std::vector<AppMessage> prev_inbox_;  // delivered at the next pulse
};

SynchronizerNode::SynchronizerNode(std::unique_ptr<sim::PulseNode> inner,
                                   RoundFn fn)
    : proxy_(std::make_unique<Proxy>(std::move(fn), &stats_)),
      inner_(std::move(inner)) {
  CS_CHECK(inner_ != nullptr);
}

SynchronizerNode::~SynchronizerNode() = default;

void SynchronizerNode::on_start(sim::Env& env) {
  proxy_->bind(&env);
  inner_->on_start(*proxy_);
}

void SynchronizerNode::on_message(sim::Env& env, const sim::Message& m) {
  proxy_->bind(&env);
  if (proxy_->maybe_consume(m)) return;
  inner_->on_message(*proxy_, m);
}

void SynchronizerNode::on_timer(sim::Env& env, std::uint64_t tag) {
  proxy_->bind(&env);
  inner_->on_timer(*proxy_, tag);
}

}  // namespace crusader::core
