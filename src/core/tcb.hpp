#pragma once
// Timed Crusader Broadcast — Figure 2 of the paper — as a pure local-time
// state machine. One instance per (pulse round r, dealer y) at each node.
//
// From the view of a non-dealer node v with pulse local time L = H_v(p_v^r):
//   * accept the FIRST validly-signed ⟨r⟩_y received directly from y at a
//     local time h ∈ (L, L + W) where W = ϑ(d + (ϑ+1)S); forward it;
//   * output ⊥ if a valid ⟨r⟩_y arrives from any x ≠ y at a local time
//     h' ∈ (L, h + d − 2u);
//   * otherwise terminate with output h at local time h + d − 2u.
//
// The instance is driven by its owner (CpsNode, or tests), which supplies
// events with local timestamps and schedules the two timers (window close,
// echo guard). This keeps the logic runnable under both the real-time engine
// and the lower-bound co-simulator.

#include <optional>

#include "util/ids.hpp"

namespace crusader::core {

class TcbInstance {
 public:
  enum class State { kWaiting, kAccepted, kDone };

  struct Config {
    double pulse_local = 0.0;    ///< L = H_v(p_v^r)
    double accept_window = 0.0;  ///< W = ϑ(d + (ϑ+1)S)
    double echo_guard = 0.0;     ///< d − 2u
    /// Ablation switch (E12): when false, third-party copies are ignored —
    /// i.e. plain timed broadcast instead of *crusader* broadcast. Breaks
    /// Lemma 13 against equivocating dealers; exists to measure exactly how
    /// much the echo rule buys.
    bool guard_enabled = true;
  };

  TcbInstance(NodeId dealer, const Config& config);

  /// Valid ⟨r⟩_y received directly from the dealer at local time h.
  /// Returns true when this message is accepted — the caller must forward
  /// (echo) it to all nodes at this local time (Figure 2).
  bool on_direct(double h);

  /// Valid ⟨r⟩_y received from some x ≠ y at local time h.
  void on_third_party(double h);

  /// Timer: the acceptance window closed (local time L + W).
  void on_window_close();

  /// Timer: the echo guard elapsed for the accepted message
  /// (local time h + d − 2u).
  void on_guard_elapsed();

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool done() const noexcept { return state_ == State::kDone; }

  /// Defined once done(): the accept local time h, or nullopt for ⊥.
  [[nodiscard]] std::optional<double> output() const;

  /// Defined in kAccepted and after: the accept local time h.
  [[nodiscard]] double accept_time() const;

  /// Local time at which the guard timer must fire (valid in kAccepted).
  [[nodiscard]] double guard_deadline() const;

  [[nodiscard]] NodeId dealer() const noexcept { return dealer_; }

 private:
  void finish(std::optional<double> output);

  NodeId dealer_;
  Config config_;
  State state_ = State::kWaiting;
  bool poisoned_ = false;  // a third-party copy arrived inside (L, …)
  double accept_time_ = 0.0;
  std::optional<double> output_;
};

}  // namespace crusader::core
