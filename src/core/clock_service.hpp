#pragma once
// Online logical clock service: the deployable counterpart of
// LogicalClockView (which is an offline trace analyzer).
//
// Wraps any pulse protocol and maintains, *during the run*, a logical clock
// the application can read at any moment:
//
//   L(h) = Λ·(i−1) + Λ·min(1, (h − h_i)/T_nom)          between pulses i, i+1
//
// where h is the current hardware-clock reading, h_i the local time of the
// latest pulse, and T_nom a nominal period in (0, P_min·something]. Reading
// only uses information the node actually has (its own pulses and hardware
// clock) — no future knowledge, unlike the offline view.
//
// Guarantees (with pulse skew S and periods in [P_min, P_max], and
// T_nom ≤ P_min, so the clamp never engages before the next pulse under
// rate-1 clocks; with drift it may briefly plateau at the tick boundary):
//   * monotone non-decreasing;
//   * L(p_i local) = Λ·(i−1) exactly;
//   * cross-node skew ≤ Λ·(1 + (S + (P_max − T_nom))/T_nom) — coarser than
//     the offline interpolation, the price of being online.

#include <cstdint>
#include <memory>

#include "sim/env.hpp"
#include "sim/node.hpp"

namespace crusader::core {

class ClockService final : public sim::PulseNode {
 public:
  /// `tick` is Λ; `nominal_period` is T_nom (local-time units).
  ClockService(std::unique_ptr<sim::PulseNode> pulse_protocol, double tick,
               double nominal_period);
  ~ClockService() override;

  void on_start(sim::Env& env) override;
  void on_message(sim::Env& env, const sim::Message& m) override;
  void on_timer(sim::Env& env, std::uint64_t tag) override;

  /// Current logical reading. Valid after the first pulse; 0 before.
  [[nodiscard]] double read() const;

  /// Number of pulses observed so far.
  [[nodiscard]] Round pulses_seen() const noexcept { return pulses_; }

 private:
  class Proxy;
  std::unique_ptr<Proxy> proxy_;
  std::unique_ptr<sim::PulseNode> inner_;
  double tick_;
  double nominal_period_;
  Round pulses_ = 0;
  double last_pulse_local_ = 0.0;
};

}  // namespace crusader::core
