#include "core/logical_clock.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace crusader::core {

LogicalClockView::LogicalClockView(const sim::PulseTrace& trace, NodeId v,
                                   double tick)
    : pulses_(trace.pulses(v)), tick_(tick) {
  CS_CHECK_MSG(pulses_.size() >= 2, "need at least two pulses to interpolate");
  CS_CHECK(tick_ > 0.0);
}

double LogicalClockView::domain_begin() const {
  return pulses_.front().real_time;
}

double LogicalClockView::domain_end() const { return pulses_.back().real_time; }

double LogicalClockView::at(double t) const {
  if (t <= domain_begin()) return 0.0;
  if (t >= domain_end())
    return tick_ * static_cast<double>(pulses_.size() - 1);

  // Find the pulse interval containing t.
  const auto it = std::upper_bound(
      pulses_.begin(), pulses_.end(), t,
      [](double value, const sim::PulseEvent& p) { return value < p.real_time; });
  const auto hi = static_cast<std::size_t>(it - pulses_.begin());
  const std::size_t lo = hi - 1;

  // Interpolate in LOCAL time between the two pulses: this is what the node
  // itself can compute (it reads H_v, not real time). Between pulses the
  // hardware clock is only sampled at the endpoints here; for piecewise-
  // constant-rate segments within an interval this is exact up to the rate
  // variation already accounted for in the skew bound.
  const double h_lo = pulses_[lo].local_time;
  const double h_hi = pulses_[hi].local_time;
  const double t_lo = pulses_[lo].real_time;
  const double t_hi = pulses_[hi].real_time;
  // Local reading at t via linear proxy of the segment (exact for constant
  // rate within the interval).
  const double h = h_lo + (h_hi - h_lo) * (t - t_lo) / (t_hi - t_lo);
  const double frac = (h - h_lo) / (h_hi - h_lo);
  return tick_ * (static_cast<double>(lo) + frac);
}

double max_logical_skew(const sim::PulseTrace& trace, double tick,
                        std::size_t steps) {
  CS_CHECK(steps >= 2);
  const auto honest = trace.honest();
  CS_CHECK(honest.size() >= 2);

  std::vector<LogicalClockView> views;
  views.reserve(honest.size());
  double begin = 0.0;
  double end = 1e300;
  for (NodeId v : honest) {
    views.emplace_back(trace, v, tick);
    begin = std::max(begin, views.back().domain_begin());
    end = std::min(end, views.back().domain_end());
  }
  CS_CHECK_MSG(begin < end, "no common domain across honest nodes");

  double worst = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double t =
        begin + (end - begin) * static_cast<double>(i) /
                    static_cast<double>(steps - 1);
    double lo = 1e300;
    double hi = -1e300;
    for (const auto& view : views) {
      const double reading = view.at(t);
      lo = std::min(lo, reading);
      hi = std::max(hi, reading);
    }
    worst = std::max(worst, hi - lo);
  }
  return worst;
}

}  // namespace crusader::core
