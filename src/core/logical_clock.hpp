#pragma once
// Logical clocks of bounded skew and rate from pulses, by interpolation —
// the construction sketched in the paper's introduction (and [14, Ch. 9,
// §3.3.4]): use the pulse number as the target clock value and interpolate
// between consecutive pulses with the hardware clock.
//
// L_v is piecewise linear with L_v(p_{v,i}) = i·Λ (Λ = `tick`), linear in
// LOCAL time between consecutive pulses — exactly what a node can compute
// online with a one-pulse lag. With pulse skew ≤ S and period ∈
// [P_min, P_max], concurrent logical readings differ by at most
// Λ·(S/P_min + (P_max−P_min)/P_min) and rates stay within
// [Λ/(ϑ·P_max), Λ·ϑ/P_min].

#include <cstddef>
#include <vector>

#include "sim/hardware_clock.hpp"
#include "sim/trace.hpp"

namespace crusader::core {

class LogicalClockView {
 public:
  /// Build the logical clock of node `v` from its recorded pulses.
  /// `tick` is Λ, the logical duration of one pulse interval.
  LogicalClockView(const sim::PulseTrace& trace, NodeId v, double tick);

  /// Logical reading at real time t. Defined on
  /// [first pulse, last pulse] of the node; clamps outside.
  [[nodiscard]] double at(double t) const;

  /// Domain on which the clock is exactly defined.
  [[nodiscard]] double domain_begin() const;
  [[nodiscard]] double domain_end() const;

  [[nodiscard]] double tick() const noexcept { return tick_; }

 private:
  std::vector<sim::PulseEvent> pulses_;
  double tick_;
};

/// Maximum pairwise logical-clock skew over honest nodes, sampled at `steps`
/// points across the overlap of all domains. The E-series benches and the
/// timestamping example report this.
[[nodiscard]] double max_logical_skew(const sim::PulseTrace& trace, double tick,
                                      std::size_t steps);

}  // namespace crusader::core
