#pragma once
// Derived protocol constants for Crusader Pulse Synchronization.
//
// The paper's closed forms (Theorem 17, Corollary 4) are re-derived here from
// the unambiguous proof steps, because the arXiv rendering of the constant
// expressions is OCR-mangled (see DESIGN.md §2). The chain is:
//
//   Lemma 12 (validity error, honest dealer):
//       δ ≥ δ_valid(S) = u + (ϑ−1)d + (ϑ²+ϑ−2)·S
//   Lemma 13 (consistency error, arbitrary dealer):
//       δ ≥ δ_cons(S)  = (ϑ−1)(ϑd + (ϑ²+ϑ)S) + (1−1/ϑ)d + 2u/ϑ
//   Corollary 15 (every TCB instance finishes before the next pulse):
//       T ≥ (ϑ²+ϑ+1)·S + (ϑ+1)d − 2u
//   Lemma 16 (the skew recursion closes):
//       S·(2−ϑ) ≥ 2(2ϑ−1)·δ(S) + 2(ϑ−1)·T
//
// With δ(S) = max(δ_valid, δ_cons) and T at its minimum, the recursion is
// linear in S; the solver returns the minimal feasible S (and the matching
// T), or reports infeasibility — which happens above a threshold ϑ_max
// (our analogue of Corollary 4's ϑ ≤ 1.11).

#include "sim/model.hpp"

namespace crusader::core {

struct CpsParams {
  bool feasible = false;
  double S = 0.0;      ///< skew bound (also the initial-offset bound)
  double T = 0.0;      ///< nominal round length
  double delta = 0.0;  ///< estimate error bound δ(S)
  double p_min = 0.0;  ///< Theorem 17: (T − (ϑ+1)S)/ϑ
  double p_max = 0.0;  ///< Theorem 17: T + 3S

  // Figure-2 window constants (local-time units).
  double accept_window = 0.0;  ///< ϑ(d + (ϑ+1)S)
  double echo_guard = 0.0;     ///< d − 2u
  double dealer_offset = 0.0;  ///< ϑ·S
};

class ParamSolver {
 public:
  explicit ParamSolver(sim::ModelParams model);

  /// Lemma 12 error bound as a function of S.
  [[nodiscard]] double delta_valid(double S) const noexcept;
  /// Lemma 13 error bound as a function of S.
  [[nodiscard]] double delta_cons(double S) const noexcept;
  [[nodiscard]] double delta(double S) const noexcept;
  /// Corollary 15 minimum round length for a given S.
  [[nodiscard]] double min_T(double S) const noexcept;

  /// Minimal feasible (S, T); `slack >= 1` scales S up (T recomputed), which
  /// benches use to show the bound is not tight-to-breaking.
  [[nodiscard]] CpsParams solve(double slack = 1.0) const;

  /// Largest vartheta (within 1e-9) for which the system stays feasible at
  /// the given d, u — the empirical Corollary 4 threshold.
  [[nodiscard]] static double max_vartheta(double d, double u);

  [[nodiscard]] const sim::ModelParams& model() const noexcept { return model_; }

 private:
  sim::ModelParams model_;
};

/// One-call helper used throughout tests/benches.
[[nodiscard]] CpsParams derive_cps_params(const sim::ModelParams& model,
                                          double slack = 1.0);

/// Lynch–Welch baseline constants: same recursion but the consistency error
/// of a faulty dealer is unbounded (no echo), so the derivation keeps only
/// δ_valid; resilience must satisfy n > 3f for convergence [25].
struct LwParams {
  bool feasible = false;
  double S = 0.0;
  double T = 0.0;
  double delta = 0.0;
  double accept_window = 0.0;
  double dealer_offset = 0.0;
};

[[nodiscard]] LwParams derive_lw_params(const sim::ModelParams& model,
                                        double slack = 1.0);

/// Srikanth–Toueg-style authenticated pulser constants: skew ≈ d by design;
/// the round spacing just has to outrun one full propagation.
struct StParams {
  double T = 0.0;       ///< local-time spacing between ready timers
  double skew = 0.0;    ///< d (up to drift over the propagation interval)
  double first_at = 0.0;///< local time of the first ready timer
};

[[nodiscard]] StParams derive_st_params(const sim::ModelParams& model);

}  // namespace crusader::core
