#pragma once
// Byzantine node strategies for the timed (event-driven) protocols.
//
// All strategies are model-legal: they sign only with their own keys, replay
// honest signatures only after receiving them, and request delays within
// [d − ũ, d] — the network throws ModelViolation otherwise, and tests assert
// that no strategy trips it (except where a bench intentionally configures
// ũ > u to demonstrate the Theorem-5 phenomenon).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cps.hpp"
#include "sim/node.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace crusader::core {

/// Silent from the start. Every honest TCB instance with this dealer times
/// out (⊥); the discard rule absorbs it.
class CrashByzantine final : public sim::ByzantineNode {
 public:
  void on_start(sim::AdversaryEnv&) override {}
  void on_message(sim::AdversaryEnv&, const sim::Message&) override {}
  void on_timer(sim::AdversaryEnv&, std::uint64_t) override {}
};

/// Re-broadcasts every honest TCB signature it receives, as early as the
/// model allows (delay d − ũ). With ũ = u this is provably harmless
/// (Lemma 10's guard absorbs it); with ũ > 2u it can force honest broadcasts
/// to be rejected — the attack motivating the paper's lower bound.
class EchoRushByzantine final : public sim::ByzantineNode {
 public:
  void on_start(sim::AdversaryEnv&) override {}
  void on_message(sim::AdversaryEnv& env, const sim::Message& m) override;
  void on_timer(sim::AdversaryEnv&, std::uint64_t) override {}

 private:
  std::unordered_set<std::uint64_t> echoed_;  // signature keys already rushed
};

/// Deviation applied by DeviantWrapper to the wrapped node's own broadcast.
struct Deviation {
  /// Added (local time) before the node's own-dealer broadcast goes out.
  double send_shift = 0.0;
  enum class DelayMode {
    kMinAll,   // earliest legal appearance everywhere (early pull)
    kMaxAll,   // latest legal appearance everywhere (late pull)
    kSplit,    // min to ids < n/2, max to the rest (tears estimates apart)
  };
  DelayMode mode = DelayMode::kSplit;
  /// kSplit only: additionally delays the SEND toward the upper half by this
  /// many local-time units. Without signatures (Lynch–Welch) nothing detects
  /// this two-faced timing, so estimates tear apart by ≈ split_shift; with
  /// CPS the echo guard of Figure 2 forces ⊥ instead (Lemma 11) — this is
  /// the E7 crossover attack.
  double split_shift = 0.0;
};

/// Runs any honest PulseNode behind a proxy Env, intercepting only the
/// node's own-dealer broadcasts (messages with dealer == self) and re-sending
/// them with the configured deviation. Everything else — timers, receipts,
/// echoes of other dealers — follows the honest protocol, which makes this
/// the strongest "stealthy" strategy: it never produces malformed traffic.
class DeviantWrapper final : public sim::ByzantineNode {
 public:
  DeviantWrapper(std::unique_ptr<sim::PulseNode> inner, Deviation deviation);
  ~DeviantWrapper() override;

  void on_start(sim::AdversaryEnv& env) override;
  void on_message(sim::AdversaryEnv& env, const sim::Message& m) override;
  void on_timer(sim::AdversaryEnv& env, std::uint64_t tag) override;

 private:
  class Proxy;
  std::unique_ptr<Proxy> proxy_;
  std::unique_ptr<sim::PulseNode> inner_;
};

/// Replays signatures from earlier rounds whenever it observes a new round —
/// exercising the round-tag filtering that Figure 2's caption calls out.
class ReplayByzantine final : public sim::ByzantineNode {
 public:
  explicit ReplayByzantine(std::uint64_t seed) : rng_(seed) {}
  void on_start(sim::AdversaryEnv&) override {}
  void on_message(sim::AdversaryEnv& env, const sim::Message& m) override;
  void on_timer(sim::AdversaryEnv&, std::uint64_t) override {}

 private:
  util::Rng rng_;
  Round max_round_seen_ = 0;
  std::vector<sim::Message> stash_;
};

/// Random mixture: occasionally signs its own (current-round) pulse payload
/// and sends it to random subsets at random legal delays; occasionally
/// replays observed traffic.
class RandomByzantine final : public sim::ByzantineNode {
 public:
  explicit RandomByzantine(std::uint64_t seed) : rng_(seed) {}
  void on_start(sim::AdversaryEnv&) override {}
  void on_message(sim::AdversaryEnv& env, const sim::Message& m) override;
  void on_timer(sim::AdversaryEnv&, std::uint64_t) override {}

 private:
  util::Rng rng_;
  std::unordered_set<std::uint64_t> signed_rounds_;
};

/// Deterministic record of the traffic a Byzantine node overhears: per-dealer
/// arrival lateness relative to the first copy of each round, plus a
/// count/digest pair so tests can assert bit-exact replay of the observation
/// stream. This is the complete-world twin of relay::RelayAdversary's
/// observation interface — same lateness estimator, same digest chaining.
class ObservationLog {
 public:
  explicit ObservationLog(std::uint32_t n);

  /// Records one overheard broadcast of `dealer` for `round` arriving at real
  /// time `now` (Byzantine nodes may read real time; honest nodes cannot).
  void record(NodeId dealer, Round round, double now);

  /// True when `v`'s broadcasts arrive late (average lateness at or above the
  /// global mean) — the node the adversary estimates to be behind. Unobserved
  /// nodes count as lagging: with no evidence they lead, pushing them later
  /// is the safe greedy move.
  [[nodiscard]] bool lagging(NodeId v) const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

 private:
  std::unordered_map<Round, double> round_first_;  // round → first arrival
  std::vector<double> late_sum_;
  std::vector<std::size_t> late_count_;
  double late_total_ = 0.0;
  std::size_t late_total_count_ = 0;
  std::size_t count_ = 0;
  std::uint64_t digest_ = 0;
};

/// Adaptive traffic-observing strategy: watches every pulse-like broadcast it
/// receives, estimates which honest nodes lead or lag from arrival lateness,
/// and two-faces its own once-per-round broadcast — earliest legal delay
/// (d − ũ) toward the leaders, full d toward the laggards. The observation-
/// driven analogue of kSplit, choosing the split from traffic instead of node
/// ids. Model-legal, so Theorem 17's bound must absorb it; tests assert it
/// does.
class GreedySkewByzantine final : public sim::ByzantineNode {
 public:
  void on_start(sim::AdversaryEnv& env) override;
  void on_message(sim::AdversaryEnv& env, const sim::Message& m) override;
  void on_timer(sim::AdversaryEnv&, std::uint64_t) override {}

  /// The deterministic observation record (null before on_start).
  [[nodiscard]] const ObservationLog* log() const noexcept {
    return log_.get();
  }

 private:
  std::unique_ptr<ObservationLog> log_;
  std::unordered_set<Round> sent_;
};

/// Srikanth–Toueg-specific attack that realizes the baseline's Θ(d) skew:
/// all faulty nodes pre-sign ⟨ready r⟩ for the rounds they observe and feed
/// the signatures (at minimum delay) to one fixed target node. The target
/// then completes its f+1 certificate the instant its own ready timer fires
/// and pulses a full message delay d before everyone else (who learn of the
/// round only via the relayed certificate). This is why ST's skew cannot
/// beat d — and why the paper's O(u + (ϑ−1)d) is a real improvement.
class StAcceleratorByzantine final : public sim::ByzantineNode {
 public:
  explicit StAcceleratorByzantine(NodeId target) : target_(target) {}
  void on_start(sim::AdversaryEnv&) override {}
  void on_message(sim::AdversaryEnv& env, const sim::Message& m) override;
  void on_timer(sim::AdversaryEnv&, std::uint64_t) override {}

 private:
  NodeId target_;
  std::unordered_set<Round> sent_;
};

/// Factory for the ST accelerator; all faulty nodes collude on `target`.
[[nodiscard]] sim::ByzantineFactory make_st_accelerator_factory(NodeId target);

/// Named strategies for parameterized tests and benches.
enum class ByzStrategy {
  kCrash,
  kEchoRush,
  kSplit,      // DeviantWrapper, split delays
  kPullEarly,  // DeviantWrapper, min delays
  kPullLate,   // DeviantWrapper, max delays + send shift
  kReplay,
  kRandom,
  kGreedySkew,  // ObservationLog-driven two-faced timing (appended last so
                // pre-existing enum values — and every spec key folding them
                // — keep their exact numeric identity)
};

[[nodiscard]] const char* to_string(ByzStrategy strategy);

/// All strategies, for sweep-style tests/benches.
[[nodiscard]] const std::vector<ByzStrategy>& all_byz_strategies();

/// Builds a ByzantineFactory for the given strategy. `inner_factory` supplies
/// the honest node the Deviant strategies wrap (CPS in most benches; the
/// baselines reuse this with their own nodes). `late_shift` tunes kPullLate;
/// `split_shift` tunes kSplit's two-faced send timing.
[[nodiscard]] sim::ByzantineFactory make_byzantine_factory(
    ByzStrategy strategy, sim::HonestFactory inner_factory,
    std::uint64_t seed, double late_shift = 0.0, double split_shift = 0.0);

}  // namespace crusader::core
