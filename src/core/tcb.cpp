#include "core/tcb.hpp"

#include <optional>

#include "sim/time.hpp"
#include "util/check.hpp"

namespace crusader::core {

TcbInstance::TcbInstance(NodeId dealer, const Config& config)
    : dealer_(dealer), config_(config) {
  CS_CHECK_MSG(config_.accept_window > 0.0, "acceptance window must be positive");
  CS_CHECK_MSG(config_.echo_guard > 0.0, "echo guard d-2u must be positive");
}

void TcbInstance::finish(std::optional<double> output) {
  state_ = State::kDone;
  output_ = output;
}

bool TcbInstance::on_direct(double h) {
  if (state_ != State::kWaiting) return false;
  // Figure 2: h must lie in the window (L, L + W); both ends carry the
  // boundary slack because extremal worlds achieve them exactly.
  if (h <= config_.pulse_local - sim::kTimeEps ||
      h >= config_.pulse_local + config_.accept_window + sim::kBoundarySlack) {
    return false;
  }
  accept_time_ = h;
  state_ = State::kAccepted;
  // A third-party copy observed earlier (inside (L, h)) is necessarily inside
  // (L, h + d − 2u) as well: the instance is doomed to ⊥, but the message is
  // still forwarded first (Figure 2 forwards unconditionally on acceptance).
  if (poisoned_) finish(std::nullopt);
  return true;
}

void TcbInstance::on_third_party(double h) {
  if (!config_.guard_enabled) return;  // ablation: no crusader rejection
  if (state_ == State::kDone) return;
  // Only copies inside the open interval starting at L count.
  if (!sim::lt_eps(config_.pulse_local, h)) return;
  if (state_ == State::kWaiting) {
    poisoned_ = true;
    return;
  }
  // kAccepted: reject if the copy arrived before the guard elapsed.
  if (sim::lt_eps(h, accept_time_ + config_.echo_guard)) {
    finish(std::nullopt);
  }
}

void TcbInstance::on_window_close() {
  if (state_ == State::kWaiting) finish(std::nullopt);
}

void TcbInstance::on_guard_elapsed() {
  if (state_ == State::kAccepted) finish(accept_time_);
}

std::optional<double> TcbInstance::output() const {
  CS_CHECK_MSG(done(), "output queried before termination");
  return output_;
}

double TcbInstance::accept_time() const {
  CS_CHECK_MSG(state_ != State::kWaiting, "no message accepted");
  return accept_time_;
}

double TcbInstance::guard_deadline() const {
  CS_CHECK_MSG(state_ == State::kAccepted, "guard only runs while accepted");
  return accept_time_ + config_.echo_guard;
}

}  // namespace crusader::core
