#pragma once
// Minimal leveled logger. Disabled by default so tests/benches stay quiet;
// examples and debugging turn it on.

#include <iostream>
#include <sstream>
#include <string>

namespace crusader::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a line at `level`. The level gate is atomic so the sweep runner can
/// run worlds on worker threads, and emission is serialized under a mutex:
/// a line is written whole — concurrent workers (e.g. the sampling CS_WARN
/// from two relay analyses) can no longer interleave characters on stderr.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, oss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace crusader::util

#define CS_LOG(level)                                              \
  if (::crusader::util::log_level() <= ::crusader::util::level)    \
  ::crusader::util::detail::LogStream(::crusader::util::level)

#define CS_DEBUG CS_LOG(LogLevel::kDebug)
#define CS_INFO CS_LOG(LogLevel::kInfo)
#define CS_WARN CS_LOG(LogLevel::kWarn)
#define CS_ERROR CS_LOG(LogLevel::kError)
