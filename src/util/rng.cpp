#include "util/rng.hpp"

#include <cstdint>

namespace crusader::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : lineage_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire-style rejection-free enough for simulation purposes; bias is
  // < 2^-32 for the n we use (tiny), but we do proper rejection anyway.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::chance(double p) noexcept { return next_double() < p; }

Rng Rng::fork(std::uint64_t stream) const noexcept {
  std::uint64_t s = lineage_;
  const std::uint64_t base = splitmix64(s);
  return Rng(base ^ mix64(stream * 0x9e3779b97f4a7c15ULL + 0x5851f42d4c957f2dULL));
}

}  // namespace crusader::util
