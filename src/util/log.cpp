#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <string>

namespace crusader::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace crusader::util
