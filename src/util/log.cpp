#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <string>

#include "util/thread_safety.hpp"

namespace crusader::util {

namespace {
// Relaxed ordering is deliberate and sufficient: the level is a standalone
// gate — no other memory is published through it, so there is nothing for
// acquire/release to order. A racing set_log_level simply takes effect on
// the next load, which is the semantics a global verbosity knob wants.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes whole-line emission. std::cerr itself is data-race-free per
// [iostream.objects.overview], but without this lock two threads' inserter
// chains interleave character runs mid-line; worker-thread warnings (relay
// sampling, budget trips) would come out shredded.
Mutex g_emit_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  MutexLock lock(g_emit_mu);
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace crusader::util
