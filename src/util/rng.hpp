#pragma once
// Deterministic, seedable random number generation.
//
// We implement splitmix64 (for seeding / hashing) and xoshiro256++ (bulk
// generation) from scratch so that simulation runs are bit-reproducible
// across standard libraries — std::mt19937 would also work, but distribution
// implementations (uniform_real_distribution etc.) differ across platforms.

#include <array>
#include <cstdint>
#include <random>

namespace crusader::util {

/// splitmix64: used to expand a single 64-bit seed into a full RNG state and
/// as a cheap, high-quality integer mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of a single value (e.g. for hashing tuples of ids).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256++ by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform in [lo, hi). Requires lo <= hi; returns lo when lo == hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Derive an independent child generator (stable: depends only on current
  /// seed lineage and `stream`). Useful for giving each node its own stream.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t lineage_ = 0;  // remembers the seed for fork()
};

}  // namespace crusader::util
