#pragma once
// Invariant checking macros. Always on: simulation correctness depends on
// these, and the cost is negligible relative to event dispatch.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace crusader::util {

/// Thrown when an internal invariant is violated. Tests rely on this being an
/// exception (rather than abort) so that violations are reportable.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a configured experiment violates the paper's model (e.g. a
/// Byzantine node emits an honest signature it never received).
class ModelViolation : public std::runtime_error {
 public:
  explicit ModelViolation(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream oss;
  oss << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw CheckFailure(oss.str());
}

}  // namespace crusader::util

#define CS_CHECK(expr)                                                        \
  do {                                                                        \
    if (!(expr)) ::crusader::util::check_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CS_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream cs_check_oss;                                \
      cs_check_oss << msg;                                            \
      ::crusader::util::check_fail(#expr, __FILE__, __LINE__,         \
                                   cs_check_oss.str());               \
    }                                                                 \
  } while (0)
