#include "util/table.hpp"

#include <algorithm>
#include <cstddef>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::util {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  return *this;
}

Table& Table::add_row(std::vector<std::string> row) {
  CS_CHECK_MSG(header_.empty() || row.size() == header_.size(),
               "row width " << row.size() << " != header width "
                            << header_.size());
  rows_.push_back(std::move(row));
  return *this;
}

// Human-facing console alignment only: Table output is never digested,
// exported to CSV, or replayed — fixed precision is a display choice here,
// not a determinism hazard (CSV/history writers must use util::fmt_double).
std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;  // lint:allow(float-format)
  return oss.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream oss;
  oss << std::scientific << std::setprecision(precision) << v;  // lint:allow(float-format)
  return oss.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::pct(double ratio, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << (100.0 * ratio)  // lint:allow(float-format)
      << "%";
  return oss.str();
}

std::string Table::boolean(bool v) { return v ? "yes" : "no"; }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto rule = [&os, &widths]() {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& row : rows_) emit(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      // Quote cells containing commas.
      if (row[i].find(',') != std::string::npos)
        os << '"' << row[i] << '"';
      else
        os << row[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace crusader::util
