#pragma once
// Shared identifier types for the whole library.

#include <cstdint>
#include <limits>

namespace crusader {

/// Index of a node in [0, n). The paper's [n].
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Pulse / iteration number, the paper's r. 1-based in reports, 0-based in
/// internal storage; conversions are localized in sim::PulseTrace.
using Round = std::uint64_t;

}  // namespace crusader
