#pragma once
// Statistics helpers used by tests and benchmark tables.

#include <cstddef>
#include <limits>
#include <vector>

namespace crusader::util {

/// Streaming min/max/mean/variance (Welford). O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Merge another accumulator into this one (parallel-safe combination).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample container with exact quantiles (stores all values; fine at the
/// scales we simulate).
class Samples {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Quantile q in [0,1], linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
};

/// Least-squares fit y = a + b*x. Used by E8 to verify skew grows linearly
/// in u and in (vartheta-1)*d.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  // coefficient of determination
};

[[nodiscard]] LinearFit fit_linear(const std::vector<double>& xs,
                                   const std::vector<double>& ys);

}  // namespace crusader::util
