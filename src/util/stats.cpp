#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace crusader::util {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
  values_.push_back(x);
  dirty_ = true;
}

void Samples::add_all(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  dirty_ = true;
}

void Samples::ensure_sorted() const {
  if (!dirty_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  dirty_ = false;
}

double Samples::min() const {
  CS_CHECK(!values_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Samples::max() const {
  CS_CHECK(!values_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Samples::mean() const {
  CS_CHECK(!values_.empty());
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  CS_CHECK(!values_.empty());
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::quantile(double q) const {
  CS_CHECK(!values_.empty());
  CS_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  CS_CHECK(xs.size() == ys.size());
  CS_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace crusader::util
