#pragma once
// Clang Thread Safety Analysis annotations + the annotated lock primitives
// every shared mutable structure in this repo uses. On clang the macros
// expand to the `capability` attribute family and `-Wthread-safety
// -Werror=thread-safety` (CMake option CRUSADER_THREAD_SAFETY, on by
// default) turns a lock-discipline violation into a compile error; on every
// other compiler they expand to nothing and the wrappers are plain
// std::mutex forwarding.
//
// Why wrappers at all: libstdc++'s std::mutex carries no annotations, so
// the analysis cannot see through std::lock_guard / std::unique_lock.
// util::Mutex + util::MutexLock are the canonical annotated shims (same
// shape as the ones in the clang docs and Abseil): a CS_CAPABILITY class
// whose lock()/unlock() are CS_ACQUIRE/CS_RELEASE, plus a
// CS_SCOPED_CAPABILITY RAII guard. std::condition_variable_any waits
// directly on util::Mutex (it is BasicLockable), so the streamed-sweep
// reorder window keeps its condition-variable shape under analysis.

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CS_TSA(x) __attribute__((x))
#endif
#endif
#ifndef CS_TSA
#define CS_TSA(x)  // no-op outside clang: annotations are advisory there
#endif

#define CS_CAPABILITY(x) CS_TSA(capability(x))
#define CS_SCOPED_CAPABILITY CS_TSA(scoped_lockable)
#define CS_GUARDED_BY(x) CS_TSA(guarded_by(x))
#define CS_PT_GUARDED_BY(x) CS_TSA(pt_guarded_by(x))
#define CS_ACQUIRED_BEFORE(...) CS_TSA(acquired_before(__VA_ARGS__))
#define CS_ACQUIRED_AFTER(...) CS_TSA(acquired_after(__VA_ARGS__))
#define CS_REQUIRES(...) CS_TSA(requires_capability(__VA_ARGS__))
#define CS_REQUIRES_SHARED(...) CS_TSA(requires_shared_capability(__VA_ARGS__))
#define CS_ACQUIRE(...) CS_TSA(acquire_capability(__VA_ARGS__))
#define CS_ACQUIRE_SHARED(...) CS_TSA(acquire_shared_capability(__VA_ARGS__))
#define CS_RELEASE(...) CS_TSA(release_capability(__VA_ARGS__))
#define CS_RELEASE_SHARED(...) CS_TSA(release_shared_capability(__VA_ARGS__))
#define CS_TRY_ACQUIRE(...) CS_TSA(try_acquire_capability(__VA_ARGS__))
#define CS_EXCLUDES(...) CS_TSA(locks_excluded(__VA_ARGS__))
#define CS_ASSERT_CAPABILITY(x) CS_TSA(assert_capability(x))
#define CS_RETURN_CAPABILITY(x) CS_TSA(lock_returned(x))
#define CS_NO_THREAD_SAFETY_ANALYSIS CS_TSA(no_thread_safety_analysis)

namespace crusader::util {

/// std::mutex with the `mutex` capability: the analysis tracks who holds it
/// and rejects unguarded access to CS_GUARDED_BY members.
class CS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CS_ACQUIRE() { mu_.lock(); }
  void unlock() CS_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() CS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard over util::Mutex — the annotated std::lock_guard. Also
/// BasicLockable-compatible via the explicit lock()/unlock() pair so
/// condition-variable code can release/reacquire mid-scope.
class CS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CS_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() CS_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() CS_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

}  // namespace crusader::util
