#pragma once
// ASCII table / CSV writer used by every benchmark binary so that all
// experiment tables share one consistent, paper-style format.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace crusader::util {

/// Column-aligned table. Cells are strings; helpers format numbers.
class Table {
 public:
  explicit Table(std::string title = {});

  Table& set_header(std::vector<std::string> header);
  Table& add_row(std::vector<std::string> row);

  /// Number formatting helpers.
  [[nodiscard]] static std::string num(double v, int precision = 4);
  [[nodiscard]] static std::string sci(double v, int precision = 3);
  [[nodiscard]] static std::string integer(long long v);
  [[nodiscard]] static std::string pct(double ratio, int precision = 1);
  [[nodiscard]] static std::string boolean(bool v);

  /// Render with box-drawing alignment to the stream.
  void print(std::ostream& os) const;
  /// Render as CSV (header + rows).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crusader::util
