#pragma once
// Move-only callable with a fat inline buffer.
//
// The event queue schedules tens of millions of closures per large-n run;
// std::function's small-buffer optimization (16 bytes on libstdc++) forces a
// heap allocation for every delivery closure (~32-48 bytes of captures:
// this-pointer, receiver range, arena handle). SmallFn stores callables up
// to kInline bytes in place and only falls back to the heap beyond that, so
// the common event costs zero allocations end to end.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace crusader::util {

template <typename Signature>
class SmallFn;

template <typename R, typename... Args>
class SmallFn<R(Args...)> {
 public:
  static constexpr std::size_t kInline = 48;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= kInline &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(buffer_)) Decayed(std::forward<F>(f));
      ops_ = &inline_ops<Decayed>;
    } else {
      ::new (static_cast<void*>(buffer_))
          Decayed*(new Decayed(std::forward<F>(f)));
      ops_ = &heap_ops<Decayed>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buffer_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* buf, Args&&... args);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
    void (*destroy)(void* buf) noexcept;
  };

  template <typename F>
  static constexpr Ops inline_ops = {
      [](void* buf, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<F*>(buf)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        F* from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* buf) noexcept {
        std::launder(reinterpret_cast<F*>(buf))->~F();
      }};

  template <typename F>
  static constexpr Ops heap_ops = {
      [](void* buf, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<F**>(buf)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) F*(*std::launder(reinterpret_cast<F**>(src)));
      },
      [](void* buf) noexcept {
        delete *std::launder(reinterpret_cast<F**>(buf));
      }};

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_) ops_->relocate(buffer_, other.buffer_);
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kInline];
  const Ops* ops_ = nullptr;
};

}  // namespace crusader::util
