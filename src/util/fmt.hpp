#pragma once
// Shortest round-trip double formatting, shared by every writer that feeds
// the determinism guarantees (CSV export, history lines, custom-delay
// spellings): locale-independent ('.' decimal point, no grouping), and
// byte-identical output for identical bits. One definition so the formats
// can never drift apart across files.

#include <charconv>
#include <string>
#include <system_error>

namespace crusader::util {

[[nodiscard]] inline std::string fmt_double(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc{} ? std::string(buf, end) : std::string("?");
}

}  // namespace crusader::util
