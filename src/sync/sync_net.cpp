#include "sync/sync_net.hpp"

#include <cstdint>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::sync {

SyncNetwork::SyncNetwork(std::uint32_t n, std::vector<bool> faulty,
                         crypto::Pki& pki)
    : n_(n), faulty_(std::move(faulty)), pki_(pki), protocols_(n, nullptr) {
  CS_CHECK(faulty_.size() == n_);
  (void)pki_;
}

void SyncNetwork::set_protocol(NodeId v, SyncProtocol* protocol) {
  CS_CHECK(v < n_);
  CS_CHECK_MSG(!faulty_[v], "protocols attach to honest nodes only");
  protocols_[v] = protocol;
}

void SyncNetwork::set_adversary(RushingAdversary* adversary) {
  adversary_ = adversary;
}

void SyncNetwork::check_knowledge(const RoundMessage& m) const {
  for (const auto& entry : m.entries) {
    const auto& sig = entry.sig;
    if (sig.signer == kInvalidNode) continue;
    if (faulty_.at(sig.signer)) continue;
    if (!knowledge_.knows(sig)) {
      std::ostringstream oss;
      oss << "rushing adversary used honest signature of node " << sig.signer
          << " it has not seen";
      throw util::ModelViolation(oss.str());
    }
  }
}

void SyncNetwork::run_round() {
  // 1. Honest nodes produce outboxes.
  std::vector<Outbox> outboxes(n_);
  for (NodeId v = 0; v < n_; ++v) {
    if (faulty_[v]) continue;
    CS_CHECK_MSG(protocols_[v] != nullptr, "node " << v << " has no protocol");
    outboxes[v] = protocols_[v]->send(round_);
  }

  // 2. Rushing: the adversary observes all honest messages of this round
  //    (worst case: including honest-to-honest traffic) before acting.
  for (NodeId v = 0; v < n_; ++v) {
    if (faulty_[v]) continue;
    for (const auto& [to, m] : outboxes[v])
      for (const auto& entry : m.entries) knowledge_.learn(entry.sig);
  }

  std::map<NodeId, Outbox> faulty_outboxes;
  if (adversary_ != nullptr) {
    faulty_outboxes = adversary_->act(round_, outboxes);
    for (auto& [from, outbox] : faulty_outboxes) {
      CS_CHECK_MSG(from < n_ && faulty_[from],
                   "adversary answered for non-faulty node " << from);
      for (const auto& [to, m] : outbox) check_knowledge(m);
    }
  }

  // 3. Deliver.
  std::vector<Inbox> inboxes(n_);
  for (NodeId v = 0; v < n_; ++v) {
    if (faulty_[v]) continue;
    for (const auto& [to, m] : outboxes[v]) {
      CS_CHECK(to < n_);
      inboxes[to][v] = m;
    }
  }
  for (const auto& [from, outbox] : faulty_outboxes) {
    for (const auto& [to, m] : outbox) {
      CS_CHECK(to < n_);
      inboxes[to][from] = m;
    }
  }

  for (NodeId v = 0; v < n_; ++v) {
    if (faulty_[v]) continue;
    protocols_[v]->receive(round_, inboxes[v]);
  }
  ++round_;
}

void SyncNetwork::run_rounds(std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) run_round();
}

}  // namespace crusader::sync
