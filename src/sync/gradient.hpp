#pragma once
// Gradient clock synchronization (KLLO-style) and its deliberately naive
// foil, jump-to-max — the conforming and violating subjects of the
// per-edge-age KLLO envelope gate.
//
// Both variants are peer-to-peer and beacon-free: every node keeps a logical
// clock L = H_v(t) + offset, pulses when L crosses r·T (T = 2·d), and at
// that same instant broadcasts a signed round-r message to its current
// neighbors. A receiver therefore knows the sender's logical clock read
// exactly r·T at the send, and the copy arrived one hop later — delay in
// [d − u, d].
//
//   * bounded = true (the gradient protocol): the receiver estimates the
//     sender's logical clock NOW as r·T + (d − u/2) — midpoint delay
//     compensation — and closes any positive gap at a bounded rate: per
//     round it may advance its offset by at most µ = u + (ϑ − 1)·T, the
//     per-round uncertainty scale. Steady per-edge skew settles near µ,
//     far inside the KLLO O(log n) envelope base.
//   * bounded = false (jump-to-max): the textbook max algorithm with no
//     delay compensation — est = r·T — and an unbounded jump to any faster
//     neighbor. Every hop lags its fastest neighbor by the full delay d, so
//     steady per-edge skew is ~d, which sits ABOVE the envelope base once
//     the edge has stabilized. This is the seeded negative subject
//     --gate-kllo must fail.
//
// Offsets only ever move forward (max-style), so the pending round timer can
// only be early after an adjustment: it is cancelled and rescheduled, and
// schedule_at_local clamps past times to "now", so pulses are never skipped.

#include <cstdint>

#include "sim/node.hpp"

namespace crusader::sync {

struct GradientConfig {
  Round max_rounds = 0;  ///< pulses per node; 0 = run to the horizon
  bool bounded = true;   ///< true = gradient (clamped), false = jump-to-max
};

class GradientNode final : public sim::PulseNode {
 public:
  explicit GradientNode(const GradientConfig& config) : config_(config) {}

  void on_start(sim::Env& env) override;
  void on_message(sim::Env& env, const sim::Message& m) override;
  void on_timer(sim::Env& env, std::uint64_t tag) override;

 private:
  enum TagKind : std::uint64_t { kTagRound = 1 };
  [[nodiscard]] static std::uint64_t encode_tag(Round round) noexcept {
    return kTagRound | (round << 3);
  }

  [[nodiscard]] bool done(Round round) const noexcept {
    return config_.max_rounds > 0 && round > config_.max_rounds;
  }
  /// Logical clock L = H_v(t) − H_v(start) + offset.
  [[nodiscard]] double logical(const sim::Env& env) const noexcept;
  void schedule_round(sim::Env& env);

  GradientConfig config_;
  double base_local_ = 0.0;  ///< hardware clock at start
  double offset_ = 0.0;      ///< logical-clock correction, monotone forward
  double budget_ = 0.0;      ///< remaining clamp budget this round (gradient)
  Round next_ = 1;           ///< next round to pulse/send
  sim::TimerId pending_ = 0; ///< the scheduled round-`next_` timer
};

}  // namespace crusader::sync
