#pragma once
// Synchronous round framework with a rushing adversary (Section 2 of the
// paper: compute–send–receive rounds; the adversary sees honest messages of
// the current round before choosing its own).
//
// Used by Crusader Broadcast (Figure 4) and Approximate Agreement (Figure 1).

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/signature.hpp"
#include "util/ids.hpp"

namespace crusader::sync {

/// One (dealer, value, signature) triple. CB instances are identified by the
/// dealer id; a broadcast round carries one entry, an echo round up to n.
struct SignedValue {
  NodeId dealer = kInvalidNode;
  double value = 0.0;
  crypto::Signature sig;
};

struct RoundMessage {
  std::vector<SignedValue> entries;
};

/// Everything delivered to one node in one round, keyed by sender.
using Inbox = std::map<NodeId, RoundMessage>;

/// Per-recipient outboxes produced by one node in one round.
using Outbox = std::map<NodeId, RoundMessage>;

/// Honest protocol logic, one instance per node.
class SyncProtocol {
 public:
  virtual ~SyncProtocol() = default;
  /// Produce this round's messages. `round` is 0-based and global.
  virtual Outbox send(std::uint32_t round) = 0;
  /// Consume this round's inbox.
  virtual void receive(std::uint32_t round, const Inbox& inbox) = 0;
};

/// Rushing adversary: sees every honest node's outbox for the round before
/// choosing the faulty nodes' messages.
class RushingAdversary {
 public:
  virtual ~RushingAdversary() = default;

  /// honest_outboxes[v] is meaningful only for honest v. Returns, for each
  /// faulty node, its outbox for this round. The executor enforces the
  /// Dolev–Yao signature rule on the returned messages.
  virtual std::map<NodeId, Outbox> act(
      std::uint32_t round, const std::vector<Outbox>& honest_outboxes) = 0;
};

/// Executes synchronous rounds among n nodes, some faulty.
class SyncNetwork {
 public:
  SyncNetwork(std::uint32_t n, std::vector<bool> faulty, crypto::Pki& pki);

  /// Install protocol instance for an honest node (required for all honest).
  void set_protocol(NodeId v, SyncProtocol* protocol);
  void set_adversary(RushingAdversary* adversary);

  /// Run one round: collect outboxes, let the adversary rush, deliver.
  void run_round();
  void run_rounds(std::uint32_t count);

  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }
  [[nodiscard]] bool is_faulty(NodeId v) const { return faulty_.at(v); }
  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }

  /// Signatures the adversary has seen (feeds the Dolev–Yao check).
  [[nodiscard]] const crypto::KnowledgeTracker& knowledge() const noexcept {
    return knowledge_;
  }

 private:
  void check_knowledge(const RoundMessage& m) const;

  std::uint32_t n_;
  std::vector<bool> faulty_;
  crypto::Pki& pki_;
  std::vector<SyncProtocol*> protocols_;
  RushingAdversary* adversary_ = nullptr;
  std::uint32_t round_ = 0;
  crypto::KnowledgeTracker knowledge_;
};

}  // namespace crusader::sync
