#include "sync/sync_adversary.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::sync {

SyncAdversaryBase::SyncAdversaryBase(std::vector<NodeId> faulty_ids,
                                     std::uint32_t n, crypto::Pki& pki,
                                     Round tag_base)
    : faulty_ids_(std::move(faulty_ids)), n_(n), pki_(pki),
      tag_base_(tag_base) {}

std::vector<double> SyncAdversaryBase::honest_values(
    const std::vector<Outbox>& honest_outboxes) const {
  std::vector<double> values;
  for (const auto& outbox : honest_outboxes) {
    if (outbox.empty()) continue;  // faulty slot or silent node
    // A phase-0 APA outbox carries the same single entry to everyone; read
    // the first recipient's copy.
    const auto& m = outbox.begin()->second;
    for (const auto& entry : m.entries) values.push_back(entry.value);
  }
  return values;
}

SignedValue SyncAdversaryBase::make_signed(NodeId dealer, Round iteration,
                                           double value,
                                           std::uint64_t nonce) const {
  SignedValue entry;
  entry.dealer = dealer;
  entry.value = value;
  entry.sig = pki_.sign(dealer,
                        crypto::make_value_payload(iteration, dealer, value),
                        nonce);
  return entry;
}

// --- Silent ------------------------------------------------------------------

std::map<NodeId, Outbox> SilentSyncAdversary::act(
    std::uint32_t /*round*/, const std::vector<Outbox>& /*honest*/) {
  return {};
}

// --- Equivocator --------------------------------------------------------------

std::map<NodeId, Outbox> EquivocatorSyncAdversary::act(
    std::uint32_t round, const std::vector<Outbox>& honest) {
  std::map<NodeId, Outbox> out;
  if (round % 2 != 0) return out;  // echo nothing: honest echoes expose us

  const std::vector<double> values = honest_values(honest);
  if (values.empty()) return out;
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const Round tag = tag_for(round);

  for (NodeId bad : faulty_ids_) {
    const SignedValue low_entry = make_signed(bad, tag, lo - 1.0);
    const SignedValue high_entry = make_signed(bad, tag, hi + 1.0);
    Outbox outbox;
    for (NodeId to = 0; to < n_; ++to) {
      outbox[to].entries.push_back(to % 2 == 0 ? low_entry : high_entry);
    }
    out[bad] = std::move(outbox);
  }
  return out;
}

// --- Consistent extreme --------------------------------------------------------

ExtremePullSyncAdversary::ExtremePullSyncAdversary(
    std::vector<NodeId> faulty_ids, std::uint32_t n, crypto::Pki& pki,
    double pull, Round tag_base)
    : SyncAdversaryBase(std::move(faulty_ids), n, pki, tag_base), pull_(pull) {}

std::map<NodeId, Outbox> ExtremePullSyncAdversary::act(
    std::uint32_t round, const std::vector<Outbox>& honest) {
  std::map<NodeId, Outbox> out;
  if (round % 2 != 0) return out;

  const std::vector<double> values = honest_values(honest);
  if (values.empty()) return out;
  const double lo = *std::min_element(values.begin(), values.end());
  const Round tag = tag_for(round);

  for (NodeId bad : faulty_ids_) {
    const SignedValue entry = make_signed(bad, tag, lo - pull_);
    Outbox outbox;
    for (NodeId to = 0; to < n_; ++to) outbox[to].entries.push_back(entry);
    out[bad] = std::move(outbox);
  }
  return out;
}

// --- Partial delivery ----------------------------------------------------------

std::map<NodeId, Outbox> PartialSyncAdversary::act(
    std::uint32_t round, const std::vector<Outbox>& honest) {
  std::map<NodeId, Outbox> out;
  if (round % 2 != 0) return out;

  const std::vector<double> values = honest_values(honest);
  if (values.empty()) return out;
  const double hi = *std::max_element(values.begin(), values.end());
  const Round tag = tag_for(round);

  for (NodeId bad : faulty_ids_) {
    const SignedValue entry = make_signed(bad, tag, hi);
    Outbox outbox;
    // Deliver only to the upper half of the id space; the rest see ⊥.
    for (NodeId to = n_ / 2; to < n_; ++to) outbox[to].entries.push_back(entry);
    out[bad] = std::move(outbox);
  }
  return out;
}

// --- Random mix ----------------------------------------------------------------

RandomSyncAdversary::RandomSyncAdversary(std::vector<NodeId> faulty_ids,
                                         std::uint32_t n, crypto::Pki& pki,
                                         std::uint64_t seed, Round tag_base)
    : SyncAdversaryBase(std::move(faulty_ids), n, pki, tag_base), rng_(seed) {}

std::map<NodeId, Outbox> RandomSyncAdversary::act(
    std::uint32_t round, const std::vector<Outbox>& honest) {
  std::map<NodeId, Outbox> out;
  if (round % 2 != 0) return out;

  const std::vector<double> values = honest_values(honest);
  if (values.empty()) return out;
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const Round tag = tag_for(round);

  for (NodeId bad : faulty_ids_) {
    Outbox outbox;
    switch (rng_.below(4)) {
      case 0:
        break;  // silent
      case 1: {  // consistent random value within (stretched) honest range
        const double v = rng_.uniform(lo - 1.0, hi + 1.0);
        const SignedValue entry = make_signed(bad, tag, v);
        for (NodeId to = 0; to < n_; ++to) outbox[to].entries.push_back(entry);
        break;
      }
      case 2: {  // equivocate with two random values
        const SignedValue a = make_signed(bad, tag, rng_.uniform(lo - 2.0, hi));
        const SignedValue b = make_signed(bad, tag, rng_.uniform(lo, hi + 2.0));
        for (NodeId to = 0; to < n_; ++to)
          outbox[to].entries.push_back(rng_.chance(0.5) ? a : b);
        break;
      }
      case 3: {  // partial delivery
        const SignedValue entry = make_signed(bad, tag, rng_.uniform(lo, hi));
        for (NodeId to = 0; to < n_; ++to)
          if (rng_.chance(0.5)) outbox[to].entries.push_back(entry);
        break;
      }
    }
    if (!outbox.empty()) out[bad] = std::move(outbox);
  }
  return out;
}

}  // namespace crusader::sync
