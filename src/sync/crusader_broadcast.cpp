#include "sync/crusader_broadcast.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "util/check.hpp"

namespace crusader::sync {

CbInstance::CbInstance(NodeId self, NodeId dealer, Round tag, crypto::Pki& pki)
    : self_(self), dealer_(dealer), tag_(tag), pki_(pki) {}

bool CbInstance::valid(const SignedValue& entry) const {
  if (entry.dealer != dealer_) return false;
  if (entry.sig.signer != dealer_) return false;
  return pki_.verify(entry.sig,
                     crypto::make_value_payload(tag_, dealer_, entry.value));
}

void CbInstance::absorb(const SignedValue& entry) {
  if (!valid(entry)) return;
  if (std::find(valid_values_.begin(), valid_values_.end(), entry.value) ==
      valid_values_.end()) {
    valid_values_.push_back(entry.value);
  }
}

std::optional<SignedValue> CbInstance::make_broadcast(double input) {
  CS_CHECK_MSG(self_ == dealer_, "only the dealer broadcasts in round 0");
  SignedValue entry;
  entry.dealer = dealer_;
  entry.value = input;
  entry.sig = pki_.sign(self_, crypto::make_value_payload(tag_, dealer_, input));
  return entry;
}

void CbInstance::on_direct(const SignedValue& entry) {
  // Keep the first direct message only; duplicates from a faulty dealer still
  // feed the conflict set.
  if (!direct_.has_value()) direct_ = entry;
  absorb(entry);
}

std::optional<SignedValue> CbInstance::make_echo() const {
  return direct_;
}

void CbInstance::on_echo(NodeId /*from*/, const SignedValue& entry) {
  absorb(entry);
}

CbOutput CbInstance::output() const {
  // ⊥ on conflicting validly-signed values (first bullet of Figure 4).
  if (valid_values_.size() > 1) return std::nullopt;
  // ⊥ if the direct message is missing or carries an invalid signature
  // (second bullet).
  if (!direct_.has_value() || !valid(*direct_)) return std::nullopt;
  return direct_->value;
}

// --- Standalone SyncProtocol wrapper ----------------------------------------

CrusaderBroadcastNode::CrusaderBroadcastNode(NodeId self, NodeId dealer,
                                             Round tag, std::uint32_t n,
                                             crypto::Pki& pki,
                                             std::optional<double> input)
    : instance_(self, dealer, tag, pki), n_(n), input_(input) {
  if (self == dealer)
    CS_CHECK_MSG(input_.has_value(), "dealer needs an input");
}

Outbox CrusaderBroadcastNode::send(std::uint32_t round) {
  Outbox out;
  if (round == 0) {
    if (input_.has_value()) {
      const auto entry = instance_.make_broadcast(*input_);
      if (entry) {
        for (NodeId to = 0; to < n_; ++to) out[to].entries.push_back(*entry);
      }
    }
  } else if (round == 1) {
    if (const auto echo = instance_.make_echo()) {
      for (NodeId to = 0; to < n_; ++to) out[to].entries.push_back(*echo);
    }
  }
  return out;
}

void CrusaderBroadcastNode::receive(std::uint32_t round, const Inbox& inbox) {
  if (round == 0) {
    const auto it = inbox.find(instance_.dealer());
    if (it != inbox.end()) {
      for (const auto& entry : it->second.entries) instance_.on_direct(entry);
    }
  } else if (round == 1) {
    for (const auto& [from, m] : inbox)
      for (const auto& entry : m.entries) instance_.on_echo(from, entry);
    done_ = true;
  }
}

CbOutput CrusaderBroadcastNode::output() const {
  CS_CHECK_MSG(done_, "output queried before round 1 completed");
  return instance_.output();
}

}  // namespace crusader::sync
