#include "sync/approx_agreement.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::sync {

ApaNode::ApaNode(NodeId self, std::uint32_t n, std::uint32_t f,
                 crypto::Pki& pki, double input, std::uint32_t iterations,
                 Round tag_base)
    : self_(self),
      n_(n),
      f_(f),
      pki_(pki),
      current_(input),
      iterations_(iterations),
      tag_base_(tag_base) {
  CS_CHECK(self_ < n_);
  CS_CHECK_MSG(f_ <= (n_ + 1) / 2 - 1,
               "APA requires f <= ceil(n/2)-1 (Theorem 9)");
}

void ApaNode::begin_iteration() {
  instances_.clear();
  instances_.reserve(n_);
  const Round tag = tag_base_ + completed_;
  for (NodeId dealer = 0; dealer < n_; ++dealer) {
    instances_.push_back(
        std::make_unique<CbInstance>(self_, dealer, tag, pki_));
  }
}

Outbox ApaNode::send(std::uint32_t round) {
  Outbox out;
  if (completed_ >= iterations_) return out;
  const std::uint32_t phase = round % 2;
  CS_CHECK_MSG(round / 2 == completed_,
               "round " << round << " does not match iteration " << completed_);

  if (phase == 0) {
    begin_iteration();
    const auto entry = instances_[self_]->make_broadcast(current_);
    CS_CHECK(entry.has_value());
    for (NodeId to = 0; to < n_; ++to) out[to].entries.push_back(*entry);
  } else {
    // Echo phase: forward every direct message received in phase 0.
    std::vector<SignedValue> echoes;
    for (const auto& instance : instances_) {
      if (const auto echo = instance->make_echo()) echoes.push_back(*echo);
    }
    if (!echoes.empty()) {
      for (NodeId to = 0; to < n_; ++to) out[to].entries = echoes;
    }
  }
  return out;
}

void ApaNode::receive(std::uint32_t round, const Inbox& inbox) {
  if (completed_ >= iterations_) return;
  const std::uint32_t phase = round % 2;

  if (phase == 0) {
    // Direct messages: entry for dealer y counts as direct only when it was
    // received from y itself.
    for (const auto& [from, m] : inbox) {
      for (const auto& entry : m.entries) {
        if (entry.dealer == from && entry.dealer < n_)
          instances_[entry.dealer]->on_direct(entry);
      }
    }
  } else {
    for (const auto& [from, m] : inbox) {
      for (const auto& entry : m.entries) {
        if (entry.dealer < n_) instances_[entry.dealer]->on_echo(from, entry);
      }
    }
    finish_iteration();
  }
}

void ApaNode::finish_iteration() {
  std::vector<double> values;
  std::uint32_t bots = 0;
  for (const auto& instance : instances_) {
    const CbOutput o = instance->output();
    if (o.has_value())
      values.push_back(*o);
    else
      ++bots;
  }
  current_ = select_midpoint(std::move(values), f_, bots);
  trajectory_.push_back(current_);
  bot_counts_.push_back(bots);
  ++completed_;
}

double ApaNode::select_midpoint(std::vector<double> values, std::uint32_t f,
                                std::uint32_t bot_count) {
  CS_CHECK_MSG(!values.empty(), "no non-bot values to select from");
  std::sort(values.begin(), values.end());
  // Every ⊥ output identifies one faulty dealer whose value is already
  // excluded, so only f−b potentially-faulty values can hide on each side.
  const std::uint32_t discard =
      f > bot_count ? f - bot_count : 0;
  CS_CHECK_MSG(values.size() > 2 * static_cast<std::size_t>(discard),
               "discarding " << discard << " per side leaves nothing of "
                             << values.size());
  const double lo = values[discard];
  const double hi = values[values.size() - 1 - discard];
  return (lo + hi) / 2.0;
}

ApaRunResult run_apa(std::uint32_t n, std::uint32_t f,
                     const std::vector<bool>& faulty,
                     const std::vector<double>& inputs,
                     std::uint32_t iterations, RushingAdversary* adversary,
                     crypto::Pki& pki) {
  CS_CHECK(faulty.size() == n);
  CS_CHECK(inputs.size() == n);

  SyncNetwork net(n, faulty, pki);
  std::vector<std::unique_ptr<ApaNode>> nodes(n);
  for (NodeId v = 0; v < n; ++v) {
    if (faulty[v]) continue;
    nodes[v] = std::make_unique<ApaNode>(v, n, f, pki, inputs[v], iterations);
    net.set_protocol(v, nodes[v].get());
  }
  net.set_adversary(adversary);
  net.run_rounds(2 * iterations);

  ApaRunResult result;
  result.outputs.assign(n, std::numeric_limits<double>::quiet_NaN());
  result.trajectories.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    if (faulty[v]) continue;
    CS_CHECK(nodes[v]->done());
    result.outputs[v] = nodes[v]->current();
    result.trajectories[v] = nodes[v]->trajectory();
  }
  return result;
}

}  // namespace crusader::sync
