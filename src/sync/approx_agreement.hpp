#pragma once
// Approximate Agreement with signatures — Figure 1 of the paper (APA), plus
// the iterated version of Corollary 2.
//
// One iteration (2 synchronous rounds):
//   * every node crusader-broadcasts its current value (n concurrent
//     CbInstances, one per dealer);
//   * with b the number of ⊥ outputs, sort the non-⊥ values, discard the
//     lowest f−b and highest f−b, and output the midpoint of the interval
//     spanned by the rest.
//
// Theorem 9: one iteration is (ℓ, ℓ/2, ⌈n/2⌉−1)-secure. Corollary 2:
// ⌈log₂(ℓ/ε)⌉ iterations (2⌈log₂(ℓ/ε)⌉ rounds) give ε-consistency.

#include <cstdint>
#include <memory>
#include <vector>

#include "sync/crusader_broadcast.hpp"
#include "sync/sync_net.hpp"

namespace crusader::sync {

class ApaNode final : public SyncProtocol {
 public:
  /// `iterations` iterations are executed back to back; iteration i uses
  /// global rounds 2i and 2i+1 and payload tag `tag_base + i`.
  ApaNode(NodeId self, std::uint32_t n, std::uint32_t f, crypto::Pki& pki,
          double input, std::uint32_t iterations, Round tag_base = 0);

  Outbox send(std::uint32_t round) override;
  void receive(std::uint32_t round, const Inbox& inbox) override;

  /// Current estimate (input before the first iteration completes).
  [[nodiscard]] double current() const noexcept { return current_; }
  [[nodiscard]] bool done() const noexcept {
    return completed_ >= iterations_;
  }
  /// Estimate after each completed iteration.
  [[nodiscard]] const std::vector<double>& trajectory() const noexcept {
    return trajectory_;
  }
  /// Number of ⊥ outputs observed in each completed iteration.
  [[nodiscard]] const std::vector<std::uint32_t>& bot_counts() const noexcept {
    return bot_counts_;
  }

  /// The Figure-1 selection rule, exposed for reuse (CPS uses the identical
  /// rule on offset estimates — Figure 3) and for direct unit-testing.
  /// `values` are the non-⊥ values; `bot_count` is b. Returns the midpoint
  /// of the interval spanned after discarding max(0, f-b) from each side.
  [[nodiscard]] static double select_midpoint(std::vector<double> values,
                                              std::uint32_t f,
                                              std::uint32_t bot_count);

 private:
  void begin_iteration();
  void finish_iteration();

  NodeId self_;
  std::uint32_t n_;
  std::uint32_t f_;
  crypto::Pki& pki_;
  double current_;
  std::uint32_t iterations_;
  Round tag_base_;
  std::uint32_t completed_ = 0;
  std::vector<std::unique_ptr<CbInstance>> instances_;  // one per dealer
  std::vector<double> trajectory_;
  std::vector<std::uint32_t> bot_counts_;
};

/// Convenience harness: runs APA among n nodes with the given honest inputs
/// and adversary; returns the honest outputs (indexed by node id; faulty
/// slots hold NaN). Used by tests and the E1 bench.
struct ApaRunResult {
  std::vector<double> outputs;                 // per node; NaN for faulty
  std::vector<std::vector<double>> trajectories;  // honest trajectories
};

ApaRunResult run_apa(std::uint32_t n, std::uint32_t f,
                     const std::vector<bool>& faulty,
                     const std::vector<double>& inputs,
                     std::uint32_t iterations, RushingAdversary* adversary,
                     crypto::Pki& pki);

}  // namespace crusader::sync
