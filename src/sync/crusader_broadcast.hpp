#pragma once
// Crusader Broadcast with signatures — Figure 4 of the paper.
//
//   * Round 0: the dealer v sends (b_v, ⟨b_v⟩_v) to all nodes.
//   * Round 1: each node forwards the pair it received from the dealer.
//   * Output ⊥ if two distinct validly-signed dealer values were observed,
//     or if the direct message from the dealer is missing/invalid;
//     otherwise output the dealer's value.
//
// Guarantees (Definition 6, shown in [12]): Validity for honest dealers and
// Crusader Consistency — honest non-⊥ outputs agree — for up to
// f = ⌈n/2⌉ − 1 faults (in fact for any f < n: both properties follow from
// unforgeability alone; resilience matters for the *uses* of CB).
//
// Generalized from bits to real values, which is what APA needs.

#include <cstdint>
#include <optional>
#include <vector>

#include "sync/sync_net.hpp"

namespace crusader::sync {

/// Output of a CB instance: nullopt encodes ⊥.
using CbOutput = std::optional<double>;

/// One node's view of one CB instance. Drive with on_round0 / on_round1.
/// Composable: APA runs n of these per iteration inside one SyncProtocol.
class CbInstance {
 public:
  /// `tag` disambiguates instances across iterations (it is signed into the
  /// payload, preventing cross-instance replay).
  CbInstance(NodeId self, NodeId dealer, Round tag, crypto::Pki& pki);

  /// Round-0 outbox contribution: only the dealer emits, signing its input.
  [[nodiscard]] std::optional<SignedValue> make_broadcast(double input);

  /// Record round-0 inbox: the entry received directly from the dealer.
  void on_direct(const SignedValue& entry);

  /// Round-1 outbox contribution: echo of the direct entry, if any.
  [[nodiscard]] std::optional<SignedValue> make_echo() const;

  /// Record a round-1 entry from `from` (any sender, including the dealer).
  void on_echo(NodeId from, const SignedValue& entry);

  /// Final output per Figure 4. Call after round 1.
  [[nodiscard]] CbOutput output() const;

  [[nodiscard]] NodeId dealer() const noexcept { return dealer_; }

 private:
  [[nodiscard]] bool valid(const SignedValue& entry) const;
  void absorb(const SignedValue& entry);

  NodeId self_;
  NodeId dealer_;
  Round tag_;
  crypto::Pki& pki_;
  std::optional<SignedValue> direct_;
  // Distinct validly-signed dealer values observed (size > 1 ⇒ ⊥).
  std::vector<double> valid_values_;
};

/// Standalone single-dealer Crusader Broadcast as a SyncProtocol (2 rounds).
/// Used directly by tests and the bench for Figure 4; APA embeds CbInstance.
class CrusaderBroadcastNode final : public SyncProtocol {
 public:
  CrusaderBroadcastNode(NodeId self, NodeId dealer, Round tag,
                        std::uint32_t n, crypto::Pki& pki,
                        std::optional<double> input);

  Outbox send(std::uint32_t round) override;
  void receive(std::uint32_t round, const Inbox& inbox) override;

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] CbOutput output() const;

 private:
  CbInstance instance_;
  std::uint32_t n_;
  std::optional<double> input_;
  bool done_ = false;
};

}  // namespace crusader::sync
