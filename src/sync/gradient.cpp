#include "sync/gradient.hpp"

#include <algorithm>

#include "crypto/signature.hpp"

namespace crusader::sync {
namespace {

/// Per-round adjustment budget of the bounded (gradient) variant: the
/// per-round uncertainty scale σ = u + (ϑ − 1)·T. A node may close gaps
/// toward faster neighbors at most this fast, so its logical rate stays
/// within a constant factor of the hardware rate — the KLLO bounded-rate
/// discipline.
[[nodiscard]] double round_budget(const sim::Env& env) noexcept {
  const auto& model = env.model();
  return model.u + (model.vartheta - 1.0) * 2.0 * model.d;
}

}  // namespace

double GradientNode::logical(const sim::Env& env) const noexcept {
  return env.local_now() - base_local_ + offset_;
}

void GradientNode::schedule_round(sim::Env& env) {
  const double period = 2.0 * env.model().d;
  // L reads next_·T when the hardware clock reads this (clamped to now if
  // the offset already carried L past the boundary).
  pending_ = env.schedule_at_local(
      base_local_ + static_cast<double>(next_) * period - offset_,
      encode_tag(next_));
}

void GradientNode::on_start(sim::Env& env) {
  base_local_ = env.local_now();
  budget_ = round_budget(env);
  schedule_round(env);
}

void GradientNode::on_timer(sim::Env& env, std::uint64_t tag) {
  const Round round = tag >> 3;
  if (round != next_ || done(round)) return;  // stale (rescheduled) timer
  env.pulse();
  sim::Message m;
  m.kind = sim::MsgKind::kRaw;
  m.round = round;
  m.sig = env.sign(crypto::make_pulse_payload(round));
  env.broadcast(m);
  budget_ = round_budget(env);  // the clamp budget replenishes per round
  ++next_;
  if (!done(next_)) schedule_round(env);
}

void GradientNode::on_message(sim::Env& env, const sim::Message& m) {
  if (m.round == 0 || done(m.round)) return;
  if (m.sig.signer == env.id()) return;
  if (!env.verify(m.sig, crypto::make_pulse_payload(m.round))) return;
  const auto& model = env.model();
  const double period = 2.0 * model.d;
  // The sender's logical clock read round·T at the send, one hop ago.
  double est = static_cast<double>(m.round) * period;
  if (config_.bounded) {
    // Midpoint delay compensation: the copy is d − u/2 old on average, so
    // the estimate error is at most ±u/2 (plus drift over one hop).
    est += model.d - 0.5 * model.u;
  }
  const double gap = est - logical(env);
  if (gap <= 0.0) return;  // never move backward: max-style monotone offsets
  double adjust = gap;
  if (config_.bounded) {
    adjust = std::min(gap, budget_);
    if (adjust <= 0.0) return;  // this round's budget is spent
    budget_ -= adjust;
  }
  offset_ += adjust;
  // The pending round timer was laid out under the old offset and is now
  // late by `adjust`; re-anchor it (schedule_at_local clamps past times to
  // now, so a large jump fires the round immediately — never skips it).
  if (!done(next_)) {
    env.cancel_timer(pending_);
    schedule_round(env);
  }
}

}  // namespace crusader::sync
