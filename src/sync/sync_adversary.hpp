#pragma once
// Rushing-adversary strategies for the synchronous protocols (CB / APA).
//
// Each strategy targets the APA message shape: phase 0 (round%2==0) carries
// dealer broadcasts, phase 1 carries echoes. All strategies honor the model:
// they sign only with faulty keys and replay only observed honest signatures
// (the executor enforces this).

#include <cstdint>
#include <map>
#include <vector>

#include "sync/sync_net.hpp"
#include "util/rng.hpp"

namespace crusader::sync {

/// Shared plumbing: faulty ids, key access, honest-value extraction.
class SyncAdversaryBase : public RushingAdversary {
 public:
  SyncAdversaryBase(std::vector<NodeId> faulty_ids, std::uint32_t n,
                    crypto::Pki& pki, Round tag_base = 0);

 protected:
  /// Honest input values visible in this phase-0 round (rushing).
  [[nodiscard]] std::vector<double> honest_values(
      const std::vector<Outbox>& honest_outboxes) const;

  [[nodiscard]] SignedValue make_signed(NodeId dealer, Round iteration,
                                        double value,
                                        std::uint64_t nonce = 0) const;

  [[nodiscard]] Round tag_for(std::uint32_t round) const {
    return tag_base_ + round / 2;
  }

  std::vector<NodeId> faulty_ids_;
  std::uint32_t n_;
  crypto::Pki& pki_;
  Round tag_base_;
};

/// Sends nothing (crash from the start). Honest nodes see b = f bots.
class SilentSyncAdversary final : public SyncAdversaryBase {
 public:
  using SyncAdversaryBase::SyncAdversaryBase;
  std::map<NodeId, Outbox> act(std::uint32_t round,
                               const std::vector<Outbox>& honest) override;
};

/// Equivocates: signs the honest minimum for even-id recipients and the
/// honest maximum for odd-id recipients. CB's echo round exposes this: every
/// honest node that sees both signed values outputs ⊥.
class EquivocatorSyncAdversary final : public SyncAdversaryBase {
 public:
  using SyncAdversaryBase::SyncAdversaryBase;
  std::map<NodeId, Outbox> act(std::uint32_t round,
                               const std::vector<Outbox>& honest) override;
};

/// Sends a *consistent* extreme value (the honest minimum minus a configured
/// pull, rushing on the honest inputs) — the strongest legal value-level
/// attack, testing the f−b discard logic.
class ExtremePullSyncAdversary final : public SyncAdversaryBase {
 public:
  ExtremePullSyncAdversary(std::vector<NodeId> faulty_ids, std::uint32_t n,
                           crypto::Pki& pki, double pull, Round tag_base = 0);
  std::map<NodeId, Outbox> act(std::uint32_t round,
                               const std::vector<Outbox>& honest) override;

 private:
  double pull_;
};

/// Delivers a valid value to a subset of honest nodes and nothing to the
/// rest: the receivers output the value, the others output ⊥ — the exact
/// asymmetry Lemmas 7/8 reason about.
class PartialSyncAdversary final : public SyncAdversaryBase {
 public:
  using SyncAdversaryBase::SyncAdversaryBase;
  std::map<NodeId, Outbox> act(std::uint32_t round,
                               const std::vector<Outbox>& honest) override;
};

/// Mixes all of the above uniformly at random, per faulty node per iteration.
class RandomSyncAdversary final : public SyncAdversaryBase {
 public:
  RandomSyncAdversary(std::vector<NodeId> faulty_ids, std::uint32_t n,
                      crypto::Pki& pki, std::uint64_t seed, Round tag_base = 0);
  std::map<NodeId, Outbox> act(std::uint32_t round,
                               const std::vector<Outbox>& honest) override;

 private:
  util::Rng rng_;
};

}  // namespace crusader::sync
