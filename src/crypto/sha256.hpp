#pragma once
// SHA-256 (FIPS 180-4), implemented from scratch — the environment is
// offline, so we carry our own hash for the HMAC-backed signature scheme.

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace crusader::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(const std::string& s) noexcept;

  /// Finalizes and returns the digest. The context must not be reused
  /// afterwards (construct a fresh one).
  [[nodiscard]] Digest finalize() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Digest hash(const std::string& s) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finalized_ = false;
};

/// Hex encoding of a digest (lowercase), for logging and tests.
[[nodiscard]] std::string to_hex(const Digest& d);

}  // namespace crusader::crypto
