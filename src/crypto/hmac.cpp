#include "crypto/hmac.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

namespace crusader::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) noexcept {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k_block{};

  if (key.size() > kBlock) {
    const Digest hashed = Sha256::hash(key);
    std::memcpy(k_block.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(k_block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

Digest hmac_sha256(const std::string& key, const std::string& message) noexcept {
  return hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(message.data()),
          message.size()));
}

}  // namespace crusader::crypto
