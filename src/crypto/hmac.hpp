#pragma once
// HMAC-SHA256 (RFC 2104 / FIPS 198-1) built on our SHA-256.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"

namespace crusader::crypto {

/// Computes HMAC-SHA256(key, message).
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message) noexcept;

[[nodiscard]] Digest hmac_sha256(const std::string& key,
                                 const std::string& message) noexcept;

}  // namespace crusader::crypto
