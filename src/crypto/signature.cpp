#include "crypto/signature.hpp"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <sstream>
#include <string>

#include "crypto/hmac.hpp"
#include "util/check.hpp"

namespace crusader::crypto {

namespace {

std::uint64_t digest_prefix(const Digest& d) noexcept {
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | d[static_cast<std::size_t>(i)];
  return out;
}

}  // namespace

std::uint64_t SignedPayload::hash() const noexcept {
  return digest_prefix(Sha256::hash(context));
}

SignedPayload make_pulse_payload(Round round) {
  std::ostringstream oss;
  oss << "tcb-pulse|r=" << round;
  return SignedPayload{oss.str()};
}

SignedPayload make_value_payload(Round round, NodeId dealer, double value) {
  std::ostringstream oss;
  oss << "cb-value|r=" << round << "|dealer=" << dealer << "|v=";
  // Hexfloat keeps the encoding canonical and lossless: %a prints the exact
  // bit pattern (no rounding, no shortest-form search), and this process
  // never touches the C locale, so identical bits sign identical payloads.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", value);  // lint:allow(float-format)
  oss << buf;
  return SignedPayload{oss.str()};
}

SignedPayload make_ready_payload(Round round) {
  std::ostringstream oss;
  oss << "st-ready|r=" << round;
  return SignedPayload{oss.str()};
}

std::uint64_t Signature::key() const noexcept {
  std::uint64_t k = util::mix64(payload_hash);
  k ^= util::mix64((static_cast<std::uint64_t>(signer) << 32) ^ nonce);
  k ^= digest_prefix(tag);
  return util::mix64(k);
}

// --- SymbolicScheme ---------------------------------------------------------

Signature SymbolicScheme::sign(NodeId signer, const SignedPayload& payload,
                               std::uint64_t nonce) {
  Signature sig;
  sig.signer = signer;
  sig.payload_hash = payload.hash();
  sig.nonce = nonce;
  // Tag derived (not secret) — validity comes from the registry, so a
  // fabricated Signature with a correct-looking tag still fails `verify`
  // unless it was actually issued.
  const std::uint64_t t =
      util::mix64(sig.payload_hash ^ (static_cast<std::uint64_t>(signer) * 0x100000001b3ULL) ^ nonce);
  for (int i = 0; i < 8; ++i)
    sig.tag[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(t >> (8 * i));
  issued_.insert(sig.key());
  return sig;
}

bool SymbolicScheme::verify(const Signature& sig,
                            const SignedPayload& payload) const {
  if (sig.payload_hash != payload.hash()) return false;
  return issued_.contains(sig.key());
}

// --- AbstractScheme ---------------------------------------------------------

namespace {

/// FNV-1a over the context bytes, finalized with mix64: collision-free in
/// practice for the handful of distinct payloads a run signs, and ~100x
/// cheaper than SHA-256. Scheme-local: payload_hash values from this scheme
/// never mix with SymbolicScheme/HmacScheme digests.
std::uint64_t cheap_context_hash(const SignedPayload& payload) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : payload.context) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return util::mix64(h);
}

}  // namespace

Signature AbstractScheme::sign(NodeId signer, const SignedPayload& payload,
                               std::uint64_t nonce) {
  Signature sig;
  sig.signer = signer;
  sig.payload_hash = cheap_context_hash(payload);
  sig.nonce = nonce;
  // Tag derived like SymbolicScheme's: validity comes from the registry.
  const std::uint64_t t = util::mix64(
      sig.payload_hash ^ (static_cast<std::uint64_t>(signer) * 0x100000001b3ULL) ^
      nonce);
  for (int i = 0; i < 8; ++i)
    sig.tag[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(t >> (8 * i));
  issued_.insert(sig.key());
  return sig;
}

bool AbstractScheme::verify(const Signature& sig,
                            const SignedPayload& payload) const {
  if (sig.payload_hash != cheap_context_hash(payload)) return false;
  return issued_.contains(sig.key());
}

// --- HmacScheme -------------------------------------------------------------

HmacScheme::HmacScheme(std::uint32_t n, std::uint64_t seed) {
  util::Rng rng(seed ^ 0xc3a5c85c97cb3127ULL);
  keys_.resize(n);
  for (auto& key : keys_) {
    for (std::size_t i = 0; i < key.size(); i += 8) {
      const std::uint64_t word = rng.next_u64();
      for (std::size_t b = 0; b < 8; ++b)
        key[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
}

Digest HmacScheme::compute_tag(NodeId signer, const SignedPayload& payload,
                               std::uint64_t nonce) const {
  CS_CHECK_MSG(signer < keys_.size(), "unknown signer " << signer);
  std::string msg = payload.context;
  msg.push_back('|');
  for (int i = 0; i < 8; ++i)
    msg.push_back(static_cast<char>((nonce >> (8 * i)) & 0xff));
  const auto& key = keys_[signer];
  return hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()),
                     std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>(msg.data()),
                         msg.size()));
}

Signature HmacScheme::sign(NodeId signer, const SignedPayload& payload,
                           std::uint64_t nonce) {
  Signature sig;
  sig.signer = signer;
  sig.payload_hash = payload.hash();
  sig.nonce = nonce;
  sig.tag = compute_tag(signer, payload, nonce);
  return sig;
}

bool HmacScheme::verify(const Signature& sig,
                        const SignedPayload& payload) const {
  if (sig.signer >= keys_.size()) return false;
  if (sig.payload_hash != payload.hash()) return false;
  const Digest expected = compute_tag(sig.signer, payload, sig.nonce);
  // Constant-time comparison is irrelevant in a simulator, but cheap.
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < expected.size(); ++i)
    acc = static_cast<std::uint8_t>(acc | (expected[i] ^ sig.tag[i]));
  return acc == 0;
}

// --- Pki --------------------------------------------------------------------

Pki::Pki(std::uint32_t n, Kind kind, std::uint64_t seed) : n_(n) {
  switch (kind) {
    case Kind::kSymbolic:
      scheme_ = std::make_unique<SymbolicScheme>();
      break;
    case Kind::kHmac:
      scheme_ = std::make_unique<HmacScheme>(n, seed);
      break;
    case Kind::kAbstract:
      scheme_ = std::make_unique<AbstractScheme>();
      break;
  }
}

Signature Pki::sign(NodeId signer, const SignedPayload& payload,
                    std::uint64_t nonce) {
  CS_CHECK_MSG(signer < n_, "signer " << signer << " out of range");
  ++signs_;
  return scheme_->sign(signer, payload, nonce);
}

bool Pki::verify(const Signature& sig, const SignedPayload& payload) const {
  ++verifies_;
  return scheme_->verify(sig, payload);
}

// --- KnowledgeTracker -------------------------------------------------------

void KnowledgeTracker::learn(const Signature& sig) { known_.insert(sig.key()); }

bool KnowledgeTracker::knows(const Signature& sig) const {
  return known_.contains(sig.key());
}

}  // namespace crusader::crypto
