#pragma once
// Idealized digital signatures, matching the paper's model (Section 2):
// every node v holds sk_v; signatures are unforgeable and perfectly correct.
//
// Two interchangeable schemes:
//  * HmacScheme     — tag = HMAC-SHA256(sk_signer, payload bytes); the Pki
//                     acts as the verification oracle (it knows all keys).
//                     Computationally real bytes; unforgeable inside the
//                     simulation. This is the Dolev–Yao substitution
//                     documented in DESIGN.md.
//  * SymbolicScheme — a registry of issued signatures; `verify` checks
//                     membership. Fast path for large benchmark sweeps.
//
// The adversary restriction — a faulty node may only emit an honest
// signature after some faulty node received it — is enforced by
// `KnowledgeTracker`, fed by the network layer.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/sha256.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace crusader::crypto {

/// Canonical description of what gets signed. Protocols build the context
/// string with `make_payload`; equality of context strings defines equality
/// of messages for signing purposes.
struct SignedPayload {
  std::string context;

  [[nodiscard]] std::uint64_t hash() const noexcept;
  friend bool operator==(const SignedPayload&, const SignedPayload&) = default;
};

/// Builders for the payloads used by our protocols. Encoding the round `r`
/// (and the dealer where relevant) is what prevents cross-instance replay —
/// see the caption of Figure 2 in the paper.
[[nodiscard]] SignedPayload make_pulse_payload(Round round);
[[nodiscard]] SignedPayload make_value_payload(Round round, NodeId dealer,
                                               double value);
[[nodiscard]] SignedPayload make_ready_payload(Round round);

/// A signature ⟨m⟩_v. Value type; cheap to copy.
struct Signature {
  NodeId signer = kInvalidNode;
  std::uint64_t payload_hash = 0;
  Digest tag{};
  /// Distinguishes multiple signatures a *Byzantine* signer may create on the
  /// same payload (randomized signing). Honest signing always uses nonce 0.
  std::uint64_t nonce = 0;

  /// Stable identity for knowledge tracking and dedup.
  [[nodiscard]] std::uint64_t key() const noexcept;

  friend bool operator==(const Signature&, const Signature&) = default;
};

/// Abstract scheme. Thread-compatibility: single-threaded use only (the
/// simulator is single-threaded by design).
class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  /// Create ⟨payload⟩_signer. `nonce` must be 0 for honest nodes.
  [[nodiscard]] virtual Signature sign(NodeId signer,
                                       const SignedPayload& payload,
                                       std::uint64_t nonce) = 0;

  /// Verify(pk_signer, sig, payload) per the paper.
  [[nodiscard]] virtual bool verify(const Signature& sig,
                                    const SignedPayload& payload) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Registry-backed symbolic scheme (fast).
class SymbolicScheme final : public SignatureScheme {
 public:
  [[nodiscard]] Signature sign(NodeId signer, const SignedPayload& payload,
                               std::uint64_t nonce) override;
  [[nodiscard]] bool verify(const Signature& sig,
                            const SignedPayload& payload) const override;
  [[nodiscard]] std::string name() const override { return "symbolic"; }

 private:
  std::unordered_set<std::uint64_t> issued_;
};

/// Abstract-crypto scheme: the large-n fast path. Same registry
/// unforgeability semantics as SymbolicScheme, but the payload digest is a
/// cheap scheme-local 64-bit hash of the context instead of SHA-256 — sign
/// and verify never hash real bytes. Sign/verify op counts are identical to
/// the symbolic scheme's; only the digest values differ, and those never
/// leave the crypto layer (Signature::key() is used for set membership,
/// never ordering).
class AbstractScheme final : public SignatureScheme {
 public:
  [[nodiscard]] Signature sign(NodeId signer, const SignedPayload& payload,
                               std::uint64_t nonce) override;
  [[nodiscard]] bool verify(const Signature& sig,
                            const SignedPayload& payload) const override;
  [[nodiscard]] std::string name() const override { return "abstract"; }

 private:
  std::unordered_set<std::uint64_t> issued_;
};

/// HMAC-SHA256-backed scheme with per-node 32-byte secret keys.
class HmacScheme final : public SignatureScheme {
 public:
  /// Keys for nodes [0, n) are derived deterministically from `seed`.
  HmacScheme(std::uint32_t n, std::uint64_t seed);

  [[nodiscard]] Signature sign(NodeId signer, const SignedPayload& payload,
                               std::uint64_t nonce) override;
  [[nodiscard]] bool verify(const Signature& sig,
                            const SignedPayload& payload) const override;
  [[nodiscard]] std::string name() const override { return "hmac-sha256"; }

 private:
  [[nodiscard]] Digest compute_tag(NodeId signer, const SignedPayload& payload,
                                   std::uint64_t nonce) const;

  std::vector<std::array<std::uint8_t, 32>> keys_;
};

/// Public-key infrastructure for one simulated world: owns the scheme,
/// exposes sign/verify, and counts operations for the complexity benches.
class Pki {
 public:
  enum class Kind { kSymbolic, kHmac, kAbstract };

  Pki(std::uint32_t n, Kind kind, std::uint64_t seed);

  [[nodiscard]] Signature sign(NodeId signer, const SignedPayload& payload,
                               std::uint64_t nonce = 0);
  [[nodiscard]] bool verify(const Signature& sig, const SignedPayload& payload) const;

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t sign_count() const noexcept { return signs_; }
  [[nodiscard]] std::uint64_t verify_count() const noexcept { return verifies_; }
  [[nodiscard]] const SignatureScheme& scheme() const noexcept { return *scheme_; }

 private:
  std::uint32_t n_;
  std::unique_ptr<SignatureScheme> scheme_;
  std::uint64_t signs_ = 0;
  mutable std::uint64_t verifies_ = 0;
};

/// Tracks which honest-origin signatures the adversary has learned.
/// The network layer records every signature delivered to a faulty node and
/// every signature created by a faulty node; a faulty send carrying an
/// unknown honest signature is a model violation.
class KnowledgeTracker {
 public:
  void learn(const Signature& sig);
  [[nodiscard]] bool knows(const Signature& sig) const;

  [[nodiscard]] std::size_t size() const noexcept { return known_.size(); }

 private:
  std::unordered_set<std::uint64_t> known_;
};

}  // namespace crusader::crypto
