#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <limits>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "lowerbound/theorem5.hpp"
#include "runner/kllo.hpp"
#include "sim/engine.hpp"
#include "relay/flood_world.hpp"
#include "relay/topology.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_safety.hpp"

namespace crusader::runner {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Steady-state skew statistics shared by the complete and relay paths.
void fill_skew_metrics(const sim::PulseTrace& trace, const ScenarioSpec& spec,
                       ScenarioResult& result) {
  result.max_skew = trace.max_skew();
  result.min_period = trace.min_period();
  result.max_period = trace.max_period();
  util::Samples steady;
  const auto skews = trace.skews();
  for (std::size_t r = spec.warmup; r < skews.size(); ++r) steady.add(skews[r]);
  if (!steady.empty()) {
    result.steady_skew = steady.max();
    result.skew_p50 = steady.median();
    result.skew_p99 = steady.quantile(0.99);
  }
}

/// Materialize the spec's topology family. Random topologies are grown from
/// the scenario seed, so the realized graph is a pure function of
/// (base_seed, spec) — independent of threads and grid position.
relay::Topology build_topology(const ScenarioSpec& spec, std::uint64_t seed) {
  switch (spec.topology) {
    case TopologyKind::kComplete:
      return relay::Topology::complete(spec.n);
    case TopologyKind::kRing:
      return relay::Topology::ring(spec.n);
    case TopologyKind::kChordalRing:
      CS_CHECK_MSG(spec.n >= 3,
                   "chordal-ring topology requires n >= 3");
      return relay::Topology::chordal_ring(spec.n, 2);
    case TopologyKind::kRingOfCliques:
      CS_CHECK_MSG(spec.n >= 8 && spec.n % 4 == 0,
                   "ring-of-cliques topology requires n to be a multiple of "
                   "4 with at least two cliques");
      return relay::Topology::ring_of_cliques(spec.n / 4, 4, 2);
    case TopologyKind::kHypercube: {
      CS_CHECK_MSG(spec.n >= 2 && (spec.n & (spec.n - 1)) == 0,
                   "hypercube topology requires n to be a power of two");
      std::uint32_t dim = 0;
      while ((1u << dim) < spec.n) ++dim;
      return relay::Topology::hypercube(dim);
    }
    case TopologyKind::kRandomConnected:
      return relay::Topology::random_connected(spec.n, spec.f,
                                               seed ^ 0x70701063ULL);
  }
  CS_CHECK_MSG(false, "unknown topology kind");
  return relay::Topology::complete(spec.n);
}

crypto::Pki::Kind pki_kind_for(CryptoMode mode) noexcept {
  return mode == CryptoMode::kAbstract ? crypto::Pki::Kind::kAbstract
                                       : crypto::Pki::Kind::kSymbolic;
}

/// PR-2 path: the fully-connected World with Byzantine adversaries.
void run_complete_world(const ScenarioSpec& spec, const RunnerOptions& options,
                        ScenarioResult& result) {
  // Protocol constants are solved for spec.f; the world's model additionally
  // admits f_actual faulty nodes when a scenario probes beyond-resilience
  // behavior (f_actual > f).
  const auto model = spec.model();
  model.validate();
  auto world_model = model;
  world_model.f = std::max(spec.f, spec.f_actual);
  world_model.validate();
  const auto setup = baselines::make_setup(spec.protocol, model, spec.slack);
  result.feasible = setup.feasible;
  if (!setup.feasible) return;  // predicted_skew stays NaN
  result.predicted_skew = setup.predicted_skew;

  auto honest =
      baselines::make_protocol_factory(setup, static_cast<Round>(spec.rounds));

  sim::WorldConfig config;
  config.model = world_model;
  config.seed = result.seed;
  config.initial_offset = setup.initial_offset;
  config.horizon = setup.initial_offset +
                   static_cast<double>(spec.rounds + 2) * setup.round_length;
  config.clock_kind = spec.clocks;
  config.delay_kind = spec.delay;
  if (spec.custom_delay) config.custom_delay = spec.custom_delay->factory();
  config.faulty = sim::default_faulty_set(spec.f_actual);
  config.pki_kind = pki_kind_for(spec.crypto);
  config.batch = options.fast_path;

  sim::ByzantineFactory byz;
  if (spec.f_actual > 0) {
    byz = spec.st_accelerator
              ? core::make_st_accelerator_factory(spec.n - 1)
              : core::make_byzantine_factory(spec.strategy, honest,
                                             result.seed, spec.late_shift,
                                             spec.split_shift);
  }

  sim::World world(config, std::move(honest), std::move(byz));
  const sim::RunResult run = world.run();

  result.live = run.trace.live(spec.rounds);
  result.rounds_completed = run.trace.complete_rounds();
  result.messages = run.messages;
  result.events = run.events;
  result.sign_ops = run.sign_ops;
  result.verify_ops = run.verify_ops;
  result.signatures_carried = run.signatures_carried;
  result.violations = run.violations.size();

  if (result.rounds_completed > 0) {
    fill_skew_metrics(run.trace, spec, result);
    result.within_bound =
        result.max_skew <= result.predicted_skew + options.bound_tolerance;
  }
}

/// Digest of exactly the inputs relay::analyze_worst_hops reads — topology
/// family, n, f, the instantiated faulty-set size, and the topology seed for
/// the seed-grown random family (deterministic families realize the same
/// graph at every seed, so folding the seed in would kill sharing; the
/// random family realizes a different graph per seed, so leaving it out
/// would alias distinct analyses). The relay fault kind is deliberately
/// absent: the analysis never reads it, and sharing D_f across the
/// relay-fault axis is the cache's whole point.
std::uint64_t relay_analysis_key(const ScenarioSpec& spec,
                                 std::uint64_t seed) noexcept {
  std::uint64_t h = util::mix64(0x52454C4159ULL ^
                                static_cast<std::uint64_t>(spec.topology));
  h = util::mix64(h ^ spec.n);
  h = util::mix64(h ^ spec.f);
  h = util::mix64(h ^ spec.f_actual);
  if (spec.topology == TopologyKind::kRandomConnected)
    h = util::mix64(h ^ seed);
  return h;
}

/// Appendix-A path: flood the protocol over a sparse (f+1)-connected
/// topology; the bound is Theorem 17 evaluated at the effective model. A
/// dynamic spec additionally generates the churn schedule from the scenario
/// seed and gains the per-epoch d_eff recomputation and the local-skew
/// series over the round-by-round graphs.
void run_relay_world(const ScenarioSpec& spec, const RunnerOptions& options,
                     relay::EffectiveCache* cache, ScenarioResult& result) {
  const auto hop_model = spec.model();  // spec.d/u are per-hop here
  hop_model.validate();

  relay::RelayConfig config;
  config.topology = build_topology(spec, result.seed);
  config.hop_model = hop_model;
  config.seed = result.seed;
  config.clock_kind = spec.clocks;
  config.delay_kind = spec.delay;
  if (spec.custom_delay) config.custom_delay = spec.custom_delay->factory();
  // Faulty relays misbehave per the spec's relay-fault axis: crash (drop
  // everything) or the signature-legal Byzantine behaviors — max-delay,
  // reorder, selective-drop, plus the adaptive greedy-skew/search pair
  // (relay/adversary.hpp).
  config.faulty = sim::default_faulty_set(spec.f_actual);
  config.fault_kind = spec.relay_fault;
  config.pki_kind = pki_kind_for(spec.crypto);
  config.batch = options.fast_path;

  std::shared_ptr<const relay::TopologySchedule> schedule;
  if (spec.dynamic()) {
    CS_CHECK_MSG(spec.f_actual == 0 ||
                     spec.relay_fault != relay::RelayFaultKind::kCrash,
                 "dynamic relay cells need participating fault kinds: a "
                 "crashed relay under churn is a leave the schedule never "
                 "recorded");
    relay::ChurnPolicy policy;
    policy.churn_rate = spec.churn_rate;
    policy.join_batch = spec.join_batch;
    policy.reconnect = spec.reconnect;
    if (spec.f_actual > 0) {
      // Faulty relays are pinned against churn: a leave/rejoin of a
      // Byzantine node would be a crash-and-restart, a strictly weaker
      // adversary than the persistent one this cell claims to run.
      policy.pinned.assign(spec.n, false);
      for (const NodeId v : config.faulty) policy.pinned[v] = true;
    }
    // One epoch per round (plus the horizon's tail). Generation is
    // timing-free — real-time alignment happens below once the round length
    // is known.
    schedule = std::make_shared<relay::TopologySchedule>(
        relay::TopologySchedule::generate(
            config.topology, policy,
            static_cast<std::uint32_t>(spec.rounds + 2),
            result.seed ^ 0x5c4ed7ULL));
  }
  const bool dynamic = schedule != nullptr && schedule->dynamic();
  // A targeted custom delay aimed at a node that churns would silently
  // change meaning mid-run (the target is torn down and restarted, its
  // in-flight deliveries dropped); error the cell instead — target a stable
  // node (n−1 never leaves) to combine targeted delays with churn.
  if (dynamic && spec.custom_delay &&
      spec.custom_delay->kind == CustomDelaySpec::Kind::kTarget) {
    const std::vector<bool> churned = schedule->ever_churned();
    CS_CHECK_MSG(!churned[spec.custom_delay->target],
                 "custom:target node " << spec.custom_delay->target
                                       << " churns under this schedule; "
                                          "target a stable node instead");
  }
  // Gradient/jump-max are one-hop protocols: messages reach current
  // neighbors only (no flood), and the effective model IS the hop model —
  // constructed directly because effective_from_hops() would reject a
  // one-hop overlay (d_eff > 2·u_eff is a flood-specific requirement).
  const bool ncast = baselines::neighbor_cast(spec.protocol);
  config.neighbor_cast = ncast;

  // One topology analysis per scenario (memoized across the sweep when a
  // cache is supplied): the RelayEffective feeds the feasibility check, the
  // CSV columns, and (passed through) the world's hold schedule. Dynamic
  // cells bypass the memo — their analysis spans every epoch graph of a
  // seed-specific schedule, which the static key must never alias (the
  // cache CS_CHECKs this) — and recompute D_f per epoch instead.
  const auto effective =
      ncast   ? relay::RelayEffective{hop_model, 1, true}
      : dynamic ? relay::effective_from_hops(
                    hop_model,
                    relay::analyze_schedule_worst_hops(*schedule, spec.f))
      : cache ? cache->get(relay_analysis_key(spec, result.seed), config)
              : relay::compute_effective(config);
  result.d_eff = effective.model.d;
  result.u_eff = effective.model.u;
  // Alongside d_eff/u_eff (not after the run): infeasible rows must still
  // satisfy d_eff = worst_hops · d_hop.
  result.worst_hops = effective.worst_hops;
  result.d_eff_exact = effective.exact;

  const auto setup =
      baselines::make_setup(spec.protocol, effective.model, spec.slack);
  result.feasible = setup.feasible;
  if (!setup.feasible) return;
  result.predicted_skew = setup.predicted_skew;

  config.initial_offset = setup.initial_offset;
  config.horizon = setup.initial_offset +
                   static_cast<double>(spec.rounds + 2) * setup.round_length;
  if (dynamic) {
    // Delta e applies at the end of (0-based) round e, so round r runs on
    // schedule->at_epoch(r) — the same mapping local_skew_series uses.
    config.schedule = schedule;
    config.epoch_start = setup.initial_offset + setup.round_length;
    config.epoch_length = setup.round_length;
  }

  // One world run under a given attack seed, filling `out` (a copy of the
  // NaN-initialized base result) with every post-run metric. Oblivious
  // kinds ignore the attack seed entirely, so seed 0 is the historical
  // single run.
  auto run_candidate = [&](std::uint64_t attack_seed, ScenarioResult& out) {
    relay::RelayConfig candidate = config;
    candidate.attack_seed = attack_seed;
    relay::RelayWorld world(candidate,
                            baselines::make_protocol_factory(
                                setup, static_cast<Round>(spec.rounds)),
                            effective);
    const relay::RelayRunResult run = world.run();

    out.live = run.trace.live(spec.rounds);
    out.rounds_completed = run.trace.complete_rounds();
    out.messages = run.physical_messages;
    out.events = run.events;
    out.sign_ops = run.sign_ops;
    out.verify_ops = run.verify_ops;

    if (out.rounds_completed > 0) {
      fill_skew_metrics(run.trace, spec, out);
      out.within_bound =
          out.max_skew <= out.predicted_skew + options.bound_tolerance;
      const relay::TopologySchedule measure_schedule =
          dynamic ? *schedule
                  : relay::TopologySchedule::static_schedule(config.topology);
      const std::vector<double> series =
          local_skew_series(run.trace, measure_schedule);
      if (!series.empty())
        out.local_skew = *std::max_element(series.begin(), series.end());
      // Per-edge-age envelope conformance. sigma is the per-round
      // uncertainty an adjacent pair accumulates under the effective model;
      // the global allowance n·sigma is what a node that just (re)connected
      // may lag by before the protocol has had any rounds to pull it in.
      KlloEnvelopeParams params;
      params.sigma = effective.model.u +
                     (effective.model.vartheta - 1.0) * setup.round_length;
      params.global = static_cast<double>(spec.n) * params.sigma;
      params.stab_mult = spec.kllo_stab;
      const KlloConformance kllo =
          kllo_conformance(run.trace, measure_schedule, params);
      out.kllo_ratio = kllo.ratio;
      out.kllo_violations = kllo.violations;
      out.edge_age_min = kllo.edge_age_min;
    }
  };

  const bool adaptive = relay::adaptive(spec.relay_fault) && spec.f_actual > 0;
  if (!adaptive) {
    run_candidate(0, result);  // attack_iters/attack_best_seed stay 0
    return;
  }

  // Adaptive kinds: candidate 0 plays the greedy policy; search replays the
  // cell under budget−1 further seeded attack schedules and keeps the argmax
  // max_skew (≡ argmax skew_ratio — the denominator is per-cell constant;
  // strict > keeps the earliest candidate on ties, so search with any budget
  // weakly dominates greedy by construction). Candidate seeds derive from
  // the scenario seed, never wall-clock, so a killed campaign resumes to the
  // byte-identical row.
  const std::uint32_t budget =
      spec.relay_fault == relay::RelayFaultKind::kSearch
          ? std::max(spec.search_budget, 1u)
          : 1u;
  const ScenarioResult base = result;
  std::optional<ScenarioResult> best;
  double best_score = -std::numeric_limits<double>::infinity();
  std::uint64_t best_seed = 0;
  for (std::uint32_t k = 0; k < budget; ++k) {
    std::uint64_t attack_seed = 0;
    if (k > 0) {
      attack_seed = util::Rng(result.seed ^ 0xa77ac4ULL).fork(k).next_u64();
      if (attack_seed == 0) attack_seed = 1;  // 0 is the greedy sentinel
    }
    ScenarioResult candidate = base;
    run_candidate(attack_seed, candidate);
    const double score =
        candidate.rounds_completed > 0 && std::isfinite(candidate.max_skew)
            ? candidate.max_skew
            : -std::numeric_limits<double>::infinity();
    if (!best || score > best_score) {
      best = std::move(candidate);
      best_score = score;
      best_seed = attack_seed;
    }
  }
  result = *best;
  result.attack_iters = budget;
  result.attack_best_seed = best_seed;
}

/// Theorem-5 path: the three-execution adversary. predicted_skew is the
/// 2ũ/3 LOWER bound; within_bound records whether the construction realized
/// it (bound_holds).
void run_theorem5_world(const ScenarioSpec& spec, ScenarioResult& result) {
  const auto model = spec.model();
  CS_CHECK_MSG(model.n == 3, "theorem5 world requires n = 3");
  model.validate();

  const auto report =
      lowerbound::run_theorem5(spec.protocol, model, spec.rounds);
  result.feasible = report.feasible;
  if (!report.feasible) return;

  result.predicted_skew = report.bound;
  result.rounds_completed = report.rounds;
  result.live = report.rounds >= spec.rounds;
  if (report.rounds > 0) {
    result.max_skew = report.max_skew;
    // The construction reports its post-ramp maximum; that is the
    // steady-state figure for this world.
    result.steady_skew = report.max_skew;
    result.within_bound = report.bound_holds;
  }
}

/// run_scenario with an optional sweep-scoped relay analysis cache.
ScenarioResult run_scenario_cached(const ScenarioSpec& spec,
                                   const RunnerOptions& options,
                                   relay::EffectiveCache* cache) {
  ScenarioResult result;
  result.spec = spec;
  result.seed = scenario_seed(spec, options.base_seed);
  result.max_skew = kNan;
  result.steady_skew = kNan;
  result.skew_p50 = kNan;
  result.skew_p99 = kNan;
  result.min_period = kNan;
  result.max_period = kNan;
  result.predicted_skew = kNan;
  result.skew_ratio = kNan;
  result.local_skew = kNan;
  result.local_skew_ratio = kNan;
  result.d_eff = kNan;
  result.u_eff = kNan;
  result.kllo_ratio = kNan;
  result.edge_age_min = kNan;

  try {
    // A targeted custom delay aimed past the cluster would silently
    // degenerate to the all-minimum policy (no receiver ever matches);
    // error the cell instead so the adversary the row claims is the one
    // that actually ran.
    if (spec.custom_delay &&
        spec.custom_delay->kind == CustomDelaySpec::Kind::kTarget)
      CS_CHECK_MSG(spec.custom_delay->target < spec.n,
                   "custom:target node " << spec.custom_delay->target
                                         << " is out of range for n="
                                         << spec.n);
    // Arms this thread's wall-clock budget for the duration of the world
    // run; every engine the world builds (including the Theorem-5 triple
    // execution's) checks it.
    std::optional<sim::WallBudget> budget;
    if (options.budget_ms > 0.0) budget.emplace(options.budget_ms);
    switch (spec.world) {
      case WorldKind::kComplete:
        run_complete_world(spec, options, result);
        break;
      case WorldKind::kRelay:
        run_relay_world(spec, options, cache, result);
        break;
      case WorldKind::kTheorem5:
        run_theorem5_world(spec, result);
        break;
    }
    // Complete/Theorem-5 worlds are fully connected: every pair is a live
    // edge, so the gradient metric degenerates to the global one.
    if (spec.world != WorldKind::kRelay && result.rounds_completed > 0)
      result.local_skew = result.max_skew;
    if (result.rounds_completed > 0 && std::isfinite(result.max_skew) &&
        std::isfinite(result.predicted_skew) && result.predicted_skew > 0.0)
      result.skew_ratio = result.max_skew / result.predicted_skew;
    if (result.rounds_completed > 0 && std::isfinite(result.local_skew) &&
        std::isfinite(result.predicted_skew) && result.predicted_skew > 0.0)
      result.local_skew_ratio = result.local_skew / result.predicted_skew;
  } catch (const sim::BudgetExceeded&) {
    // Everything the aborted run measured is discarded, so the row's
    // content does not depend on where the budget happened to trip.
    result.timed_out = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  return result;
}

}  // namespace

std::uint64_t scenario_seed(const ScenarioSpec& spec,
                            std::uint64_t base_seed) noexcept {
  return util::Rng(base_seed).fork(spec.key()).next_u64();
}

std::vector<double> local_skew_series(const sim::PulseTrace& trace,
                                      const relay::TopologySchedule& schedule) {
  const std::size_t rounds = trace.complete_rounds();
  const std::uint32_t n = trace.n();
  std::vector<double> series(rounds, 0.0);
  // Walk the schedule incrementally: round r is measured on at_epoch(r),
  // then delta r advances the graph for round r + 1.
  relay::Topology topo = schedule.initial();
  std::vector<bool> down(n, false);
  const auto& deltas = schedule.deltas();
  for (std::size_t r = 0; r < rounds; ++r) {
    double worst = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      if (down[v] || trace.is_faulty(v)) continue;
      for (const NodeId w : topo.neighbors(v)) {
        if (w < v || down[w] || trace.is_faulty(w)) continue;
        worst = std::max(worst, std::abs(trace.pulse_time(v, r) -
                                         trace.pulse_time(w, r)));
      }
    }
    series[r] = worst;
    if (r < deltas.size()) {
      const relay::EpochDelta& delta = deltas[r];
      for (const NodeId v : delta.joins) down[v] = false;
      for (const auto& [a, b] : delta.removed) topo.remove_edge(a, b);
      for (const auto& [a, b] : delta.added) topo.add_edge(a, b);
      for (const NodeId v : delta.leaves) down[v] = true;
    }
  }
  return series;
}

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const RunnerOptions& options) {
  return run_scenario_cached(spec, options, options.shared_relay_cache);
}

void run_sweep_streamed(const std::vector<ScenarioSpec>& specs,
                        const RunnerOptions& options, const ResultSink& sink) {
  // One relay-analysis memo per sweep (scenario seeds and results are
  // unaffected — the cache only short-circuits a pure function).
  std::optional<relay::EffectiveCache> owned_cache;
  relay::EffectiveCache* cache = options.shared_relay_cache;
  if (cache == nullptr && options.relay_cache) cache = &owned_cache.emplace();

  unsigned threads = options.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(specs.size(), 1)));

  if (threads <= 1) {
    for (const auto& spec : specs)
      sink(run_scenario_cached(spec, options, cache));
    return;
  }

  // Work stealing via a shared index plus an ordered flush: scenario i's
  // seed comes from its spec digest (not the schedule), and completed
  // results wait in a bounded reorder window until every earlier index has
  // flushed — so the sink sees the exact single-thread sequence while memory
  // stays O(threads). All cross-thread state lives in ReorderWindow with its
  // lock discipline machine-checked (CS_GUARDED_BY + clang -Wthread-safety);
  // only the work-stealing index stays a bare atomic.
  struct ReorderWindow {
    util::Mutex mu;
    /// Signaled when the window advances (a flush) or the sweep aborts.
    /// _any because it waits on the annotated util::Mutex directly.
    std::condition_variable_any window_open;
    std::map<std::size_t, ScenarioResult> pending CS_GUARDED_BY(mu);
    std::size_t next_flush CS_GUARDED_BY(mu) = 0;
    std::exception_ptr failure CS_GUARDED_BY(mu);
  };
  std::atomic<std::size_t> next{0};
  ReorderWindow win;
  const std::size_t window = 2 * static_cast<std::size_t>(threads) + 8;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      auto result = run_scenario_cached(specs[i], options, cache);

      util::MutexLock lock(win.mu);
      // Explicit wait loop (not the predicate overload): the condition
      // reads guarded state, and here the analysis can see the lock is
      // held around every read. wait() releases and reacquires win.mu.
      while (win.failure == nullptr && i >= win.next_flush + window)
        win.window_open.wait(win.mu);
      if (win.failure != nullptr) return;  // sweep aborted: drop the result
      win.pending.emplace(i, std::move(result));
      while (!win.pending.empty() &&
             win.pending.begin()->first == win.next_flush) {
        // Sink runs under the lock: serialized, strictly ordered.
        try {
          sink(win.pending.begin()->second);
        } catch (...) {
          win.failure = std::current_exception();
          next.store(specs.size(), std::memory_order_relaxed);
          win.window_open.notify_all();
          return;
        }
        win.pending.erase(win.pending.begin());
        ++win.next_flush;
        win.window_open.notify_all();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  std::exception_ptr failure;
  {
    util::MutexLock lock(win.mu);
    failure = win.failure;
  }
  if (failure != nullptr) std::rethrow_exception(failure);
}

SweepReport run_sweep(const std::vector<ScenarioSpec>& specs,
                      const RunnerOptions& options) {
  SweepReport report;
  report.results.reserve(specs.size());
  run_sweep_streamed(specs, options, [&](const ScenarioResult& result) {
    report.results.push_back(result);
  });
  return report;
}

bool violates_gate(const ScenarioResult& result, double max_ratio) {
  // A cell that crashed or ran out of budget did not demonstrate anything —
  // a green gate must mean every cell actually ran.
  if (!result.error.empty() || result.timed_out) return true;
  if (!result.feasible) return false;
  // Dynamic cells: Theorem 17's premises lapse mid-churn (a re-forwarded
  // flood can exceed d_eff), so the ratio is diagnostic only; the cell
  // demonstrates correctness by surviving the churn live — which also makes
  // a fully stalled cell (0 rounds) a violation, unlike static infeasible
  // shapes.
  if (result.spec.dynamic()) return !result.live;
  if (result.rounds_completed == 0) return false;
  if (result.spec.world == WorldKind::kTheorem5) return !result.within_bound;
  // Same floating-point headroom as within_bound: a protocol that realizes
  // its bound exactly (the flood probe's skew is exactly u under split
  // delays) must not trip a --gate=1.0 on the last ulp of the division.
  return std::isfinite(result.skew_ratio) &&
         result.skew_ratio > max_ratio + 1e-9;
}

std::size_t count_gate_violations(const SweepReport& report,
                                  double max_ratio) {
  std::size_t count = 0;
  for (const auto& r : report.results)
    if (violates_gate(r, max_ratio)) ++count;
  return count;
}

void SweepSummary::add(const ScenarioResult& result) {
  ++scenarios;
  if (gate_ratio && violates_gate(result, *gate_ratio)) ++gate_violations;
  if (local_gate_ratio && std::isfinite(result.local_skew_ratio) &&
      result.local_skew_ratio > *local_gate_ratio + 1e-9)
    ++local_gate_violations;
  if (kllo_gate_ratio && std::isfinite(result.kllo_ratio) &&
      result.kllo_ratio > *kllo_gate_ratio + 1e-9)
    ++kllo_gate_violations;
  if (result.timed_out) ++timed_out;
  if (!result.error.empty()) {
    ++errors;
    return;
  }
  if (result.timed_out) return;
  if (!result.feasible) {
    ++infeasible;
    return;
  }
  auto& world = [&]() -> WorldStats& {
    for (auto& w : worlds)
      if (w.world == result.spec.world) return w;
    worlds.emplace_back();
    worlds.back().world = result.spec.world;
    return worlds.back();
  }();
  if (std::isfinite(result.skew_ratio)) world.ratio.add(result.skew_ratio);
  // Dynamic rows only: folding static cells' local ratio in would append
  // new tokens to every existing history line (see WorldStats::local).
  if (result.spec.dynamic() && std::isfinite(result.local_skew_ratio))
    world.local.add(result.local_skew_ratio);
  if (result.spec.dynamic() && std::isfinite(result.kllo_ratio))
    world.kllo.add(result.kllo_ratio);
  // Adaptive-adversary rows only: the empirical worst-case trend signal.
  // Grids without adaptive cells feed nothing, keeping history lines
  // byte-identical (see HistoryEntry's optional a* tokens).
  if (result.spec.world == WorldKind::kRelay && result.spec.f_actual > 0 &&
      relay::adaptive(result.spec.relay_fault) &&
      std::isfinite(result.skew_ratio))
    world.adaptive.add(result.skew_ratio);
  if (result.rounds_completed > 0 && !result.within_bound)
    ++world.bound_misses;
}

std::vector<ProtocolSummary> SweepReport::by_protocol() const {
  std::vector<ProtocolSummary> summaries;
  auto find = [&](baselines::ProtocolKind kind) -> ProtocolSummary& {
    for (auto& s : summaries)
      if (s.protocol == kind) return s;
    summaries.emplace_back();
    summaries.back().protocol = kind;
    return summaries.back();
  };
  for (const auto& r : results) {
    ProtocolSummary& s = find(r.spec.protocol);
    ++s.scenarios;
    if (!r.error.empty()) {
      ++s.errors;
      continue;
    }
    if (r.timed_out) {
      ++s.timed_out;
      continue;
    }
    if (!r.feasible) {
      ++s.infeasible;
      continue;
    }
    if (r.rounds_completed > 0) {
      if (std::isfinite(r.steady_skew)) s.steady_skew.add(r.steady_skew);
      s.messages.add(static_cast<double>(r.messages));
      if (!r.within_bound) ++s.bound_violations;
    }
  }
  return summaries;
}

std::size_t SweepReport::error_count() const {
  std::size_t count = 0;
  for (const auto& r : results)
    if (!r.error.empty()) ++count;
  return count;
}

}  // namespace crusader::runner
