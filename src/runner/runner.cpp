#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#include "core/adversaries.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace crusader::runner {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

std::uint64_t scenario_seed(const ScenarioSpec& spec,
                            std::uint64_t base_seed) noexcept {
  return util::Rng(base_seed).fork(spec.key()).next_u64();
}

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const RunnerOptions& options) {
  ScenarioResult result;
  result.spec = spec;
  result.seed = scenario_seed(spec, options.base_seed);
  result.max_skew = kNan;
  result.steady_skew = kNan;
  result.skew_p50 = kNan;
  result.skew_p99 = kNan;
  result.min_period = kNan;
  result.max_period = kNan;
  result.predicted_skew = kNan;

  try {
    // Protocol constants are solved for spec.f; the world's model additionally
    // admits f_actual faulty nodes when a scenario probes beyond-resilience
    // behavior (f_actual > f).
    const auto model = spec.model();
    model.validate();
    auto world_model = model;
    world_model.f = std::max(spec.f, spec.f_actual);
    world_model.validate();
    const auto setup = baselines::make_setup(spec.protocol, model, spec.slack);
    result.feasible = setup.feasible;
    if (!setup.feasible) return result;  // predicted_skew stays NaN
    result.predicted_skew = setup.predicted_skew;

    auto honest = baselines::make_protocol_factory(
        setup, static_cast<Round>(spec.rounds));

    sim::WorldConfig config;
    config.model = world_model;
    config.seed = result.seed;
    config.initial_offset = setup.initial_offset;
    config.horizon = setup.initial_offset +
                     static_cast<double>(spec.rounds + 2) * setup.round_length;
    config.clock_kind = spec.clocks;
    config.delay_kind = spec.delay;
    config.faulty = sim::default_faulty_set(spec.f_actual);

    sim::ByzantineFactory byz;
    if (spec.f_actual > 0) {
      byz = spec.st_accelerator
                ? core::make_st_accelerator_factory(spec.n - 1)
                : core::make_byzantine_factory(spec.strategy, honest,
                                               result.seed, spec.late_shift,
                                               spec.split_shift);
    }

    sim::World world(config, std::move(honest), std::move(byz));
    const sim::RunResult run = world.run();

    result.live = run.trace.live(spec.rounds);
    result.rounds_completed = run.trace.complete_rounds();
    result.messages = run.messages;
    result.events = run.events;
    result.sign_ops = run.sign_ops;
    result.verify_ops = run.verify_ops;
    result.signatures_carried = run.signatures_carried;
    result.violations = run.violations.size();

    if (result.rounds_completed > 0) {
      result.max_skew = run.trace.max_skew();
      result.min_period = run.trace.min_period();
      result.max_period = run.trace.max_period();
      util::Samples steady;
      const auto skews = run.trace.skews();
      for (std::size_t r = spec.warmup; r < skews.size(); ++r)
        steady.add(skews[r]);
      if (!steady.empty()) {
        result.steady_skew = steady.max();
        result.skew_p50 = steady.median();
        result.skew_p99 = steady.quantile(0.99);
      }
      result.within_bound =
          result.max_skew <= result.predicted_skew + options.bound_tolerance;
    }
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  return result;
}

SweepReport run_sweep(const std::vector<ScenarioSpec>& specs,
                      const RunnerOptions& options) {
  SweepReport report;
  report.results.resize(specs.size());

  unsigned threads = options.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(specs.size(), 1)));

  if (threads <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i)
      report.results[i] = run_scenario(specs[i], options);
    return report;
  }

  // Work stealing via a shared index: scenario i's result slot is i, so the
  // output order (and content — seeds come from spec digests, not schedule)
  // is independent of which worker picks it up.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      report.results[i] = run_scenario(specs[i], options);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  return report;
}

std::vector<ProtocolSummary> SweepReport::by_protocol() const {
  std::vector<ProtocolSummary> summaries;
  auto find = [&](baselines::ProtocolKind kind) -> ProtocolSummary& {
    for (auto& s : summaries)
      if (s.protocol == kind) return s;
    summaries.emplace_back();
    summaries.back().protocol = kind;
    return summaries.back();
  };
  for (const auto& r : results) {
    ProtocolSummary& s = find(r.spec.protocol);
    ++s.scenarios;
    if (!r.error.empty()) {
      ++s.errors;
      continue;
    }
    if (!r.feasible) {
      ++s.infeasible;
      continue;
    }
    if (r.rounds_completed > 0) {
      if (std::isfinite(r.steady_skew)) s.steady_skew.add(r.steady_skew);
      s.messages.add(static_cast<double>(r.messages));
      if (!r.within_bound) ++s.bound_violations;
    }
  }
  return summaries;
}

std::size_t SweepReport::error_count() const {
  std::size_t count = 0;
  for (const auto& r : results)
    if (!r.error.empty()) ++count;
  return count;
}

}  // namespace crusader::runner
