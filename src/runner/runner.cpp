#include "runner/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#include "core/adversaries.hpp"
#include "lowerbound/theorem5.hpp"
#include "relay/flood_world.hpp"
#include "relay/topology.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace crusader::runner {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Steady-state skew statistics shared by the complete and relay paths.
void fill_skew_metrics(const sim::PulseTrace& trace, const ScenarioSpec& spec,
                       ScenarioResult& result) {
  result.max_skew = trace.max_skew();
  result.min_period = trace.min_period();
  result.max_period = trace.max_period();
  util::Samples steady;
  const auto skews = trace.skews();
  for (std::size_t r = spec.warmup; r < skews.size(); ++r) steady.add(skews[r]);
  if (!steady.empty()) {
    result.steady_skew = steady.max();
    result.skew_p50 = steady.median();
    result.skew_p99 = steady.quantile(0.99);
  }
}

/// Materialize the spec's topology family. Random topologies are grown from
/// the scenario seed, so the realized graph is a pure function of
/// (base_seed, spec) — independent of threads and grid position.
relay::Topology build_topology(const ScenarioSpec& spec, std::uint64_t seed) {
  switch (spec.topology) {
    case TopologyKind::kComplete:
      return relay::Topology::complete(spec.n);
    case TopologyKind::kRing:
      return relay::Topology::ring(spec.n);
    case TopologyKind::kChordalRing:
      CS_CHECK_MSG(spec.n >= 3,
                   "chordal-ring topology requires n >= 3");
      return relay::Topology::chordal_ring(spec.n, 2);
    case TopologyKind::kRingOfCliques:
      CS_CHECK_MSG(spec.n >= 8 && spec.n % 4 == 0,
                   "ring-of-cliques topology requires n to be a multiple of "
                   "4 with at least two cliques");
      return relay::Topology::ring_of_cliques(spec.n / 4, 4, 2);
    case TopologyKind::kHypercube: {
      CS_CHECK_MSG(spec.n >= 2 && (spec.n & (spec.n - 1)) == 0,
                   "hypercube topology requires n to be a power of two");
      std::uint32_t dim = 0;
      while ((1u << dim) < spec.n) ++dim;
      return relay::Topology::hypercube(dim);
    }
    case TopologyKind::kRandomConnected:
      return relay::Topology::random_connected(spec.n, spec.f,
                                               seed ^ 0x70701063ULL);
  }
  CS_CHECK_MSG(false, "unknown topology kind");
  return relay::Topology::complete(spec.n);
}

/// PR-2 path: the fully-connected World with Byzantine adversaries.
void run_complete_world(const ScenarioSpec& spec, const RunnerOptions& options,
                        ScenarioResult& result) {
  // Protocol constants are solved for spec.f; the world's model additionally
  // admits f_actual faulty nodes when a scenario probes beyond-resilience
  // behavior (f_actual > f).
  const auto model = spec.model();
  model.validate();
  auto world_model = model;
  world_model.f = std::max(spec.f, spec.f_actual);
  world_model.validate();
  const auto setup = baselines::make_setup(spec.protocol, model, spec.slack);
  result.feasible = setup.feasible;
  if (!setup.feasible) return;  // predicted_skew stays NaN
  result.predicted_skew = setup.predicted_skew;

  auto honest =
      baselines::make_protocol_factory(setup, static_cast<Round>(spec.rounds));

  sim::WorldConfig config;
  config.model = world_model;
  config.seed = result.seed;
  config.initial_offset = setup.initial_offset;
  config.horizon = setup.initial_offset +
                   static_cast<double>(spec.rounds + 2) * setup.round_length;
  config.clock_kind = spec.clocks;
  config.delay_kind = spec.delay;
  config.faulty = sim::default_faulty_set(spec.f_actual);

  sim::ByzantineFactory byz;
  if (spec.f_actual > 0) {
    byz = spec.st_accelerator
              ? core::make_st_accelerator_factory(spec.n - 1)
              : core::make_byzantine_factory(spec.strategy, honest,
                                             result.seed, spec.late_shift,
                                             spec.split_shift);
  }

  sim::World world(config, std::move(honest), std::move(byz));
  const sim::RunResult run = world.run();

  result.live = run.trace.live(spec.rounds);
  result.rounds_completed = run.trace.complete_rounds();
  result.messages = run.messages;
  result.events = run.events;
  result.sign_ops = run.sign_ops;
  result.verify_ops = run.verify_ops;
  result.signatures_carried = run.signatures_carried;
  result.violations = run.violations.size();

  if (result.rounds_completed > 0) {
    fill_skew_metrics(run.trace, spec, result);
    result.within_bound =
        result.max_skew <= result.predicted_skew + options.bound_tolerance;
  }
}

/// Appendix-A path: flood the protocol over a sparse (f+1)-connected
/// topology; the bound is Theorem 17 evaluated at the effective model.
void run_relay_world(const ScenarioSpec& spec, const RunnerOptions& options,
                     ScenarioResult& result) {
  const auto hop_model = spec.model();  // spec.d/u are per-hop here
  hop_model.validate();

  relay::RelayConfig config;
  config.topology = build_topology(spec, result.seed);
  config.hop_model = hop_model;
  config.seed = result.seed;
  config.clock_kind = spec.clocks;
  config.delay_kind = spec.delay;
  // Faulty relays misbehave per the spec's relay-fault axis: crash (drop
  // everything) or the signature-legal Byzantine behaviors — max-delay,
  // reorder, selective-drop (relay/adversary.hpp).
  config.faulty = sim::default_faulty_set(spec.f_actual);
  config.fault_kind = spec.relay_fault;

  // One topology analysis per scenario: the RelayEffective feeds the
  // feasibility check, the CSV columns, and (passed through) the world's
  // hold schedule.
  const auto effective = relay::compute_effective(config);
  result.d_eff = effective.model.d;
  result.u_eff = effective.model.u;
  // Alongside d_eff/u_eff (not after the run): infeasible rows must still
  // satisfy d_eff = worst_hops · d_hop.
  result.worst_hops = effective.worst_hops;

  const auto setup =
      baselines::make_setup(spec.protocol, effective.model, spec.slack);
  result.feasible = setup.feasible;
  if (!setup.feasible) return;
  result.predicted_skew = setup.predicted_skew;

  config.initial_offset = setup.initial_offset;
  config.horizon = setup.initial_offset +
                   static_cast<double>(spec.rounds + 2) * setup.round_length;

  relay::RelayWorld world(
      config,
      baselines::make_protocol_factory(setup, static_cast<Round>(spec.rounds)),
      effective);
  const relay::RelayRunResult run = world.run();

  result.live = run.trace.live(spec.rounds);
  result.rounds_completed = run.trace.complete_rounds();
  result.messages = run.physical_messages;
  result.events = run.events;
  result.sign_ops = run.sign_ops;
  result.verify_ops = run.verify_ops;

  if (result.rounds_completed > 0) {
    fill_skew_metrics(run.trace, spec, result);
    result.within_bound =
        result.max_skew <= result.predicted_skew + options.bound_tolerance;
  }
}

/// Theorem-5 path: the three-execution adversary. predicted_skew is the
/// 2ũ/3 LOWER bound; within_bound records whether the construction realized
/// it (bound_holds).
void run_theorem5_world(const ScenarioSpec& spec, ScenarioResult& result) {
  const auto model = spec.model();
  CS_CHECK_MSG(model.n == 3, "theorem5 world requires n = 3");
  model.validate();

  const auto report =
      lowerbound::run_theorem5(spec.protocol, model, spec.rounds);
  result.feasible = report.feasible;
  if (!report.feasible) return;

  result.predicted_skew = report.bound;
  result.rounds_completed = report.rounds;
  result.live = report.rounds >= spec.rounds;
  if (report.rounds > 0) {
    result.max_skew = report.max_skew;
    // The construction reports its post-ramp maximum; that is the
    // steady-state figure for this world.
    result.steady_skew = report.max_skew;
    result.within_bound = report.bound_holds;
  }
}

}  // namespace

std::uint64_t scenario_seed(const ScenarioSpec& spec,
                            std::uint64_t base_seed) noexcept {
  return util::Rng(base_seed).fork(spec.key()).next_u64();
}

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const RunnerOptions& options) {
  ScenarioResult result;
  result.spec = spec;
  result.seed = scenario_seed(spec, options.base_seed);
  result.max_skew = kNan;
  result.steady_skew = kNan;
  result.skew_p50 = kNan;
  result.skew_p99 = kNan;
  result.min_period = kNan;
  result.max_period = kNan;
  result.predicted_skew = kNan;
  result.skew_ratio = kNan;
  result.d_eff = kNan;
  result.u_eff = kNan;

  try {
    switch (spec.world) {
      case WorldKind::kComplete:
        run_complete_world(spec, options, result);
        break;
      case WorldKind::kRelay:
        run_relay_world(spec, options, result);
        break;
      case WorldKind::kTheorem5:
        run_theorem5_world(spec, result);
        break;
    }
    if (result.rounds_completed > 0 && std::isfinite(result.max_skew) &&
        std::isfinite(result.predicted_skew) && result.predicted_skew > 0.0)
      result.skew_ratio = result.max_skew / result.predicted_skew;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  return result;
}

SweepReport run_sweep(const std::vector<ScenarioSpec>& specs,
                      const RunnerOptions& options) {
  SweepReport report;
  report.results.resize(specs.size());

  unsigned threads = options.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(specs.size(), 1)));

  if (threads <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i)
      report.results[i] = run_scenario(specs[i], options);
    return report;
  }

  // Work stealing via a shared index: scenario i's result slot is i, so the
  // output order (and content — seeds come from spec digests, not schedule)
  // is independent of which worker picks it up.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      report.results[i] = run_scenario(specs[i], options);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  return report;
}

std::size_t count_gate_violations(const SweepReport& report,
                                  double max_ratio) {
  std::size_t count = 0;
  for (const auto& r : report.results) {
    if (!r.error.empty() || !r.feasible || r.rounds_completed == 0) continue;
    if (r.spec.world == WorldKind::kTheorem5) {
      if (!r.within_bound) ++count;
    } else if (std::isfinite(r.skew_ratio) && r.skew_ratio > max_ratio) {
      ++count;
    }
  }
  return count;
}

std::vector<ProtocolSummary> SweepReport::by_protocol() const {
  std::vector<ProtocolSummary> summaries;
  auto find = [&](baselines::ProtocolKind kind) -> ProtocolSummary& {
    for (auto& s : summaries)
      if (s.protocol == kind) return s;
    summaries.emplace_back();
    summaries.back().protocol = kind;
    return summaries.back();
  };
  for (const auto& r : results) {
    ProtocolSummary& s = find(r.spec.protocol);
    ++s.scenarios;
    if (!r.error.empty()) {
      ++s.errors;
      continue;
    }
    if (!r.feasible) {
      ++s.infeasible;
      continue;
    }
    if (r.rounds_completed > 0) {
      if (std::isfinite(r.steady_skew)) s.steady_skew.add(r.steady_skew);
      s.messages.add(static_cast<double>(r.messages));
      if (!r.within_bound) ++s.bound_violations;
    }
  }
  return summaries;
}

std::size_t SweepReport::error_count() const {
  std::size_t count = 0;
  for (const auto& r : results)
    if (!r.error.empty()) ++count;
  return count;
}

}  // namespace crusader::runner
