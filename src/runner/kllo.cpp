#include "runner/kllo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace crusader::runner {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// 1 + log₂ n — the KLLO height term. n = 1 degenerates to 1.
[[nodiscard]] double log_term(std::uint32_t n) noexcept {
  return 1.0 + std::log2(std::max(1u, n));
}

}  // namespace

double kllo_envelope(std::uint64_t edge_age, std::uint32_t n,
                     const KlloEnvelopeParams& params) {
  const double base = params.kappa * params.sigma * log_term(n);
  const double stab =
      std::max(1.0, std::ceil(params.stab_mult * log_term(n)));
  const double decay =
      std::max(0.0, 1.0 - static_cast<double>(edge_age) / stab);
  return base + std::max(0.0, params.global - base) * decay;
}

KlloConformance kllo_conformance(const sim::PulseTrace& trace,
                                 const relay::TopologySchedule& schedule,
                                 const KlloEnvelopeParams& params) {
  KlloConformance out;
  out.ratio = kNan;
  out.edge_age_min = kNan;
  const std::size_t rounds = trace.complete_rounds();
  const std::uint32_t n = trace.n();
  if (rounds == 0) return out;

  double worst = kNan;
  double last_round_min_age = kNan;

  // Grade round r on the epoch-r graph with every live edge's current age,
  // then advance one epoch — the same mapping as local_skew_series, with
  // the EdgeAgeTracker carrying the per-edge birth bookkeeping.
  const auto grade = [&](std::size_t r, const relay::Topology& topo,
                         const std::vector<bool>& down, const auto& age_of) {
    double min_age = kNan;
    for (NodeId v = 0; v < n; ++v) {
      if (down[v] || trace.is_faulty(v)) continue;
      for (const NodeId w : topo.neighbors(v)) {
        if (w < v || down[w] || trace.is_faulty(w)) continue;
        const std::uint64_t age = age_of(v, w);
        const double env = kllo_envelope(age, n, params);
        const double skew =
            std::abs(trace.pulse_time(v, r) - trace.pulse_time(w, r));
        const double ratio = env > 0.0
                                 ? skew / env
                                 : (skew > 0.0
                                        ? std::numeric_limits<double>::infinity()
                                        : 0.0);
        if (!(ratio <= worst)) worst = ratio;  // NaN-safe max
        if (ratio > 1.0 + 1e-9) ++out.violations;
        const auto age_d = static_cast<double>(age);
        if (!(age_d >= min_age)) min_age = age_d;  // NaN-safe min
      }
    }
    if (r + 1 == rounds) last_round_min_age = min_age;
  };

  if (!schedule.dynamic()) {
    // Static fast path: every edge is live since epoch 0, so its age at
    // round r is r — no birth map needed (this path also runs the very
    // large static cells, where a per-edge map would be real memory).
    const relay::Topology& topo = schedule.initial();
    const std::vector<bool> down(n, false);
    for (std::size_t r = 0; r < rounds; ++r)
      grade(r, topo, down, [&](NodeId, NodeId) { return r; });
  } else {
    relay::EdgeAgeTracker tracker(schedule.initial());
    const auto& deltas = schedule.deltas();
    for (std::size_t r = 0; r < rounds; ++r) {
      grade(r, tracker.topology(), tracker.down(),
            [&](NodeId v, NodeId w) { return tracker.age(v, w); });
      if (r < deltas.size())
        tracker.apply(deltas[r]);
      else
        tracker.advance();
    }
  }

  out.ratio = worst;
  out.edge_age_min = last_round_min_age;
  return out;
}

}  // namespace crusader::runner
