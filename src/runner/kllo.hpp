#pragma once
// The KLLO gradient envelope (Kuhn–Lenzen–Locher–Oshman, "Optimal Gradient
// Clock Synchronization in Dynamic Networks") as a per-edge-age conformance
// check. KLLO proves that in a dynamic network the local skew across an edge
// is O(σ·log n) once the edge has been present for a stabilization period —
// before that, only the global bound (≈ n·σ) holds. The gate this module
// feeds therefore compares each live edge's per-round skew against an
// envelope parameterized by that edge's age, not a flat ratio: a freshly
// (re)appeared edge is granted the global allowance, decaying linearly to
// the O(log n) base as the edge stabilizes.
//
//   base(n)     = κ·σ·(1 + log₂ n)            — the stabilized gradient bound
//   stab(n)     = ⌈stab_mult·(1 + log₂ n)⌉    — stabilization time, in rounds
//   env(age, n) = base + (G − base)·max(0, 1 − age/stab)
//
// σ is the per-round uncertainty scale u + (ϑ − 1)·T of the model the
// protocol actually ran against, and G is the fresh-edge (global) allowance
// n·σ. `stab_mult` is the sweep axis: 1.0 is the paper-faithful default,
// larger values grant churned edges a longer settling window.

#include <cstddef>
#include <cstdint>

#include "relay/schedule.hpp"
#include "sim/trace.hpp"

namespace crusader::runner {

struct KlloEnvelopeParams {
  double sigma = 0.0;      ///< per-round uncertainty scale u + (ϑ − 1)·T
  double kappa = 1.0;      ///< constant on the O(log n) base
  double global = 0.0;     ///< fresh-edge allowance G (≈ n·σ)
  double stab_mult = 1.0;  ///< stabilization-time multiplier (sweep axis)
};

/// The envelope value for an edge that has been live `edge_age` rounds in an
/// n-node network. Pure — the gate formula, testable without a simulation.
[[nodiscard]] double kllo_envelope(std::uint64_t edge_age, std::uint32_t n,
                                   const KlloEnvelopeParams& params);

/// One run's verdict against the envelope.
struct KlloConformance {
  /// max over complete rounds and live measured edges of
  /// |p_v(r) − p_w(r)| / env(age(edge at r), n). NaN when nothing measured.
  double ratio;
  /// Round-edge pairs whose ratio exceeded 1 (+1e-9 headroom).
  std::size_t violations = 0;
  /// Minimum age over the live measured edges of the LAST complete round —
  /// the CSV's "youngest edge the verdict rests on" column. NaN when nothing
  /// measured. For a static schedule this is simply rounds − 1.
  double edge_age_min;
};

/// Replay `schedule` next to `trace` (the same round-r-on-at_epoch(r)
/// mapping as local_skew_series) and grade every live edge of every complete
/// round against the envelope at that edge's current age. Down nodes and
/// metric-excluded (faulty / ever-churned) nodes are skipped, exactly like
/// the local-skew walk. Exposed for the hand-replay tests.
[[nodiscard]] KlloConformance kllo_conformance(
    const sim::PulseTrace& trace, const relay::TopologySchedule& schedule,
    const KlloEnvelopeParams& params);

}  // namespace crusader::runner
