#pragma once
// Resumable CSV campaigns: the durable half of a 10k+-scenario sweep.
//
// A campaign is an ordered CSV file (csv_header() + one write_csv_row per
// spec, in spec order) plus a manifest — an append-only checkpoint file of
// the spec digests whose rows have been recorded, flushed every
// `checkpoint_every` rows. Because the runner's streaming sink delivers
// results in spec order, "recorded" is always a prefix of the spec list, so
// resuming is: reconcile the two files after a kill (trim the CSV back to
// the manifest's last checkpoint, or the manifest back to a truncated CSV —
// whichever is shorter survives), verify the surviving digests are exactly
// the head of the grid being resumed, replay the surviving rows into the
// caller's accumulators, and run the rest. A resumed campaign's CSV is byte
// for byte the file an uninterrupted run would have written.
//
// Timed-out rows (--budget-ms aborts) are recorded like any other row while
// the campaign runs, but resume treats them as retryable: the recorded
// prefix is cut at the first timed_out row and that cell (plus everything
// after it) re-runs, so a transient overload never bakes a permanently
// failed cell into the campaign.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "util/thread_safety.hpp"

namespace crusader::runner {

class CsvCampaign {
 public:
  struct Options {
    std::string csv_path;
    std::string manifest_path;
    /// Rows between manifest checkpoints. Rows themselves are flushed as
    /// they are written; at most this many completed rows are re-run after
    /// a kill.
    std::size_t checkpoint_every = 32;
    /// Recorded in the manifest header and verified on resume — a campaign
    /// resumed under a different seed would silently splice two different
    /// executions into one file.
    std::uint64_t base_seed = 1;
  };

  /// Minimal reconstruction of a recorded row, for replaying gates and
  /// summaries without retaining the full result. Fields the replay cannot
  /// recover (period/quantile metrics, op counts) stay at their defaults.
  using ReplayFn = std::function<void(const ScenarioResult&)>;

  /// Opens (or creates) the campaign for `specs`. When the files exist,
  /// reconciles and verifies them as described above and replays each
  /// surviving row through `replay` (when given). Throws std::runtime_error
  /// when the files are unusable: schema or seed mismatch, or recorded
  /// digests that are not a prefix of `specs` (a different grid).
  CsvCampaign(Options options, const std::vector<ScenarioSpec>& specs,
              const ReplayFn& replay = {});

  CsvCampaign(const CsvCampaign&) = delete;
  CsvCampaign& operator=(const CsvCampaign&) = delete;

  /// Number of specs already recorded; the caller runs specs[resume_index()
  /// ..] and appends each result, in order, via append().
  [[nodiscard]] std::size_t resume_index() const noexcept {
    util::MutexLock lock(mu_);
    return done_;
  }

  /// Appends the next spec's result: writes + flushes the CSV row, then
  /// checkpoints the manifest when due. Must be called in spec order (the
  /// streaming sink's contract); the spec digest is verified against the
  /// expected position and a mismatch throws.
  void append(const ScenarioResult& result);

  /// Final manifest checkpoint; call on successful completion (or a clean
  /// early stop). Deliberately NOT called by the destructor: an abandoned
  /// campaign (exception, kill) keeps its manifest at the last periodic
  /// checkpoint, and the next resume re-runs the un-checkpointed tail.
  void finish();

 private:
  void checkpoint() CS_REQUIRES(mu_);

  // The streamed runner's ordered sink already serializes append() calls
  // under its reorder-window lock, but that is a caller convention the
  // compiler cannot see. The campaign carries its own (uncontended) mutex so
  // its lock discipline is machine-checked and a future caller that streams
  // from multiple sinks is safe by construction, not by comment.
  mutable util::Mutex mu_;
  Options options_;
  std::vector<std::uint64_t> expected_keys_;  ///< spec digests, grid order
  std::size_t done_ CS_GUARDED_BY(mu_) = 0;  ///< rows recorded (CSV) so far
  /// Digests flushed to the manifest.
  std::size_t checkpointed_ CS_GUARDED_BY(mu_) = 0;
  std::ofstream csv_ CS_GUARDED_BY(mu_);
  std::ofstream manifest_ CS_GUARDED_BY(mu_);
};

}  // namespace crusader::runner
