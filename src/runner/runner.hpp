#pragma once
// Scenario-sweep runner: executes a list of ScenarioSpecs on a worker-thread
// pool and aggregates per-scenario metrics. Results are deterministic in the
// spec list and base seed — each scenario derives its own RNG stream via
// Rng::fork keyed by the spec digest, and results land in spec order — so a
// sweep's CSV is byte-identical whether it ran on 1 thread or N.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runner/scenario.hpp"
#include "util/stats.hpp"

namespace crusader::runner {

struct RunnerOptions {
  /// Root of the sweep's seed tree; scenario seeds are
  /// Rng(base_seed).fork(spec.key()).
  std::uint64_t base_seed = 1;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Absolute tolerance when checking measured skew against the theoretical
  /// bound (floating-point headroom, not a semantic slack).
  double bound_tolerance = 1e-9;
};

/// Everything measured for one scenario. Doubles are NaN when the scenario
/// was infeasible, errored, or produced no complete rounds.
struct ScenarioResult {
  ScenarioSpec spec;
  std::uint64_t seed = 0;  ///< derived world seed (recorded for replay)
  bool feasible = false;
  bool live = false;  ///< every honest node completed `rounds` pulses
  std::size_t rounds_completed = 0;
  double max_skew = 0.0;     ///< over all complete rounds
  double steady_skew = 0.0;  ///< over rounds >= warmup
  double skew_p50 = 0.0;
  double skew_p99 = 0.0;
  double min_period = 0.0;
  double max_period = 0.0;
  /// The world's applicable theoretical bound: the protocol's skew upper
  /// bound (S, S_lw, or d-scale) for kComplete, the same bound computed from
  /// the effective (d_eff, u_eff) for kRelay, and the 2ũ/3 skew LOWER bound
  /// for kTheorem5.
  double predicted_skew = 0.0;
  /// max_skew / predicted_skew. For upper-bound worlds ≤ 1 means conformant;
  /// for kTheorem5 ≥ 1 means the construction realized the bound.
  double skew_ratio = 0.0;
  /// Effective complete-graph model the relay overlay presented to the
  /// protocol (NaN for other worlds).
  double d_eff = 0.0;
  double u_eff = 0.0;
  std::uint32_t worst_hops = 0;  ///< relay D_f (0 elsewhere)
  /// kComplete/kRelay: max_skew <= predicted_skew (+tolerance).
  /// kTheorem5: the realized skew reached the lower bound (bound_holds).
  /// Only meaningful within the protocol's resilience; recorded regardless.
  bool within_bound = false;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  std::uint64_t sign_ops = 0;
  std::uint64_t verify_ops = 0;
  std::uint64_t signatures_carried = 0;
  std::size_t violations = 0;
  /// Non-empty when the world threw (the sweep keeps going).
  std::string error;
};

/// util::stats-backed cross-scenario aggregate for one protocol.
struct ProtocolSummary {
  baselines::ProtocolKind protocol = baselines::ProtocolKind::kCps;
  std::size_t scenarios = 0;
  std::size_t infeasible = 0;
  std::size_t errors = 0;
  std::size_t bound_violations = 0;  ///< feasible, ran, and exceeded bound
  util::OnlineStats steady_skew;     ///< over feasible error-free scenarios
  util::OnlineStats messages;
};

struct SweepReport {
  std::vector<ScenarioResult> results;  ///< same order as the input specs

  [[nodiscard]] std::vector<ProtocolSummary> by_protocol() const;
  [[nodiscard]] std::size_t error_count() const;
};

/// Derive the world seed for `spec` under `base_seed` (exposed for tests and
/// for reproducing a single scenario out of a sweep).
[[nodiscard]] std::uint64_t scenario_seed(const ScenarioSpec& spec,
                                          std::uint64_t base_seed) noexcept;

/// Run one scenario to completion. Never throws: failures are reported in
/// ScenarioResult::error.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          const RunnerOptions& options = {});

/// Run every spec, farming scenarios out to `options.threads` workers.
[[nodiscard]] SweepReport run_sweep(const std::vector<ScenarioSpec>& specs,
                                    const RunnerOptions& options = {});

/// Regression-gate predicate: counts feasible, completed scenarios whose
/// realized-vs-bound ratio is out of spec — skew_ratio > max_ratio for
/// upper-bound worlds, bound not realized (within_bound == false) for
/// kTheorem5. Errored/infeasible rows are not the gate's business (the
/// error-count gate covers those).
[[nodiscard]] std::size_t count_gate_violations(const SweepReport& report,
                                                double max_ratio);

}  // namespace crusader::runner
