#pragma once
// Scenario-sweep runner: executes a list of ScenarioSpecs on a worker-thread
// pool and aggregates per-scenario metrics. Results are deterministic in the
// spec list and base seed — each scenario derives its own RNG stream via
// Rng::fork keyed by the spec digest, and results land in spec order — so a
// sweep's CSV is byte-identical whether it ran on 1 thread or N.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runner/scenario.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"

namespace crusader::relay {
class EffectiveCache;
}  // namespace crusader::relay

namespace crusader::runner {

struct RunnerOptions {
  /// Root of the sweep's seed tree; scenario seeds are
  /// Rng(base_seed).fork(spec.key()).
  std::uint64_t base_seed = 1;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Absolute tolerance when checking measured skew against the theoretical
  /// bound (floating-point headroom, not a semantic slack).
  double bound_tolerance = 1e-9;
  /// Per-scenario wall-clock budget in milliseconds; 0 = unlimited. A
  /// scenario that exhausts it is aborted mid-run and reported with
  /// timed_out = true (metrics NaN) instead of hanging the sweep.
  double budget_ms = 0.0;
  /// Memoize the relay worlds' topology analysis (connectivity + worst-case
  /// hop distance) across the sweep — cells sharing (topology family, n, f,
  /// faulty set, topology seed) reuse one BFS walk, which is the ~4× setup
  /// cut on relay-fault axes. Off = recompute per scenario (bench baseline).
  bool relay_cache = true;
  /// Externally-owned cache (share across sweeps, inspect hit counts);
  /// overrides relay_cache when set. Not owned.
  relay::EffectiveCache* shared_relay_cache = nullptr;
  /// Engine fast path: batched broadcast/flood delivery through the message
  /// arena (WorldConfig::batch / RelayConfig::batch). Results are identical
  /// on or off — the toggle exists for the differential tests and the bench
  /// baseline, so it is an option, not a ScenarioSpec axis (no key/CSV
  /// impact).
  bool fast_path = true;
};

/// Everything measured for one scenario. Doubles are NaN when the scenario
/// was infeasible, errored, or produced no complete rounds.
struct ScenarioResult {
  ScenarioSpec spec;
  std::uint64_t seed = 0;  ///< derived world seed (recorded for replay)
  bool feasible = false;
  bool live = false;  ///< every honest node completed `rounds` pulses
  std::size_t rounds_completed = 0;
  double max_skew = 0.0;     ///< over all complete rounds
  double steady_skew = 0.0;  ///< over rounds >= warmup
  double skew_p50 = 0.0;
  double skew_p99 = 0.0;
  double min_period = 0.0;
  double max_period = 0.0;
  /// The world's applicable theoretical bound: the protocol's skew upper
  /// bound (S, S_lw, or d-scale) for kComplete, the same bound computed from
  /// the effective (d_eff, u_eff) for kRelay, and the 2ũ/3 skew LOWER bound
  /// for kTheorem5.
  double predicted_skew = 0.0;
  /// max_skew / predicted_skew. For upper-bound worlds ≤ 1 means conformant;
  /// for kTheorem5 ≥ 1 means the construction realized the bound.
  double skew_ratio = 0.0;
  /// Gradient (KLLO-style) metric: max over rounds of the round's worst
  /// |p_i − p_j| over *currently live* edges of that round's graph. For
  /// kComplete/kTheorem5 every pair is an edge, so it equals max_skew; for
  /// kRelay it is at most max_skew and the correctness lens for dynamic
  /// cells, where the global bound's premises lapse mid-churn.
  double local_skew = 0.0;
  /// local_skew / predicted_skew (same denominator as skew_ratio).
  double local_skew_ratio = 0.0;
  /// KLLO per-edge-age envelope conformance (runner/kllo.hpp), kRelay only
  /// (NaN elsewhere): the worst, over complete rounds and live measured
  /// edges, of |p_v − p_w| divided by the envelope at that edge's current
  /// age. ≤ 1 means every edge sat inside the envelope — including fresh
  /// edges graded against the wide settling allowance — which is the
  /// transient-vs-violation distinction a flat local ratio cannot make.
  double kllo_ratio = 0.0;
  /// Round-edge pairs whose envelope ratio exceeded 1 (kRelay, else 0).
  std::size_t kllo_violations = 0;
  /// Minimum age (rounds since appearance) over the live measured edges of
  /// the last complete round — the youngest edge the verdict rests on. For a
  /// static relay cell this is simply rounds − 1; NaN outside kRelay.
  double edge_age_min = 0.0;
  /// Effective complete-graph model the relay overlay presented to the
  /// protocol (NaN for other worlds).
  double d_eff = 0.0;
  double u_eff = 0.0;
  std::uint32_t worst_hops = 0;  ///< relay D_f (0 elsewhere)
  /// Relay only: whether worst_hops came from the exhaustive walk (true) or
  /// the budget-bounded sample (false) — the CSV column history analytics
  /// use to segment sampled cells.
  bool d_eff_exact = false;
  /// kComplete/kRelay: max_skew <= predicted_skew (+tolerance).
  /// kTheorem5: the realized skew reached the lower bound (bound_holds).
  /// Only meaningful within the protocol's resilience; recorded regardless.
  bool within_bound = false;
  /// Adaptive relay adversaries only (relay::adaptive(spec.relay_fault) and
  /// f_actual > 0; 0/null elsewhere): how many candidate attack schedules
  /// the cell ran (1 for greedy-skew, spec.search_budget for search) and the
  /// winning candidate's attack seed (0 = the greedy baseline candidate).
  /// Replaying the cell with RelayConfig::attack_seed = attack_best_seed
  /// reproduces the winning skew_ratio bit-for-bit.
  std::uint32_t attack_iters = 0;
  std::uint64_t attack_best_seed = 0;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  std::uint64_t sign_ops = 0;
  std::uint64_t verify_ops = 0;
  std::uint64_t signatures_carried = 0;
  std::size_t violations = 0;
  /// The scenario exhausted RunnerOptions::budget_ms and was aborted
  /// mid-run; metrics are NaN and error stays empty (a budget abort is a
  /// scheduling outcome, not a world failure) but the gate counts it.
  bool timed_out = false;
  /// Non-empty when the world threw (the sweep keeps going).
  std::string error;
};

/// util::stats-backed cross-scenario aggregate for one protocol.
struct ProtocolSummary {
  baselines::ProtocolKind protocol = baselines::ProtocolKind::kCps;
  std::size_t scenarios = 0;
  std::size_t infeasible = 0;
  std::size_t errors = 0;
  std::size_t timed_out = 0;         ///< aborted by the wall-clock budget
  std::size_t bound_violations = 0;  ///< feasible, ran, and exceeded bound
  util::OnlineStats steady_skew;     ///< over feasible error-free scenarios
  util::OnlineStats messages;
};

struct SweepReport {
  std::vector<ScenarioResult> results;  ///< same order as the input specs

  [[nodiscard]] std::vector<ProtocolSummary> by_protocol() const;
  [[nodiscard]] std::size_t error_count() const;
};

/// Derive the world seed for `spec` under `base_seed` (exposed for tests and
/// for reproducing a single scenario out of a sweep).
[[nodiscard]] std::uint64_t scenario_seed(const ScenarioSpec& spec,
                                          std::uint64_t base_seed) noexcept;

/// Run one scenario to completion. Never throws: failures are reported in
/// ScenarioResult::error.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          const RunnerOptions& options = {});

/// Streaming result consumer: invoked exactly once per spec, in spec order,
/// never concurrently (calls are serialized under the runner's flush lock).
using ResultSink = std::function<void(const ScenarioResult&)>;

/// Run every spec, farming scenarios out to `options.threads` workers, and
/// stream each result through `sink` in spec order as soon as it (and every
/// earlier spec) has completed. Memory stays O(threads): out-of-order
/// completions wait in a bounded reorder window and workers block when it
/// fills, so a 10k-scenario campaign never accumulates its report. A sink
/// exception aborts the sweep (no further scenarios start) and is rethrown
/// on the calling thread.
void run_sweep_streamed(const std::vector<ScenarioSpec>& specs,
                        const RunnerOptions& options, const ResultSink& sink);

/// Run every spec and accumulate the full report (run_sweep_streamed with an
/// accumulating sink — fine for grids that fit in memory).
[[nodiscard]] SweepReport run_sweep(const std::vector<ScenarioSpec>& specs,
                                    const RunnerOptions& options = {});

/// Per-round local skew: for each complete round r, the worst |p_i(r) −
/// p_j(r)| over edges of the round-r graph (schedule.at_epoch(r), down
/// nodes and metrics-excluded nodes skipped). Static topologies pass a
/// degenerate schedule. Exposed for the dynamic-world tests, which assert
/// the series exists for every complete round and never exceeds the global
/// per-round skew.
[[nodiscard]] std::vector<double> local_skew_series(
    const sim::PulseTrace& trace, const relay::TopologySchedule& schedule);

/// Regression-gate predicate for one row: errored and timed-out scenarios
/// always violate (a green gate means every cell actually ran); infeasible
/// rows never do (the protocol provably cannot run there); dynamic cells
/// violate by failing liveness (Theorem 17's premises lapse mid-churn, so
/// the ratio is diagnostic, not a gate — use SweepSummary's local gate for
/// that); completed static rows violate when their realized-vs-bound ratio
/// is out of spec — skew_ratio > max_ratio for upper-bound worlds, bound
/// not realized (within_bound == false) for kTheorem5.
[[nodiscard]] bool violates_gate(const ScenarioResult& result,
                                 double max_ratio);

/// violates_gate summed over a report.
[[nodiscard]] std::size_t count_gate_violations(const SweepReport& report,
                                                double max_ratio);

/// Streaming cross-scenario aggregate for the gate, the history file, and
/// the trend check: per-world skew_ratio stats plus failure counters,
/// accumulable one result at a time so large campaigns never retain rows.
struct SweepSummary {
  /// When set, add() also counts violates_gate(result, *gate_ratio).
  std::optional<double> gate_ratio;
  /// When set, add() also counts rows whose local_skew_ratio exceeds it
  /// (rows with no finite local ratio never count — errors and timeouts are
  /// the main gate's business). This is the world-aware gradient gate: it
  /// binds wherever the local metric is defined, including dynamic cells
  /// where the global ratio gate is suspended.
  std::optional<double> local_gate_ratio;
  /// When set, add() counts rows whose kllo_ratio exceeds it — the
  /// per-edge-age envelope gate (1.0 = the KLLO envelope itself). Binds
  /// wherever the kllo metric is defined (relay rows with completed
  /// rounds); rows without it never count.
  std::optional<double> kllo_gate_ratio;

  std::size_t scenarios = 0;
  std::size_t errors = 0;
  std::size_t timed_out = 0;
  std::size_t infeasible = 0;
  std::size_t gate_violations = 0;
  std::size_t local_gate_violations = 0;
  std::size_t kllo_gate_violations = 0;

  struct WorldStats {
    WorldKind world = WorldKind::kComplete;
    /// Over rows with a finite skew_ratio (completed, bound defined).
    util::OnlineStats ratio;
    /// Over *dynamic* rows with a finite local_skew_ratio. Static cells are
    /// deliberately excluded: their local metric would append new tokens to
    /// every existing history line, breaking byte-compatibility.
    util::OnlineStats local;
    /// Over dynamic rows with a finite kllo_ratio — same static-row
    /// exclusion (and the same optional-token history treatment) as `local`.
    util::OnlineStats kllo;
    /// Over adaptive-adversary rows (relay, f_actual > 0, greedy-skew or
    /// search) with a finite skew_ratio — the trend signal for the empirical
    /// worst-case search. Same optional-token history treatment: grids
    /// without adaptive cells keep their historical bytes.
    util::OnlineStats adaptive;
    /// Completed rows whose within_bound check failed.
    std::size_t bound_misses = 0;
  };
  /// Ordered by first appearance — deterministic for a fixed spec order.
  std::vector<WorldStats> worlds;

  void add(const ScenarioResult& result);
};

}  // namespace crusader::runner
