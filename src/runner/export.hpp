#pragma once
// Deterministic CSV / JSON serialization of sweep reports. Formatting is
// locale-independent and stable, so reports from the same sweep compare
// byte-for-byte regardless of thread count.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "runner/runner.hpp"

namespace crusader::runner {

/// The CSV header line, without trailing newline. Stable for a given build;
/// campaign resume verifies it so a schema change never splices rows of two
/// schemas into one file.
[[nodiscard]] std::string csv_header();

/// One CSV record for `result` (no header), terminated with '\n'. The
/// streaming building block: csv_header() + write_csv_row() per result ==
/// write_csv() byte for byte.
void write_csv_row(std::ostream& os, const ScenarioResult& result);

/// Header + one row per scenario, in spec order. NaN metrics render as
/// empty cells.
void write_csv(std::ostream& os, const SweepReport& report);

/// Byte offsets one past the end (i.e. past the '\n') of each complete CSV
/// record in `content`, header included, respecting quoted fields that embed
/// newlines. A trailing partial record (no terminating newline, or an
/// unclosed quote) contributes no offset — which is how campaign resume
/// finds the last intact row of a killed run's file.
[[nodiscard]] std::vector<std::size_t> csv_record_ends(
    std::string_view content);

/// Splits one CSV record (without its trailing newline) into unescaped
/// fields. Inverse of the quoting write_csv_row applies.
[[nodiscard]] std::vector<std::string> parse_csv_fields(std::string_view line);

/// JSON array of scenario objects (same fields as the CSV). NaN metrics
/// render as null.
void write_json(std::ostream& os, const SweepReport& report);

/// Convenience for tests: the CSV as a string.
[[nodiscard]] std::string to_csv(const SweepReport& report);

}  // namespace crusader::runner
