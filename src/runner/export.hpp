#pragma once
// Deterministic CSV / JSON serialization of sweep reports. Formatting is
// locale-independent and stable, so reports from the same sweep compare
// byte-for-byte regardless of thread count.

#include <iosfwd>
#include <string>

#include "runner/runner.hpp"

namespace crusader::runner {

/// Header + one row per scenario, in spec order. NaN metrics render as
/// empty cells.
void write_csv(std::ostream& os, const SweepReport& report);

/// JSON array of scenario objects (same fields as the CSV). NaN metrics
/// render as null.
void write_json(std::ostream& os, const SweepReport& report);

/// Convenience for tests: the CSV as a string.
[[nodiscard]] std::string to_csv(const SweepReport& report);

}  // namespace crusader::runner
