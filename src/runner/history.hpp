#pragma once
// skew_ratio history: one appended summary line per sweep run (max/mean
// realized-vs-bound ratio per world, plus failure counts), giving the
// per-run --gate a memory. The trend gate compares the current run's
// per-world max ratio against the most recent recorded baseline and fails
// on regression, so bound-conformance drift across PRs is caught in CI
// instead of discovered in a plot months later.
//
// The line format is deliberately plain key=value text:
//
//   seed=1 grid=123456789 cells=36 errors=0 timed_out=0
//       complete:max=0.81,mean=0.42,count=30     (one line in the file)
//
// — greppable, diffable, append-only, and free of timestamps so identical
// sweeps write identical lines.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runner/runner.hpp"

namespace crusader::runner {

/// One history line: the per-world skew_ratio summary of one sweep run.
struct HistoryEntry {
  std::uint64_t seed = 0;
  /// Digest of the expanded grid + base seed (grid_digest below). Two
  /// entries are trend-comparable only when their grids match — a larger
  /// grid's legitimately higher max ratio is not a regression of a smaller
  /// one.
  std::uint64_t grid = 0;
  std::size_t cells = 0;
  std::size_t errors = 0;
  std::size_t timed_out = 0;
  struct WorldRatio {
    WorldKind world = WorldKind::kComplete;
    double max = 0.0;
    double mean = 0.0;
    std::size_t count = 0;  ///< rows with a finite ratio
    /// local_skew_ratio stats over the world's *dynamic* cells. lcount == 0
    /// (no dynamic cells in the grid) omits the lmax/lmean/lcount tokens
    /// from the formatted line, so pre-dynamic history files and grids
    /// without churn axes keep their exact bytes.
    double lmax = 0.0;
    double lmean = 0.0;
    std::size_t lcount = 0;
    /// kllo_ratio stats over the world's dynamic cells — same optional-token
    /// treatment as the l* triple (kcount == 0 omits kmax/kmean/kcount), so
    /// pre-KLLO history files keep their exact bytes.
    double kmax = 0.0;
    double kmean = 0.0;
    std::size_t kcount = 0;
    /// skew_ratio stats over the world's adaptive-adversary cells
    /// (greedy-skew/search with instantiated faults) — the empirical
    /// worst-case trend signal. Same optional-token treatment (acount == 0
    /// omits amax/amean/acount), so pre-adaptive history files keep their
    /// exact bytes.
    double amax = 0.0;
    double amean = 0.0;
    std::size_t acount = 0;
  };
  std::vector<WorldRatio> worlds;
};

/// Order-sensitive digest of the sweep's identity: every spec key plus the
/// base seed. History entries carry it so trend checks never compare runs
/// of different grids.
[[nodiscard]] std::uint64_t grid_digest(const std::vector<ScenarioSpec>& specs,
                                        std::uint64_t base_seed) noexcept;

/// Condenses a streamed sweep summary into a history entry.
[[nodiscard]] HistoryEntry make_history_entry(const SweepSummary& summary,
                                              std::uint64_t base_seed,
                                              std::uint64_t grid = 0);

/// The entry as one history line (no trailing newline). Deterministic:
/// shortest-round-trip float formatting, worlds in first-appearance order.
[[nodiscard]] std::string format_history_line(const HistoryEntry& entry);

/// Parses one history line; nullopt for blank lines, comments (leading '#'),
/// and anything malformed.
[[nodiscard]] std::optional<HistoryEntry> parse_history_line(
    std::string_view line);

/// Last parseable entry of a history stream. nullopt when the stream holds
/// no entry (first run ever).
[[nodiscard]] std::optional<HistoryEntry> load_last_entry(std::istream& is);

/// The trend baseline for a run of grid `grid`: the last entry that is
/// comparable (same grid digest) AND complete (no errors or timeouts — a
/// run that did not fully execute understates its ratios and would turn
/// into a booby-trapped baseline). nullopt when no such entry exists.
[[nodiscard]] std::optional<HistoryEntry> load_baseline(std::istream& is,
                                                        std::uint64_t grid);

/// Appends `entry` as one line to the history file at `path`, creating it
/// with a comment header when absent. Throws std::runtime_error when the
/// file cannot be opened.
void append_history(const std::string& path, const HistoryEntry& entry);

/// Trend gate: one human-readable failure string per regression, empty =
/// pass. Fails when (a) the current run has errors or timed-out cells — a
/// run that did not fully execute cannot attest a trend — or (b) any world's
/// current max ratio exceeds the baseline's by more than `pct` percent.
/// Worlds absent from the baseline pass (no history to regress against);
/// `baseline` == nullopt passes unless (a) applies.
[[nodiscard]] std::vector<std::string> check_trend(
    const std::optional<HistoryEntry>& baseline, const HistoryEntry& current,
    double pct);

}  // namespace crusader::runner
