#include "runner/export.hpp"

#include <cmath>
#include <cstddef>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/fmt.hpp"

namespace crusader::runner {

namespace {

using util::fmt_double;
constexpr auto fmt = fmt_double;

std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

struct Field {
  std::string name;
  std::string value;   // already formatted
  bool quoted = false; // string-typed in JSON
  bool null = false;   // NaN metric: empty cell / JSON null
};

std::vector<Field> fields(const ScenarioResult& r) {
  const auto& s = r.spec;
  auto metric = [](double v) {
    const bool absent = !std::isfinite(v);  // NaN or ±inf (e.g. empty inf/sup)
    return Field{"", absent ? "" : fmt(v), false, absent};
  };
  std::vector<Field> out;
  auto add = [&](const std::string& name, Field f) {
    f.name = name;
    out.push_back(std::move(f));
  };
  add("scenario", {"", s.name(), true});
  add("protocol", {"", baselines::to_string(s.protocol), true});
  add("world", {"", to_string(s.world), true});
  add("topology",
      {"", s.world == WorldKind::kRelay ? to_string(s.topology) : "-", true});
  add("n", {"", std::to_string(s.n)});
  add("f", {"", std::to_string(s.f)});
  add("f_actual", {"", std::to_string(s.f_actual)});
  add("d", {"", fmt(s.d)});
  add("u", {"", fmt(s.u)});
  add("u_tilde", {"", fmt(s.u_tilde)});
  add("vartheta", {"", fmt(s.vartheta)});
  // Custom policies export their spelling (e.g. "custom:target:3") — the
  // placeholder DelayKind underneath would misattribute the adversary.
  add("delay", {"",
                s.custom_delay ? s.custom_delay->spelling()
                               : sim::to_string(s.delay),
                true});
  add("clocks", {"", sim::to_string(s.clocks), true});
  add("crypto", {"", to_string(s.crypto), true});
  // The two fault-behavior columns mirror each other: "-" where the axis
  // does not apply (byz is complete-only, relay_fault is relay-only),
  // "none" where it applies but no faulty node is instantiated.
  add("byz",
      {"",
       s.world != WorldKind::kComplete
           ? "-"
           : (s.f_actual == 0
                  ? "none"
                  : (s.st_accelerator ? "st-accel"
                                      : core::to_string(s.strategy))),
       true});
  add("relay_fault",
      {"",
       s.world != WorldKind::kRelay
           ? "-"
           : (s.f_actual == 0 ? "none" : relay::to_string(s.relay_fault)),
       true});
  // Dynamic axes: numeric columns are relay-only (empty / JSON null
  // elsewhere, like d_eff); the reconnect policy only means something on a
  // dynamic cell, so static rows export the "-" placeholder.
  add("churn_rate", s.world == WorldKind::kRelay
                        ? Field{"", fmt(s.churn_rate)}
                        : Field{"", "", false, true});
  add("join_batch", s.world == WorldKind::kRelay
                        ? Field{"", std::to_string(s.join_batch)}
                        : Field{"", "", false, true});
  add("reconnect",
      {"", s.dynamic() ? relay::to_string(s.reconnect) : "-", true});
  add("rounds", {"", std::to_string(s.rounds)});
  add("warmup", {"", std::to_string(s.warmup)});
  add("seed", {"", std::to_string(r.seed)});
  add("feasible", {"", r.feasible ? "1" : "0"});
  add("live", {"", r.live ? "1" : "0"});
  add("rounds_completed", {"", std::to_string(r.rounds_completed)});
  add("max_skew", metric(r.max_skew));
  add("steady_skew", metric(r.steady_skew));
  add("skew_p50", metric(r.skew_p50));
  add("skew_p99", metric(r.skew_p99));
  add("min_period", metric(r.min_period));
  add("max_period", metric(r.max_period));
  add("predicted_skew", metric(r.predicted_skew));
  add("within_bound", {"", r.within_bound ? "1" : "0"});
  add("skew_ratio", metric(r.skew_ratio));
  add("local_skew", metric(r.local_skew));
  add("local_skew_ratio", metric(r.local_skew_ratio));
  add("d_eff", metric(r.d_eff));
  add("u_eff", metric(r.u_eff));
  // Relay-only like d_eff/u_eff: empty (JSON null) where not applicable, so
  // consumers never mistake "no overlay" for a zero-hop overlay.
  add("worst_hops", s.world == WorldKind::kRelay
                        ? Field{"", std::to_string(r.worst_hops)}
                        : Field{"", "", false, true});
  // Sampled-vs-exact D_f regime as a real column (not just the CS_WARN), so
  // history analytics can segment sampled cells.
  add("d_eff_exact", s.world == WorldKind::kRelay
                         ? Field{"", r.d_eff_exact ? "1" : "0"}
                         : Field{"", "", false, true});
  // KLLO per-edge-age envelope block (runner/kllo.hpp). The metrics are
  // relay-only and NaN elsewhere, so metric() yields the empty/null cell;
  // the stab multiplier is a spec axis like churn_rate (relay-only column).
  add("edge_age_min", metric(r.edge_age_min));
  add("kllo_stab", s.world == WorldKind::kRelay
                       ? Field{"", fmt(s.kllo_stab)}
                       : Field{"", "", false, true});
  add("kllo_ratio", metric(r.kllo_ratio));
  add("kllo_violations", s.world == WorldKind::kRelay
                             ? Field{"", std::to_string(r.kllo_violations)}
                             : Field{"", "", false, true});
  // Adaptive-adversary block: populated only where the search loop ran
  // (relay, instantiated faults, greedy-skew/search), empty / JSON null
  // everywhere else so oblivious rows never read as zero-iteration attacks.
  const bool attacked = s.world == WorldKind::kRelay && s.f_actual > 0 &&
                        relay::adaptive(s.relay_fault);
  add("attack_iters", attacked ? Field{"", std::to_string(r.attack_iters)}
                               : Field{"", "", false, true});
  add("attack_best_seed",
      attacked ? Field{"", std::to_string(r.attack_best_seed)}
               : Field{"", "", false, true});
  add("messages", {"", std::to_string(r.messages)});
  add("events", {"", std::to_string(r.events)});
  add("sign_ops", {"", std::to_string(r.sign_ops)});
  add("verify_ops", {"", std::to_string(r.verify_ops)});
  add("signatures_carried", {"", std::to_string(r.signatures_carried)});
  add("violations", {"", std::to_string(r.violations)});
  add("timed_out", {"", r.timed_out ? "1" : "0"});
  add("error", {"", r.error, true});
  return out;
}

}  // namespace

std::string csv_header() {
  const auto row = fields(ScenarioResult{});
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out += ',';
    out += row[i].name;
  }
  return out;
}

void write_csv_row(std::ostream& os, const ScenarioResult& result) {
  const auto row = fields(result);
  for (std::size_t i = 0; i < row.size(); ++i)
    os << (i ? "," : "") << csv_quote(row[i].value);
  os << '\n';
}

void write_csv(std::ostream& os, const SweepReport& report) {
  os << csv_header() << '\n';
  for (const auto& r : report.results) write_csv_row(os, r);
}

std::vector<std::size_t> csv_record_ends(std::string_view content) {
  std::vector<std::size_t> ends;
  bool quoted = false;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '"') {
      // Escaped quotes ("") toggle twice — net unchanged — so plain state
      // flipping handles them.
      quoted = !quoted;
    } else if (c == '\n' && !quoted) {
      ends.push_back(i + 1);
    }
  }
  return ends;
}

std::vector<std::string> parse_csv_fields(std::string_view line) {
  std::vector<std::string> out;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        field += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(field);
      field.clear();
    } else {
      field += c;
    }
  }
  out.push_back(field);
  return out;
}

void write_json(std::ostream& os, const SweepReport& report) {
  os << "[\n";
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const auto row = fields(report.results[i]);
    os << "  {";
    for (std::size_t j = 0; j < row.size(); ++j) {
      os << (j ? ", " : "") << json_quote(row[j].name) << ": ";
      if (row[j].null)
        os << "null";
      else if (row[j].quoted)
        os << json_quote(row[j].value);
      else
        os << row[j].value;
    }
    os << (i + 1 < report.results.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

std::string to_csv(const SweepReport& report) {
  std::ostringstream os;
  write_csv(os, report);
  return os.str();
}

}  // namespace crusader::runner
