#pragma once
// Declarative scenario descriptions for parameter sweeps: one ScenarioSpec
// fully determines a world (protocol × model × adversary × schedule), and a
// SweepGrid expands axis lists into the cross-product of specs in a fixed,
// documented order so that sweep output is stable across runs and machines.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/world.hpp"

namespace crusader::runner {

/// One fully-specified simulation scenario. Everything influencing the run is
/// in here (plus the sweep's base seed) — two equal specs produce bitwise
/// identical results.
struct ScenarioSpec {
  baselines::ProtocolKind protocol = baselines::ProtocolKind::kCps;
  std::uint32_t n = 4;
  /// Fault tolerance the protocol is parameterized for (model.f).
  std::uint32_t f = 0;
  /// Byzantine nodes actually instantiated (usually == f; benches that probe
  /// beyond-resilience behavior set f_actual > f).
  std::uint32_t f_actual = 0;
  double d = 1.0;
  double u = 0.05;
  double u_tilde = 0.05;
  double vartheta = 1.01;
  sim::DelayKind delay = sim::DelayKind::kRandom;
  sim::ClockKind clocks = sim::ClockKind::kSpread;
  /// Byzantine behavior; only consulted when f_actual > 0.
  core::ByzStrategy strategy = core::ByzStrategy::kCrash;
  /// When true (and f_actual > 0), runs the ST certificate-acceleration
  /// attack (all faulty nodes target node n-1) instead of `strategy`.
  bool st_accelerator = false;
  double late_shift = 0.0;
  double split_shift = 0.0;
  std::size_t rounds = 20;
  /// Rounds skipped before steady-state metrics.
  std::size_t warmup = 5;
  /// Slack multiplier forwarded to make_setup's constant solver.
  double slack = 1.0;

  [[nodiscard]] sim::ModelParams model() const;

  /// Human-readable id, e.g. "CPS n=7 f=3 vt=1.01 u=0.05 delay=random
  /// byz=split". Unique per distinct spec in practice; used as the CSV key.
  [[nodiscard]] std::string name() const;

  /// Stable 64-bit digest of every axis. Used to derive the per-scenario RNG
  /// stream, so a scenario's seed does not depend on its position in the
  /// grid (inserting scenarios never reshuffles others' randomness).
  [[nodiscard]] std::uint64_t key() const noexcept;
};

/// Axis lists expanded into the cross product of ScenarioSpecs. Expansion
/// order (outer to inner): protocol, n, fault load, vartheta, u, delay,
/// strategy. Fault-free grid points ignore the strategy axis (one spec, not
/// one per strategy).
struct SweepGrid {
  std::vector<baselines::ProtocolKind> protocols{
      baselines::ProtocolKind::kCps};
  std::vector<std::uint32_t> ns{4};
  /// Faulty-node counts. kMaxResilience means "this protocol's optimal
  /// resilience at this n": ⌈n/2⌉−1 for CPS and Srikanth–Toueg, ⌈n/3⌉−1 for
  /// Lynch–Welch.
  std::vector<std::int64_t> fault_loads{0};
  std::vector<double> varthetas{1.01};
  std::vector<double> us{0.05};
  std::vector<sim::DelayKind> delays{sim::DelayKind::kRandom};
  std::vector<core::ByzStrategy> strategies{core::ByzStrategy::kCrash};
  double d = 1.0;
  sim::ClockKind clocks = sim::ClockKind::kSpread;
  std::size_t rounds = 20;
  std::size_t warmup = 5;
  double slack = 1.0;

  static constexpr std::int64_t kMaxResilience = -1;

  [[nodiscard]] std::vector<ScenarioSpec> expand() const;
};

/// Resilience bound for `protocol` at `n` (signed bound for CPS/ST, plain
/// bound for LW).
[[nodiscard]] std::uint32_t max_resilience(baselines::ProtocolKind protocol,
                                           std::uint32_t n) noexcept;

}  // namespace crusader::runner
