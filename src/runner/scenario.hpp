#pragma once
// Declarative scenario descriptions for parameter sweeps: one ScenarioSpec
// fully determines a world (world kind × protocol × model × adversary ×
// schedule), and a SweepGrid expands axis lists into the cross-product of
// specs in a fixed, documented order so that sweep output is stable across
// runs and machines.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "relay/adversary.hpp"
#include "relay/schedule.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/world.hpp"

namespace crusader::runner {

/// Which simulation world executes a scenario.
///  * kComplete — the standard fully-connected World (PR-2 behaviour).
///  * kRelay — the Appendix-A sparse-network translation: the protocol runs
///    over a (f+1)-connected topology via path-balanced flooding, with
///    spec.d / spec.u reinterpreted as the per-hop d_hop / u_hop and the
///    protocol configured with the effective (d_eff, u_eff).
///  * kTheorem5 — the Theorem-5 lower-bound construction (three-execution
///    adversary, n = 3); spec.u_tilde is the ũ the adversary exploits and
///    spec.rounds is the construction's target round count.
enum class WorldKind { kComplete, kRelay, kTheorem5 };

/// Topology family for WorldKind::kRelay.
///  * kChordalRing — the circulant C_n(1, 2): the ring plus stride-2 chords,
///    4-connected for n ≥ 6 so it survives up to 3 faults while staying
///    degree-4 sparse.
///  * kRingOfCliques — n/4 cliques of size 4 joined by 2 disjoint bridges
///    per junction ("balanced paths", EXPERIMENTS E11); requires n ≡ 0
///    (mod 4), n ≥ 8, and survives up to 2·bridges − 1 = 3 faults.
enum class TopologyKind {
  kComplete,
  kRing,
  kChordalRing,
  kRingOfCliques,
  kHypercube,
  kRandomConnected
};

/// Signature-cost model for a scenario.
///  * kReal — SHA-256-backed payload hashing (the default, PR-2 behaviour:
///    crypto::Pki::Kind::kSymbolic).
///  * kAbstract — unforgeability semantics without hashing bytes
///    (crypto::Pki::Kind::kAbstract): sign/verify are registry operations
///    over a cheap context hash. Same op counts and protocol behaviour, far
///    cheaper per message — the large-n sweep mode.
enum class CryptoMode { kReal, kAbstract };

[[nodiscard]] const char* to_string(WorldKind kind);
[[nodiscard]] const char* to_string(TopologyKind kind);
[[nodiscard]] const char* to_string(CryptoMode mode);

// CLI-facing parsers (shared by sweep_cli and the tests that assert every
// enumerator stays reachable from the command line). Each accepts exactly the
// to_string spellings plus documented aliases; unknown strings yield nullopt.
[[nodiscard]] std::optional<WorldKind> parse_world(std::string_view s);
[[nodiscard]] std::optional<TopologyKind> parse_topology(std::string_view s);
[[nodiscard]] std::optional<baselines::ProtocolKind> parse_protocol(
    std::string_view s);
[[nodiscard]] std::optional<sim::DelayKind> parse_delay_kind(
    std::string_view s);
/// ClockKind::kCustom is intentionally not parseable: it requires a
/// caller-supplied clock vector that cannot come from a flag.
[[nodiscard]] std::optional<sim::ClockKind> parse_clock_kind(
    std::string_view s);
[[nodiscard]] std::optional<core::ByzStrategy> parse_byz_strategy(
    std::string_view s);
[[nodiscard]] std::optional<relay::RelayFaultKind> parse_relay_fault(
    std::string_view s);
[[nodiscard]] std::optional<CryptoMode> parse_crypto_mode(std::string_view s);
[[nodiscard]] std::optional<relay::ReconnectPolicy> parse_reconnect(
    std::string_view s);

/// CLI spelling for WorldConfig::custom_delay / RelayConfig::custom_delay —
/// the delay policies that have no DelayKind enumerator:
///   "custom:fixed:<fraction>"  every delay at lo + fraction·(hi − lo),
///                              fraction ∈ [0, 1]
///   "custom:alternate"         alternate min/max per message
///   "custom:target:<node>"     one receiver at max delay, the rest at min
///                              (SecureTime-style targeted delay)
/// A parsed spec is a value (digestable, printable, comparable); factory()
/// builds the policy factory the world configs consume.
struct CustomDelaySpec {
  enum class Kind { kFixed, kAlternate, kTarget };
  Kind kind = Kind::kFixed;
  double fraction = 0.5;      ///< kFixed only
  std::uint32_t target = 0;   ///< kTarget only

  [[nodiscard]] std::string spelling() const;
  [[nodiscard]] std::function<std::unique_ptr<sim::DelayPolicy>()> factory()
      const;
  [[nodiscard]] bool operator==(const CustomDelaySpec&) const = default;
};

/// Parses the "custom:..." spellings above; nullopt for anything else
/// (unknown policy name, missing/garbage/out-of-range parameter).
[[nodiscard]] std::optional<CustomDelaySpec> parse_custom_delay(
    std::string_view s);

// Strict full-string numeric parses for CLI flags: unlike bare std::stod /
// std::stoul they reject empty strings, trailing garbage ("1.5x"), signs on
// unsigned targets ("-3" silently wraps through stoul), inf/nan, and
// overflow — returning nullopt instead of throwing or half-parsing, so the
// CLI can exit 2 naming the offending flag.
[[nodiscard]] std::optional<double> parse_double_strict(std::string_view s);
[[nodiscard]] std::optional<std::uint64_t> parse_u64_strict(
    std::string_view s);

/// One fully-specified simulation scenario. Everything influencing the run is
/// in here (plus the sweep's base seed) — two equal specs produce bitwise
/// identical results.
struct ScenarioSpec {
  WorldKind world = WorldKind::kComplete;
  baselines::ProtocolKind protocol = baselines::ProtocolKind::kCps;
  std::uint32_t n = 4;
  /// Fault tolerance the protocol is parameterized for (model.f).
  std::uint32_t f = 0;
  /// Byzantine nodes actually instantiated (usually == f; benches that probe
  /// beyond-resilience behavior set f_actual > f). Relay worlds crash these
  /// nodes (they neither relay nor speak); kTheorem5 ignores it — the
  /// construction itself realizes the faulty node.
  std::uint32_t f_actual = 0;
  /// End-to-end delay bound; per-hop d_hop when world == kRelay.
  double d = 1.0;
  /// Delay uncertainty; per-hop u_hop when world == kRelay.
  double u = 0.05;
  /// Faulty-link uncertainty ũ ∈ [u, d]; the construction's ũ for kTheorem5.
  double u_tilde = 0.05;
  double vartheta = 1.01;
  /// Relay-only: topology family the flood overlay runs on. kHypercube
  /// requires n to be a power of two; kRandomConnected draws a minimal
  /// (f+1)-connected graph from the scenario's seed.
  TopologyKind topology = TopologyKind::kComplete;
  sim::DelayKind delay = sim::DelayKind::kRandom;
  /// When set, overrides `delay` with the custom policy it describes (the
  /// CLI's "--delays=custom:..." axis values).
  std::optional<CustomDelaySpec> custom_delay;
  sim::ClockKind clocks = sim::ClockKind::kSpread;
  /// Byzantine behavior; only consulted when f_actual > 0 (kComplete only).
  core::ByzStrategy strategy = core::ByzStrategy::kCrash;
  /// Relay-only: how faulty relays misbehave (crash / max-delay / reorder /
  /// selective-drop / greedy-skew / search); only consulted when
  /// f_actual > 0.
  relay::RelayFaultKind relay_fault = relay::RelayFaultKind::kCrash;
  /// kSearch only: how many candidate attack schedules the runner tries per
  /// cell (candidate 0 plays greedy-skew, so search weakly dominates it by
  /// construction). Folds into key() only for kSearch cells — every other
  /// spec keeps its historical digest regardless of this value.
  std::uint32_t search_budget = 8;
  /// When true (and f_actual > 0), runs the ST certificate-acceleration
  /// attack (all faulty nodes target node n-1) instead of `strategy`.
  bool st_accelerator = false;
  double late_shift = 0.0;
  double split_shift = 0.0;
  /// Pulse rounds to run; the target_rounds of the kTheorem5 construction.
  std::size_t rounds = 20;
  /// Rounds skipped before steady-state metrics.
  std::size_t warmup = 5;
  /// Slack multiplier forwarded to make_setup's constant solver.
  double slack = 1.0;
  /// Signature-cost model (real SHA-256 hashing vs abstract registry
  /// semantics). Behaviour-preserving by construction, so the default stays
  /// kReal and only kAbstract folds into key() — existing digests, seeds,
  /// and history files are untouched.
  CryptoMode crypto = CryptoMode::kReal;
  /// Dynamic-network axes (kRelay only; inert defaults everywhere else).
  /// churn_rate is the expected fraction of live edges rewired per round and
  /// join_batch the nodes leaving (rejoining one round later) per round; the
  /// reconnect policy shapes the replacement edges. Like the crypto axis
  /// these fold into key() only when active, so every static spec keeps its
  /// historical digest, seed, and history lines bit-for-bit.
  double churn_rate = 0.0;
  std::uint32_t join_batch = 0;
  relay::ReconnectPolicy reconnect = relay::ReconnectPolicy::kRandom;
  /// KLLO stabilization-time multiplier (runner/kllo.hpp): scales the
  /// settling window the per-edge-age envelope grants a freshly (re)appeared
  /// edge. Meaningful on dynamic cells only; like the churn axes it folds
  /// into key() only when active AND non-default, so every existing digest
  /// is byte-preserved.
  double kllo_stab = 1.0;

  /// Whether this cell runs on a time-varying topology.
  [[nodiscard]] bool dynamic() const noexcept {
    return world == WorldKind::kRelay && (churn_rate > 0.0 || join_batch > 0);
  }

  [[nodiscard]] sim::ModelParams model() const;

  /// Human-readable id, e.g. "CPS n=7 f=3 vt=1.01 u=0.05 delay=random
  /// byz=split" or "relay[hypercube] CPS n=8 ...". Unique per distinct spec
  /// in practice; used as the CSV key.
  [[nodiscard]] std::string name() const;

  /// Stable 64-bit digest of every axis. Used to derive the per-scenario RNG
  /// stream, so a scenario's seed does not depend on its position in the
  /// grid (inserting scenarios never reshuffles others' randomness).
  [[nodiscard]] std::uint64_t key() const noexcept;
};

/// Axis lists expanded into the cross product of ScenarioSpecs. Expansion
/// order (outer to inner): world, protocol, n, topology, fault load,
/// vartheta, u, u_tilde, delay, clocks, strategy/relay-fault, churn. Axes
/// that a world cannot express collapse to one spec instead of multiplying:
///  * fault-free grid points ignore the strategy and relay-fault axes;
///  * kComplete ignores the topology and relay-fault axes;
///  * kRelay ignores the strategy axis (faulty relays misbehave per the
///    relay-fault axis instead) and the ũ axis (the overlay has no faulty
///    links; ũ_eff tracks u_eff);
///  * kTheorem5 pins n = 3, f = 1 and ignores the fault, delay, clocks,
///    topology, strategy, and relay-fault axes (the construction owns all
///    of those).
/// Collapsed duplicates are deduplicated by spec digest.
struct SweepGrid {
  std::vector<WorldKind> worlds{WorldKind::kComplete};
  std::vector<baselines::ProtocolKind> protocols{
      baselines::ProtocolKind::kCps};
  std::vector<std::uint32_t> ns{4};
  /// Faulty-node counts. kMaxResilience means "this protocol's optimal
  /// resilience at this n": ⌈n/2⌉−1 for CPS and Srikanth–Toueg, ⌈n/3⌉−1 for
  /// Lynch–Welch — additionally capped by the topology's connectivity for
  /// relay worlds (a ring can never survive two faults).
  std::vector<std::int64_t> fault_loads{0};
  std::vector<double> varthetas{1.01};
  std::vector<double> us{0.05};
  /// ũ axis. Empty means "track u" (ũ = u at every grid point, the PR-2
  /// behaviour); explicit values are clamped up to the cell's u so every
  /// expanded spec satisfies the model's ũ ∈ [u, d] requirement.
  std::vector<double> u_tildes{};
  std::vector<sim::DelayKind> delays{sim::DelayKind::kRandom};
  /// Custom delay policies appended to the delay axis after the DelayKind
  /// values (kTheorem5 collapses them like the rest of the delay axis).
  std::vector<CustomDelaySpec> custom_delays{};
  std::vector<sim::ClockKind> clock_kinds{sim::ClockKind::kSpread};
  std::vector<TopologyKind> topologies{TopologyKind::kComplete};
  std::vector<core::ByzStrategy> strategies{core::ByzStrategy::kCrash};
  /// Relay-fault behaviors for faulty kRelay grid points. The adaptive kinds
  /// (greedy-skew, search) additionally multiply by the dynamic churn axes —
  /// an adaptive adversary under churn is exactly the regime the
  /// observation-refresh machinery exists for — while the oblivious kinds
  /// keep their historical static-only cells.
  std::vector<relay::RelayFaultKind> relay_faults{
      relay::RelayFaultKind::kCrash};
  /// Search budgets (candidate attack schedules per kSearch cell). The axis
  /// multiplies only kSearch grid points; every other kind pins the spec's
  /// search_budget to the default so the axis collapses via digest dedup.
  std::vector<std::uint32_t> search_budgets{8};
  /// Crypto-mode axis (kTheorem5 collapses to kReal — the construction's
  /// adversary forges nothing, so the axis has no effect there).
  std::vector<CryptoMode> cryptos{CryptoMode::kReal};
  /// Dynamic-network axes, expanded innermost. Only fault-free kRelay grid
  /// points multiply by them (churn and Byzantine relays are separate
  /// regimes); every other point — and every inert combination — collapses
  /// to the single static cell via digest dedup.
  std::vector<double> churn_rates{0.0};
  std::vector<std::uint32_t> join_batches{0};
  std::vector<relay::ReconnectPolicy> reconnects{
      relay::ReconnectPolicy::kRandom};
  /// KLLO stabilization-multiplier axis. Multiplies only the *dynamic* churn
  /// points (the envelope's edge-age decay is degenerate on a static graph);
  /// inert combinations normalize to 1.0 and collapse via digest dedup.
  std::vector<double> kllo_stabs{1.0};
  double d = 1.0;
  std::size_t rounds = 20;
  std::size_t warmup = 5;
  double slack = 1.0;

  static constexpr std::int64_t kMaxResilience = -1;

  [[nodiscard]] std::vector<ScenarioSpec> expand() const;
};

/// Resilience bound for `protocol` at `n` (signed bound for CPS/ST, plain
/// bound for LW).
[[nodiscard]] std::uint32_t max_resilience(baselines::ProtocolKind protocol,
                                           std::uint32_t n) noexcept;

/// Largest f a relay world on this topology family can be asked to survive:
/// connectivity − 1 (1 for a ring, 3 for the stride-2 chordal ring and the
/// 4/2 ring of cliques, log2(n) − 1 for a hypercube, n − 2 for
/// complete/random — random graphs are grown until (f+1)-connected, so only
/// the trivial cap applies).
[[nodiscard]] std::uint32_t max_topology_faults(TopologyKind kind,
                                                std::uint32_t n) noexcept;

}  // namespace crusader::runner
