#include "runner/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <sstream>

#include "util/rng.hpp"

namespace crusader::runner {

namespace {

/// Fold one 64-bit word into a running digest (splitmix-based; order
/// sensitive, which is what we want for a field-by-field hash).
std::uint64_t fold(std::uint64_t h, std::uint64_t word) noexcept {
  return util::mix64(h ^ (word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

std::uint64_t fold(std::uint64_t h, double value) noexcept {
  return fold(h, std::bit_cast<std::uint64_t>(value));
}

}  // namespace

sim::ModelParams ScenarioSpec::model() const {
  sim::ModelParams m;
  m.n = n;
  m.f = f;
  m.d = d;
  m.u = u;
  m.u_tilde = u_tilde;
  m.vartheta = vartheta;
  return m;
}

std::string ScenarioSpec::name() const {
  std::ostringstream os;
  os << baselines::to_string(protocol) << " n=" << n << " f=" << f;
  if (f_actual != f) os << " f_actual=" << f_actual;
  os << " vt=" << vartheta << " u=" << u;
  if (u_tilde != u) os << " ut=" << u_tilde;
  if (d != 1.0) os << " d=" << d;
  os << " delay=" << sim::to_string(delay);
  if (clocks != sim::ClockKind::kSpread)
    os << " clocks=" << sim::to_string(clocks);
  if (f_actual > 0) {
    os << " byz=" << (st_accelerator ? "st-accel" : core::to_string(strategy));
    if (late_shift != 0.0) os << " late=" << late_shift;
    if (split_shift != 0.0) os << " shift=" << split_shift;
  }
  return os.str();
}

std::uint64_t ScenarioSpec::key() const noexcept {
  std::uint64_t h = 0x435053u;  // "CPS"
  h = fold(h, static_cast<std::uint64_t>(protocol));
  h = fold(h, static_cast<std::uint64_t>(n));
  h = fold(h, static_cast<std::uint64_t>(f));
  h = fold(h, static_cast<std::uint64_t>(f_actual));
  h = fold(h, d);
  h = fold(h, u);
  h = fold(h, u_tilde);
  h = fold(h, vartheta);
  h = fold(h, static_cast<std::uint64_t>(delay));
  h = fold(h, static_cast<std::uint64_t>(clocks));
  h = fold(h, static_cast<std::uint64_t>(strategy));
  h = fold(h, static_cast<std::uint64_t>(st_accelerator));
  h = fold(h, late_shift);
  h = fold(h, split_shift);
  h = fold(h, static_cast<std::uint64_t>(rounds));
  h = fold(h, static_cast<std::uint64_t>(warmup));
  h = fold(h, slack);
  return h;
}

std::uint32_t max_resilience(baselines::ProtocolKind protocol,
                             std::uint32_t n) noexcept {
  return protocol == baselines::ProtocolKind::kLynchWelch
             ? sim::ModelParams::max_faults_plain(n)
             : sim::ModelParams::max_faults_signed(n);
}

std::vector<ScenarioSpec> SweepGrid::expand() const {
  std::vector<ScenarioSpec> specs;
  for (const auto protocol : protocols) {
    for (const auto n : ns) {
      // Resolve fault loads up front and dedupe: kMaxResilience can collapse
      // onto an explicit count (e.g. LW at n = 3 has max resilience 0), and
      // duplicate specs would run — and report — the same world twice.
      std::vector<std::uint32_t> fault_counts;
      for (const auto load : fault_loads) {
        const std::uint32_t faults =
            load == kMaxResilience ? max_resilience(protocol, n)
                                   : static_cast<std::uint32_t>(load);
        if (std::find(fault_counts.begin(), fault_counts.end(), faults) ==
            fault_counts.end())
          fault_counts.push_back(faults);
      }
      for (const std::uint32_t faults : fault_counts) {
        for (const double vartheta : varthetas) {
          for (const double u : us) {
            for (const auto delay : delays) {
              ScenarioSpec spec;
              spec.protocol = protocol;
              spec.n = n;
              spec.f = faults;
              spec.f_actual = faults;
              spec.d = d;
              spec.u = u;
              spec.u_tilde = u;
              spec.vartheta = vartheta;
              spec.delay = delay;
              spec.clocks = clocks;
              spec.rounds = rounds;
              spec.warmup = warmup;
              spec.slack = slack;
              if (faults == 0) {
                specs.push_back(spec);  // strategy axis is irrelevant
                continue;
              }
              for (const auto strategy : strategies) {
                spec.strategy = strategy;
                specs.push_back(spec);
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

}  // namespace crusader::runner
