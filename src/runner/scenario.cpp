#include "runner/scenario.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace crusader::runner {

namespace {

/// Fold one 64-bit word into a running digest (splitmix-based; order
/// sensitive, which is what we want for a field-by-field hash).
std::uint64_t fold(std::uint64_t h, std::uint64_t word) noexcept {
  return util::mix64(h ^ (word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

std::uint64_t fold(std::uint64_t h, double value) noexcept {
  return fold(h, std::bit_cast<std::uint64_t>(value));
}

}  // namespace

const char* to_string(WorldKind kind) {
  switch (kind) {
    case WorldKind::kComplete: return "complete";
    case WorldKind::kRelay: return "relay";
    case WorldKind::kTheorem5: return "theorem5";
  }
  return "?";
}

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kChordalRing: return "chordal-ring";
    case TopologyKind::kRingOfCliques: return "ring-of-cliques";
    case TopologyKind::kHypercube: return "hypercube";
    case TopologyKind::kRandomConnected: return "random";
  }
  return "?";
}

const char* to_string(CryptoMode mode) {
  switch (mode) {
    case CryptoMode::kReal: return "real";
    case CryptoMode::kAbstract: return "abstract";
  }
  return "?";
}

std::optional<WorldKind> parse_world(std::string_view s) {
  if (s == "complete" || s == "flat") return WorldKind::kComplete;
  if (s == "relay" || s == "sparse") return WorldKind::kRelay;
  if (s == "theorem5" || s == "thm5" || s == "lower-bound")
    return WorldKind::kTheorem5;
  return std::nullopt;
}

std::optional<TopologyKind> parse_topology(std::string_view s) {
  if (s == "complete") return TopologyKind::kComplete;
  if (s == "ring") return TopologyKind::kRing;
  if (s == "chordal-ring" || s == "chordal") return TopologyKind::kChordalRing;
  if (s == "ring-of-cliques" || s == "cliques")
    return TopologyKind::kRingOfCliques;
  if (s == "hypercube") return TopologyKind::kHypercube;
  if (s == "random") return TopologyKind::kRandomConnected;
  return std::nullopt;
}

std::optional<baselines::ProtocolKind> parse_protocol(std::string_view s) {
  if (s == "cps" || s == "CPS") return baselines::ProtocolKind::kCps;
  if (s == "lw" || s == "lynch-welch")
    return baselines::ProtocolKind::kLynchWelch;
  if (s == "st" || s == "srikanth-toueg")
    return baselines::ProtocolKind::kSrikanthToueg;
  if (s == "probe" || s == "flood-probe")
    return baselines::ProtocolKind::kFloodProbe;
  if (s == "gradient") return baselines::ProtocolKind::kGradient;
  if (s == "jump-max" || s == "jumpmax")
    return baselines::ProtocolKind::kJumpMax;
  return std::nullopt;
}

std::optional<sim::DelayKind> parse_delay_kind(std::string_view s) {
  if (s == "max") return sim::DelayKind::kMax;
  if (s == "min") return sim::DelayKind::kMin;
  if (s == "random") return sim::DelayKind::kRandom;
  if (s == "split") return sim::DelayKind::kSplit;
  return std::nullopt;
}

std::optional<sim::ClockKind> parse_clock_kind(std::string_view s) {
  if (s == "nominal") return sim::ClockKind::kNominal;
  if (s == "spread") return sim::ClockKind::kSpread;
  if (s == "random-walk" || s == "walk") return sim::ClockKind::kRandomWalk;
  return std::nullopt;  // kCustom needs a clock vector, not a flag
}

std::optional<relay::RelayFaultKind> parse_relay_fault(std::string_view s) {
  if (s == "crash") return relay::RelayFaultKind::kCrash;
  if (s == "max-delay" || s == "delay") return relay::RelayFaultKind::kMaxDelay;
  if (s == "reorder") return relay::RelayFaultKind::kReorder;
  if (s == "selective-drop" || s == "drop")
    return relay::RelayFaultKind::kSelectiveDrop;
  if (s == "greedy-skew" || s == "greedy")
    return relay::RelayFaultKind::kGreedySkew;
  if (s == "search") return relay::RelayFaultKind::kSearch;
  return std::nullopt;
}

std::optional<CryptoMode> parse_crypto_mode(std::string_view s) {
  if (s == "real") return CryptoMode::kReal;
  if (s == "abstract") return CryptoMode::kAbstract;
  return std::nullopt;
}

std::optional<relay::ReconnectPolicy> parse_reconnect(std::string_view s) {
  if (s == "random") return relay::ReconnectPolicy::kRandom;
  if (s == "preferential" || s == "pref")
    return relay::ReconnectPolicy::kPreferential;
  if (s == "ring-repair" || s == "repair")
    return relay::ReconnectPolicy::kRingRepair;
  return std::nullopt;
}

std::string CustomDelaySpec::spelling() const {
  switch (kind) {
    case Kind::kAlternate:
      return "custom:alternate";
    case Kind::kTarget:
      return "custom:target:" + std::to_string(target);
    case Kind::kFixed:
      // Shortest round-trip float formatting keeps the spelling stable
      // across locales (it is a CSV value and must parse back).
      return "custom:fixed:" + util::fmt_double(fraction);
  }
  return "custom:?";
}

std::function<std::unique_ptr<sim::DelayPolicy>()> CustomDelaySpec::factory()
    const {
  switch (kind) {
    case Kind::kAlternate:
      return [] {
        return std::make_unique<sim::AlternatingDelayPolicy>();
      };
    case Kind::kTarget:
      return [target = target] {
        return std::make_unique<sim::TargetedDelayPolicy>(target);
      };
    case Kind::kFixed:
      break;
  }
  return [fraction = fraction] {
    return std::make_unique<sim::FixedFractionDelayPolicy>(fraction);
  };
}

std::optional<CustomDelaySpec> parse_custom_delay(std::string_view s) {
  constexpr std::string_view kPrefix = "custom:";
  if (s.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  const std::string_view body = s.substr(kPrefix.size());

  CustomDelaySpec spec;
  if (body == "alternate") {
    spec.kind = CustomDelaySpec::Kind::kAlternate;
    return spec;
  }
  constexpr std::string_view kFixed = "fixed:";
  if (body.substr(0, kFixed.size()) == kFixed) {
    const auto fraction = parse_double_strict(body.substr(kFixed.size()));
    if (!fraction || *fraction < 0.0 || *fraction > 1.0) return std::nullopt;
    spec.kind = CustomDelaySpec::Kind::kFixed;
    spec.fraction = *fraction;
    return spec;
  }
  constexpr std::string_view kTarget = "target:";
  if (body.substr(0, kTarget.size()) == kTarget) {
    const auto target = parse_u64_strict(body.substr(kTarget.size()));
    if (!target || *target > UINT32_MAX) return std::nullopt;
    spec.kind = CustomDelaySpec::Kind::kTarget;
    spec.target = static_cast<std::uint32_t>(*target);
    return spec;
  }
  return std::nullopt;
}

std::optional<double> parse_double_strict(std::string_view s) {
  double value = 0.0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || end != s.data() + s.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;  // reject "inf"/"nan"
  return value;
}

std::optional<std::uint64_t> parse_u64_strict(std::string_view s) {
  // from_chars on unsigned already rejects '-', but be explicit about '+'
  // too: flags spell plain digits or they are malformed.
  if (s.empty() || s.front() == '+' || s.front() == '-') return std::nullopt;
  std::uint64_t value = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || end != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<core::ByzStrategy> parse_byz_strategy(std::string_view s) {
  if (s == "crash") return core::ByzStrategy::kCrash;
  if (s == "echo-rush") return core::ByzStrategy::kEchoRush;
  if (s == "split") return core::ByzStrategy::kSplit;
  if (s == "pull-early") return core::ByzStrategy::kPullEarly;
  if (s == "pull-late") return core::ByzStrategy::kPullLate;
  if (s == "replay") return core::ByzStrategy::kReplay;
  if (s == "random") return core::ByzStrategy::kRandom;
  if (s == "greedy-skew") return core::ByzStrategy::kGreedySkew;
  return std::nullopt;
}

sim::ModelParams ScenarioSpec::model() const {
  sim::ModelParams m;
  m.n = n;
  m.f = f;
  m.d = d;
  m.u = u;
  m.u_tilde = u_tilde;
  m.vartheta = vartheta;
  return m;
}

std::string ScenarioSpec::name() const {
  std::ostringstream os;
  if (world == WorldKind::kRelay)
    os << "relay[" << to_string(topology) << "] ";
  else if (world == WorldKind::kTheorem5)
    os << "thm5 ";
  os << baselines::to_string(protocol) << " n=" << n << " f=" << f;
  if (f_actual != f) os << " f_actual=" << f_actual;
  os << " vt=" << vartheta << " u=" << u;
  if (u_tilde != u) os << " ut=" << u_tilde;
  if (d != 1.0) os << " d=" << d;
  if (world != WorldKind::kTheorem5) {
    os << " delay="
       << (custom_delay ? custom_delay->spelling() : sim::to_string(delay));
    if (clocks != sim::ClockKind::kSpread)
      os << " clocks=" << sim::to_string(clocks);
  }
  if (f_actual > 0 && world == WorldKind::kComplete) {
    os << " byz=" << (st_accelerator ? "st-accel" : core::to_string(strategy));
    if (late_shift != 0.0) os << " late=" << late_shift;
    if (split_shift != 0.0) os << " shift=" << split_shift;
  }
  if (f_actual > 0 && world == WorldKind::kRelay) {
    os << " fault=" << relay::to_string(relay_fault);
    if (relay_fault == relay::RelayFaultKind::kSearch)
      os << " budget=" << search_budget;
  }
  if (crypto != CryptoMode::kReal) os << " crypto=" << to_string(crypto);
  if (dynamic()) {
    os << " churn=" << churn_rate;
    if (join_batch > 0) os << " join=" << join_batch;
    os << " reconnect=" << relay::to_string(reconnect);
    if (kllo_stab != 1.0) os << " kstab=" << kllo_stab;
  }
  return os.str();
}

std::uint64_t ScenarioSpec::key() const noexcept {
  std::uint64_t h = 0x435053u;  // "CPS"
  h = fold(h, static_cast<std::uint64_t>(world));
  h = fold(h, static_cast<std::uint64_t>(topology));
  h = fold(h, static_cast<std::uint64_t>(protocol));
  h = fold(h, static_cast<std::uint64_t>(n));
  h = fold(h, static_cast<std::uint64_t>(f));
  h = fold(h, static_cast<std::uint64_t>(f_actual));
  h = fold(h, d);
  h = fold(h, u);
  h = fold(h, u_tilde);
  h = fold(h, vartheta);
  h = fold(h, static_cast<std::uint64_t>(delay));
  // Absent folds differently from every present kind (offset by 1) so adding
  // a custom delay to a spec always forks its seed.
  h = fold(h, custom_delay
                  ? 1 + static_cast<std::uint64_t>(custom_delay->kind)
                  : 0);
  if (custom_delay) {
    h = fold(h, custom_delay->fraction);
    h = fold(h, static_cast<std::uint64_t>(custom_delay->target));
  }
  h = fold(h, static_cast<std::uint64_t>(clocks));
  h = fold(h, static_cast<std::uint64_t>(strategy));
  h = fold(h, static_cast<std::uint64_t>(relay_fault));
  h = fold(h, static_cast<std::uint64_t>(st_accelerator));
  h = fold(h, late_shift);
  h = fold(h, split_shift);
  h = fold(h, static_cast<std::uint64_t>(rounds));
  h = fold(h, static_cast<std::uint64_t>(warmup));
  h = fold(h, slack);
  // The crypto axis folds only when non-default, appended after every older
  // field: kReal specs keep their historical digests (and hence seeds,
  // resume journals, and history baselines) bit-for-bit.
  if (crypto != CryptoMode::kReal)
    h = fold(h, 0xab57ac7u + static_cast<std::uint64_t>(crypto));
  // Same append-at-end pattern for the dynamic axes: only an active churn
  // point forks the digest, so static cells (and with them every historical
  // seed, resume journal, and history baseline) are byte-preserved.
  if (churn_rate != 0.0 || join_batch != 0) {
    h = fold(h, std::uint64_t{0xc4124e});
    h = fold(h, churn_rate);
    h = fold(h, static_cast<std::uint64_t>(join_batch));
    h = fold(h, static_cast<std::uint64_t>(reconnect));
    // The KLLO stabilization multiplier is appended after the churn block
    // and only when it departs from the paper-faithful default, so every
    // pre-KLLO dynamic digest (and its seed, resume journal, and history
    // baseline) survives unchanged.
    if (kllo_stab != 1.0) {
      h = fold(h, std::uint64_t{0x1c1105});
      h = fold(h, kllo_stab);
    }
  }
  // The search budget matters only to kSearch cells, which did not exist
  // before this axis did — folding it conditionally at the end keeps every
  // pre-existing digest (and seed, resume journal, and history baseline)
  // byte-identical, and lets the budget axis collapse on every other kind.
  if (relay_fault == relay::RelayFaultKind::kSearch) {
    h = fold(h, std::uint64_t{0x5ea4c4});
    h = fold(h, static_cast<std::uint64_t>(search_budget));
  }
  return h;
}

std::uint32_t max_resilience(baselines::ProtocolKind protocol,
                             std::uint32_t n) noexcept {
  return protocol == baselines::ProtocolKind::kLynchWelch
             ? sim::ModelParams::max_faults_plain(n)
             : sim::ModelParams::max_faults_signed(n);
}

std::uint32_t max_topology_faults(TopologyKind kind,
                                  std::uint32_t n) noexcept {
  switch (kind) {
    case TopologyKind::kRing:
      return n >= 3 ? 1u : 0u;  // a ring is 2-connected (n = 3 is a triangle)
    case TopologyKind::kChordalRing:
      // C_n(1, 2) is 4-connected (consecutive-stride circulants are
      // maximally connected); small n degenerate toward complete, where
      // only the trivial f + 2 <= n cap binds.
      return n >= 3 ? std::min(3u, n - 2) : 0u;
    case TopologyKind::kRingOfCliques:
      // The wired family is cliques of size 4 with 2 bridges per junction:
      // cutting the ring takes both junctions (2·bridges = 4 nodes), and
      // isolating a node takes its full degree-4 neighborhood — so it
      // survives 2·bridges − 1 = 3 faults. Zero for shapes the factory
      // rejects (n not a positive multiple of 4 with at least 2 cliques).
      return (n >= 8 && n % 4 == 0) ? 3u : 0u;
    case TopologyKind::kHypercube: {
      // Connectivity of a k-cube is k = log2(n); survives k − 1 faults.
      std::uint32_t dim = 0;
      while ((1u << (dim + 1)) <= n) ++dim;
      return dim > 0 ? dim - 1 : 0u;
    }
    case TopologyKind::kComplete:
    case TopologyKind::kRandomConnected:
      return n >= 2 ? n - 2 : 0u;  // only the trivial f + 2 ≤ n cap
  }
  return 0;
}

std::vector<ScenarioSpec> SweepGrid::expand() const {
  std::vector<ScenarioSpec> specs;
  std::set<std::uint64_t> seen;
  // Collapsed axes (see header) can alias: dedupe by digest so the sweep
  // never runs — and reports — the same world twice.
  auto push = [&](const ScenarioSpec& spec) {
    if (seen.insert(spec.key()).second) specs.push_back(spec);
  };
  // The ũ axis tracks u when not given explicitly; a sentinel NaN-free copy
  // keeps the loop below uniform.
  const std::vector<double> ut_axis =
      u_tildes.empty() ? std::vector<double>{-1.0} : u_tildes;

  // The delay axis is DelayKind values followed by custom policies; one
  // struct keeps the expansion loop uniform.
  struct DelayPoint {
    sim::DelayKind kind = sim::DelayKind::kRandom;
    std::optional<CustomDelaySpec> custom;
  };
  std::vector<DelayPoint> delay_axis;
  for (const auto kind : delays) delay_axis.push_back({kind, std::nullopt});
  for (const auto& custom : custom_delays)
    delay_axis.push_back({sim::DelayKind::kRandom, custom});

  // Dynamic axes, innermost. Inert combinations normalize to the canonical
  // static point (churn=0, join=0, random) so rate=0 × several reconnect
  // policies collapses to one cell via digest dedup.
  struct ChurnPoint {
    double rate = 0.0;
    std::uint32_t batch = 0;
    relay::ReconnectPolicy reconnect = relay::ReconnectPolicy::kRandom;
  };
  std::vector<ChurnPoint> churn_axis;
  for (const double rate : churn_rates) {
    for (const std::uint32_t batch : join_batches) {
      for (const auto policy : reconnects) {
        churn_axis.push_back(rate > 0.0 || batch > 0
                                 ? ChurnPoint{rate, batch, policy}
                                 : ChurnPoint{});
      }
    }
  }
  const std::vector<double> stab_axis =
      kllo_stabs.empty() ? std::vector<double>{1.0} : kllo_stabs;

  for (const auto world : worlds) {
    const bool relay = world == WorldKind::kRelay;
    const bool thm5 = world == WorldKind::kTheorem5;
    // kTheorem5 pins the construction shape regardless of the n axis.
    const std::vector<std::uint32_t> world_ns =
        thm5 ? std::vector<std::uint32_t>{3} : ns;
    const std::vector<DelayPoint> world_delays =
        thm5 ? std::vector<DelayPoint>{DelayPoint{}} : delay_axis;
    const std::vector<sim::ClockKind> world_clocks =
        thm5 ? std::vector<sim::ClockKind>{sim::ClockKind::kSpread}
             : clock_kinds;
    const std::vector<TopologyKind> world_topologies =
        relay ? topologies : std::vector<TopologyKind>{TopologyKind::kComplete};
    // Relay worlds have no faulty links — effective_model derives its own
    // ũ_eff = u_eff — so the ũ axis collapses to "track u" there; multiplying
    // it would reseed identical worlds and read as a fake ũ effect.
    const std::vector<double> world_uts =
        relay ? std::vector<double>{-1.0} : ut_axis;
    // Theorem-5 collapses the crypto axis (nothing is forged there); its
    // specs keep the default kReal so digest-based dedup folds duplicates.
    const std::vector<CryptoMode> world_cryptos =
        thm5 ? std::vector<CryptoMode>{CryptoMode::kReal} : cryptos;
    // The probe protocol is meaningless under the Theorem-5 construction
    // (run_theorem5 would report it infeasible); skip the cells entirely
    // instead of emitting guaranteed-dead rows.
    std::vector<baselines::ProtocolKind> world_protocols = protocols;
    if (thm5) {
      // Same for the neighbor-scoped gradient/jump-max pair: the Theorem-5
      // construction has no topology for them to be local on.
      world_protocols.erase(
          std::remove_if(world_protocols.begin(), world_protocols.end(),
                         [](baselines::ProtocolKind p) {
                           return p == baselines::ProtocolKind::kFloodProbe ||
                                  baselines::neighbor_cast(p);
                         }),
          world_protocols.end());
    }

    for (const auto protocol : world_protocols) {
      for (const auto n : world_ns) {
        for (const auto topology : world_topologies) {
          // Resolve fault loads up front and dedupe: kMaxResilience can
          // collapse onto an explicit count (e.g. LW at n = 3 has max
          // resilience 0). Relay worlds additionally cap resilience at what
          // the topology's connectivity supports.
          std::vector<std::uint32_t> fault_counts;
          for (const auto load : fault_loads) {
            std::uint32_t faults =
                load == kMaxResilience ? max_resilience(protocol, n)
                                       : static_cast<std::uint32_t>(load);
            if (relay && load == kMaxResilience)
              faults = std::min(faults, max_topology_faults(topology, n));
            if (thm5) faults = 1;  // the construction's single faulty node
            if (std::find(fault_counts.begin(), fault_counts.end(), faults) ==
                fault_counts.end())
              fault_counts.push_back(faults);
          }
          for (const std::uint32_t faults : fault_counts) {
            for (const double vartheta : varthetas) {
              for (const double u : us) {
                for (const double ut : world_uts) {
                  for (const auto delay : world_delays) {
                    for (const auto clock : world_clocks) {
                     for (const auto crypto : world_cryptos) {
                      ScenarioSpec spec;
                      spec.world = world;
                      spec.topology = topology;
                      spec.protocol = protocol;
                      spec.n = n;
                      spec.f = faults;
                      // Theorem-5 realizes its own faulty node; relay crashes
                      // f relays; complete instantiates f Byzantine nodes.
                      spec.f_actual = thm5 ? 0 : faults;
                      spec.d = d;
                      spec.u = u;
                      // Clamp ũ into the model's [u, d] requirement so an
                      // explicit ũ axis composes with any u axis.
                      spec.u_tilde =
                          ut < 0.0 ? u : std::min(std::max(ut, u), d);
                      spec.vartheta = vartheta;
                      spec.delay = delay.kind;
                      spec.custom_delay = delay.custom;
                      spec.clocks = clock;
                      spec.rounds = rounds;
                      spec.warmup = warmup;
                      spec.slack = slack;
                      spec.crypto = crypto;
                      if (relay && faults > 0) {
                        // Faulty relay points multiply by the relay-fault
                        // axis instead of the (complete-world) strategies.
                        // Oblivious kinds keep their historical static-only
                        // cells (pre-existing sweep surfaces stay
                        // byte-identical); the adaptive kinds additionally
                        // take the churn axes, and kSearch alone multiplies
                        // by the search-budget axis.
                        const std::vector<std::uint32_t> budget_axis =
                            search_budgets.empty()
                                ? std::vector<std::uint32_t>{8}
                                : search_budgets;
                        for (const auto fault : relay_faults) {
                          spec.relay_fault = fault;
                          if (!relay::adaptive(fault)) {
                            spec.search_budget = 8;
                            push(spec);
                            continue;
                          }
                          const std::vector<std::uint32_t> budgets =
                              fault == relay::RelayFaultKind::kSearch
                                  ? budget_axis
                                  : std::vector<std::uint32_t>{8};
                          for (const std::uint32_t budget : budgets) {
                            spec.search_budget = std::max(budget, 1u);
                            for (const auto& churn : churn_axis) {
                              spec.churn_rate = churn.rate;
                              spec.join_batch = churn.batch;
                              spec.reconnect = churn.reconnect;
                              push(spec);
                            }
                            spec.churn_rate = 0.0;
                            spec.join_batch = 0;
                            spec.reconnect = relay::ReconnectPolicy::kRandom;
                          }
                          spec.search_budget = 8;
                        }
                        continue;
                      }
                      if (relay && faults == 0) {
                        // Only fault-free relay points take the dynamic
                        // axes: churn and Byzantine relays are separate
                        // regimes, and the other worlds have no schedule.
                        // The KLLO stabilization axis multiplies only the
                        // dynamic churn points — on a static graph the
                        // envelope's age decay is degenerate, so inert
                        // points normalize to 1.0 and collapse via dedup.
                        for (const auto& churn : churn_axis) {
                          spec.churn_rate = churn.rate;
                          spec.join_batch = churn.batch;
                          spec.reconnect = churn.reconnect;
                          const bool churning =
                              churn.rate > 0.0 || churn.batch > 0;
                          for (const double stab : stab_axis) {
                            spec.kllo_stab = churning ? stab : 1.0;
                            push(spec);
                          }
                        }
                        spec.kllo_stab = 1.0;
                        continue;
                      }
                      if (faults == 0 || relay || thm5) {
                        push(spec);  // strategy axis is irrelevant
                        continue;
                      }
                      for (const auto strategy : strategies) {
                        spec.strategy = strategy;
                        push(spec);
                      }
                     }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

}  // namespace crusader::runner
