#include "runner/history.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>

#include "runner/scenario.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"
#include "util/thread_safety.hpp"

namespace crusader::runner {

namespace {

using util::fmt_double;
constexpr auto fmt = fmt_double;

// Serializes in-process appends: two sweeps sharing one history file (e.g.
// a test harness driving runs on worker threads) must interleave whole
// lines, never buffered fragments. Cross-process appends remain the
// caller's concern (CI runs are sequential).
util::Mutex g_append_mu;

}  // namespace

std::uint64_t grid_digest(const std::vector<ScenarioSpec>& specs,
                          std::uint64_t base_seed) noexcept {
  std::uint64_t h = util::mix64(0x47524944ULL ^ base_seed);  // "GRID"
  for (const auto& spec : specs) h = util::mix64(h ^ spec.key());
  return h;
}

HistoryEntry make_history_entry(const SweepSummary& summary,
                                std::uint64_t base_seed,
                                std::uint64_t grid) {
  HistoryEntry entry;
  entry.seed = base_seed;
  entry.grid = grid;
  entry.cells = summary.scenarios;
  entry.errors = summary.errors;
  entry.timed_out = summary.timed_out;
  for (const auto& w : summary.worlds) {
    HistoryEntry::WorldRatio ratio;
    ratio.world = w.world;
    ratio.count = w.ratio.count();
    if (ratio.count > 0) {
      ratio.max = w.ratio.max();
      ratio.mean = w.ratio.mean();
    }
    ratio.lcount = w.local.count();
    if (ratio.lcount > 0) {
      ratio.lmax = w.local.max();
      ratio.lmean = w.local.mean();
    }
    ratio.kcount = w.kllo.count();
    if (ratio.kcount > 0) {
      ratio.kmax = w.kllo.max();
      ratio.kmean = w.kllo.mean();
    }
    ratio.acount = w.adaptive.count();
    if (ratio.acount > 0) {
      ratio.amax = w.adaptive.max();
      ratio.amean = w.adaptive.mean();
    }
    entry.worlds.push_back(ratio);
  }
  return entry;
}

std::string format_history_line(const HistoryEntry& entry) {
  std::ostringstream os;
  os << "seed=" << entry.seed << " grid=" << entry.grid
     << " cells=" << entry.cells << " errors=" << entry.errors
     << " timed_out=" << entry.timed_out;
  for (const auto& w : entry.worlds) {
    os << ' ' << to_string(w.world) << ":max=" << fmt(w.max)
       << ",mean=" << fmt(w.mean) << ",count=" << w.count;
    // Gradient stats ride the same token, appended only when dynamic cells
    // contributed — grids without churn keep their historical bytes.
    if (w.lcount > 0)
      os << ",lmax=" << fmt(w.lmax) << ",lmean=" << fmt(w.lmean)
         << ",lcount=" << w.lcount;
    // KLLO envelope stats, same optionality: only dynamic relay cells feed
    // kcount, so pre-KLLO grids format byte-identically.
    if (w.kcount > 0)
      os << ",kmax=" << fmt(w.kmax) << ",kmean=" << fmt(w.kmean)
         << ",kcount=" << w.kcount;
    // Adaptive-adversary stats, same optionality: only adaptive relay cells
    // feed acount, so pre-adaptive grids format byte-identically.
    if (w.acount > 0)
      os << ",amax=" << fmt(w.amax) << ",amean=" << fmt(w.amean)
         << ",acount=" << w.acount;
  }
  return os.str();
}

std::optional<HistoryEntry> parse_history_line(std::string_view line) {
  // Tokenize on whitespace; reject anything that is not key=value or
  // world:max=..,mean=..,count=.. so a corrupted line never half-parses
  // into a bogus baseline.
  std::istringstream tokens{std::string(line)};
  std::string token;
  HistoryEntry entry;
  bool seed_seen = false;
  bool cells_seen = false;

  auto parse_kv = [](std::string_view t, std::string_view key)
      -> std::optional<std::string_view> {
    if (t.size() <= key.size() + 1) return std::nullopt;
    if (t.substr(0, key.size()) != key || t[key.size()] != '=')
      return std::nullopt;
    return t.substr(key.size() + 1);
  };

  if (!(tokens >> token)) return std::nullopt;
  if (token.front() == '#') return std::nullopt;

  do {
    if (const auto v = parse_kv(token, "seed")) {
      const auto seed = parse_u64_strict(*v);
      if (!seed) return std::nullopt;
      entry.seed = *seed;
      seed_seen = true;
    } else if (const auto v = parse_kv(token, "grid")) {
      const auto grid = parse_u64_strict(*v);
      if (!grid) return std::nullopt;
      entry.grid = *grid;
    } else if (const auto v = parse_kv(token, "cells")) {
      const auto cells = parse_u64_strict(*v);
      if (!cells) return std::nullopt;
      entry.cells = static_cast<std::size_t>(*cells);
      cells_seen = true;
    } else if (const auto v = parse_kv(token, "errors")) {
      const auto errors = parse_u64_strict(*v);
      if (!errors) return std::nullopt;
      entry.errors = static_cast<std::size_t>(*errors);
    } else if (const auto v = parse_kv(token, "timed_out")) {
      const auto timed_out = parse_u64_strict(*v);
      if (!timed_out) return std::nullopt;
      entry.timed_out = static_cast<std::size_t>(*timed_out);
    } else {
      // world:max=..,mean=..,count=..
      const auto colon = token.find(':');
      if (colon == std::string::npos) return std::nullopt;
      const auto world = parse_world(std::string_view(token).substr(0, colon));
      if (!world) return std::nullopt;
      HistoryEntry::WorldRatio ratio;
      ratio.world = *world;
      std::string_view rest = std::string_view(token).substr(colon + 1);
      bool max_seen = false;
      bool mean_seen = false;
      bool count_seen = false;
      while (!rest.empty()) {
        const auto comma = rest.find(',');
        const std::string_view part = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        if (const auto v = parse_kv(part, "max")) {
          const auto max = parse_double_strict(*v);
          if (!max) return std::nullopt;
          ratio.max = *max;
          max_seen = true;
        } else if (const auto v = parse_kv(part, "mean")) {
          const auto mean = parse_double_strict(*v);
          if (!mean) return std::nullopt;
          ratio.mean = *mean;
          mean_seen = true;
        } else if (const auto v = parse_kv(part, "count")) {
          const auto count = parse_u64_strict(*v);
          if (!count) return std::nullopt;
          ratio.count = static_cast<std::size_t>(*count);
          count_seen = true;
        } else if (const auto v = parse_kv(part, "lmax")) {
          const auto lmax = parse_double_strict(*v);
          if (!lmax) return std::nullopt;
          ratio.lmax = *lmax;
        } else if (const auto v = parse_kv(part, "lmean")) {
          const auto lmean = parse_double_strict(*v);
          if (!lmean) return std::nullopt;
          ratio.lmean = *lmean;
        } else if (const auto v = parse_kv(part, "lcount")) {
          const auto lcount = parse_u64_strict(*v);
          if (!lcount) return std::nullopt;
          ratio.lcount = static_cast<std::size_t>(*lcount);
        } else if (const auto v = parse_kv(part, "kmax")) {
          const auto kmax = parse_double_strict(*v);
          if (!kmax) return std::nullopt;
          ratio.kmax = *kmax;
        } else if (const auto v = parse_kv(part, "kmean")) {
          const auto kmean = parse_double_strict(*v);
          if (!kmean) return std::nullopt;
          ratio.kmean = *kmean;
        } else if (const auto v = parse_kv(part, "kcount")) {
          const auto kcount = parse_u64_strict(*v);
          if (!kcount) return std::nullopt;
          ratio.kcount = static_cast<std::size_t>(*kcount);
        } else if (const auto v = parse_kv(part, "amax")) {
          const auto amax = parse_double_strict(*v);
          if (!amax) return std::nullopt;
          ratio.amax = *amax;
        } else if (const auto v = parse_kv(part, "amean")) {
          const auto amean = parse_double_strict(*v);
          if (!amean) return std::nullopt;
          ratio.amean = *amean;
        } else if (const auto v = parse_kv(part, "acount")) {
          const auto acount = parse_u64_strict(*v);
          if (!acount) return std::nullopt;
          ratio.acount = static_cast<std::size_t>(*acount);
        } else {
          return std::nullopt;
        }
      }
      // The l* tokens are optional (pre-dynamic lines lack them); the
      // global triple stays mandatory.
      if (!max_seen || !mean_seen || !count_seen) return std::nullopt;
      entry.worlds.push_back(ratio);
    }
  } while (tokens >> token);

  if (!seed_seen || !cells_seen) return std::nullopt;
  return entry;
}

std::optional<HistoryEntry> load_last_entry(std::istream& is) {
  std::optional<HistoryEntry> last;
  std::string line;
  while (std::getline(is, line)) {
    if (auto entry = parse_history_line(line)) last = std::move(entry);
  }
  return last;
}

std::optional<HistoryEntry> load_baseline(std::istream& is,
                                          std::uint64_t grid) {
  std::optional<HistoryEntry> baseline;
  std::string line;
  while (std::getline(is, line)) {
    auto entry = parse_history_line(line);
    if (!entry) continue;
    if (entry->grid != grid) continue;
    if (entry->errors > 0 || entry->timed_out > 0) continue;
    baseline = std::move(entry);
  }
  return baseline;
}

void append_history(const std::string& path, const HistoryEntry& entry) {
  util::MutexLock lock(g_append_mu);
  const bool fresh = [&] {
    std::ifstream probe(path);
    return !probe.good() || probe.peek() == std::ifstream::traits_type::eof();
  }();
  std::ofstream os(path, std::ios::app);
  if (!os) throw std::runtime_error("cannot open history file '" + path + "'");
  if (fresh)
    os << "# crusader skew_ratio history v1: one line per sweep run; "
          "world:max is the trend-gate signal\n";
  os << format_history_line(entry) << '\n';
  if (!os) throw std::runtime_error("cannot write history file '" + path + "'");
}

std::vector<std::string> check_trend(
    const std::optional<HistoryEntry>& baseline, const HistoryEntry& current,
    double pct) {
  std::vector<std::string> failures;
  if (current.errors > 0)
    failures.push_back(std::to_string(current.errors) +
                       " errored cell(s): a run that did not fully execute "
                       "cannot attest a trend");
  if (current.timed_out > 0)
    failures.push_back(std::to_string(current.timed_out) +
                       " timed-out cell(s): a run that did not fully execute "
                       "cannot attest a trend");
  if (!baseline) return failures;
  for (const auto& w : current.worlds) {
    if (w.count == 0) continue;
    for (const auto& b : baseline->worlds) {
      if (b.world != w.world || b.count == 0) continue;
      // Tiny absolute epsilon so pct=0 tolerates formatting round-trips.
      const double limit = b.max * (1.0 + pct / 100.0) + 1e-12;
      if (w.max > limit) {
        failures.push_back(std::string(to_string(w.world)) +
                           ": max skew_ratio " + fmt(w.max) + " regressed > " +
                           fmt(pct) + "% over baseline " + fmt(b.max));
      }
      // Gradient trend, gated only when both runs measured dynamic cells
      // (a baseline without churn axes says nothing about local skew).
      if (w.lcount > 0 && b.lcount > 0) {
        const double llimit = b.lmax * (1.0 + pct / 100.0) + 1e-12;
        if (w.lmax > llimit) {
          failures.push_back(std::string(to_string(w.world)) +
                             ": max local_skew_ratio " + fmt(w.lmax) +
                             " regressed > " + fmt(pct) + "% over baseline " +
                             fmt(b.lmax));
        }
      }
      // KLLO envelope trend, same both-sides gating.
      if (w.kcount > 0 && b.kcount > 0) {
        const double klimit = b.kmax * (1.0 + pct / 100.0) + 1e-12;
        if (w.kmax > klimit) {
          failures.push_back(std::string(to_string(w.world)) +
                             ": max kllo_ratio " + fmt(w.kmax) +
                             " regressed > " + fmt(pct) + "% over baseline " +
                             fmt(b.kmax));
        }
      }
      // Adaptive-adversary trend, same both-sides gating. Note the sign: a
      // HIGHER adaptive ratio is a stronger empirical worst case, but as a
      // conformance trend the gate still reads growth past the baseline as
      // a regression of the protocol's margin.
      if (w.acount > 0 && b.acount > 0) {
        const double alimit = b.amax * (1.0 + pct / 100.0) + 1e-12;
        if (w.amax > alimit) {
          failures.push_back(std::string(to_string(w.world)) +
                             ": max adaptive skew_ratio " + fmt(w.amax) +
                             " regressed > " + fmt(pct) + "% over baseline " +
                             fmt(b.amax));
        }
      }
      break;
    }
  }
  return failures;
}

}  // namespace crusader::runner
