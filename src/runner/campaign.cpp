#include "runner/campaign.hpp"

#include <cmath>
#include <cstddef>
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "runner/export.hpp"

namespace crusader::runner {

namespace {

constexpr std::string_view kManifestMagic = "# crusader-sweep-manifest v1";

[[noreturn]] void bail(const std::string& what) {
  throw std::runtime_error("campaign: " + what);
}

/// Whole file as a string; nullopt when it does not exist.
std::optional<std::string> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

struct Manifest {
  std::uint64_t seed = 0;
  std::vector<std::uint64_t> keys;
};

Manifest parse_manifest(const std::string& path, std::string content,
                        std::uint64_t expected_seed) {
  // A kill can tear the final digest mid-write; a partial line without its
  // newline would otherwise parse as a valid-but-truncated number and make
  // the prefix check refuse a perfectly resumable campaign. Only complete
  // (newline-terminated) lines count.
  const auto last_newline = content.rfind('\n');
  content.resize(last_newline == std::string::npos ? 0 : last_newline + 1);

  // A kill between the fresh CSV flush and the manifest header flush leaves
  // the manifest created but empty (or header-torn): that is a campaign
  // with zero recorded rows, not an unusable file.
  if (content.empty()) return Manifest{expected_seed, {}};

  Manifest manifest;
  std::istringstream is(content);
  std::string line;
  if (!std::getline(is, line) ||
      std::string_view(line).substr(0, kManifestMagic.size()) !=
          kManifestMagic)
    bail("'" + path + "' is not a sweep manifest");
  const auto seed_at = line.find(" seed=");
  if (seed_at == std::string::npos) bail("'" + path + "' has no seed");
  const auto seed = parse_u64_strict(std::string_view(line).substr(seed_at + 6));
  if (!seed) bail("'" + path + "' has a malformed seed");
  manifest.seed = *seed;
  while (std::getline(is, line)) {
    if (line.empty()) continue;  // tolerate a torn trailing newline
    const auto key = parse_u64_strict(line);
    // A torn final digest (killed mid-write) ends the usable prefix; rows
    // past it simply re-run.
    if (!key) break;
    manifest.keys.push_back(*key);
  }
  return manifest;
}

/// Column indices the replay needs, resolved from the header once.
struct ReplayColumns {
  std::size_t seed, feasible, live, rounds_completed, within_bound, skew_ratio,
      local_skew, local_skew_ratio, kllo_ratio, edge_age_min, timed_out, error;
};

ReplayColumns resolve_columns(const std::vector<std::string>& header) {
  auto find = [&](std::string_view name) {
    for (std::size_t i = 0; i < header.size(); ++i)
      if (header[i] == name) return i;
    bail("recorded CSV lacks column '" + std::string(name) + "'");
  };
  return ReplayColumns{find("seed"),
                       find("feasible"),
                       find("live"),
                       find("rounds_completed"),
                       find("within_bound"),
                       find("skew_ratio"),
                       find("local_skew"),
                       find("local_skew_ratio"),
                       find("kllo_ratio"),
                       find("edge_age_min"),
                       find("timed_out"),
                       find("error")};
}

}  // namespace

CsvCampaign::CsvCampaign(Options options,
                         const std::vector<ScenarioSpec>& specs,
                         const ReplayFn& replay)
    : options_(std::move(options)) {
  expected_keys_.reserve(specs.size());
  for (const auto& spec : specs) expected_keys_.push_back(spec.key());

  const std::string header = csv_header();
  const auto csv_content = slurp(options_.csv_path);

  if (!csv_content || csv_content->empty()) {
    // Fresh campaign: write the header and an empty manifest.
    csv_.open(options_.csv_path, std::ios::binary | std::ios::trunc);
    if (!csv_) bail("cannot open CSV '" + options_.csv_path + "'");
    csv_ << header << '\n';
    csv_.flush();
    manifest_.open(options_.manifest_path, std::ios::binary | std::ios::trunc);
    if (!manifest_) bail("cannot open manifest '" + options_.manifest_path + "'");
    manifest_ << kManifestMagic << " seed=" << options_.base_seed << '\n';
    manifest_.flush();
    return;
  }

  // Existing campaign: reconcile CSV and manifest, keeping the shorter of
  // the two prefixes (a kill can leave either file ahead of the other; an
  // external truncation leaves the CSV behind the manifest).
  const auto manifest_content = slurp(options_.manifest_path);
  if (!manifest_content)
    bail("CSV '" + options_.csv_path + "' exists but manifest '" +
         options_.manifest_path +
         "' does not; delete the CSV to start the campaign over");
  const auto manifest = parse_manifest(options_.manifest_path,
                                       *manifest_content, options_.base_seed);
  if (manifest.seed != options_.base_seed)
    bail("manifest seed " + std::to_string(manifest.seed) +
         " does not match --seed " + std::to_string(options_.base_seed));

  const auto ends = csv_record_ends(*csv_content);
  if (ends.empty() ||
      std::string_view(*csv_content).substr(0, ends[0] - 1) != header)
    bail("CSV '" + options_.csv_path +
         "' does not start with the current schema header; was it written by "
         "a different build?");
  const std::size_t rows = ends.size() - 1;

  done_ = std::min(rows, manifest.keys.size());
  if (done_ > specs.size())
    bail("recorded campaign has " + std::to_string(done_) +
         " rows but the grid expands to only " + std::to_string(specs.size()) +
         " specs; this is a different sweep");
  for (std::size_t i = 0; i < done_; ++i)
    if (manifest.keys[i] != expected_keys_[i])
      bail("recorded spec digest #" + std::to_string(i) +
           " does not match the grid; resuming would splice two different "
           "sweeps into one CSV");

  // Replay the surviving rows into the caller's accumulators, verifying
  // each row's recorded seed against the spec-derived one as we go. A
  // recorded timed_out row is a scheduling artifact (the budget tripped on
  // that machine at that moment), not a measurement — keeping it would bake
  // a transient timeout into the campaign forever — so the prefix is cut
  // there and the cell (and everything after it) re-runs.
  if (done_ > 0) {
    const auto columns =
        resolve_columns(parse_csv_fields(
            std::string_view(*csv_content).substr(0, ends[0] - 1)));
    for (std::size_t i = 0; i < done_; ++i) {
      const std::string_view record =
          std::string_view(*csv_content)
              .substr(ends[i], ends[i + 1] - ends[i] - 1);
      const auto row = parse_csv_fields(record);
      if (row.size() <= columns.error)
        bail("recorded row #" + std::to_string(i) + " is malformed");
      ScenarioResult result;
      result.spec = specs[i];
      result.seed = scenario_seed(specs[i], options_.base_seed);
      if (row[columns.seed] != std::to_string(result.seed))
        bail("recorded row #" + std::to_string(i) +
             " has seed " + row[columns.seed] + ", expected " +
             std::to_string(result.seed) +
             "; was this campaign run under a different --seed?");
      result.timed_out = row[columns.timed_out] == "1";
      if (result.timed_out) {
        done_ = i;  // retry the timed-out cell and the rows after it
        break;
      }
      result.feasible = row[columns.feasible] == "1";
      result.live = row[columns.live] == "1";
      const auto rounds = parse_u64_strict(row[columns.rounds_completed]);
      result.rounds_completed =
          rounds ? static_cast<std::size_t>(*rounds) : 0;
      result.within_bound = row[columns.within_bound] == "1";
      const auto ratio = parse_double_strict(row[columns.skew_ratio]);
      result.skew_ratio =
          ratio ? *ratio : std::numeric_limits<double>::quiet_NaN();
      const auto local = parse_double_strict(row[columns.local_skew]);
      result.local_skew =
          local ? *local : std::numeric_limits<double>::quiet_NaN();
      const auto lratio = parse_double_strict(row[columns.local_skew_ratio]);
      result.local_skew_ratio =
          lratio ? *lratio : std::numeric_limits<double>::quiet_NaN();
      // Replayed so resumed campaigns feed --gate-kllo and the history
      // k-tokens identically to a fresh run.
      const auto kratio = parse_double_strict(row[columns.kllo_ratio]);
      result.kllo_ratio =
          kratio ? *kratio : std::numeric_limits<double>::quiet_NaN();
      const auto age = parse_double_strict(row[columns.edge_age_min]);
      result.edge_age_min =
          age ? *age : std::numeric_limits<double>::quiet_NaN();
      result.error = row[columns.error];
      if (replay) replay(result);
    }
  }

  // Trim both files to the reconciled prefix, then reopen for append.
  std::filesystem::resize_file(options_.csv_path, ends[done_]);
  csv_.open(options_.csv_path, std::ios::binary | std::ios::app);
  if (!csv_) bail("cannot reopen CSV '" + options_.csv_path + "'");
  manifest_.open(options_.manifest_path, std::ios::binary | std::ios::trunc);
  if (!manifest_) bail("cannot reopen manifest '" + options_.manifest_path + "'");
  manifest_ << kManifestMagic << " seed=" << options_.base_seed << '\n';
  for (std::size_t i = 0; i < done_; ++i)
    manifest_ << expected_keys_[i] << '\n';
  manifest_.flush();
  checkpointed_ = done_;
}

void CsvCampaign::append(const ScenarioResult& result) {
  util::MutexLock lock(mu_);
  if (done_ >= expected_keys_.size())
    bail("append past the end of the grid");
  if (result.spec.key() != expected_keys_[done_])
    bail("append out of order: result for '" + result.spec.name() +
         "' does not match grid position " + std::to_string(done_));
  write_csv_row(csv_, result);
  csv_.flush();
  if (!csv_) bail("cannot write CSV '" + options_.csv_path + "'");
  ++done_;
  if (done_ - checkpointed_ >= options_.checkpoint_every) checkpoint();
}

void CsvCampaign::checkpoint() {
  for (std::size_t i = checkpointed_; i < done_; ++i)
    manifest_ << expected_keys_[i] << '\n';
  manifest_.flush();
  if (!manifest_) bail("cannot write manifest '" + options_.manifest_path + "'");
  checkpointed_ = done_;
}

void CsvCampaign::finish() {
  util::MutexLock lock(mu_);
  checkpoint();
}

}  // namespace crusader::runner
