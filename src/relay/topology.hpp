#pragma once
// Sparse network topologies for the Appendix-A translation: with signatures,
// (f+1)-connectivity is necessary and sufficient to simulate full
// connectivity (faulty nodes can only drop or delay signed messages, never
// alter them, so one fault-free path suffices).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/ids.hpp"

namespace crusader::relay {

/// Undirected simple graph on nodes [0, n).
class Topology {
 public:
  explicit Topology(std::uint32_t n);

  void add_edge(NodeId a, NodeId b);
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId v) const;
  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(adj_.size());
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// BFS distance from s to t avoiding `excluded` nodes (s, t never
  /// excluded). Returns UINT32_MAX when disconnected.
  [[nodiscard]] std::uint32_t distance(NodeId s, NodeId t,
                                       const std::vector<bool>& excluded) const;

  /// True iff every pair of nodes stays connected after removing any set of
  /// up to `f` other nodes — i.e. the graph is (f+1)-connected in the sense
  /// required by Appendix A. Brute force over subsets: intended for the
  /// small topologies of tests/benches (n ≤ ~20, f ≤ 3).
  [[nodiscard]] bool survives_faults(std::uint32_t f) const;

  /// Worst-case fault-free distance: max over node pairs (s,t) and faulty
  /// sets F, |F| ≤ f, s,t ∉ F, of dist_{G−F}(s, t). This is the hop count
  /// D_f that bounds the relay path length, hence the effective end-to-end
  /// delay D_f · d_hop. Requires survives_faults(f).
  [[nodiscard]] std::uint32_t worst_case_distance(std::uint32_t f) const;

  // --- Factories ---------------------------------------------------------
  [[nodiscard]] static Topology complete(std::uint32_t n);
  [[nodiscard]] static Topology ring(std::uint32_t n);
  /// Ring plus chords to every `stride`-th node: (f+1)-connected for larger
  /// f than a plain ring while staying sparse.
  [[nodiscard]] static Topology chordal_ring(std::uint32_t n,
                                             std::uint32_t stride);
  /// `cliques` cliques of size `size`, consecutive cliques joined by
  /// `bridges` disjoint edges — the "balanced paths" example of EXPERIMENTS
  /// E11.
  [[nodiscard]] static Topology ring_of_cliques(std::uint32_t cliques,
                                                std::uint32_t size,
                                                std::uint32_t bridges);
  /// k-dimensional hypercube on 2^dim nodes: k-connected with diameter k —
  /// the classic sparse topology with logarithmic relay distance.
  [[nodiscard]] static Topology hypercube(std::uint32_t dim);
  /// Random (f+1)-connected graph: a Hamiltonian ring (guaranteeing
  /// connectivity) plus uniformly random chords added until the graph
  /// survives f faults. Deterministic in `seed`. Intended for the small n of
  /// sweeps (survives_faults is brute force).
  [[nodiscard]] static Topology random_connected(std::uint32_t n,
                                                 std::uint32_t f,
                                                 std::uint64_t seed);

 private:
  void for_each_faulty_set(std::uint32_t f,
                           const std::function<void(std::vector<bool>&)>& fn) const;

  std::vector<std::vector<NodeId>> adj_;
  std::size_t edges_ = 0;
};

}  // namespace crusader::relay
