#pragma once
// Sparse network topologies for the Appendix-A translation: with signatures,
// (f+1)-connectivity is necessary and sufficient to simulate full
// connectivity (faulty nodes can only drop or delay signed messages, never
// alter them, so one fault-free path suffices).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/ids.hpp"

namespace crusader::relay {

/// Undirected simple graph on nodes [0, n).
class Topology {
 public:
  explicit Topology(std::uint32_t n);

  void add_edge(NodeId a, NodeId b);
  /// Removes an existing edge (no-op when absent). Preserves the relative
  /// order of the remaining adjacency entries: neighbor order is part of the
  /// deterministic flood-forwarding contract, so a rewire must not reshuffle
  /// the untouched neighbors.
  void remove_edge(NodeId a, NodeId b);
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId v) const;
  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(adj_.size());
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// BFS distance from s to t avoiding `excluded` nodes (s, t never
  /// excluded). Returns UINT32_MAX when disconnected.
  [[nodiscard]] std::uint32_t distance(NodeId s, NodeId t,
                                       const std::vector<bool>& excluded) const;

  /// Max over non-excluded pairs of dist_{G−excluded}(s, t), one BFS per
  /// source. Throws (CS_CHECK) when the exclusions disconnect the
  /// survivors. This is the per-faulty-set step of worst_case_distance,
  /// exposed for callers that need one concrete fault set evaluated
  /// exactly (see relay::compute_effective's sampled regime).
  ///
  /// `source_budget` = 0 (the default) runs one BFS per surviving source —
  /// exhaustive, the historical behavior. A positive budget caps the BFS
  /// count at that many evenly-strided sources: the returned eccentricity
  /// becomes a lower bound (exact on vertex-transitive graphs), but the
  /// connectivity CS_CHECK stays exact — any single source reaching every
  /// survivor proves the survivor graph connected.
  [[nodiscard]] std::uint32_t worst_distance_with_faults(
      const std::vector<bool>& excluded, std::uint32_t source_budget = 0) const;

  /// True iff every pair of nodes stays connected after removing any set of
  /// up to `f` other nodes — i.e. the graph is (f+1)-connected in the sense
  /// required by Appendix A. Exact (enumerates every size-f subset) but one
  /// BFS per subset, so n = 64, f = 3 stays well under a second.
  [[nodiscard]] bool survives_faults(std::uint32_t f) const;

  /// Worst-case fault-free distance: max over node pairs (s,t) and faulty
  /// sets F, |F| ≤ f, s,t ∉ F, of dist_{G−F}(s, t). This is the hop count
  /// D_f that bounds the relay path length, hence the effective end-to-end
  /// delay D_f · d_hop. Requires survives_faults(f).
  ///
  /// Evaluated with one BFS per (subset, source). When the number of size-f
  /// subsets fits the deterministic budget (kWorstCaseSubsetBudget — always
  /// the case for n ≤ 12) the walk is exhaustive and the result exact;
  /// beyond the budget a fixed sample is probed instead — every node's
  /// first-f-neighbors cut plus seeded random subsets — so n ≥ 64
  /// ring-of-cliques sweeps finish. The sampled estimate is a lower bound
  /// on the true D_f and a pure function of (graph, f): deterministic
  /// across runs, threads, and call sites.
  [[nodiscard]] std::uint32_t worst_case_distance(std::uint32_t f) const;

  /// Subset budget for worst_case_distance: exhaustive at or below, sampled
  /// above. Covers every f for n ≤ 12 (max C(12,6) = 924).
  static constexpr std::uint64_t kWorstCaseSubsetBudget = 2048;

  /// Source budget for the exhaustive walk: above this n even the f = 0
  /// all-pairs eccentricity (one BFS per source) is a cliff, so
  /// worst_case_distance switches to the sampled regime and every probe
  /// samples its BFS sources (see sampled_source_cap).
  static constexpr std::uint32_t kWorstCaseSourceBudget = 256;

  /// BFS sources per sampled-regime probe at this n. Shrinks past 2^16
  /// nodes so a 10^6-node analysis stays at a handful of O(n·deg) walks.
  [[nodiscard]] std::uint32_t sampled_source_cap() const noexcept {
    return n() <= (1u << 16) ? kWorstCaseSourceBudget : 16u;
  }

  /// Whether worst_case_distance(f) runs the exhaustive walk (true) or the
  /// budget-bounded sample (false) — i.e. whether its result is the exact
  /// D_f or a lower bound. Callers deriving soundness-critical parameters
  /// from a sampled result must compensate (see relay::compute_effective).
  /// Exhaustiveness needs both budgets: C(n, f) size-f subsets within the
  /// subset budget AND n within the source budget.
  [[nodiscard]] bool worst_case_distance_is_exact(std::uint32_t f) const;

  // --- Factories ---------------------------------------------------------
  [[nodiscard]] static Topology complete(std::uint32_t n);
  [[nodiscard]] static Topology ring(std::uint32_t n);
  /// Ring plus chords to every `stride`-th node: (f+1)-connected for larger
  /// f than a plain ring while staying sparse.
  [[nodiscard]] static Topology chordal_ring(std::uint32_t n,
                                             std::uint32_t stride);
  /// `cliques` cliques of size `size`, consecutive cliques joined by
  /// `bridges` disjoint edges — the "balanced paths" example of EXPERIMENTS
  /// E11.
  [[nodiscard]] static Topology ring_of_cliques(std::uint32_t cliques,
                                                std::uint32_t size,
                                                std::uint32_t bridges);
  /// k-dimensional hypercube on 2^dim nodes: k-connected with diameter k —
  /// the classic sparse topology with logarithmic relay distance.
  [[nodiscard]] static Topology hypercube(std::uint32_t dim);
  /// Random (f+1)-connected graph: a Hamiltonian ring (guaranteeing
  /// connectivity) plus uniformly random chords added until the graph
  /// survives f faults. Deterministic in `seed`. Intended for the small n of
  /// sweeps (survives_faults is brute force).
  [[nodiscard]] static Topology random_connected(std::uint32_t n,
                                                 std::uint32_t f,
                                                 std::uint64_t seed);

 private:
  void for_each_faulty_set(std::uint32_t f,
                           const std::function<void(std::vector<bool>&)>& fn) const;

  /// Single-source BFS over non-excluded nodes; fills `dist` (resized to n)
  /// with hop counts, UINT32_MAX for excluded/unreachable nodes.
  void bfs_from(NodeId s, const std::vector<bool>& excluded,
                std::vector<std::uint32_t>& dist) const;

  std::vector<std::vector<NodeId>> adj_;
  std::size_t edges_ = 0;
};

}  // namespace crusader::relay
