#include "relay/adversary.hpp"

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace crusader::relay {

const char* to_string(RelayFaultKind kind) {
  switch (kind) {
    case RelayFaultKind::kCrash: return "crash";
    case RelayFaultKind::kMaxDelay: return "max-delay";
    case RelayFaultKind::kReorder: return "reorder";
    case RelayFaultKind::kSelectiveDrop: return "selective-drop";
  }
  return "?";
}

RelayAdversary::RelayAdversary(RelayFaultKind kind, const Topology& topology,
                               std::vector<bool> faulty, std::uint64_t seed)
    : kind_(kind), faulty_(std::move(faulty)), seed_(seed) {
  CS_CHECK(faulty_.size() == topology.n());
  if (kind_ != RelayFaultKind::kSelectiveDrop) return;

  // Fix each faulty relay's served subset up front: a seed-chosen ⌈deg/2⌉
  // of its neighbors. Per-relay forks keep the choice independent of how
  // many relays are faulty.
  allow_.resize(topology.n());
  util::Rng rng(seed_ ^ 0x5e1d70bULL);
  for (NodeId v = 0; v < topology.n(); ++v) {
    if (!faulty_[v]) continue;
    std::vector<NodeId> order = topology.neighbors(v);
    util::Rng node_rng = rng.fork(v);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[node_rng.below(i)]);
    const std::size_t keep = (order.size() + 1) / 2;
    allow_[v].assign(topology.n(), false);
    for (std::size_t i = 0; i < keep; ++i) allow_[v][order[i]] = true;
  }
}

bool RelayAdversary::participates(NodeId v) const {
  CS_CHECK(v < faulty_.size());
  return !faulty_[v] || kind_ != RelayFaultKind::kCrash;
}

bool RelayAdversary::forwards(NodeId at, NodeId next) const {
  CS_CHECK(at < faulty_.size() && next < faulty_.size());
  if (!faulty_[at]) return true;
  switch (kind_) {
    case RelayFaultKind::kCrash: return false;
    case RelayFaultKind::kSelectiveDrop: return allow_[at][next];
    case RelayFaultKind::kMaxDelay:
    case RelayFaultKind::kReorder: return true;
  }
  return true;
}

double RelayAdversary::hop_delay(NodeId at, NodeId next,
                                 std::uint64_t flood_id, double honest_delay,
                                 double lo, double hi) const {
  CS_CHECK(at < faulty_.size());
  if (!faulty_[at]) return honest_delay;
  switch (kind_) {
    case RelayFaultKind::kMaxDelay:
      return hi;
    case RelayFaultKind::kReorder: {
      // Pin each copy to one extreme of the legal window by a seed-chosen
      // parity over (relay, destination, flood): two floods forwarded within
      // u_hop of each other can swap arrival order at the same destination.
      const std::uint64_t h =
          util::mix64(seed_ ^ (static_cast<std::uint64_t>(at) << 40) ^
                      (static_cast<std::uint64_t>(next) << 20) ^ flood_id);
      return (h & 1u) != 0 ? hi : lo;
    }
    case RelayFaultKind::kCrash:
    case RelayFaultKind::kSelectiveDrop:
      return honest_delay;
  }
  return honest_delay;
}

}  // namespace crusader::relay
