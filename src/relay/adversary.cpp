#include "relay/adversary.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace crusader::relay {

namespace {

std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

}  // namespace

const char* to_string(RelayFaultKind kind) {
  switch (kind) {
    case RelayFaultKind::kCrash: return "crash";
    case RelayFaultKind::kMaxDelay: return "max-delay";
    case RelayFaultKind::kReorder: return "reorder";
    case RelayFaultKind::kSelectiveDrop: return "selective-drop";
    case RelayFaultKind::kGreedySkew: return "greedy-skew";
    case RelayFaultKind::kSearch: return "search";
  }
  return "?";
}

RelayAdversary::RelayAdversary(RelayFaultKind kind, const Topology& topology,
                               std::vector<bool> faulty, std::uint64_t seed,
                               std::uint64_t attack_seed)
    : kind_(kind),
      faulty_(std::move(faulty)),
      seed_(seed),
      attack_seed_(attack_seed) {
  CS_CHECK(faulty_.size() == topology.n());
  if (observing()) {
    late_sum_.assign(topology.n(), 0.0);
    late_count_.assign(topology.n(), 0);
  }
  refresh(topology);
}

void RelayAdversary::refresh(const Topology& topology) {
  CS_CHECK(faulty_.size() == topology.n());
  if (kind_ == RelayFaultKind::kSelectiveDrop) {
    // Fix each faulty relay's served subset against the CURRENT graph: a
    // seed-chosen ⌈deg/2⌉ of its live neighbors. Per-relay forks keep the
    // choice independent of how many relays are faulty, and re-running this
    // against the same graph reproduces the same masks — the refresh is a
    // pure function of (graph, faulty set, seed).
    allow_.assign(topology.n(), {});
    util::Rng rng(seed_ ^ 0x5e1d70bULL);
    for (NodeId v = 0; v < topology.n(); ++v) {
      if (!faulty_[v]) continue;
      std::vector<NodeId> order = topology.neighbors(v);
      util::Rng node_rng = rng.fork(v);
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[node_rng.below(i)]);
      const std::size_t keep = (order.size() + 1) / 2;
      allow_[v].assign(topology.n(), false);
      for (std::size_t i = 0; i < keep; ++i) allow_[v][order[i]] = true;
    }
    return;
  }
  if (adaptive(kind_)) {
    // Adaptive drop victims are chosen among live edges only.
    nbrs_.assign(topology.n(), {});
    for (NodeId v = 0; v < topology.n(); ++v) {
      if (faulty_[v]) nbrs_[v] = topology.neighbors(v);
    }
  }
}

bool RelayAdversary::participates(NodeId v) const {
  CS_CHECK(v < faulty_.size());
  return !faulty_[v] || kind_ != RelayFaultKind::kCrash;
}

void RelayAdversary::observe(NodeId at, std::uint64_t flood_id,
                             std::uint32_t hops, double now) {
  CS_CHECK(at < late_sum_.size());
  ++obs_count_;
  obs_digest_ = util::mix64(obs_digest_ ^ (static_cast<std::uint64_t>(at) << 40) ^
                            (static_cast<std::uint64_t>(hops) << 32) ^ flood_id);
  obs_digest_ = util::mix64(obs_digest_ ^ double_bits(now));
  const auto it = flood_first_.try_emplace(flood_id, now).first;
  const double lateness = now - it->second;
  late_sum_[at] += lateness;
  ++late_count_[at];
  late_total_ += lateness;
  ++late_total_count_;
}

bool RelayAdversary::lagging(NodeId v) const {
  if (v >= late_count_.size() || late_count_[v] == 0) return true;
  if (late_total_count_ == 0) return true;
  const double mean = late_total_ / static_cast<double>(late_total_count_);
  return late_sum_[v] / static_cast<double>(late_count_[v]) >= mean;
}

NodeId RelayAdversary::greedy_victim(NodeId at) const {
  const auto& nbrs = nbrs_[at];
  if (nbrs.size() < 2) return kInvalidNode;
  NodeId victim = kInvalidNode;
  double worst = 0.0;
  for (const NodeId next : nbrs) {
    if (next >= late_count_.size() || late_count_[next] == 0) continue;
    const double avg =
        late_sum_[next] / static_cast<double>(late_count_[next]);
    // Strict > keeps the first (neighbor-order) node on ties — the choice
    // must not depend on container iteration quirks.
    if (victim == kInvalidNode || avg > worst) {
      victim = next;
      worst = avg;
    }
  }
  return victim;
}

bool RelayAdversary::forwards(NodeId at, NodeId next,
                              std::uint64_t flood_id) const {
  CS_CHECK(at < faulty_.size() && next < faulty_.size());
  if (!faulty_[at]) return true;
  switch (kind_) {
    case RelayFaultKind::kCrash: return false;
    case RelayFaultKind::kSelectiveDrop: return allow_[at][next];
    case RelayFaultKind::kMaxDelay:
    case RelayFaultKind::kReorder: return true;
    case RelayFaultKind::kGreedySkew:
      return next != greedy_victim(at);
    case RelayFaultKind::kSearch: {
      if (attack_seed_ == 0) return next != greedy_victim(at);
      const auto& nbrs = nbrs_[at];
      const std::size_t deg = nbrs.size();
      if (deg < 2) return true;
      // One victim per (relay, flood), index `deg` meaning "drop nobody".
      const std::uint64_t h = util::mix64(
          attack_seed_ ^ 0xd40bULL ^ (static_cast<std::uint64_t>(at) << 32) ^
          flood_id);
      const std::size_t idx = static_cast<std::size_t>(h % (deg + 1));
      return idx == deg || nbrs[idx] != next;
    }
  }
  return true;
}

double RelayAdversary::hop_delay(NodeId at, NodeId next,
                                 std::uint64_t flood_id, double honest_delay,
                                 double lo, double hi) const {
  CS_CHECK(at < faulty_.size());
  if (!faulty_[at]) return honest_delay;
  switch (kind_) {
    case RelayFaultKind::kMaxDelay:
      return hi;
    case RelayFaultKind::kReorder: {
      // Pin each copy to one extreme of the legal window by a seed-chosen
      // parity over (relay, destination, flood): two floods forwarded within
      // u_hop of each other can swap arrival order at the same destination.
      const std::uint64_t h =
          util::mix64(seed_ ^ (static_cast<std::uint64_t>(at) << 40) ^
                      (static_cast<std::uint64_t>(next) << 20) ^ flood_id);
      return (h & 1u) != 0 ? hi : lo;
    }
    case RelayFaultKind::kGreedySkew:
      // Widen the frontier gap: full d_hop toward the lagging side, the
      // fastest legal delay toward the leaders.
      return lagging(next) ? hi : lo;
    case RelayFaultKind::kSearch: {
      if (attack_seed_ == 0) return lagging(next) ? hi : lo;
      const std::uint64_t h = util::mix64(
          attack_seed_ ^ (static_cast<std::uint64_t>(at) << 40) ^
          (static_cast<std::uint64_t>(next) << 20) ^ flood_id);
      return (h & 1u) != 0 ? hi : lo;
    }
    case RelayFaultKind::kCrash:
    case RelayFaultKind::kSelectiveDrop:
      return honest_delay;
  }
  return honest_delay;
}

}  // namespace crusader::relay
