#pragma once
// Byzantine relay adversaries for the Appendix-A flood overlay.
//
// Signatures neutralize equivocation: a faulty relay cannot alter or forge
// the copies it forwards. What it CAN still do — and what the paper's
// translation must survive — is delay, reorder, or selectively drop them.
// The per-relay behaviors modeled here:
//
//  * kCrash — drop everything (the node neither speaks nor relays). This is
//    the crash-relay worst case for connectivity the overlay modeled before
//    this policy existed.
//  * kMaxDelay — forward every copy at the full per-hop bound d_hop while
//    honest hops may be faster. Legal (delays stay in [d_hop − u_hop,
//    d_hop]) but maximally skews path timing against the balancing hold.
//  * kReorder — permute deliveries inside the legal window: each forwarded
//    copy is pinned to one extreme of [d_hop − u_hop, d_hop] by a
//    seed-chosen parity, so copies of later floods overtake earlier ones and
//    the flood dedupe's implicit FIFO assumptions are stressed.
//  * kSelectiveDrop — forward to only a seed-chosen half of the neighbors
//    (⌈deg/2⌉): the connectivity-halving worst case short of crashing. The
//    surviving graph still contains every path that exists with the relay
//    deleted outright, so the D_f distance bound continues to hold.
//
// Every behavior is within the model: realized skew must therefore stay
// within the Theorem-17 bound at the effective (d_eff, u_eff) — which is
// exactly what tests/test_relay_adversary.cpp asserts.

#include <cstdint>
#include <vector>

#include "relay/topology.hpp"
#include "util/ids.hpp"

namespace crusader::relay {

/// Per-relay misbehavior of a faulty node in the flood overlay.
enum class RelayFaultKind { kCrash, kMaxDelay, kReorder, kSelectiveDrop };

[[nodiscard]] const char* to_string(RelayFaultKind kind);

/// Deterministic per-relay fault policy. All choices (selective-drop subsets,
/// reorder parities) are pure functions of (kind, topology, faulty set,
/// seed), so relay worlds stay bit-reproducible across threads and runs.
class RelayAdversary {
 public:
  RelayAdversary(RelayFaultKind kind, const Topology& topology,
                 std::vector<bool> faulty, std::uint64_t seed);

  [[nodiscard]] RelayFaultKind kind() const noexcept { return kind_; }

  /// Whether node v runs its protocol instance and relays at all. Faulty
  /// nodes participate under every kind except kCrash — a delaying or
  /// dropping relay still speaks, and its own broadcasts are forwarded
  /// under the same adversarial policy as everyone else's.
  [[nodiscard]] bool participates(NodeId v) const;

  /// Whether faulty relay `at` forwards flood copies to neighbor `next`
  /// (always true for honest nodes; the selective-drop subset is fixed per
  /// relay, not per flood).
  [[nodiscard]] bool forwards(NodeId at, NodeId next) const;

  /// Delay the faulty relay `at` imposes on the hop to `next` for flood
  /// `flood_id`, given the legal window [lo, hi] and the delay the honest
  /// policy would have chosen. Honest nodes keep `honest_delay`.
  [[nodiscard]] double hop_delay(NodeId at, NodeId next,
                                 std::uint64_t flood_id, double honest_delay,
                                 double lo, double hi) const;

 private:
  RelayFaultKind kind_;
  std::vector<bool> faulty_;
  std::uint64_t seed_;
  /// kSelectiveDrop only: allow_[v] is an n-wide neighbor mask for each
  /// faulty v (empty for honest nodes and other kinds).
  std::vector<std::vector<bool>> allow_;
};

}  // namespace crusader::relay
