#pragma once
// Byzantine relay adversaries for the Appendix-A flood overlay.
//
// Signatures neutralize equivocation: a faulty relay cannot alter or forge
// the copies it forwards. What it CAN still do — and what the paper's
// translation must survive — is delay, reorder, or selectively drop them.
// The per-relay behaviors modeled here:
//
//  * kCrash — drop everything (the node neither speaks nor relays). This is
//    the crash-relay worst case for connectivity the overlay modeled before
//    this policy existed.
//  * kMaxDelay — forward every copy at the full per-hop bound d_hop while
//    honest hops may be faster. Legal (delays stay in [d_hop − u_hop,
//    d_hop]) but maximally skews path timing against the balancing hold.
//  * kReorder — permute deliveries inside the legal window: each forwarded
//    copy is pinned to one extreme of [d_hop − u_hop, d_hop] by a
//    seed-chosen parity, so copies of later floods overtake earlier ones and
//    the flood dedupe's implicit FIFO assumptions are stressed.
//  * kSelectiveDrop — forward to only a seed-chosen half of the neighbors
//    (⌈deg/2⌉): the connectivity-halving worst case short of crashing. The
//    surviving graph still contains every path that exists with the relay
//    deleted outright, so the D_f distance bound continues to hold.
//  * kGreedySkew — ADAPTIVE: the adversary watches the flood frontier (every
//    hop delivery feeds observe()) and estimates each node's lateness — how
//    far behind the flood's first sighting its copies arrive. A faulty relay
//    then slows the lagging side (full d_hop toward nodes at or above the
//    mean lateness, d_hop − u_hop toward the leaders) and drops the single
//    most-lagging neighbor, widening the fastest/slowest frontier gap online.
//  * kSearch — a budgeted random-search schedule: per-(relay, flood) window
//    extremes and a per-(relay, flood) drop victim, all derived from one
//    attack seed. The runner replays the cell under N candidate seeds (seed
//    0 = play greedy-skew) and keeps the argmax skew, so search weakly
//    dominates greedy by construction and the winning schedule is replayable
//    from its seed alone.
//
// Every behavior is within the model: delays stay inside
// [d_hop − u_hop, d_hop] and at most one neighbor is pruned per forward (the
// surviving graph is a superset of the graph with the relay deleted, so the
// D_f distance bound continues to hold). Realized skew must therefore stay
// within the Theorem-17 bound at the effective (d_eff, u_eff) — which is
// exactly what tests/test_relay_adversary.cpp asserts.
//
// Determinism: the oblivious kinds are pure functions of (kind, topology,
// faulty set, seed). The adaptive kinds additionally read the observation
// stream, which is itself a deterministic function of the simulation — the
// rolling observation_digest() is the replay witness tests compare.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relay/topology.hpp"
#include "util/ids.hpp"

namespace crusader::relay {

/// Per-relay misbehavior of a faulty node in the flood overlay.
enum class RelayFaultKind {
  kCrash,
  kMaxDelay,
  kReorder,
  kSelectiveDrop,
  kGreedySkew,
  kSearch,
};

[[nodiscard]] const char* to_string(RelayFaultKind kind);

/// Whether the kind observes traffic and chooses its behavior online
/// (kGreedySkew) or via a searched attack schedule (kSearch). Adaptive kinds
/// are the only ones that read the attack seed or the observation stream.
[[nodiscard]] constexpr bool adaptive(RelayFaultKind kind) noexcept {
  return kind == RelayFaultKind::kGreedySkew || kind == RelayFaultKind::kSearch;
}

/// Deterministic per-relay fault policy. All choices (selective-drop subsets,
/// reorder parities, search schedules) are pure functions of (kind, topology,
/// faulty set, seed, attack seed); the adaptive greedy policy additionally
/// folds the deterministic observation stream. Relay worlds stay
/// bit-reproducible across threads and runs either way.
class RelayAdversary {
 public:
  /// `attack_seed` parameterizes kSearch's candidate schedule (0 = play the
  /// greedy policy — the search loop's baseline candidate); other kinds
  /// ignore it.
  RelayAdversary(RelayFaultKind kind, const Topology& topology,
                 std::vector<bool> faulty, std::uint64_t seed,
                 std::uint64_t attack_seed = 0);

  [[nodiscard]] RelayFaultKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t attack_seed() const noexcept {
    return attack_seed_;
  }

  /// Rebuilds all topology-derived state (selective-drop masks, adaptive
  /// neighbor lists) against `topology` — a pure function of (kind, graph,
  /// faulty set, seed), so refreshing at an epoch boundary is equivalent to
  /// constructing a fresh adversary against the epoch graph. Observation
  /// state (the traffic already seen) deliberately survives: the adversary
  /// keeps what it learned across rewires.
  void refresh(const Topology& topology);

  /// Whether node v runs its protocol instance and relays at all. Faulty
  /// nodes participate under every kind except kCrash — a delaying or
  /// dropping relay still speaks, and its own broadcasts are forwarded
  /// under the same adversarial policy as everyone else's.
  [[nodiscard]] bool participates(NodeId v) const;

  /// Whether this adversary wants the per-hop observation stream (the
  /// greedy policy, including search's seed-0 baseline candidate). Oblivious
  /// kinds return false so the hot path pays nothing.
  [[nodiscard]] bool observing() const noexcept {
    return kind_ == RelayFaultKind::kGreedySkew ||
           (kind_ == RelayFaultKind::kSearch && attack_seed_ == 0);
  }

  /// Per-hop observation callback: node `at` received flood `flood_id` after
  /// `hops` hops at real time `now`. The full frontier is visible (the
  /// adversary is omniscient about traffic, as SecureTime's attacker model
  /// allows); lateness of each node is measured against the flood's first
  /// sighting anywhere. Deterministic given the simulation, and folded into
  /// observation_digest() so replays can be checked bit-exactly.
  void observe(NodeId at, std::uint64_t flood_id, std::uint32_t hops,
               double now);

  /// Number of observe() calls and the rolling digest over their arguments —
  /// the bit-exact replay witness.
  [[nodiscard]] std::uint64_t observation_count() const noexcept {
    return obs_count_;
  }
  [[nodiscard]] std::uint64_t observation_digest() const noexcept {
    return obs_digest_;
  }

  /// Whether faulty relay `at` forwards flood `flood_id` to neighbor `next`
  /// (always true for honest nodes). Oblivious kinds ignore the flood id;
  /// greedy drops toward the most-lagging neighbor it has observed, search
  /// picks a per-(relay, flood) victim from its attack seed. Both adaptive
  /// kinds never drop below 2 live neighbors' worth of fan-out (at most one
  /// victim per forward).
  [[nodiscard]] bool forwards(NodeId at, NodeId next,
                              std::uint64_t flood_id) const;
  /// Flood-oblivious overload kept for the pre-adaptive call sites and
  /// tests; equivalent to forwards(at, next, 0).
  [[nodiscard]] bool forwards(NodeId at, NodeId next) const {
    return forwards(at, next, 0);
  }

  /// Delay the faulty relay `at` imposes on the hop to `next` for flood
  /// `flood_id`, given the legal window [lo, hi] and the delay the honest
  /// policy would have chosen. Honest nodes keep `honest_delay`.
  [[nodiscard]] double hop_delay(NodeId at, NodeId next,
                                 std::uint64_t flood_id, double honest_delay,
                                 double lo, double hi) const;

 private:
  /// Greedy estimate: is `v` on the lagging side of the observed frontier?
  /// Unobserved nodes count as lagging (no evidence they are ahead).
  [[nodiscard]] bool lagging(NodeId v) const;
  /// The single most-lagging observed neighbor of faulty relay `at`, or
  /// kInvalidNode when nothing has been observed yet (no drop) or the relay
  /// has fewer than 2 neighbors (dropping would disconnect it outright).
  [[nodiscard]] NodeId greedy_victim(NodeId at) const;

  RelayFaultKind kind_;
  std::vector<bool> faulty_;
  std::uint64_t seed_;
  std::uint64_t attack_seed_ = 0;
  /// kSelectiveDrop only: allow_[v] is an n-wide neighbor mask for each
  /// faulty v (empty for honest nodes and other kinds).
  std::vector<std::vector<bool>> allow_;
  /// Adaptive kinds only: the current neighbor list of each faulty relay,
  /// rebuilt by refresh() so drop victims are always chosen among live
  /// edges.
  std::vector<std::vector<NodeId>> nbrs_;

  // --- Observation state (greedy policy only; survives refresh()) ---------
  std::unordered_map<std::uint64_t, double> flood_first_;  ///< flood → t₀
  std::vector<double> late_sum_;          ///< per-node Σ(now − t₀)
  std::vector<std::uint64_t> late_count_;
  double late_total_ = 0.0;
  std::uint64_t late_total_count_ = 0;
  std::uint64_t obs_count_ = 0;
  std::uint64_t obs_digest_ = 0;
};

}  // namespace crusader::relay
