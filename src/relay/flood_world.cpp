#include "relay/flood_world.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/log.hpp"

namespace crusader::relay {

RelayAnalysis analyze_worst_hops(const RelayConfig& config) {
  const auto& hop = config.hop_model;
  const std::uint32_t n = config.topology.n();
  CS_CHECK_MSG(hop.n == n, "hop_model.n must match the topology");
  const bool exact = config.topology.worst_case_distance_is_exact(hop.f);
  if (exact) {
    // Within the budgets both checks are exhaustive (exact).
    CS_CHECK_MSG(config.topology.survives_faults(hop.f),
                 "topology is not (f+1)-connected");
  }
  std::uint32_t worst = config.topology.worst_case_distance(hop.f);
  if (!exact) {
    // Beyond the budgets the exhaustive checks would enumerate C(n, f)
    // subsets (or n sources) — the cliff the budgets exist to avoid — so
    // they degrade together: the sampled walk estimates the all-fault-sets
    // D_f, and the configured faulty set is verified here (connectivity
    // exactly — any BFS reaching every survivor proves it — distances up
    // to the source sample), keeping the hold schedule and the exported
    // bound sound for the adversary this world actually instantiates. An
    // empty configured set is dominated by every probe the sampled walk
    // already ran (removing nodes never shrinks distances), so it needs no
    // extra pass.
    if (!config.faulty.empty()) {
      std::vector<bool> excluded(n, false);
      for (const NodeId v : config.faulty) {
        CS_CHECK(v < n);
        excluded[v] = true;
      }
      worst = std::max(worst,
                       config.topology.worst_distance_with_faults(
                           excluded, config.topology.sampled_source_cap()));
    }
    CS_WARN << "relay: n=" << n << ", f=" << hop.f
            << " exceeds the worst_case_distance budgets; D_f=" << worst
            << " is a sampled lower bound (subset and/or source sampled)";
  }
  return RelayAnalysis{worst, exact};
}

RelayAnalysis analyze_schedule_worst_hops(const TopologySchedule& schedule,
                                          std::uint32_t f) {
  const std::uint32_t n = schedule.initial().n();
  // Per-epoch, the excluded set is the concrete down mask — no C(n, f)
  // subset walk — so exactness only hinges on the source budget.
  const bool exact = n <= Topology::kWorstCaseSourceBudget;
  std::uint32_t worst = 0;
  const std::size_t epochs = schedule.deltas().size();
  for (std::size_t e = 0; e <= epochs; ++e) {
    const Topology topo = schedule.at_epoch(e);
    const std::vector<bool> down = schedule.down_at(e);
    worst = std::max(worst, topo.worst_distance_with_faults(
                                down, exact ? 0u : topo.sampled_source_cap()));
  }
  if (f > 0) {
    CS_WARN << "relay: dynamic schedule analyzed with f=" << f
            << "; D_f covers the realized epoch graphs only, not every "
               "fault set";
  }
  if (!exact) {
    CS_WARN << "relay: dynamic n=" << n
            << " exceeds the source budget; per-epoch D_f=" << worst
            << " is a sampled lower bound";
  }
  return RelayAnalysis{worst, exact};
}

RelayEffective effective_from_hops(const sim::ModelParams& hop,
                                   RelayAnalysis analysis) {
  sim::ModelParams eff = hop;
  const double hops = static_cast<double>(analysis.worst_hops);
  eff.d = hops * hop.d;
  // Balanced delivery: uncertainty = accumulated per-hop uncertainty plus
  // the drift of the destination-side hold (measured on a local clock).
  eff.u = hops * hop.u + (hop.vartheta - 1.0) * hops * hop.d;
  eff.u_tilde = eff.u;
  eff.validate();  // also enforces d_eff > 2 u_eff
  return RelayEffective{eff, analysis.worst_hops, analysis.exact};
}

RelayEffective compute_effective(const RelayConfig& config) {
  return effective_from_hops(config.hop_model, analyze_worst_hops(config));
}

sim::ModelParams effective_model(const RelayConfig& config) {
  return compute_effective(config).model;
}

RelayEffective EffectiveCache::get(std::uint64_t key,
                                   const RelayConfig& config) {
  // The memo key digests static analysis inputs only; a churned cell's
  // per-epoch analysis must never alias a static family's entry (or another
  // schedule's). Dynamic cells go through analyze_schedule_worst_hops
  // directly.
  CS_CHECK_MSG(config.schedule == nullptr || !config.schedule->dynamic(),
               "EffectiveCache must not serve dynamic schedules");
  {
    util::MutexLock lock(mu_);
    const auto it = analyses_.find(key);
    if (it != analyses_.end()) {
      ++hits_;
      // The hit path is pure arithmetic: D_f AND the exactness/budget
      // decision replay from the cache, so n = 10^5 setup stays O(1) after
      // the first cell (and the sampling CS_WARN fires once, at analysis).
      return effective_from_hops(config.hop_model, it->second);
    }
  }
  // Analyze outside the lock: a racing duplicate computes the same value
  // (analysis is a pure function of the keyed inputs); emplace keeps one.
  const RelayAnalysis analysis = analyze_worst_hops(config);
  util::MutexLock lock(mu_);
  analyses_.emplace(key, analysis);
  ++misses_;
  return effective_from_hops(config.hop_model, analysis);
}

std::size_t EffectiveCache::hits() const {
  util::MutexLock lock(mu_);
  return hits_;
}

std::size_t EffectiveCache::misses() const {
  util::MutexLock lock(mu_);
  return misses_;
}

/// Env implementation: physical sends become floods; everything else is the
/// standard world machinery.
class RelayWorld::NodeHost final : public sim::Env {
 public:
  NodeHost(NodeId id, RelayWorld* world, std::unique_ptr<sim::PulseNode> node)
      : id_(id), world_(world), node_(std::move(node)) {}

  void start() { node_->on_start(*this); }

  /// Leave teardown: the host moves to the graveyard (queued engine closures
  /// still point at it) and must go silent — queued timers fire into a
  /// deactivated host and do nothing.
  void deactivate() { active_ = false; }

  /// First copy of a flood processed here (post-hold).
  void process(const sim::Message& m) { node_->on_message(*this, m); }

  /// Flood bookkeeping: returns true when this id was not seen before.
  bool first_sight(std::uint64_t flood_id) {
    return seen_.insert(flood_id).second;
  }

  /// Destination-side hold management: keep the earliest processing time.
  /// Unordered: only ever probed by flood id, never iterated, so hash order
  /// cannot leak into execution order.
  struct PendingFlood {
    sim::EventId event = 0;
    double process_local = 0.0;
    bool processed = false;
  };
  std::unordered_map<std::uint64_t, PendingFlood> pending_;

  // --- sim::Env -----------------------------------------------------------
  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] const sim::ModelParams& model() const override {
    return world_->effective_;
  }
  [[nodiscard]] double local_now() const override {
    return world_->clocks_[id_].local(world_->engine_.now());
  }
  void send(NodeId to, sim::Message m) override {
    // Point-to-point sends also ride the flood (every protocol message here
    // is broadcast-like; unicast just gets filtered by recipients).
    (void)to;
    m.sender = id_;
    world_->flood_from(id_, m);
  }
  void broadcast(const sim::Message& m) override {
    sim::Message copy = m;
    copy.sender = id_;
    world_->flood_from(id_, copy);
  }
  sim::TimerId schedule_at_local(double local_time, std::uint64_t tag) override {
    const auto& clock = world_->clocks_[id_];
    const double h0 = clock.segments().front().h0;
    const double t = local_time <= h0 ? 0.0 : clock.real(local_time);
    return world_->engine_.at(std::max(t, world_->engine_.now()), [this, tag] {
      if (active_) node_->on_timer(*this, tag);
    });
  }
  void cancel_timer(sim::TimerId id) override { world_->engine_.cancel(id); }
  void pulse() override {
    world_->trace_->record(id_, world_->engine_.now(), local_now());
  }
  [[nodiscard]] crypto::Signature sign(
      const crypto::SignedPayload& payload) override {
    return world_->pki_->sign(id_, payload, 0);
  }
  [[nodiscard]] bool verify(const crypto::Signature& sig,
                            const crypto::SignedPayload& payload) const override {
    return world_->pki_->verify(sig, payload);
  }

 private:
  NodeId id_;
  RelayWorld* world_;
  std::unique_ptr<sim::PulseNode> node_;
  bool active_ = true;
  std::unordered_set<std::uint64_t> seen_;  // membership only, never iterated
};

RelayWorld::RelayWorld(RelayConfig config, sim::HonestFactory factory,
                       std::optional<RelayEffective> effective)
    : config_(std::move(config)), rng_(config_.seed) {
  const RelayEffective eff =
      effective.has_value() ? *effective : compute_effective(config_);
  effective_ = eff.model;
  worst_hops_ = eff.worst_hops;
  const std::uint32_t n = config_.topology.n();
  faulty_.assign(n, false);
  for (NodeId v : config_.faulty) {
    CS_CHECK(v < n);
    faulty_[v] = true;
  }
  CS_CHECK_MSG(config_.faulty.size() <= config_.hop_model.f,
               "more faulty nodes than the fault budget");
  if (config_.schedule != nullptr && config_.schedule->dynamic()) {
    dynamic_ = true;
    CS_CHECK_MSG(config_.schedule->initial().n() == n,
                 "schedule initial graph must match the topology size");
    CS_CHECK_MSG(
        config_.faulty.empty() ||
            config_.fault_kind != RelayFaultKind::kCrash,
        "dynamic schedules need participating fault kinds; a crashed "
        "relay under churn is a leave the schedule never recorded");
    CS_CHECK_MSG(config_.epoch_start > 0.0 && config_.epoch_length > 0.0,
                 "dynamic schedule needs positive epoch timing");
    factory_ = factory;
    recent_.resize(n);
    age_check_ = std::make_unique<EdgeAgeTracker>(config_.topology);
  }
  adversary_ = std::make_unique<RelayAdversary>(
      config_.fault_kind, config_.topology, faulty_,
      config_.seed ^ 0xada7eULL, config_.attack_seed);

  pki_ = std::make_unique<crypto::Pki>(n, config_.pki_kind,
                                       config_.seed ^ 0xf100dULL);
  hop_policy_ = config_.custom_delay
                    ? config_.custom_delay()
                    : sim::make_delay_policy(config_.delay_kind, n);
  // Churned nodes are excluded from the skew metrics alongside faulty ones:
  // a torn-down host restarts its protocol from scratch on rejoin, so its
  // pulse numbering is not comparable with nodes that ran throughout.
  std::vector<bool> metric_mask = faulty_;
  if (dynamic_) {
    const std::vector<bool> churned = config_.schedule->ever_churned();
    for (NodeId v = 0; v < n; ++v) {
      if (churned[v]) metric_mask[v] = true;
    }
    // Faulty relays must be pinned against churn (ChurnPolicy::pinned): a
    // leave/rejoin of a Byzantine node is a crash-and-restart, a strictly
    // weaker adversary than the persistent one this cell claims to run.
    for (const NodeId v : config_.faulty)
      CS_CHECK_MSG(!churned[v],
                   "faulty relays may not churn; pin them in ChurnPolicy");
  }
  trace_ = std::make_unique<sim::PulseTrace>(n, metric_mask);

  // Clocks: reuse the world conventions.
  const double s0 = config_.initial_offset;
  const double vt = config_.hop_model.vartheta;
  for (NodeId v = 0; v < n; ++v) {
    switch (config_.clock_kind) {
      case sim::ClockKind::kNominal:
        clocks_.push_back(sim::HardwareClock::constant(
            1.0, n > 1 ? s0 * v / (n - 1) : 0.0));
        break;
      case sim::ClockKind::kSpread: {
        const bool fast = (v % 2) == 1;
        clocks_.push_back(
            sim::HardwareClock::constant(fast ? vt : 1.0, fast ? s0 : 0.0));
        break;
      }
      default: {
        util::Rng node_rng = rng_.fork(0xc10c000ULL + v);
        const double offset = node_rng.uniform(0.0, s0);
        clocks_.push_back(sim::HardwareClock::random_walk(
            node_rng, vt, offset, 5.0, config_.horizon + effective_.d));
        break;
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (!adversary_->participates(v)) {
      hosts_.push_back(nullptr);  // crashed node: no protocol, no relaying
      continue;
    }
    // Non-crash faulty nodes run the protocol too — their misbehavior lives
    // entirely in how they forward (and the trace excludes them from the
    // skew metrics regardless).
    hosts_.push_back(std::make_unique<NodeHost>(v, this, factory(v)));
  }

  if (dynamic_) {
    // Retain forwards long enough to bridge an epoch of disconnection plus
    // the in-flight horizon of a flood.
    retention_ = 2.0 * (config_.epoch_length + effective_.d);
    // Epoch boundary events are scheduled up front, before any protocol
    // event exists: at an equal timestamp the queue's FIFO tie-break then
    // fires the delta first, so round r provably runs on at_epoch(r).
    const std::size_t epochs = config_.schedule->deltas().size();
    for (std::size_t e = 0; e < epochs; ++e) {
      const double t =
          config_.epoch_start + static_cast<double>(e) * config_.epoch_length;
      if (t > config_.horizon) break;
      engine_.at(t, [this, e] { apply_delta(e); });
    }
  }
}

RelayWorld::~RelayWorld() = default;

void RelayWorld::apply_delta(std::size_t epoch) {
  const EpochDelta& delta = config_.schedule->deltas()[epoch];
  // Joins first: a rejoining node's fresh edges are in `added`, and its new
  // host must exist before retained floods replay across them. The restarted
  // protocol instance begins from scratch — convergence into the running
  // cell is the protocol's problem (and the metrics exclude the node).
  for (const NodeId v : delta.joins) {
    CS_CHECK(hosts_[v] == nullptr);
    hosts_[v] = std::make_unique<NodeHost>(v, this, factory_(v));
    hosts_[v]->start();
  }
  for (const auto& [a, b] : delta.removed) {
    config_.topology.remove_edge(a, b);
  }
  for (const auto& [a, b] : delta.added) {
    config_.topology.add_edge(a, b);
  }
  // Refresh topology-derived adversary state against the completed epoch
  // graph BEFORE replaying retained floods across the new edges: a faulty
  // relay's drop masks and victim lists must describe its post-rewire
  // neighbor set, never the stale initial one. The refresh is a pure
  // function of (kind, graph, faulty set, seed) — see RelayAdversary. The
  // replays themselves then run under the refreshed policy (reforward
  // consults the adversary like any other forward). Delay-policy RNG draws
  // happen in the same (a,b)/(b,a) order as before, so fault-free dynamic
  // cells keep their historical bytes.
  adversary_->refresh(config_.topology);
  for (const auto& [a, b] : delta.added) {
    reforward(a, b);
    reforward(b, a);
  }
  for (const NodeId v : delta.leaves) {
    CS_CHECK(hosts_[v] != nullptr);
    hosts_[v]->deactivate();
    graveyard_.push_back(std::move(hosts_[v]));
    hosts_[v] = nullptr;
    recent_[v].clear();
  }
  // Cross-check: the metric-side replay (EdgeAgeTracker, as walked by
  // runner/kllo.cpp) must land on exactly the graph the world now runs on.
  age_check_->apply(delta);
  CS_CHECK(age_check_->epoch() == epoch + 1);
  CS_CHECK(age_check_->topology().edge_count() ==
           config_.topology.edge_count());
  for (const auto& [a, b] : delta.added)
    CS_CHECK(age_check_->age(a, b) == 0);
  // Prune the retention window once per epoch — the only place entries age
  // out, so the per-node vectors stay bounded by the window's flood count.
  const double cutoff = engine_.now() - retention_;
  for (auto& retained : recent_) {
    retained.erase(std::remove_if(retained.begin(), retained.end(),
                                  [cutoff](const RetainedFlood& r) {
                                    return r.seen_at < cutoff;
                                  }),
                   retained.end());
  }
}

void RelayWorld::reforward(NodeId from, NodeId to) {
  if (hosts_[from] == nullptr) return;
  // A faulty retainer replays through the same adversary policy as a live
  // forward: pruned destinations stay pruned and delays stay overridden —
  // otherwise a rewire would launder an adversarial edge into an honest one.
  const bool adversarial = faulty_[from];
  const double lo = config_.hop_model.d - config_.hop_model.u;
  const double hi = config_.hop_model.d;
  for (const RetainedFlood& r : recent_[from]) {
    if (adversarial && !adversary_->forwards(from, to, r.flood_id)) continue;
    double delay =
        hop_policy_->delay(from, to, engine_.now(), *r.ref, lo, hi, rng_);
    if (adversarial)
      delay = adversary_->hop_delay(from, to, r.flood_id, delay, lo, hi);
    ++physical_messages_;
    engine_.at(engine_.now() + delay,
               [this, to, flood_id = r.flood_id, next_hops = r.hops + 1,
                ref = r.ref] { hop_deliver(to, flood_id, next_hops, ref); });
  }
}

void RelayWorld::flood_from(NodeId origin, const sim::Message& m) {
  const std::uint64_t flood_id = next_flood_++;
  // One arena payload per flood: every hop, hold, and processing event
  // shares it instead of copying the Message per scheduled event.
  hop_deliver(origin, flood_id, 0, arena_.acquire(m));
}

void RelayWorld::hop_deliver(NodeId at, std::uint64_t flood_id,
                             std::uint32_t hops,
                             const sim::MessageArena::Ref& ref) {
  // `at` just obtained this flood copy after `hops` hops. Whether a faulty
  // node takes part at all is the adversary policy's call (kCrash drops
  // everything — including the node's own broadcasts, which never start
  // because crashed nodes have no host).
  if (hosts_[at] == nullptr) return;
  // Adaptive adversaries watch the whole frontier: every delivery (not just
  // first sights) feeds the observation stream. The guard keeps oblivious
  // kinds at zero cost; determinism holds because hop_deliver invocation
  // order is itself deterministic (and invariant across the batch fast path
  // and thread counts — see tests/test_relay_adaptive.cpp).
  if (adversary_->observing())
    adversary_->observe(at, flood_id, hops, engine_.now());
  NodeHost& host = *hosts_[at];
  const sim::Message& m = *ref;

  // Neighbor-cast: a received copy is processed on arrival — no hold (the
  // one-hop delay IS the per-edge link under test) — and never forwarded;
  // the hops == 0 origin falls through to the forwarding machinery below,
  // which reaches exactly the current neighbors.
  if (config_.neighbor_cast && hops > 0) {
    if (at != m.sender) host.process(m);
    return;
  }

  // Destination-side processing with path balancing. The origin never
  // processes copies of its own broadcast that cycle back to it.
  if (hops > 0 && at != m.sender) {
    const double hold_local =
        static_cast<double>(worst_hops_ - std::min(hops, worst_hops_)) *
        config_.hop_model.d;
    const double process_local = host.local_now() + hold_local;
    auto [it, inserted] = host.pending_.try_emplace(flood_id);
    auto& pending = it->second;
    // Keep the earliest processing time across copies (a later copy with a
    // smaller remaining hold can beat an earlier one).
    if (!pending.processed &&
        (inserted || process_local < pending.process_local - 1e-12)) {
      if (!inserted) engine_.cancel(pending.event);
      pending.process_local = process_local;
      const double t =
          std::max(clocks_[at].real(process_local), engine_.now());
      pending.event = engine_.at(t, [this, at, flood_id, ref]() {
        if (hosts_[at] == nullptr) return;  // left before the hold expired
        auto& h = *hosts_[at];
        auto pit = h.pending_.find(flood_id);
        if (pit == h.pending_.end() || pit->second.processed) return;
        pit->second.processed = true;
        h.process(*ref);
      });
    }
  }

  // Forward once per flood id. Faulty relays forward through the adversary
  // policy: neighbor pruning (selective drop) and delay override (max-delay
  // holds the full d_hop, reorder pins window extremes) — all still within
  // the model's legal [d_hop − u_hop, d_hop].
  if (!host.first_sight(flood_id)) return;
  if (dynamic_ && !config_.neighbor_cast) {
    // Record at forward time: whatever this node pushes to its current
    // neighbors is what a future edge to it must replay. Neighbor-cast
    // messages are strictly one-hop round beacons — a new edge simply
    // carries the next round, so nothing is retained or replayed.
    recent_[at].push_back(RetainedFlood{flood_id, hops, ref, engine_.now()});
  }
  const bool adversarial = faulty_[at];
  const auto& nbrs = config_.topology.neighbors(at);
  const double lo = config_.hop_model.d - config_.hop_model.u;
  const double hi = config_.hop_model.d;

  if (!config_.batch || adversarial) {
    // Reference path (and always the path for faulty relays: their forward
    // pruning and per-copy delay overrides are per neighbor).
    for (const NodeId next : nbrs) {
      if (adversarial && !adversary_->forwards(at, next, flood_id)) continue;
      double delay = hop_policy_->delay(at, next, engine_.now(), m, lo, hi, rng_);
      if (adversarial)
        delay = adversary_->hop_delay(at, next, flood_id, delay, lo, hi);
      ++physical_messages_;
      engine_.at(engine_.now() + delay, [this, next, flood_id, hops, ref]() {
        hop_deliver(next, flood_id, hops + 1, ref);
      });
    }
    return;
  }

  // Fast path: group maximal runs of consecutive neighbors with
  // exactly-equal delay into one aggregate event each. Policy calls happen
  // per neighbor in neighbor order (identical RNG stream to the reference
  // path); equal-time ordering is preserved because within a run neighbors
  // expand in list order and runs fire in scheduling order under the
  // queue's FIFO tie-break. The aggregate credits the engine so
  // events_processed() stays per-hop.
  const auto n_nbrs = static_cast<std::uint32_t>(nbrs.size());
  double run_delay = 0.0;
  std::uint32_t run_begin = 0;
  std::uint32_t run_count = 0;
  auto flush = [&](std::uint32_t run_end) {
    if (run_count == 0) return;
    if (dynamic_) {
      // An epoch delta can rewrite the adjacency list between scheduling
      // and firing, so the aggregate must capture the neighbor ids, not
      // indices into a list that may no longer exist.
      std::vector<NodeId> targets(nbrs.begin() + run_begin,
                                  nbrs.begin() + run_end + 1);
      engine_.at(engine_.now() + run_delay,
                 [this, targets = std::move(targets), flood_id,
                  next_hops = hops + 1, ref] {
                   engine_.credit_events(targets.size() - 1);
                   for (const NodeId next : targets)
                     hop_deliver(next, flood_id, next_hops, ref);
                 });
      return;
    }
    engine_.at(engine_.now() + run_delay,
               [this, at, i0 = run_begin, i1 = run_end, flood_id,
                next_hops = hops + 1, ref] {
                 engine_.credit_events(i1 - i0);
                 const auto& nb = config_.topology.neighbors(at);
                 for (std::uint32_t i = i0; i <= i1; ++i)
                   hop_deliver(nb[i], flood_id, next_hops, ref);
               });
  };
  for (std::uint32_t i = 0; i < n_nbrs; ++i) {
    const double delay =
        hop_policy_->delay(at, nbrs[i], engine_.now(), m, lo, hi, rng_);
    ++physical_messages_;
    if (run_count > 0 && delay == run_delay) {
      ++run_count;
    } else {
      if (run_count > 0) flush(i - 1);
      run_delay = delay;
      run_begin = i;
      run_count = 1;
    }
  }
  if (run_count > 0) flush(n_nbrs - 1);
}

RelayRunResult RelayWorld::run() {
  for (NodeId v = 0; v < config_.topology.n(); ++v) {
    if (hosts_[v] == nullptr) continue;
    engine_.at(0.0, [this, v] { hosts_[v]->start(); });
  }
  engine_.run_until(config_.horizon);

  RelayRunResult result;
  result.trace = *trace_;
  result.effective = effective_;
  result.worst_hops = worst_hops_;
  result.physical_messages = physical_messages_;
  result.floods = next_flood_;
  result.events = engine_.events_processed();
  result.sign_ops = pki_->sign_count();
  result.verify_ops = pki_->verify_count();
  return result;
}

}  // namespace crusader::relay
