#include "relay/topology.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace crusader::relay {

Topology::Topology(std::uint32_t n) : adj_(n) {
  CS_CHECK_MSG(n >= 2, "topology needs at least two nodes");
}

void Topology::add_edge(NodeId a, NodeId b) {
  CS_CHECK(a < n() && b < n() && a != b);
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++edges_;
}

void Topology::remove_edge(NodeId a, NodeId b) {
  CS_CHECK(a < n() && b < n() && a != b);
  const auto ita = std::find(adj_[a].begin(), adj_[a].end(), b);
  if (ita == adj_[a].end()) return;
  adj_[a].erase(ita);
  const auto itb = std::find(adj_[b].begin(), adj_[b].end(), a);
  CS_CHECK(itb != adj_[b].end());
  adj_[b].erase(itb);
  --edges_;
}

bool Topology::has_edge(NodeId a, NodeId b) const {
  CS_CHECK(a < n() && b < n());
  return std::find(adj_[a].begin(), adj_[a].end(), b) != adj_[a].end();
}

const std::vector<NodeId>& Topology::neighbors(NodeId v) const {
  CS_CHECK(v < n());
  return adj_[v];
}

std::uint32_t Topology::distance(NodeId s, NodeId t,
                                 const std::vector<bool>& excluded) const {
  CS_CHECK(s < n() && t < n());
  CS_CHECK(excluded.size() == n());
  if (s == t) return 0;
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(n(), kInf);
  std::deque<NodeId> queue;
  dist[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId w : adj_[v]) {
      if (w != t && excluded[w]) continue;
      if (dist[w] != kInf) continue;
      dist[w] = dist[v] + 1;
      if (w == t) return dist[w];
      queue.push_back(w);
    }
  }
  return kInf;
}

void Topology::for_each_faulty_set(
    std::uint32_t f,
    const std::function<void(std::vector<bool>&)>& fn) const {
  // Enumerate all subsets of size exactly f (smaller sets are dominated:
  // removing fewer nodes never increases distances).
  std::vector<NodeId> subset;
  std::vector<bool> excluded(n(), false);
  std::function<void(NodeId)> rec = [&](NodeId start) {
    if (subset.size() == f) {
      fn(excluded);
      return;
    }
    for (NodeId v = start; v < n(); ++v) {
      excluded[v] = true;
      subset.push_back(v);
      rec(v + 1);
      subset.pop_back();
      excluded[v] = false;
    }
  };
  if (f == 0) {
    fn(excluded);
  } else {
    rec(0);
  }
}

void Topology::bfs_from(NodeId s, const std::vector<bool>& excluded,
                        std::vector<std::uint32_t>& dist) const {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  dist.assign(n(), kInf);
  std::deque<NodeId> queue;
  dist[s] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId w : adj_[v]) {
      if (excluded[w] || dist[w] != kInf) continue;
      dist[w] = dist[v] + 1;
      queue.push_back(w);
    }
  }
}

namespace {

/// C(n, f), saturated at `cap` so the comparison against the subset budget
/// never overflows.
std::uint64_t subset_count_capped(std::uint32_t n, std::uint32_t f,
                                  std::uint64_t cap) {
  std::uint64_t count = 1;
  for (std::uint32_t i = 0; i < f; ++i) {
    if (count > cap) return cap + 1;
    count = count * (n - i) / (i + 1);
  }
  return std::min(count, cap + 1);
}

}  // namespace

bool Topology::survives_faults(std::uint32_t f) const {
  CS_CHECK_MSG(f + 2 <= n(), "need at least f+2 nodes");
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  // Connectivity of the surviving graph needs ONE BFS per subset (a graph
  // is connected iff one source reaches everyone), not a pairwise walk.
  bool ok = true;
  std::vector<std::uint32_t> dist;
  for_each_faulty_set(f, [&](std::vector<bool>& excluded) {
    if (!ok) return;
    NodeId source = 0;
    while (excluded[source]) ++source;
    bfs_from(source, excluded, dist);
    for (NodeId t = 0; t < n(); ++t)
      if (!excluded[t] && dist[t] == kInf) ok = false;
  });
  return ok;
}

bool Topology::worst_case_distance_is_exact(std::uint32_t f) const {
  return n() <= kWorstCaseSourceBudget &&
         subset_count_capped(n(), f, kWorstCaseSubsetBudget) <=
             kWorstCaseSubsetBudget;
}

std::uint32_t Topology::worst_distance_with_faults(
    const std::vector<bool>& excluded, std::uint32_t source_budget) const {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  CS_CHECK(excluded.size() == n());
  std::vector<NodeId> sources;
  sources.reserve(n());
  for (NodeId s = 0; s < n(); ++s)
    if (!excluded[s]) sources.push_back(s);
  if (source_budget > 0 && sources.size() > source_budget) {
    // Deterministic evenly-strided sample. Every retained BFS still checks
    // full reachability below, so connectivity verification stays exact.
    std::vector<NodeId> sampled;
    sampled.reserve(source_budget);
    for (std::uint32_t i = 0; i < source_budget; ++i)
      sampled.push_back(
          sources[static_cast<std::size_t>(i) * sources.size() / source_budget]);
    sources.swap(sampled);
  }
  std::uint32_t worst = 0;
  std::vector<std::uint32_t> dist;
  for (const NodeId s : sources) {
    bfs_from(s, excluded, dist);
    for (NodeId t = 0; t < n(); ++t) {
      if (t == s || excluded[t]) continue;
      CS_CHECK_MSG(dist[t] != kInf,
                   "faulty set disconnects the topology (not "
                   "(f+1)-connected?)");
      worst = std::max(worst, dist[t]);
    }
  }
  return worst;
}

std::uint32_t Topology::worst_case_distance(std::uint32_t f) const {
  std::uint32_t worst = 0;

  if (worst_case_distance_is_exact(f)) {
    for_each_faulty_set(f, [&](std::vector<bool>& excluded) {
      worst = std::max(worst, worst_distance_with_faults(excluded));
    });  // exhaustive: the exact D_f
    return worst;
  }

  // Beyond the budgets: deterministic sampling. Structured cuts first —
  // deleting f neighbors of one node is how relay paths stretch — then
  // seeded random subsets. Everything is a pure function of (graph, f):
  // same graph, same answer, across runs, threads, and call sites.
  std::vector<bool> excluded(n(), false);
  const std::uint32_t source_cap =
      n() <= kWorstCaseSourceBudget ? 0 : sampled_source_cap();
  auto probe = [&](const std::vector<bool>& ex) {
    worst = std::max(worst, worst_distance_with_faults(ex, source_cap));
  };

  if (n() <= kWorstCaseSourceBudget) {
    // Small-n sampled regime (subset budget exceeded): every node's
    // first-f-neighbors cut, then random subsets up to the probe budget,
    // each with exhaustive sources — the historical sampling behavior.
    std::uint64_t probes = 0;
    for (NodeId v = 0; v < n(); ++v) {
      const auto& nb = adj_[v];
      const std::uint32_t take =
          std::min<std::uint32_t>(f, static_cast<std::uint32_t>(nb.size()));
      for (std::uint32_t i = 0; i < take; ++i) excluded[nb[i]] = true;
      probe(excluded);
      ++probes;
      for (std::uint32_t i = 0; i < take; ++i) excluded[nb[i]] = false;
    }
    util::Rng rng(0xd157a9ceULL ^ (static_cast<std::uint64_t>(n()) << 32) ^ f);
    std::vector<NodeId> picked;
    while (probes < kWorstCaseSubsetBudget) {
      picked.clear();
      while (picked.size() < f) {
        const NodeId v = static_cast<NodeId>(rng.below(n()));
        if (!excluded[v]) {
          excluded[v] = true;
          picked.push_back(v);
        }
      }
      probe(excluded);
      ++probes;
      for (const NodeId v : picked) excluded[v] = false;
    }
    return worst;
  }

  // Large-n sampled regime (source budget exceeded): a strided handful of
  // first-f-neighbors cuts plus a couple of random subsets, each probed
  // with sampled sources, so a 10^5-node analysis is a few dozen BFS walks
  // instead of millions.
  if (f == 0) {
    probe(excluded);  // only one fault set exists: the empty one
    return worst;
  }
  constexpr std::uint32_t kStructuredProbes = 6;
  constexpr std::uint32_t kRandomProbes = 2;
  const NodeId stride = std::max(1u, n() / kStructuredProbes);
  for (NodeId v = 0; v < n(); v += stride) {
    const auto& nb = adj_[v];
    const std::uint32_t take =
        std::min<std::uint32_t>(f, static_cast<std::uint32_t>(nb.size()));
    for (std::uint32_t i = 0; i < take; ++i) excluded[nb[i]] = true;
    probe(excluded);
    for (std::uint32_t i = 0; i < take; ++i) excluded[nb[i]] = false;
  }
  util::Rng rng(0xd157a9ceULL ^ (static_cast<std::uint64_t>(n()) << 32) ^ f);
  std::vector<NodeId> picked;
  for (std::uint32_t p = 0; p < kRandomProbes; ++p) {
    picked.clear();
    while (picked.size() < f) {
      const NodeId v = static_cast<NodeId>(rng.below(n()));
      if (!excluded[v]) {
        excluded[v] = true;
        picked.push_back(v);
      }
    }
    probe(excluded);
    for (const NodeId v : picked) excluded[v] = false;
  }
  return worst;
}

Topology Topology::complete(std::uint32_t n) {
  Topology topo(n);
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = a + 1; b < n; ++b) topo.add_edge(a, b);
  return topo;
}

Topology Topology::ring(std::uint32_t n) {
  Topology topo(n);
  for (NodeId v = 0; v < n; ++v) topo.add_edge(v, (v + 1) % n);
  return topo;
}

Topology Topology::chordal_ring(std::uint32_t n, std::uint32_t stride) {
  CS_CHECK(stride >= 2 && stride < n);
  Topology topo = ring(n);
  for (NodeId v = 0; v < n; ++v) topo.add_edge(v, (v + stride) % n);
  return topo;
}

Topology Topology::ring_of_cliques(std::uint32_t cliques, std::uint32_t size,
                                   std::uint32_t bridges) {
  // Outgoing bridges leave from nodes {0..bridges-1} and incoming bridges
  // land on nodes {size-1 .. size-bridges}: every clique exposes 2*bridges
  // DISTINCT gateway nodes, so cutting the clique ring takes both junctions
  // of a segment (2*bridges nodes) and the topology survives
  // f = 2*bridges − 1 faults anywhere (deleting one junction's endpoints
  // still leaves the ring connected the other way around; see
  // max_topology_faults and the RingOfCliquesConnectivityFormula test).
  CS_CHECK(cliques >= 2 && size >= 2 && bridges >= 1 && 2 * bridges <= size);
  Topology topo(cliques * size);
  auto id = [size](std::uint32_t clique, std::uint32_t i) {
    return static_cast<NodeId>(clique * size + i);
  };
  for (std::uint32_t c = 0; c < cliques; ++c) {
    for (std::uint32_t i = 0; i < size; ++i)
      for (std::uint32_t j = i + 1; j < size; ++j)
        topo.add_edge(id(c, i), id(c, j));
    const std::uint32_t next = (c + 1) % cliques;
    for (std::uint32_t b = 0; b < bridges; ++b)
      topo.add_edge(id(c, b), id(next, size - 1 - b));
  }
  return topo;
}

Topology Topology::hypercube(std::uint32_t dim) {
  CS_CHECK_MSG(dim >= 1 && dim < 31, "hypercube dimension out of range");
  const std::uint32_t n = 1u << dim;
  Topology topo(n);
  for (NodeId v = 0; v < n; ++v)
    for (std::uint32_t bit = 0; bit < dim; ++bit)
      topo.add_edge(v, v ^ (1u << bit));
  return topo;
}

Topology Topology::random_connected(std::uint32_t n, std::uint32_t f,
                                    std::uint64_t seed) {
  CS_CHECK_MSG(f + 2 <= n, "need at least f+2 nodes for f faults");
  Topology topo = ring(n);
  if (topo.survives_faults(f)) return topo;
  util::Rng rng(seed);
  // Add random chords until (f+1)-connected. The complete graph is an upper
  // bound, so this terminates; re-checking connectivity every few edges keeps
  // the brute-force check off the hot path.
  const std::size_t max_edges = static_cast<std::size_t>(n) * (n - 1) / 2;
  std::uint32_t since_check = 0;
  while (topo.edge_count() < max_edges) {
    const NodeId a = static_cast<NodeId>(rng.next_u64() % n);
    const NodeId b = static_cast<NodeId>(rng.next_u64() % n);
    if (a == b || topo.has_edge(a, b)) continue;
    topo.add_edge(a, b);
    if (++since_check >= 2 || topo.edge_count() == max_edges) {
      since_check = 0;
      if (topo.survives_faults(f)) return topo;
    }
  }
  CS_CHECK_MSG(topo.survives_faults(f),
               "random_connected failed to reach (f+1)-connectivity");
  return topo;
}

}  // namespace crusader::relay
