#pragma once
// Sparse-network harness: runs any pulse protocol over a (f+1)-connected
// topology by flooding signed messages along relay paths (Appendix A of the
// paper).
//
// Mechanics:
//  * A broadcast by node `origin` becomes a flood: each honest node forwards
//    the first copy it receives to all its neighbours; faulty nodes behave
//    per the configured RelayAdversary policy (crash / max-delay / reorder /
//    selective-drop, plus the adaptive traffic-observing greedy-skew/search
//    pair — see relay/adversary.hpp). A faulty origin's own
//    broadcast rides the same policy: under every kind except kCrash the
//    node speaks, and its outgoing hops take adversarial delays.
//  * Each physical hop takes an adversary-chosen delay in
//    [d_hop − u_hop, d_hop].
//  * Path balancing (the paper: "one needs to balance the length of the
//    utilized paths in order to keep ũ much smaller than d"): a destination
//    that receives a copy after h hops holds it locally for (D_f − h)·d_hop
//    local-time units before processing, where D_f is the worst-case
//    fault-free hop distance. Every pair's effective link then behaves like
//    a D_f-hop path, so the protocol can run with uniform effective
//    parameters
//        d_eff = D_f · d_hop
//        u_eff = D_f · u_hop + (ϑ−1) · D_f · d_hop   (hold-time drift)
//    instead of the unusable u_eff ≈ d_eff − d_hop of unbalanced delivery.
//
// Protocol nodes run completely unchanged — they just receive the effective
// ModelParams. This is exactly the paper's translation statement.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/signature.hpp"
#include "relay/adversary.hpp"
#include "relay/schedule.hpp"
#include "relay/topology.hpp"
#include "sim/engine.hpp"
#include "sim/hardware_clock.hpp"
#include "sim/message_arena.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"
#include "util/thread_safety.hpp"

namespace crusader::relay {

struct RelayConfig {
  Topology topology = Topology::complete(4);
  /// Per-hop model (d_hop, u_hop, vartheta); n/f are taken from here too.
  sim::ModelParams hop_model;
  std::uint64_t seed = 1;
  double horizon = 200.0;
  double initial_offset = 0.0;
  sim::ClockKind clock_kind = sim::ClockKind::kSpread;
  sim::DelayKind delay_kind = sim::DelayKind::kRandom;
  /// Faulty relay/protocol nodes. How they misbehave is `fault_kind`:
  /// kCrash nodes neither forward nor speak; the other kinds participate
  /// but delay, reorder, or selectively drop what they forward.
  std::vector<NodeId> faulty;
  RelayFaultKind fault_kind = RelayFaultKind::kCrash;
  /// Attack schedule seed for RelayFaultKind::kSearch candidates (0 = the
  /// greedy baseline candidate); ignored by every other kind. See
  /// relay/adversary.hpp.
  std::uint64_t attack_seed = 0;
  /// Optional custom per-hop delay policy factory (overrides delay_kind) —
  /// mirrors sim::WorldConfig::custom_delay so every DelayPolicy is
  /// reachable in relay worlds too.
  std::function<std::unique_ptr<sim::DelayPolicy>()> custom_delay;
  crypto::Pki::Kind pki_kind = crypto::Pki::Kind::kSymbolic;
  /// Flood fast path: honest relays coalesce equal-delay forwards to
  /// consecutive neighbors into one aggregate event sharing an arena
  /// payload. Off forces the per-neighbor reference path; results are
  /// identical either way.
  bool batch = true;
  /// Neighbor-cast transport (the KLLO gradient protocols): a broadcast
  /// reaches exactly the sender's *current* neighbors, one hop, processed on
  /// arrival — no flood, no path-balancing hold, no retention replay. The
  /// effective model is the hop model itself (worst_hops = 1); callers must
  /// pass RelayEffective{hop_model, 1, true} rather than compute_effective
  /// (a one-hop "overlay" does not satisfy d_eff > 2·u_eff validation, nor
  /// does it need to — per-edge locality is the property under test).
  bool neighbor_cast = false;
  /// Dynamic-network schedule. Null (or a static schedule) is the historical
  /// fixed-graph world, byte-identical to the pre-schedule code. When
  /// dynamic, `topology` must equal schedule->initial(); the world mutates
  /// its own copy as epoch deltas apply. Faulty relays are allowed for every
  /// participating fault kind (not kCrash — a crashed relay under churn is a
  /// leave the schedule never recorded) but must never churn themselves:
  /// pin them via ChurnPolicy::pinned when generating the schedule.
  std::shared_ptr<const TopologySchedule> schedule;
  /// Real time at which epoch delta 0 applies; delta e applies at
  /// epoch_start + e·epoch_length. Both required positive when the schedule
  /// is dynamic. The runner aligns them with round boundaries so round r
  /// runs on schedule->at_epoch(r).
  double epoch_start = 0.0;
  double epoch_length = 0.0;
};

struct RelayRunResult {
  sim::PulseTrace trace;
  sim::ModelParams effective;   ///< what the protocol was configured with
  std::uint32_t worst_hops = 0; ///< D_f
  std::uint64_t physical_messages = 0;
  std::uint64_t floods = 0;
  std::uint64_t events = 0;     ///< engine events (comparable across worlds)
  std::uint64_t sign_ops = 0;
  std::uint64_t verify_ops = 0;
};

/// The expensive half's output: the worst-case hop distance D_f plus
/// whether it was derived exhaustively (within the subset/source sampling
/// budgets) or from the sampled walk. This is what EffectiveCache stores —
/// a hit must not re-derive the budget decision (that re-derivation was an
/// O(n·deg) per-cell cost at large n).
struct RelayAnalysis {
  std::uint32_t worst_hops = 0;
  bool exact = true;
};

/// The effective fully-connected model plus the worst-case hop distance D_f
/// it was derived from — computed once and shared between the runner (the
/// feasibility check and CSV columns) and the world (the hold schedule), so
/// the expensive topology analysis runs once per scenario.
struct RelayEffective {
  sim::ModelParams model;
  std::uint32_t worst_hops = 0;
  /// Whether worst_hops is exhaustive over all fault sets (see RelayAnalysis).
  bool exact = true;
};

/// Computes the effective model the flooding overlay presents to the
/// protocol (see file header). Within the worst_case_distance subset budget
/// both the (f+1)-connectivity check and D_f are exhaustive (exact); beyond
/// it both degrade together — D_f comes from the sampled walk and the
/// configured faulty set is verified exactly (connectivity + distances), so
/// the result is guaranteed sound for the adversary this config
/// instantiates though still a lower bound over all possible fault sets (a
/// CS_WARN records this).
[[nodiscard]] RelayEffective compute_effective(const RelayConfig& config);

/// Convenience wrapper around compute_effective for callers that only need
/// the model.
[[nodiscard]] sim::ModelParams effective_model(const RelayConfig& config);

/// The expensive half of compute_effective: the (f+1)-connectivity check and
/// worst-case hop distance D_f (exact within the subset/source budgets,
/// sampled + exact-for-the-configured-faulty-set beyond). Reads only the
/// topology, hop_model.{n,f}, and the faulty set — never d/u/ϑ or the fault
/// kind.
[[nodiscard]] RelayAnalysis analyze_worst_hops(const RelayConfig& config);

/// The cheap half: fold D_f into the effective complete-graph model
/// (d_eff = D_f·d_hop, u_eff = D_f·u_hop + (ϑ−1)·D_f·d_hop). Pure
/// arithmetic, so compute_effective(c) ≡
/// effective_from_hops(c.hop_model, analyze_worst_hops(c)) bit-for-bit.
[[nodiscard]] RelayEffective effective_from_hops(const sim::ModelParams& hop,
                                                RelayAnalysis analysis);

/// Dynamic-schedule counterpart of analyze_worst_hops: the worst pairwise
/// hop distance among *live* nodes, maximized over every epoch graph of the
/// schedule (down nodes are isolated and passed as the BFS exclusion mask).
/// This is realized-schedule analysis — D_f for the graphs the run actually
/// sees — not an adversarial bound over all fault sets; dynamic cells run
/// fault-free, and `f` only widens the warning when callers combine churn
/// with a fault budget. Exact (exhaustive sources per epoch) while n fits
/// the source budget, sampled above it, and deterministic either way.
[[nodiscard]] RelayAnalysis analyze_schedule_worst_hops(
    const TopologySchedule& schedule, std::uint32_t f);

/// Thread-safe per-sweep memo for analyze_worst_hops. Keyed by a
/// caller-provided digest of everything the analysis reads: topology family,
/// n, f, the instantiated faulty set, and the topology seed for seed-grown
/// families (the random family MUST fold the seed in — two cells with
/// different seeds realize different graphs). The relay fault kind is
/// deliberately NOT part of the key: the analysis is fault-kind-independent,
/// and sharing D_f across the relay-fault axis is where the ~4× setup cut
/// comes from. A hit replays the cached D_f through effective_from_hops, so
/// cached and uncached paths return bit-identical RelayEffective.
class EffectiveCache {
 public:
  /// compute_effective with memoization: `key` must digest exactly the
  /// analysis inputs above. Two threads racing on the same key may both run
  /// the analysis (the value is identical; the map keeps one copy) — the
  /// lock is never held across the expensive BFS walk.
  [[nodiscard]] RelayEffective get(std::uint64_t key,
                                   const RelayConfig& config);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

 private:
  mutable util::Mutex mu_;
  /// Membership-only map (find/emplace — never iterated: iteration order
  /// would be hash-dependent and must not feed any output).
  std::unordered_map<std::uint64_t, RelayAnalysis> analyses_ CS_GUARDED_BY(mu_);
  std::size_t hits_ CS_GUARDED_BY(mu_) = 0;
  std::size_t misses_ CS_GUARDED_BY(mu_) = 0;
};

class RelayWorld {
 public:
  /// `effective` must be compute_effective(config) when supplied; passing it
  /// avoids recomputing the topology analysis the caller already ran.
  RelayWorld(RelayConfig config, sim::HonestFactory factory,
             std::optional<RelayEffective> effective = std::nullopt);
  ~RelayWorld();

  RelayRunResult run();

 private:
  class NodeHost;

  /// One forward a node made, retained (dynamic schedules only) so a newly
  /// added edge can replay the recent floods its endpoints would have
  /// exchanged had the edge existed — without this, a message that crossed
  /// the cut before a rewire is permanently lost and a strict-in-order
  /// protocol stalls.
  struct RetainedFlood {
    std::uint64_t flood_id = 0;
    std::uint32_t hops = 0;  ///< hop count at which the retainer received it
    sim::MessageArena::Ref ref;
    double seen_at = 0.0;
  };

  void flood_from(NodeId origin, const sim::Message& m);
  void hop_deliver(NodeId to, std::uint64_t flood_id, std::uint32_t hops,
                   const sim::MessageArena::Ref& ref);
  /// Applies schedule delta `epoch` to the live topology/hosts (joins →
  /// removed → added → leaves) and prunes the retention window.
  void apply_delta(std::size_t epoch);
  /// Replays `from`'s retained floods along a just-added edge to `to`.
  void reforward(NodeId from, NodeId to);

  RelayConfig config_;
  sim::ModelParams effective_;
  std::uint32_t worst_hops_ = 0;
  std::vector<bool> faulty_;
  std::unique_ptr<RelayAdversary> adversary_;
  sim::MessageArena arena_;
  sim::Engine engine_;
  std::unique_ptr<crypto::Pki> pki_;
  std::vector<sim::HardwareClock> clocks_;
  std::unique_ptr<sim::DelayPolicy> hop_policy_;
  util::Rng rng_;
  std::unique_ptr<sim::PulseTrace> trace_;
  std::vector<std::unique_ptr<NodeHost>> hosts_;
  std::uint64_t next_flood_ = 0;
  std::uint64_t physical_messages_ = 0;

  // --- Dynamic-schedule state (inert for static schedules) ----------------
  bool dynamic_ = false;
  /// Dynamic only: an EdgeAgeTracker replayed alongside the live topology as
  /// a cross-check that the world's delta application and the metric walks'
  /// (runner/kllo.cpp) agree on the graph at every epoch.
  std::unique_ptr<EdgeAgeTracker> age_check_;
  sim::HonestFactory factory_;  ///< re-registers hosts for joins
  /// Hosts torn down by leaves. Engine closures capture NodeHost* — the
  /// object must outlive every queued event, so teardown moves it here
  /// (deactivated) instead of destroying it.
  std::vector<std::unique_ptr<NodeHost>> graveyard_;
  std::vector<std::vector<RetainedFlood>> recent_;  ///< per-node, forward-time
  double retention_ = 0.0;  ///< real-time window for recent_ entries
};

}  // namespace crusader::relay
