#pragma once
// Sparse-network harness: runs any pulse protocol over a (f+1)-connected
// topology by flooding signed messages along relay paths (Appendix A of the
// paper).
//
// Mechanics:
//  * A broadcast by node `origin` becomes a flood: each honest node forwards
//    the first copy it receives to all its neighbours; faulty nodes drop
//    everything (crash relays — the worst case for connectivity).
//  * Each physical hop takes an adversary-chosen delay in
//    [d_hop − u_hop, d_hop].
//  * Path balancing (the paper: "one needs to balance the length of the
//    utilized paths in order to keep ũ much smaller than d"): a destination
//    that receives a copy after h hops holds it locally for (D_f − h)·d_hop
//    local-time units before processing, where D_f is the worst-case
//    fault-free hop distance. Every pair's effective link then behaves like
//    a D_f-hop path, so the protocol can run with uniform effective
//    parameters
//        d_eff = D_f · d_hop
//        u_eff = D_f · u_hop + (ϑ−1) · D_f · d_hop   (hold-time drift)
//    instead of the unusable u_eff ≈ d_eff − d_hop of unbalanced delivery.
//
// Protocol nodes run completely unchanged — they just receive the effective
// ModelParams. This is exactly the paper's translation statement.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "crypto/signature.hpp"
#include "relay/topology.hpp"
#include "sim/engine.hpp"
#include "sim/hardware_clock.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace crusader::relay {

struct RelayConfig {
  Topology topology = Topology::complete(4);
  /// Per-hop model (d_hop, u_hop, vartheta); n/f are taken from here too.
  sim::ModelParams hop_model;
  std::uint64_t seed = 1;
  double horizon = 200.0;
  double initial_offset = 0.0;
  sim::ClockKind clock_kind = sim::ClockKind::kSpread;
  sim::DelayKind delay_kind = sim::DelayKind::kRandom;
  /// Crash-faulty relay/protocol nodes (they neither forward nor speak).
  std::vector<NodeId> faulty;
  crypto::Pki::Kind pki_kind = crypto::Pki::Kind::kSymbolic;
};

struct RelayRunResult {
  sim::PulseTrace trace;
  sim::ModelParams effective;   ///< what the protocol was configured with
  std::uint32_t worst_hops = 0; ///< D_f
  std::uint64_t physical_messages = 0;
  std::uint64_t floods = 0;
};

/// Computes the effective fully-connected model the flooding overlay
/// presents to the protocol (see file header).
[[nodiscard]] sim::ModelParams effective_model(const RelayConfig& config);

class RelayWorld {
 public:
  RelayWorld(RelayConfig config, sim::HonestFactory factory);
  ~RelayWorld();

  RelayRunResult run();

 private:
  class NodeHost;

  void flood_from(NodeId origin, const sim::Message& m);
  void hop_deliver(NodeId to, std::uint64_t flood_id, std::uint32_t hops,
                   const sim::Message& m);

  RelayConfig config_;
  sim::ModelParams effective_;
  std::uint32_t worst_hops_ = 0;
  std::vector<bool> faulty_;
  sim::Engine engine_;
  std::unique_ptr<crypto::Pki> pki_;
  std::vector<sim::HardwareClock> clocks_;
  std::unique_ptr<sim::DelayPolicy> hop_policy_;
  util::Rng rng_;
  std::unique_ptr<sim::PulseTrace> trace_;
  std::vector<std::unique_ptr<NodeHost>> hosts_;
  std::uint64_t next_flood_ = 0;
  std::uint64_t physical_messages_ = 0;
};

}  // namespace crusader::relay
