#include "relay/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace crusader::relay {
namespace {

// Order-sensitive digest fold, same splitmix combine as the scenario digest.
[[nodiscard]] std::uint64_t fold(std::uint64_t h, std::uint64_t word) noexcept {
  return util::mix64(h ^ (word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

[[nodiscard]] bool unordered_eq(const std::pair<NodeId, NodeId>& e, NodeId a,
                                NodeId b) noexcept {
  return (e.first == a && e.second == b) || (e.first == b && e.second == a);
}

/// Accumulates one epoch's net edge changes, keeping `added` and `removed`
/// disjoint: adding an edge that was removed earlier this epoch cancels the
/// removal (and vice versa), so the delta describes start-to-end state, not
/// the generator's intermediate churn.
struct DeltaBuilder {
  EpochDelta delta;

  void record_add(NodeId a, NodeId b) {
    auto& removed = delta.removed;
    const auto it = std::find_if(removed.begin(), removed.end(),
                                 [&](const auto& e) { return unordered_eq(e, a, b); });
    if (it != removed.end()) {
      removed.erase(it);
      return;
    }
    delta.added.emplace_back(a, b);
  }

  void record_remove(NodeId a, NodeId b) {
    auto& added = delta.added;
    const auto it = std::find_if(added.begin(), added.end(),
                                 [&](const auto& e) { return unordered_eq(e, a, b); });
    if (it != added.end()) {
      added.erase(it);
      return;
    }
    delta.removed.emplace_back(a, b);
  }
};

/// BFS reachability over the non-down nodes only. Down nodes are isolated by
/// construction, so this is the connectivity of the graph the protocol
/// actually runs on.
[[nodiscard]] bool live_connected(const Topology& topo,
                                  const std::vector<bool>& down) {
  const std::uint32_t n = topo.n();
  NodeId start = kInvalidNode;
  std::size_t live = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (down[v]) continue;
    if (start == kInvalidNode) start = v;
    ++live;
  }
  if (live <= 1) return true;
  std::vector<bool> seen(n, false);
  std::deque<NodeId> queue;
  seen[start] = true;
  queue.push_back(start);
  std::size_t reached = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const NodeId w : topo.neighbors(v)) {
      if (seen[w] || down[w]) continue;
      seen[w] = true;
      ++reached;
      queue.push_back(w);
    }
  }
  return reached == live;
}

/// Uniform live node, or kInvalidNode when the bounded rejection sampling
/// fails (only possible when almost everything is down).
[[nodiscard]] NodeId pick_live(util::Rng& rng, const std::vector<bool>& down,
                               std::uint32_t n) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto v = static_cast<NodeId>(rng.below(n));
    if (!down[v]) return v;
  }
  return kInvalidNode;
}

/// New partner for `keep` under the reconnect policy: a live node not already
/// adjacent to `keep`. Returns kInvalidNode when no eligible partner is found
/// within the sampling budget.
[[nodiscard]] NodeId pick_partner(util::Rng& rng, const Topology& topo,
                                  const std::vector<bool>& down, NodeId keep,
                                  ReconnectPolicy policy) {
  const std::uint32_t n = topo.n();
  const auto eligible = [&](NodeId c) {
    return c != keep && !down[c] && !topo.has_edge(keep, c);
  };
  switch (policy) {
    case ReconnectPolicy::kRandom:
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto c = static_cast<NodeId>(rng.below(n));
        if (eligible(c)) return c;
      }
      return kInvalidNode;
    case ReconnectPolicy::kPreferential: {
      // Best-degree of a handful of random candidates: a cheap seeded stand-in
      // for degree-proportional attachment.
      NodeId best = kInvalidNode;
      for (int draw = 0; draw < 16; ++draw) {
        const auto c = static_cast<NodeId>(rng.below(n));
        if (!eligible(c)) continue;
        if (best == kInvalidNode ||
            topo.neighbors(c).size() > topo.neighbors(best).size()) {
          best = c;
        }
      }
      return best;
    }
    case ReconnectPolicy::kRingRepair:
      // Nearest live non-adjacent node by ring (id) distance, alternating
      // sides so the repair stays local to the broken span.
      for (std::uint32_t off = 1; off < n; ++off) {
        const auto fwd = static_cast<NodeId>((keep + off) % n);
        if (eligible(fwd)) return fwd;
        const auto bwd = static_cast<NodeId>((keep + n - off) % n);
        if (eligible(bwd)) return bwd;
      }
      return kInvalidNode;
  }
  return kInvalidNode;
}

}  // namespace

const char* to_string(ReconnectPolicy policy) {
  switch (policy) {
    case ReconnectPolicy::kRandom:
      return "random";
    case ReconnectPolicy::kPreferential:
      return "preferential";
    case ReconnectPolicy::kRingRepair:
      return "ring-repair";
  }
  return "?";
}

TopologySchedule TopologySchedule::static_schedule(Topology initial) {
  return TopologySchedule(std::move(initial));
}

TopologySchedule TopologySchedule::generate(const Topology& initial,
                                            const ChurnPolicy& policy,
                                            std::uint32_t epochs,
                                            std::uint64_t seed) {
  TopologySchedule schedule(initial);
  if (!policy.dynamic() || epochs == 0) return schedule;
  CS_CHECK(policy.churn_rate >= 0.0 && policy.churn_rate <= 1.0);

  const std::uint32_t n = initial.n();
  Topology cur = initial;
  std::vector<bool> down(n, false);
  // Adjacency each node had at the moment it left, for ring-repair rejoins
  // and for sizing the fresh edge set under the other policies.
  std::vector<std::vector<NodeId>> edges_at_leave(n);
  std::vector<NodeId> prev_leaves;
  util::Rng rng(seed);

  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    DeltaBuilder builder;

    // 1. Rejoin everyone that left last epoch.
    for (const NodeId v : prev_leaves) {
      down[v] = false;
      builder.delta.joins.push_back(v);
      std::size_t connected = 0;
      if (policy.reconnect == ReconnectPolicy::kRingRepair) {
        for (const NodeId p : edges_at_leave[v]) {
          if (down[p] || cur.has_edge(v, p)) continue;
          cur.add_edge(v, p);
          builder.record_add(v, p);
          ++connected;
        }
      } else {
        const std::size_t want = edges_at_leave[v].size();
        for (std::size_t k = 0; k < want; ++k) {
          const NodeId p = pick_partner(rng, cur, down, v, policy.reconnect);
          if (p == kInvalidNode) break;
          cur.add_edge(v, p);
          builder.record_add(v, p);
          ++connected;
        }
      }
      if (connected == 0) {
        // Isolation fallback: any live partner keeps the live graph whole.
        const NodeId p = pick_partner(rng, cur, down, v, ReconnectPolicy::kRandom);
        CS_CHECK(p != kInvalidNode);
        cur.add_edge(v, p);
        builder.record_add(v, p);
      }
      edges_at_leave[v].clear();
    }
    prev_leaves.clear();

    // 2. Rewire a churn_rate fraction of the live edges. Down nodes are
    // isolated, so every current edge is a live edge.
    const auto rewires = static_cast<std::uint64_t>(
        std::llround(policy.churn_rate * static_cast<double>(cur.edge_count())));
    for (std::uint64_t r = 0; r < rewires; ++r) {
      // Node-then-neighbor pick: deterministic and cheap. Slightly biased
      // toward edges at low-degree nodes, which is fine for a churn model.
      const NodeId a = pick_live(rng, down, n);
      if (a == kInvalidNode || cur.neighbors(a).empty()) continue;
      const NodeId b = cur.neighbors(a)[rng.below(cur.neighbors(a).size())];
      cur.remove_edge(a, b);
      if (!live_connected(cur, down)) {
        cur.add_edge(a, b);  // revert: this edge is a live-graph bridge
        continue;
      }
      const NodeId keep = rng.below(2) == 0 ? a : b;
      const NodeId p = pick_partner(rng, cur, down, keep, policy.reconnect);
      if (p == kInvalidNode) {
        cur.add_edge(a, b);  // no replacement partner: undo the removal
        continue;
      }
      builder.record_remove(a, b);
      cur.add_edge(keep, p);
      builder.record_add(keep, p);
    }

    // 3. Pick this epoch's leavers. Node n−1 never leaves (beacon-style
    // protocols pin their coordinator there), nodes that just rejoined get
    // one epoch of grace, and a leave that would disconnect the surviving
    // live graph is re-drawn.
    for (std::uint32_t k = 0; k < policy.join_batch; ++k) {
      std::size_t live = 0;
      for (NodeId v = 0; v < n; ++v) live += down[v] ? 0 : 1;
      if (live <= 3) break;  // keep a non-trivial live graph at all times
      for (int attempt = 0; attempt < 16; ++attempt) {
        const NodeId v = pick_live(rng, down, n);
        if (v == kInvalidNode || v == n - 1) continue;
        if (v < policy.pinned.size() && policy.pinned[v]) continue;
        if (std::find(builder.delta.joins.begin(), builder.delta.joins.end(),
                      v) != builder.delta.joins.end()) {
          continue;
        }
        const std::vector<NodeId> partners = cur.neighbors(v);
        for (const NodeId p : partners) cur.remove_edge(v, p);
        down[v] = true;
        if (!live_connected(cur, down)) {
          down[v] = false;
          for (const NodeId p : partners) cur.add_edge(v, p);
          continue;
        }
        edges_at_leave[v] = partners;
        for (const NodeId p : partners) builder.record_remove(v, p);
        builder.delta.leaves.push_back(v);
        prev_leaves.push_back(v);
        break;
      }
    }

    schedule.deltas_.push_back(std::move(builder.delta));
  }
  return schedule;
}

bool TopologySchedule::dynamic() const noexcept {
  return std::any_of(deltas_.begin(), deltas_.end(),
                     [](const EpochDelta& d) { return !d.empty(); });
}

Topology TopologySchedule::at_epoch(std::size_t epoch) const {
  Topology topo = initial_;
  const std::size_t upto = std::min(epoch, deltas_.size());
  for (std::size_t e = 0; e < upto; ++e) {
    const EpochDelta& d = deltas_[e];
    for (const auto& [a, b] : d.removed) topo.remove_edge(a, b);
    for (const auto& [a, b] : d.added) topo.add_edge(a, b);
  }
  return topo;
}

std::vector<bool> TopologySchedule::down_at(std::size_t epoch) const {
  std::vector<bool> down(initial_.n(), false);
  const std::size_t upto = std::min(epoch, deltas_.size());
  for (std::size_t e = 0; e < upto; ++e) {
    const EpochDelta& d = deltas_[e];
    for (const NodeId v : d.joins) down[v] = false;
    for (const NodeId v : d.leaves) down[v] = true;
  }
  return down;
}

std::vector<bool> TopologySchedule::ever_churned() const {
  std::vector<bool> churned(initial_.n(), false);
  for (const EpochDelta& d : deltas_) {
    for (const NodeId v : d.leaves) churned[v] = true;
  }
  return churned;
}

EdgeAgeTracker::EdgeAgeTracker(const Topology& initial)
    : topo_(initial), down_(initial.n(), false) {
  for (NodeId v = 0; v < topo_.n(); ++v) {
    for (const NodeId w : topo_.neighbors(v)) {
      if (w > v) birth_.emplace(key(v, w), 0);
    }
  }
}

void EdgeAgeTracker::apply(const EpochDelta& delta) {
  for (const NodeId v : delta.joins) down_[v] = false;
  for (const auto& [a, b] : delta.removed) {
    topo_.remove_edge(a, b);
    birth_.erase(key(a, b));
  }
  ++epoch_;  // edges added by delta e are first live at epoch e + 1
  for (const auto& [a, b] : delta.added) {
    topo_.add_edge(a, b);
    birth_[key(a, b)] = epoch_;
  }
  for (const NodeId v : delta.leaves) down_[v] = true;
}

std::uint64_t EdgeAgeTracker::age(NodeId a, NodeId b) const {
  const auto it = birth_.find(key(a, b));
  CS_CHECK(it != birth_.end());
  return static_cast<std::uint64_t>(epoch_) - it->second;
}

std::uint64_t TopologySchedule::digest() const noexcept {
  std::uint64_t h = fold(0x5c4ed01eULL, initial_.n());
  h = fold(h, initial_.edge_count());
  for (NodeId v = 0; v < initial_.n(); ++v) {
    const auto& adj = initial_.neighbors(v);
    h = fold(h, adj.size());
    for (const NodeId w : adj) h = fold(h, w);
  }
  for (const EpochDelta& d : deltas_) {
    h = fold(h, 0xe60c4ULL);
    for (const NodeId v : d.joins) h = fold(h, 0x101ULL + v);
    for (const auto& [a, b] : d.removed) h = fold(fold(h, 0x202ULL + a), b);
    for (const auto& [a, b] : d.added) h = fold(fold(h, 0x303ULL + a), b);
    for (const NodeId v : d.leaves) h = fold(h, 0x404ULL + v);
  }
  return h;
}

}  // namespace crusader::relay
