#pragma once
// The general-n reduction of Theorem 5 (executable): "partition the set of n
// nodes into three non-empty subsets S₁,S₂,S₃ of size at most ⌈n/3⌉. Then
// node i ∈ [3] simulates the protocol behaviour of nodes in S_i and outputs
// the pulse times of the lexicographically first node in S_i."
//
// CompositeNode hosts a group of inner protocol nodes behind one outer
// sim::PulseNode:
//  * all inner nodes share the composite's hardware clock (a legal adversary
//    choice for Π) and start perfectly synchronized;
//  * intra-group messages are delivered after a fixed LOCAL delay
//    δL = d (real delay then lies in [d/ϑ, d] ⊆ [d−u, d], which requires
//    ϑ ≤ d/(d−u) — checked at construction);
//  * inter-group messages ride the outer transport (the three-execution
//    co-simulation), whose delays are within Π's bounds by construction;
//  * the composite pulses exactly when its first inner node pulses.
//
// Restrictions (checked): inner protocols must be broadcast-only (CPS, LW,
// ST all are) and use timer tags below 2^56 (CPS's tag encoding fits).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "crypto/signature.hpp"
#include "sim/model.hpp"
#include "sim/node.hpp"

namespace crusader::lowerbound {

class CompositeNode final : public sim::PulseNode {
 public:
  /// `globals` lists the inner (protocol-level) node ids hosted here, in
  /// order; the first one's pulses become the composite's pulses.
  /// `inner_model` is Π's model (n = total nodes across all groups).
  /// `pki` holds one key per inner node and is shared across composites.
  CompositeNode(std::vector<NodeId> globals, sim::ModelParams inner_model,
                crypto::Pki* pki,
                const std::function<std::unique_ptr<sim::PulseNode>(NodeId)>&
                    inner_factory);
  ~CompositeNode() override;

  void on_start(sim::Env& env) override;
  void on_message(sim::Env& env, const sim::Message& m) override;
  void on_timer(sim::Env& env, std::uint64_t tag) override;

 private:
  class InnerEnv;

  void local_broadcast(sim::Env& outer, NodeId inner_from,
                       const sim::Message& m);
  void deliver_inner(sim::Env& outer, const sim::Message& m,
                     NodeId skip = kInvalidNode);

  std::vector<NodeId> globals_;
  sim::ModelParams inner_model_;
  crypto::Pki* pki_;
  std::vector<std::unique_ptr<sim::PulseNode>> inner_;
  std::vector<std::unique_ptr<InnerEnv>> envs_;
  std::vector<sim::Message> held_;  // intra-group messages in flight
};

}  // namespace crusader::lowerbound
