#pragma once
// The Theorem-5 construction, executable: three cyclically-symmetric
// executions Ex⁰, Ex¹, Ex² of any 3-node pulse protocol, co-simulated via
// their local views.
//
// Construction (indices mod 3), properties P of the paper:
//   * in Ex^i the faulty node is i; honest are i+1 (identity clock) and
//     i+2 (the "fast" clock: ϑ·t until t* = 2ũ/(3(ϑ−1)), then t + 2ũ/3);
//   * honest↔honest delay d; links touching the faulty node: d − ũ.
//
// Node j's local views in Ex^{j+1} and Ex^{j+2} coincide, so three view
// machines V₀,V₁,V₂ suffice. A message sent by V_k at local time L arrives
// at V_j at local time
//     X_{k→j}(L) = fast(L + d)        if j = k+1 (mod 3)
//     X_{k→j}(L) = fast⁻¹(L) + d      if j = k+2 (mod 3)
// (derived from the delay-d honest link of the execution where both are
// honest). The views are interleaved on a master timeline
//     g_j(L) = fast⁻¹(L) + (2−j)·c,   c = (d − 2ũ/3)/2 > 0,
// under which every receive is ordered at or after its send (DESIGN.md §3.4
// carries the slack calculation; well-definedness of the adversary's
// behaviour is Lemma 18 of the paper).
//
// Recovered quantities: node i+1 pulses in Ex^i at real time L (identity
// clock) and node i+2 at fast⁻¹(L); the per-execution skews telescope to
//     Σ_i skew_i(r) ≥ Σ_j [L_{j,r} − fast⁻¹(L_{j,r})] = 2ũ
// once every view is past the ramp, forcing max_i skew_i ≥ 2ũ/3.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/signature.hpp"
#include "lowerbound/local_env.hpp"
#include "sim/engine.hpp"
#include "sim/hardware_clock.hpp"
#include "sim/model.hpp"
#include "sim/world.hpp"

namespace crusader::lowerbound {

struct TripleConfig {
  /// Model handed to the protocol (n = 3, f = 1). `u_tilde` is the ũ the
  /// construction exploits on faulty links (ũ ∈ [u, d]).
  sim::ModelParams model;
  /// Stop once every view produced this many pulses (or master horizon).
  std::size_t target_rounds = 40;
  double master_horizon = 1e6;
  crypto::Pki::Kind pki_kind = crypto::Pki::Kind::kSymbolic;
};

struct TripleResult {
  /// Local pulse times per view machine.
  std::array<std::vector<double>, 3> local_pulses;
  /// Per-execution, per-round skew |p^i_{i+1,r} − p^i_{i+2,r}|.
  std::array<std::vector<double>, 3> exec_skew;
  /// Rounds measured (min pulse count across views).
  std::size_t rounds = 0;
  /// First round at which every view is past the clock ramp.
  std::size_t first_settled_round = 0;
  /// max_i max_{r ≥ settled} skew_i(r).
  double max_skew = 0.0;
  /// The Theorem-5 bound 2ũ/3.
  double bound = 0.0;
  /// Σ_i skew_i at the last settled round (≈ 2ũ; diagnostic).
  double telescoped_sum = 0.0;
};

class TripleExecution {
 public:
  TripleExecution(const TripleConfig& config, sim::HonestFactory factory);
  ~TripleExecution();

  TripleResult run();

  // --- used by ViewEnv ---
  void transfer(NodeId from, NodeId to, sim::Message m);
  sim::EventId schedule_timer(NodeId view, double local_time, std::uint64_t tag);
  void cancel(sim::EventId id);
  void note_pulse(NodeId view);

  [[nodiscard]] double fast(double t) const;      ///< the fast clock H
  [[nodiscard]] double fast_inv(double h) const;  ///< its inverse

 private:
  [[nodiscard]] double master_of(NodeId view, double local) const;

  TripleConfig config_;
  double ramp_end_ = 0.0;  ///< t* = 2ũ/(3(ϑ−1))
  double c_ = 0.0;         ///< view-offset constant (d − 2ũ/3)/2
  sim::HardwareClock fast_clock_;
  sim::Engine engine_;
  std::unique_ptr<crypto::Pki> pki_;
  std::array<std::unique_ptr<ViewEnv>, 3> views_;
  std::size_t min_pulses_ = 0;
  bool done_ = false;
};

}  // namespace crusader::lowerbound
