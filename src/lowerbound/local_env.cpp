#include "lowerbound/local_env.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "lowerbound/triple_execution.hpp"
#include "util/check.hpp"

namespace crusader::lowerbound {

ViewEnv::ViewEnv(NodeId id, TripleExecution* owner,
                 const sim::ModelParams* model, crypto::Pki* pki,
                 std::unique_ptr<sim::PulseNode> node)
    : id_(id), owner_(owner), model_(model), pki_(pki), node_(std::move(node)) {
  CS_CHECK(node_ != nullptr);
}

void ViewEnv::start() {
  local_now_ = 0.0;  // perfect initial synchrony (Theorem 5's assumption)
  node_->on_start(*this);
}

void ViewEnv::deliver(double local_time, const sim::Message& m) {
  CS_CHECK_MSG(local_time >= local_now_ - 1e-9,
               "local time regressed in view " << id_);
  local_now_ = std::max(local_now_, local_time);
  node_->on_message(*this, m);
}

void ViewEnv::fire_timer(double local_time, std::uint64_t tag) {
  CS_CHECK_MSG(local_time >= local_now_ - 1e-9,
               "timer regressed in view " << id_);
  local_now_ = std::max(local_now_, local_time);
  node_->on_timer(*this, tag);
}

void ViewEnv::send(NodeId to, sim::Message m) {
  owner_->transfer(id_, to, std::move(m));
}

void ViewEnv::broadcast(const sim::Message& m) {
  for (NodeId to = 0; to < 3; ++to)
    if (to != id_) owner_->transfer(id_, to, m);
}

sim::TimerId ViewEnv::schedule_at_local(double local_time, std::uint64_t tag) {
  return owner_->schedule_timer(id_, std::max(local_time, local_now_), tag);
}

void ViewEnv::cancel_timer(sim::TimerId id) { owner_->cancel(id); }

void ViewEnv::pulse() {
  pulses_.push_back(local_now_);
  owner_->note_pulse(id_);
}

crypto::Signature ViewEnv::sign(const crypto::SignedPayload& payload) {
  return pki_->sign(id_, payload, 0);
}

bool ViewEnv::verify(const crypto::Signature& sig,
                     const crypto::SignedPayload& payload) const {
  return pki_->verify(sig, payload);
}

}  // namespace crusader::lowerbound
