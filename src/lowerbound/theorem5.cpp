#include "lowerbound/theorem5.hpp"

#include <cstddef>

#include "util/check.hpp"

namespace crusader::lowerbound {

Theorem5Report run_theorem5(baselines::ProtocolKind protocol,
                            const sim::ModelParams& model,
                            std::size_t target_rounds) {
  CS_CHECK(model.n == 3);

  // The probe is a transport conformance check, not a synchronization
  // algorithm — the Theorem-5 indistinguishability argument does not apply
  // to it (its skew is set by one delivery, not by convergence), so the
  // construction reports it infeasible rather than a meaningless "bound".
  if (protocol == baselines::ProtocolKind::kFloodProbe) {
    Theorem5Report report;
    report.protocol = protocol;
    report.u_tilde = model.u_tilde;
    return report;  // feasible == false
  }

  const auto setup = baselines::make_setup(protocol, model);
  if (!setup.feasible) {
    Theorem5Report report;
    report.protocol = protocol;
    report.u_tilde = model.u_tilde;
    return report;  // feasible == false; construction not run
  }

  TripleConfig config;
  config.model = model;
  config.target_rounds = target_rounds;
  // Master horizon: ramp length plus enough rounds, with generous margin.
  const double ramp = model.theorem5_bound() / (model.vartheta - 1.0);
  config.master_horizon =
      ramp + (static_cast<double>(target_rounds) + 20.0) * setup.round_length +
      100.0 * model.d;

  TripleExecution triple(config, baselines::make_protocol_factory(setup));
  const TripleResult result = triple.run();

  Theorem5Report report;
  report.protocol = protocol;
  report.feasible = true;
  report.u_tilde = model.u_tilde;
  report.bound = result.bound;
  report.max_skew = result.max_skew;
  report.telescoped_sum = result.telescoped_sum;
  report.rounds = result.rounds;
  report.settled_round = result.first_settled_round;
  report.bound_holds = result.rounds > result.first_settled_round &&
                       result.max_skew >= result.bound - 1e-6;
  return report;
}

}  // namespace crusader::lowerbound
