#include "lowerbound/composite.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::lowerbound {

namespace {
// Timer-tag space: bits 56..59 carry (inner index + 1); bit 60 marks an
// intra-group delivery whose low bits index `held_`.
constexpr std::uint64_t kInnerShift = 56;
constexpr std::uint64_t kInnerMask = 0xFULL << kInnerShift;
constexpr std::uint64_t kHoldBit = 1ULL << 60;
}  // namespace

/// Env handed to each inner node: local time and timers pass through to the
/// outer env (shared clock); sends become intra-group deliveries plus an
/// outer broadcast; signatures use the inner node's own key.
class CompositeNode::InnerEnv final : public sim::Env {
 public:
  InnerEnv(CompositeNode* owner, std::size_t index)
      : owner_(owner), index_(index) {}

  void bind(sim::Env* outer) { outer_ = outer; }

  [[nodiscard]] NodeId id() const override { return owner_->globals_[index_]; }
  [[nodiscard]] const sim::ModelParams& model() const override {
    return owner_->inner_model_;
  }
  [[nodiscard]] double local_now() const override {
    return outer_->local_now();
  }

  void send(NodeId, sim::Message) override {
    CS_CHECK_MSG(false, "CompositeNode supports broadcast-only protocols");
  }

  void broadcast(const sim::Message& m) override {
    sim::Message tagged = m;
    tagged.origin = id();
    owner_->local_broadcast(*outer_, id(), tagged);
  }

  sim::TimerId schedule_at_local(double local_time, std::uint64_t tag) override {
    CS_CHECK_MSG((tag & (kInnerMask | kHoldBit)) == 0,
                 "inner timer tag collides with composite routing bits");
    return outer_->schedule_at_local(
        local_time, tag | ((index_ + 1) << kInnerShift));
  }

  void cancel_timer(sim::TimerId timer) override {
    outer_->cancel_timer(timer);
  }

  void pulse() override {
    // Only the lexicographically first inner node's pulses count (Theorem 5
    // proof); the others pulse silently.
    if (index_ == 0) outer_->pulse();
  }

  [[nodiscard]] crypto::Signature sign(
      const crypto::SignedPayload& payload) override {
    return owner_->pki_->sign(id(), payload, 0);
  }

  [[nodiscard]] bool verify(const crypto::Signature& sig,
                            const crypto::SignedPayload& payload) const override {
    return owner_->pki_->verify(sig, payload);
  }

 private:
  CompositeNode* owner_;
  std::size_t index_;
  sim::Env* outer_ = nullptr;
};

CompositeNode::CompositeNode(
    std::vector<NodeId> globals, sim::ModelParams inner_model,
    crypto::Pki* pki,
    const std::function<std::unique_ptr<sim::PulseNode>(NodeId)>& inner_factory)
    : globals_(std::move(globals)), inner_model_(inner_model), pki_(pki) {
  CS_CHECK_MSG(!globals_.empty() && globals_.size() <= 15,
               "composite hosts 1..15 inner nodes");
  // Intra-group delivery measured on the local clock: real delay lies in
  // [d/ϑ, d]; it must stay within [d−u, d].
  CS_CHECK_MSG(inner_model_.d / inner_model_.vartheta >=
                   inner_model_.d - inner_model_.u - 1e-12,
               "need vartheta <= d/(d-u) for local-time intra-group delays");
  for (std::size_t i = 0; i < globals_.size(); ++i) {
    inner_.push_back(inner_factory(globals_[i]));
    CS_CHECK(inner_.back() != nullptr);
    envs_.push_back(std::make_unique<InnerEnv>(this, i));
  }
}

CompositeNode::~CompositeNode() = default;

void CompositeNode::on_start(sim::Env& env) {
  for (std::size_t i = 0; i < inner_.size(); ++i) {
    envs_[i]->bind(&env);
    inner_[i]->on_start(*envs_[i]);
  }
}

void CompositeNode::local_broadcast(sim::Env& outer, NodeId /*inner_from*/,
                                    const sim::Message& m) {
  // Outer legs: one physical broadcast to the other composites.
  outer.broadcast(m);
  // Intra-group legs: deliver after local delay d (within Π's bounds).
  const std::uint64_t index = held_.size();
  held_.push_back(m);
  outer.schedule_at_local(outer.local_now() + inner_model_.d,
                          kHoldBit | index);
}

void CompositeNode::deliver_inner(sim::Env& outer, const sim::Message& m,
                                  NodeId skip) {
  sim::Message routed = m;
  // Restore the logical (protocol-level) sender for the inner nodes.
  routed.sender = m.origin;
  for (std::size_t i = 0; i < inner_.size(); ++i) {
    if (globals_[i] == skip) continue;
    envs_[i]->bind(&outer);
    inner_[i]->on_message(*envs_[i], routed);
  }
}

void CompositeNode::on_message(sim::Env& env, const sim::Message& m) {
  CS_CHECK_MSG(m.origin != kInvalidNode,
               "composite transport requires the origin field");
  deliver_inner(env, m);
}

void CompositeNode::on_timer(sim::Env& env, std::uint64_t tag) {
  if (tag & kHoldBit) {
    const std::uint64_t index = tag & ~(kHoldBit | kInnerMask);
    CS_CHECK(index < held_.size());
    const sim::Message m = held_[index];
    // Broadcast semantics: the sender does not deliver to itself.
    deliver_inner(env, m, /*skip=*/m.origin);
    return;
  }
  const std::uint64_t inner_bits = (tag & kInnerMask) >> kInnerShift;
  CS_CHECK_MSG(inner_bits >= 1 && inner_bits <= inner_.size(),
               "timer tag without inner routing bits");
  const std::size_t index = inner_bits - 1;
  envs_[index]->bind(&env);
  inner_[index]->on_timer(*envs_[index], tag & ~kInnerMask);
}

}  // namespace crusader::lowerbound
