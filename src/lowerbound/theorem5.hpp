#pragma once
// Theorem 5 runner: realize the three-execution adversary against a concrete
// protocol and report realized vs. bound skew.

#include "baselines/factories.hpp"

#include <cstddef>
#include "lowerbound/triple_execution.hpp"

namespace crusader::lowerbound {

struct Theorem5Report {
  baselines::ProtocolKind protocol = baselines::ProtocolKind::kCps;
  /// False when the protocol's constants are unsolvable for this model; the
  /// construction did not run and every metric below is zero.
  bool feasible = false;
  double u_tilde = 0.0;
  double bound = 0.0;     ///< 2ũ/3
  double max_skew = 0.0;  ///< realized, over settled rounds
  double telescoped_sum = 0.0;
  std::size_t rounds = 0;
  std::size_t settled_round = 0;
  bool bound_holds = false;  ///< max_skew ≥ bound − tolerance
};

/// Runs the construction for the given protocol. `model.n` must be 3 and
/// `model.u_tilde` is the ũ the construction uses on faulty links. An
/// infeasible model yields feasible == false rather than a throw (sweeps
/// must distinguish "can't solve constants" from real failures).
[[nodiscard]] Theorem5Report run_theorem5(baselines::ProtocolKind protocol,
                                          const sim::ModelParams& model,
                                          std::size_t target_rounds = 40);

}  // namespace crusader::lowerbound
