#include "lowerbound/triple_execution.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/check.hpp"

namespace crusader::lowerbound {

namespace {
sim::HardwareClock make_fast_clock(double vartheta, double ramp_end) {
  return sim::HardwareClock::two_phase(vartheta, ramp_end, 1.0, 0.0);
}
}  // namespace

TripleExecution::TripleExecution(const TripleConfig& config,
                                 sim::HonestFactory factory)
    : config_(config),
      ramp_end_(config.model.theorem5_bound() /
                (config.model.vartheta - 1.0)),
      c_((config.model.d - config.model.theorem5_bound()) / 2.0),
      fast_clock_(make_fast_clock(config.model.vartheta, ramp_end_)) {
  CS_CHECK_MSG(config_.model.n == 3, "the construction is for n = 3");
  config_.model.validate();
  CS_CHECK_MSG(c_ > 0.0, "need d > 2*u_tilde/3 for the master embedding");

  pki_ = std::make_unique<crypto::Pki>(3, config_.pki_kind, 0x10beULL);
  for (NodeId j = 0; j < 3; ++j) {
    views_[j] = std::make_unique<ViewEnv>(j, this, &config_.model, pki_.get(),
                                          factory(j));
  }
}

TripleExecution::~TripleExecution() = default;

double TripleExecution::fast(double t) const { return fast_clock_.local(t); }
double TripleExecution::fast_inv(double h) const { return fast_clock_.real(h); }

double TripleExecution::master_of(NodeId view, double local) const {
  return fast_inv(local) + (2.0 - static_cast<double>(view)) * c_;
}

void TripleExecution::transfer(NodeId from, NodeId to, sim::Message m) {
  CS_CHECK(from < 3 && to < 3 && from != to);
  m.sender = from;
  const double send_local = views_[from]->local_now();

  // Receive local time per the delay-d honest link of the execution in which
  // both endpoints are honest (see header).
  double recv_local = 0.0;
  if ((from + 1) % 3 == to) {
    recv_local = fast(send_local + config_.model.d);
  } else {
    recv_local = fast_inv(send_local) + config_.model.d;
  }

  const double master = master_of(to, recv_local);
  // Engine::at clamps to "now" if the master embedding puts the receive at or
  // before the send (possible only at the zero-slack boundary); FIFO order
  // then still processes the receive after this send event.
  engine_.at(master, [this, to, recv_local, msg = std::move(m)]() {
    views_[to]->deliver(recv_local, msg);
  });
}

sim::EventId TripleExecution::schedule_timer(NodeId view, double local_time,
                                             std::uint64_t tag) {
  return engine_.at(master_of(view, local_time),
                    [this, view, local_time, tag]() {
                      views_[view]->fire_timer(local_time, tag);
                    });
}

void TripleExecution::cancel(sim::EventId id) { engine_.cancel(id); }

void TripleExecution::note_pulse(NodeId /*view*/) {
  std::size_t lo = views_[0]->local_pulses().size();
  for (NodeId j = 1; j < 3; ++j)
    lo = std::min(lo, views_[j]->local_pulses().size());
  min_pulses_ = lo;
  if (min_pulses_ >= config_.target_rounds) done_ = true;
}

TripleResult TripleExecution::run() {
  for (NodeId j = 0; j < 3; ++j) {
    engine_.at(master_of(j, 0.0), [this, j]() { views_[j]->start(); });
  }

  while (!done_ && engine_.now() < config_.master_horizon) {
    if (!engine_.step()) break;
  }

  TripleResult result;
  result.bound = config_.model.theorem5_bound();
  for (NodeId j = 0; j < 3; ++j)
    result.local_pulses[j] = views_[j]->local_pulses();

  result.rounds = min_pulses_;
  if (result.rounds == 0) return result;

  // Per-execution skews: in Ex^i, node i+1 runs the identity clock and node
  // i+2 the fast clock, so real pulse times are L and fast⁻¹(L).
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto& a = result.local_pulses[(i + 1) % 3];  // identity clock
    const auto& b = result.local_pulses[(i + 2) % 3];  // fast clock
    for (std::size_t r = 0; r < result.rounds; ++r)
      result.exec_skew[i].push_back(std::abs(a[r] - fast_inv(b[r])));
  }

  // A round is "settled" once every view's pulse is past the ramp in local
  // terms (local time ≥ ϑ·t*), which makes each lag term exactly 2ũ/3.
  const double settled_local = config_.model.vartheta * ramp_end_;
  std::size_t settled = result.rounds;
  for (std::size_t r = 0; r < result.rounds; ++r) {
    bool all_past = true;
    for (NodeId j = 0; j < 3; ++j)
      all_past = all_past && result.local_pulses[j][r] >= settled_local;
    if (all_past) {
      settled = r;
      break;
    }
  }
  result.first_settled_round = settled;

  for (std::uint32_t i = 0; i < 3; ++i)
    for (std::size_t r = settled; r < result.rounds; ++r)
      result.max_skew = std::max(result.max_skew, result.exec_skew[i][r]);

  if (settled < result.rounds) {
    const std::size_t r = result.rounds - 1;
    result.telescoped_sum = 0.0;
    for (std::uint32_t i = 0; i < 3; ++i)
      result.telescoped_sum += result.exec_skew[i][r];
  }
  return result;
}

}  // namespace crusader::lowerbound
