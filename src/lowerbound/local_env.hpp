#pragma once
// Env implementation for the lower-bound co-simulation: drives a protocol
// node purely through local-time events, with message transfer and timer
// scheduling delegated to the TripleExecution that owns it.

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/signature.hpp"
#include "sim/env.hpp"
#include "sim/node.hpp"

namespace crusader::lowerbound {

class TripleExecution;

/// One "view machine": node j's (identical) local view in the two executions
/// where it is honest.
class ViewEnv final : public sim::Env {
 public:
  ViewEnv(NodeId id, TripleExecution* owner, const sim::ModelParams* model,
          crypto::Pki* pki, std::unique_ptr<sim::PulseNode> node);

  // --- driven by TripleExecution ---
  void start();
  void deliver(double local_time, const sim::Message& m);
  void fire_timer(double local_time, std::uint64_t tag);

  [[nodiscard]] const std::vector<double>& local_pulses() const noexcept {
    return pulses_;
  }

  // --- sim::Env ---
  [[nodiscard]] NodeId id() const override { return id_; }
  [[nodiscard]] const sim::ModelParams& model() const override {
    return *model_;
  }
  [[nodiscard]] double local_now() const override { return local_now_; }
  void send(NodeId to, sim::Message m) override;
  void broadcast(const sim::Message& m) override;
  sim::TimerId schedule_at_local(double local_time, std::uint64_t tag) override;
  void cancel_timer(sim::TimerId id) override;
  void pulse() override;
  [[nodiscard]] crypto::Signature sign(
      const crypto::SignedPayload& payload) override;
  [[nodiscard]] bool verify(const crypto::Signature& sig,
                            const crypto::SignedPayload& payload) const override;

 private:
  NodeId id_;
  TripleExecution* owner_;
  const sim::ModelParams* model_;
  crypto::Pki* pki_;
  std::unique_ptr<sim::PulseNode> node_;
  double local_now_ = 0.0;
  std::vector<double> pulses_;
};

}  // namespace crusader::lowerbound
