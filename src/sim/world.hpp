#pragma once
// World: assembles engine + clocks + network + nodes into one adversarial
// execution and runs it to a horizon.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/signature.hpp"
#include "sim/engine.hpp"
#include "sim/hardware_clock.hpp"
#include "sim/model.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/trace.hpp"

namespace crusader::sim {

/// Hardware-clock assignment strategies (the adversary's clock choice).
enum class ClockKind {
  kNominal,     // all rates 1, offsets spread evenly in [0, S0]
  kSpread,      // alternating rates 1 / vartheta, extremal offsets — maximum
                // sustained drift divergence
  kRandomWalk,  // per-node random rate walk within [1, vartheta]
  kCustom,      // WorldConfig::custom_clocks
};

[[nodiscard]] const char* to_string(ClockKind kind);

struct WorldConfig {
  ModelParams model;
  std::uint64_t seed = 1;
  double horizon = 120.0;
  /// Bound on initial local-clock offsets: H_v(0) in [0, initial_offset].
  double initial_offset = 0.0;
  crypto::Pki::Kind pki_kind = crypto::Pki::Kind::kSymbolic;
  ClockKind clock_kind = ClockKind::kSpread;
  DelayKind delay_kind = DelayKind::kRandom;
  /// Segment length for ClockKind::kRandomWalk.
  double clock_segment = 5.0;
  std::vector<NodeId> faulty;
  std::vector<HardwareClock> custom_clocks;  // used when kCustom
  /// Optional custom delay policy factory (overrides delay_kind).
  std::function<std::unique_ptr<DelayPolicy>()> custom_delay;
  Enforcement enforcement = Enforcement::kThrow;
  /// Broadcast fast path (aggregate events + shared arena payloads). Off
  /// forces the per-receiver reference path; results are identical either
  /// way (tests/test_engine_fastpath.cpp diffs them).
  bool batch = true;
};

struct RunResult {
  PulseTrace trace;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  std::uint64_t sign_ops = 0;
  std::uint64_t verify_ops = 0;
  std::uint64_t signatures_carried = 0;
  std::vector<std::string> violations;
};

/// Factory types: World owns the produced nodes.
using HonestFactory = std::function<std::unique_ptr<PulseNode>(NodeId)>;
using ByzantineFactory = std::function<std::unique_ptr<ByzantineNode>(NodeId)>;

class World {
 public:
  World(WorldConfig config, HonestFactory honest, ByzantineFactory byzantine);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Schedules every node's on_start at t = 0. Idempotent; run() calls it.
  /// Exposed so tests can interleave engine stepping with live probing.
  void start();

  /// Runs to config.horizon and returns the collected results.
  RunResult run();

  /// Access for tests that want to poke at internals mid-run.
  [[nodiscard]] Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] Network& network() noexcept { return *network_; }
  [[nodiscard]] const HardwareClock& clock(NodeId v) const {
    return clocks_.at(v);
  }
  [[nodiscard]] PulseTrace& trace() noexcept { return *trace_; }
  [[nodiscard]] crypto::Pki& pki() noexcept { return *pki_; }

 private:
  class HonestRunner;
  class ByzantineRunner;

  void build_clocks();
  void build_runners(HonestFactory honest, ByzantineFactory byzantine);

  WorldConfig config_;
  std::vector<bool> faulty_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<crypto::Pki> pki_;
  std::unique_ptr<Network> network_;
  std::vector<HardwareClock> clocks_;
  std::unique_ptr<PulseTrace> trace_;
  std::vector<std::unique_ptr<HonestRunner>> honest_runners_;
  std::vector<std::unique_ptr<ByzantineRunner>> byz_runners_;
  // Dispatch table: per node, pointer to runner deliver function.
  std::vector<std::function<void(const Message&)>> deliver_table_;
  std::vector<std::function<void()>> start_table_;
  bool started_ = false;
  util::Rng rng_;
};

/// Convenience: mark the first `f` node ids faulty (tests often don't care
/// which ids are faulty; protocols must not either).
[[nodiscard]] std::vector<NodeId> default_faulty_set(std::uint32_t f);

}  // namespace crusader::sim
