#pragma once
// Deterministic discrete-event queue: events ordered by (time, sequence).
// Equal-time events fire in insertion order, which makes every run with the
// same seed bit-reproducible.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace crusader::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t`. Returns an id usable with cancel().
  EventId schedule(double t, EventFn fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (returns false).
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const;
  /// Time of the earliest pending event; requires !empty().
  [[nodiscard]] double next_time() const;

  /// Pops and runs the earliest event; returns its time. Requires !empty().
  double pop_and_run();

  [[nodiscard]] std::uint64_t scheduled_count() const noexcept { return next_id_; }
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Entry {
    double t;
    EventId id;
    // Ordering for a max-heap std::priority_queue: we invert to get min-heap.
    bool operator<(const Entry& other) const noexcept {
      if (t != other.t) return t > other.t;
      return id > other.id;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry> heap_;
  std::vector<EventFn> fns_;  // indexed by id; empty fn == cancelled/fired
  mutable std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 0;
  std::size_t live_ = 0;
};

}  // namespace crusader::sim
