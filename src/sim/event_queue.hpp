#pragma once
// Deterministic discrete-event queue: events ordered by (time, sequence).
// Equal-time events fire in insertion order, which makes every run with the
// same seed bit-reproducible.
//
// Storage is a slab of callback slots recycled through a free list, so memory
// is O(pending events) — not O(events ever scheduled). Ids are
// generation-tagged: an id names (slot, generation), and cancelling or firing
// an event bumps the slot's generation, which invalidates stale ids in O(1)
// without any auxiliary set.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/small_fn.hpp"

namespace crusader::sim {

/// Generation-tagged event handle: low 32 bits slot index, high 32 bits the
/// slot's generation at schedule time. Treat as opaque outside EventQueue.
using EventId = std::uint64_t;
/// Move-only with a 48-byte inline buffer: delivery closures (engine pointer
/// + receiver range + arena handle) fit without touching the heap, which
/// std::function's 16-byte SBO cannot manage.
using EventFn = util::SmallFn<void()>;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t`. Returns an id usable with cancel().
  /// `t` must be finite (a NaN would silently corrupt the heap ordering).
  EventId schedule(double t, EventFn fn);

  /// Cancel a pending event in O(1). Cancelling an already-fired, cancelled,
  /// or unknown id is a no-op (returns false).
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const;
  /// Time of the earliest pending event; requires !empty().
  [[nodiscard]] double next_time() const;

  /// Pops and runs the earliest event; returns its time. Requires !empty().
  double pop_and_run();

  /// Lifetime count of successful schedule() calls (monotone; NOT an id —
  /// ids are generation-tagged slot handles and are reused).
  [[nodiscard]] std::uint64_t scheduled_count() const noexcept {
    return scheduled_;
  }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Diagnostics (tests assert memory stays O(pending)): number of callback
  /// slots ever allocated — tracks the high-water pending count, not the
  /// lifetime schedule count.
  [[nodiscard]] std::size_t slab_capacity() const noexcept {
    return slots_.size();
  }
  /// Heap entries currently held, including not-yet-dropped cancelled ones.
  [[nodiscard]] std::size_t heap_size() const noexcept { return heap_.size(); }

 private:
  struct Slot {
    EventFn fn;               // empty == slot free / event retired
    std::uint32_t gen = 0;    // bumped on fire/cancel; stale ids mismatch
  };
  struct Entry {
    double t;
    std::uint64_t seq;  // insertion order: FIFO tie-break for equal times
    EventId id;
  };
  /// std::push_heap builds a max-heap; "less" here means "fires later", so
  /// the heap top is the earliest (time, seq).
  struct FiresLater {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t gen_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  [[nodiscard]] bool stale(const Entry& e) const noexcept {
    return slots_[slot_of(e.id)].gen != gen_of(e.id);
  }
  /// Retire a live slot: clear the callback, invalidate outstanding ids,
  /// recycle the index.
  void retire(std::uint32_t slot);
  /// Pop stale (cancelled) entries off the heap top.
  void drop_stale() const;
  /// Rebuild the heap without stale entries once they dominate, bounding heap
  /// memory by O(pending) even under heavy schedule/cancel churn.
  void compact();

  mutable std::vector<Entry> heap_;  // binary heap via std::{push,pop}_heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint64_t scheduled_ = 0;  // lifetime schedules; doubles as seq source
  std::size_t live_ = 0;
  mutable std::size_t stale_in_heap_ = 0;
};

}  // namespace crusader::sim
