#include "sim/trace.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::sim {

PulseTrace::PulseTrace(std::uint32_t n, std::vector<bool> faulty)
    : pulses_(n), faulty_(std::move(faulty)) {
  CS_CHECK(faulty_.size() == n);
}

void PulseTrace::record(NodeId v, double real_time, double local_time) {
  CS_CHECK(v < pulses_.size());
  auto& vec = pulses_[v];
  CS_CHECK_MSG(vec.empty() || vec.back().real_time <= real_time,
               "pulses of node " << v << " must be monotone in time");
  vec.push_back(PulseEvent{real_time, local_time});
}

double PulseTrace::pulse_time(NodeId v, std::size_t r) const {
  CS_CHECK(v < pulses_.size());
  CS_CHECK_MSG(r < pulses_[v].size(),
               "node " << v << " has only " << pulses_[v].size() << " pulses");
  return pulses_[v][r].real_time;
}

std::vector<NodeId> PulseTrace::honest() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < pulses_.size(); ++v)
    if (!faulty_[v]) out.push_back(v);
  return out;
}

std::size_t PulseTrace::complete_rounds() const {
  std::size_t m = std::numeric_limits<std::size_t>::max();
  bool any = false;
  for (NodeId v = 0; v < pulses_.size(); ++v) {
    if (faulty_[v]) continue;
    m = std::min(m, pulses_[v].size());
    any = true;
  }
  return any ? m : 0;
}

double PulseTrace::skew(std::size_t r) const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (NodeId v = 0; v < pulses_.size(); ++v) {
    if (faulty_[v]) continue;
    const double t = pulse_time(v, r);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  CS_CHECK_MSG(lo <= hi, "no honest nodes in trace");
  return hi - lo;
}

double PulseTrace::max_skew(std::size_t from) const {
  const std::size_t rounds = complete_rounds();
  double worst = 0.0;
  for (std::size_t r = from; r < rounds; ++r) worst = std::max(worst, skew(r));
  return worst;
}

std::vector<double> PulseTrace::skews() const {
  const std::size_t rounds = complete_rounds();
  std::vector<double> out;
  out.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) out.push_back(skew(r));
  return out;
}

double PulseTrace::min_period() const {
  const std::size_t rounds = complete_rounds();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r + 1 < rounds; ++r) {
    double next_min = std::numeric_limits<double>::infinity();
    double cur_max = -std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < pulses_.size(); ++v) {
      if (faulty_[v]) continue;
      next_min = std::min(next_min, pulse_time(v, r + 1));
      cur_max = std::max(cur_max, pulse_time(v, r));
    }
    best = std::min(best, next_min - cur_max);
  }
  return best;
}

double PulseTrace::max_period() const {
  const std::size_t rounds = complete_rounds();
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r + 1 < rounds; ++r) {
    double next_max = -std::numeric_limits<double>::infinity();
    double cur_min = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < pulses_.size(); ++v) {
      if (faulty_[v]) continue;
      next_max = std::max(next_max, pulse_time(v, r + 1));
      cur_min = std::min(cur_min, pulse_time(v, r));
    }
    worst = std::max(worst, next_max - cur_min);
  }
  return worst;
}

bool PulseTrace::live(std::size_t rounds) const {
  for (NodeId v = 0; v < pulses_.size(); ++v) {
    if (faulty_[v]) continue;
    if (pulses_[v].size() < rounds) return false;
  }
  return true;
}

}  // namespace crusader::sim
