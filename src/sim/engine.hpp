#pragma once
// The simulation engine: owns the event queue and the notion of "now".

#include <chrono>
#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace crusader::sim {

/// Thrown out of Engine::run_until / Engine::step when the calling thread's
/// WallBudget is exhausted mid-run. Sweep runners catch it and report the
/// scenario as timed out instead of letting one pathological cell hang a
/// 10k-scenario campaign.
struct BudgetExceeded : std::runtime_error {
  BudgetExceeded() : std::runtime_error("scenario wall-clock budget exceeded") {}
};

/// RAII per-thread wall-clock budget. While an instance is alive, every
/// Engine run loop on the constructing thread periodically compares
/// steady_clock against the deadline and throws BudgetExceeded once it has
/// passed. Thread-local by design: worker threads of a sweep pool each arm
/// their own budget without any shared state, and worlds that build several
/// engines internally (e.g. the Theorem-5 triple execution) are covered
/// without plumbing a deadline through every config. Nesting restores the
/// outer budget on destruction.
class WallBudget {
 public:
  explicit WallBudget(double budget_ms);
  ~WallBudget();

  WallBudget(const WallBudget&) = delete;
  WallBudget& operator=(const WallBudget&) = delete;

  /// True when the calling thread has an armed budget whose deadline has
  /// passed. Cheap when no budget is armed (one thread-local bool read).
  [[nodiscard]] static bool expired();

 private:
  // Sanctioned real-clock use: the budget decides WHEN to abort, never what
  // a row contains (aborted cells export NaN metrics and retry on resume).
  std::chrono::steady_clock::time_point prev_deadline_;  // lint:allow(banned-time)
  bool prev_armed_;
};

class Engine {
 public:
  /// Absolute current real time. Starts at 0.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `fn` at absolute real time `t >= now()` (events in the past are
  /// clamped to now — callers assert separately when that matters).
  EventId at(double t, EventFn fn);

  /// Schedule `fn` after a relative delay `dt >= 0`.
  EventId after(double dt, EventFn fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue is empty or the next event is beyond `horizon`.
  void run_until(double horizon);

  /// Process a single event if one exists; returns false when idle.
  bool step();

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  /// Credit `k` extra logical events to the processed counter. Aggregate
  /// events (one scheduled callback expanding to k identical deliveries)
  /// call this with k-1 so events_processed() reports the same logical
  /// count the unbatched path would.
  void credit_events(std::uint64_t k) noexcept { processed_ += k; }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  std::uint64_t processed_ = 0;
};

}  // namespace crusader::sim
