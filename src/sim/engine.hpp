#pragma once
// The simulation engine: owns the event queue and the notion of "now".

#include <cstdint>

#include "sim/event_queue.hpp"

namespace crusader::sim {

class Engine {
 public:
  /// Absolute current real time. Starts at 0.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `fn` at absolute real time `t >= now()` (events in the past are
  /// clamped to now — callers assert separately when that matters).
  EventId at(double t, EventFn fn);

  /// Schedule `fn` after a relative delay `dt >= 0`.
  EventId after(double dt, EventFn fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue is empty or the next event is beyond `horizon`.
  void run_until(double horizon);

  /// Process a single event if one exists; returns false when idle.
  bool step();

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  std::uint64_t processed_ = 0;
};

}  // namespace crusader::sim
