#pragma once
// Protocol node interface (event-driven, local-time based).

#include <cstdint>
#include <memory>

#include "sim/env.hpp"
#include "sim/message.hpp"

namespace crusader::sim {

class PulseNode {
 public:
  virtual ~PulseNode() = default;

  /// Called once when the simulation starts (local time = H_v(0)).
  virtual void on_start(Env& env) = 0;

  /// Called when a message is delivered (processing completes at delivery
  /// time; the model's delay d already covers processing).
  virtual void on_message(Env& env, const Message& m) = 0;

  /// Called when a timer scheduled via Env::schedule_at_local fires.
  virtual void on_timer(Env& env, std::uint64_t tag) = 0;
};

/// Byzantine node: same shape, but receives an AdversaryEnv.
class ByzantineNode {
 public:
  virtual ~ByzantineNode() = default;
  virtual void on_start(AdversaryEnv& env) = 0;
  virtual void on_message(AdversaryEnv& env, const Message& m) = 0;
  virtual void on_timer(AdversaryEnv& env, std::uint64_t tag) = 0;
};

}  // namespace crusader::sim
