#pragma once
// The environment a protocol node runs against.
//
// Protocol logic only ever sees LOCAL time through this interface — exactly
// the information the paper's model grants a node. The same node code runs
// under sim::World (real-time engine + hardware clocks) and under the
// lower-bound co-simulator (lowerbound::TripleExecution).

#include <cstdint>

#include "crypto/signature.hpp"
#include "sim/message.hpp"
#include "sim/model.hpp"
#include "util/ids.hpp"

namespace crusader::sim {

using TimerId = std::uint64_t;

class Env {
 public:
  virtual ~Env() = default;

  [[nodiscard]] virtual NodeId id() const = 0;
  [[nodiscard]] virtual const ModelParams& model() const = 0;

  /// Current hardware-clock reading H_v(t). Never real time.
  [[nodiscard]] virtual double local_now() const = 0;

  /// Send `m` to `to` (delay chosen by the adversary within model bounds).
  virtual void send(NodeId to, Message m) = 0;

  /// Send `m` to every node except self.
  virtual void broadcast(const Message& m) = 0;

  /// Fire on_timer(tag) when the local clock reads `local_time`. If that is
  /// in the past, fires immediately (callers check when it matters).
  virtual TimerId schedule_at_local(double local_time, std::uint64_t tag) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  /// Record a pulse of this node now.
  virtual void pulse() = 0;

  /// Sign with this node's own secret key (nonce 0 — honest signing).
  [[nodiscard]] virtual crypto::Signature sign(
      const crypto::SignedPayload& payload) = 0;

  [[nodiscard]] virtual bool verify(const crypto::Signature& sig,
                                    const crypto::SignedPayload& payload) const = 0;
};

/// Additional powers granted to Byzantine nodes: choosing per-message delays
/// (within the model's faulty-link bounds) and randomized signing.
class AdversaryEnv : public Env {
 public:
  /// Send with an explicit delay; the network checks
  /// delay ∈ [d - u_tilde, d] and throws ModelViolation otherwise.
  virtual void send_with_delay(NodeId to, Message m, double delay) = 0;

  /// Sign with an explicit nonce (models randomized signatures, letting a
  /// Byzantine signer mint several distinct valid signatures on one payload).
  [[nodiscard]] virtual crypto::Signature sign_nonced(
      const crypto::SignedPayload& payload, std::uint64_t nonce) = 0;

  /// Real time — Byzantine nodes are not bound by hardware clocks.
  [[nodiscard]] virtual double real_now() const = 0;
};

}  // namespace crusader::sim
