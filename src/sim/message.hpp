#pragma once
// The one message type shared by every protocol in this repository.
//
// A tagged struct (rather than std::variant) keeps the network layer,
// knowledge tracker and traces protocol-agnostic; unused fields stay empty.

#include <cstdint>
#include <vector>

#include "crypto/signature.hpp"
#include "util/ids.hpp"

namespace crusader::sim {

enum class MsgKind : std::uint8_t {
  kTcbSig,    // Timed Crusader Broadcast: ⟨r⟩_dealer (direct or echoed)
  kLwPulse,   // Lynch–Welch: unsigned "I pulsed round r"
  kStReady,   // Srikanth–Toueg: one signed ⟨ready r⟩
  kStCert,    // Srikanth–Toueg: relayed certificate of ⟨ready r⟩ signatures
  kRaw,       // free-form (tests, adversaries)
};

struct Message {
  MsgKind kind = MsgKind::kRaw;
  Round round = 0;
  /// TCB: the dealer whose pulse this signature attests (the signer of `sig`).
  NodeId dealer = kInvalidNode;
  crypto::Signature sig;
  std::vector<crypto::Signature> sigs;  // kStCert
  double value = 0.0;                   // free-form payload
  /// Stamped by the network on delivery: who handed this to the link.
  NodeId sender = kInvalidNode;
  /// Logical origin for nested simulations (e.g. the general-n Theorem-5
  /// reduction, where one physical node simulates a group of protocol
  /// nodes). Transport layers never touch this field.
  NodeId origin = kInvalidNode;

  [[nodiscard]] bool carries_signature() const noexcept {
    return kind == MsgKind::kTcbSig || kind == MsgKind::kStReady ||
           kind == MsgKind::kStCert;
  }
};

}  // namespace crusader::sim
