#pragma once
// Pulse traces and the Definition-3 quality metrics computed from them:
// skew, minimum period, maximum period, liveness.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/ids.hpp"

namespace crusader::sim {

struct PulseEvent {
  double real_time = 0.0;
  double local_time = 0.0;
};

class PulseTrace {
 public:
  /// Empty trace (0 nodes); useful as a default before a run completes.
  PulseTrace() = default;
  PulseTrace(std::uint32_t n, std::vector<bool> faulty);

  void record(NodeId v, double real_time, double local_time);

  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(pulses_.size());
  }
  [[nodiscard]] bool is_faulty(NodeId v) const { return faulty_.at(v); }
  [[nodiscard]] std::size_t pulse_count(NodeId v) const {
    return pulses_.at(v).size();
  }
  /// Real time of v's (0-based) pulse r.
  [[nodiscard]] double pulse_time(NodeId v, std::size_t r) const;
  [[nodiscard]] const std::vector<PulseEvent>& pulses(NodeId v) const {
    return pulses_.at(v);
  }

  /// Number of complete pulse rounds: min over honest nodes of pulse_count.
  [[nodiscard]] std::size_t complete_rounds() const;

  /// max_{v,w honest} |p_{v,r} - p_{w,r}| for 0-based round r.
  [[nodiscard]] double skew(std::size_t r) const;

  /// Maximum skew over complete rounds in [from, complete_rounds()).
  [[nodiscard]] double max_skew(std::size_t from = 0) const;

  /// All per-round skews over complete rounds.
  [[nodiscard]] std::vector<double> skews() const;

  /// Definition 3: inf_r ( min_v p_{v,r+1} - max_v p_{v,r} ) over honest v.
  [[nodiscard]] double min_period() const;
  /// Definition 3: sup_r ( max_v p_{v,r+1} - min_v p_{v,r} ) over honest v.
  [[nodiscard]] double max_period() const;

  /// Liveness check: every honest node produced at least `rounds` pulses.
  [[nodiscard]] bool live(std::size_t rounds) const;

  [[nodiscard]] std::vector<NodeId> honest() const;

 private:
  std::vector<std::vector<PulseEvent>> pulses_;
  std::vector<bool> faulty_;
};

}  // namespace crusader::sim
