#pragma once
// Time conventions.
//
// Real time and local (hardware-clock) time are both `double`, in abstract
// "time units" (benches typically set d = 1). We keep them as plain doubles
// for arithmetic convenience but name parameters `t`/`real` vs `h`/`local`
// consistently. All protocol-level boundary comparisons use `kTimeEps`
// tolerance so that no guarantee hinges on exact floating-point equality
// (see DESIGN.md §3.2).

namespace crusader::sim {

/// Tolerance for boundary comparisons in protocol logic. Six orders of
/// magnitude below the smallest uncertainty we simulate (u >= 1e-3).
inline constexpr double kTimeEps = 1e-9;

/// Acceptance-window slack. The paper's windows are open intervals whose
/// endpoints are *achieved* by the extremal executions our adversarial
/// worlds construct (e.g. ∥p∥ = S with maximal delays lands an honest
/// dealer's message exactly on the window close — the Lemma 10 bound with
/// equality). In continuous mathematics this is a measure-zero event; in a
/// simulator it happens exactly. Widening acceptance by this slack is
/// equivalent to running with W' = W + 1e-6, which perturbs the δ bound by
/// (ϑ−1)·1e-6 — far below every margin we assert. See DESIGN.md §3.2.
inline constexpr double kBoundarySlack = 1e-6;

/// a < b with tolerance (strictly-less by more than eps).
[[nodiscard]] inline bool lt_eps(double a, double b) noexcept {
  return a < b - kTimeEps;
}

/// a <= b with tolerance.
[[nodiscard]] inline bool le_eps(double a, double b) noexcept {
  return a <= b + kTimeEps;
}

/// a in open interval (lo, hi) with tolerance applied symmetrically.
[[nodiscard]] inline bool in_open(double a, double lo, double hi) noexcept {
  return lt_eps(lo, a) && lt_eps(a, hi);
}

}  // namespace crusader::sim
