#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace crusader::sim {

EventId Engine::at(double t, EventFn fn) {
  return queue_.schedule(std::max(t, now_), std::move(fn));
}

EventId Engine::after(double dt, EventFn fn) {
  CS_CHECK_MSG(dt >= 0.0, "negative delay " << dt);
  return queue_.schedule(now_ + dt, std::move(fn));
}

void Engine::run_until(double horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    const double t = queue_.next_time();
    CS_CHECK_MSG(t >= now_, "time went backwards: " << t << " < " << now_);
    now_ = t;
    queue_.pop_and_run();
    ++processed_;
  }
  now_ = std::max(now_, horizon);
}

bool Engine::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.pop_and_run();
  ++processed_;
  return true;
}

}  // namespace crusader::sim
