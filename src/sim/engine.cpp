#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace crusader::sim {

namespace {

// Armed/deadline pair for the calling thread (see WallBudget). Split into
// two variables so the hot-path expired() check is one bool read when no
// budget is armed.
// The wall budget is the one sanctioned real-clock consumer in src/: it
// only decides WHEN to abort, never what a row contains — an aborted cell
// discards every measurement (timed_out=1, metrics NaN) and is retried on
// campaign resume, so no exported byte depends on these clock reads.
thread_local bool t_budget_armed = false;
thread_local std::chrono::steady_clock::time_point  // lint:allow(banned-time)
    t_budget_deadline{};

/// Clock-read stride: checking steady_clock every event would dominate the
/// per-event cost; every 256th event bounds the overrun to microseconds.
constexpr std::uint32_t kBudgetStride = 256;

}  // namespace

WallBudget::WallBudget(double budget_ms)
    : prev_deadline_(t_budget_deadline), prev_armed_(t_budget_armed) {
  CS_CHECK_MSG(budget_ms > 0.0, "wall budget must be positive, got "
                                    << budget_ms << " ms");
  t_budget_armed = true;
  t_budget_deadline =
      std::chrono::steady_clock::now() +  // lint:allow(banned-time)
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          // lint:allow(banned-time) — content-free deadline, see above
          std::chrono::duration<double, std::milli>(budget_ms));
}

WallBudget::~WallBudget() {
  t_budget_deadline = prev_deadline_;
  t_budget_armed = prev_armed_;
}

bool WallBudget::expired() {
  return t_budget_armed &&
         std::chrono::steady_clock::now() >=  // lint:allow(banned-time)
             t_budget_deadline;
}

EventId Engine::at(double t, EventFn fn) {
  return queue_.schedule(std::max(t, now_), std::move(fn));
}

EventId Engine::after(double dt, EventFn fn) {
  CS_CHECK_MSG(dt >= 0.0, "negative delay " << dt);
  return queue_.schedule(now_ + dt, std::move(fn));
}

void Engine::run_until(double horizon) {
  std::uint32_t until_check = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    // Checked on the first iteration (so a tiny budget trips even a short
    // run) and every kBudgetStride events after.
    if ((until_check++ % kBudgetStride) == 0 && WallBudget::expired())
      throw BudgetExceeded{};
    const double t = queue_.next_time();
    CS_CHECK_MSG(t >= now_, "time went backwards: " << t << " < " << now_);
    now_ = t;
    queue_.pop_and_run();
    ++processed_;
  }
  now_ = std::max(now_, horizon);
}

bool Engine::step() {
  if (WallBudget::expired()) throw BudgetExceeded{};
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.pop_and_run();
  ++processed_;
  return true;
}

}  // namespace crusader::sim
