#include "sim/trace_io.hpp"

#include <algorithm>
#include <cstddef>
#include <iomanip>
#include <limits>
#include <ostream>

namespace crusader::sim {

void write_pulses_csv(const PulseTrace& trace, std::ostream& os) {
  os << "node,role,round,real_time,local_time\n";
  os << std::setprecision(12);
  for (NodeId v = 0; v < trace.n(); ++v) {
    const auto& pulses = trace.pulses(v);
    for (std::size_t r = 0; r < pulses.size(); ++r) {
      os << v << ',' << (trace.is_faulty(v) ? "faulty" : "honest") << ','
         << (r + 1) << ',' << pulses[r].real_time << ','
         << pulses[r].local_time << '\n';
    }
  }
}

void write_rounds_csv(const PulseTrace& trace, std::ostream& os) {
  os << "round,skew,min_pulse,max_pulse\n";
  os << std::setprecision(12);
  const std::size_t rounds = trace.complete_rounds();
  for (std::size_t r = 0; r < rounds; ++r) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < trace.n(); ++v) {
      if (trace.is_faulty(v)) continue;
      const double t = trace.pulse_time(v, r);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    os << (r + 1) << ',' << (hi - lo) << ',' << lo << ',' << hi << '\n';
  }
}

}  // namespace crusader::sim
