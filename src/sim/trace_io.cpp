#include "sim/trace_io.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <ostream>

#include "util/fmt.hpp"

namespace crusader::sim {

// Float → text goes through util::fmt_double (shortest round-trip, locale
// independent) like every other determinism-relevant writer. The previous
// std::setprecision(12) stream state truncated below round-trip fidelity
// and was exactly the kind of bypass scripts/lint_determinism.py now flags.

void write_pulses_csv(const PulseTrace& trace, std::ostream& os) {
  os << "node,role,round,real_time,local_time\n";
  for (NodeId v = 0; v < trace.n(); ++v) {
    const auto& pulses = trace.pulses(v);
    for (std::size_t r = 0; r < pulses.size(); ++r) {
      os << v << ',' << (trace.is_faulty(v) ? "faulty" : "honest") << ','
         << (r + 1) << ',' << util::fmt_double(pulses[r].real_time) << ','
         << util::fmt_double(pulses[r].local_time) << '\n';
    }
  }
}

void write_rounds_csv(const PulseTrace& trace, std::ostream& os) {
  os << "round,skew,min_pulse,max_pulse\n";
  const std::size_t rounds = trace.complete_rounds();
  for (std::size_t r = 0; r < rounds; ++r) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < trace.n(); ++v) {
      if (trace.is_faulty(v)) continue;
      const double t = trace.pulse_time(v, r);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    os << (r + 1) << ',' << util::fmt_double(hi - lo) << ','
       << util::fmt_double(lo) << ',' << util::fmt_double(hi) << '\n';
  }
}

}  // namespace crusader::sim
