#include "sim/network.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace crusader::sim {

const char* to_string(DelayKind kind) {
  switch (kind) {
    case DelayKind::kMax: return "max";
    case DelayKind::kMin: return "min";
    case DelayKind::kRandom: return "random";
    case DelayKind::kSplit: return "split";
  }
  return "?";
}

std::unique_ptr<DelayPolicy> make_delay_policy(DelayKind kind, std::uint32_t n) {
  switch (kind) {
    case DelayKind::kMax: return std::make_unique<MaxDelayPolicy>();
    case DelayKind::kMin: return std::make_unique<MinDelayPolicy>();
    case DelayKind::kRandom: return std::make_unique<RandomDelayPolicy>();
    case DelayKind::kSplit: return std::make_unique<SplitDelayPolicy>(n);
  }
  CS_CHECK_MSG(false, "unknown delay kind");
  return nullptr;
}

Network::Network(Engine& engine, ModelParams model, std::vector<bool> faulty,
                 std::unique_ptr<DelayPolicy> policy, util::Rng rng,
                 Enforcement enforcement)
    : engine_(engine),
      model_(model),
      faulty_(std::move(faulty)),
      policy_(std::move(policy)),
      rng_(rng),
      enforcement_(enforcement) {
  model_.validate();
  CS_CHECK(faulty_.size() == model_.n);
  CS_CHECK(policy_ != nullptr);
}

double Network::min_delay(NodeId from, NodeId to) const {
  const bool faulty_endpoint = faulty_.at(from) || faulty_.at(to);
  return model_.d - (faulty_endpoint ? model_.u_tilde : model_.u);
}

void Network::flag(const std::string& what) {
  if (enforcement_ == Enforcement::kThrow) throw util::ModelViolation(what);
  violations_.push_back(what);
  CS_WARN << "model violation recorded: " << what;
}

void Network::check_adversary_knowledge(NodeId from, const Message& m) {
  if (!faulty_.at(from) || !m.carries_signature()) return;
  auto check_one = [&](const crypto::Signature& sig) {
    if (sig.signer == kInvalidNode) return;
    if (faulty_.at(sig.signer)) return;  // own/colluding keys are always known
    if (!knowledge_.knows(sig)) {
      std::ostringstream oss;
      oss << "faulty node " << from << " sent signature of honest node "
          << sig.signer << " (payload " << sig.payload_hash
          << ") before receiving it";
      flag(oss.str());
    }
  };
  check_one(m.sig);
  for (const auto& s : m.sigs) check_one(s);
}

void Network::count_message(const Message& m) {
  ++stats_.messages;
  ++stats_.by_kind[static_cast<std::size_t>(m.kind)];
  if (m.sig.signer != kInvalidNode) ++stats_.signatures_carried;
  stats_.signatures_carried += m.sigs.size();
}

void Network::deliver_one(NodeId to, const Message& m) {
  // The adversary learns every signature delivered to a faulty node
  // (execution well-formedness rule, Section 2).
  if (faulty_.at(to)) {
    if (m.sig.signer != kInvalidNode) knowledge_.learn(m.sig);
    for (const auto& s : m.sigs) knowledge_.learn(s);
  }
  CS_CHECK_MSG(deliver_, "network delivery hook not installed");
  deliver_(to, m);
}

void Network::enqueue(NodeId from, NodeId to, Message m, double delay) {
  CS_CHECK_MSG(to < model_.n, "recipient " << to << " out of range");
  CS_CHECK_MSG(from != to, "self-sends are modeled as local computation");
  m.sender = from;
  count_message(m);

  auto ref = arena_.acquire(m);
  engine_.at(engine_.now() + delay, [this, to, ref = std::move(ref)] {
    deliver_one(to, *ref);
  });
}

double Network::choose_delay(NodeId from, NodeId to, const Message& m) {
  const double lo = min_delay(from, to);
  const double hi = model_.d;
  double delay = policy_->delay(from, to, engine_.now(), m, lo, hi, rng_);
  if (delay < lo - kTimeEps || delay > hi + kTimeEps) {
    std::ostringstream oss;
    oss << "delay policy returned " << delay << " outside [" << lo << ", "
        << hi << "]";
    flag(oss.str());
    delay = std::min(std::max(delay, lo), hi);
  }
  return delay;
}

void Network::send(NodeId from, NodeId to, Message m) {
  check_adversary_knowledge(from, m);
  const double delay = choose_delay(from, to, m);
  enqueue(from, to, std::move(m), delay);
}

void Network::broadcast(NodeId from, const Message& m) {
  if (!batch_ || faulty_.at(from)) {
    // Reference path: per-receiver sends. Faulty senders stay here even
    // with batching on, because check_adversary_knowledge records one
    // violation per receiver.
    for (NodeId to = 0; to < model_.n; ++to)
      if (to != from) send(from, to, m);
    return;
  }
  CS_CHECK_MSG(from < model_.n, "sender " << from << " out of range");

  // One shared payload for the whole broadcast; receivers only read it.
  Message stamped = m;
  stamped.sender = from;
  const MessageArena::Ref ref = arena_.acquire(stamped);

  // Group maximal runs of consecutive receivers with exactly-equal delay
  // into one aggregate event each. Delivery order is identical to the
  // per-receiver path: within a run receivers fire in id order, and runs at
  // equal times fire in scheduling (= id) order by the queue's FIFO
  // tie-break. The aggregate credits the engine so events_processed()
  // reports per-receiver logical events.
  double run_delay = 0.0;
  NodeId run_begin = 0;
  NodeId run_end = 0;
  std::uint32_t run_count = 0;
  auto flush = [&] {
    if (run_count == 0) return;
    engine_.at(engine_.now() + run_delay,
               [this, a = run_begin, b = run_end, k = run_count, ref] {
                 engine_.credit_events(k - 1);
                 const NodeId skip = ref->sender;
                 for (NodeId to = a; to <= b; ++to) {
                   if (to == skip) continue;
                   deliver_one(to, *ref);
                 }
               });
  };
  for (NodeId to = 0; to < model_.n; ++to) {
    if (to == from) continue;
    count_message(stamped);
    // Policies see the caller's message, exactly like send() (the sender
    // stamp happens on the payload copy, after delay selection).
    const double delay = choose_delay(from, to, m);
    if (run_count > 0 && delay == run_delay) {
      run_end = to;
      ++run_count;
    } else {
      flush();
      run_delay = delay;
      run_begin = run_end = to;
      run_count = 1;
    }
  }
  flush();
}

void Network::send_with_delay(NodeId from, NodeId to, Message m, double delay) {
  CS_CHECK_MSG(faulty_.at(from), "send_with_delay is a Byzantine capability");
  check_adversary_knowledge(from, m);
  const double lo = min_delay(from, to);
  const double hi = model_.d;
  if (delay < lo - kTimeEps || delay > hi + kTimeEps) {
    std::ostringstream oss;
    oss << "Byzantine node " << from << " requested delay " << delay
        << " outside [" << lo << ", " << hi << "] toward node " << to;
    flag(oss.str());
    delay = std::min(std::max(delay, lo), hi);
  }
  enqueue(from, to, std::move(m), delay);
}

}  // namespace crusader::sim
