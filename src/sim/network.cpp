#include "sim/network.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace crusader::sim {

const char* to_string(DelayKind kind) {
  switch (kind) {
    case DelayKind::kMax: return "max";
    case DelayKind::kMin: return "min";
    case DelayKind::kRandom: return "random";
    case DelayKind::kSplit: return "split";
  }
  return "?";
}

std::unique_ptr<DelayPolicy> make_delay_policy(DelayKind kind, std::uint32_t n) {
  switch (kind) {
    case DelayKind::kMax: return std::make_unique<MaxDelayPolicy>();
    case DelayKind::kMin: return std::make_unique<MinDelayPolicy>();
    case DelayKind::kRandom: return std::make_unique<RandomDelayPolicy>();
    case DelayKind::kSplit: return std::make_unique<SplitDelayPolicy>(n);
  }
  CS_CHECK_MSG(false, "unknown delay kind");
  return nullptr;
}

Network::Network(Engine& engine, ModelParams model, std::vector<bool> faulty,
                 std::unique_ptr<DelayPolicy> policy, util::Rng rng,
                 Enforcement enforcement)
    : engine_(engine),
      model_(model),
      faulty_(std::move(faulty)),
      policy_(std::move(policy)),
      rng_(rng),
      enforcement_(enforcement) {
  model_.validate();
  CS_CHECK(faulty_.size() == model_.n);
  CS_CHECK(policy_ != nullptr);
}

double Network::min_delay(NodeId from, NodeId to) const {
  const bool faulty_endpoint = faulty_.at(from) || faulty_.at(to);
  return model_.d - (faulty_endpoint ? model_.u_tilde : model_.u);
}

void Network::flag(const std::string& what) {
  if (enforcement_ == Enforcement::kThrow) throw util::ModelViolation(what);
  violations_.push_back(what);
  CS_WARN << "model violation recorded: " << what;
}

void Network::check_adversary_knowledge(NodeId from, const Message& m) {
  if (!faulty_.at(from) || !m.carries_signature()) return;
  auto check_one = [&](const crypto::Signature& sig) {
    if (sig.signer == kInvalidNode) return;
    if (faulty_.at(sig.signer)) return;  // own/colluding keys are always known
    if (!knowledge_.knows(sig)) {
      std::ostringstream oss;
      oss << "faulty node " << from << " sent signature of honest node "
          << sig.signer << " (payload " << sig.payload_hash
          << ") before receiving it";
      flag(oss.str());
    }
  };
  check_one(m.sig);
  for (const auto& s : m.sigs) check_one(s);
}

void Network::enqueue(NodeId from, NodeId to, Message m, double delay) {
  CS_CHECK_MSG(to < model_.n, "recipient " << to << " out of range");
  CS_CHECK_MSG(from != to, "self-sends are modeled as local computation");
  m.sender = from;

  ++stats_.messages;
  ++stats_.by_kind[static_cast<std::size_t>(m.kind)];
  if (m.sig.signer != kInvalidNode) ++stats_.signatures_carried;
  stats_.signatures_carried += m.sigs.size();

  const double deliver_at = engine_.now() + delay;
  engine_.at(deliver_at, [this, to, msg = std::move(m)]() {
    // The adversary learns every signature delivered to a faulty node
    // (execution well-formedness rule, Section 2).
    if (faulty_.at(to)) {
      if (msg.sig.signer != kInvalidNode) knowledge_.learn(msg.sig);
      for (const auto& s : msg.sigs) knowledge_.learn(s);
    }
    CS_CHECK_MSG(deliver_, "network delivery hook not installed");
    deliver_(to, msg);
  });
}

void Network::send(NodeId from, NodeId to, Message m) {
  check_adversary_knowledge(from, m);
  const double lo = min_delay(from, to);
  const double hi = model_.d;
  double delay = policy_->delay(from, to, engine_.now(), m, lo, hi, rng_);
  if (delay < lo - kTimeEps || delay > hi + kTimeEps) {
    std::ostringstream oss;
    oss << "delay policy returned " << delay << " outside [" << lo << ", "
        << hi << "]";
    flag(oss.str());
    delay = std::min(std::max(delay, lo), hi);
  }
  enqueue(from, to, std::move(m), delay);
}

void Network::send_with_delay(NodeId from, NodeId to, Message m, double delay) {
  CS_CHECK_MSG(faulty_.at(from), "send_with_delay is a Byzantine capability");
  check_adversary_knowledge(from, m);
  const double lo = min_delay(from, to);
  const double hi = model_.d;
  if (delay < lo - kTimeEps || delay > hi + kTimeEps) {
    std::ostringstream oss;
    oss << "Byzantine node " << from << " requested delay " << delay
        << " outside [" << lo << ", " << hi << "] toward node " << to;
    flag(oss.str());
    delay = std::min(std::max(delay, lo), hi);
  }
  enqueue(from, to, std::move(m), delay);
}

}  // namespace crusader::sim
