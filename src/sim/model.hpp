#pragma once
// The paper's network/clock model parameters (Section 2).

#include <cstdint>

#include "util/check.hpp"

namespace crusader::sim {

/// Parameters of the model: n nodes, at most f faulty, end-to-end delays in
/// [d-u, d] between honest nodes and [d-u_tilde, d] on links with a faulty
/// endpoint, hardware clock rates in [1, vartheta].
struct ModelParams {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  double d = 1.0;
  double u = 0.1;
  double u_tilde = 0.1;
  double vartheta = 1.02;

  /// ⌈n/2⌉ - 1: optimal resilience with signatures (this paper).
  [[nodiscard]] static std::uint32_t max_faults_signed(std::uint32_t n) noexcept {
    return (n + 1) / 2 - 1;
  }

  /// ⌈n/3⌉ - 1: optimal resilience without signatures [13, 28].
  [[nodiscard]] static std::uint32_t max_faults_plain(std::uint32_t n) noexcept {
    return (n + 2) / 3 - 1;
  }

  /// 2ũ/3: the Theorem-5 lower bound on the worst-case skew any pulse
  /// protocol can guarantee in this model (tight — CPS matches it).
  [[nodiscard]] double theorem5_bound() const noexcept {
    return 2.0 * u_tilde / 3.0;
  }

  void validate() const {
    CS_CHECK_MSG(n >= 2, "need at least two nodes");
    CS_CHECK_MSG(f < n, "f must be < n");
    CS_CHECK_MSG(d > 0.0, "d must be positive");
    CS_CHECK_MSG(u >= 0.0 && u <= d, "u must be in [0, d]");
    CS_CHECK_MSG(u_tilde >= u && u_tilde <= d,
                 "u_tilde must be in [u, d] (paper, Section 2)");
    CS_CHECK_MSG(vartheta > 1.0, "vartheta must exceed 1");
    // The TCB echo guard d - 2u must be positive for the acceptance logic
    // (Figure 2) to be meaningful.
    CS_CHECK_MSG(d > 2.0 * u, "model requires d > 2u for the echo guard");
  }
};

}  // namespace crusader::sim
