#pragma once
// Refcounted slab of Message payloads for the delivery hot path.
//
// The unbatched network copies every Message into its delivery closure, so a
// broadcast to n receivers round-trips the heap n times (the sigs vector plus
// std::function storage per copy). The arena keeps one copy per logical
// payload in a recycled slot; deliveries share it through lightweight Refs.
// Recycled slots keep their Message object alive, so a reused slot's sigs
// vector keeps its capacity — steady-state message traffic allocates nothing.
//
// Slots are generation-tagged like EventQueue's: a Ref names (slot, gen) and
// recycling bumps the generation, so a stale Ref (held past its slot's
// reuse) fails its deref check instead of silently reading another payload.
// Refs share ownership of the slab state, so a Ref captured in a queued
// event closure stays valid even if it outlives the arena handle (the engine
// tears down after the network in every world).
//
// Single-threaded by design, like the engine it feeds: one arena per world,
// refcounts are plain integers.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "util/check.hpp"

namespace crusader::sim {

class MessageArena {
  struct Slot {
    Message msg;
    std::uint32_t refs = 0;
    std::uint32_t gen = 0;
  };
  struct State {
    // deque: slot addresses stay stable while a delivery holds a reference
    // and the callee's sends grow the slab.
    std::deque<Slot> slots;
    std::vector<std::uint32_t> free;
    std::size_t live = 0;
    std::uint64_t acquired = 0;
  };

 public:
  /// Shared handle to one arena payload. Copying bumps the slot refcount;
  /// the last Ref recycles the slot. Cheap enough to capture by value in
  /// event closures.
  class Ref {
   public:
    Ref() = default;
    Ref(const Ref& other) : state_(other.state_), slot_(other.slot_), gen_(other.gen_) {
      if (state_) ++state_->slots[slot_].refs;
    }
    Ref(Ref&& other) noexcept
        : state_(std::move(other.state_)), slot_(other.slot_), gen_(other.gen_) {}
    Ref& operator=(const Ref& other) {
      if (this != &other) {
        Ref copy(other);
        *this = std::move(copy);
      }
      return *this;
    }
    Ref& operator=(Ref&& other) noexcept {
      if (this != &other) {
        release();
        state_ = std::move(other.state_);
        slot_ = other.slot_;
        gen_ = other.gen_;
      }
      return *this;
    }
    ~Ref() { release(); }

    [[nodiscard]] explicit operator bool() const noexcept {
      return state_ != nullptr;
    }

    [[nodiscard]] const Message& operator*() const {
      CS_CHECK_MSG(state_, "deref of an empty MessageArena::Ref");
      const Slot& s = state_->slots[slot_];
      CS_CHECK_MSG(s.gen == gen_,
                   "stale MessageArena::Ref: slot " << slot_
                                                    << " was recycled");
      return s.msg;
    }
    [[nodiscard]] const Message* operator->() const { return &**this; }

   private:
    friend class MessageArena;
    Ref(std::shared_ptr<State> state, std::uint32_t slot, std::uint32_t gen)
        : state_(std::move(state)), slot_(slot), gen_(gen) {}

    void release() noexcept {
      if (!state_) return;
      Slot& s = state_->slots[slot_];
      if (s.gen == gen_ && --s.refs == 0) {
        ++s.gen;  // invalidate any stale handles to the old payload
        state_->free.push_back(slot_);
        --state_->live;
      }
      state_.reset();
    }

    std::shared_ptr<State> state_;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };

  MessageArena() : state_(std::make_shared<State>()) {}

  /// Copy `m` into a recycled slot (reusing its sigs capacity) and return a
  /// shared handle to it.
  [[nodiscard]] Ref acquire(const Message& m) {
    std::uint32_t slot;
    if (!state_->free.empty()) {
      slot = state_->free.back();
      state_->free.pop_back();
      state_->slots[slot].msg = m;  // copy-assign: reuses heap capacity
    } else {
      slot = static_cast<std::uint32_t>(state_->slots.size());
      state_->slots.push_back(Slot{m, 0, 0});
    }
    Slot& s = state_->slots[slot];
    s.refs = 1;
    ++state_->live;
    ++state_->acquired;
    return Ref(state_, slot, s.gen);
  }

  /// Payloads currently referenced by at least one Ref.
  [[nodiscard]] std::size_t live() const noexcept { return state_->live; }
  /// Slots ever allocated: tracks the high-water live count, not the
  /// lifetime acquire count (tests assert memory stays O(live)).
  [[nodiscard]] std::size_t slab_capacity() const noexcept {
    return state_->slots.size();
  }
  /// Lifetime acquire() count.
  [[nodiscard]] std::uint64_t acquired() const noexcept {
    return state_->acquired;
  }

 private:
  std::shared_ptr<State> state_;
};

}  // namespace crusader::sim

