#include "sim/event_queue.hpp"

#include <cstddef>
#include <utility>

#include "util/check.hpp"

namespace crusader::sim {

EventId EventQueue::schedule(double t, EventFn fn) {
  CS_CHECK_MSG(fn, "cannot schedule an empty event");
  const EventId id = next_id_++;
  fns_.push_back(std::move(fn));
  heap_.push(Entry{t, id});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= fns_.size() || !fns_[id]) return false;
  fns_[id] = nullptr;
  cancelled_.insert(id);
  --live_;
  return true;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && cancelled_.contains(heap_.top().id)) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

double EventQueue::next_time() const {
  drop_cancelled();
  CS_CHECK(!heap_.empty());
  return heap_.top().t;
}

double EventQueue::pop_and_run() {
  drop_cancelled();
  CS_CHECK(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  EventFn fn = std::move(fns_[top.id]);
  fns_[top.id] = nullptr;
  --live_;
  CS_CHECK_MSG(fn, "popped a cancelled event");
  fn();
  return top.t;
}

std::size_t EventQueue::pending() const {
  return live_;
}

}  // namespace crusader::sim
