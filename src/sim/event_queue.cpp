#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

#include "util/check.hpp"

namespace crusader::sim {

EventId EventQueue::schedule(double t, EventFn fn) {
  CS_CHECK_MSG(fn, "cannot schedule an empty event");
  CS_CHECK_MSG(std::isfinite(t),
               "event time must be finite (NaN/inf would corrupt the "
               "queue's strict weak ordering)");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    CS_CHECK_MSG(slots_.size() < std::numeric_limits<std::uint32_t>::max(),
                 "event slab exhausted (2^32 - 1 pending events)");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  const EventId id =
      (static_cast<EventId>(slots_[slot].gen) << 32) | static_cast<EventId>(slot);
  heap_.push_back(Entry{t, scheduled_++, id});
  std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
  ++live_;
  return id;
}

void EventQueue::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;
  ++s.gen;  // wraps after 2^32 reuses of one slot; ids don't live that long
  free_.push_back(slot);
  --live_;
}

bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  if (s.gen != gen_of(id) || !s.fn) return false;
  retire(slot);
  ++stale_in_heap_;  // the heap entry stays until drop_stale()/compact()
  compact();
  return true;
}

void EventQueue::drop_stale() const {
  while (!heap_.empty() && stale(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
    heap_.pop_back();
    --stale_in_heap_;
  }
}

void EventQueue::compact() {
  // Amortized O(1): rebuilding costs O(heap), paid for by the >= heap/2
  // cancellations since the last rebuild. The +64 floor avoids rebuilding
  // tiny heaps.
  if (stale_in_heap_ <= heap_.size() / 2 || stale_in_heap_ <= 64) return;
  std::erase_if(heap_, [this](const Entry& e) { return stale(e); });
  std::make_heap(heap_.begin(), heap_.end(), FiresLater{});
  stale_in_heap_ = 0;
}

bool EventQueue::empty() const {
  drop_stale();
  return heap_.empty();
}

double EventQueue::next_time() const {
  drop_stale();
  CS_CHECK(!heap_.empty());
  return heap_.front().t;
}

double EventQueue::pop_and_run() {
  drop_stale();
  CS_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
  const Entry top = heap_.back();
  heap_.pop_back();
  EventFn fn = std::move(slots_[slot_of(top.id)].fn);
  retire(slot_of(top.id));
  CS_CHECK_MSG(fn, "popped a cancelled event");
  fn();
  return top.t;
}

}  // namespace crusader::sim
