#include "sim/world.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::sim {

const char* to_string(ClockKind kind) {
  switch (kind) {
    case ClockKind::kNominal: return "nominal";
    case ClockKind::kSpread: return "spread";
    case ClockKind::kRandomWalk: return "random-walk";
    case ClockKind::kCustom: return "custom";
  }
  return "?";
}

std::vector<NodeId> default_faulty_set(std::uint32_t f) {
  std::vector<NodeId> out(f);
  for (std::uint32_t i = 0; i < f; ++i) out[i] = i;
  return out;
}

// --- Runners ----------------------------------------------------------------

namespace {
struct RunnerCore {
  NodeId id;
  const ModelParams* model;
  Engine* engine;
  Network* network;
  const HardwareClock* clock;
  PulseTrace* trace;
  crypto::Pki* pki;

  [[nodiscard]] double local_now() const { return clock->local(engine->now()); }

  TimerId schedule_local(double local_time, std::function<void()> fn) const {
    const double h0 = clock->segments().front().h0;
    const double t = local_time <= h0 ? 0.0 : clock->real(local_time);
    return engine->at(std::max(t, engine->now()), std::move(fn));
  }
};
}  // namespace

class World::HonestRunner final : public Env {
 public:
  HonestRunner(RunnerCore core, std::unique_ptr<PulseNode> node)
      : core_(core), node_(std::move(node)) {}

  void start() { node_->on_start(*this); }
  void deliver(const Message& m) { node_->on_message(*this, m); }

  [[nodiscard]] NodeId id() const override { return core_.id; }
  [[nodiscard]] const ModelParams& model() const override {
    return *core_.model;
  }
  [[nodiscard]] double local_now() const override { return core_.local_now(); }

  void send(NodeId to, Message m) override {
    core_.network->send(core_.id, to, std::move(m));
  }

  void broadcast(const Message& m) override {
    core_.network->broadcast(core_.id, m);
  }

  TimerId schedule_at_local(double local_time, std::uint64_t tag) override {
    return core_.schedule_local(local_time,
                                [this, tag] { node_->on_timer(*this, tag); });
  }

  void cancel_timer(TimerId id) override { core_.engine->cancel(id); }

  void pulse() override {
    core_.trace->record(core_.id, core_.engine->now(), local_now());
  }

  [[nodiscard]] crypto::Signature sign(
      const crypto::SignedPayload& payload) override {
    return core_.pki->sign(core_.id, payload, 0);
  }

  [[nodiscard]] bool verify(const crypto::Signature& sig,
                            const crypto::SignedPayload& payload) const override {
    return core_.pki->verify(sig, payload);
  }

 private:
  RunnerCore core_;
  std::unique_ptr<PulseNode> node_;
};

class World::ByzantineRunner final : public AdversaryEnv {
 public:
  ByzantineRunner(RunnerCore core, std::unique_ptr<ByzantineNode> node)
      : core_(core), node_(std::move(node)) {}

  void start() { node_->on_start(*this); }
  void deliver(const Message& m) { node_->on_message(*this, m); }

  [[nodiscard]] NodeId id() const override { return core_.id; }
  [[nodiscard]] const ModelParams& model() const override {
    return *core_.model;
  }
  [[nodiscard]] double local_now() const override { return core_.local_now(); }
  [[nodiscard]] double real_now() const override { return core_.engine->now(); }

  void send(NodeId to, Message m) override {
    core_.network->send(core_.id, to, std::move(m));
  }

  void send_with_delay(NodeId to, Message m, double delay) override {
    core_.network->send_with_delay(core_.id, to, std::move(m), delay);
  }

  void broadcast(const Message& m) override {
    // Faulty senders always take the network's per-receiver path (their
    // Dolev–Yao knowledge check is per receiver).
    core_.network->broadcast(core_.id, m);
  }

  TimerId schedule_at_local(double local_time, std::uint64_t tag) override {
    return core_.schedule_local(local_time,
                                [this, tag] { node_->on_timer(*this, tag); });
  }

  void cancel_timer(TimerId id) override { core_.engine->cancel(id); }

  void pulse() override {
    // Recorded for completeness; quality metrics ignore faulty nodes.
    core_.trace->record(core_.id, core_.engine->now(), local_now());
  }

  [[nodiscard]] crypto::Signature sign(
      const crypto::SignedPayload& payload) override {
    return core_.pki->sign(core_.id, payload, 0);
  }

  [[nodiscard]] crypto::Signature sign_nonced(
      const crypto::SignedPayload& payload, std::uint64_t nonce) override {
    return core_.pki->sign(core_.id, payload, nonce);
  }

  [[nodiscard]] bool verify(const crypto::Signature& sig,
                            const crypto::SignedPayload& payload) const override {
    return core_.pki->verify(sig, payload);
  }

 private:
  RunnerCore core_;
  std::unique_ptr<ByzantineNode> node_;
};

// --- World ------------------------------------------------------------------

World::World(WorldConfig config, HonestFactory honest,
             ByzantineFactory byzantine)
    : config_(std::move(config)), rng_(config_.seed) {
  config_.model.validate();
  const std::uint32_t n = config_.model.n;

  faulty_.assign(n, false);
  for (NodeId v : config_.faulty) {
    CS_CHECK_MSG(v < n, "faulty id " << v << " out of range");
    CS_CHECK_MSG(!faulty_[v], "duplicate faulty id " << v);
    faulty_[v] = true;
  }
  CS_CHECK_MSG(config_.faulty.size() <= config_.model.f,
               "more faulty nodes than the configured bound f");

  engine_ = std::make_unique<Engine>();
  pki_ = std::make_unique<crypto::Pki>(n, config_.pki_kind,
                                       config_.seed ^ 0x5bd1e995u);
  auto policy = config_.custom_delay
                    ? config_.custom_delay()
                    : make_delay_policy(config_.delay_kind, n);
  network_ = std::make_unique<Network>(*engine_, config_.model, faulty_,
                                       std::move(policy), rng_.fork(0xdeadu),
                                       config_.enforcement);
  network_->set_batch(config_.batch);
  trace_ = std::make_unique<PulseTrace>(n, faulty_);

  build_clocks();
  build_runners(std::move(honest), std::move(byzantine));

  network_->set_deliver([this](NodeId to, const Message& m) {
    deliver_table_.at(to)(m);
  });
}

World::~World() = default;

void World::build_clocks() {
  const std::uint32_t n = config_.model.n;
  const double vt = config_.model.vartheta;
  const double s0 = config_.initial_offset;
  clocks_.clear();
  clocks_.reserve(n);

  switch (config_.clock_kind) {
    case ClockKind::kNominal:
      for (NodeId v = 0; v < n; ++v) {
        const double offset = n > 1 ? s0 * v / (n - 1) : 0.0;
        clocks_.push_back(HardwareClock::constant(1.0, offset));
      }
      break;
    case ClockKind::kSpread:
      for (NodeId v = 0; v < n; ++v) {
        const bool fast = (v % 2) == 1;
        clocks_.push_back(
            HardwareClock::constant(fast ? vt : 1.0, fast ? s0 : 0.0));
      }
      break;
    case ClockKind::kRandomWalk:
      for (NodeId v = 0; v < n; ++v) {
        util::Rng node_rng = rng_.fork(0xc10c000ULL + v);
        const double offset = node_rng.uniform(0.0, s0);
        clocks_.push_back(HardwareClock::random_walk(
            node_rng, vt, offset, config_.clock_segment,
            config_.horizon + config_.model.d));
      }
      break;
    case ClockKind::kCustom:
      CS_CHECK_MSG(config_.custom_clocks.size() == n,
                   "custom clocks must cover all nodes");
      clocks_ = config_.custom_clocks;
      break;
  }
  for (const auto& c : clocks_) c.check_valid(vt);
  for (const auto& c : clocks_) {
    CS_CHECK_MSG(c.offset() >= -1e-12 && c.offset() <= s0 + 1e-12,
                 "clock offset " << c.offset() << " outside [0, S0=" << s0
                                 << "]");
  }
}

void World::build_runners(HonestFactory honest, ByzantineFactory byzantine) {
  const std::uint32_t n = config_.model.n;
  deliver_table_.resize(n);
  start_table_.resize(n);

  for (NodeId v = 0; v < n; ++v) {
    RunnerCore core{v,          &config_.model, engine_.get(), network_.get(),
                    &clocks_[v], trace_.get(),  pki_.get()};
    if (faulty_[v]) {
      CS_CHECK_MSG(byzantine, "faulty node configured but no Byzantine factory");
      auto node = byzantine(v);
      CS_CHECK_MSG(node, "Byzantine factory returned null for node " << v);
      auto runner = std::make_unique<ByzantineRunner>(core, std::move(node));
      deliver_table_[v] = [r = runner.get()](const Message& m) { r->deliver(m); };
      start_table_[v] = [r = runner.get()] { r->start(); };
      byz_runners_.push_back(std::move(runner));
    } else {
      auto node = honest(v);
      CS_CHECK_MSG(node, "honest factory returned null for node " << v);
      auto runner = std::make_unique<HonestRunner>(core, std::move(node));
      deliver_table_[v] = [r = runner.get()](const Message& m) { r->deliver(m); };
      start_table_[v] = [r = runner.get()] { r->start(); };
      honest_runners_.push_back(std::move(runner));
    }
  }
}

void World::start() {
  if (started_) return;
  started_ = true;
  for (auto& start : start_table_) engine_->at(0.0, [&start] { start(); });
}

RunResult World::run() {
  start();
  engine_->run_until(config_.horizon);

  RunResult result{*trace_, 0, 0, 0, 0, 0, {}};
  result.messages = network_->stats().messages;
  result.events = engine_->events_processed();
  result.sign_ops = pki_->sign_count();
  result.verify_ops = pki_->verify_count();
  result.signatures_carried = network_->stats().signatures_carried;
  result.violations = network_->violations();
  return result;
}

}  // namespace crusader::sim
