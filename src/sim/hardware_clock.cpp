#include "sim/hardware_clock.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::sim {

HardwareClock HardwareClock::constant(double rate, double offset) {
  return HardwareClock({ClockSegment{0.0, offset, rate}});
}

HardwareClock HardwareClock::two_phase(double rate_a, double t_switch,
                                       double rate_b, double offset) {
  CS_CHECK(t_switch >= 0.0);
  if (t_switch == 0.0) return constant(rate_b, offset);
  std::vector<ClockSegment> segs;
  segs.push_back({0.0, offset, rate_a});
  segs.push_back({t_switch, offset + rate_a * t_switch, rate_b});
  return HardwareClock(std::move(segs));
}

HardwareClock HardwareClock::random_walk(util::Rng& rng, double vartheta,
                                         double offset, double segment_len,
                                         double horizon) {
  CS_CHECK(segment_len > 0.0);
  std::vector<ClockSegment> segs;
  double t = 0.0;
  double h = offset;
  while (t < horizon) {
    const double rate = rng.uniform(1.0, vartheta);
    segs.push_back({t, h, rate});
    h += rate * segment_len;
    t += segment_len;
  }
  segs.push_back({t, h, 1.0});  // quiescent tail
  return HardwareClock(std::move(segs));
}

HardwareClock::HardwareClock(std::vector<ClockSegment> segments)
    : segments_(std::move(segments)) {
  CS_CHECK_MSG(!segments_.empty(), "clock needs at least one segment");
  CS_CHECK_MSG(segments_.front().t0 == 0.0, "first segment must start at t=0");
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    CS_CHECK_MSG(segments_[i].rate > 0.0, "clock rates must be positive");
    if (i + 1 < segments_.size()) {
      const auto& cur = segments_[i];
      const auto& nxt = segments_[i + 1];
      CS_CHECK_MSG(nxt.t0 > cur.t0, "segments must be strictly increasing");
      // Continuity: the next segment must start where this one ends.
      const double end_local = cur.h0 + cur.rate * (nxt.t0 - cur.t0);
      CS_CHECK_MSG(std::abs(end_local - nxt.h0) < 1e-9,
                   "clock segments must be continuous");
    }
  }
}

std::size_t HardwareClock::segment_for_real(double t) const {
  // Find the last segment with t0 <= t. Segments are few; linear scan from
  // binary search keeps this exact and simple.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const ClockSegment& s) { return value < s.t0; });
  if (it == segments_.begin()) return 0;  // t below 0: clamp to first
  return static_cast<std::size_t>(std::distance(segments_.begin(), it)) - 1;
}

std::size_t HardwareClock::segment_for_local(double h) const {
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), h,
      [](double value, const ClockSegment& s) { return value < s.h0; });
  if (it == segments_.begin()) return 0;
  return static_cast<std::size_t>(std::distance(segments_.begin(), it)) - 1;
}

double HardwareClock::local(double t) const {
  CS_CHECK_MSG(t >= 0.0, "hardware clocks are defined for t >= 0");
  const auto& s = segments_[segment_for_real(t)];
  return s.h0 + s.rate * (t - s.t0);
}

double HardwareClock::real(double h) const {
  CS_CHECK_MSG(h >= segments_.front().h0 - 1e-12,
               "local time " << h << " precedes H(0)=" << segments_.front().h0);
  const auto& s = segments_[segment_for_local(h)];
  return s.t0 + (h - s.h0) / s.rate;
}

double HardwareClock::rate_at(double t) const {
  return segments_[segment_for_real(t)].rate;
}

double HardwareClock::min_rate() const {
  double m = segments_.front().rate;
  for (const auto& s : segments_) m = std::min(m, s.rate);
  return m;
}

double HardwareClock::max_rate() const {
  double m = segments_.front().rate;
  for (const auto& s : segments_) m = std::max(m, s.rate);
  return m;
}

void HardwareClock::check_valid(double vartheta) const {
  for (const auto& s : segments_) {
    CS_CHECK_MSG(s.rate >= 1.0 - 1e-12 && s.rate <= vartheta + 1e-12,
                 "clock rate " << s.rate << " outside [1, " << vartheta << "]");
  }
}

}  // namespace crusader::sim
