#pragma once
// Hardware clocks H_v : real time -> local time (Section 2 of the paper).
//
// Piecewise-linear, strictly increasing (all rates >= 1 > 0), hence exactly
// invertible. The adversary chooses the trajectory subject to rates in
// [1, vartheta]; builders below cover the assignments used by tests, benches
// and the lower-bound construction.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace crusader::sim {

/// One linear segment: for t >= t0 (until the next segment's t0),
/// H(t) = h0 + rate * (t - t0).
struct ClockSegment {
  double t0 = 0.0;
  double h0 = 0.0;
  double rate = 1.0;
};

class HardwareClock {
 public:
  /// Identity-rate clock starting at local offset `offset`.
  [[nodiscard]] static HardwareClock constant(double rate, double offset);

  /// Rate `rate_a` until real time `t_switch`, then `rate_b`. The two-phase
  /// ramp used by the Theorem 5 construction is two_phase(ϑ, t*, 1, 0).
  [[nodiscard]] static HardwareClock two_phase(double rate_a, double t_switch,
                                               double rate_b, double offset);

  /// Random-walk clock: rate re-drawn uniformly from [1, vartheta] every
  /// `segment_len` real-time units, up to `horizon` (constant afterwards).
  [[nodiscard]] static HardwareClock random_walk(util::Rng& rng, double vartheta,
                                                 double offset, double segment_len,
                                                 double horizon);

  /// Construct from explicit segments (must be contiguous and increasing).
  explicit HardwareClock(std::vector<ClockSegment> segments);

  /// H_v(t).
  [[nodiscard]] double local(double t) const;
  /// H_v^{-1}(h): the unique real time at which the local clock reads h.
  /// Requires h >= H_v(0).
  [[nodiscard]] double real(double h) const;

  [[nodiscard]] double rate_at(double t) const;
  [[nodiscard]] double min_rate() const;
  [[nodiscard]] double max_rate() const;
  [[nodiscard]] double offset() const { return segments_.front().h0; }

  /// Validates the model constraints: rates in [1, vartheta].
  void check_valid(double vartheta) const;

  [[nodiscard]] const std::vector<ClockSegment>& segments() const {
    return segments_;
  }

 private:
  // Index of the segment containing real time t (last segment extends to
  // +infinity).
  [[nodiscard]] std::size_t segment_for_real(double t) const;
  [[nodiscard]] std::size_t segment_for_local(double h) const;

  std::vector<ClockSegment> segments_;
};

}  // namespace crusader::sim
