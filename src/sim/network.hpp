#pragma once
// Fully connected message-passing network under adversarial delay control.
//
// The adversary chooses every delay within the model bounds: [d-u, d] when
// both endpoints are honest, [d-u_tilde, d] when either endpoint is faulty
// (Section 2 of the paper; u_tilde in [u, d]). The network also enforces the
// Dolev–Yao restriction: a faulty node may only send an honest node's
// signature after some faulty node has received it.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crypto/signature.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"
#include "sim/message_arena.hpp"
#include "sim/model.hpp"
#include "util/rng.hpp"

namespace crusader::sim {

/// Chooses a delay in [lo, hi] for each message. Implementations are the
/// adversary's delay strategy.
class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;
  [[nodiscard]] virtual double delay(NodeId from, NodeId to, double send_time,
                                     const Message& m, double lo, double hi,
                                     util::Rng& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Every message takes the maximum delay d.
class MaxDelayPolicy final : public DelayPolicy {
 public:
  double delay(NodeId, NodeId, double, const Message&, double, double hi,
               util::Rng&) override {
    return hi;
  }
  [[nodiscard]] std::string name() const override { return "max"; }
};

/// Every message takes the minimum allowed delay.
class MinDelayPolicy final : public DelayPolicy {
 public:
  double delay(NodeId, NodeId, double, const Message&, double lo, double,
               util::Rng&) override {
    return lo;
  }
  [[nodiscard]] std::string name() const override { return "min"; }
};

/// Uniformly random delay in [lo, hi] (jitter).
class RandomDelayPolicy final : public DelayPolicy {
 public:
  double delay(NodeId, NodeId, double, const Message&, double lo, double hi,
               util::Rng& rng) override {
    return rng.uniform(lo, hi);
  }
  [[nodiscard]] std::string name() const override { return "random"; }
};

/// Coordinated split: receivers with id < n/2 get minimum delay, the rest get
/// maximum — the classic worst case for averaging-based synchronizers,
/// because it systematically biases offset estimates apart.
class SplitDelayPolicy final : public DelayPolicy {
 public:
  explicit SplitDelayPolicy(std::uint32_t n) : half_(n / 2) {}
  double delay(NodeId, NodeId to, double, const Message&, double lo, double hi,
               util::Rng&) override {
    return to < half_ ? lo : hi;
  }
  [[nodiscard]] std::string name() const override { return "split"; }

 private:
  std::uint32_t half_;
};

/// Every delay at lo + fraction·(hi − lo): a dial between the min and max
/// adversaries (CLI spelling "custom:fixed:<fraction>").
class FixedFractionDelayPolicy final : public DelayPolicy {
 public:
  explicit FixedFractionDelayPolicy(double fraction) : fraction_(fraction) {}
  double delay(NodeId, NodeId, double, const Message&, double lo, double hi,
               util::Rng&) override {
    return lo + fraction_ * (hi - lo);
  }
  [[nodiscard]] std::string name() const override { return "custom:fixed"; }

 private:
  double fraction_;
};

/// Alternates min/max delay per message sent — maximal per-message jitter
/// without randomness (CLI spelling "custom:alternate").
class AlternatingDelayPolicy final : public DelayPolicy {
 public:
  double delay(NodeId, NodeId, double, const Message&, double lo, double hi,
               util::Rng&) override {
    flip_ = !flip_;
    return flip_ ? lo : hi;
  }
  [[nodiscard]] std::string name() const override { return "custom:alternate"; }

 private:
  bool flip_ = false;
};

/// One victim receiver gets every message at maximum delay while everyone
/// else gets minimum — the SecureTime-style targeted-delay adversary that
/// isolates a single node's view (CLI spelling "custom:target:<node>").
class TargetedDelayPolicy final : public DelayPolicy {
 public:
  explicit TargetedDelayPolicy(NodeId target) : target_(target) {}
  double delay(NodeId, NodeId to, double, const Message&, double lo, double hi,
               util::Rng&) override {
    return to == target_ ? hi : lo;
  }
  [[nodiscard]] std::string name() const override { return "custom:target"; }

 private:
  NodeId target_;
};

enum class DelayKind { kMax, kMin, kRandom, kSplit };

[[nodiscard]] const char* to_string(DelayKind kind);

[[nodiscard]] std::unique_ptr<DelayPolicy> make_delay_policy(DelayKind kind,
                                                             std::uint32_t n);

/// How model violations by adversary code are handled.
enum class Enforcement {
  kThrow,   // throw ModelViolation (tests assert legality of adversaries)
  kRecord,  // record in violations() and deliver anyway (failure injection)
};

struct NetworkStats {
  std::uint64_t messages = 0;
  std::array<std::uint64_t, 5> by_kind{};  // indexed by MsgKind
  std::uint64_t signatures_carried = 0;
};

class Network {
 public:
  using DeliverFn = std::function<void(NodeId to, const Message&)>;

  Network(Engine& engine, ModelParams model, std::vector<bool> faulty,
          std::unique_ptr<DelayPolicy> policy, util::Rng rng,
          Enforcement enforcement = Enforcement::kThrow);

  /// World installs the delivery hook (runner dispatch).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Standard send: the delay policy picks the delay within model bounds.
  void send(NodeId from, NodeId to, Message m);

  /// Send `m` to every node except `from`. With batching enabled (the
  /// default) an honest sender's broadcast shares one arena payload and
  /// schedules one aggregate event per maximal run of consecutive receivers
  /// with equal delay — O(runs) events instead of O(n) — while remaining
  /// delivery-order- and stats-identical to the per-receiver loop. Faulty
  /// senders always take the per-receiver path (their Dolev–Yao knowledge
  /// check records per receiver).
  void broadcast(NodeId from, const Message& m);

  /// Byzantine send with an explicit delay; must lie within the faulty-link
  /// bounds [d - u_tilde, d].
  void send_with_delay(NodeId from, NodeId to, Message m, double delay);

  /// Toggle the broadcast fast path (on by default). Off forces the
  /// per-receiver reference path; the differential tests diff the two.
  void set_batch(bool on) noexcept { batch_ = on; }
  [[nodiscard]] bool batch() const noexcept { return batch_; }

  /// The payload arena (diagnostics for allocator tests).
  [[nodiscard]] const MessageArena& arena() const noexcept { return arena_; }

  [[nodiscard]] bool is_faulty(NodeId v) const { return faulty_.at(v); }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] crypto::KnowledgeTracker& knowledge() noexcept {
    return knowledge_;
  }

  /// Lower delay bound for the (from, to) link per the model.
  [[nodiscard]] double min_delay(NodeId from, NodeId to) const;

 private:
  void check_adversary_knowledge(NodeId from, const Message& m);
  void enqueue(NodeId from, NodeId to, Message m, double delay);
  /// Stats/knowledge/delivery for one receiver — shared by the per-message
  /// closure and the aggregate broadcast event.
  void deliver_one(NodeId to, const Message& m);
  void count_message(const Message& m);
  double choose_delay(NodeId from, NodeId to, const Message& m);
  void flag(const std::string& what);

  Engine& engine_;
  ModelParams model_;
  std::vector<bool> faulty_;
  std::unique_ptr<DelayPolicy> policy_;
  util::Rng rng_;
  Enforcement enforcement_;
  DeliverFn deliver_;
  crypto::KnowledgeTracker knowledge_;
  MessageArena arena_;
  NetworkStats stats_;
  std::vector<std::string> violations_;
  bool batch_ = true;
};

}  // namespace crusader::sim
