#pragma once
// Trace export: CSV serialization of pulse traces for external analysis and
// plotting (one row per pulse, plus a per-round quality summary).

#include <iosfwd>

#include "sim/trace.hpp"

namespace crusader::sim {

/// Columns: node, role (honest|faulty), round (1-based), real_time,
/// local_time.
void write_pulses_csv(const PulseTrace& trace, std::ostream& os);

/// Columns: round (1-based), skew, min_pulse, max_pulse — honest nodes only,
/// complete rounds only.
void write_rounds_csv(const PulseTrace& trace, std::ostream& os);

}  // namespace crusader::sim
