#!/usr/bin/env bash
# CI smoke for the KLLO gradient-bound conformance gate (registered as the
# ctest `smoke_sweep_kllo`, label `integration`): churned hypercube cells
# across all three reconnect policies, every live edge graded against the
# KLLO envelope parameterized by its edge age.
#
# What it proves:
#   * the gradient protocol stays inside the envelope on every churned cell
#     (--gate-kllo=1.0 exits 0, zero per-edge violations),
#   * jump-to-max blows through the same gate on the same grid (nonzero
#     exit) — the negative control that keeps the gate honest,
#   * edge_age_min / kllo_ratio export for every dynamic row and the grid
#     replays byte-identically (schedules and ages derive from the seed).
#
# Usage: smoke_sweep_kllo.sh <path-to-sweep_cli> <workdir>
set -euo pipefail

CLI=$1
DIR=$2

rm -rf "$DIR"
mkdir -p "$DIR"

# rounds=24 gives drift time to overwhelm jump-to-max (its skew grows
# ~0.02/round unbounded) while gradient holds ~0.1 against an envelope
# base of 0.35 — a wide margin on both sides of the gate.
GRID=(--world=relay --topology=hypercube --n=16 --faults=0 --crypto=abstract
      --churn-rate=0.05 --join-batch=0
      --reconnect=random,preferential,ring-repair
      --rounds=24 --warmup=4 --threads=2 --gate-kllo=1.0 --format=csv)

echo "== gradient: churned cells stay inside the KLLO envelope =="
"$CLI" --protocols=gradient "${GRID[@]}" --out="$DIR/gradient.csv"

echo "== determinism: the same grid replays byte-identically =="
"$CLI" --protocols=gradient "${GRID[@]}" --out="$DIR/gradient_again.csv"
diff "$DIR/gradient.csv" "$DIR/gradient_again.csv"

echo "== every dynamic row exports edge_age_min and a conforming kllo_ratio =="
awk -F, '
  NR==1 { for (i=1; i<=NF; i++) col[$i]=i; next }
  {
    if ($col["kllo_ratio"] == "") { print "missing kllo_ratio: " $0; exit 1 }
    if ($col["edge_age_min"] == "") { print "missing edge_age_min: " $0; exit 1 }
    if ($col["kllo_ratio"] + 0 > 1.0) { print "kllo_ratio above gate: " $0; exit 1 }
    if ($col["kllo_violations"] + 0 != 0) { print "kllo violations: " $0; exit 1 }
    rows++
  }
  END {
    # 3 reconnect policies x 2 delay kinds (random, split).
    if (rows != 6) { print "expected 6 churned rows, got " rows; exit 1 }
  }
' "$DIR/gradient.csv"

echo "== jump-to-max: the same gate trips (negative control) =="
if "$CLI" --protocols=jump-max "${GRID[@]}" --out="$DIR/jump_max.csv"; then
  echo "smoke_sweep_kllo: jump-max unexpectedly passed --gate-kllo"
  exit 1
fi

awk -F, '
  NR==1 { for (i=1; i<=NF; i++) col[$i]=i; next }
  $col["kllo_ratio"] + 0 > 1.0 { tripped++ }
  END {
    if (tripped < 1) { print "no jump-max row above the envelope"; exit 1 }
  }
' "$DIR/jump_max.csv"

echo "smoke_sweep_kllo: OK"
