#!/usr/bin/env bash
# CI smoke for the adaptive traffic-observing relay adversaries (registered
# as the ctest `smoke_sweep_adaptive`, label `integration`): greedy-skew and
# budgeted-search cells, static and churned, on a hypercube at the family's
# maximum survivable fault load.
#
# What it proves:
#   * adaptive cells pass --gate=1.0 — static rows stay inside the
#     Theorem-17 bound at (d_eff, u_eff), churned rows stay live,
#   * attack_iters / attack_best_seed export on every adaptive row (the
#     budget on search rows, 1 on greedy rows) and stay EMPTY on oblivious
#     rows — a consumer can never mistake an oblivious row for a
#     zero-iteration attack,
#   * the grid replays byte-identically (candidate seeds derive from the
#     scenario seed, never wall-clock, so campaigns resume bit-exactly),
#   * --search-budget=0 is rejected loudly instead of silently collapsing
#     the search to nothing.
#
# Usage: smoke_sweep_adaptive.sh <path-to-sweep_cli> <workdir>
set -euo pipefail

CLI=$1
DIR=$2

rm -rf "$DIR"
mkdir -p "$DIR"

GRID=(--world=relay --topology=hypercube --protocols=cps --n=16 --faults=max
      --relay-fault=greedy-skew,search --search-budget=4
      --churn-rate=0,0.1 --u=0.01 --vartheta=1.001
      --rounds=8 --warmup=2 --threads=2 --gate=1.0 --format=csv)

echo "== adaptive cells pass the ratio/liveness gate =="
"$CLI" "${GRID[@]}" --out="$DIR/adaptive.csv"

echo "== determinism: the same grid replays byte-identically =="
"$CLI" "${GRID[@]}" --out="$DIR/adaptive_again.csv"
diff "$DIR/adaptive.csv" "$DIR/adaptive_again.csv"

echo "== attack columns export on every adaptive row =="
awk -F, '
  NR==1 { for (i=1; i<=NF; i++) col[$i]=i; next }
  {
    fault = $col["relay_fault"]
    iters = $col["attack_iters"]
    if (fault == "greedy-skew" && iters + 0 != 1) {
      print "greedy row without its single iteration: " $0; exit 1
    }
    if (fault == "search" && iters + 0 != 4) {
      print "search row not at the configured budget: " $0; exit 1
    }
    if ($col["attack_best_seed"] == "") {
      print "adaptive row missing attack_best_seed: " $0; exit 1
    }
    if ($col["live"] != "1") { print "adaptive row not live: " $0; exit 1 }
    if ($col["churn_rate"] + 0 == 0 && $col["skew_ratio"] + 0 > 1.0) {
      print "static adaptive row above the bound: " $0; exit 1
    }
    rows++
  }
  END {
    # (greedy + search) x (static + churned) x 2 default delay kinds.
    if (rows != 8) { print "expected 8 adaptive rows, got " rows; exit 1 }
  }
' "$DIR/adaptive.csv"

echo "== oblivious rows keep the attack columns empty =="
"$CLI" --world=relay --topology=hypercube --protocols=cps --n=16 --faults=max \
       --relay-fault=max-delay --u=0.01 --vartheta=1.001 \
       --rounds=8 --warmup=2 --threads=2 --gate=1.0 --format=csv \
       --out="$DIR/oblivious.csv"
awk -F, '
  NR==1 { for (i=1; i<=NF; i++) col[$i]=i; next }
  $col["attack_iters"] != "" || $col["attack_best_seed"] != "" {
    print "oblivious row with attack columns: " $0; exit 1
  }
' "$DIR/oblivious.csv"

echo "== --search-budget=0 is rejected =="
if "$CLI" "${GRID[@]}" --search-budget=0 --out="$DIR/reject.csv" 2>/dev/null
then
  echo "smoke_sweep_adaptive: --search-budget=0 unexpectedly accepted"
  exit 1
fi

echo "smoke_sweep_adaptive: OK"
