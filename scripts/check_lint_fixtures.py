#!/usr/bin/env python3
"""Golden-fixture suite for scripts/lint_determinism.py.

Each tests/lint_fixtures/*.cpp declares its expected findings in a header
comment:

    // expect: <rule> [<rule> ...]     (one token per expected finding)
    // expect: clean                   (the linter must report nothing)

The harness runs the linter on every fixture in isolation and fails when
the reported rule multiset differs from the declaration — so a rule that
stops firing (regression) and a rule that starts over-firing (false
positive) both break this suite. It finishes by linting the real tree,
which must be clean: the fixtures prove the rules can fire, the tree run
proves they currently don't.

Usage: check_lint_fixtures.py [--repo ROOT]
Exit status: 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"^//\s*expect:\s*(.+?)\s*$", re.MULTILINE)
FINDING_RE = re.compile(r"^(.+?):(\d+): \[([a-z\-]+)\] ", re.MULTILINE)


def run_linter(repo, args):
    return subprocess.run(
        [sys.executable, os.path.join(repo, "scripts", "lint_determinism.py"),
         "--root", repo, *args],
        capture_output=True, text=True)


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument("--repo", default=None, help="repo root")
    args = parser.parse_args(argv)
    repo = os.path.abspath(args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    fixture_dir = os.path.join(repo, "tests", "lint_fixtures")

    fixtures = sorted(f for f in os.listdir(fixture_dir) if f.endswith(".cpp"))
    if not fixtures:
        print("error: no fixtures found in", fixture_dir, file=sys.stderr)
        return 1

    failures = []
    for name in fixtures:
        path = os.path.join(fixture_dir, name)
        text = open(path, encoding="utf-8").read()
        m = EXPECT_RE.search(text)
        if not m:
            failures.append(f"{name}: missing '// expect:' declaration")
            continue
        tokens = m.group(1).split()
        expected = sorted([] if tokens == ["clean"] else tokens)

        proc = run_linter(repo, [path])
        got = sorted(rule for _f, _l, rule in FINDING_RE.findall(proc.stdout))
        want_exit = 0 if not expected else 1
        if proc.returncode != want_exit:
            failures.append(
                f"{name}: exit {proc.returncode}, expected {want_exit}\n"
                f"{proc.stdout}{proc.stderr}")
        elif got != expected:
            failures.append(
                f"{name}: findings {got}, expected {expected}\n{proc.stdout}")
        else:
            print(f"ok {name}: {expected if expected else 'clean'}")

    proc = run_linter(repo, [])
    if proc.returncode != 0:
        failures.append(
            f"full-tree lint must be clean but found:\n{proc.stdout}")
    else:
        print("ok full tree: clean")

    for f in failures:
        print("FAIL", f, file=sys.stderr)
    print(f"check_lint_fixtures: {len(fixtures)} fixtures, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
