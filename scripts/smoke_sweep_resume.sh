#!/usr/bin/env bash
# CI smoke for resumable sweep campaigns (registered as the ctest
# `smoke_sweep_resume`, label `integration`):
#   1. run a gated sweep straight to a clean CSV (with --history),
#   2. run the same grid as a campaign, truncate its CSV mid-file,
#   3. resume with the identical command and diff against the clean CSV,
#   4. check the trend gate passes against its own baseline and fails
#      against an injected too-good one.
# The history file it leaves behind (history.txt) is uploaded as a CI
# artifact so skew_ratio drift is inspectable across runs.
#
# Usage: smoke_sweep_resume.sh <path-to-sweep_cli> <workdir>
set -euo pipefail

CLI=$1
DIR=$2

rm -rf "$DIR"
mkdir -p "$DIR"

GRID=(--world=complete,relay --protocols=cps,st --topology=ring --n=6
      --faults=0,max --u=0.02 --vartheta=1.002 --rounds=6 --warmup=2
      --threads=2 --gate=1.0 --format=csv)

echo "== clean run =="
"$CLI" "${GRID[@]}" --out="$DIR/clean.csv" --history="$DIR/history.txt"

echo "== campaign run =="
CAMPAIGN=("${GRID[@]}" --out="$DIR/camp.csv" --resume="$DIR/camp.manifest"
          --checkpoint-every=2 --history="$DIR/history.txt" --gate-trend=5)
"$CLI" "${CAMPAIGN[@]}"

echo "== truncate mid-file and resume =="
size=$(wc -c < "$DIR/camp.csv")
head -c $((size / 2)) "$DIR/camp.csv" > "$DIR/camp.csv.tmp"
mv "$DIR/camp.csv.tmp" "$DIR/camp.csv"
"$CLI" "${CAMPAIGN[@]}"

echo "== diff resumed campaign against clean run =="
diff "$DIR/clean.csv" "$DIR/camp.csv"

echo "== trend gate must fail against an injected too-good baseline =="
# Trend baselines are keyed by the grid digest the CLI records; reuse the
# one the real runs wrote so the injected line is comparable.
grid=$(grep -oE 'grid=[0-9]+' "$DIR/history.txt" | tail -n 1)
injected="seed=1 $grid cells=1 errors=0 timed_out=0 complete:max=0.000001,mean=0.000001,count=1"
echo "$injected" >> "$DIR/history.txt"
if "$CLI" "${GRID[@]}" --out=/dev/null --history="$DIR/history.txt" --gate-trend=5
then
  echo "ERROR: trend gate did not trip on an injected regression" >&2
  exit 1
fi

# The regressed run must NOT have been appended (the baseline is preserved
# for the next run to be judged against).
if [ "$(tail -n 1 "$DIR/history.txt")" != "$injected" ]
then
  echo "ERROR: regressed run was appended to the history" >&2
  exit 1
fi

# Drop the injected line so the artifact carries only real measurements.
sed -i '$d' "$DIR/history.txt"

echo "smoke_sweep_resume: OK"
