#!/usr/bin/env bash
# Concurrency smoke for the TSan lane (registered as the ctest
# `smoke_sweep_tsan`, labels `integration;concurrency`):
#   1. run a mixed-world sweep on 4 worker threads — this drives the
#      streamed reorder window, the EffectiveCache memo, the campaign sink,
#      and the history appender all at once,
#   2. kill a campaign run mid-flight (SIGKILL, so no destructor cleanup),
#   3. resume it and diff byte-for-byte against a 1-thread reference run.
# The script itself only exercises the code paths; the race detection comes
# from building sweep_cli under -fsanitize=thread (tsan preset / CRUSADER_TSAN).
# It is also correct — just slower and less interesting — on a plain build.
#
# Usage: smoke_sweep_tsan.sh <path-to-sweep_cli> <workdir>
set -euo pipefail

CLI=$1
DIR=$2

rm -rf "$DIR"
mkdir -p "$DIR"

GRID=(--world=complete,relay --protocols=cps,st --topology=ring --n=6
      --faults=0,max --u=0.02 --vartheta=1.002 --rounds=6 --warmup=2
      --gate=1.0 --format=csv --history="$DIR/history.txt")

echo "== 1-thread reference =="
"$CLI" "${GRID[@]}" --threads=1 --out="$DIR/ref.csv"

echo "== 4-thread sweep (races surface here under TSan) =="
"$CLI" "${GRID[@]}" --threads=4 --out="$DIR/par.csv"

echo "== 4-thread output must be byte-identical to the reference =="
diff "$DIR/ref.csv" "$DIR/par.csv"

echo "== campaign: kill mid-flight, then resume on 4 threads =="
CAMPAIGN=("${GRID[@]}" --threads=4 --out="$DIR/camp.csv"
          --resume="$DIR/camp.manifest" --checkpoint-every=1)
# Give the first attempt a tight head start and kill it without warning.
# SIGKILL means no flush/unwind runs: resume must cope with whatever the
# checkpoint discipline left on disk. If the run finishes before the kill
# lands (fast machines), that is fine — resume is then a no-op replay.
"$CLI" "${CAMPAIGN[@]}" & pid=$!
sleep 0.4
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

"$CLI" "${CAMPAIGN[@]}"

echo "== resumed campaign must match the reference byte-for-byte =="
diff "$DIR/ref.csv" "$DIR/camp.csv"

echo "smoke_sweep_tsan: OK"
