#!/usr/bin/env bash
# CI smoke for the dynamic-network world (registered as the ctest
# `smoke_sweep_dynamic`, label `integration`): a churned relay sweep —
# rewire-only and membership churn across all three reconnect policies —
# gated on liveness and the gradient (local-skew) ratio.
#
# What it proves:
#   * churned cells complete every round (violates_gate trips on a stalled
#     dynamic cell, and --gate-local trips on a gradient blow-up),
#   * the static churn_rate=0 cell in the same grid exports byte-stable
#     rows: running the grid twice yields identical CSVs (schedules replay
#     from (seed, policy)),
#   * local_skew is exported for every completed dynamic row and never
#     exceeds the global max_skew.
#
# Usage: smoke_sweep_dynamic.sh <path-to-sweep_cli> <workdir>
set -euo pipefail

CLI=$1
DIR=$2

rm -rf "$DIR"
mkdir -p "$DIR"

# The local gate is a blow-up guard, not the static bound: a node that
# rejoins after an epoch down has drifted while unsynchronized, so a
# transient local ratio above 1 is physical; a stalled or diverging cell
# shoots far past 3.
GRID=(--world=relay --protocols=probe --topology=hypercube --n=32
      --faults=0 --crypto=abstract --churn-rate=0,0.05 --join-batch=0,2
      --reconnect=random,preferential,ring-repair
      --rounds=8 --warmup=2 --threads=2 --gate-local=3.0 --format=csv)

echo "== churned sweep (gated on local_skew_ratio) =="
"$CLI" "${GRID[@]}" --out="$DIR/dynamic.csv"

echo "== determinism: the same grid replays byte-identically =="
"$CLI" "${GRID[@]}" --out="$DIR/dynamic_again.csv"
diff "$DIR/dynamic.csv" "$DIR/dynamic_again.csv"

echo "== every completed dynamic row exports local_skew <= max_skew =="
awk -F, '
  NR==1 { for (i=1; i<=NF; i++) col[$i]=i; next }
  $col["churn_rate"] == 0 && $col["join_batch"] == 0 { next }
  {
    if ($col["live"] != "1") { print "dead dynamic row: " $0; exit 1 }
    if ($col["local_skew"] == "") { print "missing local_skew: " $0; exit 1 }
    if ($col["local_skew"] + 0 > $col["max_skew"] + 1e-12) {
      print "local_skew exceeds max_skew: " $0; exit 1
    }
    dynamic++
  }
  END {
    if (dynamic < 2) { print "too few dynamic rows: " dynamic; exit 1 }
  }
' "$DIR/dynamic.csv"

echo "smoke_sweep_dynamic: OK"
