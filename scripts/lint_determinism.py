#!/usr/bin/env python3
"""Determinism linter: static repo invariants behind the byte-identity claims.

Every bound-conformance result this repo exports rests on sweeps being
byte-identical across thread counts, the fast-path toggle, and campaign
resume. The differential tests check that property dynamically; this linter
checks the source patterns that break it statically, before an unlucky
interleaving has to land in CI:

  unordered-iter   Iteration over std::unordered_map/std::unordered_set
                   (range-for or .begin()/.end() walks). Hash iteration
                   order is implementation- and salt-dependent; anything it
                   feeds (digests, CSV rows, history lines, key() chains)
                   stops being byte-stable. Membership lookups are fine.
  banned-random    std::rand/srand, std::random_device, mt19937 &c. in src/.
                   All randomness must flow from util::Rng seeded by spec
                   digests, or results stop being a pure function of
                   (base_seed, spec).
  banned-time      Wall-clock reads (system_clock, steady_clock, time(),
                   clock(), gettimeofday, localtime, gmtime) in src/.
                   Scenario content must never depend on when it ran. The
                   WallBudget aborter is the one sanctioned consumer
                   (lint:allow'd — it only decides WHEN to abort; aborted
                   rows discard all measurements and retry on resume).
  float-format     Float->string through stream precision state
                   (std::fixed / std::scientific / std::hexfloat /
                   setprecision) or printf %e/%f/%g conversions. Exported
                   floats must go through util::fmt_double (shortest
                   round-trip, locale-independent) so identical bits always
                   produce identical bytes.
  pointer-key      std::map/std::set keyed on a raw pointer type. Pointer
                   order is allocation order; iterating such a container
                   into any output reintroduces address-space nondeterminism
                   (ASLR) that no seed controls.

Escape hatch: a comment containing `lint:allow(<rule>[, <rule>...])`
suppresses those rules on its own line and the immediately following line.
Every allow is expected to carry a justification comment nearby.

Usage:
  lint_determinism.py [--root DIR] [PATH...]
      With no PATHs, lints <root>/src recursively (.hpp/.cpp). Explicit
      PATHs (files or directories) are linted instead, verbatim.
  lint_determinism.py --list-rules

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

RULES = {
    "unordered-iter":
        "iteration over an unordered container (hash order is not stable)",
    "banned-random":
        "nondeterministic randomness source (use util::Rng seeded from spec digests)",
    "banned-time":
        "wall-clock read (scenario content must not depend on when it ran)",
    "float-format":
        "float formatted outside util::fmt_double (breaks byte-identity)",
    "pointer-key":
        "ordered container keyed on a pointer (iteration order = allocation order)",
}

ALLOW_RE = re.compile(r"lint:allow\(\s*([a-z\-,\s]+?)\s*\)")

BANNED_RANDOM_RE = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bmt19937(?:_64)?\b"
    r"|\bdefault_random_engine\b|\bknuth_b\b|\branlux(?:24|48)\b")

BANNED_TIME_RE = re.compile(
    r"\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b"
    r"|\bgettimeofday\b|\blocaltime\b|\bgmtime\b|\bmktime\b"
    r"|(?<![A-Za-z0-9_])std::time\s*\("
    r"|(?<![A-Za-z0-9_.:>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|(?<![A-Za-z0-9_.:>])clock\s*\(\s*\)")

FLOAT_MANIP_RE = re.compile(
    r"\bstd::fixed\b|\bstd::scientific\b|\bstd::hexfloat\b"
    r"|\bstd::setprecision\b|(?<![A-Za-z0-9_:])setprecision\s*\(")

PRINTF_CALL_RE = re.compile(r"\b(?:printf|fprintf|sprintf|snprintf|vsnprintf)\s*\(")
PRINTF_FLOAT_RE = re.compile(r"%[-+ #0-9.*hlL]*[efgaEFGA]")

POINTER_KEY_RE = re.compile(
    r"\bstd::map\s*<[^,<>]*\*[^,<>]*,|\bstd::set\s*<[^,<>]*\*[^<>]*>")

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def strip_comments_and_strings(text, keep_strings):
    """Returns `text` with comments (and, unless keep_strings, string/char
    literals) replaced by spaces. Newlines are preserved, so offsets map to
    the same line numbers as the original."""
    out = []
    i, n = 0, len(text)
    CODE, LINE_C, BLOCK_C, STR, CHR, RAW = range(6)
    state = CODE
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == CODE:
            if c == "/" and nxt == "/":
                state = LINE_C
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_C
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # R"delim( ... )delim"
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1:i + 20]) \
                    if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = RAW
                    out.append('"')
                    i += 1
                    continue
                state = STR
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHR
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE_C:
            if c == "\n":
                state = CODE
                out.append(c)
            elif c == "\\" and nxt == "\n":
                out.append(" \n")
                i += 1
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_C:
            if c == "*" and nxt == "/":
                state = CODE
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif state == STR:
            if c == "\\" and nxt:
                out.append((c + nxt) if keep_strings else "  ")
                i += 2
                continue
            if c == '"':
                state = CODE
                out.append('"')
            else:
                out.append(c if (keep_strings or c == "\n") else " ")
            i += 1
        elif state == CHR:
            if c == "\\" and nxt:
                out.append((c + nxt) if keep_strings else "  ")
                i += 2
                continue
            if c == "'":
                state = CODE
                out.append("'")
            else:
                out.append(c if keep_strings else " ")
            i += 1
        else:  # RAW
            if text.startswith(raw_delim, i):
                state = CODE
                out.append(raw_delim if keep_strings else '"')
                if not keep_strings:
                    out.append(" " * (len(raw_delim) - 1))
                i += len(raw_delim)
                continue
            out.append(c if (keep_strings or c == "\n") else " ")
            i += 1
    return "".join(out)


def collect_allows(lines):
    """allow[line_no] -> set of rule ids suppressed on that line and the
    next (1-based line numbers)."""
    allows = {}
    for no, line in enumerate(lines, 1):
        for m in ALLOW_RE.finditer(line):
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            unknown = rules - set(RULES)
            if unknown:
                raise SystemExit(
                    f"error: line {no}: lint:allow names unknown rule(s) "
                    f"{sorted(unknown)}; known: {sorted(RULES)}")
            allows.setdefault(no, set()).update(rules)
            allows.setdefault(no + 1, set()).update(rules)
    return allows


def unordered_container_names(code_text):
    """Names declared with an unordered_map/unordered_set type in this
    translation unit (members and locals alike — a per-file heuristic)."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code_text):
        # Walk the template argument list to its matching '>'.
        depth, i = 1, m.end()
        while i < len(code_text) and depth > 0:
            if code_text[i] == "<":
                depth += 1
            elif code_text[i] == ">":
                depth -= 1
            i += 1
        ident = IDENT_RE.match(code_text, pos=_skip_ws(code_text, i))
        if ident:
            names.add(ident.group(0))
    return names


def _skip_ws(text, i):
    while i < len(text) and text[i] in " \t\n&*":
        i += 1
    return i


def lint_file(path, display_path):
    try:
        text = open(path, encoding="utf-8", errors="replace").read()
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")

    raw_lines = text.split("\n")
    allows = collect_allows(raw_lines)
    code = strip_comments_and_strings(text, keep_strings=False)
    code_lines = code.split("\n")
    # Comments stripped, string literals kept: printf format strings live here.
    text_ns = strip_comments_and_strings(text, keep_strings=True)
    text_ns_lines = text_ns.split("\n")

    findings = []

    def report(no, rule, detail):
        if rule in allows.get(no, set()):
            return
        findings.append((display_path, no, rule, detail))

    names = unordered_container_names(code)
    if names:
        name_alt = "|".join(sorted(re.escape(n) for n in names))
        # .begin() only, not .end(): every iteration textually needs a begin
        # (range-for included, matched separately), while a bare .end() is
        # the idiomatic membership check (find() != end()) — which is fine.
        iter_re = re.compile(
            r"for\s*\([^;()]*:\s*(?:\w+(?:\.|->))*(" + name_alt + r")\b"
            r"|\b(" + name_alt + r")\s*\.\s*(?:c|cr|r)?begin\s*\(")
        for no, line in enumerate(code_lines, 1):
            for m in iter_re.finditer(line):
                name = m.group(1) or m.group(2)
                report(no, "unordered-iter",
                       f"iteration over unordered container '{name}'")

    for no, line in enumerate(code_lines, 1):
        if BANNED_RANDOM_RE.search(line):
            report(no, "banned-random", "nondeterministic randomness source")
        if BANNED_TIME_RE.search(line):
            report(no, "banned-time", "wall-clock read")
        if FLOAT_MANIP_RE.search(line):
            report(no, "float-format",
                   "stream precision state; use util::fmt_double")
        if POINTER_KEY_RE.search(line):
            report(no, "pointer-key", "ordered container keyed on a pointer")

    for no, line in enumerate(text_ns_lines, 1):
        if PRINTF_CALL_RE.search(line) and PRINTF_FLOAT_RE.search(line):
            report(no, "float-format",
                   "printf float conversion; use util::fmt_double")

    return findings


def gather_files(root, paths):
    files = []
    if not paths:
        src = os.path.join(root, "src")
        if not os.path.isdir(src):
            raise SystemExit(f"error: no src/ under --root {root}")
        paths = [src]
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _dirnames, filenames in os.walk(p):
                for fn in sorted(filenames):
                    if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                        files.append(os.path.join(dirpath, fn))
        elif os.path.isfile(p):
            files.append(p)
        else:
            raise SystemExit(f"error: no such file or directory: {p}")
    return sorted(set(files))


def main(argv):
    parser = argparse.ArgumentParser(
        prog="lint_determinism.py",
        description="static determinism invariants for the crusader repo")
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*",
                        help="files/dirs to lint instead of <root>/src")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, doc in RULES.items():
            print(f"{rule}: {doc}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = []
    for path in gather_files(root, args.paths):
        display = os.path.relpath(path, root) if not args.paths else path
        findings.extend(lint_file(path, display))

    for path, no, rule, detail in findings:
        print(f"{path}:{no}: [{rule}] {detail}")
    if findings:
        print(f"lint_determinism: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
