#!/usr/bin/env bash
# Large-n engine smoke (registered as the ctest `smoke_large_n`, label
# `slow`; CI runs it in the nightly lane): one n = 2^17 (131072) hypercube
# relay cell under the flood-probe transport protocol with abstract crypto —
# ~9M physical messages through the batched flood fast path.
#
# What it proves:
#   * the engine sustains a 10^5-node sparse cell inside a hard wall budget
#     (--budget-ms aborts the cell and the exit status reports it),
#   * the realized skew stays within the Theorem-17-style effective bound
#     (--gate=1.0: probe's predicted skew is u_eff at gate ratio 1.0),
#   * the run is live and completes its rounds (gate trips on dead cells).
#
# Usage: smoke_large_n.sh <path-to-sweep_cli> <workdir>
set -euo pipefail

CLI=$1
DIR=$2

rm -rf "$DIR"
mkdir -p "$DIR"

# Split delays: every forward coalesces into two aggregate events (low-id /
# high-id neighbor runs), the representative shape for the batched path.
"$CLI" --world=relay --topology=hypercube --protocols=probe \
       --crypto=abstract --n=131072 --faults=0 --delay=split \
       --rounds=4 --warmup=1 --gate=1.0 --budget-ms=120000 \
       --format=csv --out="$DIR/large_n.csv"

# Belt and braces over the exit status: the cell must have actually run at
# scale, not degenerated to an infeasible/empty row. The column is resolved
# by header name so schema growth never silently reads a different field.
messages=$(awk -F, '
  NR==1 { for (i=1; i<=NF; i++) if ($i == "messages") c=i; next }
  /n=131072/ { print $c; exit }
' "$DIR/large_n.csv")
if [ "$messages" -lt 1000000 ]; then
  echo "ERROR: large-n cell moved only $messages messages" >&2
  exit 1
fi

echo "smoke_large_n: OK ($messages physical messages)"
