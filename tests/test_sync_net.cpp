#include "sync/sync_net.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::sync {
namespace {

/// Records what it receives; sends its id+round to everyone each round.
class EchoProtocol final : public SyncProtocol {
 public:
  EchoProtocol(NodeId self, std::uint32_t n) : self_(self), n_(n) {}

  Outbox send(std::uint32_t round) override {
    Outbox out;
    for (NodeId to = 0; to < n_; ++to) {
      SignedValue entry;
      entry.dealer = self_;
      entry.value = static_cast<double>(self_ * 100 + round);
      out[to].entries.push_back(entry);
    }
    return out;
  }

  void receive(std::uint32_t round, const Inbox& inbox) override {
    last_round_ = round;
    last_inbox_ = inbox;
  }

  std::uint32_t last_round_ = 999;
  Inbox last_inbox_;

 private:
  NodeId self_;
  std::uint32_t n_;
};

TEST(SyncNetwork, DeliversAllToAll) {
  crypto::Pki pki(3, crypto::Pki::Kind::kSymbolic, 1);
  SyncNetwork net(3, {false, false, false}, pki);
  std::vector<std::unique_ptr<EchoProtocol>> nodes;
  for (NodeId v = 0; v < 3; ++v) {
    nodes.push_back(std::make_unique<EchoProtocol>(v, 3));
    net.set_protocol(v, nodes.back().get());
  }
  net.run_round();
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(nodes[v]->last_round_, 0u);
    EXPECT_EQ(nodes[v]->last_inbox_.size(), 3u);  // including self
    EXPECT_DOUBLE_EQ(nodes[v]->last_inbox_.at(1).entries[0].value, 100.0);
  }
  net.run_round();
  EXPECT_EQ(nodes[0]->last_inbox_.at(2).entries[0].value, 201.0);
  EXPECT_EQ(net.round(), 2u);
}

/// Adversary that copies the first honest node's outbox value and claims it
/// as its own (no honest signatures involved, hence legal).
class MimicAdversary final : public RushingAdversary {
 public:
  explicit MimicAdversary(NodeId bad, std::uint32_t n) : bad_(bad), n_(n) {}

  std::map<NodeId, Outbox> act(std::uint32_t /*round*/,
                               const std::vector<Outbox>& honest) override {
    double seen = -1.0;
    for (const auto& outbox : honest) {
      if (!outbox.empty() && !outbox.begin()->second.entries.empty()) {
        seen = outbox.begin()->second.entries[0].value;
        break;
      }
    }
    saw_value_ = seen;
    std::map<NodeId, Outbox> out;
    Outbox outbox;
    for (NodeId to = 0; to < n_; ++to) {
      SignedValue entry;
      entry.dealer = bad_;
      entry.value = seen;
      outbox[to].entries.push_back(entry);
    }
    out[bad_] = std::move(outbox);
    return out;
  }

  double saw_value_ = -2.0;

 private:
  NodeId bad_;
  std::uint32_t n_;
};

TEST(SyncNetwork, RushingAdversarySeesHonestMessagesFirst) {
  crypto::Pki pki(3, crypto::Pki::Kind::kSymbolic, 1);
  SyncNetwork net(3, {false, false, true}, pki);
  std::vector<std::unique_ptr<EchoProtocol>> nodes;
  for (NodeId v = 0; v < 2; ++v) {
    nodes.push_back(std::make_unique<EchoProtocol>(v, 3));
    net.set_protocol(v, nodes.back().get());
  }
  MimicAdversary adv(2, 3);
  net.set_adversary(&adv);
  net.run_round();
  // The adversary observed round-0 honest traffic before sending.
  EXPECT_DOUBLE_EQ(adv.saw_value_, 0.0);  // node 0, round 0
  // Honest nodes received the mimicked value from the faulty node.
  EXPECT_DOUBLE_EQ(nodes[0]->last_inbox_.at(2).entries[0].value, 0.0);
}

/// Adversary that tries to use an honest signature it has never seen.
class ForgingAdversary final : public RushingAdversary {
 public:
  ForgingAdversary(crypto::Pki* pki, NodeId bad) : pki_(pki), bad_(bad) {}

  std::map<NodeId, Outbox> act(std::uint32_t,
                               const std::vector<Outbox>&) override {
    std::map<NodeId, Outbox> out;
    SignedValue entry;
    entry.dealer = 0;
    entry.value = 1.0;
    // An honest node's signature obtained out of band — illegal to use.
    entry.sig = pki_->sign(0, crypto::make_value_payload(0, 0, 1.0));
    out[bad_][0].entries.push_back(entry);
    return out;
  }

 private:
  crypto::Pki* pki_;
  NodeId bad_;
};

TEST(SyncNetwork, DolevYaoRuleEnforced) {
  crypto::Pki pki(3, crypto::Pki::Kind::kSymbolic, 1);
  SyncNetwork net(3, {false, false, true}, pki);
  std::vector<std::unique_ptr<EchoProtocol>> nodes;
  for (NodeId v = 0; v < 2; ++v) {
    nodes.push_back(std::make_unique<EchoProtocol>(v, 3));
    net.set_protocol(v, nodes.back().get());
  }
  ForgingAdversary adv(&pki, 2);
  net.set_adversary(&adv);
  EXPECT_THROW(net.run_round(), util::ModelViolation);
}

TEST(SyncNetwork, ProtocolOnFaultyNodeRejected) {
  crypto::Pki pki(2, crypto::Pki::Kind::kSymbolic, 1);
  SyncNetwork net(2, {false, true}, pki);
  EchoProtocol p(1, 2);
  EXPECT_THROW(net.set_protocol(1, &p), util::CheckFailure);
}

TEST(SyncNetwork, MissingProtocolRejected) {
  crypto::Pki pki(2, crypto::Pki::Kind::kSymbolic, 1);
  SyncNetwork net(2, {false, false}, pki);
  EchoProtocol p(0, 2);
  net.set_protocol(0, &p);
  EXPECT_THROW(net.run_round(), util::CheckFailure);
}

}  // namespace
}  // namespace crusader::sync
