// CPS under the full Byzantine strategy suite at maximal resilience
// f = ⌈n/2⌉ − 1: Theorem 17's guarantees must survive every legal attack.

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

#include "core/adversaries.hpp"
#include "core/cps.hpp"
#include "helpers.hpp"

namespace crusader::core {
namespace {

using baselines::ProtocolKind;

struct AdvCase {
  std::uint32_t n;
  ByzStrategy strategy;
  sim::ClockKind clocks;
  std::uint64_t seed;
};

class CpsAdversarial : public ::testing::TestWithParam<AdvCase> {};

TEST_P(CpsAdversarial, Theorem17SurvivesAttack) {
  const auto c = GetParam();
  const std::uint32_t f = sim::ModelParams::max_faults_signed(c.n);
  const auto model = crusader::testing::small_model(c.n, f);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  ASSERT_TRUE(setup.feasible);

  const std::size_t rounds = 20;
  // late_shift for the pull-late strategy: a sizeable fraction of the
  // acceptance window; split_shift beyond the Lemma-11 tolerance so the echo
  // guard actually fires.
  const double late_shift = 0.3 * setup.cps.accept_window;
  const double split_shift = 0.2;

  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, f, c.strategy, c.seed, rounds, c.clocks,
      sim::DelayKind::kRandom, late_shift, split_shift);

  EXPECT_TRUE(result.violations.empty());
  ASSERT_TRUE(result.trace.live(rounds))
      << "liveness lost under " << to_string(c.strategy) << ": only "
      << result.trace.complete_rounds() << " rounds";
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9)
      << "skew bound broken under " << to_string(c.strategy);
  EXPECT_GE(result.trace.min_period(), setup.cps.p_min - 1e-9);
  EXPECT_LE(result.trace.max_period(), setup.cps.p_max + 1e-9);
}

std::vector<AdvCase> adv_cases() {
  std::vector<AdvCase> cases;
  std::uint64_t seed = 7000;
  for (std::uint32_t n : {3u, 5u, 7u}) {
    for (ByzStrategy strategy : all_byz_strategies()) {
      for (auto clocks : {sim::ClockKind::kSpread, sim::ClockKind::kRandomWalk}) {
        if (n == 7 && clocks == sim::ClockKind::kRandomWalk) continue;
        cases.push_back(AdvCase{n, strategy, clocks, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CpsAdversarial, ::testing::ValuesIn(adv_cases()),
    [](const ::testing::TestParamInfo<AdvCase>& info) {
      const auto& c = info.param;
      std::string name = to_string(c.strategy);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      std::string out = "n";
      out += std::to_string(c.n);
      out += '_';
      out += name;
      out += "_c";
      out += std::to_string(static_cast<int>(c.clocks));
      out += "_s";
      out += std::to_string(c.seed);
      return out;
    });

TEST(CpsAdversarialDetail, SplitShiftTriggersEchoGuard) {
  // With a split shift far beyond Lemma 11's tolerance, honest nodes that
  // accepted the early copy must reject via the echo guard once the late
  // half's echoes circulate — ⊥, not inconsistent estimates.
  const std::uint32_t n = 5;
  const std::uint32_t f = 2;
  const auto model = crusader::testing::small_model(n, f);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);

  std::vector<CpsNode*> nodes(n, nullptr);
  CpsConfig config;
  config.params = setup.cps;
  sim::HonestFactory honest = [&nodes, config](NodeId v) {
    auto node = std::make_unique<CpsNode>(config);
    nodes[v] = node.get();
    return node;
  };
  auto byz = make_byzantine_factory(ByzStrategy::kSplit, honest, 1,
                                    /*late_shift=*/0.0, /*split_shift=*/0.5);
  auto world_config = crusader::testing::world_config(model, setup, 15, 11);
  world_config.faulty = sim::default_faulty_set(f);
  sim::World world(world_config, honest, byz);
  const auto result = world.run();

  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
  // At least some honest node saw ⊥ estimates (the guard fired).
  std::uint64_t bots = 0;
  for (auto* node : nodes)
    if (node != nullptr) bots += node->stats().bot_estimates;
  EXPECT_GT(bots, 0u);
}

TEST(CpsAdversarialDetail, EchoRushIsHarmlessWhenUtildeEqualsU) {
  // Lemma 10: with ũ = u the guard absorbs rushed echoes — no honest
  // broadcast is rejected, so the skew bound survives.
  const std::uint32_t n = 5;
  const std::uint32_t f = 2;
  const auto model = crusader::testing::small_model(n, f);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, f, ByzStrategy::kEchoRush, 21, 20);
  EXPECT_TRUE(result.trace.live(20));
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
}

TEST(CpsAdversarialDetail, EchoRushBreaksValidityWhenUtildeLarge) {
  // The paper's motivating attack (Section 1 / Theorem 5): if faulty links
  // may undercut the honest minimum delay (ũ > 2u), rushed echoes arrive
  // inside the guard window of honest broadcasts and force rejections.
  std::uint32_t n = 5;
  std::uint32_t f = 2;
  auto model = crusader::testing::small_model(n, f);
  model.u_tilde = 0.5;  // ≫ 2u = 0.1
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);

  std::vector<CpsNode*> nodes(n, nullptr);
  CpsConfig config;
  config.params = setup.cps;
  config.record_estimates = true;
  sim::HonestFactory honest = [&nodes, config](NodeId v) {
    auto node = std::make_unique<CpsNode>(config);
    nodes[v] = node.get();
    return node;
  };
  auto byz = make_byzantine_factory(ByzStrategy::kEchoRush, honest, 3);
  auto world_config = crusader::testing::world_config(model, setup, 15, 31);
  world_config.faulty = sim::default_faulty_set(f);
  world_config.delay_kind = sim::DelayKind::kMax;  // maximize direct delays
  sim::World world(world_config, honest, byz);
  const auto result = world.run();

  // Count ⊥ outputs for HONEST dealers only: those are genuine Lemma-10
  // violations caused by the rushed echoes (the silent attackers' own
  // dealer slots always time out and prove nothing).
  std::uint64_t honest_bots = 0;
  for (auto* node : nodes) {
    if (node == nullptr) continue;
    for (const auto& rec : node->estimates())
      if (rec.bot && rec.dealer >= f) ++honest_bots;
  }
  EXPECT_GT(honest_bots, 0u) << "rushed echoes should have caused rejections";
}

TEST(CpsAdversarialDetail, FewerFaultsThanBudget) {
  // f_actual < f: guarantees still hold (the discard rule over-provisions).
  const std::uint32_t n = 7;
  const std::uint32_t f = 3;
  const auto model = crusader::testing::small_model(n, f);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, /*f_actual=*/1, ByzStrategy::kPullEarly, 77,
      20);
  EXPECT_TRUE(result.trace.live(20));
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
}

TEST(CpsAdversarialDetail, AllStrategiesAreModelLegal) {
  // Under Enforcement::kThrow (the default), a strategy violating the
  // Dolev–Yao rule or delay bounds would abort the run. Cover every strategy
  // with extreme clock/delay settings.
  const std::uint32_t n = 5;
  const std::uint32_t f = 2;
  const auto model = crusader::testing::small_model(n, f);
  for (ByzStrategy strategy : all_byz_strategies()) {
    const auto result = crusader::testing::run_protocol(
        ProtocolKind::kCps, model, f, strategy, 5, 10,
        sim::ClockKind::kNominal, sim::DelayKind::kMin, 0.1, 0.1);
    EXPECT_TRUE(result.violations.empty()) << to_string(strategy);
  }
}

}  // namespace
}  // namespace crusader::core
