// Online logical clock service: monotonicity, pulse anchoring, and bounded
// cross-node divergence — readable live, unlike the offline view.

#include "core/clock_service.hpp"

#include <algorithm>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "core/cps.hpp"
#include "helpers.hpp"

namespace crusader::core {
namespace {

using baselines::ProtocolKind;

struct ServiceWorld {
  std::vector<ClockService*> services;
  std::unique_ptr<sim::World> world;
  core::CpsParams params;
};

ServiceWorld make_world(std::uint32_t n, std::uint32_t f_actual,
                        std::uint64_t seed, double tick,
                        double nominal_factor) {
  const auto model = crusader::testing::small_model(
      n, sim::ModelParams::max_faults_signed(n));
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);

  ServiceWorld out;
  out.params = setup.cps;
  out.services.resize(n, nullptr);
  const double nominal = nominal_factor * setup.cps.p_min;

  CpsConfig cps;
  cps.params = setup.cps;
  sim::HonestFactory honest = [&out, cps, tick, nominal](NodeId v) {
    auto service = std::make_unique<ClockService>(
        std::make_unique<CpsNode>(cps), tick, nominal);
    out.services[v] = service.get();
    return service;
  };
  sim::ByzantineFactory byz;
  if (f_actual > 0)
    byz = make_byzantine_factory(ByzStrategy::kRandom, honest, seed);
  auto config = crusader::testing::world_config(model, setup, 20, seed);
  config.faulty = sim::default_faulty_set(f_actual);
  out.world = std::make_unique<sim::World>(config, honest, byz);
  return out;
}

TEST(ClockService, MonotoneUnderStepping) {
  auto sw = make_world(4, 0, 3, /*tick=*/100.0, /*nominal_factor=*/1.0);
  std::vector<double> last(4, -1.0);
  // Step the engine manually and probe the live readings as we go.
  sw.world->start();
  auto& engine = sw.world->engine();
  for (int slice = 1; slice <= 40; ++slice) {
    engine.run_until(slice * 2.0);
    for (NodeId v = 0; v < 4; ++v) {
      if (sw.services[v] == nullptr) continue;
      const double reading = sw.services[v]->read();
      EXPECT_GE(reading, last[v] - 1e-9) << "node " << v;
      last[v] = reading;
    }
  }
}

TEST(ClockService, ReadsZeroBeforeFirstPulse) {
  auto sw = make_world(4, 0, 5, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(sw.services[0]->read(), 0.0);
}

TEST(ClockService, TracksPulseCount) {
  auto sw = make_world(4, 1, 7, 10.0, 1.0);
  (void)sw.world->run();
  for (NodeId v = 1; v < 4; ++v) {
    ASSERT_NE(sw.services[v], nullptr);
    EXPECT_GE(sw.services[v]->pulses_seen(), 18u);
    // After the run, the reading reflects the last pulse plus at most one
    // full tick of interpolation.
    const double reading = sw.services[v]->read();
    const double pulses =
        static_cast<double>(sw.services[v]->pulses_seen());
    EXPECT_GE(reading, 10.0 * (pulses - 1) - 1e-9);
    EXPECT_LE(reading, 10.0 * pulses + 1e-9);
  }
}

TEST(ClockService, CrossNodeDivergenceBounded) {
  auto sw = make_world(5, 2, 11, /*tick=*/100.0, /*nominal_factor=*/1.0);
  sw.world->start();
  auto& engine = sw.world->engine();
  const double nominal = sw.params.p_min;
  // Analytic online bound: Λ·(1 + (S + (P_max − T_nom))/T_nom).
  const double bound =
      100.0 * (1.0 + (sw.params.S + (sw.params.p_max - nominal)) / nominal);

  double worst = 0.0;
  for (int slice = 1; slice <= 120; ++slice) {
    engine.run_until(slice * 0.75);
    double lo = 1e300, hi = -1e300;
    bool all_started = true;
    for (NodeId v = 2; v < 5; ++v) {  // honest nodes
      if (sw.services[v]->pulses_seen() == 0) all_started = false;
      const double reading = sw.services[v]->read();
      lo = std::min(lo, reading);
      hi = std::max(hi, reading);
    }
    if (all_started) worst = std::max(worst, hi - lo);
  }
  EXPECT_GT(worst, 0.0);
  EXPECT_LE(worst, bound + 1e-6);
}

TEST(ClockService, RejectsBadParameters) {
  CpsConfig cps;
  cps.params = baselines::make_setup(
                   ProtocolKind::kCps,
                   crusader::testing::small_model(4, 1)).cps;
  EXPECT_THROW(ClockService(std::make_unique<CpsNode>(cps), 0.0, 1.0),
               util::CheckFailure);
  EXPECT_THROW(ClockService(std::make_unique<CpsNode>(cps), 1.0, -1.0),
               util::CheckFailure);
  EXPECT_THROW(ClockService(nullptr, 1.0, 1.0), util::CheckFailure);
}

}  // namespace
}  // namespace crusader::core
