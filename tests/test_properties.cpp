// Property-based / fuzz tests: global invariants over randomized
// configurations of the whole stack.

#include <array>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>

#include "core/logical_clock.hpp"
#include "helpers.hpp"
#include "relay/flood_world.hpp"
#include "relay/topology.hpp"

namespace crusader {
namespace {

using baselines::ProtocolKind;

/// Derives a random-but-valid configuration from a seed.
struct FuzzConfig {
  sim::ModelParams model;
  std::uint32_t f_actual;
  core::ByzStrategy strategy;
  sim::ClockKind clocks;
  sim::DelayKind delays;
  std::uint64_t seed;
};

FuzzConfig make_fuzz_config(std::uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  FuzzConfig fc;
  fc.seed = seed;
  fc.model.n = 2 + static_cast<std::uint32_t>(rng.below(9));  // 2..10
  fc.model.f = sim::ModelParams::max_faults_signed(fc.model.n);
  fc.model.d = rng.uniform(0.5, 2.0);
  fc.model.u = rng.uniform(0.01, 0.2) * fc.model.d;  // u < d/2 guaranteed
  fc.model.u_tilde = fc.model.u;
  fc.model.vartheta = 1.0 + rng.uniform(0.0005, 0.035);
  fc.f_actual =
      fc.model.f == 0 ? 0
                      : static_cast<std::uint32_t>(rng.below(fc.model.f + 1));
  const auto& strategies = core::all_byz_strategies();
  fc.strategy = strategies[rng.below(strategies.size())];
  fc.clocks = std::array{sim::ClockKind::kNominal, sim::ClockKind::kSpread,
                         sim::ClockKind::kRandomWalk}[rng.below(3)];
  fc.delays = std::array{sim::DelayKind::kMax, sim::DelayKind::kMin,
                         sim::DelayKind::kRandom,
                         sim::DelayKind::kSplit}[rng.below(4)];
  return fc;
}

class CpsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpsFuzz, Theorem17InvariantsHold) {
  const FuzzConfig fc = make_fuzz_config(GetParam());
  const auto setup = baselines::make_setup(ProtocolKind::kCps, fc.model);
  ASSERT_TRUE(setup.feasible)
      << "fuzzer must generate feasible models (vartheta="
      << fc.model.vartheta << ")";

  const std::size_t rounds = 12;
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kCps, fc.model, fc.f_actual, fc.strategy, fc.seed, rounds,
      fc.clocks, fc.delays, /*late_shift=*/0.1 * setup.cps.accept_window,
      /*split_shift=*/0.5 * setup.cps.S);

  EXPECT_TRUE(result.violations.empty());
  ASSERT_TRUE(result.trace.live(rounds))
      << "n=" << fc.model.n << " f=" << fc.f_actual << " strategy "
      << core::to_string(fc.strategy);
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
  EXPECT_GE(result.trace.min_period(), setup.cps.p_min - 1e-9);
  EXPECT_LE(result.trace.max_period(), setup.cps.p_max + 1e-9);

  // Per-node pulse sequences are strictly increasing with sane gaps.
  for (NodeId v : result.trace.honest()) {
    const auto& pulses = result.trace.pulses(v);
    for (std::size_t i = 1; i < pulses.size(); ++i) {
      EXPECT_GT(pulses[i].real_time, pulses[i - 1].real_time);
      EXPECT_GT(pulses[i].local_time, pulses[i - 1].local_time);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpsFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

class DeterminismFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismFuzz, IdenticalSeedsIdenticalTraces) {
  const FuzzConfig fc = make_fuzz_config(GetParam());
  auto run = [&] {
    return crusader::testing::run_protocol(ProtocolKind::kCps, fc.model,
                                           fc.f_actual, fc.strategy, fc.seed,
                                           8, fc.clocks, fc.delays);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.trace.complete_rounds(), b.trace.complete_rounds());
  ASSERT_EQ(a.messages, b.messages);
  for (NodeId v : a.trace.honest()) {
    ASSERT_EQ(a.trace.pulse_count(v), b.trace.pulse_count(v));
    for (std::size_t r = 0; r < a.trace.pulse_count(v); ++r)
      EXPECT_DOUBLE_EQ(a.trace.pulse_time(v, r), b.trace.pulse_time(v, r));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismFuzz,
                         ::testing::Values(3, 7, 12, 21, 28));

class RelayFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelayFuzz, SparseTranslationInvariants) {
  util::Rng rng(GetParam() * 31 + 5);
  const std::uint32_t n = 5 + static_cast<std::uint32_t>(rng.below(6));
  const bool chordal = rng.chance(0.5);
  relay::RelayConfig config;
  config.topology = chordal && n >= 5 ? relay::Topology::chordal_ring(n, 2)
                                      : relay::Topology::ring(n);
  config.hop_model.n = n;
  config.hop_model.f = 1;
  config.hop_model.d = 1.0;
  config.hop_model.u = rng.uniform(0.005, 0.03);
  config.hop_model.u_tilde = config.hop_model.u;
  config.hop_model.vartheta = 1.0 + rng.uniform(0.0005, 0.003);
  config.seed = GetParam();
  // Optionally crash one node.
  if (rng.chance(0.5))
    config.faulty = {static_cast<NodeId>(rng.below(n))};

  const auto eff = relay::effective_model(config);
  const auto params = core::derive_cps_params(eff);
  ASSERT_TRUE(params.feasible);
  config.initial_offset = params.S;
  config.horizon = params.S + 8.0 * params.p_max;

  core::CpsConfig cps;
  cps.params = params;
  relay::RelayWorld world(config, [cps](NodeId) {
    return std::make_unique<core::CpsNode>(cps);
  });
  const auto result = world.run();
  EXPECT_TRUE(result.trace.live(5));
  EXPECT_LE(result.trace.max_skew(), params.S + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelayFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(SignatureFuzz, TamperedSignaturesNeverVerify) {
  crypto::Pki pki(6, crypto::Pki::Kind::kHmac, 99);
  util::Rng rng(123);
  int checked = 0;
  for (int i = 0; i < 200; ++i) {
    const Round round = rng.below(50);
    const NodeId signer = static_cast<NodeId>(rng.below(6));
    const auto payload = crypto::make_pulse_payload(round);
    crypto::Signature sig = pki.sign(signer, payload);

    crypto::Signature tampered = sig;
    switch (rng.below(3)) {
      case 0:
        tampered.tag[rng.below(32)] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
        break;
      case 1:
        tampered.signer = static_cast<NodeId>((signer + 1 + rng.below(5)) % 6);
        break;
      case 2:
        tampered.nonce ^= 1 + rng.below(100);
        break;
    }
    if (tampered == sig) continue;
    EXPECT_FALSE(pki.verify(tampered, payload)) << "iteration " << i;
    ++checked;
  }
  EXPECT_GT(checked, 150);
}

TEST(SignatureFuzz, WrongPayloadNeverVerifies) {
  crypto::Pki pki(4, crypto::Pki::Kind::kSymbolic, 7);
  util::Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    const Round round = rng.below(1000);
    const auto sig = pki.sign(0, crypto::make_pulse_payload(round));
    EXPECT_FALSE(pki.verify(sig, crypto::make_pulse_payload(round + 1)));
    EXPECT_FALSE(pki.verify(sig, crypto::make_ready_payload(round)));
  }
}

TEST(LogicalClockFuzz, MonotoneOnRandomTraces) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const FuzzConfig fc = make_fuzz_config(seed);
    if (fc.model.n < 3) continue;
    const auto result = crusader::testing::run_protocol(
        ProtocolKind::kCps, fc.model, 0, core::ByzStrategy::kCrash, seed, 10,
        fc.clocks, fc.delays);
    for (NodeId v : result.trace.honest()) {
      if (result.trace.pulse_count(v) < 2) continue;
      core::LogicalClockView view(result.trace, v, 13.0);
      double prev = -1.0;
      for (double t = view.domain_begin(); t <= view.domain_end();
           t += (view.domain_end() - view.domain_begin()) / 200.0) {
        const double cur = view.at(t);
        EXPECT_GE(cur, prev - 1e-9);
        prev = cur;
      }
    }
  }
}

}  // namespace
}  // namespace crusader
