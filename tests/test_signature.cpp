#include "crypto/signature.hpp"

#include <gtest/gtest.h>

namespace crusader::crypto {
namespace {

class SignatureSchemes : public ::testing::TestWithParam<Pki::Kind> {};

TEST_P(SignatureSchemes, SignVerifyRoundTrip) {
  Pki pki(4, GetParam(), 1);
  const auto payload = make_pulse_payload(7);
  const Signature sig = pki.sign(2, payload);
  EXPECT_TRUE(pki.verify(sig, payload));
  EXPECT_EQ(sig.signer, 2u);
}

TEST_P(SignatureSchemes, RejectsWrongPayload) {
  Pki pki(4, GetParam(), 1);
  const Signature sig = pki.sign(2, make_pulse_payload(7));
  EXPECT_FALSE(pki.verify(sig, make_pulse_payload(8)));
}

TEST_P(SignatureSchemes, RejectsTamperedSignerClaim) {
  Pki pki(4, GetParam(), 1);
  const auto payload = make_pulse_payload(7);
  Signature sig = pki.sign(2, payload);
  sig.signer = 3;  // claim a different signer without its key
  EXPECT_FALSE(pki.verify(sig, payload));
}

TEST_P(SignatureSchemes, RejectsTamperedTag) {
  Pki pki(4, GetParam(), 1);
  const auto payload = make_pulse_payload(7);
  Signature sig = pki.sign(2, payload);
  sig.tag[0] ^= 0x01;
  EXPECT_FALSE(pki.verify(sig, payload));
}

TEST_P(SignatureSchemes, RejectsFabricatedSignature) {
  Pki pki(4, GetParam(), 1);
  const auto payload = make_pulse_payload(7);
  Signature forged;
  forged.signer = 1;
  forged.payload_hash = payload.hash();
  // tag left default — a forger without the key cannot do better than guess.
  EXPECT_FALSE(pki.verify(forged, payload));
}

TEST_P(SignatureSchemes, NoncesYieldDistinctValidSignatures) {
  // Models randomized signing by a Byzantine signer: both are valid, but
  // they are different bit strings.
  Pki pki(4, GetParam(), 1);
  const auto payload = make_pulse_payload(3);
  const Signature a = pki.sign(1, payload, 0);
  const Signature b = pki.sign(1, payload, 1);
  EXPECT_TRUE(pki.verify(a, payload));
  EXPECT_TRUE(pki.verify(b, payload));
  EXPECT_NE(a.key(), b.key());
}

TEST_P(SignatureSchemes, CountsOperations) {
  Pki pki(2, GetParam(), 1);
  const auto payload = make_ready_payload(1);
  const Signature sig = pki.sign(0, payload);
  (void)pki.verify(sig, payload);
  (void)pki.verify(sig, payload);
  EXPECT_EQ(pki.sign_count(), 1u);
  EXPECT_EQ(pki.verify_count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SignatureSchemes,
                         ::testing::Values(Pki::Kind::kSymbolic,
                                           Pki::Kind::kHmac),
                         [](const auto& info) {
                           return info.param == Pki::Kind::kSymbolic
                                      ? "Symbolic"
                                      : "Hmac";
                         });

TEST(SignedPayload, DistinctPayloadBuilders) {
  EXPECT_NE(make_pulse_payload(1).hash(), make_pulse_payload(2).hash());
  EXPECT_NE(make_pulse_payload(1).hash(), make_ready_payload(1).hash());
  EXPECT_NE(make_value_payload(1, 0, 0.5).hash(),
            make_value_payload(1, 1, 0.5).hash());
  EXPECT_NE(make_value_payload(1, 0, 0.5).hash(),
            make_value_payload(1, 0, 0.5000001).hash());
  EXPECT_EQ(make_value_payload(2, 3, -1.25).hash(),
            make_value_payload(2, 3, -1.25).hash());
}

TEST(KnowledgeTracker, LearnsAndAnswers) {
  Pki pki(3, Pki::Kind::kSymbolic, 1);
  const auto payload = make_pulse_payload(1);
  const Signature sig = pki.sign(0, payload);
  KnowledgeTracker tracker;
  EXPECT_FALSE(tracker.knows(sig));
  tracker.learn(sig);
  EXPECT_TRUE(tracker.knows(sig));
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(KnowledgeTracker, DistinguishesNonces) {
  Pki pki(3, Pki::Kind::kSymbolic, 1);
  const auto payload = make_pulse_payload(1);
  KnowledgeTracker tracker;
  tracker.learn(pki.sign(0, payload, 0));
  EXPECT_FALSE(tracker.knows(pki.sign(0, payload, 1)));
}

TEST(HmacSchemeDeterminism, SameSeedSameKeys) {
  HmacScheme a(3, 42), b(3, 42);
  const auto payload = make_pulse_payload(5);
  EXPECT_EQ(a.sign(1, payload, 0).tag, b.sign(1, payload, 0).tag);
}

TEST(HmacSchemeDeterminism, DifferentSeedDifferentKeys) {
  HmacScheme a(3, 42), b(3, 43);
  const auto payload = make_pulse_payload(5);
  EXPECT_NE(a.sign(1, payload, 0).tag, b.sign(1, payload, 0).tag);
}

}  // namespace
}  // namespace crusader::crypto
