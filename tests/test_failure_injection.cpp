// Failure injection: what happens when the model's assumptions are broken on
// purpose — and that the enforcement layer notices.

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adversaries.hpp"
#include "core/cps.hpp"
#include "helpers.hpp"

namespace crusader {
namespace {

using baselines::ProtocolKind;

/// Byzantine node that tries to send with an illegally small delay.
class DelayCheater final : public sim::ByzantineNode {
 public:
  void on_start(sim::AdversaryEnv&) override {}
  void on_message(sim::AdversaryEnv& env, const sim::Message& m) override {
    if (tried_ || m.kind != sim::MsgKind::kTcbSig) return;
    tried_ = true;
    const NodeId to = env.id() == 0 ? 1 : 0;
    env.send_with_delay(to, m, 0.01);  // far below d - u_tilde
  }
  void on_timer(sim::AdversaryEnv&, std::uint64_t) override {}

 private:
  bool tried_ = false;
};

/// Byzantine node that forwards an honest signature it never received (it
/// fabricates the bytes of a signature that exists in the PKI but was only
/// ever delivered between honest nodes — the network must reject it).
class KnowledgeCheater final : public sim::ByzantineNode {
 public:
  void on_start(sim::AdversaryEnv&) override {}
  void on_message(sim::AdversaryEnv& env, const sim::Message& m) override {
    // Replaying what we *did* receive is fine; mutate the round tag to
    // pretend we hold a signature for a future round instead.
    if (tried_ || m.kind != sim::MsgKind::kTcbSig) return;
    tried_ = true;
    sim::Message forged = m;
    forged.round = m.round + 5;
    forged.sig.payload_hash =
        crypto::make_pulse_payload(m.round + 5).hash();
    // The forged signature has a different key than anything delivered to
    // us; the knowledge tracker cannot match it... but its signer is honest,
    // so the Dolev–Yao check must flag the send.
    const NodeId to = env.id() == 0 ? 1 : 0;
    env.send_with_delay(to, forged, env.model().d);
  }
  void on_timer(sim::AdversaryEnv&, std::uint64_t) override {}

 private:
  bool tried_ = false;
};

template <typename Byz>
sim::RunResult run_with_cheater(sim::Enforcement enforcement) {
  const auto model = testing::small_model(4, 1);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  auto honest = baselines::make_protocol_factory(setup);
  auto config = testing::world_config(model, setup, 10, 3);
  config.faulty = {0};
  config.enforcement = enforcement;
  sim::World world(config, honest,
                   [](NodeId) { return std::make_unique<Byz>(); });
  return world.run();
}

TEST(FailureInjection, DelayCheatThrowsUnderStrictEnforcement) {
  EXPECT_THROW(run_with_cheater<DelayCheater>(sim::Enforcement::kThrow),
               util::ModelViolation);
}

TEST(FailureInjection, DelayCheatRecordedAndClamped) {
  const auto result = run_with_cheater<DelayCheater>(sim::Enforcement::kRecord);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_NE(result.violations[0].find("delay"), std::string::npos);
  // The delay was clamped into the model envelope: guarantees still hold.
  const auto setup = baselines::make_setup(
      ProtocolKind::kCps, testing::small_model(4, 1));
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
}

TEST(FailureInjection, UnknownSignatureThrowsUnderStrictEnforcement) {
  EXPECT_THROW(run_with_cheater<KnowledgeCheater>(sim::Enforcement::kThrow),
               util::ModelViolation);
}

TEST(FailureInjection, UnknownSignatureRecordedButUseless) {
  // In record mode the message is delivered anyway — and CPS must shrug it
  // off, because the fabricated signature does not verify.
  const auto result =
      run_with_cheater<KnowledgeCheater>(sim::Enforcement::kRecord);
  ASSERT_FALSE(result.violations.empty());
  const auto setup = baselines::make_setup(
      ProtocolKind::kCps, testing::small_model(4, 1));
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
  EXPECT_TRUE(result.trace.live(8));
}

TEST(FailureInjection, UtildeAboveUWeakensValidityNotConsistency) {
  // Sweep ũ upward with the echo-rush attack and count ⊥ outputs for
  // HONEST dealers only (the attackers' own silent dealer slots always time
  // out). Honest-broadcast rejections appear once ũ > 2u; at ũ = u the
  // guard absorbs the rushed echoes (Lemma 10). Liveness survives either
  // way — validity is attacked, consistency is not.
  std::vector<std::uint64_t> honest_bots_by_utilde;
  const std::uint32_t f_actual = 2;
  for (double u_tilde : {0.05, 0.15, 0.5}) {
    auto model = testing::small_model(5, 2);
    model.u_tilde = u_tilde;
    const auto setup = baselines::make_setup(ProtocolKind::kCps, model);

    std::vector<core::CpsNode*> nodes(model.n, nullptr);
    core::CpsConfig config;
    config.params = setup.cps;
    config.record_estimates = true;
    sim::HonestFactory honest = [&nodes, config](NodeId v) {
      auto node = std::make_unique<core::CpsNode>(config);
      nodes[v] = node.get();
      return node;
    };
    auto byz = core::make_byzantine_factory(core::ByzStrategy::kEchoRush,
                                            honest, 3);
    auto wc = testing::world_config(model, setup, 15, 31);
    wc.faulty = sim::default_faulty_set(f_actual);
    wc.delay_kind = sim::DelayKind::kMax;
    sim::World world(wc, honest, byz);
    const auto result = world.run();

    std::uint64_t honest_bots = 0;
    for (auto* node : nodes) {
      if (node == nullptr) continue;
      for (const auto& rec : node->estimates())
        if (rec.bot && rec.dealer >= f_actual) ++honest_bots;
    }
    honest_bots_by_utilde.push_back(honest_bots);
    // Liveness survives even when validity is under attack.
    EXPECT_TRUE(result.trace.live(10)) << "u_tilde=" << u_tilde;
  }
  EXPECT_EQ(honest_bots_by_utilde[0], 0u);  // ũ = u: Lemma 10 intact
  EXPECT_GT(honest_bots_by_utilde[2], 0u);  // ũ ≫ 2u: rejections appear
}

TEST(FailureInjection, CrashMidProtocol) {
  // A node that behaves honestly for a few rounds and then goes silent:
  // the survivors keep the bound.
  class LateCrash final : public sim::ByzantineNode {
   public:
    explicit LateCrash(std::unique_ptr<sim::PulseNode> inner)
        : inner_(std::move(inner)) {}
    void on_start(sim::AdversaryEnv& env) override { inner_->on_start(env); }
    void on_message(sim::AdversaryEnv& env, const sim::Message& m) override {
      if (!dead(env)) inner_->on_message(env, m);
    }
    void on_timer(sim::AdversaryEnv& env, std::uint64_t tag) override {
      if (!dead(env)) inner_->on_timer(env, tag);
    }

   private:
    bool dead(const sim::AdversaryEnv& env) const {
      return env.real_now() > 15.0;  // ~4 rounds in, stop participating
    }
    std::unique_ptr<sim::PulseNode> inner_;
  };

  const auto model = testing::small_model(5, 2);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  auto honest = baselines::make_protocol_factory(setup);
  auto config = testing::world_config(model, setup, 20, 9);
  config.faulty = {0, 1};
  sim::World world(config, honest,
                   [&honest](NodeId v) -> std::unique_ptr<sim::ByzantineNode> {
                     return std::make_unique<LateCrash>(honest(v));
                   });
  const auto result = world.run();
  EXPECT_TRUE(result.trace.live(20));
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
}

}  // namespace
}  // namespace crusader
