// Build/link smoke test: instantiate one world per ProtocolKind and run two
// pulse rounds. Catches link or startup breakage of any layer with a single
// fast target before the full suite runs.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "baselines/factories.hpp"
#include "helpers.hpp"

namespace crusader {
namespace {

class BuildSanity : public ::testing::TestWithParam<baselines::ProtocolKind> {};

TEST_P(BuildSanity, TwoRoundsRunClean) {
  const auto kind = GetParam();
  const auto model = testing::small_model(4, 1);
  const auto result = testing::run_protocol(kind, model, /*f_actual=*/0,
                                            core::ByzStrategy::kCrash,
                                            /*seed=*/7, /*rounds=*/2);
  EXPECT_TRUE(result.violations.empty())
      << "model violations for " << baselines::to_string(kind);
  EXPECT_GT(result.events, 0u);
  EXPECT_GT(result.messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, BuildSanity,
                         ::testing::Values(baselines::ProtocolKind::kCps,
                                           baselines::ProtocolKind::kLynchWelch,
                                           baselines::ProtocolKind::kSrikanthToueg),
                         [](const auto& info) {
                           // Test names must be alphanumeric; strip the rest
                           // (to_string yields e.g. "Lynch-Welch").
                           std::string name = baselines::to_string(info.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(static_cast<unsigned char>(c));
                           });
                           return name;
                         });

}  // namespace
}  // namespace crusader
