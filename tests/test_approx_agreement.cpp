// Tests for Figure 1 (APA) — Theorem 9 (one iteration halves the honest
// range at f = ⌈n/2⌉−1) and Corollary 2 (iterated convergence), under the
// full synchronous adversary suite.

#include "sync/approx_agreement.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "sync/sync_adversary.hpp"
#include "util/check.hpp"

namespace crusader::sync {
namespace {

std::vector<bool> faulty_mask(std::uint32_t n, std::uint32_t f) {
  // Faulty ids are the top ids so honest inputs sit at ids 0..n-f-1.
  std::vector<bool> mask(n, false);
  for (std::uint32_t i = 0; i < f; ++i) mask[n - 1 - i] = true;
  return mask;
}

std::vector<NodeId> faulty_ids(const std::vector<bool>& mask) {
  std::vector<NodeId> ids;
  for (NodeId v = 0; v < mask.size(); ++v)
    if (mask[v]) ids.push_back(v);
  return ids;
}

struct HonestRange {
  double lo, hi;
};

HonestRange honest_range(const std::vector<double>& values,
                         const std::vector<bool>& mask) {
  HonestRange r{1e300, -1e300};
  for (NodeId v = 0; v < mask.size(); ++v) {
    if (mask[v]) continue;
    r.lo = std::min(r.lo, values[v]);
    r.hi = std::max(r.hi, values[v]);
  }
  return r;
}

TEST(Apa, SelectMidpointBasics) {
  // f=2, no bots: discard two per side.
  EXPECT_DOUBLE_EQ(
      ApaNode::select_midpoint({-100, 0, 1, 2, 100}, 2, 0), 1.0);
  // f=2, one bot: discard one per side.
  EXPECT_DOUBLE_EQ(ApaNode::select_midpoint({-100, 0, 2, 100}, 2, 1), 1.0);
  // bots == f: no discard.
  EXPECT_DOUBLE_EQ(ApaNode::select_midpoint({0, 4}, 2, 2), 2.0);
  // bots > f (outside contract, robust clamp): no discard.
  EXPECT_DOUBLE_EQ(ApaNode::select_midpoint({1, 3}, 1, 5), 2.0);
}

TEST(Apa, SelectMidpointEmptyThrows) {
  EXPECT_THROW((void)ApaNode::select_midpoint({}, 1, 0), util::CheckFailure);
}

TEST(Apa, SelectMidpointOverDiscardThrows) {
  EXPECT_THROW((void)ApaNode::select_midpoint({1.0, 2.0}, 1, 0),
               util::CheckFailure);
}

TEST(Apa, FaultFreeOneIterationHalvesRange) {
  const std::uint32_t n = 5;
  crypto::Pki pki(n, crypto::Pki::Kind::kSymbolic, 1);
  const std::vector<bool> mask(n, false);
  const std::vector<double> inputs = {0.0, 1.0, 4.0, 7.0, 8.0};
  const auto result =
      run_apa(n, /*f=*/2, mask, inputs, /*iterations=*/1, nullptr, pki);
  // Fault-free with f=2: every node discards the 2 lowest/highest of the
  // same 5 values, landing on the same midpoint: range goes to 0.
  for (NodeId v = 1; v < n; ++v)
    EXPECT_DOUBLE_EQ(result.outputs[v], result.outputs[0]);
  EXPECT_DOUBLE_EQ(result.outputs[0], 4.0);
}

struct ApaCase {
  std::uint32_t n;
  std::uint32_t f;
  int adversary;  // index into the adversary list below
  std::uint64_t seed;
};

class ApaAdversarial : public ::testing::TestWithParam<ApaCase> {
 protected:
  static std::unique_ptr<RushingAdversary> make_adversary(
      int which, std::vector<NodeId> ids, std::uint32_t n, crypto::Pki& pki,
      std::uint64_t seed) {
    switch (which) {
      case 0: return std::make_unique<SilentSyncAdversary>(ids, n, pki);
      case 1: return std::make_unique<EquivocatorSyncAdversary>(ids, n, pki);
      case 2:
        return std::make_unique<ExtremePullSyncAdversary>(ids, n, pki, 50.0);
      case 3: return std::make_unique<PartialSyncAdversary>(ids, n, pki);
      case 4:
        return std::make_unique<RandomSyncAdversary>(ids, n, pki, seed);
    }
    CS_CHECK(false);
    return nullptr;
  }
};

TEST_P(ApaAdversarial, ConsistencyAndValidityPerIteration) {
  const ApaCase c = GetParam();
  crypto::Pki pki(c.n, crypto::Pki::Kind::kSymbolic, c.seed);
  const auto mask = faulty_mask(c.n, c.f);

  // Honest inputs spread over [0, 8] deterministically from the seed.
  util::Rng rng(c.seed);
  std::vector<double> inputs(c.n, 0.0);
  for (NodeId v = 0; v < c.n; ++v)
    if (!mask[v]) inputs[v] = rng.uniform(0.0, 8.0);

  const HonestRange before = honest_range(inputs, mask);
  const double ell = before.hi - before.lo;

  auto adversary =
      make_adversary(c.adversary, faulty_ids(mask), c.n, pki, c.seed);
  const std::uint32_t iterations = 4;
  const auto result =
      run_apa(c.n, c.f, mask, inputs, iterations, adversary.get(), pki);

  // Validity (Definition 1): every honest output stays within the honest
  // input range, in every iteration.
  for (NodeId v = 0; v < c.n; ++v) {
    if (mask[v]) continue;
    for (double value : result.trajectories[v]) {
      EXPECT_GE(value, before.lo - 1e-9);
      EXPECT_LE(value, before.hi + 1e-9);
    }
  }

  // ε-consistency (Theorem 9 iterated): range halves per iteration.
  std::vector<double> range_per_iter;
  for (std::uint32_t i = 0; i < iterations; ++i) {
    double lo = 1e300, hi = -1e300;
    for (NodeId v = 0; v < c.n; ++v) {
      if (mask[v]) continue;
      lo = std::min(lo, result.trajectories[v][i]);
      hi = std::max(hi, result.trajectories[v][i]);
    }
    range_per_iter.push_back(hi - lo);
  }
  double allowed = ell;
  for (std::uint32_t i = 0; i < iterations; ++i) {
    allowed /= 2.0;
    EXPECT_LE(range_per_iter[i], allowed + 1e-9)
        << "iteration " << i << " with adversary " << c.adversary;
  }
}

std::vector<ApaCase> make_cases() {
  std::vector<ApaCase> cases;
  std::set<std::tuple<std::uint32_t, std::uint32_t, int>> seen;
  for (std::uint32_t n : {3u, 4u, 5u, 7u, 9u, 12u}) {
    const std::uint32_t f_max = (n + 1) / 2 - 1;
    for (std::uint32_t f : {0u, f_max / 2, f_max}) {
      if (f == 0 && n > 4) continue;  // keep the grid lean
      for (int adversary = 0; adversary < 5; ++adversary) {
        if (f == 0 && adversary != 0) continue;
        if (!seen.insert({n, f, adversary}).second) continue;
        cases.push_back(ApaCase{n, f, adversary, 1000u + n * 17 + f});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ApaAdversarial, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<ApaCase>& info) {
      const auto& c = info.param;
      return "n" + std::to_string(c.n) + "_f" + std::to_string(c.f) + "_adv" +
             std::to_string(c.adversary);
    });

TEST(Apa, Corollary2RoundCount) {
  // ε-agreement needs ⌈log2(ℓ/ε)⌉ iterations = 2⌈log2(ℓ/ε)⌉ rounds.
  const std::uint32_t n = 7;
  const std::uint32_t f = 3;
  crypto::Pki pki(n, crypto::Pki::Kind::kSymbolic, 5);
  const std::vector<bool> mask = faulty_mask(n, f);
  std::vector<double> inputs(n, 0.0);
  for (NodeId v = 0; v < n - f; ++v) inputs[v] = static_cast<double>(v);
  const double ell = static_cast<double>(n - f - 1);
  const double eps = 0.05;
  const auto iterations =
      static_cast<std::uint32_t>(std::ceil(std::log2(ell / eps)));

  EquivocatorSyncAdversary adversary(faulty_ids(mask), n, pki);
  const auto result = run_apa(n, f, mask, inputs, iterations, &adversary, pki);

  double lo = 1e300, hi = -1e300;
  for (NodeId v = 0; v < n; ++v) {
    if (mask[v]) continue;
    lo = std::min(lo, result.outputs[v]);
    hi = std::max(hi, result.outputs[v]);
  }
  EXPECT_LE(hi - lo, eps + 1e-9);
}

TEST(Apa, RejectsExcessiveF) {
  crypto::Pki pki(4, crypto::Pki::Kind::kSymbolic, 1);
  EXPECT_THROW(ApaNode(0, 4, 2, pki, 0.0, 1), util::CheckFailure);
}

TEST(Apa, BotCountsVisible) {
  const std::uint32_t n = 4;
  crypto::Pki pki(n, crypto::Pki::Kind::kSymbolic, 2);
  const auto mask = faulty_mask(n, 1);
  SilentSyncAdversary adversary(faulty_ids(mask), n, pki);
  SyncNetwork net(n, mask, pki);
  std::vector<std::unique_ptr<ApaNode>> nodes(n);
  for (NodeId v = 0; v < n; ++v) {
    if (mask[v]) continue;
    nodes[v] = std::make_unique<ApaNode>(v, n, 1, pki, 1.0, 1);
    net.set_protocol(v, nodes[v].get());
  }
  net.set_adversary(&adversary);
  net.run_rounds(2);
  for (NodeId v = 0; v < n; ++v) {
    if (mask[v]) continue;
    ASSERT_EQ(nodes[v]->bot_counts().size(), 1u);
    EXPECT_EQ(nodes[v]->bot_counts()[0], 1u);  // the silent faulty dealer
  }
}

}  // namespace
}  // namespace crusader::sync
