#include "sim/trace.hpp"

#include <gtest/gtest.h>
#include <vector>

#include "util/check.hpp"

namespace crusader::sim {
namespace {

PulseTrace make_trace() {
  // 3 nodes, node 2 faulty. Honest pulses:
  //   node 0: 1.0, 3.0, 5.0
  //   node 1: 1.2, 3.1, 5.4
  PulseTrace trace(3, {false, false, true});
  trace.record(0, 1.0, 1.0);
  trace.record(1, 1.2, 1.2);
  trace.record(0, 3.0, 3.0);
  trace.record(1, 3.1, 3.1);
  trace.record(0, 5.0, 5.0);
  trace.record(1, 5.4, 5.4);
  trace.record(2, 100.0, 100.0);  // faulty noise, ignored by metrics
  return trace;
}

TEST(PulseTrace, SkewPerRound) {
  const auto trace = make_trace();
  EXPECT_NEAR(trace.skew(0), 0.2, 1e-12);
  EXPECT_NEAR(trace.skew(1), 0.1, 1e-12);
  EXPECT_NEAR(trace.skew(2), 0.4, 1e-12);
}

TEST(PulseTrace, MaxSkewAndWindow) {
  const auto trace = make_trace();
  EXPECT_NEAR(trace.max_skew(), 0.4, 1e-12);
  EXPECT_NEAR(trace.max_skew(1), 0.4, 1e-12);
  EXPECT_NEAR(trace.max_skew(2), 0.4, 1e-12);
}

TEST(PulseTrace, CompleteRoundsIsHonestMin) {
  PulseTrace trace(2, {false, false});
  trace.record(0, 1.0, 1.0);
  trace.record(0, 2.0, 2.0);
  trace.record(1, 1.1, 1.1);
  EXPECT_EQ(trace.complete_rounds(), 1u);
}

TEST(PulseTrace, PeriodsMatchDefinition3) {
  const auto trace = make_trace();
  // P_min = min over r of (min p_{r+1} − max p_r):
  //   r=0: min(3.0,3.1) − max(1.0,1.2) = 1.8
  //   r=1: min(5.0,5.4) − max(3.0,3.1) = 1.9
  EXPECT_NEAR(trace.min_period(), 1.8, 1e-12);
  // P_max = max over r of (max p_{r+1} − min p_r):
  //   r=0: 3.1 − 1.0 = 2.1 ; r=1: 5.4 − 3.0 = 2.4
  EXPECT_NEAR(trace.max_period(), 2.4, 1e-12);
}

TEST(PulseTrace, Liveness) {
  const auto trace = make_trace();
  EXPECT_TRUE(trace.live(3));
  EXPECT_FALSE(trace.live(4));
}

TEST(PulseTrace, HonestSet) {
  const auto trace = make_trace();
  EXPECT_EQ(trace.honest(), (std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(trace.is_faulty(2));
  EXPECT_FALSE(trace.is_faulty(0));
}

TEST(PulseTrace, MonotonicityEnforced) {
  PulseTrace trace(1, {false});
  trace.record(0, 2.0, 2.0);
  EXPECT_THROW(trace.record(0, 1.0, 1.0), util::CheckFailure);
}

TEST(PulseTrace, SkewsVector) {
  const auto trace = make_trace();
  const auto skews = trace.skews();
  ASSERT_EQ(skews.size(), 3u);
  EXPECT_NEAR(skews[0], 0.2, 1e-12);
  EXPECT_NEAR(skews[2], 0.4, 1e-12);
}

TEST(PulseTrace, OutOfRangeQueriesThrow) {
  const auto trace = make_trace();
  EXPECT_THROW((void)trace.pulse_time(0, 9), util::CheckFailure);
  EXPECT_THROW((void)trace.pulse_time(7, 0), util::CheckFailure);
}

}  // namespace
}  // namespace crusader::sim
