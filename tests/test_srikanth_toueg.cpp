// Authenticated Srikanth–Toueg baseline: skew ≤ d at f = ⌈n/2⌉ − 1 — the
// Θ(d)-skew comparison point of the paper ([28], [21], [2]).

#include "baselines/srikanth_toueg.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <vector>

#include "core/adversaries.hpp"
#include "helpers.hpp"

namespace crusader::baselines {
namespace {

struct StCase {
  std::uint32_t n;
  std::uint32_t f_actual;
  core::ByzStrategy strategy;
  std::uint64_t seed;
};

class StResilience : public ::testing::TestWithParam<StCase> {};

TEST_P(StResilience, SkewAtMostDAndLive) {
  const auto c = GetParam();
  const auto model = crusader::testing::small_model(
      c.n, sim::ModelParams::max_faults_signed(c.n));

  const std::size_t rounds = 15;
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kSrikanthToueg, model, c.f_actual, c.strategy, c.seed,
      rounds, sim::ClockKind::kSpread, sim::DelayKind::kRandom);

  ASSERT_TRUE(result.trace.live(rounds))
      << "only " << result.trace.complete_rounds() << " rounds";
  EXPECT_TRUE(result.violations.empty());
  // Certificate relay bounds the skew by one message delay.
  EXPECT_LE(result.trace.max_skew(), model.d + 1e-9);
}

std::vector<StCase> st_cases() {
  std::vector<StCase> cases;
  std::uint64_t seed = 600;
  for (std::uint32_t n : {3u, 5u, 8u}) {
    const std::uint32_t f = sim::ModelParams::max_faults_signed(n);
    for (auto strategy :
         {core::ByzStrategy::kCrash, core::ByzStrategy::kRandom,
          core::ByzStrategy::kReplay}) {
      cases.push_back(StCase{n, f, strategy, seed++});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StResilience, ::testing::ValuesIn(st_cases()),
    [](const ::testing::TestParamInfo<StCase>& info) {
      const auto& c = info.param;
      std::string name = core::to_string(c.strategy);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      std::string out = "n";
      out += std::to_string(c.n);
      out += "_f";
      out += std::to_string(c.f_actual);
      out += '_';
      out += name;
      return out;
    });

TEST(SrikanthToueg, CrashFaultsOnlyGiveUScaleSkew) {
  // Without Byzantine help ST's pulses are all triggered by the same last
  // ready broadcast, so the skew collapses to delay-uncertainty scale — the
  // Θ(d) skew is *adversarial*, not average-case.
  sim::ModelParams model = crusader::testing::small_model(5, 2);
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kSrikanthToueg, model, 2, core::ByzStrategy::kCrash, 5,
      15, sim::ClockKind::kSpread, sim::DelayKind::kSplit);
  ASSERT_TRUE(result.trace.live(15));
  EXPECT_LT(result.trace.max_skew(5), 5.0 * model.u);
}

TEST(SrikanthToueg, AcceleratorAttackRealizesOrderDSkew) {
  // The headline gap (paper, Section 1): ST's worst-case skew is Θ(d); CPS
  // holds Θ(u + (ϑ−1)d). Faulty nodes complete one target's certificates
  // early; the target pulses a full message delay before everyone else.
  sim::ModelParams model = crusader::testing::small_model(5, 2);
  model.u = 0.002;
  model.u_tilde = 0.002;
  const auto setup = make_setup(ProtocolKind::kSrikanthToueg, model);
  const auto cps_setup = make_setup(ProtocolKind::kCps, model);
  ASSERT_TRUE(cps_setup.feasible);

  auto honest = make_protocol_factory(setup);
  auto byz = core::make_st_accelerator_factory(/*target=*/4);
  auto config = crusader::testing::world_config(model, setup, 15, 5);
  config.faulty = sim::default_faulty_set(2);
  sim::World world(config, honest, byz);
  const auto st = world.run();

  const auto cps = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, 2, core::ByzStrategy::kPullEarly, 5, 15,
      sim::ClockKind::kSpread, sim::DelayKind::kSplit);

  ASSERT_TRUE(st.trace.live(15));
  ASSERT_TRUE(cps.trace.live(15));
  const double st_skew = st.trace.max_skew(5);
  const double cps_skew = cps.trace.max_skew(5);
  EXPECT_GT(st_skew, 0.5 * model.d)
      << "accelerator should force d-scale skew";
  EXPECT_LE(cps_skew, cps_setup.cps.S + 1e-9);
  EXPECT_GT(st_skew, 5.0 * cps_skew)
      << "ST skew " << st_skew << " vs CPS " << cps_skew;
}

TEST(SrikanthToueg, FaultyCanAccelerateButNotDesynchronize) {
  // Byzantine signatures can complete certificates early (rounds speed up),
  // but skew stays ≤ d and rounds stay ordered.
  const auto model = crusader::testing::small_model(5, 2);
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kSrikanthToueg, model, 2, core::ByzStrategy::kRandom, 17,
      15);
  ASSERT_TRUE(result.trace.live(15));
  EXPECT_LE(result.trace.max_skew(), model.d + 1e-9);
  EXPECT_GT(result.trace.min_period(), 0.0);
}

TEST(SrikanthToueg, CertificatesCarrySignatures) {
  const auto model = crusader::testing::small_model(4, 1);
  const auto setup = make_setup(ProtocolKind::kSrikanthToueg, model);
  std::vector<SrikanthTouegNode*> nodes(model.n, nullptr);
  StConfig config;
  config.params = setup.st;
  sim::HonestFactory honest = [&nodes, config](NodeId v) {
    auto node = std::make_unique<SrikanthTouegNode>(config);
    nodes[v] = node.get();
    return node;
  };
  auto world_config = crusader::testing::world_config(model, setup, 10, 3);
  sim::World world(world_config, honest, nullptr);
  const auto result = world.run();
  EXPECT_GT(result.signatures_carried, 0u);
  for (auto* node : nodes) {
    ASSERT_NE(node, nullptr);
    EXPECT_GT(node->stats().certificates_relayed, 0u);
    EXPECT_EQ(node->stats().invalid_signatures, 0u);
  }
}

TEST(SrikanthToueg, MaxRoundsRespected) {
  const auto model = crusader::testing::small_model(4, 1);
  const auto setup = make_setup(ProtocolKind::kSrikanthToueg, model);
  auto factory = make_protocol_factory(setup, /*max_rounds=*/4);
  auto config = crusader::testing::world_config(model, setup, 20, 1);
  sim::World world(config, factory, nullptr);
  const auto result = world.run();
  for (NodeId v = 0; v < model.n; ++v)
    EXPECT_EQ(result.trace.pulse_count(v), 4u);
}

}  // namespace
}  // namespace crusader::baselines
