// Allocator stress/property tests for the fast-path storage layer: the
// MessageArena payload slab and the slab-backed EventQueue. These are the
// invariants the batched delivery path leans on — slot reuse bounds memory by
// the high-water live count, generation tags catch staleness, and equal-time
// events fire FIFO.

#include <array>
#include <cstdint>
#include <gtest/gtest.h>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/message.hpp"
#include "sim/message_arena.hpp"
#include "util/check.hpp"

namespace crusader::sim {
namespace {

Message payload(std::uint64_t round) {
  Message m;
  m.round = static_cast<Round>(round);
  m.sigs.resize(3);  // exercise the heap-backed part of the payload
  return m;
}

TEST(MessageArena, MillionMessageChurnStaysBounded) {
  // A rotating window of live refs, one acquire per logical message: the
  // slab must track the high-water live count (the window), not the lifetime
  // acquire count. This is the allocation pattern of steady-state broadcast
  // traffic, and the test doubles as the ASan/UBSan churn workload.
  constexpr std::size_t kWindow = 64;
  constexpr std::uint64_t kTotal = 1'000'000;

  MessageArena arena;
  std::vector<MessageArena::Ref> window;
  window.reserve(kWindow);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    auto ref = arena.acquire(payload(i));
    ASSERT_EQ((*ref).round, static_cast<Round>(i));
    if (window.size() < kWindow) {
      window.push_back(std::move(ref));
    } else {
      window[i % kWindow] = std::move(ref);  // releases the oldest in-slot
    }
    ASSERT_LE(arena.live(), kWindow + 1);
    ASSERT_LE(arena.slab_capacity(), kWindow + 1);
  }
  EXPECT_EQ(arena.acquired(), kTotal);
  window.clear();
  EXPECT_EQ(arena.live(), 0u);
}

TEST(MessageArena, CopySharesSlotAndLastReleaseRecycles) {
  MessageArena arena;
  {
    auto a = arena.acquire(payload(7));
    EXPECT_EQ(arena.live(), 1u);
    {
      MessageArena::Ref b = a;  // copy bumps the refcount, not the slab
      EXPECT_EQ(arena.live(), 1u);
      EXPECT_EQ(arena.slab_capacity(), 1u);
      EXPECT_EQ((*b).round, 7u);
    }
    EXPECT_EQ(arena.live(), 1u);  // a still holds the slot
    EXPECT_EQ((*a).round, 7u);
  }
  EXPECT_EQ(arena.live(), 0u);

  // The recycled slot is reused: capacity stays at one across a fresh
  // acquire, and the payload is the new one.
  const auto c = arena.acquire(payload(9));
  EXPECT_EQ(arena.slab_capacity(), 1u);
  EXPECT_EQ((*c).round, 9u);
  EXPECT_EQ(arena.acquired(), 2u);  // copies share; only acquire() counts
}

TEST(MessageArena, EmptyAndMovedFromRefDerefThrows) {
  MessageArena arena;
  MessageArena::Ref empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  EXPECT_THROW((void)*empty, util::CheckFailure);

  auto a = arena.acquire(payload(1));
  const MessageArena::Ref b = std::move(a);
  // NOLINTNEXTLINE(bugprone-use-after-move): the staleness check is the point
  EXPECT_THROW((void)*a, util::CheckFailure);
  EXPECT_EQ((*b).round, 1u);
}

TEST(MessageArena, RefOutlivesArenaHandle) {
  // A Ref captured in a queued event closure can outlive the Network (and
  // its arena handle) during world teardown; shared slab state keeps the
  // payload alive.
  MessageArena::Ref survivor;
  {
    MessageArena arena;
    survivor = arena.acquire(payload(3));
  }
  EXPECT_EQ((*survivor).round, 3u);
}

TEST(EventQueue, EqualTimeEventsFireInInsertionOrder) {
  // The FIFO tie-break is what makes batched broadcast order-identical to
  // the per-receiver path: equal-time aggregate events must fire in
  // scheduling order.
  constexpr int kEvents = 100;
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < kEvents; ++i)
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, ScheduledCountIsLifetimeMonotone) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(q.schedule(static_cast<double>(i), [] {}));
  EXPECT_EQ(q.scheduled_count(), 10u);
  EXPECT_EQ(q.pending(), 10u);

  EXPECT_TRUE(q.cancel(ids[3]));
  EXPECT_EQ(q.scheduled_count(), 10u);  // cancels don't rewind the count
  EXPECT_EQ(q.pending(), 9u);

  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(q.scheduled_count(), 10u);  // nor do fires
  EXPECT_EQ(q.pending(), 0u);

  q.schedule(0.0, [] {});
  EXPECT_EQ(q.scheduled_count(), 11u);
}

TEST(EventQueue, SlabTracksHighWaterPendingNotLifetime) {
  EventQueue q;
  // Schedule/fire one at a time: high-water pending is 1, so the slab must
  // stay at one slot no matter how many events pass through.
  for (int i = 0; i < 10'000; ++i) {
    q.schedule(static_cast<double>(i), [] {});
    q.pop_and_run();
  }
  EXPECT_EQ(q.slab_capacity(), 1u);
  EXPECT_EQ(q.scheduled_count(), 10'000u);
}

TEST(EventQueue, CancelAfterFireOrCancelIsStaleNoOp) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(a));
  EXPECT_FALSE(q.cancel(a));  // second cancel: generation already bumped

  const EventId b = q.schedule(1.0, [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.cancel(b));  // fired: id is stale

  // The recycled slot's new id must not be forgeable from the old one.
  bool fired = false;
  const EventId c = q.schedule(2.0, [&fired] { fired = true; });
  EXPECT_NE(b, c);            // same slot, bumped generation
  EXPECT_FALSE(q.cancel(b));  // old id still dead
  q.pop_and_run();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, InlineAndSpilledClosuresBothExecute) {
  // EventFn has a 48-byte inline buffer; delivery closures are sized to fit.
  // Both the inline case and the heap-spill case (the relay aggregate at 56
  // bytes) must survive the move into and out of the slab.
  EventQueue q;
  // 40-byte array + 8-byte reference = 48 bytes: exactly the inline buffer.
  std::array<std::uint64_t, 5> inline_capture{};
  // 64-byte array + reference = 72 bytes: forced heap spill.
  std::array<std::uint64_t, 8> big_capture{};
  for (std::size_t i = 0; i < inline_capture.size(); ++i)
    inline_capture[i] = i + 1;
  for (std::size_t i = 0; i < big_capture.size(); ++i) big_capture[i] = i + 1;

  std::uint64_t inline_sum = 0;
  std::uint64_t big_sum = 0;
  q.schedule(1.0, [inline_capture, &inline_sum] {
    for (const auto x : inline_capture) inline_sum += x;
  });
  q.schedule(2.0, [big_capture, &big_sum] {
    for (const auto x : big_capture) big_sum += x;
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(inline_sum, 15u);
  EXPECT_EQ(big_sum, 36u);
}

}  // namespace
}  // namespace crusader::sim
