// Dynamic-network world: seeded topology schedules (churn), their runner
// integration, and the gradient (local-skew) metrics. The anchor guarantees:
// schedules replay deterministically from (seed, policy), static cells stay
// byte-identical to the pre-dynamic sweep surface, and churned cells stay
// live with local_skew bounded by the global skew row for row.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cps.hpp"
#include "core/params.hpp"
#include "relay/flood_world.hpp"
#include "relay/schedule.hpp"
#include "relay/topology.hpp"
#include "runner/campaign.hpp"
#include "runner/export.hpp"
#include "runner/history.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "util/check.hpp"

namespace crusader::runner {
namespace {

constexpr std::uint32_t kInfDist = std::numeric_limits<std::uint32_t>::max();

relay::ChurnPolicy churn_policy(double rate, std::uint32_t batch,
                                relay::ReconnectPolicy reconnect =
                                    relay::ReconnectPolicy::kRandom) {
  relay::ChurnPolicy policy;
  policy.churn_rate = rate;
  policy.join_batch = batch;
  policy.reconnect = reconnect;
  return policy;
}

/// Every pair of live nodes can reach each other through live nodes only.
void expect_live_connected(const relay::Topology& topo,
                           const std::vector<bool>& down) {
  for (NodeId s = 0; s < topo.n(); ++s) {
    if (down[s]) continue;
    for (NodeId t = s + 1; t < topo.n(); ++t) {
      if (down[t]) continue;
      ASSERT_NE(topo.distance(s, t, down), kInfDist)
          << "live pair " << s << "-" << t << " disconnected";
    }
  }
}

TEST(Schedule, GenerateReplaysExactlyFromSeedAndPolicy) {
  const auto topo = relay::Topology::hypercube(4);  // n = 16
  const auto policy =
      churn_policy(0.2, 2, relay::ReconnectPolicy::kPreferential);
  const auto a = relay::TopologySchedule::generate(topo, policy, 12, 99);
  const auto b = relay::TopologySchedule::generate(topo, policy, 12, 99);
  EXPECT_EQ(a.digest(), b.digest());
  ASSERT_EQ(a.deltas().size(), b.deltas().size());
  for (std::size_t e = 0; e < a.deltas().size(); ++e) {
    EXPECT_EQ(a.deltas()[e].joins, b.deltas()[e].joins) << "epoch " << e;
    EXPECT_EQ(a.deltas()[e].removed, b.deltas()[e].removed) << "epoch " << e;
    EXPECT_EQ(a.deltas()[e].added, b.deltas()[e].added) << "epoch " << e;
    EXPECT_EQ(a.deltas()[e].leaves, b.deltas()[e].leaves) << "epoch " << e;
  }
  EXPECT_TRUE(a.dynamic());

  // A different seed or a different policy realizes a different schedule.
  EXPECT_NE(a.digest(),
            relay::TopologySchedule::generate(topo, policy, 12, 100).digest());
  EXPECT_NE(a.digest(),
            relay::TopologySchedule::generate(
                topo, churn_policy(0.2, 2, relay::ReconnectPolicy::kRandom),
                12, 99)
                .digest());
}

TEST(Schedule, EveryEpochGraphIsLiveConnectedWithIsolatedDownNodes) {
  const auto topo = relay::Topology::hypercube(4);
  for (const auto reconnect : {relay::ReconnectPolicy::kRandom,
                               relay::ReconnectPolicy::kPreferential,
                               relay::ReconnectPolicy::kRingRepair}) {
    const auto schedule = relay::TopologySchedule::generate(
        topo, churn_policy(0.25, 3, reconnect), 10, 7);
    for (std::size_t e = 0; e <= schedule.deltas().size(); ++e) {
      const auto graph = schedule.at_epoch(e);
      const auto down = schedule.down_at(e);
      ASSERT_EQ(down.size(), graph.n());
      // The beacon anchor (node n-1) never leaves.
      EXPECT_FALSE(down[graph.n() - 1]) << "epoch " << e;
      for (NodeId v = 0; v < graph.n(); ++v)
        if (down[v])
          EXPECT_TRUE(graph.neighbors(v).empty())
              << "down node " << v << " keeps edges at epoch " << e;
      expect_live_connected(graph, down);
    }
  }
}

TEST(Schedule, StaticScheduleIsDegenerate) {
  const auto topo = relay::Topology::ring(8);
  const auto schedule = relay::TopologySchedule::static_schedule(topo);
  EXPECT_FALSE(schedule.dynamic());
  // No node is ever masked out of the skew metrics on a static schedule.
  const auto churned = schedule.ever_churned();
  EXPECT_EQ(std::count(churned.begin(), churned.end(), true), 0);
  EXPECT_TRUE(schedule.deltas().empty());
  EXPECT_EQ(schedule.at_epoch(5).edge_count(), topo.edge_count());
  EXPECT_FALSE(churn_policy(0.0, 0).dynamic());
  EXPECT_TRUE(churn_policy(0.1, 0).dynamic());
  EXPECT_TRUE(churn_policy(0.0, 1).dynamic());
}

TEST(Spec, InertChurnAxesLeaveStaticKeysUntouched) {
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.topology = TopologyKind::kRing;
  spec.n = 8;
  const auto static_key = spec.key();
  EXPECT_EQ(spec.name().find("churn="), std::string::npos);

  // The reconnect policy means nothing without churn: it must not fork the
  // memo key (or the scenario seed derived from it).
  spec.reconnect = relay::ReconnectPolicy::kRingRepair;
  EXPECT_EQ(spec.key(), static_key);
  EXPECT_FALSE(spec.dynamic());

  // Any real churn forks the key, and the reconnect policy forks it further.
  spec.churn_rate = 0.1;
  EXPECT_TRUE(spec.dynamic());
  const auto churned_key = spec.key();
  EXPECT_NE(churned_key, static_key);
  EXPECT_NE(spec.name().find("churn=0.1"), std::string::npos) << spec.name();
  spec.reconnect = relay::ReconnectPolicy::kRandom;
  EXPECT_NE(spec.key(), churned_key);
}

TEST(Grid, InertChurnCellsCollapseIntoTheClassicGrid) {
  SweepGrid base;
  base.worlds = {WorldKind::kRelay};
  base.protocols = {baselines::ProtocolKind::kFloodProbe};
  base.ns = {8};
  base.fault_loads = {0, SweepGrid::kMaxResilience};
  base.topologies = {TopologyKind::kRing};
  base.rounds = 4;
  const auto plain = base.expand();

  // churn_rate 0 × every reconnect policy is ONE static cell, not three.
  auto inert = base;
  inert.churn_rates = {0.0};
  inert.join_batches = {0};
  inert.reconnects = {relay::ReconnectPolicy::kRandom,
                      relay::ReconnectPolicy::kPreferential,
                      relay::ReconnectPolicy::kRingRepair};
  const auto collapsed = inert.expand();
  ASSERT_EQ(collapsed.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(collapsed[i].key(), plain[i].key()) << "position " << i;

  // A real churn axis adds dynamic cells (fault-free relay points only)
  // while keeping every classic cell.
  auto churned = base;
  churned.churn_rates = {0.0, 0.2};
  const auto grown = churned.expand();
  EXPECT_GT(grown.size(), plain.size());
  std::size_t dynamic_cells = 0;
  for (const auto& spec : grown) {
    if (spec.dynamic()) {
      ++dynamic_cells;
      EXPECT_EQ(spec.f_actual, 0u);
    }
  }
  EXPECT_GT(dynamic_cells, 0u);
}

/// Dynamic sweep grid shared by the determinism tests: static and churned
/// cells (rewires and membership churn) across two reconnect policies.
std::vector<ScenarioSpec> dynamic_specs() {
  SweepGrid grid;
  grid.worlds = {WorldKind::kRelay};
  grid.protocols = {baselines::ProtocolKind::kFloodProbe};
  grid.ns = {12};
  grid.fault_loads = {0};
  grid.topologies = {TopologyKind::kChordalRing};
  grid.churn_rates = {0.0, 0.15};
  grid.join_batches = {0, 1};
  grid.reconnects = {relay::ReconnectPolicy::kRandom,
                     relay::ReconnectPolicy::kRingRepair};
  grid.us = {0.02};
  grid.varthetas = {1.002};
  grid.rounds = 6;
  grid.warmup = 2;
  return grid.expand();
}

TEST(Dynamic, StreamedCsvByteIdenticalAcrossThreadCounts) {
  const auto specs = dynamic_specs();
  ASSERT_GE(specs.size(), 4u);
  std::string csv[2];
  const unsigned threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    RunnerOptions options;
    options.threads = threads[i];
    std::ostringstream os;
    os << csv_header() << '\n';
    run_sweep_streamed(specs, options, [&](const ScenarioResult& r) {
      write_csv_row(os, r);
    });
    csv[i] = os.str();
  }
  EXPECT_EQ(csv[0], csv[1]);
}

TEST(Dynamic, CampaignResumeAfterKillIsByteIdentical) {
  const auto specs = dynamic_specs();
  ASSERT_GE(specs.size(), 5u);
  const std::string dir = ::testing::TempDir();
  const std::string clean_csv = dir + "/dynamic_clean.csv";
  const std::string clean_manifest = dir + "/dynamic_clean.manifest";
  const std::string csv = dir + "/dynamic_killed.csv";
  const std::string manifest = dir + "/dynamic_killed.manifest";
  for (const auto& p : {clean_csv, clean_manifest, csv, manifest})
    std::filesystem::remove(p);

  const auto slurp = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
  };

  {
    CsvCampaign campaign({clean_csv, clean_manifest, 2, 1}, specs);
    run_sweep_streamed(specs, {},
                       [&](const ScenarioResult& r) { campaign.append(r); });
    campaign.finish();
  }
  const std::string clean = slurp(clean_csv);

  {
    CsvCampaign campaign({csv, manifest, 2, 1}, specs);
    for (std::size_t i = 0; i < 3; ++i) campaign.append(run_scenario(specs[i]));
    // no finish(): simulated kill mid-campaign
  }
  std::size_t replayed = 0;
  CsvCampaign resumed({csv, manifest, 2, 1}, specs,
                      [&](const ScenarioResult& r) {
                        EXPECT_TRUE(std::isfinite(r.local_skew) ||
                                    r.rounds_completed == 0);
                        ++replayed;
                      });
  EXPECT_EQ(replayed, resumed.resume_index());
  RunnerOptions options;
  options.threads = 4;
  const std::vector<ScenarioSpec> todo(specs.begin() + resumed.resume_index(),
                                       specs.end());
  run_sweep_streamed(todo, options,
                     [&](const ScenarioResult& r) { resumed.append(r); });
  resumed.finish();
  EXPECT_EQ(slurp(csv), clean);
  for (const auto& p : {clean_csv, clean_manifest, csv, manifest})
    std::filesystem::remove(p);
}

TEST(Dynamic, FastPathAndPlainPathRowsAreIdentical) {
  // The batched MessageArena fast path must stay trace-identical under a
  // mutating topology (joins, leaves, rewires mid-run).
  for (const auto& spec : dynamic_specs()) {
    RunnerOptions fast;
    RunnerOptions plain;
    plain.fast_path = false;
    std::ostringstream fast_row;
    write_csv_row(fast_row, run_scenario(spec, fast));
    std::ostringstream plain_row;
    write_csv_row(plain_row, run_scenario(spec, plain));
    EXPECT_EQ(fast_row.str(), plain_row.str()) << spec.name();
  }
}

TEST(Dynamic, LocalSkewIsBoundedByGlobalSkewRowWise) {
  auto specs = dynamic_specs();
  // A complete-world cell rides along: its local skew degenerates to the
  // global max (every pair is an edge).
  ScenarioSpec flat;
  flat.rounds = 5;
  flat.warmup = 1;
  specs.push_back(flat);
  for (const auto& spec : specs) {
    const auto result = run_scenario(spec);
    ASSERT_TRUE(result.error.empty()) << spec.name() << ": " << result.error;
    if (result.rounds_completed == 0) continue;
    EXPECT_TRUE(std::isfinite(result.local_skew)) << spec.name();
    EXPECT_LE(result.local_skew, result.max_skew + 1e-12) << spec.name();
    if (spec.world == WorldKind::kComplete)
      EXPECT_EQ(result.local_skew, result.max_skew);
    if (std::isfinite(result.predicted_skew) && result.predicted_skew > 0.0)
      EXPECT_NEAR(result.local_skew_ratio,
                  result.local_skew / result.predicted_skew, 1e-12);
  }
}

TEST(Dynamic, PerRoundLocalSkewSeriesCoversEveryCompletedRound) {
  // Direct world run (the runner only exports the series max): one local
  // skew sample per completed round, measured on that round's live graph.
  relay::RelayConfig config;
  config.topology = relay::Topology::hypercube(4);
  config.hop_model.n = 16;
  config.hop_model.f = 0;
  config.hop_model.d = 1.0;
  config.hop_model.u = 0.01;
  config.hop_model.u_tilde = 0.01;
  config.hop_model.vartheta = 1.001;
  config.seed = 11;

  auto schedule = std::make_shared<relay::TopologySchedule>(
      relay::TopologySchedule::generate(config.topology, churn_policy(0.2, 1),
                                        10, 21));
  ASSERT_TRUE(schedule->dynamic());
  const auto effective = relay::effective_from_hops(
      config.hop_model, relay::analyze_schedule_worst_hops(*schedule, 0));
  const auto params = core::derive_cps_params(effective.model);
  ASSERT_TRUE(params.feasible);
  const std::size_t rounds = 8;
  config.initial_offset = params.S;
  config.horizon = params.S + (rounds + 2) * params.p_max;
  config.schedule = schedule;
  config.epoch_start = config.initial_offset + params.p_max;
  config.epoch_length = params.p_max;

  core::CpsConfig cps;
  cps.params = params;
  relay::RelayWorld world(
      config, [cps](NodeId) { return std::make_unique<core::CpsNode>(cps); },
      effective);
  const auto run = world.run();
  ASSERT_TRUE(run.trace.live(rounds));

  const auto series = local_skew_series(run.trace, *schedule);
  ASSERT_EQ(series.size(), run.trace.skews().size());
  ASSERT_GE(series.size(), rounds);
  double worst = 0.0;
  for (const double s : series) {
    ASSERT_TRUE(std::isfinite(s));
    ASSERT_GE(s, 0.0);
    worst = std::max(worst, s);
  }
  EXPECT_LE(worst, run.trace.max_skew() + 1e-12);
}

TEST(Dynamic, LargeChurnedCellCompletesLive) {
  // The headline acceptance cell: n = 256 under real churn completes every
  // round, with the gradient metric exported and bounded by the global skew.
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.protocol = baselines::ProtocolKind::kFloodProbe;
  spec.topology = TopologyKind::kHypercube;
  spec.crypto = CryptoMode::kAbstract;
  spec.n = 256;
  spec.churn_rate = 0.05;
  spec.rounds = 6;
  spec.warmup = 2;
  const auto result = run_scenario(spec);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.live);
  EXPECT_EQ(result.rounds_completed, spec.rounds);
  EXPECT_TRUE(std::isfinite(result.local_skew));
  EXPECT_LE(result.local_skew, result.max_skew + 1e-12);
  EXPECT_TRUE(result.d_eff_exact);  // n = 256 is within the exact budget
  EXPECT_FALSE(violates_gate(result, 1e9));
}

TEST(Dynamic, EffectiveCacheRefusesDynamicSchedules) {
  // The memo key does not fold the schedule, so serving a dynamic cell from
  // the cache would silently reuse a static analysis.
  relay::RelayConfig config;
  config.topology = relay::Topology::ring(8);
  config.hop_model.n = 8;
  config.hop_model.f = 0;
  config.hop_model.d = 1.0;
  config.hop_model.u = 0.01;
  config.hop_model.u_tilde = 0.01;
  config.hop_model.vartheta = 1.001;
  relay::EffectiveCache cache;
  EXPECT_NO_THROW((void)cache.get(1, config));
  config.schedule = std::make_shared<relay::TopologySchedule>(
      relay::TopologySchedule::generate(config.topology, churn_policy(0.2, 0),
                                        6, 3));
  ASSERT_TRUE(config.schedule->dynamic());
  EXPECT_THROW((void)cache.get(2, config), util::CheckFailure);
}

TEST(History, GradientTokensAreOptionalAndRoundTrip) {
  HistoryEntry entry;
  entry.seed = 3;
  entry.cells = 12;
  HistoryEntry::WorldRatio relay_ratio;
  relay_ratio.world = WorldKind::kRelay;
  relay_ratio.max = 0.75;
  relay_ratio.mean = 0.5;
  relay_ratio.count = 12;
  entry.worlds.push_back(relay_ratio);

  // Without dynamic cells the line is byte-compatible with the pre-dynamic
  // format: no l* tokens at all.
  const auto static_line = format_history_line(entry);
  EXPECT_EQ(static_line.find("lmax"), std::string::npos) << static_line;
  const auto static_parsed = parse_history_line(static_line);
  ASSERT_TRUE(static_parsed.has_value());
  EXPECT_EQ(static_parsed->worlds[0].lcount, 0u);

  entry.worlds[0].lmax = 0.9;
  entry.worlds[0].lmean = 0.6;
  entry.worlds[0].lcount = 4;
  const auto line = format_history_line(entry);
  const auto parsed = parse_history_line(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->worlds[0].lmax, 0.9);
  EXPECT_EQ(parsed->worlds[0].lmean, 0.6);
  EXPECT_EQ(parsed->worlds[0].lcount, 4u);

  // Trend gate: a local-skew regression fails even when the global max held.
  HistoryEntry regressed = entry;
  regressed.worlds[0].lmax = 1.2;
  const auto failures = check_trend(entry, regressed, 5.0);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("local_skew_ratio"), std::string::npos)
      << failures[0];
  // A baseline without dynamic cells says nothing about local skew.
  HistoryEntry no_local_baseline = entry;
  no_local_baseline.worlds[0].lcount = 0;
  EXPECT_TRUE(check_trend(no_local_baseline, regressed, 5.0).empty());
}

}  // namespace
}  // namespace crusader::runner
