// Dynamic-network world: seeded topology schedules (churn), their runner
// integration, and the gradient (local-skew) metrics. The anchor guarantees:
// schedules replay deterministically from (seed, policy), static cells stay
// byte-identical to the pre-dynamic sweep surface, and churned cells stay
// live with local_skew bounded by the global skew row for row.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/cps.hpp"
#include "core/params.hpp"
#include "relay/flood_world.hpp"
#include "relay/schedule.hpp"
#include "relay/topology.hpp"
#include "runner/campaign.hpp"
#include "runner/export.hpp"
#include "runner/history.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "util/check.hpp"

namespace crusader::runner {
namespace {

constexpr std::uint32_t kInfDist = std::numeric_limits<std::uint32_t>::max();

relay::ChurnPolicy churn_policy(double rate, std::uint32_t batch,
                                relay::ReconnectPolicy reconnect =
                                    relay::ReconnectPolicy::kRandom) {
  relay::ChurnPolicy policy;
  policy.churn_rate = rate;
  policy.join_batch = batch;
  policy.reconnect = reconnect;
  return policy;
}

/// Every pair of live nodes can reach each other through live nodes only.
void expect_live_connected(const relay::Topology& topo,
                           const std::vector<bool>& down) {
  for (NodeId s = 0; s < topo.n(); ++s) {
    if (down[s]) continue;
    for (NodeId t = s + 1; t < topo.n(); ++t) {
      if (down[t]) continue;
      ASSERT_NE(topo.distance(s, t, down), kInfDist)
          << "live pair " << s << "-" << t << " disconnected";
    }
  }
}

TEST(Schedule, GenerateReplaysExactlyFromSeedAndPolicy) {
  const auto topo = relay::Topology::hypercube(4);  // n = 16
  const auto policy =
      churn_policy(0.2, 2, relay::ReconnectPolicy::kPreferential);
  const auto a = relay::TopologySchedule::generate(topo, policy, 12, 99);
  const auto b = relay::TopologySchedule::generate(topo, policy, 12, 99);
  EXPECT_EQ(a.digest(), b.digest());
  ASSERT_EQ(a.deltas().size(), b.deltas().size());
  for (std::size_t e = 0; e < a.deltas().size(); ++e) {
    EXPECT_EQ(a.deltas()[e].joins, b.deltas()[e].joins) << "epoch " << e;
    EXPECT_EQ(a.deltas()[e].removed, b.deltas()[e].removed) << "epoch " << e;
    EXPECT_EQ(a.deltas()[e].added, b.deltas()[e].added) << "epoch " << e;
    EXPECT_EQ(a.deltas()[e].leaves, b.deltas()[e].leaves) << "epoch " << e;
  }
  EXPECT_TRUE(a.dynamic());

  // A different seed or a different policy realizes a different schedule.
  EXPECT_NE(a.digest(),
            relay::TopologySchedule::generate(topo, policy, 12, 100).digest());
  EXPECT_NE(a.digest(),
            relay::TopologySchedule::generate(
                topo, churn_policy(0.2, 2, relay::ReconnectPolicy::kRandom),
                12, 99)
                .digest());
}

TEST(Schedule, EveryEpochGraphIsLiveConnectedWithIsolatedDownNodes) {
  const auto topo = relay::Topology::hypercube(4);
  for (const auto reconnect : {relay::ReconnectPolicy::kRandom,
                               relay::ReconnectPolicy::kPreferential,
                               relay::ReconnectPolicy::kRingRepair}) {
    const auto schedule = relay::TopologySchedule::generate(
        topo, churn_policy(0.25, 3, reconnect), 10, 7);
    for (std::size_t e = 0; e <= schedule.deltas().size(); ++e) {
      const auto graph = schedule.at_epoch(e);
      const auto down = schedule.down_at(e);
      ASSERT_EQ(down.size(), graph.n());
      // The beacon anchor (node n-1) never leaves.
      EXPECT_FALSE(down[graph.n() - 1]) << "epoch " << e;
      for (NodeId v = 0; v < graph.n(); ++v)
        if (down[v])
          EXPECT_TRUE(graph.neighbors(v).empty())
              << "down node " << v << " keeps edges at epoch " << e;
      expect_live_connected(graph, down);
    }
  }
}

TEST(Schedule, StaticScheduleIsDegenerate) {
  const auto topo = relay::Topology::ring(8);
  const auto schedule = relay::TopologySchedule::static_schedule(topo);
  EXPECT_FALSE(schedule.dynamic());
  // No node is ever masked out of the skew metrics on a static schedule.
  const auto churned = schedule.ever_churned();
  EXPECT_EQ(std::count(churned.begin(), churned.end(), true), 0);
  EXPECT_TRUE(schedule.deltas().empty());
  EXPECT_EQ(schedule.at_epoch(5).edge_count(), topo.edge_count());
  EXPECT_FALSE(churn_policy(0.0, 0).dynamic());
  EXPECT_TRUE(churn_policy(0.1, 0).dynamic());
  EXPECT_TRUE(churn_policy(0.0, 1).dynamic());
}

TEST(Spec, InertChurnAxesLeaveStaticKeysUntouched) {
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.topology = TopologyKind::kRing;
  spec.n = 8;
  const auto static_key = spec.key();
  EXPECT_EQ(spec.name().find("churn="), std::string::npos);

  // The reconnect policy means nothing without churn: it must not fork the
  // memo key (or the scenario seed derived from it).
  spec.reconnect = relay::ReconnectPolicy::kRingRepair;
  EXPECT_EQ(spec.key(), static_key);
  EXPECT_FALSE(spec.dynamic());

  // Any real churn forks the key, and the reconnect policy forks it further.
  spec.churn_rate = 0.1;
  EXPECT_TRUE(spec.dynamic());
  const auto churned_key = spec.key();
  EXPECT_NE(churned_key, static_key);
  EXPECT_NE(spec.name().find("churn=0.1"), std::string::npos) << spec.name();
  spec.reconnect = relay::ReconnectPolicy::kRandom;
  EXPECT_NE(spec.key(), churned_key);
}

TEST(Grid, InertChurnCellsCollapseIntoTheClassicGrid) {
  SweepGrid base;
  base.worlds = {WorldKind::kRelay};
  base.protocols = {baselines::ProtocolKind::kFloodProbe};
  base.ns = {8};
  base.fault_loads = {0, SweepGrid::kMaxResilience};
  base.topologies = {TopologyKind::kRing};
  base.rounds = 4;
  const auto plain = base.expand();

  // churn_rate 0 × every reconnect policy is ONE static cell, not three.
  auto inert = base;
  inert.churn_rates = {0.0};
  inert.join_batches = {0};
  inert.reconnects = {relay::ReconnectPolicy::kRandom,
                      relay::ReconnectPolicy::kPreferential,
                      relay::ReconnectPolicy::kRingRepair};
  const auto collapsed = inert.expand();
  ASSERT_EQ(collapsed.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(collapsed[i].key(), plain[i].key()) << "position " << i;

  // A real churn axis adds dynamic cells (fault-free relay points only)
  // while keeping every classic cell.
  auto churned = base;
  churned.churn_rates = {0.0, 0.2};
  const auto grown = churned.expand();
  EXPECT_GT(grown.size(), plain.size());
  std::size_t dynamic_cells = 0;
  for (const auto& spec : grown) {
    if (spec.dynamic()) {
      ++dynamic_cells;
      EXPECT_EQ(spec.f_actual, 0u);
    }
  }
  EXPECT_GT(dynamic_cells, 0u);
}

/// Dynamic sweep grid shared by the determinism tests: static and churned
/// cells (rewires and membership churn) across two reconnect policies.
std::vector<ScenarioSpec> dynamic_specs() {
  SweepGrid grid;
  grid.worlds = {WorldKind::kRelay};
  grid.protocols = {baselines::ProtocolKind::kFloodProbe};
  grid.ns = {12};
  grid.fault_loads = {0};
  grid.topologies = {TopologyKind::kChordalRing};
  grid.churn_rates = {0.0, 0.15};
  grid.join_batches = {0, 1};
  grid.reconnects = {relay::ReconnectPolicy::kRandom,
                     relay::ReconnectPolicy::kRingRepair};
  grid.us = {0.02};
  grid.varthetas = {1.002};
  grid.rounds = 6;
  grid.warmup = 2;
  return grid.expand();
}

TEST(Dynamic, StreamedCsvByteIdenticalAcrossThreadCounts) {
  const auto specs = dynamic_specs();
  ASSERT_GE(specs.size(), 4u);
  std::string csv[2];
  const unsigned threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    RunnerOptions options;
    options.threads = threads[i];
    std::ostringstream os;
    os << csv_header() << '\n';
    run_sweep_streamed(specs, options, [&](const ScenarioResult& r) {
      write_csv_row(os, r);
    });
    csv[i] = os.str();
  }
  EXPECT_EQ(csv[0], csv[1]);
}

TEST(Dynamic, CampaignResumeAfterKillIsByteIdentical) {
  const auto specs = dynamic_specs();
  ASSERT_GE(specs.size(), 5u);
  const std::string dir = ::testing::TempDir();
  const std::string clean_csv = dir + "/dynamic_clean.csv";
  const std::string clean_manifest = dir + "/dynamic_clean.manifest";
  const std::string csv = dir + "/dynamic_killed.csv";
  const std::string manifest = dir + "/dynamic_killed.manifest";
  for (const auto& p : {clean_csv, clean_manifest, csv, manifest})
    std::filesystem::remove(p);

  const auto slurp = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
  };

  {
    CsvCampaign campaign({clean_csv, clean_manifest, 2, 1}, specs);
    run_sweep_streamed(specs, {},
                       [&](const ScenarioResult& r) { campaign.append(r); });
    campaign.finish();
  }
  const std::string clean = slurp(clean_csv);

  {
    CsvCampaign campaign({csv, manifest, 2, 1}, specs);
    for (std::size_t i = 0; i < 3; ++i) campaign.append(run_scenario(specs[i]));
    // no finish(): simulated kill mid-campaign
  }
  std::size_t replayed = 0;
  CsvCampaign resumed({csv, manifest, 2, 1}, specs,
                      [&](const ScenarioResult& r) {
                        EXPECT_TRUE(std::isfinite(r.local_skew) ||
                                    r.rounds_completed == 0);
                        ++replayed;
                      });
  EXPECT_EQ(replayed, resumed.resume_index());
  RunnerOptions options;
  options.threads = 4;
  const std::vector<ScenarioSpec> todo(specs.begin() + resumed.resume_index(),
                                       specs.end());
  run_sweep_streamed(todo, options,
                     [&](const ScenarioResult& r) { resumed.append(r); });
  resumed.finish();
  EXPECT_EQ(slurp(csv), clean);
  for (const auto& p : {clean_csv, clean_manifest, csv, manifest})
    std::filesystem::remove(p);
}

TEST(Dynamic, FastPathAndPlainPathRowsAreIdentical) {
  // The batched MessageArena fast path must stay trace-identical under a
  // mutating topology (joins, leaves, rewires mid-run).
  for (const auto& spec : dynamic_specs()) {
    RunnerOptions fast;
    RunnerOptions plain;
    plain.fast_path = false;
    std::ostringstream fast_row;
    write_csv_row(fast_row, run_scenario(spec, fast));
    std::ostringstream plain_row;
    write_csv_row(plain_row, run_scenario(spec, plain));
    EXPECT_EQ(fast_row.str(), plain_row.str()) << spec.name();
  }
}

TEST(Dynamic, LocalSkewIsBoundedByGlobalSkewRowWise) {
  auto specs = dynamic_specs();
  // A complete-world cell rides along: its local skew degenerates to the
  // global max (every pair is an edge).
  ScenarioSpec flat;
  flat.rounds = 5;
  flat.warmup = 1;
  specs.push_back(flat);
  for (const auto& spec : specs) {
    const auto result = run_scenario(spec);
    ASSERT_TRUE(result.error.empty()) << spec.name() << ": " << result.error;
    if (result.rounds_completed == 0) continue;
    EXPECT_TRUE(std::isfinite(result.local_skew)) << spec.name();
    EXPECT_LE(result.local_skew, result.max_skew + 1e-12) << spec.name();
    if (spec.world == WorldKind::kComplete)
      EXPECT_EQ(result.local_skew, result.max_skew);
    if (std::isfinite(result.predicted_skew) && result.predicted_skew > 0.0)
      EXPECT_NEAR(result.local_skew_ratio,
                  result.local_skew / result.predicted_skew, 1e-12);
  }
}

TEST(Dynamic, PerRoundLocalSkewSeriesCoversEveryCompletedRound) {
  // Direct world run (the runner only exports the series max): one local
  // skew sample per completed round, measured on that round's live graph.
  relay::RelayConfig config;
  config.topology = relay::Topology::hypercube(4);
  config.hop_model.n = 16;
  config.hop_model.f = 0;
  config.hop_model.d = 1.0;
  config.hop_model.u = 0.01;
  config.hop_model.u_tilde = 0.01;
  config.hop_model.vartheta = 1.001;
  config.seed = 11;

  auto schedule = std::make_shared<relay::TopologySchedule>(
      relay::TopologySchedule::generate(config.topology, churn_policy(0.2, 1),
                                        10, 21));
  ASSERT_TRUE(schedule->dynamic());
  const auto effective = relay::effective_from_hops(
      config.hop_model, relay::analyze_schedule_worst_hops(*schedule, 0));
  const auto params = core::derive_cps_params(effective.model);
  ASSERT_TRUE(params.feasible);
  const std::size_t rounds = 8;
  config.initial_offset = params.S;
  config.horizon = params.S + (rounds + 2) * params.p_max;
  config.schedule = schedule;
  config.epoch_start = config.initial_offset + params.p_max;
  config.epoch_length = params.p_max;

  core::CpsConfig cps;
  cps.params = params;
  relay::RelayWorld world(
      config, [cps](NodeId) { return std::make_unique<core::CpsNode>(cps); },
      effective);
  const auto run = world.run();
  ASSERT_TRUE(run.trace.live(rounds));

  const auto series = local_skew_series(run.trace, *schedule);
  ASSERT_EQ(series.size(), run.trace.skews().size());
  ASSERT_GE(series.size(), rounds);
  double worst = 0.0;
  for (const double s : series) {
    ASSERT_TRUE(std::isfinite(s));
    ASSERT_GE(s, 0.0);
    worst = std::max(worst, s);
  }
  EXPECT_LE(worst, run.trace.max_skew() + 1e-12);
}

TEST(Dynamic, LargeChurnedCellCompletesLive) {
  // The headline acceptance cell: n = 256 under real churn completes every
  // round, with the gradient metric exported and bounded by the global skew.
  ScenarioSpec spec;
  spec.world = WorldKind::kRelay;
  spec.protocol = baselines::ProtocolKind::kFloodProbe;
  spec.topology = TopologyKind::kHypercube;
  spec.crypto = CryptoMode::kAbstract;
  spec.n = 256;
  spec.churn_rate = 0.05;
  spec.rounds = 6;
  spec.warmup = 2;
  const auto result = run_scenario(spec);
  ASSERT_TRUE(result.error.empty()) << result.error;
  EXPECT_TRUE(result.live);
  EXPECT_EQ(result.rounds_completed, spec.rounds);
  EXPECT_TRUE(std::isfinite(result.local_skew));
  EXPECT_LE(result.local_skew, result.max_skew + 1e-12);
  EXPECT_TRUE(result.d_eff_exact);  // n = 256 is within the exact budget
  EXPECT_FALSE(violates_gate(result, 1e9));
}

TEST(Dynamic, EffectiveCacheRefusesDynamicSchedules) {
  // The memo key does not fold the schedule, so serving a dynamic cell from
  // the cache would silently reuse a static analysis.
  relay::RelayConfig config;
  config.topology = relay::Topology::ring(8);
  config.hop_model.n = 8;
  config.hop_model.f = 0;
  config.hop_model.d = 1.0;
  config.hop_model.u = 0.01;
  config.hop_model.u_tilde = 0.01;
  config.hop_model.vartheta = 1.001;
  relay::EffectiveCache cache;
  EXPECT_NO_THROW((void)cache.get(1, config));
  config.schedule = std::make_shared<relay::TopologySchedule>(
      relay::TopologySchedule::generate(config.topology, churn_policy(0.2, 0),
                                        6, 3));
  ASSERT_TRUE(config.schedule->dynamic());
  EXPECT_THROW((void)cache.get(2, config), util::CheckFailure);
}

TEST(EdgeAge, RewireResetsAgesAndQuietEpochsAgeEveryEdge) {
  relay::EdgeAgeTracker tracker(relay::Topology::ring(6));
  EXPECT_EQ(tracker.epoch(), 0u);
  EXPECT_EQ(tracker.age(0, 1), 0u);

  // Epochs without deltas age every surviving edge by one.
  tracker.advance();
  tracker.advance();
  EXPECT_EQ(tracker.epoch(), 2u);
  EXPECT_EQ(tracker.age(0, 1), 2u);
  EXPECT_EQ(tracker.age(5, 0), 2u);

  // A rewire restarts the clock for the new edge only; untouched edges keep
  // aging through the same epoch.
  relay::EpochDelta delta;
  delta.removed = {{0, 1}};
  delta.added = {{0, 2}};
  tracker.apply(delta);
  EXPECT_EQ(tracker.epoch(), 3u);
  EXPECT_EQ(tracker.age(0, 2), 0u);
  EXPECT_EQ(tracker.age(1, 2), 3u);
  tracker.advance();
  EXPECT_EQ(tracker.age(0, 2), 1u);
  EXPECT_EQ(tracker.age(2, 0), 1u);  // endpoint order is irrelevant

  // Re-adding a previously-removed edge births it fresh, not at its old age.
  relay::EpochDelta back;
  back.removed = {{0, 2}};
  back.added = {{0, 1}};
  tracker.apply(back);
  EXPECT_EQ(tracker.age(0, 1), 0u);
}

TEST(EdgeAge, LeaveAndRejoinRestartsTheClock) {
  relay::EdgeAgeTracker tracker(relay::Topology::ring(5));
  tracker.advance();

  relay::EpochDelta leave;
  leave.leaves = {3};
  leave.removed = {{2, 3}, {3, 4}};
  tracker.apply(leave);
  EXPECT_TRUE(tracker.down()[3]);
  EXPECT_EQ(tracker.age(1, 2), 2u);  // survivors keep aging

  tracker.advance();

  relay::EpochDelta rejoin;
  rejoin.joins = {3};
  rejoin.added = {{2, 3}, {3, 4}};
  tracker.apply(rejoin);
  EXPECT_FALSE(tracker.down()[3]);
  // The rejoined node's edges are newborn even where the endpoints match the
  // pre-leave topology exactly.
  EXPECT_EQ(tracker.age(2, 3), 0u);
  EXPECT_EQ(tracker.age(3, 4), 0u);
  EXPECT_EQ(tracker.age(1, 2), 4u);
  tracker.advance();
  EXPECT_EQ(tracker.age(2, 3), 1u);
}

TEST(EdgeAge, TrackerMatchesHandReplayForEveryReconnectPolicy) {
  const auto topo = relay::Topology::hypercube(4);
  for (const auto reconnect : {relay::ReconnectPolicy::kRandom,
                               relay::ReconnectPolicy::kPreferential,
                               relay::ReconnectPolicy::kRingRepair}) {
    const auto schedule = relay::TopologySchedule::generate(
        topo, churn_policy(0.25, 2, reconnect), 12, 31);
    ASSERT_TRUE(schedule.dynamic());

    // Independent replay: birth epoch per edge, maintained from the raw
    // deltas with the generator's own at_epoch/down_at as the graph oracle.
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> birth;
    const auto norm = [](NodeId a, NodeId b) {
      return std::make_pair(std::min(a, b), std::max(a, b));
    };
    for (NodeId v = 0; v < topo.n(); ++v)
      for (const NodeId w : topo.neighbors(v))
        if (w > v) birth[norm(v, w)] = 0;

    relay::EdgeAgeTracker tracker(schedule.initial());
    const auto& deltas = schedule.deltas();
    for (std::size_t e = 0; e <= deltas.size(); ++e) {
      const auto graph = schedule.at_epoch(e);
      const auto down = schedule.down_at(e);
      ASSERT_EQ(tracker.epoch(), e);
      ASSERT_EQ(tracker.topology().edge_count(), graph.edge_count())
          << "epoch " << e;
      ASSERT_EQ(tracker.down(), down) << "epoch " << e;
      for (NodeId v = 0; v < graph.n(); ++v)
        for (const NodeId w : graph.neighbors(v)) {
          if (w < v) continue;
          const auto it = birth.find(norm(v, w));
          ASSERT_NE(it, birth.end()) << v << "-" << w << " epoch " << e;
          EXPECT_EQ(tracker.age(v, w), e - it->second)
              << v << "-" << w << " epoch " << e;
        }
      if (e < deltas.size()) {
        for (const auto& [a, b] : deltas[e].removed) birth.erase(norm(a, b));
        for (const auto& [a, b] : deltas[e].added) birth[norm(a, b)] = e + 1;
        tracker.apply(deltas[e]);
      }
    }
  }
}

TEST(EdgeAge, ExportedMinAgeMatchesHandReplayedSchedule) {
  // The CSV's edge_age_min is the youngest live measured edge at the last
  // complete round. Recover the exact schedule the runner generated (from
  // the recorded seed) and hand-replay it for all three reconnect policies.
  for (const auto reconnect : {relay::ReconnectPolicy::kRandom,
                               relay::ReconnectPolicy::kPreferential,
                               relay::ReconnectPolicy::kRingRepair}) {
    ScenarioSpec spec;
    spec.world = WorldKind::kRelay;
    spec.protocol = baselines::ProtocolKind::kGradient;
    spec.topology = TopologyKind::kHypercube;
    spec.n = 16;
    spec.churn_rate = 0.1;
    spec.reconnect = reconnect;
    spec.rounds = 10;
    spec.warmup = 2;
    const auto result = run_scenario(spec);
    ASSERT_TRUE(result.error.empty()) << result.error;
    ASSERT_EQ(result.rounds_completed, spec.rounds);
    ASSERT_TRUE(std::isfinite(result.edge_age_min));

    const auto schedule = relay::TopologySchedule::generate(
        relay::Topology::hypercube(4),
        churn_policy(spec.churn_rate, spec.join_batch, reconnect),
        static_cast<std::uint32_t>(spec.rounds + 2),
        result.seed ^ 0x5c4ed7ULL);
    relay::EdgeAgeTracker tracker(schedule.initial());
    const std::size_t last = result.rounds_completed - 1;
    for (std::size_t r = 0; r < last; ++r) {
      if (r < schedule.deltas().size())
        tracker.apply(schedule.deltas()[r]);
      else
        tracker.advance();
    }
    double min_age = std::numeric_limits<double>::infinity();
    const auto& graph = tracker.topology();
    for (NodeId v = 0; v < graph.n(); ++v) {
      if (tracker.down()[v]) continue;
      for (const NodeId w : graph.neighbors(v)) {
        if (w < v || tracker.down()[w]) continue;
        min_age =
            std::min(min_age, static_cast<double>(tracker.age(v, w)));
      }
    }
    EXPECT_EQ(result.edge_age_min, min_age)
        << relay::to_string(reconnect);
  }
}

TEST(KlloGate, GradientPassesWhereJumpMaxFailsAcrossReconnectPolicies) {
  // The conformance contrast: the bounded-rate gradient protocol sits inside
  // the per-edge-age envelope on churned cells; jump-to-max — whose
  // uncompensated estimate can never pull a drifting laggard — accumulates
  // per-round drift until settled edges leave the O(log n) band.
  for (const auto reconnect : {relay::ReconnectPolicy::kRandom,
                               relay::ReconnectPolicy::kPreferential,
                               relay::ReconnectPolicy::kRingRepair}) {
    ScenarioSpec spec;
    spec.world = WorldKind::kRelay;
    spec.topology = TopologyKind::kHypercube;
    spec.n = 16;
    spec.churn_rate = 0.05;
    spec.reconnect = reconnect;
    spec.rounds = 24;
    spec.warmup = 4;

    spec.protocol = baselines::ProtocolKind::kGradient;
    const auto good = run_scenario(spec);
    ASSERT_TRUE(good.error.empty()) << good.error;
    ASSERT_TRUE(good.live);
    ASSERT_TRUE(std::isfinite(good.kllo_ratio));
    EXPECT_LT(good.kllo_ratio, 1.0) << relay::to_string(reconnect);
    EXPECT_EQ(good.kllo_violations, 0u) << relay::to_string(reconnect);

    spec.protocol = baselines::ProtocolKind::kJumpMax;
    const auto bad = run_scenario(spec);
    ASSERT_TRUE(bad.error.empty()) << bad.error;
    ASSERT_TRUE(bad.live);
    ASSERT_TRUE(std::isfinite(bad.kllo_ratio));
    EXPECT_GT(bad.kllo_ratio, 1.0) << relay::to_string(reconnect);
    EXPECT_GT(bad.kllo_violations, 0u) << relay::to_string(reconnect);

    // The --gate-kllo accumulator trips on exactly the jump-max row.
    SweepSummary summary;
    summary.kllo_gate_ratio = 1.0;
    summary.add(good);
    summary.add(bad);
    EXPECT_EQ(summary.kllo_gate_violations, 1u)
        << relay::to_string(reconnect);
    // Both cells stay live, so the liveness gate alone would pass both —
    // the envelope gate is what separates them.
    EXPECT_FALSE(violates_gate(bad, 1e9));
  }
}

/// The headline acceptance grid: gradient vs jump-to-max on a seeded n = 256
/// churned hypercube (abstract crypto for speed), long enough past the
/// stabilization window for the drift contrast to bind.
std::vector<ScenarioSpec> kllo_acceptance_specs() {
  SweepGrid grid;
  grid.worlds = {WorldKind::kRelay};
  grid.protocols = {baselines::ProtocolKind::kGradient,
                    baselines::ProtocolKind::kJumpMax};
  grid.ns = {256};
  grid.fault_loads = {0};
  grid.topologies = {TopologyKind::kHypercube};
  grid.cryptos = {CryptoMode::kAbstract};
  grid.churn_rates = {0.05};
  grid.join_batches = {0};
  grid.reconnects = {relay::ReconnectPolicy::kRandom};
  grid.rounds = 40;
  grid.warmup = 8;
  return grid.expand();
}

TEST(KlloAcceptance, N256GateContrastIsByteStableAcrossEnginePaths) {
  const auto specs = kllo_acceptance_specs();
  ASSERT_EQ(specs.size(), 2u);
  for (const auto& spec : specs) EXPECT_TRUE(spec.dynamic()) << spec.name();

  // One CSV per engine configuration: the per-edge-age machinery must be
  // invisible to the fast path and to the worker count.
  const auto csv_for = [&](bool fast_path, unsigned threads) {
    RunnerOptions options;
    options.fast_path = fast_path;
    options.threads = threads;
    std::ostringstream os;
    os << csv_header() << '\n';
    run_sweep_streamed(specs, options, [&](const ScenarioResult& r) {
      write_csv_row(os, r);
    });
    return os.str();
  };
  const std::string reference = csv_for(true, 1);
  EXPECT_EQ(reference, csv_for(true, 4));
  EXPECT_EQ(reference, csv_for(false, 1));

  SweepSummary summary;
  summary.kllo_gate_ratio = 1.0;
  std::optional<ScenarioResult> gradient;
  std::optional<ScenarioResult> jump_max;
  run_sweep_streamed(specs, {}, [&](const ScenarioResult& r) {
    summary.add(r);
    if (r.spec.protocol == baselines::ProtocolKind::kGradient) gradient = r;
    if (r.spec.protocol == baselines::ProtocolKind::kJumpMax) jump_max = r;
  });
  ASSERT_TRUE(gradient && jump_max);
  ASSERT_TRUE(gradient->live && jump_max->live);
  EXPECT_LT(gradient->kllo_ratio, 1.0);
  EXPECT_EQ(gradient->kllo_violations, 0u);
  EXPECT_GT(jump_max->kllo_ratio, 1.0);
  EXPECT_GT(jump_max->kllo_violations, 0u);
  EXPECT_EQ(summary.kllo_gate_violations, 1u);
  // Churn keeps rewiring, so the last round's youngest measured edge is
  // fresh — the fresh-edge allowance is load-bearing, not hypothetical.
  EXPECT_TRUE(std::isfinite(gradient->edge_age_min));
}

TEST(KlloAcceptance, N256CampaignResumeAndHistoryRoundTrip) {
  const auto specs = kllo_acceptance_specs();
  const std::string dir = ::testing::TempDir();
  const std::string clean_csv = dir + "/kllo_clean.csv";
  const std::string clean_manifest = dir + "/kllo_clean.manifest";
  const std::string csv = dir + "/kllo_killed.csv";
  const std::string manifest = dir + "/kllo_killed.manifest";
  for (const auto& p : {clean_csv, clean_manifest, csv, manifest})
    std::filesystem::remove(p);
  const auto slurp = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
  };

  SweepSummary fresh;
  fresh.kllo_gate_ratio = 1.0;
  {
    CsvCampaign campaign({clean_csv, clean_manifest, 1, 1}, specs);
    run_sweep_streamed(specs, {}, [&](const ScenarioResult& r) {
      campaign.append(r);
      fresh.add(r);
    });
    campaign.finish();
  }

  // Kill after the first row; the resumed campaign replays it from the CSV
  // and must feed the kllo gate and history stats identically.
  {
    CsvCampaign campaign({csv, manifest, 1, 1}, specs);
    campaign.append(run_scenario(specs[0]));
  }
  SweepSummary resumed_summary;
  resumed_summary.kllo_gate_ratio = 1.0;
  CsvCampaign resumed({csv, manifest, 1, 1}, specs,
                      [&](const ScenarioResult& r) {
                        EXPECT_TRUE(std::isfinite(r.kllo_ratio));
                        EXPECT_TRUE(std::isfinite(r.edge_age_min));
                        resumed_summary.add(r);
                      });
  ASSERT_EQ(resumed.resume_index(), 1u);
  const std::vector<ScenarioSpec> todo(specs.begin() + 1, specs.end());
  run_sweep_streamed(todo, {}, [&](const ScenarioResult& r) {
    resumed.append(r);
    resumed_summary.add(r);
  });
  resumed.finish();
  EXPECT_EQ(slurp(csv), slurp(clean_csv));
  EXPECT_EQ(resumed_summary.kllo_gate_violations,
            fresh.kllo_gate_violations);

  // History: the k-tokens survive format → parse, and the resumed summary
  // produces the byte-identical line.
  const auto entry = make_history_entry(fresh, 1, 77);
  const auto resumed_entry = make_history_entry(resumed_summary, 1, 77);
  const auto line = format_history_line(entry);
  EXPECT_EQ(line, format_history_line(resumed_entry));
  EXPECT_NE(line.find("kmax="), std::string::npos) << line;
  const auto parsed = parse_history_line(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  ASSERT_EQ(parsed->worlds.size(), 1u);
  EXPECT_EQ(parsed->worlds[0].kcount, 2u);
  EXPECT_GT(parsed->worlds[0].kmax, 1.0);  // the jump-max cell

  // Trend gating: a kllo regression over this baseline fails by name.
  auto regressed = *parsed;
  regressed.worlds[0].kmax *= 2.0;
  const auto failures = check_trend(*parsed, regressed, 5.0);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("kllo_ratio"), std::string::npos) << failures[0];
  EXPECT_TRUE(check_trend(*parsed, *parsed, 0.0).empty());

  for (const auto& p : {clean_csv, clean_manifest, csv, manifest})
    std::filesystem::remove(p);
}

TEST(History, GradientTokensAreOptionalAndRoundTrip) {
  HistoryEntry entry;
  entry.seed = 3;
  entry.cells = 12;
  HistoryEntry::WorldRatio relay_ratio;
  relay_ratio.world = WorldKind::kRelay;
  relay_ratio.max = 0.75;
  relay_ratio.mean = 0.5;
  relay_ratio.count = 12;
  entry.worlds.push_back(relay_ratio);

  // Without dynamic cells the line is byte-compatible with the pre-dynamic
  // format: no l* tokens at all.
  const auto static_line = format_history_line(entry);
  EXPECT_EQ(static_line.find("lmax"), std::string::npos) << static_line;
  EXPECT_EQ(static_line.find("kmax"), std::string::npos) << static_line;
  const auto static_parsed = parse_history_line(static_line);
  ASSERT_TRUE(static_parsed.has_value());
  EXPECT_EQ(static_parsed->worlds[0].lcount, 0u);
  EXPECT_EQ(static_parsed->worlds[0].kcount, 0u);

  entry.worlds[0].lmax = 0.9;
  entry.worlds[0].lmean = 0.6;
  entry.worlds[0].lcount = 4;
  const auto line = format_history_line(entry);
  const auto parsed = parse_history_line(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->worlds[0].lmax, 0.9);
  EXPECT_EQ(parsed->worlds[0].lmean, 0.6);
  EXPECT_EQ(parsed->worlds[0].lcount, 4u);

  // Trend gate: a local-skew regression fails even when the global max held.
  HistoryEntry regressed = entry;
  regressed.worlds[0].lmax = 1.2;
  const auto failures = check_trend(entry, regressed, 5.0);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("local_skew_ratio"), std::string::npos)
      << failures[0];
  // A baseline without dynamic cells says nothing about local skew.
  HistoryEntry no_local_baseline = entry;
  no_local_baseline.worlds[0].lcount = 0;
  EXPECT_TRUE(check_trend(no_local_baseline, regressed, 5.0).empty());
}

}  // namespace
}  // namespace crusader::runner
