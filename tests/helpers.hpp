#pragma once
// Shared test plumbing: canonical model parameter sets and world builders.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "core/cps.hpp"
#include "sim/world.hpp"

namespace crusader::testing {

/// The canonical small model used across tests: d=1, u=0.05, ϑ=1.01.
inline sim::ModelParams small_model(std::uint32_t n, std::uint32_t f) {
  sim::ModelParams m;
  m.n = n;
  m.f = f;
  m.d = 1.0;
  m.u = 0.05;
  m.u_tilde = 0.05;
  m.vartheta = 1.01;
  return m;
}

/// Builds a world config for a protocol setup: horizon sized for `rounds`
/// pulse rounds, initial offsets spread over the protocol's assumed bound.
inline sim::WorldConfig world_config(const sim::ModelParams& model,
                                     const baselines::ProtocolSetup& setup,
                                     std::size_t rounds, std::uint64_t seed) {
  sim::WorldConfig config;
  config.model = model;
  config.seed = seed;
  config.initial_offset = setup.initial_offset;
  config.horizon =
      setup.initial_offset + static_cast<double>(rounds + 2) * setup.round_length;
  config.clock_kind = sim::ClockKind::kSpread;
  config.delay_kind = sim::DelayKind::kRandom;
  return config;
}

/// Runs a protocol with `f_actual` Byzantine nodes of the given strategy.
/// Returns the run result; asserts no model violations occurred.
inline sim::RunResult run_protocol(
    baselines::ProtocolKind kind, const sim::ModelParams& model,
    std::uint32_t f_actual, core::ByzStrategy strategy, std::uint64_t seed,
    std::size_t rounds, sim::ClockKind clocks = sim::ClockKind::kSpread,
    sim::DelayKind delays = sim::DelayKind::kRandom, double late_shift = 0.0,
    double split_shift = 0.0) {
  const auto setup = baselines::make_setup(kind, model);
  auto honest = baselines::make_protocol_factory(setup);

  sim::WorldConfig config = world_config(model, setup, rounds, seed);
  config.clock_kind = clocks;
  config.delay_kind = delays;
  config.faulty = sim::default_faulty_set(f_actual);

  sim::ByzantineFactory byz;
  if (f_actual > 0) {
    byz = core::make_byzantine_factory(strategy, honest, seed, late_shift,
                                       split_shift);
  }
  sim::World world(config, honest, byz);
  return world.run();
}

}  // namespace crusader::testing
