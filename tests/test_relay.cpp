// Sparse-network translation (paper Appendix A): (f+1)-connectivity
// simulates full connectivity; CPS runs unchanged with effective
// (d_eff, u_eff) = (D_f·d_hop, D_f·u_hop + drift).

#include "relay/flood_world.hpp"

#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/factories.hpp"
#include "core/cps.hpp"
#include "core/params.hpp"
#include "relay/topology.hpp"
#include "util/check.hpp"

namespace crusader::relay {
namespace {

TEST(Topology, CompleteGraphProperties) {
  const auto topo = Topology::complete(5);
  EXPECT_EQ(topo.edge_count(), 10u);
  EXPECT_TRUE(topo.survives_faults(2));
  EXPECT_EQ(topo.worst_case_distance(2), 1u);
}

TEST(Topology, RingConnectivity) {
  const auto topo = Topology::ring(6);
  EXPECT_EQ(topo.edge_count(), 6u);
  EXPECT_TRUE(topo.survives_faults(1));   // 2-connected
  EXPECT_FALSE(topo.survives_faults(2));  // two cuts disconnect a ring
  // Removing one node forces the long way around: 6-2 = 4 hops.
  EXPECT_EQ(topo.worst_case_distance(1), 4u);
}

TEST(Topology, ChordalRingBeatsPlainRing) {
  const auto plain = Topology::ring(8);
  const auto chordal = Topology::chordal_ring(8, 2);
  EXPECT_TRUE(chordal.survives_faults(2));
  EXPECT_FALSE(plain.survives_faults(2));
  EXPECT_LT(chordal.worst_case_distance(1), plain.worst_case_distance(1));
}

TEST(Topology, RingOfCliques) {
  const auto topo = Topology::ring_of_cliques(3, 4, 2);
  EXPECT_EQ(topo.n(), 12u);
  EXPECT_TRUE(topo.survives_faults(2));
  EXPECT_GE(topo.worst_case_distance(2), 2u);
}

TEST(Topology, DistanceRespectsExclusions) {
  auto topo = Topology::ring(5);
  std::vector<bool> nobody(5, false);
  EXPECT_EQ(topo.distance(0, 2, nobody), 2u);
  std::vector<bool> cut(5, false);
  cut[1] = true;
  EXPECT_EQ(topo.distance(0, 2, cut), 3u);  // the long way
  cut[3] = true;
  cut[4] = true;
  EXPECT_EQ(topo.distance(0, 2, cut),
            std::numeric_limits<std::uint32_t>::max());
}

TEST(Topology, DuplicateEdgesIgnored) {
  Topology topo(3);
  topo.add_edge(0, 1);
  topo.add_edge(1, 0);
  EXPECT_EQ(topo.edge_count(), 1u);
}

sim::ModelParams hop_model(std::uint32_t n, std::uint32_t f) {
  sim::ModelParams hop;
  hop.n = n;
  hop.f = f;
  hop.d = 1.0;
  hop.u = 0.02;
  hop.u_tilde = 0.02;
  hop.vartheta = 1.002;
  return hop;
}

TEST(EffectiveModel, CompleteTopologyIsNearFlat) {
  RelayConfig config;
  config.topology = Topology::complete(5);
  config.hop_model = hop_model(5, 2);
  const auto eff = effective_model(config);
  EXPECT_DOUBLE_EQ(eff.d, 1.0);
  EXPECT_NEAR(eff.u, 0.02 + 0.002, 1e-12);  // + hold drift term
}

TEST(EffectiveModel, ScalesWithWorstCaseDistance) {
  RelayConfig config;
  config.topology = Topology::ring(6);
  config.hop_model = hop_model(6, 1);
  const auto eff = effective_model(config);
  EXPECT_DOUBLE_EQ(eff.d, 4.0);  // D_1 = 4 hops
  EXPECT_NEAR(eff.u, 4.0 * 0.02 + 0.002 * 4.0, 1e-12);
}

TEST(EffectiveModel, RejectsUnderConnectedTopology) {
  RelayConfig config;
  config.topology = Topology::ring(6);
  config.hop_model = hop_model(6, 2);  // ring is not 3-connected
  EXPECT_THROW((void)effective_model(config), util::CheckFailure);
}

RelayRunResult run_cps_on(const Topology& topo, std::uint32_t f,
                          std::vector<NodeId> faulty, std::size_t rounds,
                          core::CpsParams* params_out = nullptr) {
  RelayConfig config;
  config.topology = topo;
  config.hop_model = hop_model(topo.n(), f);
  config.faulty = std::move(faulty);
  config.seed = 5;

  const auto eff = effective_model(config);
  const auto params = core::derive_cps_params(eff);
  CS_CHECK(params.feasible);
  if (params_out != nullptr) *params_out = params;
  config.initial_offset = params.S;
  config.horizon = params.S + (rounds + 2) * params.p_max;

  core::CpsConfig cps;
  cps.params = params;
  RelayWorld world(config, [cps](NodeId) {
    return std::make_unique<core::CpsNode>(cps);
  });
  return world.run();
}

TEST(RelayWorld, CpsOnCompleteTopologyMatchesFlatGuarantees) {
  core::CpsParams params;
  const auto result =
      run_cps_on(Topology::complete(5), 2, {}, 15, &params);
  EXPECT_TRUE(result.trace.live(15));
  EXPECT_LE(result.trace.max_skew(), params.S + 1e-9);
  EXPECT_EQ(result.worst_hops, 1u);
}

TEST(RelayWorld, CpsOnRingFaultFree) {
  core::CpsParams params;
  const auto result = run_cps_on(Topology::ring(6), 1, {}, 10, &params);
  EXPECT_TRUE(result.trace.live(10));
  EXPECT_LE(result.trace.max_skew(), params.S + 1e-9);
  EXPECT_EQ(result.worst_hops, 4u);
}

TEST(RelayWorld, CpsSurvivesCrashedRelay) {
  // One crashed node on the ring: the flood routes around it and the
  // remaining nodes stay synchronized within the effective bound.
  core::CpsParams params;
  const auto result = run_cps_on(Topology::ring(6), 1, {3}, 10, &params);
  EXPECT_TRUE(result.trace.live(10));
  EXPECT_LE(result.trace.max_skew(), params.S + 1e-9);
  EXPECT_TRUE(result.trace.pulses(3).empty());
}

TEST(RelayWorld, CpsOnRingOfCliquesWithFaults) {
  core::CpsParams params;
  const auto result = run_cps_on(Topology::ring_of_cliques(3, 4, 2), 2,
                                 {0, 4}, 8, &params);
  EXPECT_TRUE(result.trace.live(8));
  EXPECT_LE(result.trace.max_skew(), params.S + 1e-9);
}

TEST(RelayWorld, SkewGrowsWithPathLength) {
  // The [4]-style intuition: effective skew budget scales with the
  // worst-case relay distance.
  core::CpsParams ring6, ring10;
  (void)run_cps_on(Topology::ring(6), 1, {}, 3, &ring6);
  (void)run_cps_on(Topology::ring(10), 1, {}, 3, &ring10);
  EXPECT_GT(ring10.S, ring6.S);
}

TEST(RelayWorld, PhysicalMessageAccounting) {
  const auto result = run_cps_on(Topology::ring(6), 1, {}, 5);
  EXPECT_GT(result.floods, 0u);
  // Flooding a 6-ring costs 2 physical messages per node per flood.
  EXPECT_GE(result.physical_messages, result.floods * 6);
}

}  // namespace
}  // namespace crusader::relay
