// Sparse-network translation (paper Appendix A): (f+1)-connectivity
// simulates full connectivity; CPS runs unchanged with effective
// (d_eff, u_eff) = (D_f·d_hop, D_f·u_hop + drift).

#include "relay/flood_world.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <gtest/gtest.h>
#include <iterator>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/factories.hpp"
#include "core/cps.hpp"
#include "core/params.hpp"
#include "relay/topology.hpp"
#include "util/check.hpp"

namespace crusader::relay {
namespace {

TEST(Topology, CompleteGraphProperties) {
  const auto topo = Topology::complete(5);
  EXPECT_EQ(topo.edge_count(), 10u);
  EXPECT_TRUE(topo.survives_faults(2));
  EXPECT_EQ(topo.worst_case_distance(2), 1u);
}

TEST(Topology, RingConnectivity) {
  const auto topo = Topology::ring(6);
  EXPECT_EQ(topo.edge_count(), 6u);
  EXPECT_TRUE(topo.survives_faults(1));   // 2-connected
  EXPECT_FALSE(topo.survives_faults(2));  // two cuts disconnect a ring
  // Removing one node forces the long way around: 6-2 = 4 hops.
  EXPECT_EQ(topo.worst_case_distance(1), 4u);
}

TEST(Topology, ChordalRingBeatsPlainRing) {
  const auto plain = Topology::ring(8);
  const auto chordal = Topology::chordal_ring(8, 2);
  EXPECT_TRUE(chordal.survives_faults(2));
  EXPECT_FALSE(plain.survives_faults(2));
  EXPECT_LT(chordal.worst_case_distance(1), plain.worst_case_distance(1));
}

TEST(Topology, RingOfCliques) {
  const auto topo = Topology::ring_of_cliques(3, 4, 2);
  EXPECT_EQ(topo.n(), 12u);
  EXPECT_TRUE(topo.survives_faults(2));
  EXPECT_GE(topo.worst_case_distance(2), 2u);
}

TEST(Topology, DistanceRespectsExclusions) {
  auto topo = Topology::ring(5);
  std::vector<bool> nobody(5, false);
  EXPECT_EQ(topo.distance(0, 2, nobody), 2u);
  std::vector<bool> cut(5, false);
  cut[1] = true;
  EXPECT_EQ(topo.distance(0, 2, cut), 3u);  // the long way
  cut[3] = true;
  cut[4] = true;
  EXPECT_EQ(topo.distance(0, 2, cut),
            std::numeric_limits<std::uint32_t>::max());
}

TEST(Topology, DuplicateEdgesIgnored) {
  Topology topo(3);
  topo.add_edge(0, 1);
  topo.add_edge(1, 0);
  EXPECT_EQ(topo.edge_count(), 1u);
}

// --- Property tests for the wired sparse families ---------------------------

/// Reference implementation of worst_case_distance: the original brute-force
/// per-pair walk over every size-f subset. Only viable for n ≤ 12 — which is
/// exactly the regime where the production BFS must agree with it exactly.
std::uint32_t brute_force_worst_distance(const Topology& topo,
                                         std::uint32_t f) {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  const std::uint32_t n = topo.n();
  std::uint32_t worst = 0;
  std::vector<bool> excluded(n, false);
  std::vector<NodeId> subset;
  std::function<void(NodeId)> rec = [&](NodeId start) {
    if (subset.size() == f) {
      for (NodeId s = 0; s < n; ++s) {
        if (excluded[s]) continue;
        for (NodeId t = s + 1; t < n; ++t) {
          if (excluded[t]) continue;
          const std::uint32_t dist = topo.distance(s, t, excluded);
          CS_CHECK(dist != kInf);
          worst = std::max(worst, dist);
        }
      }
      return;
    }
    for (NodeId v = start; v < n; ++v) {
      excluded[v] = true;
      subset.push_back(v);
      rec(v + 1);
      subset.pop_back();
      excluded[v] = false;
    }
  };
  rec(0);
  return worst;
}

TEST(Topology, ChordalRingConnectivityFormula) {
  // C_n(1, 2) is 4-connected for n ≥ 6 (consecutive-stride circulants are
  // maximally connected): survives min(3, n − 2) faults and no more.
  for (std::uint32_t n = 5; n <= 12; ++n) {
    SCOPED_TRACE(n);
    const auto topo = Topology::chordal_ring(n, 2);
    const std::uint32_t f = std::min(3u, n - 2);
    EXPECT_TRUE(topo.survives_faults(f));
    if (f + 3 <= n) {
      EXPECT_FALSE(topo.survives_faults(f + 1));
    }
  }
}

TEST(Topology, RingOfCliquesConnectivityFormula) {
  // Size-4 cliques with 2 bridges per junction: cutting the clique ring
  // takes both junctions (4 nodes) and isolating a node takes its degree-4
  // neighborhood, so the family survives 2·bridges − 1 = 3 faults exactly.
  for (std::uint32_t cliques = 2; cliques <= 3; ++cliques) {
    SCOPED_TRACE(cliques);
    const auto topo = Topology::ring_of_cliques(cliques, 4, 2);
    EXPECT_TRUE(topo.survives_faults(3));
    EXPECT_FALSE(topo.survives_faults(4));
  }
}

TEST(Topology, WorstCaseDistanceMonotoneInFaults) {
  const Topology topos[] = {Topology::chordal_ring(10, 2),
                            Topology::ring_of_cliques(3, 4, 2),
                            Topology::hypercube(3)};
  const std::uint32_t max_f[] = {3, 3, 2};
  for (std::size_t i = 0; i < std::size(topos); ++i) {
    std::uint32_t prev = topos[i].worst_case_distance(0);
    for (std::uint32_t f = 1; f <= max_f[i]; ++f) {
      SCOPED_TRACE(testing::Message() << "topology " << i << " f=" << f);
      const std::uint32_t d = topos[i].worst_case_distance(f);
      EXPECT_GE(d, prev);  // deleting more nodes never shortens worst paths
      prev = d;
    }
  }
}

TEST(Topology, BfsWalkAgreesWithBruteForceUpToTwelveNodes) {
  // n ≤ 12 keeps every family inside the exhaustive-subset budget, where
  // the per-source BFS must reproduce the brute-force walk bit for bit.
  for (std::uint32_t n = 4; n <= 12; ++n) {
    SCOPED_TRACE(testing::Message() << "ring n=" << n);
    const auto ring = Topology::ring(n);
    for (std::uint32_t f = 0; f <= (n >= 5 ? 1u : 0u); ++f)
      EXPECT_EQ(ring.worst_case_distance(f),
                brute_force_worst_distance(ring, f));
  }
  for (std::uint32_t n = 6; n <= 12; ++n) {
    SCOPED_TRACE(testing::Message() << "chordal n=" << n);
    const auto chordal = Topology::chordal_ring(n, 2);
    for (std::uint32_t f = 0; f <= 3; ++f)
      EXPECT_EQ(chordal.worst_case_distance(f),
                brute_force_worst_distance(chordal, f));
  }
  for (std::uint32_t cliques = 2; cliques <= 3; ++cliques) {
    SCOPED_TRACE(testing::Message() << "cliques=" << cliques);
    const auto roc = Topology::ring_of_cliques(cliques, 4, 2);
    for (std::uint32_t f = 0; f <= 3; ++f)
      EXPECT_EQ(roc.worst_case_distance(f),
                brute_force_worst_distance(roc, f));
  }
  const auto cube = Topology::hypercube(3);
  for (std::uint32_t f = 0; f <= 2; ++f)
    EXPECT_EQ(cube.worst_case_distance(f),
              brute_force_worst_distance(cube, f));
  const auto complete = Topology::complete(7);
  for (std::uint32_t f = 0; f <= 3; ++f)
    EXPECT_EQ(complete.worst_case_distance(f),
              brute_force_worst_distance(complete, f));
}

TEST(Topology, SampledWalkIsDeterministicAndCoversLargeN) {
  // n = 64 ring of cliques: C(64, 3) blows the exhaustive budget, so the
  // sampled path runs. It must be a pure function of (graph, f), at least
  // as large as the fault-free diameter, and fast enough to call twice.
  const auto topo = Topology::ring_of_cliques(16, 4, 2);
  ASSERT_EQ(topo.n(), 64u);
  EXPECT_TRUE(topo.worst_case_distance_is_exact(0));
  EXPECT_FALSE(topo.worst_case_distance_is_exact(3));  // C(64,3) > budget
  const std::uint32_t d0 = topo.worst_case_distance(0);
  const std::uint32_t d3 = topo.worst_case_distance(3);
  EXPECT_GE(d3, d0);
  EXPECT_EQ(d3, topo.worst_case_distance(3));
  EXPECT_TRUE(topo.survives_faults(3));  // exact even at n = 64
}

sim::ModelParams hop_model(std::uint32_t n, std::uint32_t f) {
  sim::ModelParams hop;
  hop.n = n;
  hop.f = f;
  hop.d = 1.0;
  hop.u = 0.02;
  hop.u_tilde = 0.02;
  hop.vartheta = 1.002;
  return hop;
}

TEST(EffectiveModel, CompleteTopologyIsNearFlat) {
  RelayConfig config;
  config.topology = Topology::complete(5);
  config.hop_model = hop_model(5, 2);
  const auto eff = effective_model(config);
  EXPECT_DOUBLE_EQ(eff.d, 1.0);
  EXPECT_NEAR(eff.u, 0.02 + 0.002, 1e-12);  // + hold drift term
}

TEST(EffectiveModel, ScalesWithWorstCaseDistance) {
  RelayConfig config;
  config.topology = Topology::ring(6);
  config.hop_model = hop_model(6, 1);
  const auto eff = effective_model(config);
  EXPECT_DOUBLE_EQ(eff.d, 4.0);  // D_1 = 4 hops
  EXPECT_NEAR(eff.u, 4.0 * 0.02 + 0.002 * 4.0, 1e-12);
}

TEST(EffectiveModel, RejectsUnderConnectedTopology) {
  RelayConfig config;
  config.topology = Topology::ring(6);
  config.hop_model = hop_model(6, 2);  // ring is not 3-connected
  EXPECT_THROW((void)effective_model(config), util::CheckFailure);
}

TEST(EffectiveModel, SampledWalkStaysSoundForConfiguredFaultySet) {
  // n = 64: worst_case_distance samples, so compute_effective must fold in
  // the configured faulty set's exact distances — the exported worst_hops
  // can never undercount the paths the instantiated adversary forces.
  RelayConfig config;
  config.topology = Topology::ring_of_cliques(16, 4, 2);
  config.hop_model = hop_model(64, 3);
  config.hop_model.vartheta = 1.0005;
  config.hop_model.u = 0.005;
  config.hop_model.u_tilde = 0.005;
  config.faulty = {0, 1, 2};
  ASSERT_FALSE(config.topology.worst_case_distance_is_exact(3));
  const auto eff = compute_effective(config);

  std::vector<bool> excluded(64, false);
  for (const NodeId v : config.faulty) excluded[v] = true;
  std::uint32_t realized = 0;
  for (NodeId s = 0; s < 64; ++s) {
    if (excluded[s]) continue;
    for (NodeId t = s + 1; t < 64; ++t) {
      if (excluded[t]) continue;
      realized = std::max(realized, config.topology.distance(s, t, excluded));
    }
  }
  EXPECT_GE(eff.worst_hops, realized);
  EXPECT_DOUBLE_EQ(eff.model.d, eff.worst_hops * config.hop_model.d);
}

RelayRunResult run_cps_on(const Topology& topo, std::uint32_t f,
                          std::vector<NodeId> faulty, std::size_t rounds,
                          core::CpsParams* params_out = nullptr) {
  RelayConfig config;
  config.topology = topo;
  config.hop_model = hop_model(topo.n(), f);
  config.faulty = std::move(faulty);
  config.seed = 5;

  const auto eff = effective_model(config);
  const auto params = core::derive_cps_params(eff);
  CS_CHECK(params.feasible);
  if (params_out != nullptr) *params_out = params;
  config.initial_offset = params.S;
  config.horizon = params.S + (rounds + 2) * params.p_max;

  core::CpsConfig cps;
  cps.params = params;
  RelayWorld world(config, [cps](NodeId) {
    return std::make_unique<core::CpsNode>(cps);
  });
  return world.run();
}

TEST(RelayWorld, CpsOnCompleteTopologyMatchesFlatGuarantees) {
  core::CpsParams params;
  const auto result =
      run_cps_on(Topology::complete(5), 2, {}, 15, &params);
  EXPECT_TRUE(result.trace.live(15));
  EXPECT_LE(result.trace.max_skew(), params.S + 1e-9);
  EXPECT_EQ(result.worst_hops, 1u);
}

TEST(RelayWorld, CpsOnRingFaultFree) {
  core::CpsParams params;
  const auto result = run_cps_on(Topology::ring(6), 1, {}, 10, &params);
  EXPECT_TRUE(result.trace.live(10));
  EXPECT_LE(result.trace.max_skew(), params.S + 1e-9);
  EXPECT_EQ(result.worst_hops, 4u);
}

TEST(RelayWorld, CpsSurvivesCrashedRelay) {
  // One crashed node on the ring: the flood routes around it and the
  // remaining nodes stay synchronized within the effective bound.
  core::CpsParams params;
  const auto result = run_cps_on(Topology::ring(6), 1, {3}, 10, &params);
  EXPECT_TRUE(result.trace.live(10));
  EXPECT_LE(result.trace.max_skew(), params.S + 1e-9);
  EXPECT_TRUE(result.trace.pulses(3).empty());
}

TEST(RelayWorld, CpsOnRingOfCliquesWithFaults) {
  core::CpsParams params;
  const auto result = run_cps_on(Topology::ring_of_cliques(3, 4, 2), 2,
                                 {0, 4}, 8, &params);
  EXPECT_TRUE(result.trace.live(8));
  EXPECT_LE(result.trace.max_skew(), params.S + 1e-9);
}

TEST(RelayWorld, SkewGrowsWithPathLength) {
  // The [4]-style intuition: effective skew budget scales with the
  // worst-case relay distance.
  core::CpsParams ring6, ring10;
  (void)run_cps_on(Topology::ring(6), 1, {}, 3, &ring6);
  (void)run_cps_on(Topology::ring(10), 1, {}, 3, &ring10);
  EXPECT_GT(ring10.S, ring6.S);
}

TEST(RelayWorld, PhysicalMessageAccounting) {
  const auto result = run_cps_on(Topology::ring(6), 1, {}, 5);
  EXPECT_GT(result.floods, 0u);
  // Flooding a 6-ring costs 2 physical messages per node per flood.
  EXPECT_GE(result.physical_messages, result.floods * 6);
}

}  // namespace
}  // namespace crusader::relay
