// Golden fixture for scripts/lint_determinism.py — rule: pointer-key.
// expect: pointer-key pointer-key
#include <map>
#include <set>
#include <string>

namespace fixture {

struct Node {
  int id = 0;
};

int sum_in_address_order() {
  std::map<Node*, int, std::less<Node*>> weight;   // VIOLATION: ptr-keyed map
  std::set<const Node*> live;                      // VIOLATION: ptr-keyed set
  std::map<int, Node*> by_id;  // fine: pointer VALUES, integer keys
  int total = 0;
  for (const auto& [node, w] : weight) total += node->id * w;
  (void)live;
  (void)by_id;
  return total;
}

}  // namespace fixture
