// Golden fixture for scripts/lint_determinism.py — rule: unordered-iter.
// expect: unordered-iter unordered-iter
// The linter must flag both the range-for and the explicit .begin() walk,
// and must NOT flag the membership check (find() != end()).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

std::uint64_t digest_of_everything() {
  std::unordered_map<std::uint64_t, double> cache;
  std::unordered_set<std::uint64_t> seen;
  cache.emplace(1, 2.0);
  seen.insert(3);

  std::uint64_t h = 0;
  for (const auto& [k, v] : cache) h ^= k;  // VIOLATION: hash-order fold

  auto it = seen.begin();  // VIOLATION: hash-order walk
  if (it != seen.end()) h ^= *it;

  // Fine: membership only, no ordering consumed.
  if (cache.find(7) != cache.end()) h ^= 7;
  return h;
}

}  // namespace fixture
