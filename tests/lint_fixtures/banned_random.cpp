// Golden fixture for scripts/lint_determinism.py — rule: banned-random.
// expect: banned-random banned-random banned-random
#include <cstdlib>
#include <random>

namespace fixture {

double unseeded_noise() {
  std::random_device rd;             // VIOLATION: hardware entropy
  std::mt19937 gen(rd());            // VIOLATION: non-repo RNG engine
  return static_cast<double>(std::rand()) / RAND_MAX;  // VIOLATION: C rand
}

}  // namespace fixture
