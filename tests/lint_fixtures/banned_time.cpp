// Golden fixture for scripts/lint_determinism.py — rule: banned-time.
// expect: banned-time banned-time banned-time
// Identifier *names* containing "time"/"clock" (next_time(), pulse_time(v),
// hardware_clock) must NOT be flagged — only real wall-clock reads.
#include <chrono>
#include <ctime>

namespace fixture {

struct Probe {
  double next_time() const { return 1.0; }  // fine: simulated time
};

double wall_reads() {
  const auto a = std::chrono::system_clock::now();   // VIOLATION
  const auto b = std::chrono::steady_clock::now();   // VIOLATION
  const auto c = time(nullptr);                      // VIOLATION
  Probe p;
  return p.next_time() + static_cast<double>(c) +
         std::chrono::duration<double>(b - a).count() * 0.0;
}

}  // namespace fixture
