// Golden fixture for scripts/lint_determinism.py — rule: float-format.
// expect: float-format float-format
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>

namespace fixture {

std::string stream_precision(double v) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(6) << v;  // VIOLATION: stream state
  return oss.str();
}

std::string printf_float(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);  // VIOLATION: printf %g
  return buf;
}

std::string printf_int_is_fine(int v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%d", v);  // fine: integer conversion
  return buf;
}

}  // namespace fixture
