// Golden fixture for scripts/lint_determinism.py — the lint:allow escape
// hatch and comment/string handling.
// expect: clean
// Everything here would violate a rule, but each use is suppressed (same
// line or preceding line), mentioned only inside a comment, or only inside
// a string literal — the linter must report nothing.
#include <chrono>
#include <unordered_map>

namespace fixture {

double sanctioned() {
  // A comment mentioning std::mt19937 or system_clock must not fire.
  const char* doc = "uses std::rand and steady_clock";  // strings either

  // Justification: this fixture demonstrates a sanctioned wall read.
  const auto t = std::chrono::steady_clock::now();  // lint:allow(banned-time)

  std::unordered_map<int, int> m;
  m.emplace(1, 2);
  int acc = 0;
  // lint:allow(unordered-iter) — justification: demo of preceding-line allow
  for (const auto& [k, v] : m) acc += k + v;

  return static_cast<double>(acc) +
         std::chrono::duration<double>(t.time_since_epoch()).count() * 0.0 +
         (doc != nullptr ? 0.0 : 1.0);
}

}  // namespace fixture
