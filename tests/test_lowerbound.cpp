// Theorem 5: the executable three-execution construction realizes skew
// ≥ 2ũ/3 against every protocol in the repository.

#include "lowerbound/theorem5.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "helpers.hpp"
#include "lowerbound/composite.hpp"

namespace crusader::lowerbound {
namespace {

using baselines::ProtocolKind;

sim::ModelParams lb_model(double u_tilde) {
  sim::ModelParams m;
  m.n = 3;
  m.f = 1;
  m.d = 1.0;
  m.u = 0.05;
  m.u_tilde = u_tilde;
  m.vartheta = 1.05;
  return m;
}

struct LbCase {
  ProtocolKind protocol;
  double u_tilde;
};

class LowerBound : public ::testing::TestWithParam<LbCase> {};

TEST_P(LowerBound, RealizedSkewMeetsBound) {
  const auto c = GetParam();
  const auto report = run_theorem5(c.protocol, lb_model(c.u_tilde), 40);
  ASSERT_GT(report.rounds, report.settled_round)
      << "not enough rounds past the clock ramp";
  EXPECT_NEAR(report.bound, 2.0 * c.u_tilde / 3.0, 1e-12);
  EXPECT_TRUE(report.bound_holds)
      << baselines::to_string(c.protocol) << ": realized " << report.max_skew
      << " < bound " << report.bound;
  // The telescoped per-round sum of the three execution skews is ≥ 2ũ.
  EXPECT_GE(report.telescoped_sum, 2.0 * c.u_tilde - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LowerBound,
    ::testing::Values(LbCase{ProtocolKind::kCps, 0.05},
                      LbCase{ProtocolKind::kCps, 0.15},
                      LbCase{ProtocolKind::kCps, 0.30},
                      LbCase{ProtocolKind::kLynchWelch, 0.15},
                      LbCase{ProtocolKind::kSrikanthToueg, 0.15}),
    [](const ::testing::TestParamInfo<LbCase>& info) {
      const auto& c = info.param;
      std::string p = baselines::to_string(c.protocol);
      for (char& ch : p)
        if (ch == '-') ch = '_';
      return p + "_ut" + std::to_string(static_cast<int>(c.u_tilde * 100));
    });

TEST(LowerBound, BoundScalesLinearlyInUtilde) {
  // E[S] ≥ 2ũ/3: realized skew grows with ũ.
  double prev = 0.0;
  for (double ut : {0.06, 0.12, 0.24}) {
    const auto report = run_theorem5(ProtocolKind::kCps, lb_model(ut), 40);
    ASSERT_TRUE(report.bound_holds);
    EXPECT_GT(report.max_skew, prev);
    prev = report.max_skew;
  }
}

TEST(LowerBound, UpperAndLowerBoundsAreConsistent) {
  // With ũ = u, the realized adversarial skew must also respect the upper
  // bound S of Theorem 17: 2u/3 ≤ skew ≤ S.
  const auto model = lb_model(0.05);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  ASSERT_TRUE(setup.feasible);
  const auto report = run_theorem5(ProtocolKind::kCps, model, 40);
  ASSERT_TRUE(report.bound_holds);
  EXPECT_LE(report.max_skew, setup.cps.S + 1e-9);
}

TEST(TripleExecution, TransferFunctionsAreCyclic) {
  // Message local-time transfer: j = k+1 uses fast(L+d), j = k+2 uses
  // fast⁻¹(L)+d. Check via the public fast()/fast_inv() on a small config.
  TripleConfig config;
  config.model = lb_model(0.15);
  config.target_rounds = 1;
  TripleExecution triple(config, baselines::make_protocol_factory(
                                     baselines::make_setup(
                                         ProtocolKind::kCps, config.model)));
  const double t_star =
      2.0 * config.model.u_tilde / (3.0 * (config.model.vartheta - 1.0));
  // Ramp phase: fast(t) = ϑ t.
  EXPECT_NEAR(triple.fast(t_star / 2), config.model.vartheta * t_star / 2,
              1e-12);
  // Post-ramp: fast(t) = t + 2ũ/3.
  EXPECT_NEAR(triple.fast(t_star + 3.0),
              t_star + 3.0 + 2.0 * config.model.u_tilde / 3.0, 1e-9);
  EXPECT_NEAR(triple.fast_inv(triple.fast(1.7)), 1.7, 1e-9);
}

TEST(TripleExecution, RequiresThreeNodes) {
  TripleConfig config;
  config.model = lb_model(0.15);
  config.model.n = 4;
  EXPECT_THROW(TripleExecution(config,
                               [](NodeId) -> std::unique_ptr<sim::PulseNode> {
                                 return nullptr;
                               }),
               util::CheckFailure);
}

TEST(LowerBound, PerfectInitialSynchronyStillForcesSkew) {
  // The theorem's strength: even with H_v(0) = 0 for all nodes (which the
  // co-simulator enforces) the adversary builds up 2ũ/3 skew.
  const auto report =
      run_theorem5(ProtocolKind::kCps, lb_model(0.2), /*target_rounds=*/60);
  ASSERT_TRUE(report.bound_holds);
  EXPECT_GE(report.max_skew, 2.0 * 0.2 / 3.0 - 1e-6);
}

/// A *randomized* pulse protocol: wraps CPS and delays every outgoing
/// broadcast by a seeded random jitter (legal behaviour — it is simply a
/// different, randomized protocol). Used to check the randomized part of
/// Theorem 5: the adversary's strategy is fixed upfront, independent of the
/// nodes' coins (Yao), and the expected skew still meets the bound.
class JitteredNode final : public sim::PulseNode {
 public:
  JitteredNode(std::unique_ptr<sim::PulseNode> inner, std::uint64_t seed,
               double max_jitter)
      : inner_(std::move(inner)), rng_(seed), max_jitter_(max_jitter) {}

  void on_start(sim::Env& env) override {
    proxy_.bind(&env, this);
    inner_->on_start(proxy_);
  }
  void on_message(sim::Env& env, const sim::Message& m) override {
    proxy_.bind(&env, this);
    inner_->on_message(proxy_, m);
  }
  void on_timer(sim::Env& env, std::uint64_t tag) override {
    proxy_.bind(&env, this);
    if (tag & kJitterBit) {
      env.broadcast(pending_.at(tag & ~kJitterBit));
      return;
    }
    inner_->on_timer(proxy_, tag);
  }

 private:
  static constexpr std::uint64_t kJitterBit = 1ULL << 62;

  class Proxy final : public sim::Env {
   public:
    void bind(sim::Env* env, JitteredNode* owner) {
      env_ = env;
      owner_ = owner;
    }
    [[nodiscard]] NodeId id() const override { return env_->id(); }
    [[nodiscard]] const sim::ModelParams& model() const override {
      return env_->model();
    }
    [[nodiscard]] double local_now() const override {
      return env_->local_now();
    }
    void send(NodeId to, sim::Message m) override { env_->send(to, std::move(m)); }
    void broadcast(const sim::Message& m) override {
      // Randomize: hold the broadcast for a random local-time jitter.
      const double jitter = owner_->rng_.uniform(0.0, owner_->max_jitter_);
      const std::uint64_t idx = owner_->pending_.size();
      owner_->pending_.push_back(m);
      env_->schedule_at_local(env_->local_now() + jitter, kJitterBit | idx);
    }
    sim::TimerId schedule_at_local(double t, std::uint64_t tag) override {
      return env_->schedule_at_local(t, tag);
    }
    void cancel_timer(sim::TimerId id) override { env_->cancel_timer(id); }
    void pulse() override { env_->pulse(); }
    [[nodiscard]] crypto::Signature sign(
        const crypto::SignedPayload& p) override {
      return env_->sign(p);
    }
    [[nodiscard]] bool verify(const crypto::Signature& s,
                              const crypto::SignedPayload& p) const override {
      return env_->verify(s, p);
    }

   private:
    sim::Env* env_ = nullptr;
    JitteredNode* owner_ = nullptr;
  };

  std::unique_ptr<sim::PulseNode> inner_;
  Proxy proxy_;
  util::Rng rng_;
  double max_jitter_;
  std::vector<sim::Message> pending_;
};

TEST(LowerBound, GeneralNReductionViaGroupSimulation) {
  // Theorem 5's proof for n > 3: partition into three groups; each of the
  // three construction nodes simulates one group's protocol behaviour and
  // outputs the pulses of its first member. Here: n = 9 CPS nodes in three
  // composites of three.
  const std::uint32_t n_total = 9;
  const double u_tilde = 0.2;

  sim::ModelParams inner_model;
  inner_model.n = n_total;
  inner_model.f = sim::ModelParams::max_faults_signed(n_total);
  inner_model.d = 1.0;
  inner_model.u = 0.05;
  inner_model.u_tilde = u_tilde;
  inner_model.vartheta = 1.05;  // ≤ d/(d−u): composite intra-delays legal

  const auto params = core::derive_cps_params(inner_model);
  ASSERT_TRUE(params.feasible);

  crypto::Pki pki(n_total, crypto::Pki::Kind::kSymbolic, 0xabcdULL);

  TripleConfig config;
  config.model = lb_model(u_tilde);  // outer 3-node construction
  config.target_rounds = 30;
  config.master_horizon = 1e5;

  auto factory = [&](NodeId view) -> std::unique_ptr<sim::PulseNode> {
    std::vector<NodeId> group = {view * 3, view * 3 + 1, view * 3 + 2};
    auto inner_factory = [&params](NodeId) -> std::unique_ptr<sim::PulseNode> {
      core::CpsConfig cps;
      cps.params = params;
      return std::make_unique<core::CpsNode>(cps);
    };
    return std::make_unique<CompositeNode>(group, inner_model, &pki,
                                           inner_factory);
  };

  TripleExecution triple(config, factory);
  const auto result = triple.run();
  ASSERT_GT(result.rounds, result.first_settled_round);
  EXPECT_GE(result.max_skew, 2.0 * u_tilde / 3.0 - 1e-6)
      << "the general-n reduction must inherit the 3-node bound";
  EXPECT_GE(result.telescoped_sum, 2.0 * u_tilde - 1e-6);
}

TEST(LowerBound, RandomizedProtocolStillBound) {
  // Average over independent coin seeds; the construction (which never
  // adapts to the coins) must force E[skew] ≥ 2ũ/3 − o(1). With our
  // symmetric construction each individual run already meets the bound.
  const auto model = lb_model(0.2);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  ASSERT_TRUE(setup.feasible);

  double total = 0.0;
  const int trials = 5;
  for (int trial = 0; trial < trials; ++trial) {
    TripleConfig config;
    config.model = model;
    config.target_rounds = 40;
    config.master_horizon = 1e5;
    auto factory = [&, trial](NodeId v) -> std::unique_ptr<sim::PulseNode> {
      core::CpsConfig cps;
      cps.params = setup.cps;
      return std::make_unique<JitteredNode>(
          std::make_unique<core::CpsNode>(cps),
          0xc0ffee + 97ull * trial + v, /*max_jitter=*/0.05);
    };
    TripleExecution triple(config, factory);
    const auto result = triple.run();
    ASSERT_GT(result.rounds, result.first_settled_round);
    total += result.max_skew;
  }
  const double mean = total / trials;
  EXPECT_GE(mean, 2.0 * 0.2 / 3.0 - 1e-6)
      << "expected skew under randomized protocol below the bound";
}

}  // namespace
}  // namespace crusader::lowerbound
