// Tests for the Theorem-17 constant solver and the Corollary-4 feasibility
// threshold.

#include "core/params.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "util/check.hpp"

namespace crusader::core {
namespace {

sim::ModelParams model(double d, double u, double vartheta) {
  sim::ModelParams m;
  m.n = 5;
  m.f = 2;
  m.d = d;
  m.u = u;
  m.u_tilde = u;
  m.vartheta = vartheta;
  return m;
}

TEST(ParamSolver, FeasibleAtSmallVartheta) {
  const CpsParams p = derive_cps_params(model(1.0, 0.05, 1.01));
  ASSERT_TRUE(p.feasible);
  EXPECT_GT(p.S, 0.0);
  EXPECT_GT(p.T, 0.0);
  EXPECT_GT(p.p_min, 0.0);
  EXPECT_GT(p.p_max, p.p_min);
  EXPECT_GT(p.echo_guard, 0.0);
}

TEST(ParamSolver, RecursionClosesAtSolution) {
  // S must satisfy the Lemma-16 inequality with T = min_T(S).
  const auto m = model(1.0, 0.05, 1.01);
  ParamSolver solver(m);
  const CpsParams p = solver.solve();
  const double vt = m.vartheta;
  const double lhs = (2.0 - vt) * p.S;
  const double rhs =
      2.0 * (2.0 * vt - 1.0) * solver.delta(p.S) + 2.0 * (vt - 1.0) * p.T;
  EXPECT_GE(lhs, rhs - 1e-9);
  // Minimality: tight up to numerical error.
  EXPECT_NEAR(lhs, rhs, 1e-6 * p.S);
}

TEST(ParamSolver, CorollaryT15BoundHolds) {
  const auto m = model(1.0, 0.05, 1.01);
  ParamSolver solver(m);
  const CpsParams p = solver.solve();
  EXPECT_GE(p.T, solver.min_T(p.S) - 1e-12);
}

TEST(ParamSolver, DeltaIsMaxOfBothBounds) {
  ParamSolver solver(model(1.0, 0.05, 1.02));
  for (double S : {0.0, 0.1, 1.0}) {
    EXPECT_DOUBLE_EQ(solver.delta(S),
                     std::max(solver.delta_valid(S), solver.delta_cons(S)));
  }
}

TEST(ParamSolver, SkewScalesLinearlyInU) {
  // S ∈ Θ(u + (ϑ−1)d): doubling u (at fixed small ϑ−1) roughly doubles S.
  const double s1 = derive_cps_params(model(1.0, 0.02, 1.0001)).S;
  const double s2 = derive_cps_params(model(1.0, 0.04, 1.0001)).S;
  EXPECT_NEAR(s2 / s1, 2.0, 0.1);
}

TEST(ParamSolver, SkewScalesWithDriftTimesDelay) {
  // With u ≈ 0, S should scale with (ϑ−1)·d.
  const double s1 = derive_cps_params(model(1.0, 1e-6, 1.001)).S;
  const double s2 = derive_cps_params(model(2.0, 1e-6, 1.001)).S;
  EXPECT_NEAR(s2 / s1, 2.0, 0.05);
}

TEST(ParamSolver, InfeasibleAtLargeVartheta) {
  const CpsParams p = derive_cps_params(model(1.0, 0.05, 1.5));
  EXPECT_FALSE(p.feasible);
}

TEST(ParamSolver, Corollary4Threshold) {
  // The paper's constants give ϑ ≤ 1.11; our re-derived constants land in
  // the same ballpark. Pin the bracket (regression + sanity).
  const double threshold = ParamSolver::max_vartheta(1.0, 0.01);
  EXPECT_GT(threshold, 1.03);
  EXPECT_LT(threshold, 1.15);
  // Feasibility flips at the threshold.
  EXPECT_TRUE(derive_cps_params(model(1.0, 0.01, threshold - 1e-3)).feasible);
  EXPECT_FALSE(derive_cps_params(model(1.0, 0.01, threshold + 1e-3)).feasible);
}

TEST(ParamSolver, SlackScalesS) {
  const auto base = derive_cps_params(model(1.0, 0.05, 1.01), 1.0);
  const auto slacked = derive_cps_params(model(1.0, 0.05, 1.01), 2.0);
  EXPECT_NEAR(slacked.S, 2.0 * base.S, 1e-9);
  EXPECT_GT(slacked.T, base.T);
  EXPECT_THROW((void)ParamSolver(model(1.0, 0.05, 1.01)).solve(0.5),
               util::CheckFailure);
}

TEST(ParamSolver, WindowConstantsMatchFigure2) {
  const auto m = model(1.0, 0.05, 1.01);
  const CpsParams p = derive_cps_params(m);
  EXPECT_DOUBLE_EQ(p.echo_guard, m.d - 2.0 * m.u);
  EXPECT_DOUBLE_EQ(p.dealer_offset, m.vartheta * p.S);
  EXPECT_DOUBLE_EQ(p.accept_window,
                   m.vartheta * (m.d + (m.vartheta + 1.0) * p.S));
}

TEST(ParamSolver, PeriodsMatchTheorem17) {
  const auto m = model(1.0, 0.05, 1.01);
  const CpsParams p = derive_cps_params(m);
  EXPECT_NEAR(p.p_min, (p.T - (m.vartheta + 1.0) * p.S) / m.vartheta, 1e-12);
  EXPECT_NEAR(p.p_max, p.T + 3.0 * p.S, 1e-12);
}

TEST(ParamSolver, PminExceedsDPlusS) {
  // Needed by the synchronizer application (round-r messages arrive before
  // pulse r+1); holds whenever d > 2u.
  for (double u : {0.01, 0.1, 0.3}) {
    const auto p = derive_cps_params(model(1.0, u, 1.005));
    ASSERT_TRUE(p.feasible);
    EXPECT_GT(p.p_min, 1.0 + p.S);
  }
}

TEST(LwParams, FeasibleAndCheaperThanCps) {
  const auto m = model(1.0, 0.05, 1.01);
  const LwParams lw = derive_lw_params(m);
  const CpsParams cps = derive_cps_params(m);
  ASSERT_TRUE(lw.feasible);
  // LW's recursion only carries the validity error, so its S is at most
  // CPS's (no echo-consistency term).
  EXPECT_LE(lw.S, cps.S + 1e-12);
  EXPECT_GT(lw.S, 0.0);
}

TEST(StParams, SkewIsD) {
  const auto m = model(2.0, 0.05, 1.01);
  const StParams st = derive_st_params(m);
  EXPECT_DOUBLE_EQ(st.skew, 2.0);
  EXPECT_GT(st.T, 2.0 * m.d);
}

TEST(ModelParams, ResilienceFormulas) {
  EXPECT_EQ(sim::ModelParams::max_faults_signed(3), 1u);
  EXPECT_EQ(sim::ModelParams::max_faults_signed(4), 1u);
  EXPECT_EQ(sim::ModelParams::max_faults_signed(5), 2u);
  EXPECT_EQ(sim::ModelParams::max_faults_signed(8), 3u);
  EXPECT_EQ(sim::ModelParams::max_faults_signed(9), 4u);
  EXPECT_EQ(sim::ModelParams::max_faults_plain(3), 0u);
  EXPECT_EQ(sim::ModelParams::max_faults_plain(4), 1u);
  EXPECT_EQ(sim::ModelParams::max_faults_plain(7), 2u);
  EXPECT_EQ(sim::ModelParams::max_faults_plain(9), 2u);
  EXPECT_EQ(sim::ModelParams::max_faults_plain(10), 3u);
}

TEST(ModelParams, ValidationCatchesBadConfigs) {
  auto m = model(1.0, 0.05, 1.01);
  m.u = 0.6;  // violates d > 2u
  EXPECT_THROW(m.validate(), util::CheckFailure);
  m = model(1.0, 0.05, 1.0);  // vartheta must exceed 1
  EXPECT_THROW(m.validate(), util::CheckFailure);
  m = model(1.0, 0.05, 1.01);
  m.u_tilde = 0.01;  // u_tilde < u
  EXPECT_THROW(m.validate(), util::CheckFailure);
}

}  // namespace
}  // namespace crusader::core
