// Unit tests for the Figure-2 state machine (TcbInstance): acceptance
// window, echo guard, poisoning, and the Lemma 10/11 behaviours.

#include "core/tcb.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace crusader::core {
namespace {

// Canonical constants: L=10, W=2, guard=0.9 (d=1, u=0.05-ish scales).
TcbInstance::Config config() {
  return TcbInstance::Config{10.0, 2.0, 0.9};
}

TEST(TcbInstance, AcceptsInsideWindowAndOutputsAfterGuard) {
  TcbInstance inst(3, config());
  EXPECT_EQ(inst.state(), TcbInstance::State::kWaiting);
  EXPECT_TRUE(inst.on_direct(10.5));
  EXPECT_EQ(inst.state(), TcbInstance::State::kAccepted);
  EXPECT_DOUBLE_EQ(inst.accept_time(), 10.5);
  EXPECT_DOUBLE_EQ(inst.guard_deadline(), 11.4);
  inst.on_guard_elapsed();
  ASSERT_TRUE(inst.done());
  ASSERT_TRUE(inst.output().has_value());
  EXPECT_DOUBLE_EQ(*inst.output(), 10.5);
}

TEST(TcbInstance, RejectsBeforeWindowOpens) {
  // Boundary points carry the documented slack (sim::kBoundarySlack);
  // rejection applies strictly before the window.
  TcbInstance inst(3, config());
  EXPECT_FALSE(inst.on_direct(10.0 - 1e-6));
  EXPECT_FALSE(inst.on_direct(9.5));
  EXPECT_EQ(inst.state(), TcbInstance::State::kWaiting);
}

TEST(TcbInstance, AcceptsExactlyAtWindowClose) {
  // The Lemma-10 worst case achieves the window close with equality; the
  // simulator accepts it (see kBoundarySlack).
  TcbInstance inst(3, config());
  EXPECT_TRUE(inst.on_direct(12.0));
}

TEST(TcbInstance, RejectsAfterWindowCloses) {
  TcbInstance inst(3, config());
  EXPECT_FALSE(inst.on_direct(12.0 + 1e-5));  // beyond the slack
  EXPECT_FALSE(inst.on_direct(13.0));
  inst.on_window_close();
  ASSERT_TRUE(inst.done());
  EXPECT_FALSE(inst.output().has_value());
}

TEST(TcbInstance, SecondDirectIgnored) {
  TcbInstance inst(3, config());
  EXPECT_TRUE(inst.on_direct(10.5));
  EXPECT_FALSE(inst.on_direct(10.6));  // duplicate from the dealer
  inst.on_guard_elapsed();
  EXPECT_DOUBLE_EQ(*inst.output(), 10.5);
}

TEST(TcbInstance, EarlyThirdPartyPoisons) {
  // Echo observed before the direct message: instance must end ⊥, but the
  // direct message is still "accepted" (and must be forwarded).
  TcbInstance inst(3, config());
  inst.on_third_party(10.2);
  EXPECT_TRUE(inst.on_direct(10.5));  // forward happens
  ASSERT_TRUE(inst.done());           // …but output is ⊥
  EXPECT_FALSE(inst.output().has_value());
}

TEST(TcbInstance, ThirdPartyInsideGuardRejects) {
  TcbInstance inst(3, config());
  EXPECT_TRUE(inst.on_direct(10.5));
  inst.on_third_party(11.0);  // 11.0 < 10.5 + 0.9
  ASSERT_TRUE(inst.done());
  EXPECT_FALSE(inst.output().has_value());
}

TEST(TcbInstance, ThirdPartyAtGuardBoundaryHarmless) {
  TcbInstance inst(3, config());
  EXPECT_TRUE(inst.on_direct(10.5));
  inst.on_third_party(11.4);  // exactly h + guard: outside the open interval
  EXPECT_FALSE(inst.done());
  inst.on_guard_elapsed();
  ASSERT_TRUE(inst.output().has_value());
}

TEST(TcbInstance, ThirdPartyAfterGuardHarmless) {
  TcbInstance inst(3, config());
  EXPECT_TRUE(inst.on_direct(10.5));
  inst.on_guard_elapsed();
  inst.on_third_party(11.5);
  ASSERT_TRUE(inst.output().has_value());
  EXPECT_DOUBLE_EQ(*inst.output(), 10.5);
}

TEST(TcbInstance, ThirdPartyBeforePulseIgnored) {
  // Figure 2: the reject window starts at H_v(p_v); earlier copies do not
  // count (they belong to no instance).
  TcbInstance inst(3, config());
  inst.on_third_party(9.8);
  EXPECT_TRUE(inst.on_direct(10.5));
  EXPECT_FALSE(inst.done());  // not poisoned
  inst.on_guard_elapsed();
  EXPECT_TRUE(inst.output().has_value());
}

TEST(TcbInstance, TimeoutYieldsBot) {
  TcbInstance inst(3, config());
  inst.on_window_close();
  ASSERT_TRUE(inst.done());
  EXPECT_FALSE(inst.output().has_value());
}

TEST(TcbInstance, WindowCloseAfterAcceptKeepsWaitingForGuard) {
  TcbInstance inst(3, config());
  EXPECT_TRUE(inst.on_direct(11.9));
  inst.on_window_close();
  EXPECT_FALSE(inst.done());
  inst.on_guard_elapsed();
  EXPECT_TRUE(inst.output().has_value());
}

TEST(TcbInstance, GuardBeforeAcceptIsNoop) {
  TcbInstance inst(3, config());
  inst.on_guard_elapsed();
  EXPECT_EQ(inst.state(), TcbInstance::State::kWaiting);
}

TEST(TcbInstance, EventsAfterDoneIgnored) {
  TcbInstance inst(3, config());
  inst.on_window_close();
  ASSERT_TRUE(inst.done());
  EXPECT_FALSE(inst.on_direct(10.5));
  inst.on_third_party(10.6);
  inst.on_guard_elapsed();
  EXPECT_FALSE(inst.output().has_value());
}

TEST(TcbInstance, OutputBeforeDoneThrows) {
  TcbInstance inst(3, config());
  EXPECT_THROW((void)inst.output(), util::CheckFailure);
  EXPECT_THROW((void)inst.accept_time(), util::CheckFailure);
}

TEST(TcbInstance, RejectsNonPositiveGuard) {
  EXPECT_THROW(TcbInstance(0, TcbInstance::Config{0.0, 1.0, 0.0}),
               util::CheckFailure);
  EXPECT_THROW(TcbInstance(0, TcbInstance::Config{0.0, 0.0, 0.5}),
               util::CheckFailure);
}

// Lemma 11 scenario check at the state-machine level: two nodes accept the
// same (faulty) dealer at times differing by more than the guard allows once
// echoes propagate. Modeled here abstractly: if v accepts at h_v and w's echo
// (sent at its accept time h_w, arriving ≥ d−u later ≈ within guard) lands
// inside (h_v, h_v+guard), v rejects.
TEST(TcbInstance, SpreadAcceptanceCollapsesViaEcho) {
  TcbInstance late(3, config());
  // Dealer reached this node late in its window:
  EXPECT_TRUE(late.on_direct(11.5));
  // Another honest node accepted much earlier (say 10.1) and echoed; the
  // echo arrives here around 10.1 + d ≈ 11.1… (local), within the guard:
  late.on_third_party(11.9);  // 11.9 < 11.5 + 0.9 = 12.4 → reject
  ASSERT_TRUE(late.done());
  EXPECT_FALSE(late.output().has_value());
}

}  // namespace
}  // namespace crusader::core
