// Streamed, resumable sweep campaigns: ordered streaming sink, CSV +
// manifest reconciliation after a kill, timed_out row round-trips, the relay
// analysis memo cache, and the skew_ratio history / trend gate.

#include "runner/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "relay/flood_world.hpp"
#include "relay/topology.hpp"
#include "runner/export.hpp"
#include "runner/history.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"

namespace crusader::runner {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Small mixed-world grid (complete + relay) — quick, but exercises both
/// result shapes through the campaign files.
std::vector<ScenarioSpec> campaign_specs() {
  SweepGrid grid;
  grid.worlds = {WorldKind::kComplete, WorldKind::kRelay};
  grid.protocols = {baselines::ProtocolKind::kCps,
                    baselines::ProtocolKind::kSrikanthToueg};
  grid.ns = {4, 6};
  grid.fault_loads = {0, SweepGrid::kMaxResilience};
  grid.topologies = {TopologyKind::kRing};
  grid.us = {0.02};
  grid.varthetas = {1.002};
  grid.rounds = 4;
  grid.warmup = 1;
  return grid.expand();
}

struct Paths {
  std::string csv;
  std::string manifest;
};

Paths temp_paths(const std::string& stem) {
  const std::string dir = ::testing::TempDir();
  return {dir + "/" + stem + ".csv", dir + "/" + stem + ".manifest"};
}

void remove_paths(const Paths& paths) {
  std::filesystem::remove(paths.csv);
  std::filesystem::remove(paths.manifest);
}

/// Complete campaign run in one go; returns the CSV bytes.
std::string run_full_campaign(const std::vector<ScenarioSpec>& specs,
                              const Paths& paths, unsigned threads) {
  remove_paths(paths);
  RunnerOptions options;
  options.threads = threads;
  CsvCampaign campaign({paths.csv, paths.manifest, 2, options.base_seed},
                       specs);
  run_sweep_streamed(specs, options,
                     [&](const ScenarioResult& r) { campaign.append(r); });
  campaign.finish();
  return slurp(paths.csv);
}

TEST(Stream, SinkSeesSpecOrderOnEveryThreadCount) {
  const auto specs = campaign_specs();
  ASSERT_GE(specs.size(), 6u);
  for (const unsigned threads : {1u, 4u}) {
    RunnerOptions options;
    options.threads = threads;
    std::vector<std::uint64_t> seen;
    run_sweep_streamed(specs, options, [&](const ScenarioResult& r) {
      seen.push_back(r.spec.key());
    });
    ASSERT_EQ(seen.size(), specs.size()) << threads << " threads";
    for (std::size_t i = 0; i < specs.size(); ++i)
      EXPECT_EQ(seen[i], specs[i].key()) << "position " << i;
  }
}

TEST(Stream, StreamedCsvMatchesAccumulatedReport) {
  const auto specs = campaign_specs();
  std::ostringstream streamed;
  streamed << csv_header() << '\n';
  run_sweep_streamed(specs, {}, [&](const ScenarioResult& r) {
    write_csv_row(streamed, r);
  });
  std::ostringstream whole;
  write_csv(whole, run_sweep(specs, {}));
  EXPECT_EQ(streamed.str(), whole.str());
}

TEST(Campaign, ResumeAfterKillIsByteIdentical) {
  const auto specs = campaign_specs();
  ASSERT_GE(specs.size(), 8u);

  const auto clean_paths = temp_paths("campaign_clean");
  const std::string clean = run_full_campaign(specs, clean_paths, 1);

  // Interrupted run: record 5 rows with a 2-row checkpoint interval, then
  // "die" without finish() — the manifest is left one checkpoint (4 rows)
  // behind the CSV (5 rows), exactly the torn state a kill produces.
  const auto paths = temp_paths("campaign_killed");
  remove_paths(paths);
  {
    CsvCampaign campaign({paths.csv, paths.manifest, 2, 1}, specs);
    for (std::size_t i = 0; i < 5; ++i)
      campaign.append(run_scenario(specs[i]));
    // no finish(): simulated kill
  }
  EXPECT_NE(slurp(paths.csv), clean);

  // Resume: reconcile (trim the CSV back to the checkpoint), then run the
  // remainder on 4 threads. The final file must match the uninterrupted
  // 1-thread run byte for byte.
  std::size_t replayed = 0;
  CsvCampaign resumed({paths.csv, paths.manifest, 2, 1}, specs,
                      [&](const ScenarioResult&) { ++replayed; });
  EXPECT_EQ(resumed.resume_index(), 4u);  // 5 rows, checkpoint at 4
  EXPECT_EQ(replayed, 4u);
  RunnerOptions options;
  options.threads = 4;
  const std::vector<ScenarioSpec> todo(specs.begin() + resumed.resume_index(),
                                       specs.end());
  run_sweep_streamed(todo, options, [&](const ScenarioResult& r) {
    resumed.append(r);
  });
  resumed.finish();
  EXPECT_EQ(slurp(paths.csv), clean);
  remove_paths(paths);
  remove_paths(clean_paths);
}

TEST(Campaign, ResumeAfterExternalCsvTruncation) {
  const auto specs = campaign_specs();
  const auto clean_paths = temp_paths("campaign_clean2");
  const std::string clean = run_full_campaign(specs, clean_paths, 1);

  const auto paths = temp_paths("campaign_truncated");
  run_full_campaign(specs, paths, 1);
  // Truncate the CSV mid-file (mid-row, even): the manifest now claims more
  // rows than the CSV holds; resume must trust the shorter prefix.
  std::filesystem::resize_file(paths.csv, clean.size() / 2);

  std::size_t replayed = 0;
  CsvCampaign resumed({paths.csv, paths.manifest, 2, 1}, specs,
                      [&](const ScenarioResult&) { ++replayed; });
  EXPECT_LT(resumed.resume_index(), specs.size());
  EXPECT_EQ(replayed, resumed.resume_index());
  const std::vector<ScenarioSpec> todo(specs.begin() + resumed.resume_index(),
                                       specs.end());
  run_sweep_streamed(todo, {}, [&](const ScenarioResult& r) {
    resumed.append(r);
  });
  resumed.finish();
  EXPECT_EQ(slurp(paths.csv), clean);
  remove_paths(paths);
  remove_paths(clean_paths);
}

TEST(Campaign, TornManifestTailIsDiscardedNotMisparsed) {
  // A kill mid-checkpoint can leave a digest torn mid-write (no newline).
  // The truncated number must not be parsed as a real digest — that would
  // fail the prefix check and refuse a perfectly resumable campaign.
  const auto specs = campaign_specs();
  const auto clean_paths = temp_paths("campaign_clean3");
  const std::string clean = run_full_campaign(specs, clean_paths, 1);

  const auto paths = temp_paths("campaign_torn");
  run_full_campaign(specs, paths, 1);
  {
    std::ofstream manifest(paths.manifest, std::ios::app | std::ios::binary);
    manifest << "1234";  // torn: no terminating newline
  }
  CsvCampaign resumed({paths.csv, paths.manifest, 2, 1}, specs);
  EXPECT_EQ(resumed.resume_index(), specs.size());  // all rows intact
  resumed.finish();
  EXPECT_EQ(slurp(paths.csv), clean);
  remove_paths(paths);
  remove_paths(clean_paths);
}

TEST(Campaign, EmptyManifestMeansZeroRecordedRows) {
  // A kill between the fresh CSV header flush and the manifest header flush
  // leaves an empty manifest file next to a header-only CSV; the campaign
  // must restart cleanly, not refuse forever.
  const auto specs = campaign_specs();
  const auto clean_paths = temp_paths("campaign_clean4");
  const std::string clean = run_full_campaign(specs, clean_paths, 1);

  const auto paths = temp_paths("campaign_emptymanifest");
  remove_paths(paths);
  {
    std::ofstream csv(paths.csv, std::ios::binary);
    csv << csv_header() << '\n';
    std::ofstream manifest(paths.manifest, std::ios::binary);  // empty
  }
  CsvCampaign resumed({paths.csv, paths.manifest, 2, 1}, specs);
  EXPECT_EQ(resumed.resume_index(), 0u);
  run_sweep_streamed(specs, {}, [&](const ScenarioResult& r) {
    resumed.append(r);
  });
  resumed.finish();
  EXPECT_EQ(slurp(paths.csv), clean);
  remove_paths(paths);
  remove_paths(clean_paths);
}

TEST(Campaign, RejectsMismatchedGridSeedAndSchema) {
  const auto specs = campaign_specs();
  const auto paths = temp_paths("campaign_guard");
  run_full_campaign(specs, paths, 1);

  // Different grid: recorded digests are not a prefix of it.
  auto other = specs;
  other[0].rounds += 1;
  EXPECT_THROW(CsvCampaign({paths.csv, paths.manifest, 2, 1}, other),
               std::runtime_error);

  // Different base seed: the manifest header remembers.
  EXPECT_THROW(CsvCampaign({paths.csv, paths.manifest, 2, 7}, specs),
               std::runtime_error);

  // Missing manifest next to an existing CSV: refuse to guess.
  std::filesystem::remove(paths.manifest);
  EXPECT_THROW(CsvCampaign({paths.csv, paths.manifest, 2, 1}, specs),
               std::runtime_error);
  remove_paths(paths);
}

TEST(Budget, TimedOutRowsRoundTripThroughCsvAndReplay) {
  ScenarioSpec spec;  // default CPS fault-free n=4
  spec.rounds = 500;  // plenty of work to outlast a microscopic budget
  RunnerOptions options;
  options.budget_ms = 0.001;
  const auto result = run_scenario(spec, options);
  ASSERT_TRUE(result.timed_out);
  EXPECT_TRUE(result.error.empty());  // a budget abort is not a world error
  EXPECT_EQ(result.rounds_completed, 0u);
  EXPECT_TRUE(violates_gate(result, 1e9));  // gates never go green on it

  // CSV round trip.
  SweepReport report;
  report.results.push_back(result);
  std::ostringstream os;
  write_csv(os, report);
  const auto csv = os.str();
  const auto ends = csv_record_ends(csv);
  ASSERT_EQ(ends.size(), 2u);
  const auto header = parse_csv_fields(
      std::string_view(csv).substr(0, ends[0] - 1));
  const auto row = parse_csv_fields(
      std::string_view(csv).substr(ends[0], ends[1] - ends[0] - 1));
  ASSERT_EQ(header.size(), row.size());
  std::optional<std::size_t> timed_out_col;
  std::optional<std::size_t> max_skew_col;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "timed_out") timed_out_col = i;
    if (header[i] == "max_skew") max_skew_col = i;
  }
  ASSERT_TRUE(timed_out_col.has_value());
  ASSERT_TRUE(max_skew_col.has_value());
  EXPECT_EQ(row[*timed_out_col], "1");
  EXPECT_EQ(row[*max_skew_col], "");  // aborted runs export no metrics

  // A recorded timed_out row is retryable: resume cuts the prefix at it
  // (see Budget.ResumeRetriesTimedOutRowsInsteadOfBakingThemIn for the
  // full retry round trip).
  const auto paths = temp_paths("campaign_timeout");
  remove_paths(paths);
  const std::vector<ScenarioSpec> specs{spec};
  {
    CsvCampaign campaign({paths.csv, paths.manifest, 1, 1}, specs);
    campaign.append(result);
    campaign.finish();
  }
  std::vector<ScenarioResult> replayed;
  CsvCampaign resumed({paths.csv, paths.manifest, 1, 1}, specs,
                      [&](const ScenarioResult& r) { replayed.push_back(r); });
  EXPECT_EQ(resumed.resume_index(), 0u);  // the timed-out cell re-runs
  EXPECT_TRUE(replayed.empty());
  remove_paths(paths);
}

TEST(Budget, ResumeRetriesTimedOutRowsInsteadOfBakingThemIn) {
  // A timed_out row records a scheduling accident, not a measurement; a
  // campaign resumed later (lighter load, bigger budget) must re-run it
  // rather than replay the failure forever.
  const auto specs = campaign_specs();
  const auto paths = temp_paths("campaign_retry");
  remove_paths(paths);
  {
    CsvCampaign campaign({paths.csv, paths.manifest, 1, 1}, specs);
    campaign.append(run_scenario(specs[0]));
    campaign.append(run_scenario(specs[1]));
    auto hung = run_scenario(specs[2]);  // forge a budget abort at row 2
    hung.timed_out = true;
    hung.error.clear();
    campaign.append(hung);
    campaign.append(run_scenario(specs[3]));
    campaign.finish();
  }
  std::size_t replayed = 0;
  CsvCampaign resumed({paths.csv, paths.manifest, 1, 1}, specs,
                      [&](const ScenarioResult& r) {
                        EXPECT_FALSE(r.timed_out);
                        ++replayed;
                      });
  EXPECT_EQ(resumed.resume_index(), 2u);  // cut at the timed_out row
  EXPECT_EQ(replayed, 2u);

  // Completing the resume yields the clean-run bytes: the retried cell's
  // real result replaces the timeout.
  const std::vector<ScenarioSpec> todo(specs.begin() + resumed.resume_index(),
                                       specs.end());
  run_sweep_streamed(todo, {}, [&](const ScenarioResult& r) {
    resumed.append(r);
  });
  resumed.finish();
  const auto clean_paths = temp_paths("campaign_retry_clean");
  const std::string clean = run_full_campaign(specs, clean_paths, 1);
  EXPECT_EQ(slurp(paths.csv), clean);
  remove_paths(paths);
  remove_paths(clean_paths);
}

TEST(Budget, GenerousBudgetChangesNothing) {
  ScenarioSpec spec;
  spec.rounds = 4;
  spec.warmup = 1;
  RunnerOptions with_budget;
  with_budget.budget_ms = 60000.0;
  const auto budgeted = run_scenario(spec, with_budget);
  const auto plain = run_scenario(spec, {});
  EXPECT_FALSE(budgeted.timed_out);
  EXPECT_EQ(budgeted.max_skew, plain.max_skew);
  EXPECT_EQ(budgeted.messages, plain.messages);
}

TEST(MemoCache, HitReturnsIdenticalEffectiveOnRandomFamily) {
  // The random family is the cache's sharp edge: the realized graph depends
  // on the seed, so the key folds it in and a hit must reproduce the
  // uncached analysis exactly.
  relay::RelayConfig config;
  config.topology = relay::Topology::random_connected(8, 2, 12345);
  config.hop_model.n = 8;
  config.hop_model.f = 2;
  config.hop_model.d = 1.0;
  config.hop_model.u = 0.01;
  config.hop_model.u_tilde = 0.01;
  config.hop_model.vartheta = 1.001;
  config.faulty = {0, 1};

  const auto uncached = relay::compute_effective(config);
  relay::EffectiveCache cache;
  const auto miss = cache.get(42, config);
  const auto hit = cache.get(42, config);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  for (const auto& eff : {miss, hit}) {
    EXPECT_EQ(eff.worst_hops, uncached.worst_hops);
    EXPECT_EQ(eff.model.d, uncached.model.d);
    EXPECT_EQ(eff.model.u, uncached.model.u);
    EXPECT_EQ(eff.model.u_tilde, uncached.model.u_tilde);
    EXPECT_EQ(eff.model.vartheta, uncached.model.vartheta);
  }

  // A different key (different seed's graph) re-analyzes.
  relay::RelayConfig other = config;
  other.topology = relay::Topology::random_connected(8, 2, 999);
  const auto fresh = cache.get(43, other);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(fresh.worst_hops, relay::compute_effective(other).worst_hops);
}

TEST(MemoCache, ConcurrentGetsAreRaceFreeAndConsistent) {
  // Regression for the cache's lock discipline (shared access from sweep
  // workers): hammer one cache from several threads with a mix of repeated
  // and distinct keys. Under TSan this is the race probe; on a plain build
  // it still checks the counter bookkeeping stays exact (misses == number
  // of distinct keys, every other lookup a hit) and that hot-key results
  // match the uncached analysis bit-for-bit.
  constexpr int kThreads = 4;
  constexpr int kRepeats = 8;
  constexpr int kDistinct = 3;

  std::vector<relay::RelayConfig> configs(kDistinct);
  for (int k = 0; k < kDistinct; ++k) {
    auto& config = configs[k];
    config.topology = relay::Topology::random_connected(8, 2, 1000 + k);
    config.hop_model.n = 8;
    config.hop_model.f = 2;
    config.hop_model.d = 1.0;
    config.hop_model.u = 0.01;
    config.hop_model.u_tilde = 0.01;
    config.hop_model.vartheta = 1.001;
    config.faulty = {0, 1};
  }
  const auto expected = relay::compute_effective(configs[0]);

  relay::EffectiveCache cache;
  std::vector<relay::RelayEffective> hot(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int r = 0; r < kRepeats; ++r) {
        for (int k = 0; k < kDistinct; ++k) {
          const auto eff =
              cache.get(static_cast<std::uint64_t>(k), configs[k]);
          if (k == 0) hot[t] = eff;
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kRepeats * kDistinct);
  // Concurrent first lookups may each miss-and-analyze before the winner's
  // emplace lands, so misses can exceed kDistinct — but never the first
  // wave of lookups, and the steady state must be all hits.
  EXPECT_GE(cache.misses(), static_cast<std::uint64_t>(kDistinct));
  EXPECT_LE(cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kDistinct);
  for (const auto& eff : hot) {
    EXPECT_EQ(eff.worst_hops, expected.worst_hops);
    EXPECT_EQ(eff.model.d, expected.model.d);
    EXPECT_EQ(eff.model.u, expected.model.u);
    EXPECT_EQ(eff.model.u_tilde, expected.model.u_tilde);
    EXPECT_EQ(eff.model.vartheta, expected.model.vartheta);
  }
}

TEST(MemoCache, CachedSweepCsvIdenticalToUncached) {
  // Runner-level identity: the cache must be invisible in the results, on a
  // grid that mixes the seed-grown random family with a deterministic one
  // and multiplies the relay-fault axis (where the sharing happens).
  SweepGrid grid;
  grid.worlds = {WorldKind::kRelay};
  grid.protocols = {baselines::ProtocolKind::kCps};
  grid.ns = {6};
  grid.fault_loads = {SweepGrid::kMaxResilience};
  grid.topologies = {TopologyKind::kRing, TopologyKind::kRandomConnected};
  grid.relay_faults = {relay::RelayFaultKind::kCrash,
                       relay::RelayFaultKind::kMaxDelay,
                       relay::RelayFaultKind::kReorder};
  grid.us = {0.01};
  grid.varthetas = {1.001};
  grid.rounds = 4;
  grid.warmup = 1;
  const auto specs = grid.expand();
  ASSERT_GE(specs.size(), 6u);

  RunnerOptions cached;
  cached.threads = 4;
  relay::EffectiveCache cache;
  cached.shared_relay_cache = &cache;
  RunnerOptions uncached;
  uncached.threads = 4;
  uncached.relay_cache = false;

  std::ostringstream with_cache;
  write_csv(with_cache, run_sweep(specs, cached));
  std::ostringstream without_cache;
  write_csv(without_cache, run_sweep(specs, uncached));
  EXPECT_EQ(with_cache.str(), without_cache.str());
  // The ring's three fault kinds shared one analysis; the random family
  // re-analyzed per seed (here: one seed, shared across its fault kinds).
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_LT(cache.misses(), specs.size());
}

TEST(History, LineFormatRoundTrips) {
  HistoryEntry entry;
  entry.seed = 7;
  entry.grid = 0xdeadbeefULL;
  entry.cells = 36;
  entry.errors = 1;
  entry.timed_out = 2;
  entry.worlds.push_back({WorldKind::kComplete, 0.8125, 0.5, 30});
  entry.worlds.push_back({WorldKind::kTheorem5, 1.0625, 1.03125, 3});

  const auto line = format_history_line(entry);
  const auto parsed = parse_history_line(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_EQ(parsed->grid, 0xdeadbeefULL);
  EXPECT_EQ(parsed->cells, 36u);
  EXPECT_EQ(parsed->errors, 1u);
  EXPECT_EQ(parsed->timed_out, 2u);
  ASSERT_EQ(parsed->worlds.size(), 2u);
  EXPECT_EQ(parsed->worlds[0].world, WorldKind::kComplete);
  EXPECT_EQ(parsed->worlds[0].max, 0.8125);
  EXPECT_EQ(parsed->worlds[0].mean, 0.5);
  EXPECT_EQ(parsed->worlds[0].count, 30u);
  EXPECT_EQ(parsed->worlds[1].world, WorldKind::kTheorem5);
  EXPECT_EQ(parsed->worlds[1].max, 1.0625);

  EXPECT_FALSE(parse_history_line("").has_value());
  EXPECT_FALSE(parse_history_line("# comment").has_value());
  EXPECT_FALSE(parse_history_line("seed=x cells=3").has_value());
  EXPECT_FALSE(parse_history_line("cells=3").has_value());  // no seed
  EXPECT_FALSE(
      parse_history_line("seed=1 cells=3 mars:max=1,mean=1,count=1")
          .has_value());
  EXPECT_FALSE(
      parse_history_line("seed=1 cells=3 complete:max=1,mean=1").has_value());
}

TEST(History, LoadLastEntrySkipsHeaderAndGarbage) {
  std::istringstream is(
      "# crusader skew_ratio history v1\n"
      "seed=1 cells=4 errors=0 timed_out=0 complete:max=0.5,mean=0.4,count=4\n"
      "garbage line\n"
      "seed=1 cells=4 errors=0 timed_out=0 complete:max=0.7,mean=0.6,count=4\n");
  const auto last = load_last_entry(is);
  ASSERT_TRUE(last.has_value());
  ASSERT_EQ(last->worlds.size(), 1u);
  EXPECT_EQ(last->worlds[0].max, 0.7);
}

TEST(History, BaselineSelectionSkipsOtherGridsAndIncompleteRuns) {
  // The CLI's trend baseline is the last COMPARABLE and COMPLETE entry:
  // lines from other grids (different axes or seed) and lines with
  // errors/timeouts must never become the bar a healthy run is judged by.
  std::istringstream is(
      "seed=1 grid=111 cells=4 errors=0 timed_out=0 "
      "complete:max=0.5,mean=0.4,count=4\n"
      "seed=1 grid=222 cells=8 errors=0 timed_out=0 "
      "complete:max=0.2,mean=0.1,count=8\n"
      "seed=1 grid=111 cells=4 errors=1 timed_out=0 "
      "complete:max=0.1,mean=0.1,count=2\n");
  const auto baseline = load_baseline(is, 111);
  ASSERT_TRUE(baseline.has_value());
  // Not the other grid's 0.2, not the errored run's 0.1.
  EXPECT_EQ(baseline->worlds[0].max, 0.5);

  std::istringstream none(
      "seed=1 grid=222 cells=8 errors=0 timed_out=0 "
      "complete:max=0.2,mean=0.1,count=8\n");
  EXPECT_FALSE(load_baseline(none, 111).has_value());

  // Two grids differing in any axis (or seed) digest differently.
  SweepGrid a;
  a.rounds = 4;
  SweepGrid b;
  b.rounds = 5;
  EXPECT_NE(grid_digest(a.expand(), 1), grid_digest(b.expand(), 1));
  EXPECT_NE(grid_digest(a.expand(), 1), grid_digest(a.expand(), 2));
  EXPECT_EQ(grid_digest(a.expand(), 1), grid_digest(a.expand(), 1));
}

TEST(Runner, OutOfRangeCustomTargetErrorsTheCell) {
  // custom:target:<node> past the cluster would silently run the trivial
  // all-minimum policy; the runner must error the cell instead.
  ScenarioSpec spec;
  spec.n = 4;
  spec.rounds = 3;
  spec.custom_delay = *parse_custom_delay("custom:target:7");
  const auto result = run_scenario(spec);
  EXPECT_FALSE(result.error.empty());
  EXPECT_NE(result.error.find("out of range"), std::string::npos)
      << result.error;
  EXPECT_TRUE(violates_gate(result, 1e9));

  spec.custom_delay = *parse_custom_delay("custom:target:3");  // n-1: fine
  const auto in_range = run_scenario(spec);
  EXPECT_TRUE(in_range.error.empty()) << in_range.error;
}

TEST(History, TrendGateFailsOnRegressionAndIncompleteRuns) {
  HistoryEntry baseline;
  baseline.seed = 1;
  baseline.cells = 10;
  baseline.worlds.push_back({WorldKind::kComplete, 0.8, 0.5, 10});

  HistoryEntry same = baseline;
  EXPECT_TRUE(check_trend(baseline, same, 0.0).empty());

  HistoryEntry within = baseline;
  within.worlds[0].max = 0.82;  // +2.5% under a 5% gate
  EXPECT_TRUE(check_trend(baseline, within, 5.0).empty());

  HistoryEntry regressed = baseline;
  regressed.worlds[0].max = 0.9;  // +12.5%
  EXPECT_FALSE(check_trend(baseline, regressed, 5.0).empty());
  EXPECT_TRUE(check_trend(baseline, regressed, 20.0).empty());

  // A world with no baseline passes (nothing to regress against) — and so
  // does the very first run.
  HistoryEntry new_world = baseline;
  new_world.worlds[0].world = WorldKind::kRelay;
  EXPECT_TRUE(check_trend(baseline, new_world, 0.0).empty());
  EXPECT_TRUE(check_trend(std::nullopt, regressed, 0.0).empty());

  // Errors and timeouts fail the trend gate regardless of ratios: the run
  // did not fully execute.
  HistoryEntry errored = baseline;
  errored.errors = 1;
  EXPECT_FALSE(check_trend(baseline, errored, 5.0).empty());
  HistoryEntry hung = baseline;
  hung.timed_out = 1;
  EXPECT_FALSE(check_trend(std::nullopt, hung, 5.0).empty());
}

TEST(History, SummaryFeedsEntryAndAppendLoadsBack) {
  const auto specs = campaign_specs();
  SweepSummary summary;
  summary.gate_ratio = 1.0;
  run_sweep_streamed(specs, {}, [&](const ScenarioResult& r) {
    summary.add(r);
  });
  EXPECT_EQ(summary.scenarios, specs.size());
  EXPECT_EQ(summary.errors, 0u);
  ASSERT_GE(summary.worlds.size(), 2u);  // complete + relay

  const auto entry = make_history_entry(summary, 1);
  EXPECT_EQ(entry.cells, specs.size());

  const std::string path = ::testing::TempDir() + "/history_roundtrip.txt";
  std::filesystem::remove(path);
  append_history(path, entry);
  append_history(path, entry);
  std::ifstream is(path);
  const auto last = load_last_entry(is);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->cells, entry.cells);
  ASSERT_EQ(last->worlds.size(), entry.worlds.size());
  EXPECT_EQ(last->worlds[0].max, entry.worlds[0].max);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace crusader::runner
