// Negative-compile probe for the thread-safety lane.
//
// This translation unit deliberately reads and writes a CS_GUARDED_BY
// member without holding its mutex. It is NOT part of any shipped target:
// CMake wraps it in an EXCLUDE_FROM_ALL object library whose build is
// registered as a ctest with WILL_FAIL, gated on clang. If the analysis
// ever stops rejecting this file (macro rot, flag dropped from the lane),
// the test goes green-on-build and ctest reports the failure.
#include "util/thread_safety.hpp"

namespace negative {

struct Counter {
  util::Mutex mu;
  long hits CS_GUARDED_BY(mu) = 0;

  void bump_locked() {
    util::MutexLock lock(mu);
    ++hits;  // fine: lock held
  }

  void bump_racy() {
    ++hits;  // must fail: writing guarded state without mu
  }

  long peek_racy() const {
    return hits;  // must fail: reading guarded state without mu
  }
};

long drive() {
  Counter c;
  c.bump_locked();
  c.bump_racy();
  return c.peek_racy();
}

}  // namespace negative
