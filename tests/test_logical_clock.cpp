// Logical clocks by interpolation (paper intro / [14, Ch. 9]): bounded skew
// and monotone readings derived from pulse traces.

#include "core/logical_clock.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "util/check.hpp"

namespace crusader::core {
namespace {

using baselines::ProtocolKind;

sim::PulseTrace synthetic_trace() {
  // Two honest nodes pulsing with period 2, skew 0.2.
  sim::PulseTrace trace(2, {false, false});
  for (int r = 0; r < 5; ++r) {
    trace.record(0, 2.0 * r + 1.0, 2.0 * r + 1.0);
    trace.record(1, 2.0 * r + 1.2, 2.0 * r + 1.2);
  }
  return trace;
}

TEST(LogicalClockView, AnchorsAtPulses) {
  const auto trace = synthetic_trace();
  LogicalClockView view(trace, 0, /*tick=*/10.0);
  EXPECT_DOUBLE_EQ(view.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(view.at(3.0), 10.0);
  EXPECT_DOUBLE_EQ(view.at(9.0), 40.0);
}

TEST(LogicalClockView, InterpolatesBetweenPulses) {
  const auto trace = synthetic_trace();
  LogicalClockView view(trace, 0, 10.0);
  EXPECT_NEAR(view.at(2.0), 5.0, 1e-12);
  EXPECT_NEAR(view.at(1.5), 2.5, 1e-12);
}

TEST(LogicalClockView, ClampsOutsideDomain) {
  const auto trace = synthetic_trace();
  LogicalClockView view(trace, 0, 10.0);
  EXPECT_DOUBLE_EQ(view.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(view.at(100.0), 40.0);
  EXPECT_DOUBLE_EQ(view.domain_begin(), 1.0);
  EXPECT_DOUBLE_EQ(view.domain_end(), 9.0);
}

TEST(LogicalClockView, Monotone) {
  const auto trace = synthetic_trace();
  LogicalClockView view(trace, 1, 7.0);
  double prev = -1.0;
  for (double t = 0.0; t < 11.0; t += 0.05) {
    const double cur = view.at(t);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(LogicalClockView, NeedsTwoPulses) {
  sim::PulseTrace trace(1, {false});
  trace.record(0, 1.0, 1.0);
  EXPECT_THROW(LogicalClockView(trace, 0, 1.0), util::CheckFailure);
}

TEST(MaxLogicalSkew, SyntheticBound) {
  const auto trace = synthetic_trace();
  // Pulse skew 0.2 on period 2.0 with tick 10 → logical skew = 1.0.
  const double skew = max_logical_skew(trace, 10.0, 200);
  EXPECT_NEAR(skew, 1.0, 0.05);
}

TEST(MaxLogicalSkew, FromCpsRun) {
  // End-to-end: run CPS, derive logical clocks, check the documented bound
  // Λ·(S/P_min + (P_max−P_min)/P_min).
  const auto model = crusader::testing::small_model(5, 2);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  const auto result = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, 2, core::ByzStrategy::kRandom, 23, 25);
  ASSERT_TRUE(result.trace.live(25));

  const double tick = 100.0;
  const double skew = max_logical_skew(result.trace, tick, 500);
  const double bound = tick * (setup.cps.S / setup.cps.p_min +
                               (setup.cps.p_max - setup.cps.p_min) /
                                   setup.cps.p_min);
  EXPECT_LE(skew, bound + 1e-6);
  EXPECT_GT(skew, 0.0);
}

TEST(MaxLogicalSkew, TighterWhenPulsesTighter) {
  // Logical skew tracks pulse skew: a fault-free max-delay world (near-zero
  // steady-state skew) must beat an adversarial one.
  const auto model = crusader::testing::small_model(5, 2);
  const auto quiet = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, 0, core::ByzStrategy::kCrash, 3, 25,
      sim::ClockKind::kNominal, sim::DelayKind::kMax);
  const auto noisy = crusader::testing::run_protocol(
      ProtocolKind::kCps, model, 2, core::ByzStrategy::kSplit, 3, 25,
      sim::ClockKind::kSpread, sim::DelayKind::kSplit, 0.0, 0.2);
  const double tick = 10.0;
  EXPECT_LE(max_logical_skew(quiet.trace, tick, 300),
            max_logical_skew(noisy.trace, tick, 300) + 1e-9);
}

}  // namespace
}  // namespace crusader::core
