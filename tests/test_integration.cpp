// End-to-end integration: HMAC-backed PKI, random-walk clocks, random
// adversaries, long horizons — everything at once, plus cross-protocol
// sanity comparisons.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>

#include "core/logical_clock.hpp"
#include "helpers.hpp"
#include "lowerbound/theorem5.hpp"

namespace crusader {
namespace {

using baselines::ProtocolKind;

TEST(Integration, CpsWithHmacPkiAndRandomWalkClocks) {
  const auto model = testing::small_model(5, 2);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  auto honest = baselines::make_protocol_factory(setup);
  auto byz = core::make_byzantine_factory(core::ByzStrategy::kRandom, honest,
                                          99);

  auto config = testing::world_config(model, setup, 20, 99);
  config.pki_kind = crypto::Pki::Kind::kHmac;
  config.clock_kind = sim::ClockKind::kRandomWalk;
  config.faulty = sim::default_faulty_set(2);
  sim::World world(config, honest, byz);
  const auto result = world.run();

  ASSERT_TRUE(result.trace.live(20));
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
  EXPECT_GT(result.sign_ops, 0u);
  EXPECT_GT(result.verify_ops, 0u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(Integration, HmacAndSymbolicSchemesAgreeOnTraces) {
  // The signature scheme must be protocol-transparent: identical seeds and
  // configs yield identical pulse traces regardless of the scheme.
  const auto model = testing::small_model(4, 1);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  auto run_with = [&](crypto::Pki::Kind kind) {
    auto honest = baselines::make_protocol_factory(setup);
    auto byz =
        core::make_byzantine_factory(core::ByzStrategy::kCrash, honest, 1);
    auto config = testing::world_config(model, setup, 15, 42);
    config.pki_kind = kind;
    config.faulty = {3};
    sim::World world(config, honest, byz);
    return world.run();
  };
  const auto sym = run_with(crypto::Pki::Kind::kSymbolic);
  const auto hmac = run_with(crypto::Pki::Kind::kHmac);
  ASSERT_EQ(sym.trace.complete_rounds(), hmac.trace.complete_rounds());
  for (NodeId v = 0; v < 3; ++v) {
    for (std::size_t r = 0; r < sym.trace.complete_rounds(); ++r) {
      EXPECT_DOUBLE_EQ(sym.trace.pulse_time(v, r),
                       hmac.trace.pulse_time(v, r));
    }
  }
}

TEST(Integration, LongRunStability) {
  // 120 rounds under a colluding pull attack: skew must not creep.
  const auto model = testing::small_model(5, 2);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  const auto result = testing::run_protocol(
      ProtocolKind::kCps, model, 2, core::ByzStrategy::kPullEarly, 5, 120);
  ASSERT_TRUE(result.trace.live(120));
  const auto skews = result.trace.skews();
  // Compare early steady state vs late steady state: no degradation trend.
  double early = 0.0, late = 0.0;
  for (std::size_t r = 10; r < 40; ++r) early = std::max(early, skews[r]);
  for (std::size_t r = 90; r < 120; ++r) late = std::max(late, skews[r]);
  EXPECT_LE(late, early * 1.5 + 0.01);
  EXPECT_LE(result.trace.max_skew(10), setup.cps.S + 1e-9);
}

TEST(Integration, ThreeProtocolsSideBySide) {
  // The paper's positioning table, as a test: at f = ⌈n/2⌉−1 under attack,
  // CPS holds a small skew; ST holds ~d; LW (run beyond its resilience) is
  // strictly worse than CPS.
  const std::uint32_t n = 6;
  const std::uint32_t f = 2;
  const auto model = testing::small_model(n, f);
  const auto cps_setup = baselines::make_setup(ProtocolKind::kCps, model);
  const auto lw_setup = baselines::make_setup(ProtocolKind::kLynchWelch, model);

  // Calibrated to stay inside the LW acceptance window (an overshooting
  // shift just gets rejected and is harmless); ≈ S_lw is the sweet spot.
  const double split_shift = lw_setup.lw.S;
  const auto cps = testing::run_protocol(ProtocolKind::kCps, model, f,
                                         core::ByzStrategy::kSplit, 7, 20,
                                         sim::ClockKind::kSpread,
                                         sim::DelayKind::kRandom, 0.0,
                                         split_shift);
  const auto lw = testing::run_protocol(ProtocolKind::kLynchWelch, model, f,
                                        core::ByzStrategy::kSplit, 7, 20,
                                        sim::ClockKind::kSpread,
                                        sim::DelayKind::kRandom, 0.0,
                                        split_shift);
  const auto st = testing::run_protocol(ProtocolKind::kSrikanthToueg, model,
                                        f, core::ByzStrategy::kCrash, 7, 20);

  ASSERT_TRUE(cps.trace.live(20));
  ASSERT_TRUE(st.trace.live(20));
  EXPECT_LE(cps.trace.max_skew(), cps_setup.cps.S + 1e-9);
  EXPECT_LE(st.trace.max_skew(), model.d + 1e-9);
  // LW at f = n/3 under the two-faced attack: its steady state degrades
  // while CPS's stays small (compare past the initial transient).
  EXPECT_GT(lw.trace.max_skew(8), cps.trace.max_skew(8));
}

TEST(Integration, MessageComplexityOrdering) {
  // CPS pays Θ(n³) messages per pulse vs Θ(n²) for LW — the documented cost
  // of echo-based consistency.
  const auto model = testing::small_model(8, 3);
  const auto cps = testing::run_protocol(ProtocolKind::kCps, model, 0,
                                         core::ByzStrategy::kCrash, 3, 10);
  const auto lw = testing::run_protocol(ProtocolKind::kLynchWelch, model, 0,
                                        core::ByzStrategy::kCrash, 3, 10);
  const double cps_per_round =
      static_cast<double>(cps.messages) /
      static_cast<double>(cps.trace.complete_rounds());
  const double lw_per_round =
      static_cast<double>(lw.messages) /
      static_cast<double>(lw.trace.complete_rounds());
  EXPECT_GT(cps_per_round, 5.0 * lw_per_round);
}

TEST(Integration, LowerBoundBelowUpperBoundAcrossUtilde) {
  // Sweep ũ: realized lower-bound skew rises with ũ while remaining below
  // the (fixed-u) upper bound whenever ũ = u.
  sim::ModelParams model;
  model.n = 3;
  model.f = 1;
  model.d = 1.0;
  model.u = 0.08;
  model.u_tilde = 0.08;
  model.vartheta = 1.04;
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  ASSERT_TRUE(setup.feasible);
  const auto report =
      lowerbound::run_theorem5(ProtocolKind::kCps, model, 40);
  ASSERT_TRUE(report.bound_holds);
  EXPECT_LE(report.max_skew, setup.cps.S + 1e-9);
  EXPECT_GE(report.max_skew, 2.0 * model.u_tilde / 3.0 - 1e-9);
}

}  // namespace
}  // namespace crusader
