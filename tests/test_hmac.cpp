#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace crusader::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(to_hex(hmac_sha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string msg(50, '\xdd');
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case4) {
  std::string key;
  for (int i = 1; i <= 25; ++i) key.push_back(static_cast<char>(i));
  const std::string msg(50, '\xcd');
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, Rfc4231Case5Truncation) {
  // Case 5 specifies a tag truncated to 128 bits; compare the prefix.
  const std::string key(20, '\x0c');
  const std::string hex = to_hex(hmac_sha256(key, "Test With Truncation"));
  EXPECT_EQ(hex.substr(0, 32), "a3b6167473100ee06e0c796c2955552b");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const std::string key(131, '\xaa');
  EXPECT_EQ(to_hex(hmac_sha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Rfc4231Case7LongKeyAndData) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(
      to_hex(hmac_sha256(
          key,
          "This is a test using a larger than block-size key and a larger than "
          "block-size data. The key needs to be hashed before being used by "
          "the HMAC algorithm.")),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, KeySensitivity) {
  EXPECT_NE(hmac_sha256("key1", "message"), hmac_sha256("key2", "message"));
}

TEST(Hmac, MessageSensitivity) {
  EXPECT_NE(hmac_sha256("key", "message1"), hmac_sha256("key", "message2"));
}

TEST(Hmac, Deterministic) {
  EXPECT_EQ(hmac_sha256("key", "msg"), hmac_sha256("key", "msg"));
}

TEST(Hmac, ExactBlockSizeKey) {
  const std::string key(64, 'k');
  const auto tag = hmac_sha256(key, "m");
  EXPECT_EQ(tag, hmac_sha256(key, "m"));
  EXPECT_NE(tag, hmac_sha256(std::string(63, 'k'), "m"));
}

}  // namespace
}  // namespace crusader::crypto
