// Differential harness for the engine fast path: the batched
// broadcast/flood delivery (WorldConfig::batch / RelayConfig::batch) and the
// abstract crypto mode must be behavior-preserving — identical traces, skew
// results, sign/verify op counts, and byte-identical CSV rows across every
// world kind, on 1 thread or 4.

#include <cstdint>
#include <gtest/gtest.h>
#include <memory>
#include <utility>
#include <vector>

#include "baselines/factories.hpp"
#include "core/adversaries.hpp"
#include "relay/flood_world.hpp"
#include "relay/topology.hpp"
#include "runner/export.hpp"
#include "runner/runner.hpp"
#include "runner/scenario.hpp"
#include "sim/network.hpp"
#include "sim/world.hpp"

namespace crusader {
namespace {

using runner::CryptoMode;
using runner::ScenarioSpec;
using runner::SweepGrid;
using runner::TopologyKind;
using runner::WorldKind;

/// Every world kind × a spread of protocols, fault loads, and both crypto
/// modes at small n — the cross product the fast path must be invisible on.
SweepGrid differential_grid() {
  SweepGrid grid;
  grid.worlds = {WorldKind::kComplete, WorldKind::kRelay,
                 WorldKind::kTheorem5};
  grid.protocols = {
      baselines::ProtocolKind::kCps, baselines::ProtocolKind::kLynchWelch,
      baselines::ProtocolKind::kSrikanthToueg,
      baselines::ProtocolKind::kFloodProbe};
  grid.ns = {4, 8};
  grid.fault_loads = {0, SweepGrid::kMaxResilience};
  // kMax: every delay equal → one aggregate per broadcast (maximal
  // batching). kSplit: exactly two runs. kRandom: per-receiver runs (the
  // fast path degenerates to the slow path, but must burn the same RNG
  // stream).
  grid.delays = {sim::DelayKind::kMax, sim::DelayKind::kRandom,
                 sim::DelayKind::kSplit};
  grid.topologies = {TopologyKind::kHypercube};
  grid.strategies = {core::ByzStrategy::kSplit};
  grid.relay_faults = {relay::RelayFaultKind::kCrash,
                       relay::RelayFaultKind::kMaxDelay};
  grid.cryptos = {CryptoMode::kReal, CryptoMode::kAbstract};
  grid.rounds = 6;
  grid.warmup = 2;
  return grid;
}

std::string sweep_csv(const SweepGrid& grid, bool fast_path,
                      unsigned threads) {
  runner::RunnerOptions options;
  options.base_seed = 7;
  options.threads = threads;
  options.fast_path = fast_path;
  return runner::to_csv(runner::run_sweep(grid.expand(), options));
}

TEST(FastPathDifferential, CsvByteIdenticalAcrossBatchToggle) {
  const auto grid = differential_grid();
  const std::string fast = sweep_csv(grid, /*fast_path=*/true, 1);
  const std::string slow = sweep_csv(grid, /*fast_path=*/false, 1);
  EXPECT_EQ(fast, slow);
}

TEST(FastPathDifferential, CsvByteIdenticalAcrossThreadCounts) {
  const auto grid = differential_grid();
  const std::string one = sweep_csv(grid, /*fast_path=*/true, 1);
  const std::string four = sweep_csv(grid, /*fast_path=*/true, 4);
  EXPECT_EQ(one, four);
}

/// The KLLO additions under the same differential lens: the one-hop
/// gradient/jump-max protocols, churned schedules, and the per-edge-age
/// conformance metrics (kllo_ratio / kllo_violations / edge_age_min CSV
/// columns) must be byte-stable across the batch toggle and thread counts.
SweepGrid kllo_differential_grid() {
  SweepGrid grid;
  grid.worlds = {WorldKind::kRelay};
  grid.protocols = {baselines::ProtocolKind::kGradient,
                    baselines::ProtocolKind::kJumpMax};
  grid.ns = {8, 16};
  grid.fault_loads = {0};
  grid.delays = {sim::DelayKind::kRandom, sim::DelayKind::kSplit};
  grid.topologies = {TopologyKind::kHypercube};
  grid.churn_rates = {0.0, 0.1};
  grid.join_batches = {0, 1};
  grid.reconnects = {relay::ReconnectPolicy::kRandom,
                     relay::ReconnectPolicy::kRingRepair};
  grid.kllo_stabs = {1.0, 4.0};
  grid.rounds = 6;
  grid.warmup = 2;
  return grid;
}

TEST(KlloDifferential, ChurnedCsvByteIdenticalAcrossBatchToggle) {
  const auto grid = kllo_differential_grid();
  EXPECT_EQ(sweep_csv(grid, /*fast_path=*/true, 1),
            sweep_csv(grid, /*fast_path=*/false, 1));
}

TEST(KlloDifferential, ChurnedCsvByteIdenticalAcrossThreadCounts) {
  const auto grid = kllo_differential_grid();
  EXPECT_EQ(sweep_csv(grid, /*fast_path=*/true, 1),
            sweep_csv(grid, /*fast_path=*/true, 4));
}

TEST(KlloDifferential, StabAxisCollapsesOnStaticGrids) {
  // Like the reconnect axis: the stabilization multiplier means nothing
  // without churn, so a churn-free grid with a --kllo-stab axis must expand
  // to the very same cells (and the very same CSV bytes) as one without it.
  auto plain = kllo_differential_grid();
  plain.churn_rates = {0.0};
  plain.join_batches = {0};
  plain.kllo_stabs = {1.0};
  auto stabbed = plain;
  stabbed.kllo_stabs = {1.0, 2.0, 8.0};

  const auto plain_specs = plain.expand();
  const auto stabbed_specs = stabbed.expand();
  ASSERT_EQ(stabbed_specs.size(), plain_specs.size());
  for (std::size_t i = 0; i < plain_specs.size(); ++i)
    EXPECT_EQ(stabbed_specs[i].key(), plain_specs[i].key()) << i;
  EXPECT_EQ(sweep_csv(stabbed, true, 1), sweep_csv(plain, true, 1));

  // With churn the axis is real: it multiplies exactly the dynamic cells.
  auto churned = stabbed;
  churned.churn_rates = {0.0, 0.1};
  std::size_t dynamic_cells = 0;
  std::size_t stretched_cells = 0;
  for (const auto& spec : churned.expand()) {
    if (spec.dynamic()) ++dynamic_cells;
    if (spec.kllo_stab != 1.0) {
      ++stretched_cells;
      EXPECT_TRUE(spec.dynamic()) << spec.name();
    }
  }
  EXPECT_EQ(dynamic_cells % 3, 0u);
  EXPECT_EQ(stretched_cells * 3, dynamic_cells * 2);
}

void expect_traces_identical(const sim::PulseTrace& a,
                             const sim::PulseTrace& b) {
  ASSERT_EQ(a.n(), b.n());
  for (NodeId v = 0; v < a.n(); ++v) {
    ASSERT_EQ(a.pulse_count(v), b.pulse_count(v)) << "node " << v;
    for (std::size_t r = 0; r < a.pulse_count(v); ++r) {
      // Exact, not approximate: the fast path must schedule the very same
      // floating-point times, or seeds stop reproducing across the toggle.
      EXPECT_EQ(a.pulses(v)[r].real_time, b.pulses(v)[r].real_time)
          << "node " << v << " round " << r;
      EXPECT_EQ(a.pulses(v)[r].local_time, b.pulses(v)[r].local_time)
          << "node " << v << " round " << r;
    }
  }
}

void expect_runs_identical(const sim::RunResult& a, const sim::RunResult& b) {
  expect_traces_identical(a.trace, b.trace);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sign_ops, b.sign_ops);
  EXPECT_EQ(a.verify_ops, b.verify_ops);
  EXPECT_EQ(a.signatures_carried, b.signatures_carried);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

/// One complete-world run with everything pinned except the knob under test.
sim::RunResult run_complete(baselines::ProtocolKind protocol,
                            crypto::Pki::Kind pki, bool batch,
                            std::uint32_t f) {
  sim::ModelParams model;
  model.n = 5;
  model.f = f;
  model.d = 1.0;
  model.u = 0.05;
  model.u_tilde = 0.05;
  model.vartheta = 1.02;
  const auto setup = baselines::make_setup(protocol, model);
  EXPECT_TRUE(setup.feasible);
  auto honest = baselines::make_protocol_factory(setup, 6);

  sim::WorldConfig config;
  config.model = model;
  config.seed = 42;
  config.initial_offset = setup.initial_offset;
  config.horizon = setup.initial_offset + 8.0 * setup.round_length;
  config.pki_kind = pki;
  config.batch = batch;
  config.faulty = sim::default_faulty_set(f);

  sim::ByzantineFactory byz;
  if (f > 0)
    byz = core::make_byzantine_factory(core::ByzStrategy::kSplit, honest, 42,
                                       0.0, 0.0);
  sim::World world(config, std::move(honest), std::move(byz));
  return world.run();
}

TEST(FastPathDifferential, CompleteWorldIdenticalAcrossBatchToggle) {
  for (const auto protocol :
       {baselines::ProtocolKind::kCps, baselines::ProtocolKind::kSrikanthToueg,
        baselines::ProtocolKind::kFloodProbe}) {
    for (const std::uint32_t f : {0u, 1u}) {
      const auto fast = run_complete(protocol, crypto::Pki::Kind::kSymbolic,
                                     /*batch=*/true, f);
      const auto slow = run_complete(protocol, crypto::Pki::Kind::kSymbolic,
                                     /*batch=*/false, f);
      expect_runs_identical(fast, slow);
    }
  }
}

TEST(FastPathDifferential, CompleteWorldIdenticalAbstractVsRealCrypto) {
  // Same config seed, only the Pki kind varies: the abstract scheme must
  // reproduce the symbolic scheme's behavior (op counts included) exactly —
  // it only swaps the hash under the signatures.
  for (const auto protocol :
       {baselines::ProtocolKind::kCps, baselines::ProtocolKind::kSrikanthToueg,
        baselines::ProtocolKind::kFloodProbe}) {
    const auto real = run_complete(protocol, crypto::Pki::Kind::kSymbolic,
                                   /*batch=*/true, 1);
    const auto abstracted = run_complete(
        protocol, crypto::Pki::Kind::kAbstract, /*batch=*/true, 1);
    expect_runs_identical(real, abstracted);
    EXPECT_GT(real.sign_ops, 0u);
    EXPECT_GT(real.verify_ops, 0u);
  }
}

void expect_relay_runs_identical(const relay::RelayRunResult& a,
                                 const relay::RelayRunResult& b) {
  expect_traces_identical(a.trace, b.trace);
  EXPECT_EQ(a.worst_hops, b.worst_hops);
  EXPECT_EQ(a.physical_messages, b.physical_messages);
  EXPECT_EQ(a.floods, b.floods);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sign_ops, b.sign_ops);
  EXPECT_EQ(a.verify_ops, b.verify_ops);
}

relay::RelayRunResult run_relay(crypto::Pki::Kind pki, bool batch,
                                relay::RelayFaultKind fault_kind,
                                std::uint32_t f) {
  relay::RelayConfig config;
  config.topology = relay::Topology::hypercube(3);
  config.hop_model.n = 8;
  config.hop_model.f = f;
  config.hop_model.d = 1.0;
  config.hop_model.u = 0.05;
  config.hop_model.u_tilde = 0.05;
  config.hop_model.vartheta = 1.01;
  config.seed = 42;
  config.faulty = sim::default_faulty_set(f);
  config.fault_kind = fault_kind;
  config.pki_kind = pki;
  config.batch = batch;

  const auto effective = relay::compute_effective(config);
  const auto setup = baselines::make_setup(baselines::ProtocolKind::kCps,
                                           effective.model);
  EXPECT_TRUE(setup.feasible);
  config.initial_offset = setup.initial_offset;
  config.horizon = setup.initial_offset + 8.0 * setup.round_length;
  relay::RelayWorld world(config, baselines::make_protocol_factory(setup, 6),
                          effective);
  return world.run();
}

TEST(FastPathDifferential, RelayWorldIdenticalAcrossBatchToggle) {
  for (const auto fault : {relay::RelayFaultKind::kCrash,
                           relay::RelayFaultKind::kMaxDelay,
                           relay::RelayFaultKind::kReorder,
                           relay::RelayFaultKind::kSelectiveDrop}) {
    for (const std::uint32_t f : {0u, 1u}) {
      const auto fast = run_relay(crypto::Pki::Kind::kSymbolic,
                                  /*batch=*/true, fault, f);
      const auto slow = run_relay(crypto::Pki::Kind::kSymbolic,
                                  /*batch=*/false, fault, f);
      expect_relay_runs_identical(fast, slow);
    }
  }
}

TEST(FastPathDifferential, RelayWorldIdenticalAbstractVsRealCrypto) {
  const auto real = run_relay(crypto::Pki::Kind::kSymbolic, /*batch=*/true,
                              relay::RelayFaultKind::kCrash, 1);
  const auto abstracted = run_relay(crypto::Pki::Kind::kAbstract,
                                    /*batch=*/true,
                                    relay::RelayFaultKind::kCrash, 1);
  expect_relay_runs_identical(real, abstracted);
  EXPECT_GT(real.sign_ops, 0u);
  EXPECT_GT(real.verify_ops, 0u);
}

// --- Network-level delivery-order property -------------------------------

struct NetFixture {
  sim::Engine engine;
  std::vector<NodeId> order;
  std::unique_ptr<sim::Network> net;

  NetFixture(sim::DelayKind kind, bool batch) {
    sim::ModelParams m;
    m.n = 6;
    m.f = 0;
    m.d = 1.0;
    m.u = 0.2;
    m.u_tilde = 0.2;
    m.vartheta = 1.01;
    net = std::make_unique<sim::Network>(
        engine, m, std::vector<bool>(6, false),
        sim::make_delay_policy(kind, 6), util::Rng(7),
        sim::Enforcement::kThrow);
    net->set_batch(batch);
    net->set_deliver(
        [this](NodeId to, const sim::Message&) { order.push_back(to); });
  }
};

TEST(FastPathDifferential, BatchedBroadcastPreservesDeliveryOrder) {
  // Two broadcasts scheduled back-to-back: the batched path must deliver in
  // the exact per-receiver order of the reference path — within a run by
  // receiver order, across equal-time runs by scheduling order (the queue's
  // FIFO tie-break).
  for (const auto kind : {sim::DelayKind::kMax, sim::DelayKind::kMin,
                          sim::DelayKind::kRandom, sim::DelayKind::kSplit}) {
    NetFixture fast(kind, /*batch=*/true);
    NetFixture slow(kind, /*batch=*/false);
    for (auto* fx : {&fast, &slow}) {
      fx->net->broadcast(0, sim::Message{});
      fx->net->broadcast(1, sim::Message{});
      fx->engine.run_until(2.0);
    }
    EXPECT_EQ(fast.order, slow.order) << sim::to_string(kind);
    EXPECT_EQ(fast.engine.events_processed(), slow.engine.events_processed())
        << sim::to_string(kind);
    EXPECT_EQ(fast.net->stats().messages, slow.net->stats().messages)
        << sim::to_string(kind);
  }
}

TEST(FastPathDifferential, BatchedBroadcastSharesOneArenaPayload) {
  // With all-equal delays a 5-receiver broadcast is one aggregate event over
  // one arena payload; the reference path acquires one payload per receiver.
  NetFixture fast(sim::DelayKind::kMax, /*batch=*/true);
  NetFixture slow(sim::DelayKind::kMax, /*batch=*/false);
  fast.net->broadcast(0, sim::Message{});
  slow.net->broadcast(0, sim::Message{});
  EXPECT_EQ(fast.net->arena().acquired(), 1u);
  EXPECT_EQ(slow.net->arena().acquired(), 5u);
  fast.engine.run_until(2.0);
  slow.engine.run_until(2.0);
  EXPECT_EQ(fast.order, slow.order);
  // All payloads released after delivery; slots stand by for reuse.
  EXPECT_EQ(fast.net->arena().live(), 0u);
  EXPECT_EQ(slow.net->arena().live(), 0u);
}

}  // namespace
}  // namespace crusader
