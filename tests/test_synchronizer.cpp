// Round synchronizer on top of CPS (paper intro application): exact
// synchronous-round semantics on the bounded-delay network.

#include "core/synchronizer.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <vector>

#include "helpers.hpp"

namespace crusader::core {
namespace {

using baselines::ProtocolKind;

struct SyncWorldResult {
  sim::RunResult run;
  /// Stats copied out before the World (and the nodes it owns) is destroyed.
  std::vector<SynchronizerStats> stats;
  std::vector<bool> honest;
  std::vector<std::map<Round, double>> mins;  // per node: round → local min
};

/// Min-propagation application: every node starts with a value; each round
/// it broadcasts its current minimum and folds in what it received. After
/// (diameter = 1) + slack rounds all honest nodes hold the global minimum —
/// a textbook synchronous algorithm that only works if round semantics hold.
SyncWorldResult run_min_propagation(std::uint32_t n, std::uint32_t f_actual,
                                    std::size_t rounds, std::uint64_t seed) {
  const auto model = crusader::testing::small_model(
      n, sim::ModelParams::max_faults_signed(n));
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);

  SyncWorldResult out;
  out.stats.resize(n);
  out.honest.assign(n, true);
  out.mins.resize(n);
  std::vector<SynchronizerNode*> nodes(n, nullptr);

  CpsConfig cps_config;
  cps_config.params = setup.cps;

  sim::HonestFactory honest = [&, cps_config](NodeId v) {
    auto shared_min = std::make_shared<double>(100.0 + v);
    RoundFn fn = [&out, v, shared_min](
                     Round round,
                     const std::vector<AppMessage>& inbox) {
      for (const AppMessage& m : inbox)
        *shared_min = std::min(*shared_min, m.value);
      out.mins[v][round] = *shared_min;
      return std::vector<AppMessage>{AppMessage{kInvalidNode, *shared_min}};
    };
    auto node = std::make_unique<SynchronizerNode>(
        std::make_unique<CpsNode>(cps_config), fn);
    nodes[v] = node.get();
    return node;
  };

  auto config = crusader::testing::world_config(model, setup, rounds, seed);
  config.faulty = sim::default_faulty_set(f_actual);
  for (NodeId v = 0; v < f_actual; ++v) out.honest[v] = false;
  sim::ByzantineFactory byz;
  if (f_actual > 0)
    byz = make_byzantine_factory(ByzStrategy::kRandom, honest, seed);
  sim::World world(config, honest, byz);
  out.run = world.run();
  for (NodeId v = 0; v < n; ++v)
    if (nodes[v] != nullptr) out.stats[v] = nodes[v]->stats();
  return out;
}

TEST(Synchronizer, NoLateMessagesFaultFree) {
  const auto result = run_min_propagation(4, 0, 15, 3);
  for (NodeId v = 0; v < 4; ++v) {
    const auto& stats = result.stats[v];
    EXPECT_GE(stats.rounds_started, 15u);
    EXPECT_GT(stats.app_messages_received, 0u);
    EXPECT_EQ(stats.late_messages, 0u) << "synchronizer guarantee violated";
  }
}

TEST(Synchronizer, MinPropagationConverges) {
  const std::uint32_t n = 5;
  const auto result = run_min_propagation(n, 0, 12, 7);
  // Fully connected: after round 2 every honest node holds the global min
  // (round 1 pulses send the values; round 2 delivers them).
  const double global_min = 100.0;  // node 0's initial value
  for (NodeId v = 0; v < n; ++v) {
    const auto& mins = result.mins[v];
    ASSERT_FALSE(mins.empty());
    for (const auto& [round, value] : mins) {
      if (round >= 3) {
        EXPECT_DOUBLE_EQ(value, global_min) << "node " << v;
      }
    }
  }
}

TEST(Synchronizer, SurvivesByzantineNodes) {
  const std::uint32_t n = 5;
  const auto result = run_min_propagation(n, 2, 12, 11);
  for (NodeId v = 0; v < n; ++v) {
    if (!result.honest[v]) continue;  // faulty slots
    EXPECT_EQ(result.stats[v].late_messages, 0u);
    EXPECT_GE(result.stats[v].rounds_started, 12u);
  }
  // Honest nodes 2,3,4 propagate among themselves: min of {102,103,104}.
  for (NodeId v = 2; v < n; ++v) {
    const auto& mins = result.mins[v];
    for (const auto& [round, value] : mins) {
      if (round >= 3) {
        EXPECT_LE(value, 102.0) << "node " << v;
      }
    }
  }
}

TEST(Synchronizer, RoundsTrackPulses) {
  const auto result = run_min_propagation(4, 0, 10, 5);
  // Every pulse starts exactly one round.
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(result.stats[v].rounds_started,
              result.run.trace.pulse_count(v));
  }
}

}  // namespace
}  // namespace crusader::core
