// Golden-trace regression tests: pulse behaviour for pinned seeds must stay
// bit-identical across refactors (the simulator is deterministic by design).
// If an intentional behaviour change lands, re-record the constants below
// and say why in the commit.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "lowerbound/theorem5.hpp"

namespace crusader {
namespace {

using baselines::ProtocolKind;

TEST(Regression, CpsParamsGolden) {
  // Solver outputs for the canonical model (d=1, u=0.05, vt=1.01, n=5).
  const auto params =
      core::derive_cps_params(testing::small_model(5, 2));
  EXPECT_NEAR(params.S, 0.31642713210921319, 1e-12);
  EXPECT_NEAR(params.T, 2.8688058530041265, 1e-12);
  EXPECT_NEAR(params.delta, 0.12543467829805807, 1e-12);
  EXPECT_NEAR(params.p_min, 2.2106805123411961, 1e-12);
  EXPECT_NEAR(params.p_max, 3.8180872493317661, 1e-12);
}

TEST(Regression, LwAndStParamsGolden) {
  const auto lw = core::derive_lw_params(testing::small_model(5, 2));
  EXPECT_NEAR(lw.S, 0.18502432044461145, 1e-12);
  const auto st = core::derive_st_params(testing::small_model(5, 2));
  EXPECT_NEAR(st.T, 4.04, 1e-12);
}

TEST(Regression, Theorem5Golden) {
  sim::ModelParams model;
  model.n = 3;
  model.f = 1;
  model.d = 1.0;
  model.u = 0.05;
  model.u_tilde = 0.3;
  model.vartheta = 1.05;
  const auto report =
      lowerbound::run_theorem5(ProtocolKind::kCps, model, 25);
  EXPECT_NEAR(report.bound, 0.2, 1e-12);
  EXPECT_NEAR(report.max_skew, 0.2, 1e-6);
  EXPECT_NEAR(report.telescoped_sum, 0.6, 1e-6);
}

TEST(Regression, FeasibilityThresholdGolden) {
  EXPECT_NEAR(core::ParamSolver::max_vartheta(1.0, 0.05), 1.06936641, 1e-6);
}

TEST(Regression, CpsPulseTraceGolden) {
  // First/late pulse times of a pinned adversarial run. These encode the
  // end-to-end determinism of engine + network + crypto + protocol.
  const auto model = testing::small_model(5, 2);
  const auto result = testing::run_protocol(
      ProtocolKind::kCps, model, 2, core::ByzStrategy::kSplit, /*seed=*/42,
      /*rounds=*/10, sim::ClockKind::kSpread, sim::DelayKind::kRandom,
      /*late_shift=*/0.0, /*split_shift=*/0.1);
  ASSERT_GE(result.trace.complete_rounds(), 10u);
  // Honest nodes are 2, 3, 4.
  EXPECT_NEAR(result.trace.pulse_time(2, 0), 0.31642713210921319, 1e-9);
  EXPECT_NEAR(result.trace.pulse_time(3, 0), 0.0, 1e-9);
  const double p_2_9 = result.trace.pulse_time(2, 9);
  const double p_4_9 = result.trace.pulse_time(4, 9);
  // Re-run must reproduce exactly.
  const auto again = testing::run_protocol(
      ProtocolKind::kCps, model, 2, core::ByzStrategy::kSplit, 42, 10,
      sim::ClockKind::kSpread, sim::DelayKind::kRandom, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(again.trace.pulse_time(2, 9), p_2_9);
  EXPECT_DOUBLE_EQ(again.trace.pulse_time(4, 9), p_4_9);
}

TEST(Regression, Sha256SelfTest) {
  // NIST vector already covered in test_sha256; this pins our Signature
  // payload hashing (which protocol behaviour depends on).
  EXPECT_EQ(crypto::make_pulse_payload(1).hash(),
            crypto::make_pulse_payload(1).hash());
  EXPECT_EQ(crypto::make_pulse_payload(7).context, "tcb-pulse|r=7");
  EXPECT_EQ(crypto::make_ready_payload(3).context, "st-ready|r=3");
}

TEST(Regression, LargeScaleStress) {
  // n = 15 at full resilience f = 7 with the random adversary: the largest
  // configuration the unit suite exercises (benches go bigger). Guards
  // against accidental O(n!) blowups and event-queue pathologies.
  const auto model = testing::small_model(15, 7);
  const auto setup = baselines::make_setup(ProtocolKind::kCps, model);
  const auto result = testing::run_protocol(
      ProtocolKind::kCps, model, 7, core::ByzStrategy::kRandom, 13, 10);
  ASSERT_TRUE(result.trace.live(10));
  EXPECT_LE(result.trace.max_skew(), setup.cps.S + 1e-9);
  EXPECT_TRUE(result.violations.empty());
}

}  // namespace
}  // namespace crusader
