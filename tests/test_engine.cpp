#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace crusader::sim {
namespace {

TEST(Engine, NowAdvancesWithEvents) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  double seen = -1.0;
  engine.at(2.5, [&] { seen = engine.now(); });
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine engine;
  bool late_ran = false;
  engine.at(5.0, [&] { late_ran = true; });
  engine.run_until(4.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
  engine.run_until(6.0);
  EXPECT_TRUE(late_ran);
}

TEST(Engine, PastEventsClampToNow) {
  Engine engine;
  engine.at(3.0, [] {});
  engine.run_until(3.0);
  double seen = -1.0;
  engine.at(1.0, [&] { seen = engine.now(); });  // in the past
  engine.run_until(5.0);
  EXPECT_DOUBLE_EQ(seen, 3.0);
}

TEST(Engine, AfterSchedulesRelative) {
  Engine engine;
  std::vector<double> times;
  engine.at(1.0, [&] {
    engine.after(0.5, [&] { times.push_back(engine.now()); });
  });
  engine.run_until(10.0);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 1.5);
}

TEST(Engine, NegativeDelayRejected) {
  Engine engine;
  EXPECT_THROW(engine.after(-1.0, [] {}), util::CheckFailure);
}

TEST(Engine, StepProcessesOne) {
  Engine engine;
  int count = 0;
  engine.at(1.0, [&] { ++count; });
  engine.at(2.0, [&] { ++count; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(engine.step());
}

TEST(Engine, CancelWorksThroughEngine) {
  Engine engine;
  bool ran = false;
  const EventId id = engine.at(1.0, [&] { ran = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run_until(2.0);
  EXPECT_FALSE(ran);
}

TEST(Engine, CountsProcessedEvents) {
  Engine engine;
  for (int i = 0; i < 5; ++i) engine.at(i, [] {});
  engine.run_until(10.0);
  EXPECT_EQ(engine.events_processed(), 5u);
}

}  // namespace
}  // namespace crusader::sim
