// Tests for Figure 4 (Crusader Broadcast): Validity and Crusader Consistency
// (Definition 6) under honest, equivocating, partial and silent dealers.

#include "sync/crusader_broadcast.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace crusader::sync {
namespace {

struct CbHarness {
  std::uint32_t n;
  crypto::Pki pki;
  std::vector<bool> faulty;
  SyncNetwork net;
  std::vector<std::unique_ptr<CrusaderBroadcastNode>> nodes;

  CbHarness(std::uint32_t n_in, std::vector<bool> faulty_in, NodeId dealer,
            std::optional<double> input)
      : n(n_in),
        pki(n_in, crypto::Pki::Kind::kSymbolic, 7),
        faulty(std::move(faulty_in)),
        net(n_in, faulty, pki) {
    nodes.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      if (faulty[v]) continue;
      nodes[v] = std::make_unique<CrusaderBroadcastNode>(
          v, dealer, /*tag=*/1, n, pki,
          v == dealer ? input : std::nullopt);
      net.set_protocol(v, nodes[v].get());
    }
  }

  void run(RushingAdversary* adversary = nullptr) {
    net.set_adversary(adversary);
    net.run_rounds(2);
  }
};

TEST(CrusaderBroadcast, ValidityHonestDealer) {
  CbHarness h(5, {false, false, false, false, false}, /*dealer=*/2, 3.75);
  h.run();
  for (NodeId v = 0; v < 5; ++v) {
    ASSERT_TRUE(h.nodes[v]->done());
    const CbOutput out = h.nodes[v]->output();
    ASSERT_TRUE(out.has_value()) << "node " << v;
    EXPECT_DOUBLE_EQ(*out, 3.75);
  }
}

TEST(CrusaderBroadcast, SilentDealerYieldsBotEverywhere) {
  CbHarness h(4, {false, false, false, true}, /*dealer=*/3, std::nullopt);
  h.run();  // no adversary: the faulty dealer stays silent
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_FALSE(h.nodes[v]->output().has_value()) << "node " << v;
  }
}

/// Dealer sends validly-signed value A to even ids, B to odd ids.
class EquivocatingDealer final : public RushingAdversary {
 public:
  EquivocatingDealer(crypto::Pki* pki, NodeId dealer, std::uint32_t n)
      : pki_(pki), dealer_(dealer), n_(n) {}

  std::map<NodeId, Outbox> act(std::uint32_t round,
                               const std::vector<Outbox>&) override {
    std::map<NodeId, Outbox> out;
    if (round != 0) return out;
    Outbox outbox;
    for (NodeId to = 0; to < n_; ++to) {
      const double value = to % 2 == 0 ? 1.0 : 2.0;
      SignedValue entry;
      entry.dealer = dealer_;
      entry.value = value;
      entry.sig = pki_->sign(dealer_,
                             crypto::make_value_payload(1, dealer_, value));
      outbox[to].entries.push_back(entry);
    }
    out[dealer_] = std::move(outbox);
    return out;
  }

 private:
  crypto::Pki* pki_;
  NodeId dealer_;
  std::uint32_t n_;
};

TEST(CrusaderBroadcast, EquivocationCaughtByEchoRound) {
  CbHarness h(5, {false, false, false, false, true}, /*dealer=*/4,
              std::nullopt);
  EquivocatingDealer adv(&h.pki, 4, 5);
  h.run(&adv);
  // Everyone sees both signed values after the echo round: all output ⊥.
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(h.nodes[v]->output().has_value()) << "node " << v;
  }
}

/// Dealer sends a valid value only to `targets`; others get nothing.
class PartialDealer final : public RushingAdversary {
 public:
  PartialDealer(crypto::Pki* pki, NodeId dealer, std::vector<NodeId> targets)
      : pki_(pki), dealer_(dealer), targets_(std::move(targets)) {}

  std::map<NodeId, Outbox> act(std::uint32_t round,
                               const std::vector<Outbox>&) override {
    std::map<NodeId, Outbox> out;
    if (round != 0) return out;
    SignedValue entry;
    entry.dealer = dealer_;
    entry.value = 9.5;
    entry.sig =
        pki_->sign(dealer_, crypto::make_value_payload(1, dealer_, 9.5));
    Outbox outbox;
    for (NodeId to : targets_) outbox[to].entries.push_back(entry);
    out[dealer_] = std::move(outbox);
    return out;
  }

 private:
  crypto::Pki* pki_;
  NodeId dealer_;
  std::vector<NodeId> targets_;
};

TEST(CrusaderBroadcast, PartialDeliveryGivesCrusaderConsistency) {
  CbHarness h(5, {false, false, false, false, true}, /*dealer=*/4,
              std::nullopt);
  PartialDealer adv(&h.pki, 4, {0, 2});
  h.run(&adv);
  // Receivers output 9.5; the others output ⊥ — never a different value.
  for (NodeId v = 0; v < 4; ++v) {
    const CbOutput out = h.nodes[v]->output();
    if (out.has_value()) {
      EXPECT_DOUBLE_EQ(*out, 9.5);
    }
  }
  EXPECT_TRUE(h.nodes[0]->output().has_value());
  EXPECT_TRUE(h.nodes[2]->output().has_value());
  EXPECT_FALSE(h.nodes[1]->output().has_value());
  EXPECT_FALSE(h.nodes[3]->output().has_value());
}

/// Dealer sends an unsigned (invalid) value.
class UnsignedDealer final : public RushingAdversary {
 public:
  explicit UnsignedDealer(NodeId dealer, std::uint32_t n)
      : dealer_(dealer), n_(n) {}

  std::map<NodeId, Outbox> act(std::uint32_t round,
                               const std::vector<Outbox>&) override {
    std::map<NodeId, Outbox> out;
    if (round != 0) return out;
    Outbox outbox;
    for (NodeId to = 0; to < n_; ++to) {
      SignedValue entry;  // default sig: invalid
      entry.dealer = dealer_;
      entry.value = 4.0;
      outbox[to].entries.push_back(entry);
    }
    out[dealer_] = std::move(outbox);
    return out;
  }

 private:
  NodeId dealer_;
  std::uint32_t n_;
};

TEST(CrusaderBroadcast, InvalidSignatureYieldsBot) {
  CbHarness h(4, {false, false, false, true}, /*dealer=*/3, std::nullopt);
  UnsignedDealer adv(3, 4);
  h.run(&adv);
  for (NodeId v = 0; v < 3; ++v)
    EXPECT_FALSE(h.nodes[v]->output().has_value());
}

class CbInstanceUnit : public ::testing::Test {
 protected:
  crypto::Pki pki_{4, crypto::Pki::Kind::kSymbolic, 3};
};

TEST_F(CbInstanceUnit, ConflictViaEchoOnly) {
  // Node 1's instance for dealer 0: direct value 1.0, echoed conflicting 2.0.
  CbInstance dealer_side(0, 0, 9, pki_);
  const auto direct = dealer_side.make_broadcast(1.0);
  ASSERT_TRUE(direct.has_value());
  // The (faulty) dealer also signed 2.0 for someone else.
  SignedValue other;
  other.dealer = 0;
  other.value = 2.0;
  other.sig = pki_.sign(0, crypto::make_value_payload(9, 0, 2.0));

  CbInstance inst(1, 0, 9, pki_);
  inst.on_direct(*direct);
  inst.on_echo(2, other);
  EXPECT_FALSE(inst.output().has_value());
}

TEST_F(CbInstanceUnit, DuplicateEchoOfSameValueHarmless) {
  CbInstance dealer_side(0, 0, 9, pki_);
  const auto direct = dealer_side.make_broadcast(1.0);
  CbInstance inst(1, 0, 9, pki_);
  inst.on_direct(*direct);
  inst.on_echo(2, *direct);
  inst.on_echo(3, *direct);
  ASSERT_TRUE(inst.output().has_value());
  EXPECT_DOUBLE_EQ(*inst.output(), 1.0);
}

TEST_F(CbInstanceUnit, WrongInstanceTagRejected) {
  CbInstance dealer_side(0, 0, /*tag=*/5, pki_);
  const auto old = dealer_side.make_broadcast(1.0);
  CbInstance inst(1, 0, /*tag=*/6, pki_);  // different instance
  inst.on_direct(*old);                     // replayed from tag 5
  EXPECT_FALSE(inst.output().has_value());
}

TEST_F(CbInstanceUnit, NonDealerCannotBroadcast) {
  CbInstance inst(1, 0, 1, pki_);
  EXPECT_THROW((void)inst.make_broadcast(1.0), util::CheckFailure);
}

TEST_F(CbInstanceUnit, RandomizedSigningSameValueIsNotAConflict) {
  // A Byzantine dealer with a randomized signer can mint several distinct
  // valid signatures on the SAME value (nonces). Definition 6 only forbids
  // conflicting VALUES, so this must not force ⊥.
  SignedValue a;
  a.dealer = 0;
  a.value = 2.5;
  a.sig = pki_.sign(0, crypto::make_value_payload(9, 0, 2.5), /*nonce=*/1);
  SignedValue b = a;
  b.sig = pki_.sign(0, crypto::make_value_payload(9, 0, 2.5), /*nonce=*/2);

  CbInstance inst(1, 0, 9, pki_);
  inst.on_direct(a);
  inst.on_echo(2, b);
  ASSERT_TRUE(inst.output().has_value());
  EXPECT_DOUBLE_EQ(*inst.output(), 2.5);
}

TEST_F(CbInstanceUnit, RandomizedSigningDifferentValuesStillConflicts) {
  SignedValue a;
  a.dealer = 0;
  a.value = 2.5;
  a.sig = pki_.sign(0, crypto::make_value_payload(9, 0, 2.5), 1);
  SignedValue b;
  b.dealer = 0;
  b.value = 7.5;
  b.sig = pki_.sign(0, crypto::make_value_payload(9, 0, 7.5), 2);

  CbInstance inst(1, 0, 9, pki_);
  inst.on_direct(a);
  inst.on_echo(2, b);
  EXPECT_FALSE(inst.output().has_value());
}

}  // namespace
}  // namespace crusader::sync
