#include "util/rng.hpp"

#include <cstdint>
#include <gtest/gtest.h>
#include <set>
#include <vector>

namespace crusader::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(Rng, UniformDegenerateInterval) {
  Rng rng(9);
  EXPECT_DOUBLE_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(Rng, BelowCoversRangeRoughlyUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 10 - trials / 50);
    EXPECT_LT(c, trials / 10 + trials / 50);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.01);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(99);
  Rng child1 = parent.fork(1);
  Rng child1_again = Rng(99).fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_EQ(child1.next_u64(), child1_again.next_u64());
  // Distinct streams should not collide in the first draw.
  EXPECT_NE(Rng(99).fork(1).next_u64(), child2.next_u64());
}

TEST(Rng, Splitmix64KnownSequenceIsStable) {
  // Regression anchors (self-consistency across refactors).
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
  std::uint64_t s2 = 0;
  EXPECT_EQ(first, splitmix64(s2));
}

TEST(Rng, Mix64IsStateless) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

}  // namespace
}  // namespace crusader::util
